// dgr_soak — seeded open-loop session soak against any engine
// (docs/WORKLOAD.md).
//
// Drives the src/workload session generator — Poisson/bursty arrivals, Zipf
// hot-key churn, lifetime-bounded completion — through the SimEngine,
// ThreadEngine or ProcEngine for a fixed schedule or a wall-clock duration,
// with the fault adversary and safe-point audits live, then emits a JSON SLO
// report (sessions/s, mutator-stall percentiles, per-phase stall
// attribution) and exits nonzero on any invariant, audit, divergence,
// telemetry-loss or leak failure.
//
//   $ ./dgr_soak --seed 1 --duration 600 --faults --audit 4
//   $ ./dgr_soak --engine proc --workers 2 --ticks 64 --report slo.json
//
// Flags:
//   --engine E       sim | thread (default) | proc
//   --workers N      worker processes (implies --engine proc)
//   --pes N          processing elements (default 4)
//   --seed S         workload seed (default 1); epoch e runs seed ⊕ e
//   --ticks N        schedule horizon per epoch (default 64)
//   --duration S     repeat epochs until S wall-clock seconds elapsed
//   --epochs N       run exactly N epochs (default 1 unless --duration)
//   --rate R         mean arrivals per tick (default 2.0)
//   --bursty         bursty arrivals instead of Poisson
//   --hot-keys K     shared hot-key set size (default 16)
//   --zipf S         hot-key skew exponent (default 1.1)
//   --max-live N     admission cap on live sessions (default 256)
//   --churn C        mean churn ops per live session per tick (default 0.8)
//   --cycle-every T  barrier engines: ticks per marking cycle (default 4)
//   --audit N        safe-point audits every Nth cycle (§5.4.1 + Property 1;
//                    sim: paranoid sweep cross-checks)
//   --faults         fault adversary at default probabilities
//                    (drop/dup 2%, reorder 5%, truncate 1%)
//   --fault-drop P / --fault-dup P / --fault-reorder P / --fault-trunc P
//   --fault-seed S   fault-schedule seed (default 1)
//   --kill-worker W[@C]  proc: SIGKILL worker W once completed cycles reach C
//                    (default: mid-first-epoch); the run must then recover
//   --detect-deadlock  run M_T each cycle
//   --stats N        print a health line every N completed cycles
//   --stats-jsonl F  append health lines as JSONL
//   --trace-jsonl F  write the trace as JSONL (proc: merged cluster stream)
//   --metrics F      write the metrics registry JSON (proc: cluster form)
//   --report F       write the SLO report JSON (default: stdout)
//   --health-fatal   exit nonzero on watchdog health warnings too
//
// Exit codes: 0 ok; 1 SLO invariant failed (audit violation, replica
// divergence, telemetry drop, leaked slots, lingering sessions); 2 usage;
// 5 every worker died; 6 --kill-worker did not register loss + recovery.
#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/proc_engine.h"
#include "runtime/sim_engine.h"
#include "runtime/thread_engine.h"
#include "workload/session.h"

namespace {

using namespace dgr;
using workload::SessionDriver;
using workload::WorkloadOptions;

void write_file(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "dgr_soak: cannot write '%s'\n", path.c_str());
    std::exit(2);
  }
  f << data;
}

// Per-cycle health rollup, dgr_run's emitter plus the mutator-stall columns.
class HealthEmitter {
 public:
  HealthEmitter(std::uint32_t period, const char* jsonl_path)
      : period_(period), last_(std::chrono::steady_clock::now()) {
    if (jsonl_path) {
      jsonl_.open(jsonl_path, std::ios::binary);
      if (!jsonl_) {
        std::fprintf(stderr, "dgr_soak: cannot write '%s'\n", jsonl_path);
        std::exit(2);
      }
    }
  }

  bool enabled() const { return period_ != 0; }

  void on_cycle(const obs::MetricsRegistry& reg, std::uint64_t cycle,
                std::uint32_t workers_live, std::uint32_t workers_total) {
    using obs::Counter;
    if (!enabled() || cycle % period_ != 0) return;
    const auto now = std::chrono::steady_clock::now();
    obs::HealthSnapshot s;
    s.cycle = cycle;
    s.cycles_window = period_;
    s.window_ms =
        std::chrono::duration<double, std::milli>(now - last_).count();
    const std::uint64_t marks =
        reg.total(Counter::kMarkTasks) + reg.total(Counter::kReturnTasks);
    const std::uint64_t remote = reg.total(Counter::kRemoteMessages);
    const std::uint64_t local = reg.total(Counter::kLocalMessages);
    const std::uint64_t retx = reg.total(Counter::kMsgRetransmit);
    s.marks = marks - prev_marks_;
    s.remote_msgs = remote - prev_remote_;
    s.local_msgs = local - prev_local_;
    s.retransmits = retx - prev_retx_;
    s.telemetry_dropped = reg.total(Counter::kTelemetryDropped);
    const Histogram stall = reg.merged_hist(obs::Hist::kMutatorStallUs);
    s.stall_ops = stall.count();
    s.stall_p99_us = stall.p99();
    s.workers_live = workers_live;
    s.workers_total = workers_total;
    prev_marks_ = marks;
    prev_remote_ = remote;
    prev_local_ = local;
    prev_retx_ = retx;
    last_ = now;
    std::printf("# %s\n", obs::health_line(s).c_str());
    if (jsonl_.is_open()) jsonl_ << obs::health_jsonl(s) << "\n";
  }

 private:
  std::uint32_t period_;
  std::ofstream jsonl_;
  std::chrono::steady_clock::time_point last_;
  std::uint64_t prev_marks_ = 0, prev_remote_ = 0, prev_local_ = 0,
                prev_retx_ = 0;
};

void append_kv(std::string& out, const char* k, double v, bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g%s", k, v, comma ? "," : "");
  out += buf;
}

void append_kv(std::string& out, const char* k, std::uint64_t v,
               bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu%s", k, (unsigned long long)v,
                comma ? "," : "");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  enum class EngineKind { kSim, kThread, kProc };
  EngineKind kind = EngineKind::kThread;
  WorkloadOptions wopt;
  std::uint64_t base_seed = 1;
  std::uint32_t workers = 0;
  std::uint32_t epochs = 0;       // 0 = derive from --duration (or 1)
  double duration_s = 0.0;
  std::uint32_t audit_period = 0;
  bool detect = false, health_fatal = false;
  std::uint32_t kill_worker = kAnyWorkerIndex;
  std::uint64_t kill_cycle = 0;
  NetOptions net;
  std::uint32_t stats_period = 0;
  const char* stats_jsonl_path = nullptr;
  const char* jsonl_path = nullptr;
  const char* metrics_path = nullptr;
  const char* report_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dgr_soak: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--engine")) {
      const char* e = need("--engine");
      if (!std::strcmp(e, "sim")) kind = EngineKind::kSim;
      else if (!std::strcmp(e, "thread")) kind = EngineKind::kThread;
      else if (!std::strcmp(e, "proc")) kind = EngineKind::kProc;
      else {
        std::fprintf(stderr, "dgr_soak: --engine expects sim|thread|proc\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--workers")) {
      workers = static_cast<std::uint32_t>(std::atoi(need("--workers")));
      kind = EngineKind::kProc;
    } else if (!std::strcmp(argv[i], "--pes")) {
      wopt.pes = static_cast<std::uint32_t>(std::atoi(need("--pes")));
    } else if (!std::strcmp(argv[i], "--seed")) {
      base_seed = static_cast<std::uint64_t>(std::atoll(need("--seed")));
    } else if (!std::strcmp(argv[i], "--ticks")) {
      wopt.ticks = static_cast<std::uint32_t>(std::atoi(need("--ticks")));
    } else if (!std::strcmp(argv[i], "--duration")) {
      duration_s = std::atof(need("--duration"));
    } else if (!std::strcmp(argv[i], "--epochs")) {
      epochs = static_cast<std::uint32_t>(std::atoi(need("--epochs")));
    } else if (!std::strcmp(argv[i], "--rate")) {
      wopt.rate = std::atof(need("--rate"));
    } else if (!std::strcmp(argv[i], "--bursty")) {
      wopt.arrivals = workload::Arrivals::kBursty;
    } else if (!std::strcmp(argv[i], "--hot-keys")) {
      wopt.hot_keys = static_cast<std::uint32_t>(std::atoi(need("--hot-keys")));
    } else if (!std::strcmp(argv[i], "--zipf")) {
      wopt.zipf_s = std::atof(need("--zipf"));
    } else if (!std::strcmp(argv[i], "--max-live")) {
      wopt.max_live = static_cast<std::uint32_t>(std::atoi(need("--max-live")));
    } else if (!std::strcmp(argv[i], "--churn")) {
      wopt.churn_per_tick = std::atof(need("--churn"));
    } else if (!std::strcmp(argv[i], "--cycle-every")) {
      wopt.cycle_every =
          static_cast<std::uint32_t>(std::atoi(need("--cycle-every")));
    } else if (!std::strcmp(argv[i], "--audit")) {
      audit_period = static_cast<std::uint32_t>(std::atoi(need("--audit")));
    } else if (!std::strcmp(argv[i], "--faults")) {
      net.faults.spec.drop = 0.02;
      net.faults.spec.duplicate = 0.02;
      net.faults.spec.reorder = 0.05;
      net.faults.spec.truncate = 0.01;
    } else if (!std::strcmp(argv[i], "--fault-drop")) {
      net.faults.spec.drop = std::atof(need("--fault-drop"));
    } else if (!std::strcmp(argv[i], "--fault-dup")) {
      net.faults.spec.duplicate = std::atof(need("--fault-dup"));
    } else if (!std::strcmp(argv[i], "--fault-reorder")) {
      net.faults.spec.reorder = std::atof(need("--fault-reorder"));
    } else if (!std::strcmp(argv[i], "--fault-trunc")) {
      net.faults.spec.truncate = std::atof(need("--fault-trunc"));
    } else if (!std::strcmp(argv[i], "--fault-seed")) {
      net.faults.seed =
          static_cast<std::uint64_t>(std::atoll(need("--fault-seed")));
    } else if (!std::strcmp(argv[i], "--kill-worker")) {
      const char* spec = need("--kill-worker");
      unsigned w = 0;
      unsigned long long c = 0;
      if (std::sscanf(spec, "%u@%llu", &w, &c) == 2) {
        kill_worker = w;
        kill_cycle = c;
      } else if (std::sscanf(spec, "%u", &w) == 1) {
        kill_worker = w;  // cycle 0 = mid-first-epoch, resolved below
      } else {
        std::fprintf(stderr,
                     "dgr_soak: --kill-worker expects W or W@CYCLE\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--detect-deadlock")) {
      detect = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      stats_period = static_cast<std::uint32_t>(std::atoi(need("--stats")));
    } else if (!std::strcmp(argv[i], "--stats-jsonl")) {
      stats_jsonl_path = need("--stats-jsonl");
    } else if (!std::strcmp(argv[i], "--trace-jsonl")) {
      jsonl_path = need("--trace-jsonl");
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics_path = need("--metrics");
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = need("--report");
    } else if (!std::strcmp(argv[i], "--health-fatal")) {
      health_fatal = true;
    } else {
      std::fprintf(stderr, "dgr_soak: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (kind == EngineKind::kProc && workers == 0) workers = 2;
  if (kill_worker != kAnyWorkerIndex) {
    if (kind != EngineKind::kProc || workers < 2 || kill_worker >= workers) {
      std::fprintf(stderr,
                   "dgr_soak: --kill-worker needs --engine proc, --workers "
                   ">= 2 and a valid index\n");
      return 2;
    }
    if (kill_cycle == 0)
      kill_cycle =
          std::max<std::uint64_t>(1, wopt.ticks / (2 * wopt.cycle_every));
  }
#if !DGR_TRACE_ENABLED
  if (jsonl_path) {
    std::fprintf(stderr,
                 "dgr_soak: tracing was compiled out (-DDGR_TRACE=OFF)\n");
    return 2;
  }
#endif

  // Presize every store so allocation never reallocates slot vectors under
  // running PE threads; overflow shows up as admission rejection, not UB.
  Graph graph(wopt.pes, workload::required_capacity(wopt));
  const CycleOptions copt{detect};

  std::unique_ptr<SimEngine> sim;
  std::unique_ptr<ThreadEngine> thr;
  std::unique_ptr<ProcEngine> proc;
  std::unique_ptr<workload::DriverEngine> eng;
  switch (kind) {
    case EngineKind::kSim: {
      SimOptions sopt;
      sopt.seed = base_seed;
      sim = std::make_unique<SimEngine>(graph, sopt);
      if (audit_period) sim->controller().set_paranoid_sweep_check(true);
      eng = workload::make_driver(*sim);
      break;
    }
    case EngineKind::kThread: {
      thr = std::make_unique<ThreadEngine>(graph, net);
      eng = workload::make_driver(*thr);
      break;
    }
    case EngineKind::kProc: {
      ProcOptions popt;
      popt.workers = workers;
      popt.faults = net.faults.spec;
      popt.fault_seed = net.faults.seed;
      proc = std::make_unique<ProcEngine>(graph, popt);
      eng = workload::make_driver(*proc);
      break;
    }
  }

  SessionDriver drv(*eng, wopt);
  drv.setup();
  for (PeId pe = 0; pe < graph.num_pes(); ++pe)
    graph.store(pe).set_fixed_capacity(true);
  // Fixed footprint after setup: anchors + hot keys. Anything above it once
  // the final drain completes is a leak. Counts non-aux vertices only — aux
  // roots (taskroots, troot, rescue roots) are permanent by design and some
  // are minted lazily at the first rescue wave.
  const auto live_non_aux = [&](PeId pe) {
    std::size_t n = 0;
    graph.store(pe).for_each_live([&](std::uint32_t) { ++n; });
    return n;
  };
  std::vector<std::size_t> baseline(graph.num_pes());
  for (PeId pe = 0; pe < graph.num_pes(); ++pe)
    baseline[pe] = live_non_aux(pe);

  if (thr) {
    if (audit_period) {
      AuditOptions aopt;
      aopt.period = audit_period;
      thr->enable_audit(aopt);
    }
    thr->enable_watchdog();
#if DGR_TRACE_ENABLED
    if (jsonl_path) thr->enable_trace();
#endif
    thr->start();
  } else if (proc) {
    if (audit_period) {
      AuditOptions aopt;
      aopt.period = audit_period;
      proc->enable_audit(aopt);
    }
#if DGR_TRACE_ENABLED
    if (jsonl_path) proc->enable_trace();
#endif
    proc->start();
  } else {
#if DGR_TRACE_ENABLED
    if (jsonl_path) sim->enable_trace();
#endif
  }

  HealthEmitter health(stats_period, stats_jsonl_path);
  bool killed = false;
  const auto on_cycle = [&](std::uint64_t cc) {
    if (proc && kill_worker != kAnyWorkerIndex && !killed &&
        cc >= kill_cycle) {
      const long pid = proc->worker_pid(kill_worker);
      if (pid > 0) {
        std::printf("# chaos: killing worker %u (pid %ld) at cycle %llu\n",
                    kill_worker, pid, (unsigned long long)cc);
        ::kill(static_cast<pid_t>(pid), SIGKILL);
      }
      killed = true;
    }
    health.on_cycle(eng->registry(), cc, proc ? proc->workers_live() : 0,
                    proc ? proc->num_workers() : 0);
  };

  const auto t_start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t_start)
        .count();
  };
  std::uint32_t epochs_run = 0;
  std::uint64_t lingering = 0;
  for (std::uint32_t e = 0;; ++e) {
    if (epochs && e >= epochs) break;
    if (!epochs && duration_s > 0.0 && elapsed() >= duration_s) break;
    if (!epochs && duration_s == 0.0 && e >= 1) break;
    if (proc && proc->failed()) break;
    WorkloadOptions epoch_opt = wopt;
    // Epoch e replays the generator on a decorrelated seed; the sequence is
    // still a pure function of --seed.
    epoch_opt.seed = base_seed + e * 0x9E3779B97F4A7C15ull;
    const std::vector<workload::SessionEvent> schedule =
        workload::generate_schedule(epoch_opt);
    drv.run(schedule, copt, on_cycle);
    ++epochs_run;
    lingering += drv.live_sessions();
  }
  const double wall_s = elapsed();

  const bool worker_died = proc && proc->failed();
  std::uint64_t audits = 0, violations = 0, warnings = 0;
  if (thr) {
    audits = thr->audit_stats().audits;
    violations = thr->audit_stats().violations;
    warnings = thr->health().total();
    if (violations)
      std::printf("# last audit violation: %s\n",
                  thr->audit_stats().last_what.c_str());
  } else if (proc) {
    audits = proc->audit_stats().audits;
    violations = proc->audit_stats().violations;
    if (violations)
      std::printf("# last audit violation: %s\n",
                  proc->audit_stats().last_what.c_str());
  }

  // Observability exports before teardown-dependent reads.
  obs::MetricsRegistry& reg = eng->registry();
  const Histogram stall = reg.merged_hist(obs::Hist::kMutatorStallUs);
  const std::uint64_t tele_dropped =
      reg.total(obs::Counter::kTelemetryDropped);
  std::uint64_t workers_lost = 0, recoveries = 0;
  std::uint32_t workers_live = 0;
  if (proc) {
    const ProcEngineStats ps = proc->stats();
    workers_lost = ps.workers_lost;
    recoveries = ps.recoveries;
    workers_live = proc->workers_live();
  }
#if DGR_TRACE_ENABLED
  if (jsonl_path) {
    std::vector<obs::TraceEvent> events = eng->trace()->snapshot();
    if (proc) {
      for (const auto& w : proc->worker_traces())
        events.insert(events.end(), w.begin(), w.end());
      std::stable_sort(events.begin(), events.end(),
                       [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                         return a.ts < b.ts;
                       });
    }
    write_file(jsonl_path, obs::to_jsonl(events));
  }
#endif
  if (metrics_path)
    write_file(metrics_path, (proc ? proc->cluster_metrics_json()
                                   : reg.to_json()) +
                                 "\n");

  if (thr) thr->stop();
  if (proc) proc->stop();

  std::uint64_t leaked = 0;
  for (PeId pe = 0; pe < graph.num_pes(); ++pe) {
    const std::size_t live = live_non_aux(pe);
    if (live > baseline[pe]) leaked += live - baseline[pe];
  }

  const workload::SoakTotals& tot = drv.totals();
  const std::uint64_t stall_total_us =
      reg.total(obs::Counter::kMutatorStallIdleUs) +
      reg.total(obs::Counter::kMutatorStallMarkUs) +
      reg.total(obs::Counter::kMutatorStallQuiesceUs);

  int rc = 0;
  if (violations || tot.divergence || tele_dropped || leaked || lingering)
    rc = 1;
  if (health_fatal && warnings) rc = rc ? rc : 1;
  if (worker_died) rc = 5;
  if (kill_worker != kAnyWorkerIndex && !worker_died) {
    if (workers_lost == 0) {
      std::printf("# chaos: kill did not register as a worker loss\n");
      rc = 6;
    } else if (recoveries == 0) {
      std::printf("# chaos: loss registered but no recovery ran\n");
      rc = 6;
    }
  }

  std::string out = "{";
  out += "\"engine\":\"";
  out += eng->name();
  out += "\",";
  append_kv(out, "seed", base_seed);
  append_kv(out, "pes", static_cast<std::uint64_t>(wopt.pes));
  append_kv(out, "epochs", static_cast<std::uint64_t>(epochs_run));
  append_kv(out, "ticks_per_epoch", static_cast<std::uint64_t>(wopt.ticks));
  append_kv(out, "elapsed_s", wall_s);
  append_kv(out, "sessions_opened", tot.opened);
  append_kv(out, "sessions_closed", tot.closed);
  append_kv(out, "sessions_rejected", tot.rejected);
  append_kv(out, "churn_ops", tot.churn);
  append_kv(out, "mutator_ops", tot.mutator_ops);
  append_kv(out, "cycles", tot.cycles);
  append_kv(out, "sessions_per_sec",
            wall_s > 0.0 ? static_cast<double>(tot.closed) / wall_s : 0.0);
  out += "\"stall_us\":{";
  append_kv(out, "count", stall.count());
  append_kv(out, "p50", stall.percentile(50));
  append_kv(out, "p99", stall.percentile(99));
  append_kv(out, "p999", stall.percentile(99.9));
  append_kv(out, "max", stall.max_value(), false);
  out += "},\"stall_attribution_us\":{";
  append_kv(out, "total", stall_total_us);
  append_kv(out, "idle", reg.total(obs::Counter::kMutatorStallIdleUs));
  append_kv(out, "mark", reg.total(obs::Counter::kMutatorStallMarkUs));
  append_kv(out, "quiesce", reg.total(obs::Counter::kMutatorStallQuiesceUs),
            false);
  out += "},";
  append_kv(out, "audits", audits);
  append_kv(out, "audit_violations", violations);
  append_kv(out, "health_warnings", warnings);
  append_kv(out, "telemetry_dropped", tele_dropped);
  append_kv(out, "divergence", tot.divergence);
  append_kv(out, "leaked_slots", leaked);
  append_kv(out, "lingering_sessions", lingering);
  append_kv(out, "workers_lost", workers_lost);
  append_kv(out, "recoveries", recoveries);
  append_kv(out, "workers_live", static_cast<std::uint64_t>(workers_live));
  out += "\"ok\":";
  out += rc == 0 ? "true" : "false";
  out += "}\n";
  if (report_path)
    write_file(report_path, out);
  else
    std::fputs(out.c_str(), stdout);
  return rc;
}
