// dgr_analyze — post-mortem analytics over a recorded marking-cycle trace.
//
//   dgr_analyze trace.jsonl
//   dgr_analyze --trace-jsonl trace.jsonl --metrics metrics.json
//   dgr_analyze --json trace.jsonl          # machine-readable report
//
// The input is the JSONL stream dgr_run --trace-jsonl writes (one event
// object per line; see docs/OBSERVABILITY.md). With --metrics, the per-PE
// load table is enriched with exact task counts and mailbox high-water from
// the registry dump dgr_run --metrics writes. Exit status: 0 on success,
// 2 on usage/IO errors, 3 when the trace contains no recognizable events.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/analyze.h"
#include "obs/export.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trace-jsonl] FILE [--metrics FILE] [--json]\n",
               argv0);
  return 2;
}

bool slurp(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--trace-jsonl" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (trace_path.empty()) return usage(argv[0]);

  std::string text;
  if (!slurp(trace_path, &text)) {
    std::fprintf(stderr, "dgr_analyze: cannot read %s\n", trace_path.c_str());
    return 2;
  }
  const std::vector<dgr::obs::TraceEvent> events =
      dgr::obs::from_jsonl(text);
  if (events.empty()) {
    std::fprintf(stderr, "dgr_analyze: no trace events in %s\n",
                 trace_path.c_str());
    return 3;
  }

  dgr::obs::TraceReport report = dgr::obs::analyze(events);

  if (!metrics_path.empty()) {
    std::string mjson;
    if (!slurp(metrics_path, &mjson)) {
      std::fprintf(stderr, "dgr_analyze: cannot read %s\n",
                   metrics_path.c_str());
      return 2;
    }
    if (!dgr::obs::enrich_with_metrics_json(report, mjson)) {
      std::fprintf(stderr,
                   "dgr_analyze: %s is not a metrics registry dump\n",
                   metrics_path.c_str());
      return 2;
    }
  }

  const std::string out = json ? dgr::obs::report_to_json(report)
                               : dgr::obs::report_to_text(report);
  std::fwrite(out.data(), 1, out.size(), stdout);
  if (json) std::fputc('\n', stdout);
  return 0;
}
