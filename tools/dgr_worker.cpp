// ProcEngine worker process: connect to the controller hub, register, run
// the single-threaded marking replica until kShutdown. See docs/CLUSTER.md.
#include "runtime/worker_engine.h"

int main(int argc, char** argv) { return dgr::worker_main(argc, argv); }
