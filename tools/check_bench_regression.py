#!/usr/bin/env python3
"""Bench-regression smoke gate: compare BENCH_*.json runs against the
committed baselines in bench/baselines/.

CI machines and the baseline machine differ (and CI runs the benches in
--smoke mode), so absolute times are meaningless across the pair. The gate
therefore self-normalizes: for every benchmark present in both the baseline
and the current run it computes the ratio current/baseline, takes the MEDIAN
ratio per bench file as that machine's speed factor, and flags only
benchmarks that regressed by more than --max-regress RELATIVE to the median
(default 0.25, the "fail >25%" contract). A uniform slowdown — a slower
runner — moves every ratio equally and trips nothing; a single benchmark
whose ratio stands out against its siblings is a real regression in that
code path.

--handoff-gate METRICS.json gates the differential-handoff contract on a
stable-graph proc-smoke run (no cross-machine comparison): total
handoff_delta_bytes must stay below total handoff_full_bytes, the average
delta frame must be under --handoff-ratio (default 0.10) of the average full
snapshot, and the run must record zero checksum resyncs and zero lost
workers — a resync on a healthy run means the delta apply diverged. The
committed reference record (bench/baselines/HANDOFF_proc_smoke.json, written
by a quiet-machine run of the same dgr_run invocation) is checked against
the same contract when --handoff-baseline names it, so a baseline refresh
that regresses the encoding cannot land.

--slo-gate REPORT.json gates the session-workload SLO contract on a live
dgr_soak report (see check_slo_gate): hard §5.4.1/telemetry invariants plus
the absolute sessions/s floor and mutator-stall p99 ceiling recorded in the
committed bench/baselines/SESSIONS_soak_smoke.json (--slo-baseline).

Additionally --throughput-ratio-floor R asserts, within the CURRENT run of
BENCH_latency.json alone (no cross-machine comparison at all), that the
batched cross-PE throughput leg (BM_CrossPeTaskThroughput/1) beats the
unbatched leg (/0) by at least R on the tasks/s counter. The committed
baseline records the reference ratio from a quiet machine; CI uses a lower
floor because --smoke measurements are noisy.

Exit status: 0 clean, 1 regression or missing data, 2 usage error.
"""

import argparse
import json
import os
import statistics
import sys


def load_runs(path):
    """BENCH_*.json -> {benchmark name: run dict}. Raw runs only."""
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for r in doc.get("runs", []):
        if not r.get("error", False):
            runs[r["name"]] = r
    return runs


def check_file(name, base_path, cur_path, max_regress):
    """Compare one bench file pair. Returns a list of failure strings."""
    base = load_runs(base_path)
    cur = load_runs(cur_path)
    shared = sorted(set(base) & set(cur))
    if not shared:
        return ["%s: no shared benchmarks between baseline and current" % name]

    ratios = {}
    for bench in shared:
        bt = base[bench]["real_time"]
        ct = cur[bench]["real_time"]
        if base[bench].get("time_unit") != cur[bench].get("time_unit"):
            return ["%s: time_unit mismatch for %s" % (name, bench)]
        if bt <= 0:
            continue
        ratios[bench] = ct / bt
    if not ratios:
        return ["%s: no comparable timings" % name]

    machine = statistics.median(ratios.values())
    failures = []
    print("%s: %d shared benchmarks, machine factor %.3fx" %
          (name, len(ratios), machine))
    for bench, ratio in sorted(ratios.items()):
        rel = ratio / machine
        status = "ok"
        if rel > 1.0 + max_regress:
            # UseRealTime legs time whole multi-threaded marking cycles in
            # wall clock; on an oversubscribed CI core their per-run scatter
            # exceeds any sane ratio contract, so they are report-only here.
            # Their regression contract is the --scaling-gate check on the
            # committed baseline instead.
            if bench.endswith("/real_time"):
                status = "noisy (report-only; gated via --scaling-gate)"
            else:
                status = "REGRESSED"
                failures.append(
                    "%s: %s is %.0f%% slower than its baseline relative to "
                    "the run's median (ratio %.3f, median %.3f)" %
                    (name, bench, (rel - 1.0) * 100.0, ratio, machine))
        print("  %-60s %8.3fx  rel %6.3f  %s" % (bench, ratio, rel, status))
    return failures


def check_scaling_gate(path, label):
    """Multi-PE marking must beat single-PE on wall-clock marks/s.

    This is the 2-PE-cliff contract: in BENCH_marking_scale.json at `path`,
    BM_ThreadedCycle/{2,4,8} must each exceed BM_ThreadedCycle/1 on the
    wall-clock marks/s counter. Applied to the committed baseline (the
    reference machine's record — deterministic in CI); the current run's
    values are printed alongside for drift tracking but only gate when
    --scaling-gate-current is given (smoke-mode timings are too noisy to
    fail CI on).
    """
    runs = load_runs(path)

    def marks_per_s(stem):
        # The bench uses UseRealTime, which suffixes names with /real_time;
        # accept either spelling so older baselines still parse.
        for name in (stem + "/real_time", stem):
            v = runs.get(name, {}).get("counters", {}).get("marks/s")
            if v is not None:
                return v
        return None

    base = marks_per_s("BM_ThreadedCycle/1")
    if base is None:
        return ["scaling-gate(%s): BM_ThreadedCycle/1 marks/s missing from %s"
                % (label, path)]
    failures = []
    for pes in (2, 4, 8):
        name = "BM_ThreadedCycle/%d" % pes
        v = marks_per_s(name)
        if v is None:
            failures.append("scaling-gate(%s): %s marks/s missing from %s" %
                            (label, name, path))
            continue
        ok = v > base
        print("scaling-gate(%s): %s %.3gM marks/s vs /1 %.3gM -> %s" %
              (label, name, v / 1e6, base / 1e6, "ok" if ok else "FAIL"))
        if not ok:
            failures.append(
                "scaling-gate(%s): %s marks/s %.4g does not beat "
                "BM_ThreadedCycle/1 (%.4g)" % (label, name, v, base))
    return failures


def check_handoff_gate(path, label, max_ratio):
    """Differential-handoff contract over one proc-smoke metrics JSON.

    Accepts either a full dgr_run --metrics file (handoff counts under
    "membership", byte totals under "totals") or the trimmed baseline record
    (the same four keys at top level).
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["handoff-gate(%s): cannot read %s: %s" % (label, path, e)]
    mem = doc.get("membership", doc)
    totals = doc.get("totals", doc)
    try:
        n_full = mem["handoffs_full"]
        n_delta = mem["handoffs_delta"]
        full_b = totals["handoff_full_bytes"]
        delta_b = totals["handoff_delta_bytes"]
    except KeyError as e:
        return ["handoff-gate(%s): %s missing key %s" % (label, path, e)]

    failures = []
    if n_full == 0 or n_delta == 0:
        return ["handoff-gate(%s): run recorded %d full / %d delta handoffs; "
                "both kinds must occur for the gate to mean anything" %
                (label, n_full, n_delta)]
    per_full = full_b / n_full
    per_delta = delta_b / n_delta
    ratio = per_delta / per_full if per_full else float("inf")
    print("handoff-gate(%s): %d full (%d B, %.0f B avg), %d delta "
          "(%d B, %.1f B avg), per-plane ratio %.3f (max %.2f)" %
          (label, n_full, full_b, per_full, n_delta, delta_b, per_delta,
           ratio, max_ratio))
    if delta_b >= full_b:
        failures.append(
            "handoff-gate(%s): total delta bytes %d >= total full bytes %d "
            "on a stable-graph run — deltas are not paying for themselves" %
            (label, delta_b, full_b))
    if ratio >= max_ratio:
        failures.append(
            "handoff-gate(%s): average delta frame is %.1f%% of the average "
            "full snapshot (limit %.0f%%)" %
            (label, ratio * 100.0, max_ratio * 100.0))
    # These only exist in the full metrics file; the trimmed baseline omits
    # them (a baseline is only ever cut from a clean run).
    resyncs = mem.get("handoff_resyncs", 0)
    lost = mem.get("worker_lost", 0)
    if resyncs:
        failures.append("handoff-gate(%s): %d checksum resyncs on a healthy "
                        "run — the delta apply diverged from the controller" %
                        (label, resyncs))
    if lost:
        failures.append("handoff-gate(%s): %d workers lost during the "
                        "stable-graph run" % (label, lost))
    return failures


def check_slo_gate(report_path, baseline_path):
    """Session-SLO contract over one dgr_soak --report JSON.

    The report must come from a faulted+audited soak (dgr_soak --faults
    --audit N --report ...). Hard invariants (machine-independent): the run's
    own ok flag, zero audit violations, zero telemetry drops, zero replica
    divergence, zero leaked slots, zero lingering sessions, and at least one
    §5.4.1 audit actually executed. Absolute floors (machine-dependent, so
    deliberately loose) come from the committed baseline record
    (bench/baselines/SESSIONS_soak_smoke.json): sessions_per_sec must beat
    slo.sessions_per_sec_floor and stall p99 must stay under
    slo.stall_p99_us_max. The baseline's own reference measurements are
    checked against the same floors, so a baseline refresh that regresses
    the SLO cannot land.
    """
    try:
        with open(report_path) as f:
            rep = json.load(f)
    except (OSError, ValueError) as e:
        return ["slo-gate(current): cannot read %s: %s" % (report_path, e)]
    try:
        with open(baseline_path) as f:
            base = json.load(f)
    except (OSError, ValueError) as e:
        return ["slo-gate(baseline): cannot read %s: %s" % (baseline_path, e)]
    slo = base.get("slo", {})
    floor = slo.get("sessions_per_sec_floor")
    ceil = slo.get("stall_p99_us_max")
    if floor is None or ceil is None:
        return ["slo-gate(baseline): %s lacks slo.sessions_per_sec_floor / "
                "slo.stall_p99_us_max" % baseline_path]

    failures = []

    def check_report(label, doc, hard):
        if hard:
            if not doc.get("ok", False):
                failures.append("slo-gate(%s): report ok=false" % label)
            for key in ("audit_violations", "telemetry_dropped", "divergence",
                        "leaked_slots", "lingering_sessions"):
                v = doc.get(key, 0)
                if v:
                    failures.append("slo-gate(%s): %s = %s (must be 0)" %
                                    (label, key, v))
            if doc.get("audits", 0) < 1:
                failures.append("slo-gate(%s): no §5.4.1 audits ran — gate "
                                "needs dgr_soak --audit N" % label)
        sps = doc.get("sessions_per_sec", 0.0)
        p99 = doc.get("stall_us", {}).get("p99", doc.get("stall_p99_us"))
        if p99 is None:
            failures.append("slo-gate(%s): stall p99 missing" % label)
            p99 = 0.0
        print("slo-gate(%s): %.1f sessions/s (floor %.1f), stall p99 "
              "%.1f us (max %.1f us)" % (label, sps, floor, p99, ceil))
        if sps < floor:
            failures.append("slo-gate(%s): %.1f sessions/s below the %.1f "
                            "floor" % (label, sps, floor))
        if p99 > ceil:
            failures.append("slo-gate(%s): stall p99 %.1f us above the "
                            "%.1f us ceiling" % (label, p99, ceil))

    check_report("current", rep, hard=True)
    # The trimmed baseline record carries only the reference measurements; a
    # refresh is only ever cut from a clean run, so hard invariants are
    # implicit there.
    check_report("baseline", base, hard=False)
    return failures


def check_throughput_ratio(cur_path, floor):
    """Batched vs unbatched cross-PE throughput, current run only."""
    cur = load_runs(cur_path)
    legs = {}
    for name, run in cur.items():
        if not name.startswith("BM_CrossPeTaskThroughput/"):
            continue
        arg = name.split("/")[1]
        legs[arg] = run.get("counters", {}).get("tasks/s")
    if legs.get("0") is None or legs.get("1") is None:
        return ["throughput-ratio: BM_CrossPeTaskThroughput legs missing "
                "from %s" % cur_path]
    ratio = legs["1"] / legs["0"]
    print("throughput-ratio: batched %.3gM/s vs unbatched %.3gM/s = %.2fx "
          "(floor %.2fx)" % (legs["1"] / 1e6, legs["0"] / 1e6, ratio, floor))
    if ratio < floor:
        return ["throughput-ratio: batched/unbatched = %.2fx, below the "
                "%.2fx floor" % (ratio, floor)]
    return []


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="bench/baselines",
                    help="directory of committed BENCH_*.json baselines")
    ap.add_argument("--current",
                    help="directory of freshly produced BENCH_*.json files "
                         "(required unless only --handoff-gate is used)")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="max tolerated per-benchmark slowdown relative to "
                         "the median machine factor (default 0.25 = 25%%)")
    ap.add_argument("--throughput-ratio-floor", type=float, default=None,
                    help="require batched/unbatched cross-PE tasks/s in the "
                         "current BENCH_latency.json to be at least this")
    ap.add_argument("--scaling-gate", action="store_true",
                    help="require BM_ThreadedCycle/{2,4,8} marks/s to each "
                         "beat /1 in the committed baseline "
                         "BENCH_marking_scale.json (the 2-PE-cliff contract)")
    ap.add_argument("--scaling-gate-current", action="store_true",
                    help="additionally enforce the scaling gate on the "
                         "current run (off by default: smoke timings on a "
                         "loaded CI runner are too noisy to gate on)")
    ap.add_argument("--handoff-gate", metavar="METRICS_JSON",
                    help="gate the differential-handoff contract on this "
                         "dgr_run --metrics file from a stable-graph run")
    ap.add_argument("--handoff-baseline", metavar="JSON",
                    help="committed handoff reference record; checked "
                         "against the same contract so a refresh cannot "
                         "regress the encoding")
    ap.add_argument("--handoff-ratio", type=float, default=0.10,
                    help="max average-delta / average-full size ratio for "
                         "--handoff-gate (default 0.10 = 10%%)")
    ap.add_argument("--slo-gate", metavar="REPORT_JSON",
                    help="gate the session-SLO contract on this dgr_soak "
                         "--report file from a faulted+audited soak run")
    ap.add_argument("--slo-baseline", metavar="JSON",
                    default="bench/baselines/SESSIONS_soak_smoke.json",
                    help="committed SLO reference record carrying the "
                         "absolute floors (default %(default)s)")
    args = ap.parse_args()

    failures = []
    if args.slo_gate:
        failures += check_slo_gate(args.slo_gate, args.slo_baseline)
    if args.handoff_gate:
        failures += check_handoff_gate(args.handoff_gate, "current",
                                       args.handoff_ratio)
        if args.handoff_baseline:
            failures += check_handoff_gate(args.handoff_baseline, "baseline",
                                           args.handoff_ratio)

    if args.current is None:
        if not args.handoff_gate and not args.slo_gate:
            print("--current is required unless --handoff-gate or --slo-gate "
                  "is used", file=sys.stderr)
            return 2
        if failures:
            print("\nFAIL:", file=sys.stderr)
            for f in failures:
                print("  " + f, file=sys.stderr)
            return 1
        print("\nbench regression gate: clean")
        return 0

    if not os.path.isdir(args.baseline):
        print("no baseline directory '%s'" % args.baseline, file=sys.stderr)
        return 2
    baselines = sorted(f for f in os.listdir(args.baseline)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print("no BENCH_*.json baselines in '%s'" % args.baseline,
              file=sys.stderr)
        return 2

    for fname in baselines:
        cur_path = os.path.join(args.current, fname)
        if not os.path.exists(cur_path):
            failures.append("%s: missing from current run" % fname)
            continue
        failures += check_file(fname, os.path.join(args.baseline, fname),
                               cur_path, args.max_regress)

    if args.throughput_ratio_floor is not None:
        failures += check_throughput_ratio(
            os.path.join(args.current, "BENCH_latency.json"),
            args.throughput_ratio_floor)

    if args.scaling_gate or args.scaling_gate_current:
        failures += check_scaling_gate(
            os.path.join(args.baseline, "BENCH_marking_scale.json"),
            "baseline")
        cur_scale = os.path.join(args.current, "BENCH_marking_scale.json")
        if os.path.exists(cur_scale):
            cur_failures = check_scaling_gate(cur_scale, "current")
            if args.scaling_gate_current:
                failures += cur_failures
            elif cur_failures:
                print("note: current-run scaling gate would have failed "
                      "(not enforced without --scaling-gate-current)")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("\nbench regression gate: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
