#!/usr/bin/env python3
"""Bench-regression smoke gate: compare BENCH_*.json runs against the
committed baselines in bench/baselines/.

CI machines and the baseline machine differ (and CI runs the benches in
--smoke mode), so absolute times are meaningless across the pair. The gate
therefore self-normalizes: for every benchmark present in both the baseline
and the current run it computes the ratio current/baseline, takes the MEDIAN
ratio per bench file as that machine's speed factor, and flags only
benchmarks that regressed by more than --max-regress RELATIVE to the median
(default 0.25, the "fail >25%" contract). A uniform slowdown — a slower
runner — moves every ratio equally and trips nothing; a single benchmark
whose ratio stands out against its siblings is a real regression in that
code path.

Additionally --throughput-ratio-floor R asserts, within the CURRENT run of
BENCH_latency.json alone (no cross-machine comparison at all), that the
batched cross-PE throughput leg (BM_CrossPeTaskThroughput/1) beats the
unbatched leg (/0) by at least R on the tasks/s counter. The committed
baseline records the reference ratio from a quiet machine; CI uses a lower
floor because --smoke measurements are noisy.

Exit status: 0 clean, 1 regression or missing data, 2 usage error.
"""

import argparse
import json
import os
import statistics
import sys


def load_runs(path):
    """BENCH_*.json -> {benchmark name: run dict}. Raw runs only."""
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for r in doc.get("runs", []):
        if not r.get("error", False):
            runs[r["name"]] = r
    return runs


def check_file(name, base_path, cur_path, max_regress):
    """Compare one bench file pair. Returns a list of failure strings."""
    base = load_runs(base_path)
    cur = load_runs(cur_path)
    shared = sorted(set(base) & set(cur))
    if not shared:
        return ["%s: no shared benchmarks between baseline and current" % name]

    ratios = {}
    for bench in shared:
        bt = base[bench]["real_time"]
        ct = cur[bench]["real_time"]
        if base[bench].get("time_unit") != cur[bench].get("time_unit"):
            return ["%s: time_unit mismatch for %s" % (name, bench)]
        if bt <= 0:
            continue
        ratios[bench] = ct / bt
    if not ratios:
        return ["%s: no comparable timings" % name]

    machine = statistics.median(ratios.values())
    failures = []
    print("%s: %d shared benchmarks, machine factor %.3fx" %
          (name, len(ratios), machine))
    for bench, ratio in sorted(ratios.items()):
        rel = ratio / machine
        status = "ok"
        if rel > 1.0 + max_regress:
            status = "REGRESSED"
            failures.append(
                "%s: %s is %.0f%% slower than its baseline relative to the "
                "run's median (ratio %.3f, median %.3f)" %
                (name, bench, (rel - 1.0) * 100.0, ratio, machine))
        print("  %-60s %8.3fx  rel %6.3f  %s" % (bench, ratio, rel, status))
    return failures


def check_throughput_ratio(cur_path, floor):
    """Batched vs unbatched cross-PE throughput, current run only."""
    cur = load_runs(cur_path)
    legs = {}
    for name, run in cur.items():
        if not name.startswith("BM_CrossPeTaskThroughput/"):
            continue
        arg = name.split("/")[1]
        legs[arg] = run.get("counters", {}).get("tasks/s")
    if legs.get("0") is None or legs.get("1") is None:
        return ["throughput-ratio: BM_CrossPeTaskThroughput legs missing "
                "from %s" % cur_path]
    ratio = legs["1"] / legs["0"]
    print("throughput-ratio: batched %.3gM/s vs unbatched %.3gM/s = %.2fx "
          "(floor %.2fx)" % (legs["1"] / 1e6, legs["0"] / 1e6, ratio, floor))
    if ratio < floor:
        return ["throughput-ratio: batched/unbatched = %.2fx, below the "
                "%.2fx floor" % (ratio, floor)]
    return []


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="bench/baselines",
                    help="directory of committed BENCH_*.json baselines")
    ap.add_argument("--current", required=True,
                    help="directory of freshly produced BENCH_*.json files")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="max tolerated per-benchmark slowdown relative to "
                         "the median machine factor (default 0.25 = 25%%)")
    ap.add_argument("--throughput-ratio-floor", type=float, default=None,
                    help="require batched/unbatched cross-PE tasks/s in the "
                         "current BENCH_latency.json to be at least this")
    args = ap.parse_args()

    if not os.path.isdir(args.baseline):
        print("no baseline directory '%s'" % args.baseline, file=sys.stderr)
        return 2
    baselines = sorted(f for f in os.listdir(args.baseline)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print("no BENCH_*.json baselines in '%s'" % args.baseline,
              file=sys.stderr)
        return 2

    failures = []
    for fname in baselines:
        cur_path = os.path.join(args.current, fname)
        if not os.path.exists(cur_path):
            failures.append("%s: missing from current run" % fname)
            continue
        failures += check_file(fname, os.path.join(args.baseline, fname),
                               cur_path, args.max_regress)

    if args.throughput_ratio_floor is not None:
        failures += check_throughput_ratio(
            os.path.join(args.current, "BENCH_latency.json"),
            args.throughput_ratio_floor)

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("\nbench regression gate: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
