// E11 — Marker/mutator interference (paper §6: "the marking processes'
// interference with the reduction process is thus minimal" — no nested
// vertex locking, bounded marking-task execution).
//
// Workload: fib(13) reducing while marking cycles run continuously, sweeping
// the marking-tax knob (how many marking tasks are serviced per reduction
// task while a cycle is active). Reported shape: reduction work (tasks
// needed to finish) is INDEPENDENT of the tax — marking never blocks or
// duplicates reduction work; only wall-clock sharing changes. A row without
// any collection gives the no-GC baseline.
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct Row {
  std::uint64_t total_steps;
  std::uint64_t reduction_tasks;
  std::uint64_t mark_tasks;
  std::uint64_t cycles;
  std::int64_t result;
};

Row run(std::uint32_t tax, bool collect, std::uint64_t seed) {
  SimOptions sopt;
  sopt.marking_tax = tax;
  SimRig rig(4, seed, sopt);
  rig.load(std::string(kFib) + "def main() = fib(13);");
  if (collect) {
    rig.eng.controller().set_continuous(true, CycleOptions{false});
    rig.eng.controller().start_cycle(CycleOptions{false});
  }
  while (!rig.machine->result_of(rig.root).has_value()) {
    if (!rig.eng.step()) break;
  }
  rig.eng.controller().set_continuous(false);
  Row r;
  r.total_steps = rig.eng.metrics().steps;
  r.reduction_tasks = rig.eng.metrics().reduction_tasks;
  r.mark_tasks = rig.eng.metrics().mark_tasks + rig.eng.metrics().return_tasks;
  r.cycles = rig.eng.controller().cycles_completed();
  const auto res = rig.machine->result_of(rig.root);
  r.result = res ? res->as_int() : -1;
  return r;
}

void table() {
  print_header("E11: marker/mutator interference vs marking duty",
               "§6 remarks",
               "reduction work is invariant under collection intensity; "
               "marking adds bandwidth, not mutator work");
  std::printf("%14s %12s %12s %12s %8s %8s\n", "mode", "total_steps",
              "reduction", "marking", "cycles", "result");
  const Row base = run(8, false, 1);
  std::printf("%14s %12llu %12llu %12llu %8llu %8lld\n", "no-gc",
              (unsigned long long)base.total_steps,
              (unsigned long long)base.reduction_tasks,
              (unsigned long long)base.mark_tasks,
              (unsigned long long)base.cycles, (long long)base.result);
  for (std::uint32_t tax : {0u, 2u, 8u, 32u}) {
    const Row r = run(tax, true, 1);
    std::printf("%11s tax=%-2u %10llu %12llu %12llu %8llu %8lld\n",
                "continuous", tax, (unsigned long long)r.total_steps,
                (unsigned long long)r.reduction_tasks,
                (unsigned long long)r.mark_tasks, (unsigned long long)r.cycles,
                (long long)r.result);
  }
}

void BM_FibNoGc(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(8, false, 1).result);
}
BENCHMARK(BM_FibNoGc)->Unit(benchmark::kMillisecond);

void BM_FibContinuousGc(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run(static_cast<std::uint32_t>(state.range(0)), true, 1).result);
}
BENCHMARK(BM_FibContinuousGc)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("interference", argc, argv);
}
