// E17 — Partitioning/locality (paper §2: "the computation graph is divided
// into a number of subgraphs (called partitions), each of which is assigned
// to an autonomous PE ... more akin to conventional distributed computing
// models" — i.e. granularity/locality is the model's lever against the
// "high communication overhead inherent in the fine-grained dataflow
// approach").
//
// Sweep the instance-placement policy: scatter (each template node lands on
// the next PE round-robin — fine-grained, dataflow-like) vs owner-local
// (whole instance on the caller's PE — coarse partitions). Measured shape:
// scatter maximizes cross-PE traffic; owner-local keeps most task
// propagation inside a partition, exactly the §2 trade-off.
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct Row {
  std::int64_t result;
  std::uint64_t remote;
  std::uint64_t local;
  std::uint64_t bytes;
};

Row run(Placement placement, std::uint32_t pes, std::uint64_t seed) {
  Graph g(pes);
  SimOptions sopt;
  sopt.seed = seed;
  SimEngine eng(g, sopt);
  MachineOptions mopt;
  mopt.placement = placement;
  Machine m(g, eng.mutator(), eng,
            Program::from_source(std::string(kFib) + "def main() = fib(15);"),
            mopt);
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  eng.controller().set_continuous(true, CycleOptions{false});
  eng.controller().start_cycle(CycleOptions{false});
  m.demand(root);
  while (!m.result_of(root).has_value()) {
    if (!eng.step()) break;
  }
  eng.controller().set_continuous(false);
  Row r;
  r.result = m.result_of(root) ? m.result_of(root)->as_int() : -1;
  r.remote = eng.metrics().remote_messages;
  r.local = eng.metrics().local_messages;
  r.bytes = eng.metrics().bytes_sent;
  return r;
}

void table() {
  print_header("E17: placement policy vs communication overhead",
               "§2 partitioning rationale",
               "coarse (owner-local) partitions keep task propagation "
               "inside PEs; fine-grained scatter pays dataflow-level "
               "message traffic for the same computation");
  std::printf("%6s %14s %12s %12s %10s %14s %8s\n", "PEs", "placement",
              "remote_msgs", "local_msgs", "remote%", "bytes", "result");
  for (std::uint32_t pes : {2u, 4u, 8u}) {
    for (Placement p :
         {Placement::kHome, Placement::kChunk, Placement::kScatter}) {
      const Row r = run(p, pes, 11);
      const double pct = 100.0 * static_cast<double>(r.remote) /
                         static_cast<double>(r.remote + r.local);
      std::printf("%6u %14s %12llu %12llu %9.1f%% %14llu %8lld\n", pes,
                  placement_name(p),
                  (unsigned long long)r.remote, (unsigned long long)r.local,
                  pct, (unsigned long long)r.bytes, (long long)r.result);
    }
  }
  std::printf(
      "\nnote: home with a single entry call degenerates to one partition —\n"
      "zero communication but zero parallelism; scatter is the fine-grained\n"
      "dataflow end. chunk (one PE per instantiation) is the streaming\n"
      "greedy between the two, which is precisely the trade-off §2 frames.\n");
}

void BM_Scatter(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(run(Placement::kScatter, 4, seed++).result);
}
BENCHMARK(BM_Scatter)->Unit(benchmark::kMillisecond);

void BM_OwnerLocal(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(run(Placement::kHome, 4, seed++).result);
}
BENCHMARK(BM_OwnerLocal)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("locality", argc, argv);
}
