// E18 — Session-workload throughput and mutator stall (docs/WORKLOAD.md).
//
// Drives the src/workload open-loop session generator — Poisson/bursty
// arrivals, Zipf hot-key churn, lifetime-bounded completion — through the
// engines and measures the two SLO quantities the soak harness gates on:
// sessions per second and the mutator-stall distribution (the time a session
// mutation spends blocked on collector cooperation). The table reports the
// deterministic simulator run; the timed legs extend BM_MarkCycleLatency
// (bench_latency.cpp) from a bare marking cycle to a full session epoch: the
// same cycle machinery, now with live arrival/churn/retire traffic and — on
// the threaded leg — real PE threads contending with the mutator.
//
// bench/baselines/BENCH_sessions.json is the committed wall-clock reference
// (ratio-gated); bench/baselines/SESSIONS_soak_smoke.json carries the
// absolute SLO floors checked by check_bench_regression.py --slo-gate
// against a live dgr_soak report.
#include "bench/bench_common.h"
#include "runtime/thread_engine.h"
#include "workload/session.h"

namespace dgr::bench {
namespace {

using workload::SessionDriver;
using workload::WorkloadOptions;

WorkloadOptions base_options(std::uint64_t seed) {
  WorkloadOptions w;
  w.seed = seed;
  w.pes = 4;
  w.ticks = g_smoke ? 24 : 64;
  w.rate = 2.0;
  w.sim_steps_per_tick = 2000;
  return w;
}

struct EpochRow {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  std::uint64_t churn = 0;
  std::uint64_t cycles = 0;
  std::uint64_t swept = 0;
  double stall_p99_us = 0.0;
};

// One sim epoch: deterministic, message latency configurable — the session
// version of bench_latency's run_mark.
EpochRow run_sim_epoch(const WorkloadOptions& w, std::uint32_t latency) {
  Graph g(w.pes, workload::required_capacity(w));
  SimOptions sopt;
  sopt.seed = w.seed;
  sopt.max_latency = latency;
  SimEngine eng(g, sopt);
  auto drv_eng = workload::make_driver(eng);
  SessionDriver drv(*drv_eng, w);
  drv.setup();
  for (PeId pe = 0; pe < g.num_pes(); ++pe)
    g.store(pe).set_fixed_capacity(true);
  drv.run(workload::generate_schedule(w));
  EpochRow r;
  r.opened = drv.totals().opened;
  r.closed = drv.totals().closed;
  r.churn = drv.totals().churn;
  r.cycles = drv.totals().cycles;
  r.swept = eng.controller().total_swept();
  return r;
}

// One threaded epoch: the mutator contends with live PE threads, so the
// stall histogram is real blocked time.
EpochRow run_thread_epoch(const WorkloadOptions& w) {
  Graph g(w.pes, workload::required_capacity(w));
  ThreadEngine eng(g, NetOptions{});
  auto drv_eng = workload::make_driver(eng);
  SessionDriver drv(*drv_eng, w);
  drv.setup();
  for (PeId pe = 0; pe < g.num_pes(); ++pe)
    g.store(pe).set_fixed_capacity(true);
  eng.start();
  drv.run(workload::generate_schedule(w));
  eng.stop();
  EpochRow r;
  r.opened = drv.totals().opened;
  r.closed = drv.totals().closed;
  r.churn = drv.totals().churn;
  r.cycles = drv.totals().cycles;
  r.stall_p99_us =
      eng.metrics_registry().merged_hist(obs::Hist::kMutatorStallUs).p99();
  return r;
}

void table() {
  print_header("E18: session workload (soak driver)",
               "§4 concurrent mutator/collector, §5.4.1 invariants",
               "open-loop session traffic sustains sessions/s with bounded "
               "mutator stall while cycles continuously reclaim retired "
               "regions");
  std::printf("sim epoch, 4 PEs, %u ticks:\n", base_options(1).ticks);
  std::printf("   %8s %8s %8s %8s %8s %8s %8s\n", "arrivals", "latency",
              "opened", "closed", "churn", "cycles", "swept");
  for (const bool bursty : {false, true}) {
    for (std::uint32_t lat : {0u, 8u}) {
      WorkloadOptions w = base_options(7);
      if (bursty) w.arrivals = workload::Arrivals::kBursty;
      const EpochRow r = run_sim_epoch(w, lat);
      std::printf("   %8s %8u %8llu %8llu %8llu %8llu %8llu\n",
                  bursty ? "bursty" : "poisson", lat,
                  (unsigned long long)r.opened, (unsigned long long)r.closed,
                  (unsigned long long)r.churn, (unsigned long long)r.cycles,
                  (unsigned long long)r.swept);
    }
  }
}

// BM_MarkCycleLatency extended to a session epoch: the marking cycles now
// run against live arrival/churn/retire traffic, swept regions included.
// Arg = cross-PE message latency (sim steps), as in the original.
void BM_SessionEpochSim(benchmark::State& state) {
  std::uint64_t seed = 1;
  std::uint64_t sessions = 0, cycles = 0;
  for (auto _ : state) {
    const EpochRow r = run_sim_epoch(
        base_options(seed++), static_cast<std::uint32_t>(state.range(0)));
    sessions += r.closed;
    cycles += r.cycles;
  }
  state.counters["sessions/s"] = benchmark::Counter(
      static_cast<double>(sessions), benchmark::Counter::kIsRate);
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SessionEpochSim)->Arg(0)->Arg(8)->Unit(benchmark::kMillisecond);

// The SLO leg: sessions/s and mutator-stall p99 with real PE threads
// marking concurrently. Wall-clock (UseRealTime) because the quantity of
// interest is end-to-end epoch latency under contention.
void BM_SessionEpochThreaded(benchmark::State& state) {
  std::uint64_t seed = 1;
  std::uint64_t sessions = 0;
  double stall_p99 = 0.0;
  for (auto _ : state) {
    const EpochRow r = run_thread_epoch(base_options(seed++));
    sessions += r.closed;
    stall_p99 = std::max(stall_p99, r.stall_p99_us);
  }
  state.counters["sessions/s"] = benchmark::Counter(
      static_cast<double>(sessions), benchmark::Counter::kIsRate);
  state.counters["stall_p99_us"] = stall_p99;
}
BENCHMARK(BM_SessionEpochThreaded)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::detect_smoke(argc, argv);
  dgr::bench::table();
  return dgr::bench::run_bench_main("sessions", argc, argv, "0.05");
}
