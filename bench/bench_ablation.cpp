// Ablation study: switch off each of the algorithm's load-bearing
// mechanisms and measure the resulting failures (DESIGN.md's "ablation
// benches for the design choices").
//
//   A. Mutator cooperation OFF (Fig 4-2 splicing disabled): the §4.2 race
//      loses reachable vertices — counted as dangling edges after a
//      concurrent cycle, across seeds.
//   B. In-transit accounting OFF (epoch stamps + stale waiters disabled):
//      healthy concurrent computations get falsely reported deadlocked.
//   C. Marking tax 0 vs 8 against a runaway allocator: without the tax the
//      cycle may never terminate (producer outruns the wave).
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

// ---- A: cooperation ----

struct CoopRow {
  int runs = 0;
  int corrupted_runs = 0;
  std::size_t vertices_lost = 0;
};

CoopRow run_cooperation(bool coop_on, int seeds) {
  CoopRow row;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    ++row.runs;
    Graph g(4);
    RandomGraphOptions gopt;
    gopt.num_vertices = 300;
    gopt.p_detached = 0.2;
    gopt.seed = seed;
    const BuiltGraph b = build_random_graph(g, gopt);
    SimOptions sopt;
    sopt.seed = seed ^ 0xc0ffee;
    SimEngine eng(g, sopt);
    eng.set_root(b.root);
    eng.mutator().set_cooperation_enabled(coop_on);
    eng.controller().start_cycle(CycleOptions{false});

    Rng rng(seed * 17);
    auto sample = [&] {
      VertexId v = b.root;
      for (std::uint64_t i = rng.below(10); i > 0; --i) {
        const Vertex& vx = g.at(v);
        if (vx.args.empty()) break;
        const VertexId nxt = vx.args[rng.below(vx.args.size())].to;
        if (!nxt.valid() || g.is_free(nxt)) break;
        v = nxt;
      }
      return v;
    };
    while (!eng.controller().idle()) {
      for (std::uint64_t i = rng.below(3); i > 0; --i)
        if (!eng.step()) break;
      if (eng.controller().idle()) break;
      // The §4.2 mutation pair: re-route a grandchild then cut the old path.
      const VertexId a = sample();
      if (g.at(a).args.empty()) continue;
      const VertexId bb = g.at(a).args[rng.below(g.at(a).args.size())].to;
      if (!bb.valid() || g.is_free(bb) || g.at(bb).args.empty()) continue;
      const VertexId c = g.at(bb).args[rng.below(g.at(bb).args.size())].to;
      if (!c.valid() || g.is_free(c)) continue;
      eng.mutator().add_reference(a, bb, c, ReqKind::kVital);
      eng.mutator().delete_reference(bb, c);
    }
    // Count reachable-but-swept damage: dangling edges from live vertices.
    std::size_t lost = 0;
    g.for_each_live([&](VertexId v) {
      for (const ArgEdge& e : g.at(v).args)
        if (e.to.valid() && g.is_free(e.to)) ++lost;
    });
    if (lost > 0) ++row.corrupted_runs;
    row.vertices_lost += lost;
  }
  return row;
}

// ---- B: in-transit accounting ----

struct TransitRow {
  int runs = 0;
  int runs_with_false_reports = 0;
  std::uint64_t false_reports = 0;
};

TransitRow run_transit(bool transit_on, int seeds) {
  TransitRow row;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    ++row.runs;
    SimRig rig(4, seed);
    rig.eng.mutator().set_transit_accounting(transit_on);
    rig.load(std::string(kFib) + "def main() = fib(11);");
    std::uint64_t false_here = 0;
    rig.eng.controller().set_cycle_observer([&](const CycleResult& c) {
      if (c.deadlock_report_valid && !c.deadlocked.empty())
        false_here += c.deadlocked.size();
    });
    rig.eng.controller().set_continuous(true);  // with M_T every cycle
    rig.eng.controller().start_cycle();
    while (!rig.machine->result_of(rig.root).has_value()) {
      if (!rig.eng.step()) break;
    }
    rig.eng.controller().set_continuous(false);
    rig.eng.run(50'000'000);
    if (false_here > 0) ++row.runs_with_false_reports;
    row.false_reports += false_here;
  }
  return row;
}

// ---- C: marking tax ----

struct TaxRow {
  bool converged = false;
  std::uint64_t cycle_steps = 0;
};

TaxRow run_tax(std::uint32_t tax, std::uint64_t budget) {
  SimOptions sopt;
  sopt.marking_tax = tax;
  SimRig rig(4, 3, sopt);
  MachineOptions mopt;
  mopt.speculate_if = true;
  rig.load(
      "def boom(n) = boom(n + 1) + boom(n + 2);"
      "def main() = if 1 < 2 then 99 else boom(0);",
      mopt);
  // Develop the runaway, then try to finish one full (M_T + M_R) cycle
  // within the budget. M_T must trace the still-growing task frontier —
  // without the tax the producer outruns the wave.
  for (int i = 0; i < 20000; ++i) rig.eng.step();
  rig.eng.controller().start_cycle(CycleOptions{true});
  TaxRow row;
  while (!rig.eng.controller().idle() && row.cycle_steps < budget) {
    if (!rig.eng.step()) break;
    ++row.cycle_steps;
  }
  row.converged = rig.eng.controller().idle();
  return row;
}

void table() {
  print_header("Ablations: what breaks without each mechanism",
               "§4.2 cooperation; §5.2/[5] in-transit accounting; §6 "
               "marker pacing",
               "every mechanism is load-bearing: disabling it produces the "
               "failure the paper predicts");
  std::printf("A) mutator cooperation (20 seeds of concurrent mutation):\n");
  std::printf("   %12s %8s %16s %14s\n", "cooperation", "runs",
              "corrupted_runs", "lost_edges");
  for (bool on : {true, false}) {
    const CoopRow r = run_cooperation(on, 20);
    std::printf("   %12s %8d %16d %14zu\n", on ? "ON" : "OFF", r.runs,
                r.corrupted_runs, r.vertices_lost);
  }
  std::printf("\nB) in-transit accounting (15 seeds, fib under continuous "
              "deadlock-detecting cycles):\n");
  std::printf("   %12s %8s %22s %16s\n", "accounting", "runs",
              "runs_w_false_deadlock", "false_reports");
  for (bool on : {true, false}) {
    const TransitRow r = run_transit(on, 15);
    std::printf("   %12s %8d %22d %16llu\n", on ? "ON" : "OFF", r.runs,
                r.runs_with_false_reports,
                (unsigned long long)r.false_reports);
  }
  std::printf("\nC) marking tax vs a runaway allocator (cycle step budget "
              "2M):\n");
  std::printf("   %8s %12s %14s\n", "tax", "converged", "cycle_steps");
  for (std::uint32_t tax : {8u, 2u, 0u}) {
    const TaxRow r = run_tax(tax, 2'000'000);
    std::printf("   %8u %12s %14llu\n", tax, r.converged ? "yes" : "NO",
                (unsigned long long)r.cycle_steps);
  }
}

void BM_AblationCoopOn(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_cooperation(true, 3));
}
BENCHMARK(BM_AblationCoopOn)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("ablation", argc, argv);
}
