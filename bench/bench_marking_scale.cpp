// E8 — Decentralized scaling (paper §1, §4: "highly parallel ... not relying
// on any centralized data or control").
//
// Table: one marking cycle over a fixed ~N-vertex graph, threaded engine,
// PEs swept 1..hardware. A decentralized marker should scale: wall time per
// cycle drops as PEs are added, with no shared stack or queue. Also reports
// the cross-PE message volume (the cost of decentralization).
#include <thread>

#include "bench/bench_common.h"
#include "runtime/thread_engine.h"

namespace dgr::bench {
namespace {

Graph make_graph(std::uint32_t pes, std::uint32_t vertices,
                 std::uint64_t seed) {
  Graph g(pes, vertices / pes + 64);
  for (PeId pe = 0; pe < pes; ++pe) g.store(pe).set_fixed_capacity(true);
  RandomGraphOptions opt;
  opt.num_vertices = vertices;
  opt.avg_out_degree = 3.0;
  opt.p_detached = 0.2;
  opt.seed = seed;
  build_random_graph(g, opt);
  return g;
}

VertexId root_of(const Graph&) { return VertexId{0, 0}; }

void table() {
  print_header("E8: marking throughput vs #PEs",
               "§1/§4 decentralization claim",
               "cycle wall-time falls with PEs; remote traffic grows");
  // Smoke mode shrinks the sweep (fewer vertices, PE fan capped) so CI's
  // bench-smoke job exercises the path in well under a second per leg.
  const std::uint32_t kVertices = g_smoke ? 1 << 13 : 1 << 17;
  std::printf("%6s %12s %14s %16s %14s\n", "PEs", "cycle_ms",
              "Mvertices/s", "remote_msgs", "bytes");
  const std::uint32_t hw = std::max(2u, std::thread::hardware_concurrency());
  for (std::uint32_t pes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    if (pes > 2 * hw) break;
    if (g_smoke && pes > 8) break;
    Graph g = make_graph(pes, kVertices, 42);
    ThreadEngine eng(g);
    eng.set_root(root_of(g));
    eng.start();
    const auto t0 = std::chrono::steady_clock::now();
    CycleOptions copt;
    copt.detect_deadlock = false;
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
    const auto t1 = std::chrono::steady_clock::now();
    eng.stop();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double mvps =
        static_cast<double>(eng.controller().last().stats_r.marks) /
        (ms * 1e3);
    std::printf("%6u %12.2f %14.2f %16llu %14llu\n", pes, ms, mvps,
                static_cast<unsigned long long>(eng.stats().remote_messages),
                static_cast<unsigned long long>(eng.stats().bytes_sent));
  }
}

// marks/s = R-marked vertices per wall-clock second. The numerator is the
// number of vertices carrying the R mark after a cycle — invariant across PE
// counts (every engine marks the same live set) — so the counter is a pure
// cycle-rate: it rises iff cycles finish faster. Two deliberate choices:
//   - NOT mark-task executions (mark_tasks): boundary-summary dedup cuts
//     redundant re-marks, which would make the faster engine score lower;
//   - NOT CPU-time based (kIsRate): the benchmark thread mostly condvar-waits
//     for the PE threads, so its CPU time made slower engines look faster,
//     inverting the 2-PE cliff in the recorded baselines.
std::uint64_t count_marked(const Graph& g, ThreadEngine& eng) {
  std::uint64_t marked = 0;
  g.for_each_live([&](VertexId v) {
    if (eng.marker().is_marked(Plane::kR, v)) ++marked;
  });
  return marked;
}

void BM_ThreadedCycle(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  // Full-size graph even under --smoke: the CI regression gate compares
  // per-iteration real_time against the full-mode baseline, so the workload
  // must be identical — smoke speed comes from the 0.01s measurement cap
  // (one ~0.2s cycle per leg), not from shrinking the graph.
  Graph g = make_graph(pes, 1 << 15, 7);
  ThreadEngine eng(g);
  eng.set_root(root_of(g));
  eng.start();
  CycleOptions copt;
  copt.detect_deadlock = false;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  eng.stop();
  // Every cycle marks the same live set, so vertices marked across the loop
  // = the final cycle's marked count × iterations.
  state.counters["marks/s"] =
      wall_s > 0.0
          ? static_cast<double>(count_marked(g, eng)) *
                static_cast<double>(state.iterations()) / wall_s
          : 0.0;
  state.counters["boundary_dedup"] = double(eng.stats().boundary_dedup);
  state.counters["steal_tasks"] = double(eng.stats().steal_tasks);
  state.counters["edge_cut"] = double(eng.stats().edge_cut);
  report_obs_counters(state, eng.metrics_registry());
  state.counters["mailbox_high_water"] =
      double(eng.stats().mailbox_high_water);
}
// UseRealTime: the benchmark thread mostly condvar-waits for the PE threads,
// so sizing iterations by its CPU time would run ~100x more iterations than
// the wall-time budget intends.
BENCHMARK(BM_ThreadedCycle)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The same cycle with batching disabled (one message, one mailbox lock):
// the --no-batch control leg. Compare against BM_ThreadedCycle at the same
// PE count to read the coalescing win at scale.
void BM_ThreadedCycleNoBatch(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  Graph g = make_graph(pes, 1 << 15, 7);  // full-size: see BM_ThreadedCycle
  NetOptions net;
  net.batch_bytes = 0;
  ThreadEngine eng(g, net);
  eng.set_root(root_of(g));
  eng.start();
  CycleOptions copt;
  copt.detect_deadlock = false;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  eng.stop();
  // Same wall-clock, marked-vertex rate as BM_ThreadedCycle (see above).
  state.counters["marks/s"] =
      wall_s > 0.0
          ? static_cast<double>(count_marked(g, eng)) *
                static_cast<double>(state.iterations()) / wall_s
          : 0.0;
  report_obs_counters(state, eng.metrics_registry());
  state.counters["mailbox_high_water"] =
      double(eng.stats().mailbox_high_water);
}
BENCHMARK(BM_ThreadedCycleNoBatch)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The deterministic simulator's cycle cost for the same family, as a
// message-count (not time) view of the algorithm.
void BM_SimCycleSteps(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SimRig rig(8, 3);
    RandomGraphOptions opt;
    opt.num_vertices = n;
    opt.seed = 3;
    rig.load_static(opt);
    state.ResumeTiming();
    CycleOptions copt;
    copt.detect_deadlock = false;
    rig.eng.controller().start_cycle(copt);
    rig.eng.run_until_cycle_done();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimCycleSteps)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// The 100k-vertex sim leg is registered only outside --smoke: at the 0.5s
// smoke budget it measures exactly one iteration, and a single cold
// iteration (allocator + page-fault warmup for a 100k-vertex rig) runs
// ~70% over the amortized full-mode baseline — pure noise for the
// regression gate. The smaller legs keep the code path covered in CI;
// the regression checker only compares benchmarks present in both runs.
void register_full_only_benches() {
  benchmark::RegisterBenchmark("BM_SimCycleSteps", BM_SimCycleSteps)
      ->Arg(100000)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace dgr::bench

int main(int argc, char** argv) {
  if (!dgr::bench::detect_smoke(argc, argv))
    dgr::bench::register_full_only_benches();
  dgr::bench::table();
  // 0.5s smoke budget: one threaded cycle runs ~0.2s wall, so the default
  // 0.01s cap would measure a single iteration — pure scheduling noise for
  // the regression gate's ratios. ~3 iterations per leg keeps the whole
  // binary under ~10s in CI and the ratios stable.
  return dgr::bench::run_bench_main("marking_scale", argc, argv, "0.5");
}
