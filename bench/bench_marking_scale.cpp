// E8 — Decentralized scaling (paper §1, §4: "highly parallel ... not relying
// on any centralized data or control").
//
// Table: one marking cycle over a fixed ~N-vertex graph, threaded engine,
// PEs swept 1..hardware. A decentralized marker should scale: wall time per
// cycle drops as PEs are added, with no shared stack or queue. Also reports
// the cross-PE message volume (the cost of decentralization).
#include <thread>

#include "bench/bench_common.h"
#include "runtime/thread_engine.h"

namespace dgr::bench {
namespace {

Graph make_graph(std::uint32_t pes, std::uint32_t vertices,
                 std::uint64_t seed) {
  Graph g(pes, vertices / pes + 64);
  for (PeId pe = 0; pe < pes; ++pe) g.store(pe).set_fixed_capacity(true);
  RandomGraphOptions opt;
  opt.num_vertices = vertices;
  opt.avg_out_degree = 3.0;
  opt.p_detached = 0.2;
  opt.seed = seed;
  build_random_graph(g, opt);
  return g;
}

VertexId root_of(const Graph&) { return VertexId{0, 0}; }

void table() {
  print_header("E8: marking throughput vs #PEs",
               "§1/§4 decentralization claim",
               "cycle wall-time falls with PEs; remote traffic grows");
  constexpr std::uint32_t kVertices = 1 << 17;  // 131072
  std::printf("%6s %12s %14s %16s %14s\n", "PEs", "cycle_ms",
              "Mvertices/s", "remote_msgs", "bytes");
  const std::uint32_t hw = std::max(2u, std::thread::hardware_concurrency());
  for (std::uint32_t pes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    if (pes > 2 * hw) break;
    Graph g = make_graph(pes, kVertices, 42);
    ThreadEngine eng(g);
    eng.set_root(root_of(g));
    eng.start();
    const auto t0 = std::chrono::steady_clock::now();
    CycleOptions copt;
    copt.detect_deadlock = false;
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
    const auto t1 = std::chrono::steady_clock::now();
    eng.stop();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double mvps =
        static_cast<double>(eng.controller().last().stats_r.marks) /
        (ms * 1e3);
    std::printf("%6u %12.2f %14.2f %16llu %14llu\n", pes, ms, mvps,
                static_cast<unsigned long long>(eng.stats().remote_messages),
                static_cast<unsigned long long>(eng.stats().bytes_sent));
  }
}

void BM_ThreadedCycle(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  Graph g = make_graph(pes, 1 << 15, 7);
  ThreadEngine eng(g);
  eng.set_root(root_of(g));
  eng.start();
  CycleOptions copt;
  copt.detect_deadlock = false;
  for (auto _ : state) {
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
  }
  eng.stop();
  state.counters["marks/s"] = benchmark::Counter(
      static_cast<double>(eng.marker().stats(Plane::kR).marks),
      benchmark::Counter::kIsRate);
  report_obs_counters(state, eng.metrics_registry());
  state.counters["mailbox_high_water"] =
      double(eng.stats().mailbox_high_water);
}
BENCHMARK(BM_ThreadedCycle)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The same cycle with batching disabled (one message, one mailbox lock):
// the --no-batch control leg. Compare against BM_ThreadedCycle at the same
// PE count to read the coalescing win at scale.
void BM_ThreadedCycleNoBatch(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  Graph g = make_graph(pes, 1 << 15, 7);
  NetOptions net;
  net.batch_bytes = 0;
  ThreadEngine eng(g, net);
  eng.set_root(root_of(g));
  eng.start();
  CycleOptions copt;
  copt.detect_deadlock = false;
  for (auto _ : state) {
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
  }
  eng.stop();
  state.counters["marks/s"] = benchmark::Counter(
      static_cast<double>(eng.marker().stats(Plane::kR).marks),
      benchmark::Counter::kIsRate);
  report_obs_counters(state, eng.metrics_registry());
  state.counters["mailbox_high_water"] =
      double(eng.stats().mailbox_high_water);
}
BENCHMARK(BM_ThreadedCycleNoBatch)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The deterministic simulator's cycle cost for the same family, as a
// message-count (not time) view of the algorithm.
void BM_SimCycleSteps(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SimRig rig(8, 3);
    RandomGraphOptions opt;
    opt.num_vertices = n;
    opt.seed = 3;
    rig.load_static(opt);
    state.ResumeTiming();
    CycleOptions copt;
    copt.detect_deadlock = false;
    rig.eng.controller().start_cycle(copt);
    rig.eng.run_until_cycle_done();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimCycleSteps)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("marking_scale", argc, argv);
}
