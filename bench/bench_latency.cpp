// E16 — Message latency (the distributed-machine regime, §2: PEs
// "communicating via messages").
//
// Sweep the cross-PE delivery delay and measure its effect on (a) a marking
// cycle over a static graph and (b) a full reduction run with continuous
// collection. Measured shape: the abundant task parallelism of diffused
// graph reduction HIDES latency — there is almost always executable work on
// every PE, so executed-step spans stay flat while messages sit in flight —
// and correctness is untouched (the in-transit accounting absorbs arbitrary
// flight times). This latency tolerance is exactly the §1 argument for the
// "completely homogeneous, diffused" computation model.
#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "net/mailbox.h"
#include "net/wire.h"
#include "runtime/thread_engine.h"

namespace dgr::bench {
namespace {

struct MarkRow {
  std::uint64_t marks;
  std::uint64_t span;  // simulated step span of the cycle
  double lat_p50 = 0;  // observed delivery latency (sim steps)
  double lat_p99 = 0;
};

MarkRow run_mark(std::uint32_t latency, std::uint64_t seed) {
  Graph g(8);
  RandomGraphOptions opt;
  opt.num_vertices = 20000;
  opt.seed = seed;
  const BuiltGraph b = build_random_graph(g, opt);
  SimOptions sopt;
  sopt.seed = seed;
  sopt.max_latency = latency;
  SimEngine eng(g, sopt);
  eng.set_root(b.root);
  const std::uint64_t t0 = eng.metrics().steps;
  eng.controller().start_cycle(CycleOptions{false});
  eng.run_until_cycle_done();
  MarkRow r;
  r.marks = eng.controller().last().stats_r.marks;
  r.span = eng.metrics().steps - t0;
  const Histogram lat =
      eng.metrics_registry().merged_hist(obs::Hist::kMsgLatency);
  r.lat_p50 = lat.p50();
  r.lat_p99 = lat.p99();
  return r;
}

struct RunRow {
  std::int64_t result;
  std::uint64_t reduction;
  std::uint64_t span;
};

RunRow run_fib(std::uint32_t latency, std::uint64_t seed) {
  SimOptions sopt;
  sopt.max_latency = latency;
  SimRig rig(4, seed, sopt);
  rig.load(std::string(kFib) + "def main() = fib(13);");
  rig.eng.controller().set_continuous(true, CycleOptions{false});
  rig.eng.controller().start_cycle(CycleOptions{false});
  while (!rig.machine->result_of(rig.root).has_value()) {
    if (!rig.eng.step()) break;
  }
  rig.eng.controller().set_continuous(false);
  RunRow r;
  const auto res = rig.machine->result_of(rig.root);
  r.result = res ? res->as_int() : -1;
  r.reduction = rig.eng.metrics().reduction_tasks;
  r.span = rig.eng.metrics().steps;
  return r;
}

void table() {
  print_header("E16: cross-PE message latency",
               "§1/§2 message-passing model",
               "task parallelism hides latency: work and executed-step span "
               "stay flat across delays; results and GC stay correct");
  std::printf("marking cycle, 20k-vertex graph:\n");
  std::printf("   %8s %12s %12s %10s %10s\n", "latency", "mark_msgs",
              "step_span", "lat_p50", "lat_p99");
  for (std::uint32_t lat : {0u, 2u, 8u, 32u}) {
    const MarkRow r = run_mark(lat, 7);
    std::printf("   %8u %12llu %12llu %10.1f %10.1f\n", lat,
                (unsigned long long)r.marks, (unsigned long long)r.span,
                r.lat_p50, r.lat_p99);
  }
  std::printf("\nfib(13) under continuous collection:\n");
  std::printf("   %8s %10s %12s %12s\n", "latency", "result", "reduction",
              "step_span");
  for (std::uint32_t lat : {0u, 2u, 8u, 32u}) {
    const RunRow r = run_fib(lat, 3);
    std::printf("   %8u %10lld %12llu %12llu\n", lat, (long long)r.result,
                (unsigned long long)r.reduction, (unsigned long long)r.span);
  }
}

void BM_MarkCycleLatency(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_mark(static_cast<std::uint32_t>(state.range(0)), seed++).marks);
}
BENCHMARK(BM_MarkCycleLatency)->Arg(0)->Arg(8)->Unit(benchmark::kMillisecond);

// Cross-PE task throughput through the threaded engine's message-plane hot
// path: a sender thread wire-encodes marking tasks and a receiver thread
// decodes and consumes them, pumped through a real Mailbox exactly the way
// the PE loops do it.
//   arg 0 — the pre-batching plane: deliver() + receive(), one queue lock
//           and one wake per message on each side;
//   arg 1 — the batched plane: deliver_batch() of up-to-4-KiB batches +
//           drain(64), one lock per batch per side.
// Identical per-task encode/decode work on both legs, so the delta is pure
// message-plane overhead. The committed baseline
// (bench/baselines/BENCH_latency.json) records the acceptance ratio:
// batched tasks/s >= 1.5x unbatched.
void BM_CrossPeTaskThroughput(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  constexpr std::size_t kTasksPerIter = 1 << 15;
  constexpr std::size_t kBatchBytes = 4096;
  Mailbox mb;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> stop{false};
  std::uint64_t sink = 0;
  // One wire-encoded marking task, copied per send — the same
  // one-allocation-per-message cost the engine pays on both legs.
  const Mailbox::Bytes wire =
      encode_task(Task::mark(Plane::kR, VertexId{0, 1}, VertexId{1, 2}, 3));
  std::thread rx([&] {
    std::vector<Mailbox::Bytes> buf;
    while (!stop.load(std::memory_order_acquire)) {
      if (batched) {
        buf.clear();
        const std::size_t n = mb.drain(64, buf);
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        for (const Mailbox::Bytes& m : buf) sink += m.size();
        consumed.fetch_add(n, std::memory_order_release);
      } else {
        std::optional<Mailbox::Bytes> m = mb.try_receive();
        if (!m.has_value()) {
          std::this_thread::yield();
          continue;
        }
        sink += m->size();
        consumed.fetch_add(1, std::memory_order_release);
      }
    }
  });
  std::uint64_t produced = 0;
  std::uint64_t batches = 0;
  for (auto _ : state) {
    std::vector<Mailbox::Bytes> pending;
    std::size_t pending_bytes = 0;
    for (std::size_t i = 0; i < kTasksPerIter; ++i) {
      Mailbox::Bytes bytes = wire;
      if (batched) {
        pending_bytes += bytes.size();
        pending.push_back(std::move(bytes));
        if (pending_bytes >= kBatchBytes) {
          mb.deliver_batch(std::move(pending));
          pending.clear();
          pending_bytes = 0;
          ++batches;
        }
      } else {
        mb.deliver(std::move(bytes));
      }
    }
    if (!pending.empty()) {
      mb.deliver_batch(std::move(pending));
      ++batches;
    }
    produced += kTasksPerIter;
    while (consumed.load(std::memory_order_acquire) < produced)
      std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  rx.join();
  benchmark::DoNotOptimize(sink);
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(produced), benchmark::Counter::kIsRate);
  state.counters["msg_batched"] = batched ? double(produced) : 0.0;
  state.counters["batch_flushes"] = double(batches);
  state.counters["mailbox_high_water"] = double(mb.high_water());
}
BENCHMARK(BM_CrossPeTaskThroughput)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("latency", argc, argv);
}
