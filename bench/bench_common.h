// Shared setup helpers for the experiment benches. Each bench binary
// regenerates one experiment from DESIGN.md §3 (the per-figure/property
// reproduction index): it first prints the experiment's table (deterministic,
// simulator work-unit numbers), then runs google-benchmark wall-clock
// timings for the same code paths.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "obs/metrics.h"
#include "reduction/machine.h"
#include "runtime/sim_engine.h"

namespace dgr::bench {

inline const char* kFib =
    "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);";

// True when this process was invoked with --smoke (CI's bench-smoke job).
// Benches consult it to shrink table() sweeps and per-iteration workloads so
// every code path still runs but the whole binary finishes in seconds.
// run_bench_main sets it too, but mains that print tables before calling
// run_bench_main should call detect_smoke first.
inline bool g_smoke = false;

// Scan argv for --smoke (without consuming it — run_bench_main strips it).
inline bool detect_smoke(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") g_smoke = true;
  return g_smoke;
}

struct SimRig {
  Graph g;
  SimEngine eng;
  std::unique_ptr<Machine> machine;
  VertexId root = VertexId::invalid();

  SimRig(std::uint32_t pes, std::uint64_t seed, SimOptions sopt = {})
      : g(pes), eng(g, [&] {
          sopt.seed = seed;
          return sopt;
        }()) {}

  // Attach a program and demand main.
  void load(const std::string& src, MachineOptions mopt = {}) {
    machine = std::make_unique<Machine>(g, eng.mutator(), eng,
                                        Program::from_source(src), mopt);
    root = machine->load_main();
    eng.set_root(root);
    eng.set_reducer([this](const Task& t) { machine->exec(t); });
    machine->demand(root);
  }

  // Attach a static random graph workload.
  BuiltGraph load_static(const RandomGraphOptions& opt) {
    BuiltGraph b = build_random_graph(g, opt);
    root = b.root;
    eng.set_root(root);
    for (const TaskRef& t : b.tasks)
      eng.spawn(Task::request(t.s, t.d, ReqKind::kVital));
    return b;
  }
};

inline void print_header(const char* experiment, const char* source,
                         const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s  (paper: %s)\n", experiment, source);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

// Attach the obs registry's aggregate counters to a google-benchmark state so
// BENCH_*.json carries work-unit context next to the wall-clock numbers.
inline void report_obs_counters(benchmark::State& state,
                                const obs::MetricsRegistry& reg) {
  using obs::Counter;
  state.counters["mark_tasks"] = double(reg.total(Counter::kMarkTasks));
  state.counters["return_tasks"] = double(reg.total(Counter::kReturnTasks));
  state.counters["remote_msgs"] = double(reg.total(Counter::kRemoteMessages));
  state.counters["local_msgs"] = double(reg.total(Counter::kLocalMessages));
  state.counters["bytes_sent"] = double(reg.total(Counter::kBytesSent));
}

// Per-phase breakdown of the engine's last completed cycle: M_T (task-rooted,
// deadlock detection) vs M_R (priority marking) costs, per DESIGN.md §5.
inline void report_phase_counters(benchmark::State& state, SimEngine& eng) {
  const CycleResult& c = eng.controller().last();
  state.counters["mt_marks"] = double(c.stats_t.marks);
  state.counters["mt_returns"] = double(c.stats_t.returns);
  state.counters["mr_marks"] = double(c.stats_r.marks);
  state.counters["mr_returns"] = double(c.stats_r.returns);
  state.counters["swept"] = double(c.swept);
  state.counters["expunged"] = double(c.expunged);
  report_obs_counters(state, eng.metrics_registry());
}

// Machine-readable results: every bench binary writes BENCH_<name>.json next
// to its console output (schema documented in docs/OBSERVABILITY.md). One
// entry per measured run: the full benchmark name (params are encoded in it,
// e.g. "BM_MarkCycle/8"), iteration count, adjusted real/cpu time in the
// bench's time unit, and every user counter the bench attached (the obs
// registry totals from report_obs_counters / report_phase_counters).
// Subclasses ConsoleReporter so one reporter both prints the usual table and
// collects the JSON (the library rejects a standalone file reporter unless
// --benchmark_out is also given).
class JsonBenchReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonBenchReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.run_type == Run::RT_Aggregate) continue;  // keep raw runs only
      std::string e = "    {\"name\":\"";
      e += json_escape(r.benchmark_name());
      e += "\",\"iterations\":";
      e += std::to_string(static_cast<long long>(r.iterations));
      e += ",\"real_time\":";
      e += num(r.GetAdjustedRealTime());
      e += ",\"cpu_time\":";
      e += num(r.GetAdjustedCPUTime());
      e += ",\"time_unit\":\"";
      e += benchmark::GetTimeUnitString(r.time_unit);
      e += "\",\"error\":";
      e += r.error_occurred ? "true" : "false";
      e += ",\"counters\":{";
      bool first = true;
      for (const auto& [name, c] : r.counters) {
        if (!first) e += ',';
        first = false;
        e += '"';
        e += json_escape(name);
        e += "\":";
        e += num(static_cast<double>(c));
      }
      e += "}}";
      entries_.push_back(std::move(e));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::ofstream f("BENCH_" + bench_name_ + ".json",
                    std::ios::binary | std::ios::trunc);
    if (!f) return;
    f << "{\n  \"bench\": \"" << json_escape(bench_name_)
      << "\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i)
      f << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
    f << "  ]\n}\n";
  }

 private:
  static std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
  static std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string bench_name_;
  std::vector<std::string> entries_;
};

// Shared main: console output as usual plus the BENCH_<name>.json artifact.
//
// `--smoke` (ours, stripped before google-benchmark sees the args) caps each
// measurement at `smoke_min_time` seconds (default 0.01) so CI's bench-smoke
// job can exercise every bench path and still produce the JSON artifacts in
// seconds. Numbers from a smoke run are for plumbing validation only — never
// quote them. Benches whose per-iteration cost dwarfs the default cap (one
// iteration = pure scheduling noise) pass a larger smoke_min_time so the
// regression gate's ratios average over a few iterations.
inline int run_bench_main(const char* name, int argc, char** argv,
                          const char* smoke_min_time = "0.01") {
  std::vector<char*> args(argv, argv + argc);
  bool smoke = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::string(*it) == "--smoke") {
      smoke = true;
      g_smoke = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  static char min_time[64];
  std::snprintf(min_time, sizeof(min_time), "--benchmark_min_time=%s",
                smoke_min_time);
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  JsonBenchReporter reporter(name);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}

}  // namespace dgr::bench
