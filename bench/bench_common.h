// Shared setup helpers for the experiment benches. Each bench binary
// regenerates one experiment from DESIGN.md §3 (the per-figure/property
// reproduction index): it first prints the experiment's table (deterministic,
// simulator work-unit numbers), then runs google-benchmark wall-clock
// timings for the same code paths.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "obs/metrics.h"
#include "reduction/machine.h"
#include "runtime/sim_engine.h"

namespace dgr::bench {

inline const char* kFib =
    "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);";

struct SimRig {
  Graph g;
  SimEngine eng;
  std::unique_ptr<Machine> machine;
  VertexId root = VertexId::invalid();

  SimRig(std::uint32_t pes, std::uint64_t seed, SimOptions sopt = {})
      : g(pes), eng(g, [&] {
          sopt.seed = seed;
          return sopt;
        }()) {}

  // Attach a program and demand main.
  void load(const std::string& src, MachineOptions mopt = {}) {
    machine = std::make_unique<Machine>(g, eng.mutator(), eng,
                                        Program::from_source(src), mopt);
    root = machine->load_main();
    eng.set_root(root);
    eng.set_reducer([this](const Task& t) { machine->exec(t); });
    machine->demand(root);
  }

  // Attach a static random graph workload.
  BuiltGraph load_static(const RandomGraphOptions& opt) {
    BuiltGraph b = build_random_graph(g, opt);
    root = b.root;
    eng.set_root(root);
    for (const TaskRef& t : b.tasks)
      eng.spawn(Task::request(t.s, t.d, ReqKind::kVital));
    return b;
  }
};

inline void print_header(const char* experiment, const char* source,
                         const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s  (paper: %s)\n", experiment, source);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

// Attach the obs registry's aggregate counters to a google-benchmark state so
// BENCH_*.json carries work-unit context next to the wall-clock numbers.
inline void report_obs_counters(benchmark::State& state,
                                const obs::MetricsRegistry& reg) {
  using obs::Counter;
  state.counters["mark_tasks"] = double(reg.total(Counter::kMarkTasks));
  state.counters["return_tasks"] = double(reg.total(Counter::kReturnTasks));
  state.counters["remote_msgs"] = double(reg.total(Counter::kRemoteMessages));
  state.counters["local_msgs"] = double(reg.total(Counter::kLocalMessages));
  state.counters["bytes_sent"] = double(reg.total(Counter::kBytesSent));
}

// Per-phase breakdown of the engine's last completed cycle: M_T (task-rooted,
// deadlock detection) vs M_R (priority marking) costs, per DESIGN.md §5.
inline void report_phase_counters(benchmark::State& state, SimEngine& eng) {
  const CycleResult& c = eng.controller().last();
  state.counters["mt_marks"] = double(c.stats_t.marks);
  state.counters["mt_returns"] = double(c.stats_t.returns);
  state.counters["mr_marks"] = double(c.stats_r.marks);
  state.counters["mr_returns"] = double(c.stats_r.returns);
  state.counters["swept"] = double(c.swept);
  state.counters["expunged"] = double(c.expunged);
  report_obs_counters(state, eng.metrics_registry());
}

}  // namespace dgr::bench
