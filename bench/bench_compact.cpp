// E15 (§6 remarks) — the space optimization trade-off: "The algorithms as
// presented incur a high space overhead, in that each vertex requires space
// for mt-cnt, mt-par, and marking bits ... it is possible to combine all of
// the mt-cnt's and mt-par's into just two words on each PE."
//
// The compact variant implements that: two-color marking with per-PE
// Dijkstra-Scholten termination (2 words per PE). The table measures what
// the paper's remark implies on both sides of the trade:
//   space  — marking words: per-vertex (tree) vs per-PE (compact);
//   traffic — the compact marker pays one acknowledgement per mark message
//             and multi-pass waves under mutation, where the tree marker's
//             returns collapse along the marking tree.
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct Row {
  std::uint64_t mark_msgs = 0;
  std::uint64_t ctrl_msgs = 0;  // returns (tree) or acks (compact)
  std::size_t swept = 0;
  std::uint64_t marking_words = 0;
};

Row run_tree(std::uint32_t n, std::uint64_t seed) {
  Graph g(8);
  RandomGraphOptions opt;
  opt.num_vertices = n;
  opt.seed = seed;
  const BuiltGraph b = build_random_graph(g, opt);
  SimOptions sopt;
  sopt.seed = seed;
  SimEngine eng(g, sopt);
  eng.set_root(b.root);
  eng.controller().start_cycle(CycleOptions{false});
  eng.run_until_cycle_done();
  Row r;
  r.mark_msgs = eng.controller().last().stats_r.marks;
  r.ctrl_msgs = eng.controller().last().stats_r.returns;
  r.swept = eng.controller().last().swept;
  // mt_cnt + mt_par per vertex.
  r.marking_words = 2ull * g.total_capacity();
  return r;
}

Row run_compact(std::uint32_t n, std::uint64_t seed) {
  Graph g(8);
  RandomGraphOptions opt;
  opt.num_vertices = n;
  opt.seed = seed;
  const BuiltGraph b = build_random_graph(g, opt);
  SimOptions sopt;
  sopt.seed = seed;
  SimEngine eng(g, sopt);
  eng.set_root(b.root);
  CompactCollector& cc = eng.enable_compact_collector();
  cc.set_root(b.root);
  cc.start_cycle();
  eng.run_until_compact_done();
  Row r;
  r.mark_msgs = cc.last().stats.marks;
  r.ctrl_msgs = cc.last().stats.acks;
  r.swept = cc.last().swept;
  r.marking_words = CompactMarker::kWordsPerPe * g.num_pes();
  return r;
}

void table() {
  print_header("E15: §6 space optimization — tree marker vs compact marker",
               "§6 remarks",
               "compact keeps 2 words/PE instead of 2 words/vertex; both "
               "collect identical garbage; compact pays 1 ack per mark and "
               "loses M_T/deadlock support");
  std::printf("%10s %8s %12s %14s %10s %16s\n", "variant", "V", "mark_msgs",
              "returns/acks", "swept", "marking_words");
  for (std::uint32_t n : {1000u, 10000u, 100000u}) {
    const Row t = run_tree(n, 7);
    std::printf("%10s %8u %12llu %14llu %10zu %16llu\n", "tree", n,
                (unsigned long long)t.mark_msgs,
                (unsigned long long)t.ctrl_msgs, t.swept,
                (unsigned long long)t.marking_words);
    const Row c = run_compact(n, 7);
    std::printf("%10s %8u %12llu %14llu %10zu %16llu\n", "compact", n,
                (unsigned long long)c.mark_msgs,
                (unsigned long long)c.ctrl_msgs, c.swept,
                (unsigned long long)c.marking_words);
    if (t.swept != c.swept)
      std::printf("  !! sweep mismatch: tree %zu vs compact %zu\n", t.swept,
                  c.swept);
  }
}

void BM_TreeCycle(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_tree(static_cast<std::uint32_t>(state.range(0)), seed++).swept);
}
BENCHMARK(BM_TreeCycle)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_CompactCycle(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_compact(static_cast<std::uint32_t>(state.range(0)), seed++)
            .swept);
}
BENCHMARK(BM_CompactCycle)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("compact", argc, argv);
}
