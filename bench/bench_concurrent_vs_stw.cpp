// E9 — On-the-fly vs stop-the-world collection (paper §4 motivation: a
// static marking algorithm "would require that the computation be halted
// while marking takes place").
//
// Workload: fib(N) reducing on the simulator with finite stores, collected
// either (a) concurrently by the paper's marker, or (b) by halting reduction
// and running the STW baseline whenever stores run low.
//
// Reported shape (paper's implicit claim): the concurrent collector's
// mutator stall is the restructuring phase only — orders of magnitude below
// the STW pause, at a modest throughput overhead (the marking tax).
#include "baseline/stw_collector.h"
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct RunResult {
  std::uint64_t total_steps = 0;       // sim work units overall
  std::uint64_t reduction_steps = 0;   // useful mutator work
  std::uint64_t collections = 0;
  std::uint64_t max_pause = 0;   // longest mutator stall, work units
  std::uint64_t total_pause = 0;
  std::uint64_t remote_msgs = 0;
  std::int64_t result = -1;
};

constexpr std::uint32_t kPes = 4;
constexpr std::uint32_t kCapacity = 1200;  // per PE — forces collections
const char* kProg =
    "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);"
    "def main() = fib(14);";

RunResult run_concurrent(std::uint64_t seed) {
  Graph g(kPes, kCapacity);
  for (PeId pe = 0; pe < kPes; ++pe) g.store(pe).set_fixed_capacity(true);
  SimOptions sopt;
  sopt.seed = seed;
  SimEngine eng(g, sopt);
  Machine m(g, eng.mutator(), eng, Program::from_source(kProg));
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  m.set_exhaustion_handler([&] {
    if (eng.controller().idle()) {
      CycleOptions c;
      c.detect_deadlock = false;
      eng.controller().start_cycle(c);
    }
  });
  m.demand(root);

  RunResult r;
  while (!m.result_of(root).has_value()) {
    if (!eng.step()) break;
  }
  r.total_steps = eng.metrics().steps;
  r.reduction_steps = eng.metrics().reduction_tasks;
  r.collections = eng.controller().cycles_completed();
  // The concurrent collector's only stop-the-world moment is restructuring:
  // a scan of live vertices (quiesced in the threaded engine). Use the
  // post-cycle live count as the per-cycle pause bound.
  const std::uint64_t restructure_scan = g.total_live();
  r.max_pause = restructure_scan;
  r.total_pause = restructure_scan * r.collections;
  r.remote_msgs = eng.metrics().remote_messages;
  r.result = m.result_of(root) ? m.result_of(root)->as_int() : -1;
  return r;
}

RunResult run_stw(std::uint64_t seed) {
  Graph g(kPes, kCapacity);
  for (PeId pe = 0; pe < kPes; ++pe) g.store(pe).set_fixed_capacity(true);
  SimOptions sopt;
  sopt.seed = seed;
  SimEngine eng(g, sopt);
  Machine m(g, eng.mutator(), eng, Program::from_source(kProg));
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  StwCollector stw(g);
  RunResult r;
  bool need_gc = false;
  m.set_exhaustion_handler([&] { need_gc = true; });
  m.demand(root);
  while (!m.result_of(root).has_value()) {
    if (need_gc) {
      // The world stops: no reduction happens while the collector runs.
      const StwResult res = stw.collect(root);
      r.max_pause = std::max(r.max_pause, res.pause_work);
      r.total_pause += res.pause_work;
      ++r.collections;
      need_gc = false;
    }
    if (!eng.step()) break;
  }
  r.total_steps = eng.metrics().steps + stw.total_pause_work();
  r.reduction_steps = eng.metrics().reduction_tasks;
  r.result = m.result_of(root) ? m.result_of(root)->as_int() : -1;
  return r;
}

void table() {
  print_header("E9: concurrent marking vs stop-the-world",
               "§4 motivation / §6 interference remarks",
               "on-the-fly collection removes the STW pause at a modest "
               "throughput cost");
  std::printf("%12s %6s %12s %12s %12s %12s %10s\n", "collector", "seed",
              "total_work", "reduction", "collections", "max_pause",
              "result");
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunResult c = run_concurrent(seed);
    std::printf("%12s %6llu %12llu %12llu %12llu %12llu %10lld\n",
                "concurrent", (unsigned long long)seed,
                (unsigned long long)c.total_steps,
                (unsigned long long)c.reduction_steps,
                (unsigned long long)c.collections,
                (unsigned long long)c.max_pause, (long long)c.result);
    const RunResult s = run_stw(seed);
    std::printf("%12s %6llu %12llu %12llu %12llu %12llu %10lld\n", "stw",
                (unsigned long long)seed, (unsigned long long)s.total_steps,
                (unsigned long long)s.reduction_steps,
                (unsigned long long)s.collections,
                (unsigned long long)s.max_pause, (long long)s.result);
  }
}

void BM_ConcurrentRun(benchmark::State& state) {
  RunResult last;
  for (auto _ : state) {
    last = run_concurrent(1);
    benchmark::DoNotOptimize(last.result);
  }
  state.counters["collections"] = double(last.collections);
  state.counters["remote_msgs"] = double(last.remote_msgs);
}
BENCHMARK(BM_ConcurrentRun)->Unit(benchmark::kMillisecond);

void BM_StwRun(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_stw(1).result);
}
BENCHMARK(BM_StwRun)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("concurrent_vs_stw", argc, argv);
}
