// E14 — Algorithm micro-costs (paper Figs 4-1/5-1/5-3): the decentralized
// marker spends exactly one mark task per edge plus one per root, and one
// return per mark task, independent of topology — O(E) work with no
// centralized structure. Table: measured task counts vs |V|, |E| across
// graph families; the marks/edge ratio should sit at ~1.
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct Fam {
  const char* name;
  std::function<VertexId(Graph&)> build;
};

std::size_t count_edges(const Graph& g) {
  std::size_t e = 0;
  g.for_each_live([&](VertexId v) { e += g.at(v).args.size(); });
  return e;
}

void run_family(const char* name, Graph& g, VertexId root) {
  const std::size_t V = g.total_live();
  const std::size_t E = count_edges(g);
  SimOptions sopt;
  sopt.seed = 9;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  CycleOptions copt;
  copt.detect_deadlock = false;
  eng.controller().start_cycle(copt);
  eng.run_until_cycle_done();
  const MarkStats& st = eng.controller().last().stats_r;
  std::printf("%10s %10zu %10zu %10llu %10llu %10llu %12.3f\n", name, V, E,
              (unsigned long long)st.marks.load(),
              (unsigned long long)st.returns.load(),
              (unsigned long long)st.remarks.load(),
              static_cast<double>(st.marks.load()) /
                  static_cast<double>(E ? E : 1));
}

void table() {
  print_header("E14: marking task counts per topology",
               "Figs 4-1/5-1/5-3 cost structure",
               "one mark task per edge (+1 for the root) on uniform-priority "
               "graphs; mixed-priority graphs additionally pay mark2's "
               "re-marking (§5.1), visible as marks/edge > 1 with remarks > 0");
  std::printf("%10s %10s %10s %10s %10s %10s %12s\n", "family", "V", "E",
              "marks", "returns", "remarks", "marks/edge");
  {
    Graph g(8);
    const auto chain = build_chain(g, 4096, ReqKind::kVital);
    run_family("chain", g, chain.front());
  }
  {
    Graph g(8);
    const VertexId root = build_tree(g, 12, ReqKind::kVital);
    run_family("tree", g, root);
  }
  {
    Graph g(8);
    RandomGraphOptions opt;
    opt.num_vertices = 4096;
    opt.avg_out_degree = 4.0;
    opt.p_detached = 0.0;
    opt.seed = 4;
    const BuiltGraph b = build_random_graph(g, opt);
    run_family("random", g, b.root);
  }
  {
    // Dense cyclic ring-of-cliques: shared vertices reached many times;
    // every duplicate reach is one extra mark task that returns immediately.
    Graph g(8);
    std::vector<VertexId> ring;
    for (int i = 0; i < 512; ++i) ring.push_back(g.alloc_rr(OpCode::kData));
    for (std::size_t i = 0; i < ring.size(); ++i)
      for (std::size_t d = 1; d <= 8; ++d)
        connect(g, ring[i], ring[(i + d) % ring.size()], ReqKind::kVital);
    run_family("cyclic", g, ring[0]);
  }
}

void BM_CycleByFamily(benchmark::State& state) {
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  Graph g(8);
  const VertexId root = build_tree(g, depth, ReqKind::kVital);
  SimOptions sopt;
  sopt.seed = 2;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  CycleOptions copt;
  copt.detect_deadlock = false;
  for (auto _ : state) {
    eng.controller().start_cycle(copt);
    eng.run_until_cycle_done();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.total_live()));
  report_phase_counters(state, eng);
}
BENCHMARK(BM_CycleByFamily)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("mark_cost", argc, argv);
}
