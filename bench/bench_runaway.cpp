// E13 — Irrelevant runaway containment (paper §3.2 item 3: irrelevant tasks
// "may distribute through the system generating an arbitrarily large (and
// irrelevant) parallel workload; indeed, the subcomputation may be
// non-terminating").
//
// Workload: `if true then 99 else boom(0)` with speculation on, where boom
// diverges. The untaken branch floods the pools with eager tasks that turn
// irrelevant at resolution. Table: how large the runaway is allowed to grow
// (steps of free run) vs what one marking cycle expunges and sweeps — the
// cycle always drains the system completely.
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct Row {
  std::size_t pending_before = 0;
  std::size_t live_before = 0;
  std::size_t expunged = 0;
  std::size_t swept = 0;
  std::uint64_t cycles = 0;
  bool drained = false;
  std::int64_t result = -1;
};

Row run(std::uint64_t grow_steps, std::uint64_t seed) {
  MachineOptions mopt;
  mopt.speculate_if = true;
  SimRig rig(4, seed);
  rig.load(
      // Branching divergence: the irrelevant workload is genuinely parallel
      // ("an arbitrarily large (and irrelevant) parallel workload", §3.2).
      "def boom(n) = boom(n + 1) + boom(n + 2);"
      "def main() = if 1 < 2 then 99 else boom(0);",
      mopt);
  Row r;
  // Let the speculative storm develop.
  for (std::uint64_t i = 0; i < grow_steps; ++i)
    if (!rig.eng.step()) break;
  r.pending_before = rig.eng.pending_reduction();
  r.live_before = rig.g.total_live();
  // Collect until drained (one cycle normally suffices: every boom task's
  // destination is unreachable from the root after the dereference).
  while (!rig.eng.quiescent() && r.cycles < 4) {
    rig.eng.controller().start_cycle(CycleOptions{false});
    rig.eng.run_until_cycle_done();
    r.expunged += rig.eng.controller().last().expunged;
    r.swept += rig.eng.controller().last().swept;
    ++r.cycles;
    rig.eng.run(100'000'000);  // drain whatever survived
  }
  r.drained = rig.eng.quiescent();
  const auto res = rig.machine->result_of(rig.root);
  r.result = res ? res->as_int() : -1;
  return r;
}

void table() {
  print_header("E13: containment of a non-terminating eager workload",
               "§3.2 item 3, Property 6",
               "however large the runaway grows, one cycle expunges it and "
               "reclaims its vertices; the answer is unaffected");
  std::printf("%12s %12s %10s %10s %8s %8s %8s %8s\n", "grow_steps",
              "pending", "live", "expunged", "swept", "cycles", "drained",
              "result");
  for (std::uint64_t grow : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    const Row r = run(grow, 7);
    std::printf("%12llu %12zu %10zu %10zu %8zu %8llu %8s %8lld\n",
                (unsigned long long)grow, r.pending_before, r.live_before,
                r.expunged, r.swept, (unsigned long long)r.cycles,
                r.drained ? "yes" : "NO", (long long)r.result);
  }
}

void BM_ContainRunaway(benchmark::State& state) {
  const auto grow = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) benchmark::DoNotOptimize(run(grow, seed++).expunged);
}
BENCHMARK(BM_ContainRunaway)->Arg(1000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("runaway", argc, argv);
}
