// E12 — Dynamic prioritization: mark2's priority-upgrade re-marking (paper
// §5.1: "if a vertex x has been marked with priority n, and subsequently an
// attempt is made to mark it with priority m > n, then the higher priority
// should prevail ... re-marking x as well as certain of its children").
//
// Workload: a vital path and an eager path converge on a chain of length L.
// If the eager path wins the race, the whole chain is first marked priority
// 2 and must be re-marked at 3 when the vital path arrives. Table: re-mark
// volume vs chain length (the paper's re-marking cost is linear in the
// upgraded region), plus the restructuring phase's pool re-prioritization.
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct Row {
  std::uint64_t marks;
  std::uint64_t remarks;
  std::size_t reprioritized;
  bool all_vital;
};

Row run(std::uint32_t chain_len, std::uint64_t seed, bool eager_first_bias) {
  Graph g(4);
  // root -e-> a ; root -v-> b ; both -> chain head; chain of vital edges.
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(1, OpCode::kData);
  const VertexId b = g.alloc(2, OpCode::kData);
  connect(g, root, a, ReqKind::kEager);
  const auto chain = build_chain(g, chain_len, ReqKind::kVital);
  connect(g, a, chain.front(), ReqKind::kVital);
  connect(g, b, chain.front(), ReqKind::kVital);
  // To bias toward the interesting race (eager path traced first), delay
  // the vital edge behind a long preamble when requested.
  std::vector<VertexId> pre;
  if (eager_first_bias) {
    pre = build_chain(g, 64, ReqKind::kVital);
    connect(g, root, pre.front(), ReqKind::kVital);
    connect(g, pre.back(), b, ReqKind::kVital);
  } else {
    connect(g, root, b, ReqKind::kVital);
  }

  SimOptions sopt;
  sopt.seed = seed;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  // Pooled tasks on the chain so re-prioritization has something to move.
  for (std::uint32_t i = 0; i < chain_len; i += 8) {
    Task t = Task::request(VertexId::invalid(), chain[i], ReqKind::kEager);
    t.pool_prior = 2;
    eng.spawn(t);
  }
  CycleOptions copt;
  copt.detect_deadlock = false;
  eng.controller().start_cycle(copt);
  eng.run_until_cycle_done();

  Row r;
  r.marks = eng.controller().last().stats_r.marks;
  r.remarks = eng.controller().last().stats_r.remarks;
  r.reprioritized = eng.controller().last().reprioritized;
  r.all_vital = true;
  for (VertexId v : chain)
    r.all_vital = r.all_vital && eng.marker().prior(Plane::kR, v) == 3;
  return r;
}

void table() {
  print_header("E12: priority-upgrade re-marking (mark2)",
               "§5.1 / §3.2 item 2",
               "upgrade cost is linear in the upgraded region; final "
               "priorities are the max-min fixpoint; pooled tasks move to "
               "the vital bucket");
  std::printf("%8s %6s %10s %10s %14s %10s\n", "chain", "seed", "marks",
              "remarks", "repri_tasks", "all_vital");
  for (std::uint32_t len : {16u, 64u, 256u, 1024u}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      const Row r = run(len, seed, true);
      std::printf("%8u %6llu %10llu %10llu %14zu %10s\n", len,
                  (unsigned long long)seed, (unsigned long long)r.marks,
                  (unsigned long long)r.remarks, r.reprioritized,
                  r.all_vital ? "yes" : "NO");
    }
  }
}

void BM_UpgradeCycle(benchmark::State& state) {
  const auto len = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) benchmark::DoNotOptimize(run(len, seed++, true).marks);
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_UpgradeCycle)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("priority", argc, argv);
}
