// E1/E6 — Deadlock detection (paper Fig 3-1, Property 2', Theorem 2).
//
// Table: graphs with planted self-dependent (deadlocked) regions embedded in
// live computation, swept over sizes and PE counts. Reports detection
// exactness (found == planted, no false positives — Theorem 2) and the cost
// of the extra M_T pass that deadlock detection requires (§6 explains why
// M_T is run only occasionally).
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct Planted {
  VertexId root;
  std::vector<VertexId> deadlocked;
  std::vector<TaskRef> tasks;
};

// Root vitally fans out to `n_dead` self-dependent vertices (each the
// Fig 3-1 "x = x+1" knot) and to a live region of `n_live` vertices kept
// task-reachable by pooled tasks.
Planted plant(Graph& g, std::uint32_t n_dead, std::uint32_t n_live,
              std::uint64_t seed) {
  Rng rng(seed);
  Planted p;
  p.root = g.alloc_rr(OpCode::kData);
  g.at(p.root).requested.push_back(VertexId::invalid());
  for (std::uint32_t i = 0; i < n_dead; ++i) {
    const VertexId x = g.alloc_rr(OpCode::kAdd);
    connect(g, p.root, x, ReqKind::kVital);
    connect(g, x, x, ReqKind::kVital);
    p.deadlocked.push_back(x);
  }
  // The live region hangs off the root through *unrequested* edges: it is
  // reserve-priority data the computation has not demanded yet, and it is
  // task-reachable (args − req-args are ↦-edges), so it is neither vital
  // nor deadlocked.
  std::vector<VertexId> live;
  for (std::uint32_t i = 0; i < n_live; ++i) {
    const VertexId v = g.alloc_rr(OpCode::kData);
    const VertexId from = live.empty() ? p.root : live[rng.below(live.size())];
    connect(g, from, v, ReqKind::kNone);
    live.push_back(v);
  }
  // Tasks at a subset of live leaves keep the live region in T.
  for (std::uint32_t i = 0; i < std::max(1u, n_live / 16); ++i) {
    const VertexId d = live[rng.below(live.size())];
    p.tasks.push_back(TaskRef{p.root, d});
  }
  return p;
}

void table() {
  print_header("E1/E6: deadlock detection (DL_v = R_v − T)",
               "Fig 3-1, Property 2', Theorem 2",
               "every planted self-dependency found, nothing live accused; "
               "M_T adds one task-rooted pass of cost O(T-edges)");
  std::printf("%6s %8s %8s %8s %10s %10s %12s %12s\n", "PEs", "live",
              "planted", "found", "false_pos", "mt_marks", "mr_marks",
              "exact");
  for (std::uint32_t pes : {2u, 8u}) {
    for (std::uint32_t n_live : {100u, 1000u, 10000u}) {
      for (std::uint32_t n_dead : {1u, 10u, 100u}) {
        Graph g(pes);
        const Planted p = plant(g, n_dead, n_live, 33);
        SimOptions sopt;
        sopt.seed = 13;
        SimEngine eng(g, sopt);
        eng.set_root(p.root);
        for (const TaskRef& t : p.tasks)
          eng.spawn(Task::request(t.s, t.d, ReqKind::kVital));
        eng.controller().start_cycle(CycleOptions{true});
        eng.run_until_cycle_done();
        const CycleResult& res = eng.controller().last();
        std::vector<VertexId> found = res.deadlocked;
        std::sort(found.begin(), found.end());
        std::vector<VertexId> want = p.deadlocked;
        std::sort(want.begin(), want.end());
        std::size_t false_pos = 0;
        for (VertexId v : found)
          if (!std::binary_search(want.begin(), want.end(), v)) ++false_pos;
        std::printf("%6u %8u %8u %8zu %10zu %10llu %12llu %12s\n", pes,
                    n_live, n_dead, found.size(), false_pos,
                    (unsigned long long)res.stats_t.marks.load(),
                    (unsigned long long)res.stats_r.marks.load(),
                    found == want ? "yes" : "NO");
      }
    }
  }
}

void BM_DetectionCycle(benchmark::State& state) {
  const auto n_live = static_cast<std::uint32_t>(state.range(0));
  Graph g(8);
  const Planted p = plant(g, 16, n_live, 3);
  SimOptions sopt;
  sopt.seed = 4;
  SimEngine eng(g, sopt);
  eng.set_root(p.root);
  for (const TaskRef& t : p.tasks)
    eng.spawn(Task::request(t.s, t.d, ReqKind::kVital));
  for (auto _ : state) {
    eng.controller().start_cycle(CycleOptions{true});
    eng.run_until_cycle_done();
  }
  state.SetItemsProcessed(state.iterations() * n_live);
}
BENCHMARK(BM_DetectionCycle)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The §6 trade-off: a GC-only cycle (no M_T) vs a full deadlock-detecting
// cycle on the same graph.
void BM_CycleWithoutMt(benchmark::State& state) {
  Graph g(8);
  const Planted p = plant(g, 16, 10000, 3);
  SimOptions sopt;
  sopt.seed = 4;
  SimEngine eng(g, sopt);
  eng.set_root(p.root);
  for (auto _ : state) {
    eng.controller().start_cycle(CycleOptions{false});
    eng.run_until_cycle_done();
  }
}
BENCHMARK(BM_CycleWithoutMt)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("deadlock", argc, argv);
}
