// E10 — Marking vs distributed reference counting (paper §4: reference
// counting cannot reclaim self-referencing structures and cannot perform the
// tracing needed to identify task types).
//
// Workload: a seeded mutation churn that detaches subgraphs, a controllable
// fraction of which are knotted into cycles before being dropped. Both
// collectors run over identical mutation traces.
//
// Reported shape: the marker reclaims 100% of garbage regardless of cycle
// fraction; refcounting's reclamation falls linearly as the cyclic fraction
// rises, and its count-maintenance traffic scales with mutation count while
// the marker's traffic scales with live-graph size per cycle.
#include "baseline/refcount_collector.h"
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct ChurnResult {
  std::size_t allocated = 0;
  std::size_t reclaimed = 0;
  std::size_t leaked = 0;  // garbage never reclaimed
  std::uint64_t messages = 0;
};

constexpr std::uint32_t kPes = 4;
constexpr int kRounds = 400;
constexpr int kClusterSize = 5;

// Drive identical churn through either collector. Each round allocates a
// small cluster below the root, then detaches it; `cyclic_pct` of clusters
// are first closed into a cycle.
template <typename OnAlloc, typename OnConnect, typename OnDisconnect>
std::size_t churn(Graph& g, VertexId root, int cyclic_pct, std::uint64_t seed,
                  OnAlloc on_alloc, OnConnect on_connect,
                  OnDisconnect on_disconnect) {
  Rng rng(seed);
  std::size_t allocated = 0;
  for (int round = 0; round < kRounds; ++round) {
    VertexId cluster[kClusterSize];
    for (auto& v : cluster) {
      v = g.alloc_rr(OpCode::kData);
      DGR_CHECK(v.valid());
      on_alloc(v);
      ++allocated;
    }
    for (int i = 0; i + 1 < kClusterSize; ++i) {
      connect(g, cluster[i], cluster[i + 1], ReqKind::kNone);
      on_connect(cluster[i], cluster[i + 1]);
    }
    const bool make_cycle = static_cast<int>(rng.below(100)) < cyclic_pct;
    if (make_cycle) {
      connect(g, cluster[kClusterSize - 1], cluster[0], ReqKind::kNone);
      on_connect(cluster[kClusterSize - 1], cluster[0]);
    }
    connect(g, root, cluster[0], ReqKind::kNone);
    on_connect(root, cluster[0]);
    // ... some interleaving rounds later, drop it.
    disconnect(g, root, cluster[0]);
    on_disconnect(root, cluster[0]);
  }
  return allocated;
}

ChurnResult run_refcount(int cyclic_pct) {
  Graph g(kPes);
  const VertexId root = g.alloc(0, OpCode::kData);
  RefCountCollector rc(g);
  rc.on_alloc(root);
  rc.add_root_ref(root);
  ChurnResult r;
  r.allocated = churn(
      g, root, cyclic_pct, 77, [&](VertexId v) { rc.on_alloc(v); },
      [&](VertexId a, VertexId b) { rc.on_connect(a, b); },
      [&](VertexId a, VertexId b) {
        rc.on_disconnect(a, b);
        rc.process();
      });
  rc.process();
  r.reclaimed = rc.freed();
  r.messages = rc.messages_sent();
  Oracle o(g, root, {});
  r.leaked = o.count_GAR();
  return r;
}

ChurnResult run_marker(int cyclic_pct) {
  Graph g(kPes);
  SimOptions sopt;
  sopt.seed = 5;
  SimEngine eng(g, sopt);
  const VertexId root = g.alloc(0, OpCode::kData);
  eng.set_root(root);
  ChurnResult r;
  // Churn with no collector hooks (marking needs none)...
  r.allocated = churn(
      g, root, cyclic_pct, 77, [](VertexId) {}, [](VertexId, VertexId) {},
      [](VertexId, VertexId) {});
  // ...then one marking cycle reclaims everything unreachable.
  CycleOptions copt;
  copt.detect_deadlock = false;
  eng.controller().start_cycle(copt);
  eng.run_until_cycle_done();
  r.reclaimed = eng.controller().last().swept;
  r.messages = eng.metrics().remote_messages + eng.metrics().local_messages;
  Oracle o(g, root, {});
  r.leaked = o.count_GAR();
  return r;
}

void table() {
  print_header("E10: cyclic garbage — marking vs reference counting",
               "§4 refcounting critique",
               "marker reclaims 100% incl. cycles; refcount leaks every "
               "cycle and pays per-mutation traffic");
  std::printf("%10s %10s %10s %10s %10s %12s\n", "collector", "cyclic%",
              "allocated", "reclaimed", "leaked", "messages");
  for (int pct : {0, 25, 50, 75, 100}) {
    const ChurnResult m = run_marker(pct);
    std::printf("%10s %10d %10zu %10zu %10zu %12llu\n", "marker", pct,
                m.allocated, m.reclaimed, m.leaked,
                (unsigned long long)m.messages);
    const ChurnResult rcr = run_refcount(pct);
    std::printf("%10s %10d %10zu %10zu %10zu %12llu\n", "refcount", pct,
                rcr.allocated, rcr.reclaimed, rcr.leaked,
                (unsigned long long)rcr.messages);
  }
  std::printf(
      "\nnote: refcounting also cannot compute R_v/R_e/R_r, so the dynamic\n"
      "task classification of Properties 3-6 is unavailable to it entirely\n"
      "(no row to print — that is the point).\n");
}

void BM_MarkerChurn(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_marker(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_MarkerChurn)->Arg(0)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_RefcountChurn(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_refcount(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_RefcountChurn)->Arg(0)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("vs_refcount", argc, argv);
}
