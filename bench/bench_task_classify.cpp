// E2/E3/E7 — Task classification and the Venn structure of Figs 3-2/3-3
// (Properties 3-6): one M_R pass classifies every pooled task as vital /
// eager / reserve / irrelevant through the destination's marked priority,
// agreeing exactly with the sequential reachability oracle; irrelevant tasks
// are expunged by the restructuring phase.
#include "bench/bench_common.h"

namespace dgr::bench {
namespace {

struct Row {
  std::size_t vital = 0, eager = 0, reserve = 0, irrelevant = 0;
  std::size_t expunged = 0;
  bool oracle_agrees = true;
};

Row run(std::uint32_t n, std::uint64_t seed) {
  Graph g(8);
  RandomGraphOptions opt;
  opt.num_vertices = n;
  opt.num_tasks = n / 4;
  opt.p_detached = 0.25;
  opt.seed = seed;
  BuiltGraph b = build_random_graph(g, opt);
  Oracle o(g, b.root, b.tasks);

  Row r;
  for (const TaskRef& t : b.tasks) {
    switch (o.classify(t)) {
      case TaskClass::kVital: ++r.vital; break;
      case TaskClass::kEager: ++r.eager; break;
      case TaskClass::kReserve: ++r.reserve; break;
      case TaskClass::kIrrelevant: ++r.irrelevant; break;
    }
  }

  SimOptions sopt;
  sopt.seed = seed ^ 0x5a5a;
  SimEngine eng(g, sopt);
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.spawn(Task::request(t.s, t.d, ReqKind::kVital));
  eng.controller().start_cycle(CycleOptions{true});
  eng.run_until_cycle_done();
  r.expunged = eng.controller().last().expunged;

  // Distributed classification = marked priority of the destination.
  std::size_t dv = 0, de = 0, dr = 0;
  for (PeId pe = 0; pe < g.num_pes(); ++pe) {
    eng.pool(pe).for_each([&](const Task& t) {
      switch (eng.marker().prior(Plane::kR, t.d)) {
        case 3: ++dv; break;
        case 2: ++de; break;
        default: ++dr; break;
      }
    });
  }
  r.oracle_agrees = dv == r.vital && de == r.eager && dr == r.reserve &&
                    r.expunged == r.irrelevant;
  return r;
}

void table() {
  print_header("E2/E3/E7: dynamic task classification",
               "Figs 3-2/3-3, Properties 3-6, Corollary 1",
               "marked priorities reproduce the oracle's VIT/EAG/RES split; "
               "IRR tasks are expunged");
  std::printf("%8s %6s %8s %8s %8s %12s %10s %8s\n", "V", "seed", "vital",
              "eager", "reserve", "irrelevant", "expunged", "agree");
  for (std::uint32_t n : {200u, 2000u, 20000u}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const Row r = run(n, seed);
      std::printf("%8u %6llu %8zu %8zu %8zu %12zu %10zu %8s\n", n,
                  (unsigned long long)seed, r.vital, r.eager, r.reserve,
                  r.irrelevant, r.expunged, r.oracle_agrees ? "yes" : "NO");
    }
  }
}

void BM_ClassifyCycle(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) benchmark::DoNotOptimize(run(n, seed++).vital);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ClassifyCycle)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dgr::bench

int main(int argc, char** argv) {
  dgr::bench::table();
  return dgr::bench::run_bench_main("task_classify", argc, argv);
}
