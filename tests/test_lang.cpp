// Unit tests for the language front end: lexer/parser and template compiler.
#include <gtest/gtest.h>

#include "reduction/lang.h"
#include "reduction/program.h"

namespace dgr {
namespace {

using lang::ExprKind;
using lang::parse_expression;
using lang::parse_program;

TEST(Parser, Precedence) {
  auto e = parse_expression("1 + 2 * 3");
  ASSERT_EQ(e->kind, ExprKind::kBin);
  EXPECT_EQ(e->op, OpCode::kAdd);
  EXPECT_EQ(e->kids[1]->op, OpCode::kMul);
}

TEST(Parser, Parentheses) {
  auto e = parse_expression("(1 + 2) * 3");
  EXPECT_EQ(e->op, OpCode::kMul);
  EXPECT_EQ(e->kids[0]->op, OpCode::kAdd);
}

TEST(Parser, ComparisonDesugaring) {
  // a > b becomes b < a.
  auto e = parse_expression("1 > 2");
  EXPECT_EQ(e->op, OpCode::kLt);
  EXPECT_EQ(e->kids[0]->num, 2);
  EXPECT_EQ(e->kids[1]->num, 1);
  auto e2 = parse_expression("1 >= 2");
  EXPECT_EQ(e2->op, OpCode::kLe);
}

TEST(Parser, UnaryMinus) {
  auto e = parse_expression("-5");
  EXPECT_EQ(e->op, OpCode::kSub);
  EXPECT_EQ(e->kids[0]->num, 0);
  EXPECT_EQ(e->kids[1]->num, 5);
}

TEST(Parser, IfThenElse) {
  auto e = parse_expression("if true then 1 else 2");
  ASSERT_EQ(e->kind, ExprKind::kIf);
  EXPECT_EQ(e->kids[0]->kind, ExprKind::kBool);
}

TEST(Parser, LetIn) {
  auto e = parse_expression("let x = 1 + 2 in x * x");
  ASSERT_EQ(e->kind, ExprKind::kLet);
  EXPECT_EQ(e->name, "x");
}

TEST(Parser, CallsAndArgs) {
  auto e = parse_expression("f(1, g(2), 3)");
  ASSERT_EQ(e->kind, ExprKind::kCall);
  EXPECT_EQ(e->kids.size(), 3u);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::kCall);
}

TEST(Parser, BooleanOperators) {
  auto e = parse_expression("true and false or not true");
  EXPECT_EQ(e->op, OpCode::kOr);
  EXPECT_EQ(e->kids[0]->op, OpCode::kAnd);
  EXPECT_EQ(e->kids[1]->kind, ExprKind::kNot);
}

TEST(Parser, Comments) {
  auto p = parse_program("# leading comment\ndef main() = 1; # trailing\n");
  EXPECT_EQ(p.defs.size(), 1u);
}

TEST(Parser, ErrorsCarryPosition) {
  try {
    parse_program("def main() = (1 +;");
    FAIL() << "expected ParseError";
  } catch (const lang::ParseError& e) {
    EXPECT_GE(e.col, 1u);
  }
}

TEST(Parser, RoundTripToString) {
  auto e = parse_expression("if x < 2 then x else f(x - 1) + f(x - 2)");
  const std::string s = lang::to_string(*e);
  EXPECT_NE(s.find("if"), std::string::npos);
  EXPECT_NE(s.find("f("), std::string::npos);
}

TEST(Compile, FibTemplates) {
  const Program p = Program::from_source(
      "def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
      "def main() = fib(10);");
  EXPECT_EQ(p.num_fns(), 2u);
  const Template& fib = p.fn(p.fn_id("fib"));
  EXPECT_EQ(fib.nparams, 1u);
  EXPECT_FALSE(fib.root.is_param);
  EXPECT_EQ(fib.nodes[fib.root.idx].op, OpCode::kIf);
}

TEST(Compile, ParamRootBecomesParamRef) {
  const Program p = Program::from_source("def id(x) = x; def main() = id(4);");
  const Template& id = p.fn(p.fn_id("id"));
  EXPECT_TRUE(id.root.is_param);
  EXPECT_EQ(id.root.idx, 0u);
  EXPECT_TRUE(id.nodes.empty());  // pruned
}

TEST(Compile, RecursiveLetMakesCycle) {
  // let x = x + 1 in x : the Fig 3-1 graph — x's node references itself.
  const Program p = Program::from_source("def main() = let x = x + 1 in x;");
  const Template& m = p.fn(p.fn_id("main"));
  ASSERT_FALSE(m.root.is_param);
  const TNode& x = m.nodes[m.root.idx];
  EXPECT_EQ(x.op, OpCode::kAdd);
  ASSERT_EQ(x.children.size(), 2u);
  EXPECT_FALSE(x.children[0].is_param);
  EXPECT_EQ(x.children[0].idx, m.root.idx);  // self-edge
}

TEST(Compile, SharedLetProducesSharedNode) {
  const Program p =
      Program::from_source("def main() = let x = 3 * 3 in x + x;");
  const Template& m = p.fn(p.fn_id("main"));
  const TNode& add = m.nodes[m.root.idx];
  EXPECT_EQ(add.children[0], add.children[1]);  // both edges to the same node
}

TEST(Compile, LetAliasOfVar) {
  const Program p = Program::from_source(
      "def f(a) = let b = a in b + 1; def main() = f(2);");
  const Template& f = p.fn(p.fn_id("f"));
  const TNode& add = f.nodes[f.root.idx];
  EXPECT_TRUE(add.children[0].is_param);
}

TEST(Compile, NestedLetAliasResolved) {
  const Program p = Program::from_source(
      "def main() = let x = (let y = 5 in y) in x + x;");
  const Template& m = p.fn(p.fn_id("main"));
  const TNode& add = m.nodes[m.root.idx];
  // x aliases y's literal node; both children point at it.
  EXPECT_EQ(add.children[0], add.children[1]);
}

TEST(Compile, MutualRecursionAllowed) {
  const Program p = Program::from_source(
      "def even(n) = if n == 0 then true else odd(n - 1);"
      "def odd(n) = if n == 0 then false else even(n - 1);"
      "def main() = even(10);");
  EXPECT_EQ(p.num_fns(), 3u);
}

TEST(Compile, Errors) {
  EXPECT_THROW(Program::from_source("def main() = x;"), CompileError);
  EXPECT_THROW(Program::from_source("def main() = f(1);"), CompileError);
  EXPECT_THROW(
      Program::from_source("def f(a) = a; def main() = f(1, 2);"),
      CompileError);
  EXPECT_THROW(
      Program::from_source("def f() = 1; def f() = 2; def main() = f();"),
      CompileError);
  EXPECT_THROW(
      Program::from_source("def f(a, a) = a; def main() = f(1, 2);"),
      CompileError);
}

TEST(Compile, DeadNodesPruned) {
  const Program p = Program::from_source(
      "def main() = let unused = 1 + 2 in 7;");
  const Template& m = p.fn(p.fn_id("main"));
  // Only the literal 7 survives.
  ASSERT_EQ(m.nodes.size(), 1u);
  EXPECT_EQ(m.nodes[0].op, OpCode::kLit);
  EXPECT_EQ(m.nodes[0].lit, 7);
}

}  // namespace
}  // namespace dgr
