// Tests for the sequential reachability oracle: Properties 1-6 (§3) on the
// paper's own figures and on structured graphs.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/oracle.h"

namespace dgr {
namespace {

TEST(Oracle, EmptyGraphSingleRoot) {
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  Oracle o(g, root, {});
  EXPECT_TRUE(o.in_R(root));
  EXPECT_TRUE(o.in_Rv(root));  // root is priority 3 by definition (§5.1)
  EXPECT_EQ(o.count_R(), 1u);
  EXPECT_EQ(o.count_GAR(), 0u);
}

TEST(Oracle, PriorityIsMaxMinOverPaths) {
  // root -v-> a -e-> b -v-> c : c's best path bottleneck is eager → prior 2.
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(0, OpCode::kData);
  const VertexId b = g.alloc(0, OpCode::kData);
  const VertexId c = g.alloc(0, OpCode::kData);
  connect(g, root, a, ReqKind::kVital);
  connect(g, a, b, ReqKind::kEager);
  connect(g, b, c, ReqKind::kVital);
  Oracle o(g, root, {});
  EXPECT_EQ(o.prior_at(root), 3);
  EXPECT_EQ(o.prior_at(a), 3);
  EXPECT_EQ(o.prior_at(b), 2);
  EXPECT_EQ(o.prior_at(c), 2);  // vital edge below an eager bottleneck
}

TEST(Oracle, HigherPriorityPathWins) {
  // Two paths to c: all-vital and via-eager → c is vital (prior 3).
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(0, OpCode::kData);
  const VertexId b = g.alloc(0, OpCode::kData);
  const VertexId c = g.alloc(0, OpCode::kData);
  connect(g, root, a, ReqKind::kVital);
  connect(g, root, b, ReqKind::kEager);
  connect(g, a, c, ReqKind::kVital);
  connect(g, b, c, ReqKind::kVital);
  Oracle o(g, root, {});
  EXPECT_EQ(o.prior_at(c), 3);
  EXPECT_TRUE(o.in_Rv(c));
  EXPECT_FALSE(o.in_Re(c));
}

TEST(Oracle, UnrequestedEdgeGivesReservePriority) {
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(0, OpCode::kData);
  connect(g, root, a, ReqKind::kNone);
  Oracle o(g, root, {});
  EXPECT_TRUE(o.in_Rr(a));
  EXPECT_EQ(o.prior_at(a), 1);
}

TEST(Oracle, GarbageIsUnreachable) {
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(0, OpCode::kData);
  const VertexId orphan = g.alloc(1, OpCode::kData);
  connect(g, root, a, ReqKind::kVital);
  Oracle o(g, root, {});
  EXPECT_TRUE(o.in_GAR(orphan));
  EXPECT_FALSE(o.in_GAR(a));
  EXPECT_EQ(o.count_GAR(), 1u);
}

TEST(Oracle, CyclicGarbageDetected) {
  // A detached 3-cycle: reference counting would never reclaim it;
  // reachability does (the paper's §4 argument against refcounting).
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(0, OpCode::kData);
  const VertexId b = g.alloc(0, OpCode::kData);
  const VertexId c = g.alloc(0, OpCode::kData);
  connect(g, a, b, ReqKind::kVital);
  connect(g, b, c, ReqKind::kVital);
  connect(g, c, a, ReqKind::kVital);
  Oracle o(g, root, {});
  EXPECT_TRUE(o.in_GAR(a));
  EXPECT_TRUE(o.in_GAR(b));
  EXPECT_TRUE(o.in_GAR(c));
}

TEST(Oracle, TaskReachabilityFollowsRequestedAndUnrequestedArgs) {
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(0, OpCode::kData);
  const VertexId b = g.alloc(0, OpCode::kData);
  const VertexId c = g.alloc(0, OpCode::kData);
  // a vitally requested b (so b ∈ requested-closure seeds only via task);
  // a has an unrequested arg c.
  connect(g, root, a, ReqKind::kVital);
  connect(g, a, b, ReqKind::kVital);
  connect(g, a, c, ReqKind::kNone);
  // A task exists at a.
  Oracle o(g, root, {TaskRef{root, a}});
  EXPECT_TRUE(o.in_T(root));  // s of the task
  EXPECT_TRUE(o.in_T(a));     // d of the task
  EXPECT_TRUE(o.in_T(c));     // via args(a) − req-args(a)
  // b is NOT ↦-reachable from a: the vital request edge is not a T-edge,
  // and requested(b) = {a} points back at a, not onward.
  EXPECT_FALSE(o.in_T(b));
}

TEST(Oracle, RequestedBackEdgeTraced) {
  Graph g(1);
  const VertexId x = g.alloc(0, OpCode::kData);
  const VertexId y = g.alloc(0, OpCode::kData);
  connect(g, x, y, ReqKind::kVital);  // x requested y ⇒ x ∈ requested-set of y
  // Task at y: y ↦ x via requested(y).
  Oracle o(g, x, {TaskRef{VertexId::invalid(), y}});
  EXPECT_TRUE(o.in_T(y));
  EXPECT_TRUE(o.in_T(x));
}

// ---- The paper's Figure 3-1 (deadlock). ----

TEST(Fig31Deadlock, SelfDependentVertexIsDLv) {
  Graph g(2);
  const DeadlockScenario sc = build_deadlock_scenario(g);
  Oracle o(g, sc.root, sc.tasks);
  // x ∈ R_v (root vitally awaits it) but no task can ever reach it.
  EXPECT_TRUE(o.in_Rv(sc.x));
  EXPECT_FALSE(o.in_T(sc.x));
  EXPECT_TRUE(o.in_DLv(sc.x));
  // root and busy are task-reachable, hence not deadlocked.
  EXPECT_FALSE(o.in_DLv(sc.root));
  EXPECT_FALSE(o.in_DLv(sc.busy));
  EXPECT_EQ(o.count_DLv(), 1u);
}

TEST(Fig31Deadlock, WithoutTasksWholeVitalRegionDeadlocks) {
  // §3.1: deadlock = task activity ceased while the root still awaits the
  // value. With no tasks at all, everything vital is deadlocked.
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId x = g.alloc(0, OpCode::kData);
  connect(g, root, x, ReqKind::kVital);
  connect(g, x, x, ReqKind::kVital);
  Oracle o(g, root, {});
  EXPECT_TRUE(o.in_DLv(root));
  EXPECT_TRUE(o.in_DLv(x));
}

// ---- The paper's Figure 3-2 (task types). ----

TEST(Fig32TaskTypes, AllFourTypesClassified) {
  Graph g(4);
  const TaskTypeScenario sc = build_task_type_scenario(g);
  Oracle o(g, sc.root, sc.tasks);

  // Vertex memberships (the Venn diagram of Fig 3-3).
  EXPECT_EQ(o.prior_at(sc.a_plus_1), 3);  // vitally demanded via p
  EXPECT_EQ(o.prior_at(sc.a), 3);         // shared, best path vital
  EXPECT_EQ(o.prior_at(sc.d), 2);         // eagerly speculated branch
  EXPECT_EQ(o.prior_at(sc.c), 1);         // unrequested else-branch: reserve
  EXPECT_TRUE(o.in_GAR(sc.abc));          // dereferenced branch is garbage
  EXPECT_TRUE(o.in_GAR(sc.b));

  // Task classifications (Properties 3-6).
  EXPECT_EQ(o.classify(sc.tasks[0]), TaskClass::kVital);
  EXPECT_EQ(o.classify(sc.tasks[1]), TaskClass::kEager);
  EXPECT_EQ(o.classify(sc.tasks[2]), TaskClass::kIrrelevant);
  EXPECT_EQ(o.classify(sc.tasks[3]), TaskClass::kReserve);
}

TEST(Fig32TaskTypes, GarAndTNotDisjoint) {
  // §3.1: "GAR and T are not necessarily disjoint" — the irrelevant task's
  // source keeps its garbage destination T-reachable.
  Graph g(4);
  const TaskTypeScenario sc = build_task_type_scenario(g);
  Oracle o(g, sc.root, sc.tasks);
  EXPECT_TRUE(o.in_GAR(sc.b));
  EXPECT_TRUE(o.in_T(sc.b));  // d of task <abc,b>
}

// ---- Venn relationships on random graphs (Fig 3-3), parameterized. ----

class OracleVennTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleVennTest, SetRelationshipsHold) {
  Graph g(4);
  RandomGraphOptions opt;
  opt.num_vertices = 300;
  opt.seed = GetParam();
  const BuiltGraph b = build_random_graph(g, opt);
  Oracle o(g, b.root, b.tasks);

  std::size_t n_r = 0;
  g.for_each_live([&](VertexId v) {
    // R = R_v ⊎ R_e ⊎ R_r (by max-min priority, the three are disjoint).
    const int p = o.prior_at(v);
    EXPECT_EQ(o.in_R(v), p >= 1);
    EXPECT_EQ(o.in_Rv(v) + o.in_Re(v) + o.in_Rr(v), o.in_R(v) ? 1 : 0);
    // GAR = V − R − F (Property 1); F excluded by for_each_live.
    EXPECT_EQ(o.in_GAR(v), !o.in_R(v));
    // DL_v = R_v − T (Property 2').
    EXPECT_EQ(o.in_DLv(v), o.in_Rv(v) && !o.in_T(v));
    if (o.in_R(v)) ++n_r;
  });
  EXPECT_EQ(n_r, o.count_R());
  EXPECT_EQ(o.count_R(), o.count_Rv() + o.count_Re() + o.count_Rr());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleVennTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace dgr
