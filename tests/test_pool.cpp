// Unit tests for the priority task pool (§3.2 item 1: vital tasks compete
// with eager ones — the pool always serves the highest class), the per-PE
// mailbox (batch delivery / batch drain), and fuzz tests for the wire codec.
#include <gtest/gtest.h>

#include "net/mailbox.h"
#include "net/wire.h"
#include "runtime/pool.h"

namespace dgr {
namespace {

Task mk(std::uint8_t prior, std::uint32_t idx) {
  Task t = Task::request(VertexId::invalid(), VertexId{0, idx},
                         ReqKind::kVital);
  t.pool_prior = prior;
  return t;
}

TEST(TaskPool, ServesHighestPriorityFirst) {
  TaskPool p;
  p.push(mk(1, 10));
  p.push(mk(3, 11));
  p.push(mk(2, 12));
  EXPECT_EQ(p.pop().d.idx, 11u);  // vital first
  EXPECT_EQ(p.pop().d.idx, 12u);  // then eager
  EXPECT_EQ(p.pop().d.idx, 10u);  // then reserve
  EXPECT_TRUE(p.empty());
}

TEST(TaskPool, FifoWithinBucketWithoutRng) {
  TaskPool p;
  for (std::uint32_t i = 0; i < 5; ++i) p.push(mk(3, i));
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(p.pop().d.idx, i);
}

TEST(TaskPool, ExpungeByPredicate) {
  TaskPool p;
  for (std::uint32_t i = 0; i < 10; ++i) p.push(mk(1 + i % 3, i));
  const std::size_t killed =
      p.expunge([](const Task& t) { return t.d.idx % 2 == 0; });
  EXPECT_EQ(killed, 5u);
  EXPECT_EQ(p.size(), 5u);
  while (!p.empty()) EXPECT_EQ(p.pop().d.idx % 2, 1u);
}

TEST(TaskPool, ReprioritizeMovesBuckets) {
  TaskPool p;
  for (std::uint32_t i = 0; i < 6; ++i) p.push(mk(1, i));
  // Every second task becomes vital.
  const std::size_t moved = p.reprioritize(
      [](const Task& t) { return t.d.idx % 2 == 0 ? std::uint8_t{3}
                                                  : std::uint8_t{1}; });
  EXPECT_EQ(moved, 3u);
  // Vital ones come out first now.
  EXPECT_EQ(p.pop().d.idx % 2, 0u);
  EXPECT_EQ(p.pop().d.idx % 2, 0u);
  EXPECT_EQ(p.pop().d.idx % 2, 0u);
  EXPECT_EQ(p.pop().d.idx % 2, 1u);
}

TEST(TaskPool, ReprioritizeStableWhenUnchanged) {
  TaskPool p;
  for (std::uint32_t i = 0; i < 4; ++i) p.push(mk(2, i));
  EXPECT_EQ(p.reprioritize([](const Task&) { return std::uint8_t{2}; }), 0u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(p.pop().d.idx, i);
}

TEST(TaskPool, RandomPopIsSeedDeterministic) {
  TaskPool p1, p2;
  for (std::uint32_t i = 0; i < 16; ++i) {
    p1.push(mk(3, i));
    p2.push(mk(3, i));
  }
  Rng r1(77), r2(77);
  while (!p1.empty()) EXPECT_EQ(p1.pop(&r1).d.idx, p2.pop(&r2).d.idx);
}

TEST(TaskPool, ForEachSeesEverything) {
  TaskPool p;
  for (std::uint32_t i = 0; i < 9; ++i) p.push(mk(1 + i % 3, i));
  std::size_t n = 0;
  std::uint64_t sum = 0;
  p.for_each([&](const Task& t) {
    ++n;
    sum += t.d.idx;
  });
  EXPECT_EQ(n, 9u);
  EXPECT_EQ(sum, 36u);
}

// ---- Mailbox: batch delivery and batch drain over the MPMC queue. ----

Mailbox::Bytes msg(std::uint8_t tag, std::size_t n = 8) {
  return Mailbox::Bytes(n, tag);
}

TEST(Mailbox, DeliverBatchCountsOnceAndPreservesOrder) {
  Mailbox mb;
  mb.deliver(msg(0));
  std::vector<Mailbox::Bytes> batch;
  for (std::uint8_t i = 1; i <= 4; ++i) batch.push_back(msg(i, 4 + i));
  mb.deliver_batch(std::move(batch));
  EXPECT_EQ(mb.pending(), 5u);
  EXPECT_EQ(mb.messages_received(), 5u);
  EXPECT_EQ(mb.bytes_received(), 8u + 5 + 6 + 7 + 8);
  for (std::uint8_t i = 0; i <= 4; ++i) {
    const std::optional<Mailbox::Bytes> m = mb.try_receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ((*m)[0], i);  // batch lands behind earlier traffic, in order
  }
  EXPECT_FALSE(mb.try_receive().has_value());
}

TEST(Mailbox, DrainTakesUpToNInDeliveryOrder) {
  Mailbox mb;
  for (std::uint8_t i = 0; i < 10; ++i) mb.deliver(msg(i));
  std::vector<Mailbox::Bytes> out;
  EXPECT_EQ(mb.drain(4, out), 4u);
  EXPECT_EQ(mb.pending(), 6u);
  EXPECT_EQ(mb.drain(100, out), 6u);  // appends; never blocks when short
  EXPECT_EQ(mb.drain(100, out), 0u);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(out[i][0], i);
}

TEST(Mailbox, HighWaterTracksBatchDepth) {
  Mailbox mb;
  mb.deliver(msg(1));
  EXPECT_EQ(mb.high_water(), 1u);
  std::vector<Mailbox::Bytes> batch(7, msg(2));
  mb.deliver_batch(std::move(batch));
  EXPECT_EQ(mb.high_water(), 8u);  // depth observed once, after the batch
  std::vector<Mailbox::Bytes> out;
  mb.drain(8, out);
  mb.deliver(msg(3));
  EXPECT_EQ(mb.high_water(), 8u);  // monotone
  mb.deliver_batch({});            // empty batch is a no-op
  EXPECT_EQ(mb.messages_received(), 9u);
}

// ---- Wire codec fuzz: random tasks must round-trip bit-exactly. ----

TEST(WireFuzz, RandomTaskRoundTrips) {
  Rng rng(2026);
  for (int i = 0; i < 5000; ++i) {
    Task t;
    t.kind = static_cast<TaskKind>(rng.below(7));
    t.plane = rng.chance(0.5) ? Plane::kR : Plane::kT;
    t.d = VertexId{static_cast<PeId>(rng.below(64)),
                   static_cast<std::uint32_t>(rng.next())};
    t.s = rng.chance(0.2)
              ? VertexId::invalid()
              : VertexId{static_cast<PeId>(rng.below(64)),
                         static_cast<std::uint32_t>(rng.next())};
    t.prior = static_cast<std::uint8_t>(rng.below(4));
    t.demand = static_cast<ReqKind>(rng.below(3));
    t.pool_prior = static_cast<std::uint8_t>(1 + rng.below(3));
    switch (rng.below(4)) {
      case 0: t.value = Value::of_int(static_cast<std::int64_t>(rng.next())); break;
      case 1: t.value = Value::of_bool(rng.chance(0.5)); break;
      case 2: t.value = Value::of_node(VertexId{1, 2}); break;
      default: t.value = Value::nil(); break;
    }
    const Task u = decode_task(encode_task(t));
    EXPECT_EQ(u.kind, t.kind);
    EXPECT_EQ(u.plane, t.plane);
    EXPECT_EQ(u.d, t.d);
    EXPECT_EQ(u.s, t.s);
    EXPECT_EQ(u.prior, t.prior);
    EXPECT_EQ(u.demand, t.demand);
    EXPECT_EQ(u.pool_prior, t.pool_prior);
    EXPECT_TRUE(u.value == t.value);
  }
}

TEST(WireFuzz, TruncatedBufferIsRejected) {
  const Task t = Task::mark(Plane::kR, VertexId{1, 2}, VertexId{3, 4}, 3);
  auto bytes = encode_task(t);
  bytes.pop_back();
  EXPECT_DEATH(decode_task(bytes), "");
}

}  // namespace
}  // namespace dgr
