// Unit tests for the distributed graph store: arenas, free lists (F),
// connectivity helpers and the edge/request bookkeeping invariant
// (e.req != kNone ⟺ requester ∈ requested(target)).
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/graph.h"

namespace dgr {
namespace {

TEST(Store, AllocFromFreeListThenGrow) {
  Store s(0, 2);
  EXPECT_EQ(s.free_count(), 2u);
  const VertexId a = s.alloc(OpCode::kData);
  const VertexId b = s.alloc(OpCode::kData);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(s.free_count(), 0u);
  // Grows by default.
  const VertexId c = s.alloc(OpCode::kData);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(s.live_count(), 3u);
}

TEST(Store, FixedCapacityExhausts) {
  Store s(0, 1);
  s.set_fixed_capacity(true);
  EXPECT_TRUE(s.alloc(OpCode::kData).valid());
  EXPECT_FALSE(s.alloc(OpCode::kData).valid());
}

TEST(Store, ReleaseReturnsToFreeList) {
  Store s(0, 1);
  const VertexId a = s.alloc(OpCode::kLit);
  s.at(a.idx).value = Value::of_int(7);
  s.release(a.idx);
  EXPECT_EQ(s.free_count(), 1u);
  EXPECT_TRUE(s.is_free(a.idx));
  const VertexId b = s.alloc(OpCode::kData);
  EXPECT_EQ(b.idx, a.idx);  // slot reused
  EXPECT_FALSE(s.at(b.idx).value.defined());  // payload was reset
}

TEST(Store, ReleasePreservesMarkPlanes) {
  Store s(0, 1);
  const VertexId a = s.alloc(OpCode::kData);
  s.at(a.idx).plane(Plane::kR).epoch = 42;
  s.release(a.idx);
  const VertexId b = s.alloc(OpCode::kData);
  EXPECT_EQ(s.at(b.idx).plane(Plane::kR).epoch, 42u);
}

TEST(Store, TaskrootIsAuxAndStable) {
  Store s(0, 4);
  const VertexId tr1 = s.taskroot();
  const VertexId tr2 = s.taskroot();
  EXPECT_EQ(tr1, tr2);
  EXPECT_TRUE(s.at(tr1.idx).aux);
  EXPECT_EQ(s.at(tr1.idx).op, OpCode::kTaskRoot);
  // Aux vertices invisible to for_each_live.
  int live_seen = 0;
  s.for_each_live([&](std::uint32_t) { ++live_seen; });
  EXPECT_EQ(live_seen, 0);
}

TEST(Graph, CrossPeAllocationRoundRobin) {
  Graph g(4);
  std::vector<int> per_pe(4, 0);
  for (int i = 0; i < 8; ++i) ++per_pe[g.alloc_rr(OpCode::kData).pe];
  for (int c : per_pe) EXPECT_EQ(c, 2);
}

TEST(Graph, ConnectMaintainsRequestedBackEdge) {
  Graph g(2);
  const VertexId x = g.alloc(0, OpCode::kData);
  const VertexId y = g.alloc(1, OpCode::kData);
  connect(g, x, y, ReqKind::kVital);
  ASSERT_EQ(g.at(x).args.size(), 1u);
  EXPECT_EQ(g.at(x).args[0].to, y);
  EXPECT_EQ(g.at(x).args[0].req, ReqKind::kVital);
  EXPECT_TRUE(g.at(y).has_requester(x));
}

TEST(Graph, UnrequestedConnectAddsNoBackEdge) {
  Graph g(1);
  const VertexId x = g.alloc(0, OpCode::kData);
  const VertexId y = g.alloc(0, OpCode::kData);
  connect(g, x, y, ReqKind::kNone);
  EXPECT_FALSE(g.at(y).has_requester(x));
}

TEST(Graph, DisconnectClearsBackEdge) {
  Graph g(1);
  const VertexId x = g.alloc(0, OpCode::kData);
  const VertexId y = g.alloc(0, OpCode::kData);
  connect(g, x, y, ReqKind::kEager);
  disconnect(g, x, y);
  EXPECT_TRUE(g.at(x).args.empty());
  EXPECT_FALSE(g.at(y).has_requester(x));
}

TEST(Graph, SetRequestTransitions) {
  Graph g(1);
  const VertexId x = g.alloc(0, OpCode::kData);
  const VertexId y = g.alloc(0, OpCode::kData);
  connect(g, x, y, ReqKind::kNone);
  set_request(g, x, y, ReqKind::kEager);
  EXPECT_TRUE(g.at(y).has_requester(x));
  set_request(g, x, y, ReqKind::kVital);  // upgrade keeps single back-edge
  EXPECT_EQ(g.at(y).requested.size(), 1u);
  set_request(g, x, y, ReqKind::kNone);
  EXPECT_FALSE(g.at(y).has_requester(x));
}

TEST(Graph, ReplyRevertsEdgeToUnrequested) {
  Graph g(1);
  const VertexId x = g.alloc(0, OpCode::kData);
  const VertexId y = g.alloc(0, OpCode::kData);
  connect(g, x, y, ReqKind::kVital);
  reply_to(g, y, x, Value::of_int(5));
  EXPECT_FALSE(g.at(y).has_requester(x));
  EXPECT_EQ(g.at(x).args[0].req, ReqKind::kNone);
  EXPECT_EQ(g.at(x).args[0].value.as_int(), 5);
}

TEST(Graph, ReplyToExternalDemandIsSafe) {
  Graph g(1);
  const VertexId y = g.alloc(0, OpCode::kData);
  g.at(y).requested.push_back(VertexId::invalid());
  reply_to(g, y, VertexId::invalid(), Value::of_int(1));
  EXPECT_TRUE(g.at(y).requested.empty());
}

TEST(Graph, SelfLoopSupported) {
  Graph g(1);
  const VertexId x = g.alloc(0, OpCode::kData);
  connect(g, x, x, ReqKind::kVital);
  EXPECT_EQ(g.at(x).args[0].to, x);
  EXPECT_TRUE(g.at(x).has_requester(x));
}

TEST(VertexIdTest, PackUnpackRoundTrip) {
  const VertexId v{3, 12345};
  EXPECT_EQ(VertexId::unpack(v.pack()), v);
  EXPECT_TRUE(VertexId::rootpar().is_rootpar());
  EXPECT_FALSE(VertexId::invalid().valid());
}

TEST(Builder, ChainIsConnected) {
  Graph g(4);
  const auto chain = build_chain(g, 10, ReqKind::kVital);
  ASSERT_EQ(chain.size(), 10u);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    EXPECT_EQ(g.at(chain[i]).args.size(), 1u);
    EXPECT_EQ(g.at(chain[i]).args[0].to, chain[i + 1]);
  }
}

TEST(Builder, TreeHasExpectedSize) {
  Graph g(2);
  build_tree(g, 5, ReqKind::kNone);
  EXPECT_EQ(g.total_live(), (1u << 6) - 1);  // 2^(d+1) - 1 vertices
}

TEST(Builder, RandomGraphDeterministicPerSeed) {
  Graph g1(4), g2(4);
  RandomGraphOptions opt;
  opt.num_vertices = 200;
  opt.seed = 77;
  const BuiltGraph b1 = build_random_graph(g1, opt);
  const BuiltGraph b2 = build_random_graph(g2, opt);
  ASSERT_EQ(b1.vertices.size(), b2.vertices.size());
  for (std::size_t i = 0; i < b1.vertices.size(); ++i) {
    EXPECT_EQ(g1.at(b1.vertices[i]).args.size(),
              g2.at(b2.vertices[i]).args.size());
  }
  ASSERT_EQ(b1.tasks.size(), b2.tasks.size());
}

TEST(Builder, AcyclicOptionProducesNoSelfLoop) {
  Graph g(2);
  RandomGraphOptions opt;
  opt.cyclic = false;
  opt.num_vertices = 100;
  opt.seed = 5;
  const BuiltGraph b = build_random_graph(g, opt);
  for (VertexId v : b.vertices)
    for (const ArgEdge& e : g.at(v).args) EXPECT_NE(e.to, v);
}

}  // namespace
}  // namespace dgr
