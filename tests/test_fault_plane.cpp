// Fault-plane tests: the seeded schedule is deterministic (same seed ⇒
// byte-identical delivery sequence), different seeds diverge, each fault
// mode does what it says, and held (reordered) messages always drain.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/fault_plane.h"

namespace dgr {
namespace {

using Bytes = FaultPlane::Bytes;

Bytes msg(std::uint8_t tag, std::size_t n = 8) { return Bytes(n, tag); }

// Record of everything a plane delivered, in order, tagged with the
// destination — a transcript two same-seeded runs can be compared by.
struct Transcript {
  std::vector<std::pair<PeId, Bytes>> out;
  FaultPlane::DeliverFn fn() {
    return [this](PeId, PeId dst, Bytes b) {
      out.emplace_back(dst, std::move(b));
    };
  }
};

Transcript run_schedule(std::uint64_t seed, const FaultSpec& spec,
                        int messages) {
  Transcript t;
  FaultPlaneOptions opt;
  opt.seed = seed;
  opt.spec = spec;
  FaultPlane plane(2, opt, t.fn());
  for (int i = 0; i < messages; ++i)
    plane.send(0, 1, msg(static_cast<std::uint8_t>(i), 16));
  plane.flush();
  return t;
}

TEST(FaultPlane, SameSeedSameDeliverySequence) {
  FaultSpec spec;
  spec.drop = 0.2;
  spec.duplicate = 0.2;
  spec.reorder = 0.3;
  spec.truncate = 0.15;
  const Transcript a = run_schedule(42, spec, 500);
  const Transcript b = run_schedule(42, spec, 500);
  ASSERT_EQ(a.out.size(), b.out.size());
  for (std::size_t i = 0; i < a.out.size(); ++i) {
    EXPECT_EQ(a.out[i].first, b.out[i].first);
    EXPECT_EQ(a.out[i].second, b.out[i].second) << "at " << i;
  }
}

TEST(FaultPlane, DifferentSeedsDiverge) {
  FaultSpec spec;
  spec.drop = 0.2;
  spec.duplicate = 0.2;
  spec.reorder = 0.3;
  spec.truncate = 0.15;
  const Transcript a = run_schedule(1, spec, 500);
  const Transcript b = run_schedule(2, spec, 500);
  EXPECT_NE(a.out, b.out);
}

TEST(FaultPlane, NoFaultsIsPassThrough) {
  Transcript t;
  FaultPlane plane(2, {}, t.fn());
  for (int i = 0; i < 100; ++i) plane.send(0, 1, msg(std::uint8_t(i)));
  ASSERT_EQ(t.out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.out[i].first, 1u);
    EXPECT_EQ(t.out[i].second, msg(std::uint8_t(i)));
  }
  EXPECT_EQ(plane.stats().total_injected(), 0u);
}

TEST(FaultPlane, DropLosesMessagesAndCountsThem) {
  FaultSpec spec;
  spec.drop = 0.5;
  Transcript t;
  FaultPlaneOptions opt;
  opt.spec = spec;
  FaultPlane plane(2, opt, t.fn());
  for (int i = 0; i < 1000; ++i) plane.send(0, 1, msg(1));
  const FaultPlane::Stats s = plane.stats();
  const std::uint64_t dropped =
      s.injected[static_cast<std::size_t>(FaultKind::kDrop)];
  EXPECT_GT(dropped, 300u);  // p=.5 over 1000: far from both extremes
  EXPECT_LT(dropped, 700u);
  EXPECT_EQ(t.out.size(), 1000u - dropped);
  EXPECT_EQ(s.sent, 1000u);
  EXPECT_EQ(s.delivered, t.out.size());
}

TEST(FaultPlane, DuplicateDeliversTwice) {
  FaultSpec spec;
  spec.duplicate = 1.0;
  Transcript t;
  FaultPlaneOptions opt;
  opt.spec = spec;
  FaultPlane plane(2, opt, t.fn());
  plane.send(0, 1, msg(7));
  ASSERT_EQ(t.out.size(), 2u);
  EXPECT_EQ(t.out[0].second, msg(7));
  EXPECT_EQ(t.out[1].second, msg(7));
}

TEST(FaultPlane, TruncateShortensButNeverGrows) {
  FaultSpec spec;
  spec.truncate = 1.0;
  Transcript t;
  FaultPlaneOptions opt;
  opt.spec = spec;
  FaultPlane plane(2, opt, t.fn());
  for (int i = 0; i < 200; ++i) plane.send(0, 1, msg(9, 32));
  ASSERT_EQ(t.out.size(), 200u);
  bool some_shorter = false;
  for (const auto& [dst, b] : t.out) {
    EXPECT_LT(b.size(), 32u);  // always a strict prefix
    if (b.size() < 32u) some_shorter = true;
  }
  EXPECT_TRUE(some_shorter);
}

TEST(FaultPlane, ReorderHoldsThenReleasesInWindow) {
  FaultSpec spec;
  spec.reorder = 1.0;
  spec.reorder_span = 1;  // released right after the next send on the pair
  Transcript t;
  FaultPlaneOptions opt;
  opt.spec = spec;
  FaultPlane plane(2, opt, t.fn());
  plane.send(0, 1, msg(1));
  EXPECT_TRUE(t.out.empty());  // held
  plane.send(0, 1, msg(2));
  // Send 2 is itself held; send 1's countdown expired with this send.
  ASSERT_EQ(t.out.size(), 1u);
  EXPECT_EQ(t.out[0].second, msg(1));
  plane.flush();  // shutdown drains the rest
  ASSERT_EQ(t.out.size(), 2u);
  EXPECT_EQ(t.out[1].second, msg(2));
}

TEST(FaultPlane, PairSpecOverridesDefault) {
  FaultSpec lossy;
  lossy.drop = 1.0;
  Transcript t;
  FaultPlaneOptions opt;
  opt.spec = lossy;  // default: everything dropped
  FaultPlane plane(3, opt, t.fn());
  plane.set_pair_spec(0, 2, FaultSpec{});  // except 0→2, made clean
  for (int i = 0; i < 50; ++i) {
    plane.send(0, 1, msg(1));
    plane.send(0, 2, msg(2));
  }
  ASSERT_EQ(t.out.size(), 50u);
  for (const auto& [dst, b] : t.out) EXPECT_EQ(dst, 2u);
  EXPECT_EQ(plane.pair_stats(0, 1)
                .injected[static_cast<std::size_t>(FaultKind::kDrop)],
            50u);
  EXPECT_EQ(plane.pair_stats(0, 2).total_injected(), 0u);
}

TEST(FaultPlane, InjectHookSeesEveryFault) {
  FaultSpec spec;
  spec.drop = 0.3;
  spec.duplicate = 0.3;
  spec.truncate = 0.3;
  std::uint64_t hook_count = 0;
  Transcript t;
  FaultPlaneOptions opt;
  opt.seed = 5;
  opt.spec = spec;
  FaultPlane plane(2, opt, t.fn());
  plane.set_inject_hook(
      [&](FaultKind, PeId src, PeId dst, std::size_t) {
        EXPECT_EQ(src, 0u);
        EXPECT_EQ(dst, 1u);
        ++hook_count;
      });
  for (int i = 0; i < 300; ++i) plane.send(0, 1, msg(1));
  EXPECT_EQ(hook_count, plane.stats().total_injected());
  EXPECT_GT(hook_count, 0u);
}

}  // namespace
}  // namespace dgr
