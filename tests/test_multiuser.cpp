// Multi-user operation (§3.1 footnote 5): several independent computations
// share the PEs, the stores and the collector. Each user's root is a
// marking root; garbage and deadlock are managed per-region without one
// user's fate affecting another's.
//
// Root management goes through the session driver's multi-user API
// (docs/WORKLOAD.md): adopt_root() when a user arrives, close_root() when
// its answer has been delivered — the same pure-adopted mode (no setup(),
// no anchors) a front-end multiplexing real users onto the machine would
// drive, so these tests also pin that surface.
#include <gtest/gtest.h>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"
#include "workload/session.h"

namespace dgr {
namespace {

struct MultiRig {
  Graph g{4};
  SimEngine eng;
  Machine machine;
  std::unique_ptr<workload::DriverEngine> drv_eng;
  workload::SessionDriver driver;

  explicit MultiRig(const std::string& src, std::uint64_t seed = 1)
      : eng(g, [&] {
          SimOptions s;
          s.seed = seed;
          return s;
        }()),
        machine(g, eng.mutator(), eng, Program::from_source(src)),
        drv_eng(workload::make_driver(eng)),
        driver(*drv_eng, workload::WorkloadOptions{}) {}

  VertexId add_user(const std::string& fn, PeId pe) {
    const VertexId r = machine.load_main(pe, fn);
    driver.adopt_root(r);
    eng.set_reducer([this](const Task& t) { machine.exec(t); });
    machine.demand(r);
    return r;
  }

  void retire_user(VertexId r) { driver.close_root(r); }
};

TEST(MultiUser, IndependentResults) {
  MultiRig rig(
      "def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
      "def user_a() = fib(10);"
      "def user_b() = 6 * 7;"
      "def user_c() = fib(8) + 1;");
  const VertexId a = rig.add_user("user_a", 0);
  const VertexId b = rig.add_user("user_b", 1);
  const VertexId c = rig.add_user("user_c", 2);
  rig.eng.run(50'000'000);
  ASSERT_FALSE(rig.machine.has_error());
  EXPECT_EQ(rig.machine.result_of(a)->as_int(), 55);
  EXPECT_EQ(rig.machine.result_of(b)->as_int(), 42);
  EXPECT_EQ(rig.machine.result_of(c)->as_int(), 22);
}

TEST(MultiUser, SharedCollectorSweepsAllRegions) {
  MultiRig rig(
      "def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
      "def user_a() = fib(9);"
      "def user_b() = fib(9);");
  const VertexId a = rig.add_user("user_a", 0);
  const VertexId b = rig.add_user("user_b", 1);
  rig.eng.run(50'000'000);
  ASSERT_TRUE(rig.machine.result_of(a) && rig.machine.result_of(b));
  // One cycle sweeps both users' consumed subgraphs; both roots survive.
  rig.eng.controller().start_cycle(CycleOptions{false});
  rig.eng.run_until_cycle_done(10'000'000);
  EXPECT_GT(rig.eng.controller().last().swept, 0u);
  EXPECT_FALSE(rig.g.is_free(a));
  EXPECT_FALSE(rig.g.is_free(b));
  // A second cycle: every non-aux survivor is a user root.
  rig.eng.controller().start_cycle(CycleOptions{false});
  rig.eng.run_until_cycle_done(10'000'000);
  std::size_t non_aux = 0;
  rig.g.for_each_live([&](VertexId) { ++non_aux; });
  EXPECT_EQ(non_aux, 2u);
}

TEST(MultiUser, OneUsersDeadlockDoesNotStopAnother) {
  // "one would not expect the entire system to deadlock just because one
  // user's program has deadlocked!" (§3.1, footnote 5)
  MultiRig rig(
      "def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
      "def wedged() = let x = x + 1 in x;"
      "def healthy() = fib(11);");
  const VertexId bad = rig.add_user("wedged", 0);
  const VertexId good = rig.add_user("healthy", 1);
  rig.eng.run(50'000'000);
  // The healthy user finished; the wedged one did not.
  EXPECT_TRUE(rig.machine.result_of(good).has_value());
  EXPECT_EQ(rig.machine.result_of(good)->as_int(), 89);
  EXPECT_FALSE(rig.machine.result_of(bad).has_value());
  // Deadlock detection pinpoints the wedged user's knot only.
  rig.eng.controller().start_cycle(CycleOptions{true});
  rig.eng.run_until_cycle_done(10'000'000);
  const CycleResult& res = rig.eng.controller().last();
  ASSERT_TRUE(res.deadlock_report_valid);
  ASSERT_EQ(res.deadlocked.size(), 1u);
  EXPECT_EQ(res.deadlocked[0], bad);
}

TEST(MultiUser, CompletedUserRegionIsCollectable) {
  // Once user A's answer is delivered and its root dropped from the root
  // set, A's entire region becomes garbage — while B keeps running.
  MultiRig rig(
      "def from(n) = cons(n, from(n + 1));"
      "def take_sum(k, xs) = if k == 0 then 0"
      "  else head(xs) + take_sum(k - 1, tail(xs));"
      "def user_a() = 1 + 2;"
      "def user_b() = take_sum(20, from(1));");
  const VertexId a = rig.add_user("user_a", 0);
  const VertexId b = rig.add_user("user_b", 1);
  rig.eng.run(50'000'000);
  ASSERT_TRUE(rig.machine.result_of(a) && rig.machine.result_of(b));
  // Retire user A through the driver: its root leaves the marking root set
  // and the whole region becomes garbage for the next cycle.
  rig.retire_user(a);
  rig.eng.controller().start_cycle(CycleOptions{false});
  rig.eng.run_until_cycle_done(10'000'000);
  EXPECT_TRUE(rig.g.is_free(a));
  EXPECT_FALSE(rig.g.is_free(b));
}

}  // namespace
}  // namespace dgr
