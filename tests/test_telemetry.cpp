// Cluster telemetry plane units: wire codecs for kTelemetry/kClockProbe/
// kClockEcho, the Cristian clock-offset estimator, registry bucket merging,
// and the live health-rollup formatters (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/clock_sync.h"
#include "net/proto.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dgr {
namespace {

// ---- ClockSync -------------------------------------------------------------

TEST(ClockSync, MidpointOffsetFromOneExchange) {
  ClockSync cs;
  EXPECT_FALSE(cs.valid());
  EXPECT_EQ(cs.offset_us(), 0);
  // Controller sends at 1000, receives at 1200; worker clock read 5100 at the
  // midpoint (1100) -> offset = +4000.
  cs.on_echo(1000, 1200, 5100);
  EXPECT_TRUE(cs.valid());
  EXPECT_EQ(cs.samples(), 1u);
  EXPECT_EQ(cs.offset_us(), 4000);
  EXPECT_EQ(cs.rtt_us(), 200u);
}

TEST(ClockSync, NegativeSkewWorkerBehindController) {
  // Workers fork after the controller, so their monotonic clocks usually
  // read BEHIND it: offset must come out negative and rebase must add the
  // magnitude back.
  ClockSync cs;
  cs.on_echo(10000, 10400, 7200);  // midpoint 10200 -> offset -3000
  EXPECT_EQ(cs.offset_us(), -3000);
  EXPECT_EQ(cs.rebase(7200), 10200u);  // worker ts maps onto controller time
  EXPECT_EQ(cs.rebase(0), 3000u);
}

TEST(ClockSync, RebaseClampsAtZeroAndStaysMonotone) {
  ClockSync cs;
  cs.on_echo(100, 100, 9000);  // offset +8900 (zero RTT)
  EXPECT_EQ(cs.rebase(50), 0u);    // would be negative: pinned to 0
  EXPECT_EQ(cs.rebase(8900), 0u);  // exactly the offset
  EXPECT_EQ(cs.rebase(8901), 1u);
  // Clamping never reorders: nondecreasing in, nondecreasing out.
  std::uint64_t prev = 0;
  for (std::uint64_t ts : {0u, 10u, 8899u, 8900u, 9000u, 20000u}) {
    const std::uint64_t r = cs.rebase(ts);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(ClockSync, MinRttSampleWins) {
  ClockSync cs;
  cs.on_echo(1000, 1400, 1500);  // rtt 400, offset +300
  EXPECT_EQ(cs.offset_us(), 300);
  // A looser exchange must not override the estimate...
  cs.on_echo(2000, 3000, 9999);  // rtt 1000
  EXPECT_EQ(cs.offset_us(), 300);
  EXPECT_EQ(cs.rtt_us(), 400u);
  // ...but a tighter one must.
  cs.on_echo(5000, 5100, 5150);  // rtt 100, offset +100
  EXPECT_EQ(cs.offset_us(), 100);
  EXPECT_EQ(cs.rtt_us(), 100u);
  EXPECT_EQ(cs.samples(), 3u);
}

TEST(ClockSync, DiscardsBackwardControllerClock) {
  ClockSync cs;
  cs.on_echo(500, 400, 777);  // t1 < t0: impossible exchange
  EXPECT_FALSE(cs.valid());
  EXPECT_EQ(cs.samples(), 0u);
}

// ---- Wire codecs -----------------------------------------------------------

TEST(TelemetryCodec, ClockProbeEchoRoundTrip) {
  ClockProbeMsg p;
  p.seq = 42;
  p.t_controller_us = 123456789ull;
  ClockProbeMsg p2;
  ASSERT_TRUE(decode_clock_probe(encode_clock_probe(p), p2));
  EXPECT_EQ(p2.seq, p.seq);
  EXPECT_EQ(p2.t_controller_us, p.t_controller_us);

  ClockEchoMsg e;
  e.seq = 42;
  e.t_controller_us = p.t_controller_us;
  e.t_worker_us = 55555ull;
  ClockEchoMsg e2;
  ASSERT_TRUE(decode_clock_echo(encode_clock_echo(e), e2));
  EXPECT_EQ(e2.seq, e.seq);
  EXPECT_EQ(e2.t_controller_us, e.t_controller_us);
  EXPECT_EQ(e2.t_worker_us, e.t_worker_us);

  ClockProbeMsg junk;
  EXPECT_FALSE(decode_clock_probe(Bytes{1, 2, 3}, junk));
}

TelemetryMsg sample_telemetry() {
  TelemetryMsg m;
  m.plane = Plane::kT;
  m.epoch = 17;
  m.pe_begin = 2;
  m.pe_count = 2;
  m.counters.push_back(
      {2, static_cast<std::uint8_t>(obs::Counter::kMarkTasks), 31});
  m.counters.push_back(
      {3, static_cast<std::uint8_t>(obs::Counter::kRemoteMessages), 7});
  TelemetryMsg::HistDelta hd;
  hd.pe = 3;
  hd.hist = static_cast<std::uint8_t>(obs::Hist::kMarkQueueDepth);
  hd.max = 12.5;
  hd.buckets.emplace_back(0, 4);
  hd.buckets.emplace_back(5, 2);
  m.hists.push_back(hd);
  obs::TraceEvent ev;
  ev.ts = 999;
  ev.cycle = 3;
  ev.a = 64;
  ev.type = obs::EventType::kWaveFront;
  ev.plane = Plane::kT;
  ev.pe = 2;
  m.events.push_back(ev);
  m.events.push_back(obs::make_drop_event(1000, 3, 2, 5, 1));
  m.events_omitted = 1;
  m.ring_dropped = 5;
  return m;
}

TEST(TelemetryCodec, RoundTripPreservesEverything) {
  const TelemetryMsg m = sample_telemetry();
  TelemetryMsg d;
  ASSERT_TRUE(decode_telemetry(encode_telemetry(m), d));
  EXPECT_EQ(d.plane, m.plane);
  EXPECT_EQ(d.epoch, m.epoch);
  EXPECT_EQ(d.pe_begin, m.pe_begin);
  EXPECT_EQ(d.pe_count, m.pe_count);
  ASSERT_EQ(d.counters.size(), 2u);
  EXPECT_EQ(d.counters[0].pe, 2u);
  EXPECT_EQ(d.counters[0].counter,
            static_cast<std::uint8_t>(obs::Counter::kMarkTasks));
  EXPECT_EQ(d.counters[0].delta, 31u);
  EXPECT_EQ(d.counters[1].delta, 7u);
  ASSERT_EQ(d.hists.size(), 1u);
  EXPECT_EQ(d.hists[0].pe, 3u);
  EXPECT_DOUBLE_EQ(d.hists[0].max, 12.5);
  ASSERT_EQ(d.hists[0].buckets.size(), 2u);
  EXPECT_EQ(d.hists[0].buckets[1], (std::pair<std::uint32_t, std::uint64_t>{
                                       5u, 2u}));
  ASSERT_EQ(d.events.size(), 2u);
  EXPECT_EQ(d.events[0], m.events[0]);
  EXPECT_EQ(d.events[1].type, obs::EventType::kTraceDrop);
  EXPECT_EQ(d.events[1].a, 5u);  // ring drops
  EXPECT_EQ(d.events[1].b, 1u);  // payload-cap drops
  EXPECT_EQ(d.events_omitted, 1u);
  EXPECT_EQ(d.ring_dropped, 5u);
}

TEST(TelemetryCodec, EmptyDeltaIsValid) {
  TelemetryMsg m;  // a quiet interval ships an empty (but well-formed) delta
  TelemetryMsg d = sample_telemetry();  // prove decode overwrites
  ASSERT_TRUE(decode_telemetry(encode_telemetry(m), d));
  EXPECT_TRUE(d.counters.empty());
  EXPECT_TRUE(d.hists.empty());
  EXPECT_TRUE(d.events.empty());
  EXPECT_EQ(d.ring_dropped, 0u);
}

TEST(TelemetryCodec, RejectsOutOfRangeIds) {
  TelemetryMsg d;
  {
    TelemetryMsg m = sample_telemetry();
    m.counters[0].counter = static_cast<std::uint8_t>(obs::kNumCounters);
    EXPECT_FALSE(decode_telemetry(encode_telemetry(m), d));
  }
  {
    TelemetryMsg m = sample_telemetry();
    m.hists[0].hist = static_cast<std::uint8_t>(obs::kNumHists);
    EXPECT_FALSE(decode_telemetry(encode_telemetry(m), d));
  }
  {
    TelemetryMsg m = sample_telemetry();
    m.events[0].type = static_cast<obs::EventType>(obs::kNumEventTypes);
    EXPECT_FALSE(decode_telemetry(encode_telemetry(m), d));
  }
  {
    Bytes b = encode_telemetry(sample_telemetry());
    b.pop_back();  // truncated payload
    EXPECT_FALSE(decode_telemetry(b, d));
  }
}

TEST(TelemetryCodec, WorkerConfigCarriesTraceRequest) {
  WorkerConfig c;
  c.num_pes = 8;
  c.pe_begin = 4;
  c.pe_count = 4;
  c.trace_enabled = true;
  c.trace_capacity = 512;
  WorkerConfig d;
  ASSERT_TRUE(decode_worker_config(encode_worker_config(c), d));
  EXPECT_TRUE(d.trace_enabled);
  EXPECT_EQ(d.trace_capacity, 512u);
  c.trace_enabled = false;
  ASSERT_TRUE(decode_worker_config(encode_worker_config(c), d));
  EXPECT_FALSE(d.trace_enabled);
}

// ---- Registry merge (receive side of HistDelta) ----------------------------

TEST(MetricsRegistry, MergeHistBucketFoldsRawDeltas) {
  obs::MetricsRegistry local(2);
  local.observe(1, obs::Hist::kMarkQueueDepth, 3.0);
  local.observe(1, obs::Hist::kMarkQueueDepth, 3.0);
  local.observe(1, obs::Hist::kMarkQueueDepth, 100.0);
  const Histogram src = local.hist(1, obs::Hist::kMarkQueueDepth);

  // Ship every bucket as a delta into a fresh "controller" registry.
  obs::MetricsRegistry merged(2);
  for (std::size_t b = 0; b < src.num_buckets(); ++b)
    if (src.bucket_count(b))
      merged.merge_hist_bucket(1, obs::Hist::kMarkQueueDepth,
                               static_cast<std::uint32_t>(b),
                               src.bucket_count(b), src.max_value());
  const Histogram dst = merged.hist(1, obs::Hist::kMarkQueueDepth);
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_DOUBLE_EQ(dst.max_value(), src.max_value());
  for (std::size_t b = 0; b < src.num_buckets(); ++b)
    EXPECT_EQ(dst.bucket_count(b), src.bucket_count(b)) << "bucket " << b;
}

// ---- Health rollup formatters ----------------------------------------------

obs::HealthSnapshot sample_health() {
  obs::HealthSnapshot s;
  s.cycle = 40;
  s.cycles_window = 10;
  s.window_ms = 123.0;
  s.marks = 12300;
  s.remote_msgs = 400;
  s.local_msgs = 600;
  s.retransmits = 3;
  s.workers_live = 3;
  s.workers_total = 4;
  return s;
}

TEST(Health, LineCarriesRateShareAndLiveness) {
  const std::string line = obs::health_line(sample_health());
  EXPECT_NE(line.find("cycle 40"), std::string::npos) << line;
  // 123 ms / 10 cycles and 12300 marks / 0.123 s.
  EXPECT_NE(line.find("12.30 ms/cycle"), std::string::npos) << line;
  EXPECT_NE(line.find("1e+05 marks/s"), std::string::npos) << line;
  // 400 remote of 1000 total messages.
  EXPECT_NE(line.find("remote 40.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("retx 3"), std::string::npos) << line;
  EXPECT_NE(line.find("workers 3/4"), std::string::npos) << line;
  // No drops -> no drop segment.
  EXPECT_EQ(line.find("tele-drop"), std::string::npos) << line;

  obs::HealthSnapshot s = sample_health();
  s.telemetry_dropped = 9;
  s.workers_total = 0;  // in-process run: no worker segment
  const std::string l2 = obs::health_line(s);
  EXPECT_NE(l2.find("tele-drop 9"), std::string::npos) << l2;
  EXPECT_EQ(l2.find("workers"), std::string::npos) << l2;
}

TEST(Health, JsonlRowIsCompleteAndParseable) {
  const std::string row = obs::health_jsonl(sample_health());
  EXPECT_EQ(row.front(), '{');
  EXPECT_EQ(row.back(), '}');
  for (const char* key :
       {"\"cycle\":40", "\"cycles_window\":10", "\"window_ms\":123",
        "\"marks\":12300", "\"remote_msgs\":400", "\"local_msgs\":600",
        "\"retransmits\":3", "\"telemetry_dropped\":0", "\"workers_live\":3",
        "\"workers_total\":4"})
    EXPECT_NE(row.find(key), std::string::npos) << key << " in " << row;
}

}  // namespace
}  // namespace dgr
