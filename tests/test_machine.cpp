// End-to-end reduction tests: programs evaluated on the distributed engine,
// alone and concurrently with marking cycles (the paper's full system).
#include <gtest/gtest.h>

#include <memory>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

namespace dgr {
namespace {

struct Rig {
  Graph g;
  SimEngine eng;
  Machine machine;
  VertexId root;

  Rig(const std::string& src, std::uint32_t pes, std::uint64_t seed,
      MachineOptions mopt = {}, SimOptions sopt_in = SimOptions{})
      : g(pes),
        eng(g, [&] {
          SimOptions s = sopt_in;
          s.seed = seed;
          return s;
        }()),
        machine(g, eng.mutator(), eng, Program::from_source(src), mopt) {
    root = machine.load_main();
    eng.set_root(root);
    eng.set_reducer([this](const Task& t) { machine.exec(t); });
    machine.demand(root);
  }

  // Run to quiescence and return the root's value.
  Value run() {
    eng.run(50'000'000);
    const auto r = machine.result_of(root);
    DGR_CHECK_MSG(!machine.has_error(), machine.error().c_str());
    DGR_CHECK_MSG(r.has_value(), "program did not produce a result");
    return *r;
  }
};

TEST(Machine, LiteralMain) {
  Rig r("def main() = 42;", 1, 1);
  EXPECT_EQ(r.run().as_int(), 42);
}

TEST(Machine, Arithmetic) {
  Rig r("def main() = (3 + 4) * 5 - 6 / 2;", 2, 1);
  EXPECT_EQ(r.run().as_int(), 32);
}

TEST(Machine, BooleansAndComparisons) {
  Rig r("def main() = if 3 < 4 and not (2 == 3) then 10 % 3 else 0 - 1;", 2,
        2);
  EXPECT_EQ(r.run().as_int(), 1);
}

TEST(Machine, IdentityFunction) {
  Rig r("def id(x) = x; def main() = id(id(7));", 2, 3);
  EXPECT_EQ(r.run().as_int(), 7);
}

TEST(Machine, LetSharingEvaluatesOnce) {
  Rig r("def f(n) = n * n; def main() = let x = f(7) in x + x;", 4, 4);
  EXPECT_EQ(r.run().as_int(), 98);
  // main + exactly one instantiation of f: sharing prevented re-evaluation.
  EXPECT_EQ(r.machine.stats().instantiations, 2u);
}

TEST(Machine, LazyBranchNotEvaluated) {
  // boom() never terminates; without speculation the untaken branch is
  // never demanded, so evaluation quiesces with the right answer.
  Rig r("def boom() = boom(); def main() = if 1 < 2 then 5 else boom();", 2,
        5);
  EXPECT_EQ(r.run().as_int(), 5);
}

TEST(Machine, MutualRecursion) {
  Rig r(
      "def even(n) = if n == 0 then true else odd(n - 1);"
      "def odd(n) = if n == 0 then false else even(n - 1);"
      "def main() = even(20);",
      4, 6);
  EXPECT_TRUE(r.run().as_bool());
}

TEST(Machine, DivisionByZeroReported) {
  Rig r("def main() = 1 / (2 - 2);", 1, 7);
  r.eng.run(1'000'000);
  EXPECT_TRUE(r.machine.has_error());
}

TEST(Machine, TypeErrorReported) {
  Rig r("def main() = 1 + (2 < 3);", 1, 8);
  r.eng.run(1'000'000);
  EXPECT_TRUE(r.machine.has_error());
}

TEST(Machine, Ackermann) {
  Rig r(
      "def ack(m, n) = if m == 0 then n + 1"
      "  else if n == 0 then ack(m - 1, 1)"
      "  else ack(m - 1, ack(m, n - 1));"
      "def main() = ack(2, 3);",
      4, 9);
  EXPECT_EQ(r.run().as_int(), 9);
}

TEST(Machine, PrimeCountByTrialDivision) {
  Rig r(
      "def has_div(n, d) = if d * d > n then false"
      "  else if n % d == 0 then true else has_div(n, d + 1);"
      "def is_prime(n) = if n < 2 then false else not has_div(n, 2);"
      "def count(n) = if n == 0 then 0"
      "  else (if is_prime(n) then 1 else 0) + count(n - 1);"
      "def main() = count(30);",
      4, 10);
  EXPECT_EQ(r.run().as_int(), 10);  // primes ≤ 30
}

// fib across PE counts and seeds: the same answer regardless of scheduling
// and partitioning (determinism of the computed value, not the schedule).
class FibTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(FibTest, CorrectOnAnyScheduleAndPartitioning) {
  const auto [pes, seed] = GetParam();
  Rig r(
      "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);"
      "def main() = fib(13);",
      pes, seed);
  EXPECT_EQ(r.run().as_int(), 233);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FibTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// ---- Reduction concurrent with endless marking cycles (E9/E11). ----

class ConcurrentGcTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConcurrentGcTest, FibCorrectUnderContinuousCollection) {
  SimOptions sopt;
  sopt.check_invariants = true;
  sopt.invariant_period = 257;
  Rig r(
      "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);"
      "def main() = fib(12);",
      4, GetParam(), MachineOptions{}, sopt);
  // A healthy computation must never be reported deadlocked, no matter when
  // the M_T/M_R cycle lands relative to the reduction (Theorem 2 safety).
  std::uint64_t valid_reports = 0;
  r.eng.controller().set_cycle_observer([&](const CycleResult& c) {
    if (c.deadlock_report_valid) {
      ++valid_reports;
      EXPECT_TRUE(c.deadlocked.empty())
          << "false deadlock report in cycle " << c.cycle;
    }
  });
  r.eng.controller().set_continuous(true);
  r.eng.controller().start_cycle();
  // Run: reduction and marking interleave arbitrarily. Stop continuous mode
  // once the result is in, then drain.
  while (!r.machine.result_of(r.root).has_value()) {
    ASSERT_TRUE(r.eng.step()) << "wedged before producing a result";
  }
  r.eng.controller().set_continuous(false);
  r.eng.run(50'000'000);
  ASSERT_FALSE(r.machine.has_error()) << r.machine.error();
  EXPECT_EQ(r.machine.result_of(r.root)->as_int(), 144);
  // The collector actually reclaimed consumed subgraphs during the run.
  EXPECT_GT(r.eng.controller().total_swept(), 100u);
  // One final cycle leaves only the root (and aux) vertices live.
  r.eng.controller().start_cycle();
  r.eng.run_until_cycle_done(10'000'000);
  r.eng.controller().start_cycle();
  r.eng.run_until_cycle_done(10'000'000);
  EXPECT_LE(r.g.total_live(), 2u + r.g.num_pes() + 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentGcTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- Speculation: eager → vital/irrelevant dynamics (E2, E7, E13). ----

TEST(Speculation, EagerBranchUsedWhenTaken) {
  MachineOptions mopt;
  mopt.speculate_if = true;
  Rig r("def f(n) = n * 3; def main() = if 1 < 2 then f(4) else f(5);", 2, 11,
        mopt);
  EXPECT_EQ(r.run().as_int(), 12);
  EXPECT_GT(r.machine.stats().speculative_requests, 0u);
}

TEST(Speculation, RunawayIrrelevantTasksExpunged) {
  // The untaken branch diverges: speculation floods the system with eager
  // tasks that become irrelevant once the predicate resolves (§3.2 item 3).
  // The restructuring phase must expunge them and reclaim their vertices.
  MachineOptions mopt;
  mopt.speculate_if = true;
  Rig r("def boom(n) = boom(n + 1);"
        "def main() = if 1 < 2 then 99 else boom(0);",
        4, 12, mopt);
  // Let the runaway develop: run until the result is known and a speculative
  // storm is pending.
  while (!r.machine.result_of(r.root).has_value()) {
    ASSERT_TRUE(r.eng.step());
  }
  for (int i = 0; i < 2000; ++i) r.eng.step();  // let boom() multiply
  EXPECT_GT(r.eng.pending_reduction(), 0u) << "runaway did not develop";

  // One marking cycle classifies every boom task irrelevant and deletes it.
  r.eng.controller().start_cycle();
  r.eng.run_until_cycle_done(50'000'000);
  EXPECT_GT(r.eng.controller().last().expunged, 0u);
  EXPECT_GT(r.eng.controller().last().swept, 0u);
  // The system drains completely: the infinite computation is gone.
  r.eng.run(50'000'000);
  EXPECT_TRUE(r.eng.quiescent());
  EXPECT_EQ(r.machine.result_of(r.root)->as_int(), 99);
}

// ---- Deadlock detection on a real program (E1/E6 dynamic). ----

TEST(DeadlockDynamic, SelfDependentLetDetected) {
  // def main() = let x = x + 1 in x — the paper's Figure 3-1, produced by an
  // actual program. Evaluation wedges; the M_T-then-M_R cycle reports it.
  Rig r("def main() = let x = x + 1 in x;", 2, 13);
  r.eng.run(1'000'000);
  EXPECT_TRUE(r.eng.quiescent());
  EXPECT_FALSE(r.machine.result_of(r.root).has_value());

  CycleOptions copt;
  copt.detect_deadlock = true;
  r.eng.controller().start_cycle(copt);
  r.eng.run_until_cycle_done(1'000'000);
  const CycleResult& res = r.eng.controller().last();
  ASSERT_TRUE(res.deadlock_report_valid);
  ASSERT_EQ(res.deadlocked.size(), 1u);
  EXPECT_EQ(res.deadlocked[0], r.root);
}

TEST(DeadlockDynamic, HealthyProgramReportsNone) {
  Rig r("def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
        "def main() = fib(10);",
        4, 14);
  r.run();
  CycleOptions copt;
  copt.detect_deadlock = true;
  r.eng.controller().start_cycle(copt);
  r.eng.run_until_cycle_done(1'000'000);
  ASSERT_TRUE(r.eng.controller().last().deadlock_report_valid);
  EXPECT_TRUE(r.eng.controller().last().deadlocked.empty());
}

TEST(DeadlockDynamic, PartialDeadlockInLiveComputation) {
  // One strand deadlocks, the other would complete if the deadlocked value
  // weren't demanded: main = (let x = x+1 in x) + fib(5). After quiescence
  // the adder and x are deadlocked; fib's side completed.
  Rig r("def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
        "def main() = (let x = x + 1 in x) + fib(5);",
        2, 15);
  r.eng.run(10'000'000);
  EXPECT_TRUE(r.eng.quiescent());
  EXPECT_FALSE(r.machine.result_of(r.root).has_value());
  CycleOptions copt;
  copt.detect_deadlock = true;
  r.eng.controller().start_cycle(copt);
  r.eng.run_until_cycle_done(10'000'000);
  const CycleResult& res = r.eng.controller().last();
  ASSERT_TRUE(res.deadlock_report_valid);
  // Both the root adder and x await values that can never come.
  EXPECT_GE(res.deadlocked.size(), 2u);
}

// ---- Memory-bounded execution: exhaustion triggers collection (E9). ----

TEST(Exhaustion, GcOnDemandLetsProgramFinish) {
  // Finite local stores: allocation failures must be resolved by collection,
  // as on a real machine.
  Graph g2(4, 600);
  for (PeId pe = 0; pe < 4; ++pe) g2.store(pe).set_fixed_capacity(true);
  SimOptions sopt;
  sopt.seed = 16;
  SimEngine eng(g2, sopt);
  Machine machine(
      g2, eng.mutator(), eng,
      Program::from_source("def fib(n) = if n < 2 then n else fib(n-1) + "
                           "fib(n-2); def main() = fib(11);"));
  const VertexId root = machine.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { machine.exec(t); });
  machine.set_exhaustion_handler([&] {
    if (eng.controller().idle()) {
      CycleOptions c;
      c.detect_deadlock = false;
      eng.controller().start_cycle(c);
    }
  });
  machine.demand(root);
  eng.run(100'000'000);
  ASSERT_FALSE(machine.has_error()) << machine.error();
  ASSERT_TRUE(machine.result_of(root).has_value())
      << "alloc failures: " << machine.stats().alloc_failures;
  EXPECT_EQ(machine.result_of(root)->as_int(), 89);
  EXPECT_GT(machine.stats().alloc_failures, 0u);
  EXPECT_GT(eng.controller().total_swept(), 0u);
}

}  // namespace
}  // namespace dgr
