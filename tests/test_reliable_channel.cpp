// Reliable-channel tests. The frame codec must reject truncation and
// corruption recoverably; the ChannelManager must turn a scripted lossy /
// duplicating / reordering transport into exactly-once in-order delivery;
// and — the property the whole layer exists for — a ThreadEngine marking
// cycle over an actively faulted message plane must still agree with the
// sequential Oracle and sweep exactly GAR' (Property 1), with zero
// safe-point audit violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "net/reliable_channel.h"
#include "runtime/thread_engine.h"

namespace dgr {
namespace {

using Bytes = ChannelManager::Bytes;

Bytes payload(std::uint8_t tag) { return Bytes(12, tag); }

TEST(ChannelFrame, RoundTripDataAndAck) {
  ChannelFrame d;
  d.is_data = true;
  d.src = 3;
  d.dst = 1;
  d.seq = 77;
  d.ack = 12;  // piggybacked cumulative ack for the reverse channel
  d.payloads = {payload(0xAB)};
  const std::optional<ChannelFrame> d2 = try_decode_frame(encode_frame(d));
  ASSERT_TRUE(d2.has_value());
  EXPECT_TRUE(d2->is_data);
  EXPECT_EQ(d2->src, 3u);
  EXPECT_EQ(d2->dst, 1u);
  EXPECT_EQ(d2->seq, 77u);
  EXPECT_EQ(d2->ack, 12u);
  EXPECT_EQ(d2->payloads, d.payloads);

  ChannelFrame a;
  a.is_data = false;
  a.src = 1;
  a.dst = 2;
  a.seq = 41;  // cumulative ack
  const std::optional<ChannelFrame> a2 = try_decode_frame(encode_frame(a));
  ASSERT_TRUE(a2.has_value());
  EXPECT_FALSE(a2->is_data);
  EXPECT_EQ(a2->seq, 41u);
  EXPECT_TRUE(a2->payloads.empty());
}

TEST(ChannelFrame, RoundTripMultiPayload) {
  ChannelFrame d;
  d.is_data = true;
  d.src = 0;
  d.dst = 2;
  d.seq = 5;
  d.payloads = {payload(0x01), Bytes{}, payload(0x02), Bytes(1, 0xFF)};
  const std::optional<ChannelFrame> d2 = try_decode_frame(encode_frame(d));
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->payloads, d.payloads);  // order and empties preserved
}

TEST(ChannelFrame, TruncationAtEveryLengthRejected) {
  ChannelFrame f;
  f.src = 0;
  f.dst = 1;
  f.seq = 9;
  f.payloads = {payload(0x5C), payload(0x5D)};
  const Bytes full = encode_frame(f);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const Bytes prefix(full.begin(), full.begin() + cut);
    EXPECT_FALSE(try_decode_frame(prefix).has_value()) << "cut=" << cut;
  }
  EXPECT_TRUE(try_decode_frame(full).has_value());
}

TEST(ChannelFrame, AnySingleBitFlipRejected) {
  ChannelFrame f;
  f.src = 2;
  f.dst = 0;
  f.seq = 1234;
  f.payloads = {payload(0x11)};
  const Bytes full = encode_frame(f);
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    Bytes bad = full;
    bad[byte] ^= 0x40;
    EXPECT_FALSE(try_decode_frame(bad).has_value()) << "byte=" << byte;
  }
}

// Scripted transport: SendFn captures frames onto a wire queue (optionally
// misbehaving first), pump() feeds them to the receiver. Time is a plain
// counter, so retransmit timers fire exactly when the test says.
struct Harness {
  std::deque<std::pair<PeId, Bytes>> wire;  // (deliver-to, frame)
  std::vector<Bytes> got;
  std::uint64_t transmissions = 0;
  std::set<std::uint64_t> drop;        // transmissions lost on the wire
  bool duplicate_data = false;
  bool drop_all_acks = false;
  std::unique_ptr<ChannelManager> mgr;

  explicit Harness(ReliableOptions opt = {}) {
    mgr = std::make_unique<ChannelManager>(
        2, opt, [this](PeId, PeId to, Bytes frame) {
          ++transmissions;
          const std::optional<ChannelFrame> f = try_decode_frame(frame);
          if (drop_all_acks && f && !f->is_data) return;
          if (drop.count(transmissions)) return;
          if (duplicate_data && f && f->is_data)
            wire.emplace_back(to, frame);
          wire.emplace_back(to, std::move(frame));
        });
  }
  void pump(std::uint64_t now) {
    while (!wire.empty()) {
      auto [to, frame] = std::move(wire.front());
      wire.pop_front();
      for (Bytes& p : mgr->on_frame(to, frame, now))
        got.push_back(std::move(p));
    }
  }
};

TEST(ChannelManager, InOrderNoFaultsPassThrough) {
  Harness h;
  for (std::uint8_t i = 0; i < 20; ++i) h.mgr->send(0, 1, payload(i), 0);
  h.pump(1);
  ASSERT_EQ(h.got.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) EXPECT_EQ(h.got[i], payload(i));
  EXPECT_EQ(h.mgr->unacked(0, 1), 0u);
  EXPECT_EQ(h.mgr->stats().retransmits, 0u);
}

TEST(ChannelManager, LossRecoveredByRetransmit) {
  ReliableOptions opt;
  opt.rto_initial_us = 100;
  opt.rto_max_us = 1000;
  Harness h(opt);
  h.drop = {1, 2, 5};  // payloads 0, 1 and 4 lost on first transmission
  std::uint64_t now = 0;
  for (std::uint8_t i = 0; i < 5; ++i) h.mgr->send(0, 1, payload(i), now);
  h.pump(now);
  // Sequences 3 and 4 arrived out of order: buffered, nothing deliverable.
  EXPECT_TRUE(h.got.empty());
  EXPECT_EQ(h.mgr->unacked(0, 1), 5u);

  now = 200;  // past the RTO: sender retransmits everything unacked
  h.mgr->service(0, now);
  h.pump(now);
  ASSERT_EQ(h.got.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) EXPECT_EQ(h.got[i], payload(i));
  EXPECT_EQ(h.mgr->unacked(0, 1), 0u);
  const ChannelManager::Stats s = h.mgr->stats();
  EXPECT_EQ(s.retransmits, 5u);
  EXPECT_EQ(s.dup_suppressed, 2u);  // re-sent 3 and 4 discarded as dups
  EXPECT_EQ(s.delivered, 5u);
}

TEST(ChannelManager, DuplicatedWireDeliversExactlyOnce) {
  Harness h;
  h.duplicate_data = true;  // every data frame arrives twice
  for (std::uint8_t i = 0; i < 10; ++i) h.mgr->send(0, 1, payload(i), 0);
  h.pump(1);
  ASSERT_EQ(h.got.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(h.got[i], payload(i));
  EXPECT_EQ(h.mgr->stats().dup_suppressed, 10u);
  EXPECT_EQ(h.mgr->unacked(0, 1), 0u);
}

TEST(ChannelManager, ReorderedWireDeliversInOrder) {
  Harness h;
  for (std::uint8_t i = 0; i < 8; ++i) h.mgr->send(0, 1, payload(i), 0);
  // Adversarial wire: deliver the queued data frames back to front.
  std::reverse(h.wire.begin(), h.wire.end());
  h.pump(1);
  ASSERT_EQ(h.got.size(), 8u);
  for (std::uint8_t i = 0; i < 8; ++i) EXPECT_EQ(h.got[i], payload(i));
  EXPECT_EQ(h.mgr->stats().dup_suppressed, 0u);
}

TEST(ChannelManager, LostAcksRepairedByRetransmitReAck) {
  ReliableOptions opt;
  opt.rto_initial_us = 100;
  Harness h(opt);
  h.drop_all_acks = true;
  std::uint64_t now = 0;
  for (std::uint8_t i = 0; i < 4; ++i) h.mgr->send(0, 1, payload(i), now);
  h.pump(now);
  ASSERT_EQ(h.got.size(), 4u);        // data got through...
  EXPECT_EQ(h.mgr->unacked(0, 1), 4u);  // ...but the sender does not know

  h.drop_all_acks = false;
  now = 200;
  h.mgr->service(0, now);  // retransmit → receiver suppresses dups, re-acks
  h.pump(now);
  EXPECT_EQ(h.got.size(), 4u);  // still exactly once
  EXPECT_EQ(h.mgr->unacked(0, 1), 0u);
  EXPECT_EQ(h.mgr->stats().dup_suppressed, 4u);
}

TEST(ChannelManager, BackoffCapsAndResets) {
  ReliableOptions opt;
  opt.rto_initial_us = 100;
  opt.rto_max_us = 400;
  Harness h(opt);
  // Black-hole wire: count retransmissions under repeated service calls.
  h.drop = {};
  h.mgr.reset();
  std::uint64_t resent = 0;
  h.mgr = std::make_unique<ChannelManager>(
      2, opt, [&](PeId, PeId, Bytes) { ++resent; });
  h.mgr->send(0, 1, payload(1), 0);
  resent = 0;
  // Deadlines double 100 → 200 → 400 and cap at 400.
  std::uint64_t now = 0;
  std::uint64_t fires = 0;
  for (int tick = 1; tick <= 23; ++tick) {
    now = static_cast<std::uint64_t>(tick) * 100;
    const std::uint64_t before = resent;
    h.mgr->service(0, now);
    if (resent > before) ++fires;
  }
  // 2300µs of black hole: fires at 100 (+200) 300 (+400) 700 (+400) 1100,
  // 1500, 1900, 2300 — seven, not twenty-three.
  EXPECT_EQ(fires, 7u);
  EXPECT_EQ(h.mgr->stats().retransmits, resent);
}

TEST(ChannelManager, GarbageFrameCountsDecodeError) {
  Harness h;
  std::uint64_t errors = 0;
  ChannelManager::Hooks hooks;
  hooks.on_decode_error = [&](PeId pe) {
    EXPECT_EQ(pe, 1u);
    ++errors;
  };
  h.mgr->set_hooks(std::move(hooks));
  EXPECT_TRUE(h.mgr->on_frame(1, Bytes{1, 2, 3}, 0).empty());
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(h.mgr->stats().decode_errors, 1u);
}

// ---- Batched protocol (ReliableOptions::batch_bytes > 0). ----

TEST(ChannelBatching, SizeCapCoalescesManyPayloadsPerFrame) {
  ReliableOptions opt;
  opt.batch_bytes = 64;  // payload(_) stages 12 + 4 overhead = 16 bytes
  opt.batch_flush_us = 1000;
  Harness h(opt);
  std::uint64_t now = 0;
  for (std::uint8_t i = 0; i < 20; ++i) h.mgr->send(0, 1, payload(i), now);
  h.mgr->flush(0, now);  // force the tail out
  h.pump(1);
  ASSERT_EQ(h.got.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) EXPECT_EQ(h.got[i], payload(i));
  const ChannelManager::Stats s = h.mgr->stats();
  EXPECT_EQ(s.payloads_coalesced, 20u);
  EXPECT_EQ(s.delivered, 20u);
  // 4 payloads per size-capped flush: 5 data frames, not 20.
  EXPECT_EQ(s.data_sent, 5u);
  EXPECT_EQ(s.batch_flushes, 5u);
}

TEST(ChannelBatching, AgeCapFlushesAndDeferredAckGoesStandalone) {
  ReliableOptions opt;
  opt.batch_bytes = 1024;
  opt.batch_flush_us = 100;
  opt.rto_initial_us = 100000;  // keep retransmits out of the picture
  Harness h(opt);
  h.mgr->send(0, 1, payload(1), 0);
  h.mgr->send(0, 1, payload(2), 0);
  EXPECT_EQ(h.transmissions, 0u);  // staged, not sent
  h.mgr->service(0, 50);
  EXPECT_EQ(h.transmissions, 0u);  // younger than the age cap
  h.mgr->service(0, 100);
  EXPECT_EQ(h.transmissions, 1u);  // aged batch flushed as one frame
  h.pump(100);
  ASSERT_EQ(h.got.size(), 2u);
  // The receiver defers its ack hoping for reverse data to piggyback on...
  EXPECT_EQ(h.mgr->unacked(0, 1), 1u);
  h.mgr->service(1, 150);
  h.pump(150);
  EXPECT_EQ(h.mgr->unacked(0, 1), 1u);  // ...not due yet...
  h.mgr->service(1, 200);
  h.pump(200);
  EXPECT_EQ(h.mgr->unacked(0, 1), 0u);  // ...sent standalone at the age cap
  EXPECT_EQ(h.mgr->stats().acks_sent, 1u);
}

TEST(ChannelBatching, AckPiggybacksOnReverseData) {
  ReliableOptions opt;
  opt.batch_bytes = 1024;
  opt.batch_flush_us = 100;
  opt.rto_initial_us = 100000;
  Harness h(opt);
  h.mgr->send(0, 1, payload(1), 0);
  h.mgr->flush(0, 0);
  h.pump(0);
  ASSERT_EQ(h.got.size(), 1u);
  EXPECT_EQ(h.mgr->unacked(0, 1), 1u);
  // Reverse data inside the deferral window carries the cumulative ack.
  h.mgr->send(1, 0, payload(2), 10);
  h.mgr->flush(1, 10);
  h.pump(10);
  ASSERT_EQ(h.got.size(), 2u);
  EXPECT_EQ(h.mgr->unacked(0, 1), 0u);         // acked by piggyback...
  EXPECT_EQ(h.mgr->stats().acks_sent, 0u);     // ...no standalone ack frame
  EXPECT_EQ(h.mgr->unacked(1, 0), 1u);         // reverse frame awaits its own
}

TEST(ChannelBatching, LostBatchRecoveredWholeByRetransmit) {
  ReliableOptions opt;
  opt.batch_bytes = 48;  // exactly three staged payloads
  opt.batch_flush_us = 1000;
  opt.rto_initial_us = 100;
  Harness h(opt);
  h.drop = {1};  // the (only) first data transmission vanishes
  std::uint64_t now = 0;
  for (std::uint8_t i = 0; i < 3; ++i) h.mgr->send(0, 1, payload(i), now);
  h.pump(now);
  EXPECT_TRUE(h.got.empty());
  EXPECT_EQ(h.mgr->unacked(0, 1), 1u);  // one frame holds the whole batch
  now = 200;
  h.mgr->service(0, now);
  h.pump(now);
  ASSERT_EQ(h.got.size(), 3u);
  for (std::uint8_t i = 0; i < 3; ++i) EXPECT_EQ(h.got[i], payload(i));
  EXPECT_EQ(h.mgr->stats().retransmits, 1u);
  EXPECT_EQ(h.mgr->stats().delivered, 3u);
}

// ---- End to end: ThreadEngine marking over an actively faulted plane. ----

Graph make_presized(std::uint32_t pes, std::uint32_t cap) {
  Graph g(pes, cap);
  for (PeId pe = 0; pe < pes; ++pe) g.store(pe).set_fixed_capacity(true);
  return g;
}

NetOptions lossy_net(std::uint64_t seed) {
  NetOptions net;
  net.faults.seed = seed;
  net.faults.spec.drop = 0.10;
  net.faults.spec.duplicate = 0.10;
  net.faults.spec.reorder = 0.20;
  net.faults.spec.truncate = 0.05;
  net.reliable.rto_initial_us = 200;
  return net;
}

TEST(ThreadEngineUnderFaults, MarksLikeOracleAndSweepsExactlyGar) {
  Graph g = make_presized(4, 2000);
  RandomGraphOptions opt;
  opt.num_vertices = 3000;
  opt.seed = 42;
  opt.num_tasks = 32;
  const BuiltGraph b = build_random_graph(g, opt);
  Oracle o(g, b.root, b.tasks);
  const std::size_t expected_gar = o.count_GAR();

  ThreadEngine eng(g, lossy_net(/*seed=*/7));
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.start();
  eng.controller().start_cycle();
  eng.wait_cycle_done();
  eng.stop();

  // Property 1 under faults: the sweep freed exactly GAR'.
  EXPECT_EQ(eng.controller().last().swept, expected_gar);
  for (VertexId v : b.vertices) {
    if (g.is_free(v)) continue;
    EXPECT_EQ(eng.marker().is_marked(Plane::kR, v), o.in_R(v));
    EXPECT_EQ(eng.marker().prior(Plane::kR, v), o.prior_at(v));
  }
  // The plane really misbehaved, and the channel really recovered.
  ASSERT_NE(eng.fault_plane(), nullptr);
  EXPECT_GT(eng.fault_plane()->stats().total_injected(), 0u);
  const auto& reg = eng.metrics_registry();
  EXPECT_GT(reg.total(obs::Counter::kMsgDroppedInjected) +
                reg.total(obs::Counter::kMsgReorderedInjected),
            0u);
  EXPECT_GT(reg.total(obs::Counter::kMsgRetransmit), 0u);
  // Every decode error happened at the frame layer (checksum rejection of a
  // truncated frame, recovered by retransmission); none leaked through
  // exactly-once delivery to the task decoder.
  EXPECT_EQ(reg.total(obs::Counter::kMsgDecodeError),
            eng.channels()->stats().decode_errors);
}

TEST(ThreadEngineUnderFaults, AuditedCyclesStayClean) {
  Graph g = make_presized(4, 2500);
  RandomGraphOptions opt;
  opt.num_vertices = 1500;
  opt.seed = 11;
  opt.num_tasks = 16;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g, lossy_net(/*seed=*/42));
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.enable_audit();
  eng.enable_watchdog();
  eng.start();
  for (int i = 0; i < 5; ++i) {
    CycleOptions copt;
    copt.detect_deadlock = i % 2 == 0;
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
  }
  eng.stop();
  // §5.4.1 invariants, Property 1 accounting and the swept == GAR'
  // cross-check all held at every safe point despite the faulted wire.
  EXPECT_EQ(eng.audit_stats().audits, 5u);
  EXPECT_EQ(eng.audit_stats().violations, 0u) << eng.audit_stats().last_what;
  EXPECT_EQ(eng.health().total(), 0u);
}

TEST(ThreadEngineUnderFaults, ForceReliableWithoutFaultsIsTransparent) {
  Graph g = make_presized(2, 1200);
  RandomGraphOptions opt;
  opt.num_vertices = 800;
  opt.seed = 3;
  const BuiltGraph b = build_random_graph(g, opt);
  Oracle o(g, b.root, {});
  NetOptions net;
  net.force_reliable = true;  // channel layer on, zero fault schedule
  // A spurious RTO under scheduler jitter would retransmit (harmless but
  // nonzero counters); under TSan a PE can stall well past the default
  // 20 ms rto_max, so push both knobs out to 10 min to keep zeros exact.
  net.reliable.rto_initial_us = 600000000;
  net.reliable.rto_max_us = 600000000;
  ThreadEngine eng(g, net);
  eng.set_root(b.root);
  eng.start();
  eng.controller().start_cycle();
  eng.wait_cycle_done();
  eng.stop();
  for (VertexId v : b.vertices) {
    if (g.is_free(v)) continue;
    EXPECT_EQ(eng.marker().is_marked(Plane::kR, v), o.in_R(v));
  }
  ASSERT_NE(eng.channels(), nullptr);
  EXPECT_EQ(eng.fault_plane()->stats().total_injected(), 0u);
  EXPECT_EQ(eng.metrics_registry().total(obs::Counter::kMsgDupSuppressed), 0u);
}

}  // namespace
}  // namespace dgr
