// Focused unit tests for the rescue-wave machinery (acquired references) and
// assorted marker edge cases: epoch reuse across many cycles, taskroot
// hygiene, supplementary-wave counting.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "runtime/sim_engine.h"

namespace dgr {
namespace {

TEST(Rescue, AcquireOnMarkedVertexQueuesAndWaveCovers) {
  // root -> a (marked first); a then acquires an edge to a detached chain c0
  // -> c1 -> c2 with no access chain. A supplementary wave must mark all
  // three, and the sweep must keep them.
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(1, OpCode::kData);
  connect(g, root, a, ReqKind::kVital);
  const auto chain = build_chain(g, 3, ReqKind::kNone);

  SimOptions sopt;
  sopt.seed = 1;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  eng.controller().start_cycle(CycleOptions{false});
  // Drive until a is fully marked.
  while (!eng.marker().is_marked(Plane::kR, a)) {
    ASSERT_TRUE(eng.step());
  }
  // Acquired reference from marked a to the (unmarked, unreachable-so-far)
  // chain head.
  eng.mutator().acquire_reference(a, chain[0], ReqKind::kVital);
  EXPECT_TRUE(eng.marker().is_rescue_queued(Plane::kR, chain[0]));
  eng.run_until_cycle_done(1'000'000);
  EXPECT_GE(eng.marker().rescue_waves(Plane::kR), 1u);
  for (VertexId c : chain) {
    EXPECT_FALSE(g.is_free(c));
    EXPECT_TRUE(eng.marker().is_marked(Plane::kR, c));
  }
  // Priority carried: vital acquisition from a priority-3 holder.
  EXPECT_EQ(eng.marker().prior(Plane::kR, chain[0]), 3);
}

TEST(Rescue, AcquireOnUnmarkedVertexNeedsNoWave) {
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(1, OpCode::kData);
  connect(g, root, a, ReqKind::kVital);
  const VertexId c = g.alloc(0, OpCode::kData);

  SimOptions sopt;
  sopt.seed = 2;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  eng.controller().start_cycle(CycleOptions{false});
  // Acquire before the wave reaches a: a unmarked → its own trace covers c.
  eng.mutator().acquire_reference(a, c, ReqKind::kVital);
  EXPECT_FALSE(eng.marker().is_rescue_queued(Plane::kR, c));
  eng.run_until_cycle_done(1'000'000);
  EXPECT_EQ(eng.marker().rescue_waves(Plane::kR), 0u);
  EXPECT_TRUE(eng.marker().is_marked(Plane::kR, c));
}

TEST(Rescue, ChainedRescueWaves) {
  // A second acquisition arriving while the first supplementary wave runs
  // must trigger a second wave; the cycle converges only when the queue is
  // dry.
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(1, OpCode::kData);
  connect(g, root, a, ReqKind::kVital);
  // A long tail keeps the main wave busy well past a's marking.
  const auto tail = build_chain(g, 64, ReqKind::kVital);
  connect(g, root, tail.front(), ReqKind::kVital);

  SimOptions sopt;
  sopt.seed = 3;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  eng.controller().start_cycle(CycleOptions{false});
  while (!eng.marker().is_marked(Plane::kR, a)) ASSERT_TRUE(eng.step());

  // First acquisition: a is marked, cycle still running → queued.
  const VertexId c1 = g.alloc(1, OpCode::kData);
  const VertexId c2 = g.alloc(0, OpCode::kData);
  connect(g, c1, c2, ReqKind::kNone);  // wired before acquisition
  eng.mutator().acquire_reference(a, c1, ReqKind::kEager);
  ASSERT_TRUE(eng.marker().is_rescue_queued(Plane::kR, c1));

  // Drive until the first supplementary wave is in flight, then acquire
  // again — this entry must wait for a second wave.
  while (eng.marker().rescue_waves(Plane::kR) < 1 &&
         !eng.controller().idle()) {
    ASSERT_TRUE(eng.step());
  }
  VertexId c3 = VertexId::invalid();
  if (!eng.controller().idle()) {
    c3 = g.alloc(0, OpCode::kData);
    eng.mutator().acquire_reference(a, c3, ReqKind::kVital);
  }
  eng.run_until_cycle_done(1'000'000);

  EXPECT_TRUE(eng.marker().is_marked(Plane::kR, c1));
  EXPECT_TRUE(eng.marker().is_marked(Plane::kR, c2));
  EXPECT_EQ(eng.marker().prior(Plane::kR, c1), 2);  // eager acquisition
  EXPECT_FALSE(g.is_free(c1));
  EXPECT_FALSE(g.is_free(c2));
  if (c3.valid()) {
    EXPECT_TRUE(eng.marker().is_marked(Plane::kR, c3));
    EXPECT_GE(eng.marker().rescue_waves(Plane::kR), 2u);
  }
}

TEST(MarkerEdge, ManyCyclesEpochHygiene) {
  // 300 cycles back-to-back on the same graph: epoch tagging must keep
  // colors fresh and the sweep stable, with no per-cycle O(V) resets.
  Graph g(4);
  RandomGraphOptions opt;
  opt.num_vertices = 200;
  opt.p_detached = 0.0;
  opt.seed = 11;
  const BuiltGraph b = build_random_graph(g, opt);
  SimOptions sopt;
  sopt.seed = 4;
  SimEngine eng(g, sopt);
  eng.set_root(b.root);
  for (int i = 0; i < 300; ++i) {
    eng.controller().start_cycle(CycleOptions{i % 3 == 0});
    eng.run_until_cycle_done(1'000'000);
    ASSERT_EQ(eng.controller().last().swept, 0u) << "cycle " << i;
  }
  EXPECT_EQ(eng.controller().cycles_completed(), 300u);
  EXPECT_EQ(eng.marker().epoch(Plane::kR), 300u);
}

TEST(MarkerEdge, TaskrootsClearedBetweenCycles) {
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId stray = g.alloc(1, OpCode::kData);
  SimOptions sopt;
  sopt.seed = 5;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  eng.spawn(Task::request(root, stray, ReqKind::kVital));
  eng.controller().start_cycle(CycleOptions{true});
  eng.run_until_cycle_done(1'000'000);
  // stray was expunged (its destination is garbage) and swept.
  EXPECT_EQ(eng.controller().last().expunged, 1u);
  EXPECT_TRUE(g.is_free(stray));
  // Taskroot args must not dangle into the swept slot.
  for (PeId pe = 0; pe < g.num_pes(); ++pe)
    EXPECT_TRUE(g.at(g.store(pe).taskroot()).args.empty());
  // A second detection cycle over the now-empty pools is clean.
  eng.controller().start_cycle(CycleOptions{true});
  eng.run_until_cycle_done(1'000'000);
  EXPECT_EQ(eng.controller().last().swept, 0u);
}

}  // namespace
}  // namespace dgr
