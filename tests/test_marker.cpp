// Tests for the decentralized marking algorithm against the oracle:
// mark1/return1 mechanics, mark2 priorities, mark3 task marking, termination
// detection, and full controller cycles on static graphs.
#include <gtest/gtest.h>

#include "core/invariants.h"
#include "graph/builder.h"
#include "graph/oracle.h"
#include "runtime/sim_engine.h"

namespace dgr {
namespace {

// Runs one full marking cycle (optionally with M_T) on a static graph and
// returns the engine for inspection.
std::unique_ptr<SimEngine> run_cycle(Graph& g, VertexId root,
                                     const std::vector<TaskRef>& tasks,
                                     bool detect_deadlock, std::uint64_t seed) {
  SimOptions opt;
  opt.seed = seed;
  opt.check_invariants = true;
  opt.invariant_period = 16;
  auto eng = std::make_unique<SimEngine>(g, opt);
  eng->set_root(root);
  // Seed the pools with inert reduction tasks (static workload).
  for (const TaskRef& t : tasks)
    eng->spawn(Task::request(t.s, t.d, ReqKind::kVital));
  CycleOptions copt;
  copt.detect_deadlock = detect_deadlock;
  eng->controller().start_cycle(copt);
  eng->run_until_cycle_done(5'000'000);
  return eng;
}

TEST(Marker, SingleVertexGraph) {
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  auto eng = run_cycle(g, root, {}, false, 1);
  EXPECT_TRUE(eng->marker().is_marked(Plane::kR, root));
  EXPECT_EQ(eng->marker().prior(Plane::kR, root), 3);
  EXPECT_EQ(eng->controller().last().swept, 0u);
}

TEST(Marker, ChainAcrossPesFullyMarked) {
  Graph g(4);
  const auto chain = build_chain(g, 64, ReqKind::kVital);
  auto eng = run_cycle(g, chain.front(), {}, false, 2);
  for (VertexId v : chain) {
    EXPECT_TRUE(eng->marker().is_marked(Plane::kR, v));
    EXPECT_EQ(eng->marker().prior(Plane::kR, v), 3);
  }
}

TEST(Marker, SharedSubexpressionMarkedOnce) {
  // Diamond: both parents point at the same child; child marked, exactly one
  // parent is its marking-tree parent, and marking terminates.
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId l = g.alloc(0, OpCode::kData);
  const VertexId r = g.alloc(1, OpCode::kData);
  const VertexId shared = g.alloc(1, OpCode::kData);
  connect(g, root, l, ReqKind::kVital);
  connect(g, root, r, ReqKind::kVital);
  connect(g, l, shared, ReqKind::kVital);
  connect(g, r, shared, ReqKind::kVital);
  auto eng = run_cycle(g, root, {}, false, 3);
  EXPECT_TRUE(eng->marker().is_marked(Plane::kR, shared));
  const VertexId par = g.at(shared).plane(Plane::kR).mt_par;
  EXPECT_TRUE(par == l || par == r);
}

TEST(Marker, CycleInGraphTerminates) {
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(0, OpCode::kData);
  const VertexId b = g.alloc(1, OpCode::kData);
  connect(g, root, a, ReqKind::kVital);
  connect(g, a, b, ReqKind::kVital);
  connect(g, b, a, ReqKind::kVital);  // cycle
  connect(g, b, root, ReqKind::kVital);  // back to root
  auto eng = run_cycle(g, root, {}, false, 4);
  EXPECT_TRUE(eng->marker().is_marked(Plane::kR, a));
  EXPECT_TRUE(eng->marker().is_marked(Plane::kR, b));
}

TEST(Marker, SelfLoopTerminates) {
  Graph g(1);
  const VertexId root = g.alloc(0, OpCode::kData);
  connect(g, root, root, ReqKind::kVital);
  auto eng = run_cycle(g, root, {}, false, 5);
  EXPECT_TRUE(eng->marker().is_marked(Plane::kR, root));
}

TEST(Marker, GarbageSweptGarbageOnly) {
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId live = g.alloc(1, OpCode::kData);
  const VertexId dead1 = g.alloc(0, OpCode::kData);
  const VertexId dead2 = g.alloc(1, OpCode::kData);
  connect(g, root, live, ReqKind::kVital);
  connect(g, dead1, dead2, ReqKind::kVital);  // detached pair
  connect(g, dead2, dead1, ReqKind::kVital);  // ... and cyclic
  auto eng = run_cycle(g, root, {}, false, 6);
  EXPECT_EQ(eng->controller().last().swept, 2u);
  EXPECT_TRUE(g.is_free(dead1));
  EXPECT_TRUE(g.is_free(dead2));
  EXPECT_FALSE(g.is_free(live));
}

TEST(Marker, PrioritiesMatchOracleOnFig32) {
  Graph g(4);
  const TaskTypeScenario sc = build_task_type_scenario(g);
  auto eng = run_cycle(g, sc.root, {}, false, 7);
  Oracle o(g, sc.root, {});
  // abc and b were swept; the rest carry oracle priorities.
  for (VertexId v : {sc.root, sc.p, sc.a_plus_1, sc.a, sc.c, sc.d}) {
    EXPECT_TRUE(eng->marker().is_marked(Plane::kR, v));
    EXPECT_EQ(eng->marker().prior(Plane::kR, v), o.prior_at(v));
  }
  EXPECT_TRUE(g.is_free(sc.abc));
  EXPECT_TRUE(g.is_free(sc.b));
}

// mark2's re-marking: regardless of scheduling order, the final priority is
// the max-min over paths. Sweep across seeds so both "vital first" and
// "eager first" orders occur.
class Mark2PriorityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Mark2PriorityTest, UpgradeConvergesToOracle) {
  Graph g(4);
  // root -e-> a -v-> c ; root -v-> b -v-> c ; c -v-> tail chain.
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(1, OpCode::kData);
  const VertexId b = g.alloc(2, OpCode::kData);
  const VertexId c = g.alloc(3, OpCode::kData);
  connect(g, root, a, ReqKind::kEager);
  connect(g, root, b, ReqKind::kVital);
  connect(g, a, c, ReqKind::kVital);
  connect(g, b, c, ReqKind::kVital);
  VertexId prev = c;
  std::vector<VertexId> tail;
  for (int i = 0; i < 8; ++i) {
    const VertexId t = g.alloc_rr(OpCode::kData);
    connect(g, prev, t, ReqKind::kVital);
    tail.push_back(t);
    prev = t;
  }
  auto eng = run_cycle(g, root, {}, false, GetParam());
  Oracle o(g, root, {});
  EXPECT_EQ(eng->marker().prior(Plane::kR, a), 2);
  EXPECT_EQ(eng->marker().prior(Plane::kR, c), 3);  // vital path wins
  for (VertexId t : tail)
    EXPECT_EQ(eng->marker().prior(Plane::kR, t), o.prior_at(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mark2PriorityTest,
                         ::testing::Range<std::uint64_t>(1, 33));

// Full-random-graph agreement with the oracle (E3/E5 static part),
// parameterized over seeds.
class MarkerOracleAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarkerOracleAgreement, MarkedSetsEqualOracleSets) {
  Graph g(8);
  RandomGraphOptions opt;
  opt.num_vertices = 400;
  opt.avg_out_degree = 2.5;
  opt.seed = GetParam();
  const BuiltGraph b = build_random_graph(g, opt);
  // Oracle snapshot BEFORE marking (static graph, so it stays valid).
  Oracle o(g, b.root, b.tasks);
  const std::size_t expected_garbage = o.count_GAR();

  auto eng = run_cycle(g, b.root, b.tasks, true, GetParam() * 1000 + 17);

  // Theorem 1 on a static graph: GAR' == GAR.
  EXPECT_EQ(eng->controller().last().swept, expected_garbage);

  // R' == R with exact priorities; T' == T.
  for (VertexId v : b.vertices) {
    if (g.is_free(v)) continue;
    EXPECT_EQ(eng->marker().is_marked(Plane::kR, v), o.in_R(v));
    EXPECT_EQ(eng->marker().prior(Plane::kR, v), o.prior_at(v));
    EXPECT_EQ(eng->marker().is_marked(Plane::kT, v), o.in_T(v));
  }

  // Theorem 2 on a static graph: DL'_v == DL_v.
  ASSERT_TRUE(eng->controller().last().deadlock_report_valid);
  std::vector<VertexId> expected_dl = o.members_DLv();
  std::vector<VertexId> got_dl = eng->controller().last().deadlocked;
  std::sort(expected_dl.begin(), expected_dl.end());
  std::sort(got_dl.begin(), got_dl.end());
  EXPECT_EQ(got_dl, expected_dl);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkerOracleAgreement,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(MarkerCost, MarkTasksLinearInEdges) {
  // E14: one mark task per edge plus one per root — the paper's O(E) cost.
  Graph g(4);
  const VertexId root = build_tree(g, 10, ReqKind::kVital);  // 2047 vertices
  auto eng = run_cycle(g, root, {}, false, 11);
  const MarkStats& st = eng->controller().last().stats_r;
  // 1 initial mark on the root + exactly one mark task per edge = |V| for a
  // tree; and one return per mark task.
  EXPECT_EQ(st.marks, 2047u);
  // Every non-root vertex's completion sends one return to its tree parent;
  // the root's final return short-circuits to the done flag.
  EXPECT_EQ(st.returns, 2046u);
}

}  // namespace
}  // namespace dgr
