// Tests for the post-mortem trace analyzer (obs/analyze) over synthetic
// event streams and the golden JSONL traces in tests/data/ (recorded runs of
// dgr_run; regenerate with the commands in docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/analyze.h"
#include "obs/export.h"

namespace dgr::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string data_path(const char* name) {
  return std::string(DGR_SOURCE_DIR) + "/tests/data/" + name;
}

TraceEvent ev(EventType type, Plane plane, std::uint16_t pe,
              std::uint64_t cycle, std::uint64_t ts, std::uint64_t a = 0,
              std::uint64_t b = 0) {
  TraceEvent e;
  e.type = type;
  e.plane = plane;
  e.pe = pe;
  e.cycle = cycle;
  e.ts = ts;
  e.a = a;
  e.b = b;
  return e;
}

// Braces/brackets balanced and no bare control characters — cheap validity
// proxy for the deterministic JSON the analyzer emits.
void expect_balanced_json(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

TEST(Analyze, SyntheticCycleAndWaveLatency) {
  std::vector<TraceEvent> events;
  events.push_back(ev(EventType::kCycleStart, Plane::kR, 0, 1, 100));
  events.push_back(ev(EventType::kPhaseBegin, Plane::kR, 0, 1, 110));
  // wave_front events carry cycle 0 (the marker is cycle-agnostic): the
  // analyzer must scope them to the open cycle by scan order.
  events.push_back(ev(EventType::kWaveFront, Plane::kR, 0, 0, 112, 32));
  events.push_back(ev(EventType::kWaveFront, Plane::kR, 1, 0, 120, 64));
  events.push_back(ev(EventType::kWaveFront, Plane::kR, 1, 0, 125, 96));
  events.push_back(ev(EventType::kPhaseEnd, Plane::kR, 0, 1, 130, 96, 40));
  events.push_back(ev(EventType::kSweep, Plane::kR, 0, 1, 131, 7));
  events.push_back(ev(EventType::kCycleEnd, Plane::kR, 0, 1, 132, 7, 0));

  const TraceReport r = analyze(events);
  ASSERT_EQ(r.cycles.size(), 1u);
  const CycleReport& c = r.cycles[0];
  EXPECT_TRUE(c.complete);
  EXPECT_EQ(c.duration(), 32u);
  EXPECT_FALSE(c.mt.ran);
  EXPECT_TRUE(c.mr.finished);
  EXPECT_EQ(c.mr.duration(), 20u);
  EXPECT_EQ(c.mr.marks, 96u);
  EXPECT_EQ(c.mr.returns, 40u);
  EXPECT_EQ(c.swept, 7u);

  ASSERT_EQ(r.num_pes, 2u);
  EXPECT_EQ(r.pes[0].wave_samples_r, 1u);
  EXPECT_EQ(r.pes[1].wave_samples_r, 2u);
  EXPECT_EQ(r.pes[0].cycles_participated, 1u);
  EXPECT_DOUBLE_EQ(r.pes[0].idle_fraction, 0.0);
  EXPECT_NEAR(r.pes[1].work_share, 2.0 / 3.0, 1e-9);

  // First-participation latency: pe0 at 112-110=2, pe1 at 120-110=10 (the
  // second pe1 sample is not a first). Log-bucketed histogram: max is exact,
  // percentiles are ~4% bucket mids.
  EXPECT_EQ(r.wave_r.samples, 2u);
  EXPECT_DOUBLE_EQ(r.wave_r.max, 10.0);
  EXPECT_GT(r.wave_r.p50, 1.0);
  EXPECT_LT(r.wave_r.p50, 3.0);
  EXPECT_EQ(r.wave_t.samples, 0u);
}

TEST(Analyze, SyntheticDeadlockChain) {
  std::vector<TraceEvent> events;
  events.push_back(ev(EventType::kCycleStart, Plane::kR, 0, 5, 10));
  events.push_back(ev(EventType::kPhaseBegin, Plane::kT, 0, 5, 11));
  events.push_back(ev(EventType::kPhaseEnd, Plane::kT, 0, 5, 20, 9, 8));
  events.push_back(ev(EventType::kPhaseBegin, Plane::kR, 0, 5, 21));
  events.push_back(ev(EventType::kPhaseEnd, Plane::kR, 0, 5, 30, 12, 11));
  events.push_back(ev(EventType::kDeadlockReport, Plane::kT, 0, 5, 31, 2));
  events.push_back(ev(EventType::kDeadlockVertex, Plane::kT, 1, 5, 31, 42));
  events.push_back(ev(EventType::kDeadlockVertex, Plane::kT, 3, 5, 31, 7));
  events.push_back(ev(EventType::kCycleEnd, Plane::kR, 0, 5, 33));

  const TraceReport r = analyze(events);
  ASSERT_EQ(r.deadlocks.size(), 1u);
  const DeadlockPostMortem& d = r.deadlocks[0];
  EXPECT_EQ(d.cycle, 5u);
  EXPECT_EQ(d.count, 2u);
  // The evidence chain ties the report back to the waves that computed it:
  // DL'_v = R'_v − T' needs both planes' totals.
  EXPECT_EQ(d.mt_marks, 9u);
  EXPECT_EQ(d.mt_returns, 8u);
  EXPECT_EQ(d.mr_marks, 12u);
  ASSERT_EQ(d.vertices.size(), 2u);
  EXPECT_EQ(d.vertices[0], (std::pair<std::uint16_t, std::uint64_t>{1, 42}));
  EXPECT_EQ(d.vertices[1], (std::pair<std::uint16_t, std::uint64_t>{3, 7}));
}

TEST(Analyze, GoldenGcCycleTrace) {
  const std::vector<TraceEvent> events =
      from_jsonl(slurp(data_path("golden_gc_cycle.jsonl")));
  ASSERT_FALSE(events.empty());
  const TraceReport r = analyze(events);

  // Recorded from: dgr_run --seed 7 --pes 4 --gc gcd.dgr. Every cycle in
  // the file completed, evaluation garbage was swept, and M_T never ran
  // (no --detect-deadlock).
  EXPECT_EQ(r.events, events.size());
  EXPECT_EQ(r.complete_cycles, 37u);
  EXPECT_EQ(r.cycles.size(), 37u);
  std::uint64_t swept = 0;
  for (const CycleReport& c : r.cycles) {
    EXPECT_TRUE(c.complete);
    EXPECT_TRUE(c.mr.ran);
    EXPECT_FALSE(c.mt.ran);
    swept += c.swept;
  }
  EXPECT_GT(swept, 0u);
  EXPECT_TRUE(r.deadlocks.empty());
  EXPECT_EQ(r.audit_violations, 0u);

  // Metrics enrichment: per-PE task counts come from the registry dump.
  TraceReport enriched = r;
  ASSERT_TRUE(enrich_with_metrics_json(
      enriched, slurp(data_path("golden_gc_metrics.json"))));
  EXPECT_TRUE(enriched.metrics_enriched);
  EXPECT_EQ(enriched.num_pes, 4u);
  std::uint64_t total_marks = 0;
  for (const PeLoad& p : enriched.pes) total_marks += p.mark_tasks;
  EXPECT_GT(total_marks, 0u);

  expect_balanced_json(report_to_json(enriched));
  EXPECT_NE(report_to_text(enriched).find("== cycles =="), std::string::npos);
}

TEST(Analyze, GoldenDeadlockTraceNamesWedgedVertex) {
  const std::vector<TraceEvent> events =
      from_jsonl(slurp(data_path("golden_deadlock.jsonl")));
  ASSERT_FALSE(events.empty());
  const TraceReport r = analyze(events);

  // Recorded from: dgr_run --seed 7 --pes 2 --detect-deadlock deadlock.dgr
  // (def main() = let x = x + 1 in x). The live run printed
  // "deadlocked vertex 0:0 (op +)"; the post-mortem must reconstruct the
  // same vertex set from the trace alone, in every cycle that reported.
  ASSERT_FALSE(r.deadlocks.empty());
  for (const DeadlockPostMortem& d : r.deadlocks) {
    EXPECT_EQ(d.count, 1u);
    ASSERT_EQ(d.vertices.size(), 1u);
    EXPECT_EQ(d.vertices[0].first, 0u);   // pe 0
    EXPECT_EQ(d.vertices[0].second, 0u);  // idx 0
    // Evidence: both waves ran and terminated before the report.
    EXPECT_GT(d.mt_marks, 0u);
    EXPECT_GT(d.mr_marks, 0u);
  }
  // The report must also tell us *when*: deadlock cycles carry the flag.
  std::uint64_t reporting_cycles = 0;
  for (const CycleReport& c : r.cycles)
    if (c.deadlocked_count > 0) ++reporting_cycles;
  EXPECT_EQ(reporting_cycles, r.deadlocks.size());

  const std::string json = report_to_json(r);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"deadlocks\":[{"), std::string::npos);
  EXPECT_NE(report_to_text(r).find("deadlocked: 0:0"), std::string::npos);
}

TEST(Analyze, TruncatedTraceIsTolerated) {
  // Simulate a ring-wrapped trace: the stream starts mid-cycle (no
  // cycle_start for cycle 3) and ends mid-cycle (no cycle_end for cycle 5).
  std::vector<TraceEvent> events;
  events.push_back(ev(EventType::kPhaseEnd, Plane::kR, 0, 3, 40, 5, 4));
  events.push_back(ev(EventType::kCycleEnd, Plane::kR, 0, 3, 41));
  events.push_back(ev(EventType::kCycleStart, Plane::kR, 0, 4, 50));
  events.push_back(ev(EventType::kCycleEnd, Plane::kR, 0, 4, 60));
  events.push_back(ev(EventType::kCycleStart, Plane::kR, 0, 5, 70));
  events.push_back(ev(EventType::kPhaseBegin, Plane::kR, 0, 5, 71));

  const TraceReport r = analyze(events);
  ASSERT_EQ(r.cycles.size(), 3u);
  EXPECT_EQ(r.complete_cycles, 2u);
  EXPECT_TRUE(r.cycles[0].complete);   // cycle 3: end seen, start missing
  EXPECT_FALSE(r.cycles[2].complete);  // cycle 5: still open at EOF
  expect_balanced_json(report_to_json(r));
}

TEST(Analyze, MetricsEnrichmentRejectsGarbage) {
  TraceReport r;
  EXPECT_FALSE(enrich_with_metrics_json(r, "not json at all"));
  EXPECT_FALSE(enrich_with_metrics_json(r, "{\"something\":1}"));
  EXPECT_FALSE(r.metrics_enriched);
}

// ---- Cluster telemetry plane (PR 8) ----------------------------------------

TEST(Analyze, TraceDropSurvivesJsonlRoundTripAndIsAccounted) {
  // The drop marker the cluster merger synthesizes must ride the normal
  // export path: jsonl out, jsonl in, then show up in the report's loss
  // accounting — in both the machine and human forms.
  std::vector<TraceEvent> events;
  events.push_back(ev(EventType::kCycleStart, Plane::kR, 0, 1, 100));
  events.push_back(make_drop_event(/*ts=*/110, /*cycle=*/1, /*pe=*/2,
                                   /*ring_dropped=*/7, /*omitted=*/3));
  events.push_back(make_drop_event(120, 1, 3, 5, 0));
  events.push_back(ev(EventType::kCycleEnd, Plane::kR, 0, 1, 130));

  const std::vector<TraceEvent> back = from_jsonl(to_jsonl(events));
  ASSERT_EQ(back.size(), events.size());
  EXPECT_EQ(back[1].type, EventType::kTraceDrop);
  EXPECT_EQ(back[1].pe, 2u);
  EXPECT_EQ(back[1].a, 7u);
  EXPECT_EQ(back[1].b, 3u);

  const TraceReport r = analyze(back);
  EXPECT_EQ(r.trace_dropped, 12u);
  EXPECT_EQ(r.trace_events_omitted, 3u);
  const std::string json = report_to_json(r);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"trace_dropped\":12"), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_omitted\":3"), std::string::npos);
  EXPECT_NE(report_to_text(r).find("TRACE LOSS"), std::string::npos);
}

// A metrics dump in the shape ProcEngine::cluster_metrics_json writes —
// registry keys first (one block per PE), then the "workers" rollup (values
// arbitrary but internally consistent: two workers, one PE each here).
const char* kClusterDump =
    "{\"num_pes\":2,\"totals\":{\"mark_tasks\":90,\"return_tasks\":88},"
    "\"pes\":[{\"pe\":0,\"counters\":{\"mark_tasks\":50},\"hists\":{}},"
    "{\"pe\":1,\"counters\":{\"mark_tasks\":40},\"hists\":{}}],"
    "\"num_workers\":2,\"workers\":["
    "{\"worker\":0,\"pe_begin\":0,\"pe_count\":1,\"marks\":50,\"returns\":49,"
    "\"remote_messages\":12,\"retransmits\":1,\"handoff_bytes\":2048,"
    "\"relayed_frames\":6,\"relayed_bytes\":300,\"telemetry_msgs\":4,"
    "\"telemetry_dropped\":0,\"clock_offset_us\":-250,\"clock_rtt_us\":80},"
    "{\"worker\":1,\"pe_begin\":1,\"pe_count\":1,\"marks\":40,\"returns\":39,"
    "\"remote_messages\":11,\"retransmits\":0,\"handoff_bytes\":1900,"
    "\"relayed_frames\":5,\"relayed_bytes\":280,\"telemetry_msgs\":4,"
    "\"telemetry_dropped\":9,\"clock_offset_us\":300,\"clock_rtt_us\":95}]}";

TEST(Analyze, ClusterMetricsDumpFillsWorkerRows) {
  std::vector<TraceEvent> events;
  events.push_back(ev(EventType::kCycleStart, Plane::kR, 0, 1, 100));
  events.push_back(ev(EventType::kCycleEnd, Plane::kR, 0, 1, 140));
  TraceReport r = analyze(events);
  ASSERT_TRUE(enrich_with_metrics_json(r, kClusterDump));
  ASSERT_EQ(r.workers.size(), 2u);
  const WorkerRow& w0 = r.workers[0];
  EXPECT_EQ(w0.pe_begin, 0u);
  EXPECT_EQ(w0.pe_count, 1u);
  EXPECT_EQ(w0.marks, 50u);
  EXPECT_EQ(w0.handoff_bytes, 2048u);
  EXPECT_EQ(w0.clock_offset_us, -250);  // negative skew must parse signed
  const WorkerRow& w1 = r.workers[1];
  EXPECT_EQ(w1.telemetry_dropped, 9u);
  EXPECT_EQ(w1.clock_offset_us, 300);

  // Both rendered forms carry the rollup.
  const std::string json = report_to_json(r);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"workers\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"clock_offset_us\":-250"), std::string::npos);
  const std::string text = report_to_text(r);
  EXPECT_NE(text.find("== cluster =="), std::string::npos);
  EXPECT_NE(text.find("tele-drop"), std::string::npos);
}

TEST(Analyze, ChromeClusterExportLanesPerProcess) {
  // Controller events on pid 0; each worker's (already-rebased) events on
  // pid w+1 with per-PE named threads; drop markers render as instants.
  std::vector<TraceEvent> ctrl;
  ctrl.push_back(ev(EventType::kCycleStart, Plane::kR, 0, 1, 100));
  ctrl.push_back(ev(EventType::kCycleEnd, Plane::kR, 0, 1, 200));
  std::vector<std::vector<TraceEvent>> workers(2);
  workers[0].push_back(ev(EventType::kWaveFront, Plane::kR, 0, 1, 120, 32));
  workers[1].push_back(ev(EventType::kWaveFront, Plane::kR, 2, 1, 130, 16));
  workers[1].push_back(make_drop_event(135, 1, 2, 4, 1));

  const std::string json = to_chrome_trace_cluster(ctrl, workers, 4);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"controller\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // Worker 1's events sit in its own lane, not the controller's.
  EXPECT_NE(json.find("\"pid\":2,\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("trace_drop"), std::string::npos);
}

}  // namespace
}  // namespace dgr::obs
