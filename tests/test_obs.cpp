// Tests for the observability layer: the per-PE metrics registry (concurrent
// counter integrity, engine wiring) and the trace ring buffer + exporters
// (JSONL round-trip, Chrome export shape, ring overflow, and byte-identical
// traces across same-seed simulator runs).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/sim_engine.h"
#include "runtime/thread_engine.h"

#if DGR_TRACE_ENABLED
#include "obs/export.h"
#endif

namespace dgr {
namespace {

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  constexpr std::uint32_t kPes = 4;
  constexpr int kThreadsPerPe = 2;
  constexpr std::uint64_t kPerThread = 50000;
  obs::MetricsRegistry reg(kPes);
  std::vector<std::thread> ts;
  for (std::uint32_t pe = 0; pe < kPes; ++pe)
    for (int t = 0; t < kThreadsPerPe; ++t)
      ts.emplace_back([&reg, pe] {
        for (std::uint64_t i = 0; i < kPerThread; ++i)
          reg.add(pe, obs::Counter::kMarkTasks);
      });
  for (auto& t : ts) t.join();
  for (std::uint32_t pe = 0; pe < kPes; ++pe)
    EXPECT_EQ(reg.get(pe, obs::Counter::kMarkTasks),
              kThreadsPerPe * kPerThread);
  EXPECT_EQ(reg.total(obs::Counter::kMarkTasks),
            kPes * kThreadsPerPe * kPerThread);
}

TEST(MetricsRegistry, HistogramsAndJson) {
  obs::MetricsRegistry reg(2);
  for (int i = 1; i <= 100; ++i)
    reg.observe(0, obs::Hist::kMarkQueueDepth, double(i));
  EXPECT_EQ(reg.hist(0, obs::Hist::kMarkQueueDepth).count(), 100u);
  EXPECT_EQ(reg.hist(1, obs::Hist::kMarkQueueDepth).count(), 0u);
  EXPECT_EQ(reg.merged_hist(obs::Hist::kMarkQueueDepth).count(), 100u);

  reg.add(1, obs::Counter::kBytesSent, 17);
  const std::string j = reg.to_json();
  EXPECT_NE(j.find("\"num_pes\":2"), std::string::npos);
  EXPECT_NE(j.find("\"bytes_sent\":17"), std::string::npos);
  EXPECT_NE(j.find("\"mark_queue_depth\""), std::string::npos);
  // Deterministic: serializing twice gives the same bytes.
  EXPECT_EQ(j, reg.to_json());

  reg.reset();
  EXPECT_EQ(reg.total(obs::Counter::kBytesSent), 0u);
  EXPECT_EQ(reg.merged_hist(obs::Hist::kMarkQueueDepth).count(), 0u);
}

// Fixed-capacity stores (threaded-engine requirement).
Graph make_presized(std::uint32_t pes, std::uint32_t cap) {
  Graph g(pes, cap);
  for (PeId pe = 0; pe < pes; ++pe) g.store(pe).set_fixed_capacity(true);
  return g;
}

TEST(MetricsRegistry, ThreadEngineCountersMatchMarker) {
  Graph g = make_presized(4, 2000);
  RandomGraphOptions opt;
  opt.num_vertices = 3000;
  opt.seed = 11;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g);
  eng.set_root(b.root);
  eng.start();
  eng.controller().start_cycle(CycleOptions{false});
  eng.wait_cycle_done();
  eng.stop();

  const obs::MetricsRegistry& reg = eng.metrics_registry();
  // Every mark/return execution increments the registry exactly once, so the
  // totals must agree with the marker's own counters.
  EXPECT_EQ(reg.total(obs::Counter::kMarkTasks),
            eng.controller().last().stats_r.marks);
  EXPECT_EQ(reg.total(obs::Counter::kReturnTasks),
            eng.controller().last().stats_r.returns);
  // The aggregate facade is a view over the same registry.
  const ThreadEngineStats s = eng.stats();
  EXPECT_EQ(s.tasks_executed, reg.total(obs::Counter::kMarkTasks) +
                                  reg.total(obs::Counter::kReturnTasks) +
                                  reg.total(obs::Counter::kReductionTasks));
  EXPECT_EQ(s.remote_messages, reg.total(obs::Counter::kRemoteMessages));
  EXPECT_GT(s.remote_messages, 0u);
  EXPECT_GT(s.bytes_sent, 0u);
  EXPECT_GT(s.mailbox_high_water, 0u);
}

TEST(MetricsRegistry, SimEngineChargesExecutingPe) {
  Graph g(2);
  RandomGraphOptions opt;
  opt.num_vertices = 500;
  opt.seed = 5;
  const BuiltGraph b = build_random_graph(g, opt);
  SimEngine eng(g);
  eng.set_root(b.root);
  eng.controller().start_cycle(CycleOptions{false});
  eng.run_until_cycle_done();
  const SimMetrics m = eng.metrics();
  EXPECT_EQ(m.mark_tasks, eng.metrics_registry().total(obs::Counter::kMarkTasks));
  EXPECT_EQ(m.mark_tasks, eng.controller().last().stats_r.marks);
  // Per-PE attribution sums to the total.
  std::uint64_t sum = 0;
  for (std::uint32_t pe = 0; pe < 2; ++pe)
    sum += eng.metrics_registry().get(pe, obs::Counter::kMarkTasks);
  EXPECT_EQ(sum, m.mark_tasks);
}

#if DGR_TRACE_ENABLED

TEST(TraceBuffer, RingOverflowDropsOldest) {
  obs::TraceBuffer t(8);
  for (std::uint64_t i = 0; i < 20; ++i)
    t.emit(obs::EventType::kSweep, Plane::kR, 0, 1, i);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  const auto ev = t.snapshot();
  ASSERT_EQ(ev.size(), 8u);
  // Oldest surviving first: payloads 12..19.
  for (std::size_t i = 0; i < ev.size(); ++i) EXPECT_EQ(ev[i].a, 12 + i);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceExport, JsonlRoundTrip) {
  std::vector<obs::TraceEvent> ev;
  obs::TraceEvent e;
  e.ts = 12;
  e.type = obs::EventType::kSweep;
  e.plane = Plane::kR;
  e.pe = 0;
  e.cycle = 3;
  e.a = 17;
  ev.push_back(e);
  e.ts = 99;
  e.type = obs::EventType::kPhaseBegin;
  e.plane = Plane::kT;
  e.pe = 7;
  e.cycle = 4;
  e.a = 2;
  e.b = 5;
  ev.push_back(e);

  const std::string text = obs::to_jsonl(ev);
  EXPECT_NE(text.find("\"type\":\"sweep\""), std::string::npos);
  const std::vector<obs::TraceEvent> back = obs::from_jsonl(text);
  ASSERT_EQ(back.size(), ev.size());
  for (std::size_t i = 0; i < ev.size(); ++i) EXPECT_EQ(back[i], ev[i]);
}

// Shared fixture: a marking cycle over a static graph with garbage, traced.
std::vector<obs::TraceEvent> traced_cycle(std::uint64_t seed) {
  Graph g(4);
  RandomGraphOptions opt;
  opt.num_vertices = 2000;
  opt.seed = 21;
  opt.num_tasks = 16;
  const BuiltGraph b = build_random_graph(g, opt);
  SimOptions sopt;
  sopt.seed = seed;
  SimEngine eng(g, sopt);
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.spawn(Task::request(t.s, t.d, ReqKind::kVital));
  obs::TraceBuffer* tb = eng.enable_trace();
  EXPECT_NE(tb, nullptr);
  eng.controller().start_cycle(CycleOptions{true});
  eng.run_until_cycle_done();
  return tb->snapshot();
}

TEST(TraceExport, SameSeedTracesAreByteIdentical) {
  const std::string a = obs::to_jsonl(traced_cycle(9));
  const std::string b = obs::to_jsonl(traced_cycle(9));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  const std::string c = obs::to_jsonl(traced_cycle(10));
  EXPECT_NE(a, c);  // a different interleaving leaves a different trace
}

TEST(TraceExport, CycleEmitsRichTaxonomy) {
  const std::vector<obs::TraceEvent> ev = traced_cycle(9);
  std::set<obs::EventType> kinds;
  for (const obs::TraceEvent& e : ev) kinds.insert(e.type);
  EXPECT_GE(kinds.size(), 6u);
  EXPECT_TRUE(kinds.count(obs::EventType::kCycleStart));
  EXPECT_TRUE(kinds.count(obs::EventType::kPhaseBegin));
  EXPECT_TRUE(kinds.count(obs::EventType::kPhaseEnd));
  EXPECT_TRUE(kinds.count(obs::EventType::kWaveFront));
  EXPECT_TRUE(kinds.count(obs::EventType::kSweep));
  EXPECT_TRUE(kinds.count(obs::EventType::kCycleEnd));
}

TEST(TraceExport, ChromeTraceShape) {
  const std::vector<obs::TraceEvent> ev = traced_cycle(9);
  const std::string json = obs::to_chrome_trace(ev, 4);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // One named track per PE plus the controller track.
  for (const char* name : {"\"PE 0\"", "\"PE 1\"", "\"PE 2\"", "\"PE 3\"",
                           "\"controller\""})
    EXPECT_NE(json.find(name), std::string::npos) << name;
  // Phase spans appear as complete duration events.
  EXPECT_NE(json.find("\"name\":\"M_R\",\"ph\":\"X\""), std::string::npos);
}

TEST(TraceExport, ThreadEngineTraceCapturesCycle) {
  Graph g = make_presized(2, 1500);
  RandomGraphOptions opt;
  opt.num_vertices = 2000;
  opt.seed = 13;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g);
  eng.set_root(b.root);
  obs::TraceBuffer* tb = eng.enable_trace();
  ASSERT_NE(tb, nullptr);
  eng.start();
  eng.controller().start_cycle(CycleOptions{false});
  eng.wait_cycle_done();
  eng.stop();
  const auto ev = tb->snapshot();
  std::set<obs::EventType> kinds;
  for (const obs::TraceEvent& e : ev) kinds.insert(e.type);
  EXPECT_TRUE(kinds.count(obs::EventType::kCycleStart));
  EXPECT_TRUE(kinds.count(obs::EventType::kCycleEnd));
  EXPECT_TRUE(kinds.count(obs::EventType::kWaveFront));
}

#endif  // DGR_TRACE_ENABLED

}  // namespace
}  // namespace dgr
