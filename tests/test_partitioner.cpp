// Tests for the pluggable vertex→PE placement layer (graph/partitioner.h):
// strategy parsing, determinism, the balance cap, and the load-bearing
// contract behind the locality work — greedy placement cuts no more of a
// seeded topology's edges than the round-robin status quo, both in index
// space and in the graphs the builder actually materializes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/partitioner.h"
#include "util/rng.h"

namespace dgr {
namespace {

// A builder-like topology: a majority of short-range edges (index locality)
// plus a uniform long-range tail.
std::vector<IndexEdge> random_edges(std::uint32_t n, std::uint32_t m,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IndexEdge> edges;
  edges.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    std::uint32_t b;
    if (rng.below(3) != 0) {
      b = std::min(n - 1, a + 1 + static_cast<std::uint32_t>(rng.below(8)));
    } else {
      b = static_cast<std::uint32_t>(rng.below(n));
    }
    if (a != b) edges.push_back({a, b});
  }
  return edges;
}

TEST(Partitioner, ParseKnownNamesAndRejectUnknown) {
  PartitionStrategy s;
  ASSERT_TRUE(parse_partition_strategy("rr", &s));
  EXPECT_EQ(s, PartitionStrategy::kRoundRobin);
  ASSERT_TRUE(parse_partition_strategy("round-robin", &s));
  EXPECT_EQ(s, PartitionStrategy::kRoundRobin);
  ASSERT_TRUE(parse_partition_strategy("block", &s));
  EXPECT_EQ(s, PartitionStrategy::kBlock);
  ASSERT_TRUE(parse_partition_strategy("greedy", &s));
  EXPECT_EQ(s, PartitionStrategy::kGreedy);
  EXPECT_FALSE(parse_partition_strategy("metis", &s));
  EXPECT_FALSE(parse_partition_strategy("", &s));
  // Round-trip: every strategy's display name parses back to itself.
  for (PartitionStrategy in : {PartitionStrategy::kRoundRobin,
                               PartitionStrategy::kBlock,
                               PartitionStrategy::kGreedy}) {
    PartitionStrategy out;
    ASSERT_TRUE(parse_partition_strategy(partition_strategy_name(in), &out));
    EXPECT_EQ(out, in);
  }
}

TEST(Partitioner, RoundRobinIsIndexModPes) {
  const auto edges = random_edges(256, 512, 1);
  const auto rr = make_partitioner(PartitionStrategy::kRoundRobin)
                      ->assign(256, 4, edges, 64);
  ASSERT_EQ(rr.size(), 256u);
  for (std::uint32_t i = 0; i < 256; ++i) EXPECT_EQ(rr[i], PeId(i % 4));
}

TEST(Partitioner, BlockKeepsIndexNeighborsTogether) {
  // Block placement is non-decreasing in index order, so consecutive-index
  // edges almost never cross: exactly the PE-boundary edges remain.
  const auto edges = random_edges(256, 512, 2);
  const auto blk = make_partitioner(PartitionStrategy::kBlock)
                       ->assign(256, 4, edges, 64);
  ASSERT_EQ(blk.size(), 256u);
  for (std::uint32_t i = 1; i < 256; ++i) EXPECT_LE(blk[i - 1], blk[i]);
}

TEST(Partitioner, AllStrategiesRespectTheBalanceCap) {
  const std::uint32_t n = 500, pes = 4;
  const std::uint32_t cap = n / pes + 1;  // tightest legal cap
  const auto edges = random_edges(n, 1500, 3);
  for (PartitionStrategy s : {PartitionStrategy::kRoundRobin,
                              PartitionStrategy::kBlock,
                              PartitionStrategy::kGreedy}) {
    const auto a = make_partitioner(s)->assign(n, pes, edges, cap);
    ASSERT_EQ(a.size(), n) << partition_strategy_name(s);
    std::vector<std::uint32_t> count(pes, 0);
    for (PeId pe : a) {
      ASSERT_LT(pe, pes) << partition_strategy_name(s);
      ++count[pe];
    }
    for (std::uint32_t pe = 0; pe < pes; ++pe)
      EXPECT_LE(count[pe], cap) << partition_strategy_name(s) << " pe " << pe;
  }
}

TEST(Partitioner, AssignmentIsDeterministic) {
  const auto edges = random_edges(400, 1200, 4);
  for (PartitionStrategy s : {PartitionStrategy::kRoundRobin,
                              PartitionStrategy::kBlock,
                              PartitionStrategy::kGreedy}) {
    const auto a = make_partitioner(s)->assign(400, 8, edges, 80);
    const auto b = make_partitioner(s)->assign(400, 8, edges, 80);
    EXPECT_EQ(a, b) << partition_strategy_name(s);
  }
}

TEST(Partitioner, EdgeCutCountsCrossPeEdges) {
  const std::vector<IndexEdge> edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const std::vector<PeId> assignment = {0, 0, 1, 1};
  // (1,2) and (0,3) cross; (0,1) and (2,3) stay local.
  EXPECT_EQ(edge_cut(edges, assignment), 2u);
  EXPECT_EQ(edge_cut(edges, {0, 0, 0, 0}), 0u);
  EXPECT_EQ(edge_cut(edges, {0, 1, 0, 1}), 4u);
}

TEST(Partitioner, GreedyCutNeverWorseThanRoundRobinOnSeededTopologies) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::uint32_t n = 512, pes = 4;
    const auto edges = random_edges(n, 1536, seed);
    const std::uint32_t cap = n / pes + 32;
    const auto rr = make_partitioner(PartitionStrategy::kRoundRobin)
                        ->assign(n, pes, edges, cap);
    const auto greedy = make_partitioner(PartitionStrategy::kGreedy)
                            ->assign(n, pes, edges, cap);
    const std::uint64_t cut_rr = edge_cut(edges, rr);
    const std::uint64_t cut_greedy = edge_cut(edges, greedy);
    EXPECT_LE(cut_greedy, cut_rr) << "seed " << seed;
  }
}

// (cross-PE arg edges, total arg edges) over the live vertices of a built
// graph — the materialized counterpart of edge_cut().
std::pair<std::uint64_t, std::uint64_t> cross_args(const Graph& g) {
  std::uint64_t cross = 0, total = 0;
  g.for_each_live([&](VertexId v) {
    for (const ArgEdge& e : g.at(v).args) {
      ++total;
      if (e.to.pe != v.pe) ++cross;
    }
  });
  return {cross, total};
}

TEST(Partitioner, BuilderPlacesFewerCrossEdgesUnderGreedy) {
  // Same seeded topology (drawn in index space) placed both ways: the
  // greedy build must materialize a strictly smaller cross-PE edge
  // fraction than the adversarial round-robin build.
  RandomGraphOptions opt;
  opt.num_vertices = 2000;
  opt.avg_out_degree = 3.0;
  opt.seed = 42;

  Graph g_rr(4, 2000 / 4 + 64);
  opt.partition = PartitionStrategy::kRoundRobin;
  build_random_graph(g_rr, opt);
  const auto [cross_rr, total_rr] = cross_args(g_rr);

  Graph g_greedy(4, 2000 / 4 + 64);
  opt.partition = PartitionStrategy::kGreedy;
  build_random_graph(g_greedy, opt);
  const auto [cross_g, total_g] = cross_args(g_greedy);

  // Identical topology either way — only placement may differ.
  ASSERT_EQ(total_rr, total_g);
  ASSERT_GT(total_rr, 0u);
  EXPECT_LT(cross_g, cross_rr);
  // And the win is substantial, not marginal: at 4 PEs round-robin cuts
  // ~3/4 of all edges; greedy must recover at least a fifth of that.
  EXPECT_LT(static_cast<double>(cross_g), 0.8 * static_cast<double>(cross_rr));
  EXPECT_GT(static_cast<double>(cross_rr), 0.6 * static_cast<double>(total_rr));
}

TEST(Partitioner, BuilderTopologyIsPlacementInvariant) {
  // The builder draws topology in index space before placement, so the two
  // builds must have the same vertex count, live count, and degree multiset.
  RandomGraphOptions opt;
  opt.num_vertices = 1000;
  opt.seed = 9;

  auto degree_census = [](const Graph& g) {
    std::vector<std::uint64_t> deg;
    g.for_each_live([&](VertexId v) { deg.push_back(g.at(v).args.size()); });
    std::sort(deg.begin(), deg.end());
    return deg;
  };

  Graph a(4, 1000 / 4 + 64);
  opt.partition = PartitionStrategy::kRoundRobin;
  const BuiltGraph ba = build_random_graph(a, opt);
  Graph b(4, 1000 / 4 + 64);
  opt.partition = PartitionStrategy::kGreedy;
  const BuiltGraph bb = build_random_graph(b, opt);

  EXPECT_EQ(ba.vertices.size(), bb.vertices.size());
  EXPECT_EQ(ba.tasks.size(), bb.tasks.size());
  EXPECT_EQ(degree_census(a), degree_census(b));
}

}  // namespace
}  // namespace dgr
