// Tests for marking concurrent with graph mutation (Hudak §4.2, §5.3) —
// the paper's central novelty. Includes the §4.2 motivating race, scripted
// mutation storms, and a randomized concurrent-mutator property test checked
// against Theorem 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "runtime/sim_engine.h"

namespace dgr {
namespace {

// ---- The §4.2 motivating example. ----
//
// "Suppose we have a graph a → b → c, and the marking process has just
// spawned a mark task from a to b. Next a series of mutations occur,
// connecting a to c and disconnecting c from b ... at this point c is only
// accessible from a, but since marking has already propagated beyond a, c
// will never get marked."

struct RaceRig {
  Graph g{2};
  VertexId a, b, c;
  std::unique_ptr<SimEngine> eng;

  explicit RaceRig(bool check_invariants) {
    a = g.alloc(0, OpCode::kData);
    b = g.alloc(1, OpCode::kData);
    c = g.alloc(0, OpCode::kData);
    connect(g, a, b, ReqKind::kVital);
    connect(g, b, c, ReqKind::kVital);
    SimOptions opt;
    opt.seed = 99;
    opt.check_invariants = check_invariants;
    opt.invariant_period = 1;
    eng = std::make_unique<SimEngine>(g, opt);
    eng->set_root(a);
    CycleOptions copt;
    copt.detect_deadlock = false;
    eng->controller().start_cycle(copt);
    // Advance until the mark task has executed at a (a transient): marking
    // "has just spawned a mark task from a to b".
    while (!eng->marker().is_transient(Plane::kR, a)) {
      const bool stepped = eng->step();
      DGR_CHECK(stepped);
    }
  }
};

TEST(Sec42Race, CooperatingMutatorKeepsCReachableAndMarked) {
  RaceRig rig(/*check_invariants=*/true);
  // The mutations, through the cooperating primitives (Fig 4-2):
  rig.eng->mutator().add_reference(rig.a, rig.b, rig.c, ReqKind::kVital);
  rig.eng->mutator().delete_reference(rig.b, rig.c);
  rig.eng->run_until_cycle_done(100000);
  EXPECT_TRUE(rig.eng->marker().is_marked(Plane::kR, rig.c));
  EXPECT_FALSE(rig.g.is_free(rig.c));
  EXPECT_FALSE(rig.g.is_free(rig.b));  // still referenced by a
}

TEST(Sec42Race, UncooperativeMutatorLosesC) {
  // Negative control: the same mutations done with raw connect/disconnect
  // (no cooperation) reproduce the failure the paper warns about — c is
  // reachable yet unmarked, and gets (incorrectly) swept.
  RaceRig rig(/*check_invariants=*/false);
  connect(rig.g, rig.a, rig.c, ReqKind::kVital);
  disconnect(rig.g, rig.b, rig.c);
  rig.eng->run_until_cycle_done(100000);
  EXPECT_FALSE(rig.eng->marker().is_marked(Plane::kR, rig.c));
  EXPECT_TRUE(rig.g.is_free(rig.c));  // the bug cooperation exists to prevent
}

TEST(Sec42Race, AddReferenceAfterParentMarkedUsesTransientHelper) {
  // Variant: wait until a is fully MARKED, with b still transient (b's
  // subtree pinned by an unfinished chain). Then add-reference must splice
  // marking below b ("execute mark1(c,b)"), Fig 4-2's second case.
  Graph g(2);
  const VertexId a = g.alloc(0, OpCode::kData);
  const VertexId b = g.alloc(1, OpCode::kData);
  const VertexId c = g.alloc(0, OpCode::kData);
  const VertexId d = g.alloc(1, OpCode::kData);
  connect(g, a, b, ReqKind::kVital);
  connect(g, b, c, ReqKind::kVital);
  connect(g, b, d, ReqKind::kVital);

  // To hold b transient while a marks, we drive steps manually and check
  // states; with random scheduling across seeds, the interesting interleaving
  // (a marked before b) cannot occur — a marks only after b's subtree
  // completes. So instead exercise the transient-b path directly: advance
  // until b is transient, then mutate.
  SimOptions opt;
  opt.seed = 3;
  opt.check_invariants = true;
  opt.invariant_period = 1;
  SimEngine eng(g, opt);
  eng.set_root(a);
  CycleOptions copt;
  copt.detect_deadlock = false;
  eng.controller().start_cycle(copt);
  while (!eng.marker().is_transient(Plane::kR, b)) ASSERT_TRUE(eng.step());

  // New vertex e under a via b's child c: a is transient here; exercise the
  // generalized chain: add edge b -> fresh e... use expand under b.
  const VertexId e = g.alloc(0, OpCode::kData);
  connect(g, e, c, ReqKind::kVital);  // fresh→existing, wired before splice
  const VertexId fresh[] = {e};
  eng.mutator().expand_node(b, fresh);
  eng.mutator().add_reference_via(b, std::span<const VertexId>(&b, 1), e,
                                  ReqKind::kVital);
  eng.run_until_cycle_done(100000);
  EXPECT_TRUE(eng.marker().is_marked(Plane::kR, e));
  EXPECT_FALSE(g.is_free(e));
}

// ---- Randomized concurrent mutator vs Theorem 1 (E5). ----
//
// A seeded mutation driver interleaves cooperating mutations with marking
// steps. The driver respects reduction axioms 1 and 3 (it only touches
// vertices sampled by walks from the root, and fresh vertices from F), which
// is what Theorem 1 needs.

class ConcurrentMutationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConcurrentMutationTest, Theorem1HoldsUnderMutation) {
  const std::uint64_t seed = GetParam();
  Graph g(6);
  RandomGraphOptions gopt;
  gopt.num_vertices = 250;
  gopt.avg_out_degree = 2.0;
  gopt.p_detached = 0.25;
  gopt.seed = seed;
  const BuiltGraph b = build_random_graph(g, gopt);

  SimOptions sopt;
  sopt.seed = seed ^ 0xabcdef;
  sopt.check_invariants = true;
  sopt.invariant_period = 97;
  SimEngine eng(g, sopt);
  eng.set_root(b.root);

  // Snapshot GAR(t_b): garbage before marking starts.
  std::vector<VertexId> gar_tb;
  {
    Oracle o(g, b.root, {});
    for (VertexId v : b.vertices)
      if (!g.is_free(v) && o.in_GAR(v)) gar_tb.push_back(v);
  }

  CycleOptions copt;
  copt.detect_deadlock = false;
  eng.controller().start_cycle(copt);

  Rng rng(seed * 31 + 7);
  // Sample a vertex reachable from the root by a short random walk.
  auto sample_reachable = [&]() {
    VertexId v = b.root;
    const std::uint64_t hops = rng.below(12);
    for (std::uint64_t i = 0; i < hops; ++i) {
      const Vertex& vx = g.at(v);
      if (vx.args.empty()) break;
      const VertexId nxt = vx.args[rng.below(vx.args.size())].to;
      if (!nxt.valid() || g.is_free(nxt)) break;
      v = nxt;
    }
    return v;
  };
  auto rand_kind = [&]() {
    switch (rng.below(3)) {
      case 0: return ReqKind::kVital;
      case 1: return ReqKind::kEager;
      default: return ReqKind::kNone;
    }
  };

  std::vector<VertexId> fresh_allocated;
  int mutations = 0;
  while (!eng.controller().idle()) {
    // A few marking/reduction steps...
    for (std::uint64_t i = rng.below(4); i > 0 && !eng.controller().idle();
         --i)
      if (!eng.step()) break;
    if (eng.controller().idle()) break;
    // ... then one mutation.
    ++mutations;
    switch (rng.below(4)) {
      case 0: {  // delete-reference
        const VertexId a = sample_reachable();
        if (!g.at(a).args.empty()) {
          const ArgEdge e = g.at(a).args[rng.below(g.at(a).args.size())];
          eng.mutator().delete_reference(a, e.to);
        }
        break;
      }
      case 1: {  // add-reference(a,b,c)
        const VertexId a = sample_reachable();
        if (g.at(a).args.empty()) break;
        const VertexId bb = g.at(a).args[rng.below(g.at(a).args.size())].to;
        if (!bb.valid() || g.is_free(bb) || g.at(bb).args.empty()) break;
        const VertexId c = g.at(bb).args[rng.below(g.at(bb).args.size())].to;
        if (!c.valid() || g.is_free(c)) break;
        eng.mutator().add_reference(a, bb, c, rand_kind());
        break;
      }
      case 2: {  // expand-node with a small fresh chain
        const VertexId a = sample_reachable();
        const VertexId f1 = g.alloc_rr(OpCode::kData);
        const VertexId f2 = g.alloc_rr(OpCode::kData);
        connect(g, f1, f2, rand_kind());
        if (!g.at(a).args.empty()) {
          // fresh may reference a current child of a.
          const VertexId ch = g.at(a).args[rng.below(g.at(a).args.size())].to;
          if (ch.valid() && !g.is_free(ch)) connect(g, f2, ch, rand_kind());
        }
        const VertexId fresh[] = {f1, f2};
        eng.mutator().expand_node(a, fresh);
        eng.mutator().add_reference_via(a, std::span<const VertexId>(&a, 1),
                                        f1, rand_kind());
        fresh_allocated.push_back(f1);
        fresh_allocated.push_back(f2);
        break;
      }
      case 3: {  // priority upgrade on an existing eager edge (§5.3)
        const VertexId a = sample_reachable();
        for (const ArgEdge& e : g.at(a).args) {
          if (e.req == ReqKind::kEager) {
            eng.mutator().upgrade_to_vital(a, e.to);
            break;
          }
        }
        break;
      }
    }
  }
  ASSERT_GT(mutations, 0);

  // Theorem 1, left containment: everything garbage at t_b was swept.
  for (VertexId v : gar_tb) EXPECT_TRUE(g.is_free(v)) << v.pe << ":" << v.idx;

  // Theorem 1, right containment (safety): nothing reachable was swept —
  // equivalently, no live vertex has a dangling edge and the root survives.
  ASSERT_FALSE(g.is_free(b.root));
  g.for_each_live([&](VertexId v) {
    for (const ArgEdge& e : g.at(v).args) {
      ASSERT_TRUE(e.to.valid());
      EXPECT_FALSE(g.is_free(e.to)) << "dangling edge from live vertex";
    }
    for (VertexId r : g.at(v).requested) {
      if (r.valid()) {
        EXPECT_FALSE(g.is_free(r)) << "dangling requester";
      }
    }
  });

  // Marking liveness at t_c: everything reachable NOW is marked.
  Oracle after(g, b.root, {});
  g.for_each_live([&](VertexId v) {
    if (after.in_R(v)) {
      EXPECT_TRUE(eng.marker().is_marked(Plane::kR, v));
    }
  });

  // A second cycle on the now-quiescent graph must agree exactly with the
  // oracle (floating garbage from cycle 1 is collected in cycle 2).
  Oracle o2(g, b.root, {});
  const std::size_t expect_gar = o2.count_GAR();
  eng.controller().start_cycle(copt);
  eng.run_until_cycle_done(1000000);
  EXPECT_EQ(eng.controller().last().swept, expect_gar);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentMutationTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dgr
