// Tests for the §6 compact marking variant: two-color marking with per-PE
// Dijkstra-Scholten termination (two words of marking state per PE), against
// the oracle, under concurrent mutation, and under full reduction workloads.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "reduction/machine.h"
#include "runtime/sim_engine.h"

namespace dgr {
namespace {

TEST(Compact, MarksStaticGraphLikeOracle) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Graph g(8);
    RandomGraphOptions opt;
    opt.num_vertices = 400;
    opt.seed = seed;
    const BuiltGraph b = build_random_graph(g, opt);
    Oracle o(g, b.root, {});
    SimOptions sopt;
    sopt.seed = seed + 100;
    SimEngine eng(g, sopt);
    eng.set_root(b.root);
    CompactCollector& cc = eng.enable_compact_collector();
    cc.set_root(b.root);
    cc.start_cycle();
    eng.run_until_compact_done(10'000'000);
    EXPECT_EQ(cc.last().swept, o.count_GAR()) << "seed " << seed;
    for (VertexId v : b.vertices) {
      if (g.is_free(v)) continue;
      EXPECT_EQ(eng.compact_marker().is_marked(v), o.in_R(v));
      EXPECT_EQ(eng.compact_marker().prior(v), o.prior_at(v));
    }
  }
}

TEST(Compact, TerminationOnCyclesAndSelfLoops) {
  Graph g(2);
  const VertexId root = g.alloc(0, OpCode::kData);
  const VertexId a = g.alloc(1, OpCode::kData);
  connect(g, root, root, ReqKind::kVital);  // self loop
  connect(g, root, a, ReqKind::kVital);
  connect(g, a, root, ReqKind::kVital);  // 2-cycle
  SimOptions sopt;
  sopt.seed = 5;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  CompactCollector& cc = eng.enable_compact_collector();
  cc.set_root(root);
  cc.start_cycle();
  eng.run_until_compact_done(1'000'000);
  EXPECT_TRUE(eng.compact_marker().is_marked(root));
  EXPECT_TRUE(eng.compact_marker().is_marked(a));
  EXPECT_EQ(cc.last().swept, 0u);
}

TEST(Compact, AckVolumeMatchesMarkVolume) {
  // Dijkstra-Scholten: every mark message is acknowledged exactly once
  // (immediately, or deferred as the engagement ack).
  Graph g(4);
  const VertexId root = build_tree(g, 10, ReqKind::kVital);
  SimOptions sopt;
  sopt.seed = 2;
  SimEngine eng(g, sopt);
  eng.set_root(root);
  CompactCollector& cc = eng.enable_compact_collector();
  cc.set_root(root);
  cc.start_cycle();
  eng.run_until_compact_done(10'000'000);
  const CompactStats& st = cc.last().stats;
  EXPECT_EQ(st.marks, 2047u);  // one per edge + the initial
  EXPECT_EQ(st.acks, st.marks);
}

// Concurrent mutation: multi-pass waves must not lose reachable vertices.
class CompactMutationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompactMutationTest, NoReachableVertexLost) {
  const std::uint64_t seed = GetParam();
  Graph g(6);
  RandomGraphOptions gopt;
  gopt.num_vertices = 250;
  gopt.p_detached = 0.25;
  gopt.seed = seed;
  const BuiltGraph b = build_random_graph(g, gopt);
  std::vector<VertexId> gar_tb;
  {
    Oracle o(g, b.root, {});
    for (VertexId v : b.vertices)
      if (!g.is_free(v) && o.in_GAR(v)) gar_tb.push_back(v);
  }
  SimOptions sopt;
  sopt.seed = seed ^ 0xfeed;
  SimEngine eng(g, sopt);
  eng.set_root(b.root);
  CompactCollector& cc = eng.enable_compact_collector();
  cc.set_root(b.root);
  cc.start_cycle();

  Rng rng(seed * 13 + 1);
  auto sample = [&] {
    VertexId v = b.root;
    for (std::uint64_t i = rng.below(10); i > 0; --i) {
      const Vertex& vx = g.at(v);
      if (vx.args.empty()) break;
      const VertexId nxt = vx.args[rng.below(vx.args.size())].to;
      if (!nxt.valid() || g.is_free(nxt)) break;
      v = nxt;
    }
    return v;
  };
  while (!cc.idle()) {
    for (std::uint64_t i = rng.below(4); i > 0 && !cc.idle(); --i)
      if (!eng.step()) break;
    if (cc.idle()) break;
    const VertexId a = sample();
    switch (rng.below(3)) {
      case 0:
        if (!g.at(a).args.empty())
          eng.mutator().delete_reference(a, g.at(a).args[0].to);
        break;
      case 1: {
        if (g.at(a).args.empty()) break;
        const VertexId bb = g.at(a).args[rng.below(g.at(a).args.size())].to;
        if (!bb.valid() || g.is_free(bb) || g.at(bb).args.empty()) break;
        const VertexId c = g.at(bb).args[0].to;
        if (!c.valid() || g.is_free(c)) break;
        eng.mutator().add_reference(a, bb, c, ReqKind::kVital);
        eng.mutator().delete_reference(bb, c);
        break;
      }
      case 2: {
        const VertexId f = g.alloc_rr(OpCode::kData);
        const VertexId fresh[] = {f};
        eng.mutator().expand_node(a, fresh);
        eng.mutator().add_reference_via(a, std::span<const VertexId>(&a, 1),
                                        f, ReqKind::kEager);
        break;
      }
    }
  }
  for (VertexId v : gar_tb) EXPECT_TRUE(g.is_free(v));
  ASSERT_FALSE(g.is_free(b.root));
  Oracle after(g, b.root, {});
  g.for_each_live([&](VertexId v) {
    if (after.in_R(v)) {
      EXPECT_TRUE(eng.compact_marker().is_marked(v));
    }
    for (const ArgEdge& e : g.at(v).args) {
      EXPECT_FALSE(g.is_free(e.to)) << "dangling edge (compact)";
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactMutationTest,
                         ::testing::Range<std::uint64_t>(1, 31));

// Full reduction (with lists) collected by the compact variant.
class CompactReductionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompactReductionTest, StreamSumCorrectUnderCompactCycles) {
  Graph g(4);
  SimOptions sopt;
  sopt.seed = GetParam();
  SimEngine eng(g, sopt);
  Machine m(g, eng.mutator(), eng,
            Program::from_source(
                "def from(n) = cons(n, from(n + 1));"
                "def take_sum(k, xs) = if k == 0 then 0"
                "  else head(xs) + take_sum(k - 1, tail(xs));"
                "def main() = take_sum(30, from(1));"));
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  CompactCollector& cc = eng.enable_compact_collector();
  cc.set_root(root);
  m.demand(root);
  std::uint64_t swept = 0;
  while (!m.result_of(root).has_value()) {
    if (cc.idle()) cc.start_cycle();
    ASSERT_TRUE(eng.step());
    swept = cc.total_swept();
  }
  eng.run(100'000'000);
  ASSERT_FALSE(m.has_error()) << m.error();
  EXPECT_EQ(m.result_of(root)->as_int(), 465);
  EXPECT_GT(cc.total_swept() + swept, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactReductionTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace dgr
