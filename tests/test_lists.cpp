// List structures on the reduction machine: lazy cons cells (unrequested
// fields = the paper's reserve dependencies), head/tail acquisition with
// rescue-wave cooperation, infinite streams, and list workloads under
// continuous concurrent collection.
#include <gtest/gtest.h>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

namespace dgr {
namespace {

struct Rig {
  Graph g;
  SimEngine eng;
  Machine machine;
  VertexId root;

  Rig(const std::string& src, std::uint32_t pes, std::uint64_t seed,
      MachineOptions mopt = {}, SimOptions sopt_in = SimOptions{})
      : g(pes),
        eng(g, [&] {
          SimOptions s = sopt_in;
          s.seed = seed;
          return s;
        }()),
        machine(g, eng.mutator(), eng, Program::from_source(src), mopt) {
    root = machine.load_main();
    eng.set_root(root);
    eng.set_reducer([this](const Task& t) { machine.exec(t); });
    machine.demand(root);
  }

  Value run() {
    eng.run(100'000'000);
    const auto r = machine.result_of(root);
    DGR_CHECK_MSG(!machine.has_error(), machine.error().c_str());
    DGR_CHECK_MSG(r.has_value(), "program did not produce a result");
    return *r;
  }
};

TEST(Lists, ConsHeadTail) {
  Rig r("def main() = head(tail(cons(1, cons(2, nil))));", 2, 1);
  EXPECT_EQ(r.run().as_int(), 2);
}

TEST(Lists, IsNil) {
  Rig r("def main() = if isnil(nil) then 1 else 0;", 1, 2);
  EXPECT_EQ(r.run().as_int(), 1);
  Rig r2("def main() = if isnil(cons(1, nil)) then 1 else 0;", 1, 3);
  EXPECT_EQ(r2.run().as_int(), 0);
}

TEST(Lists, HeadOfNilIsError) {
  Rig r("def main() = head(nil);", 1, 4);
  r.eng.run(1'000'000);
  EXPECT_TRUE(r.machine.has_error());
}

TEST(Lists, FieldsAreLazy) {
  // The head field diverges; only the tail is demanded — laziness means the
  // program still terminates.
  Rig r("def boom() = boom();"
        "def main() = head(tail(cons(boom(), cons(5, nil))));",
        2, 5);
  EXPECT_EQ(r.run().as_int(), 5);
}

TEST(Lists, SumOfGeneratedList) {
  Rig r("def upto(n) = if n == 0 then nil else cons(n, upto(n - 1));"
        "def sum(xs) = if isnil(xs) then 0 else head(xs) + sum(tail(xs));"
        "def main() = sum(upto(100));",
        4, 6);
  EXPECT_EQ(r.run().as_int(), 5050);
}

TEST(Lists, InfiniteStreamTakeSum) {
  // from(1) is an infinite lazy stream; take-summing its first 10 elements
  // terminates because cons fields are unrequested until demanded.
  Rig r("def from(n) = cons(n, from(n + 1));"
        "def take_sum(k, xs) = if k == 0 then 0"
        "  else head(xs) + take_sum(k - 1, tail(xs));"
        "def main() = take_sum(10, from(1));",
        4, 7);
  EXPECT_EQ(r.run().as_int(), 55);
}

TEST(Lists, SharedListEvaluatedOnce) {
  Rig r("def upto(n) = if n == 0 then nil else cons(n, upto(n - 1));"
        "def sum(xs) = if isnil(xs) then 0 else head(xs) + sum(tail(xs));"
        "def main() = let xs = upto(30) in sum(xs) + sum(xs);",
        4, 8);
  EXPECT_EQ(r.run().as_int(), 2 * 465);
}

TEST(Lists, AppendAndNth) {
  Rig r("def append(a, b) = if isnil(a) then b"
        "  else cons(head(a), append(tail(a), b));"
        "def nth(k, xs) = if k == 0 then head(xs) else nth(k - 1, tail(xs));"
        "def upto(n) = if n == 0 then nil else cons(n, upto(n - 1));"
        "def main() = nth(4, append(upto(3), upto(5)));",
        4, 9);
  // append [3,2,1] [5,4,3,2,1] = [3,2,1,5,4,3,2,1]; nth(4) (0-based) = 4.
  EXPECT_EQ(r.run().as_int(), 4);
}

TEST(Lists, QuicksortMedian) {
  const char* src =
      "def smaller(p, xs) = if isnil(xs) then nil"
      "  else if head(xs) < p then cons(head(xs), smaller(p, tail(xs)))"
      "  else smaller(p, tail(xs));"
      "def geq(p, xs) = if isnil(xs) then nil"
      "  else if head(xs) < p then geq(p, tail(xs))"
      "  else cons(head(xs), geq(p, tail(xs)));"
      "def append(a, b) = if isnil(a) then b"
      "  else cons(head(a), append(tail(a), b));"
      "def qsort(xs) = if isnil(xs) then nil"
      "  else append(qsort(smaller(head(xs), tail(xs))),"
      "              cons(head(xs), qsort(geq(head(xs), tail(xs)))));"
      "def nth(k, xs) = if k == 0 then head(xs) else nth(k - 1, tail(xs));"
      // A scrambled sequence via a little LCG: x' = (5x + 3) % 16.
      "def gen(k, x) = if k == 0 then nil else cons(x, gen(k - 1, (5*x+3) % 16));"
      "def main() = nth(8, qsort(gen(16, 1)));";
  Rig r(src, 4, 10);
  // gen(16,1) cycles through all residues 1,8,11,… mod 16 (full-period LCG
  // would need c odd & a≡1 mod 4: a=5,c=3 gives period 16 → a permutation of
  // 0..15). Sorted, nth(8) (0-based) = 8.
  EXPECT_EQ(r.run().as_int(), 8);
}

// List workloads under continuous concurrent collection, seed-swept: the
// acquired-reference rescue machinery must keep every reachable cell alive.
class ListsUnderGc : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListsUnderGc, StreamSumCorrectWithContinuousCycles) {
  SimOptions sopt;
  sopt.check_invariants = true;
  sopt.invariant_period = 211;
  Rig r("def from(n) = cons(n, from(n + 1));"
        "def take_sum(k, xs) = if k == 0 then 0"
        "  else head(xs) + take_sum(k - 1, tail(xs));"
        "def main() = take_sum(40, from(1));",
        4, GetParam(), MachineOptions{}, sopt);
  std::uint64_t false_reports = 0;
  r.eng.controller().set_cycle_observer([&](const CycleResult& c) {
    if (c.deadlock_report_valid && !c.deadlocked.empty()) ++false_reports;
  });
  r.eng.controller().set_continuous(true);
  r.eng.controller().start_cycle();
  while (!r.machine.result_of(r.root).has_value()) {
    ASSERT_TRUE(r.eng.step()) << "wedged mid-stream";
  }
  r.eng.controller().set_continuous(false);
  r.eng.run(100'000'000);
  ASSERT_FALSE(r.machine.has_error()) << r.machine.error();
  EXPECT_EQ(r.machine.result_of(r.root)->as_int(), 820);
  EXPECT_EQ(false_reports, 0u);
  // Consumed stream prefix was collected while the program ran.
  EXPECT_GT(r.eng.controller().total_swept(), 40u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListsUnderGc,
                         ::testing::Range<std::uint64_t>(1, 21));

class QuicksortUnderGc : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuicksortUnderGc, SortSumInvariant) {
  SimOptions sopt;
  sopt.check_invariants = true;
  sopt.invariant_period = 509;
  Rig r("def smaller(p, xs) = if isnil(xs) then nil"
        "  else if head(xs) < p then cons(head(xs), smaller(p, tail(xs)))"
        "  else smaller(p, tail(xs));"
        "def geq(p, xs) = if isnil(xs) then nil"
        "  else if head(xs) < p then geq(p, tail(xs))"
        "  else cons(head(xs), geq(p, tail(xs)));"
        "def append(a, b) = if isnil(a) then b"
        "  else cons(head(a), append(tail(a), b));"
        "def qsort(xs) = if isnil(xs) then nil"
        "  else append(qsort(smaller(head(xs), tail(xs))),"
        "              cons(head(xs), qsort(geq(head(xs), tail(xs)))));"
        "def sum(xs) = if isnil(xs) then 0 else head(xs) + sum(tail(xs));"
        "def gen(k, x) = if k == 0 then nil"
        "  else cons(x, gen(k - 1, (5*x+3) % 16));"
        // Sorting preserves the multiset: sum(qsort(xs)) == sum(xs) == 0+..+15.
        "def main() = sum(qsort(gen(16, 1)));",
        4, GetParam(), MachineOptions{}, sopt);
  r.eng.controller().set_continuous(true);
  r.eng.controller().start_cycle();
  while (!r.machine.result_of(r.root).has_value()) {
    ASSERT_TRUE(r.eng.step());
  }
  r.eng.controller().set_continuous(false);
  r.eng.run(100'000'000);
  ASSERT_FALSE(r.machine.has_error()) << r.machine.error();
  EXPECT_EQ(r.machine.result_of(r.root)->as_int(), 120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuicksortUnderGc,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Lists, ReservedNamesRejected) {
  EXPECT_THROW(Program::from_source("def cons() = 1; def main() = 1;"),
               CompileError);
  EXPECT_THROW(Program::from_source("def main() = cons(1);"), CompileError);
}

}  // namespace
}  // namespace dgr
