// Program-corpus integration tests: every shipped .dgr example program runs
// to the expected answer — plain, under continuous tree-marker collection,
// and under the §6 compact collector — across scheduler seeds.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

namespace dgr {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "missing corpus file " << path
                        << " (run tests from the repo/build layout)";
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string corpus_dir() {
  // The build embeds the absolute source dir; relative fallbacks cover
  // running the binary by hand from odd working directories.
  for (const char* p : {DGR_SOURCE_DIR "/examples/programs/",
                        "../../examples/programs/", "../examples/programs/",
                        "examples/programs/"}) {
    std::ifstream probe(std::string(p) + "fib.dgr");
    if (probe.good()) return p;
  }
  return DGR_SOURCE_DIR "/examples/programs/";
}

struct Expected {
  const char* file;
  std::int64_t result;
};

// quicksort.dgr's answer depends on its LCG; deadlock.dgr wedges by design —
// both are exercised separately below.
const Expected kCorpus[] = {
    {"fib.dgr", 2584},   {"ackermann.dgr", 11}, {"primes.dgr", 15},
    {"gcd.dgr", 2107},   {"stream.dgr", 144},   {"collatz.dgr", 111},
};

enum class Mode { kPlain, kTreeGc, kCompactGc };

std::int64_t run_program(const std::string& src, Mode mode,
                         std::uint64_t seed) {
  Graph g(4);
  SimOptions sopt;
  sopt.seed = seed;
  SimEngine eng(g, sopt);
  Machine m(g, eng.mutator(), eng, Program::from_source(src));
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  m.demand(root);
  if (mode == Mode::kTreeGc) {
    eng.controller().set_continuous(true, CycleOptions{false});
    eng.controller().start_cycle(CycleOptions{false});
  }
  CompactCollector* cc = nullptr;
  if (mode == Mode::kCompactGc) {
    cc = &eng.enable_compact_collector();
    cc->set_root(root);
  }
  std::uint64_t guard = 0;
  while (!m.result_of(root).has_value()) {
    if (cc && cc->idle()) cc->start_cycle();
    if (!eng.step()) break;
    if (++guard > 300'000'000ull) break;
  }
  eng.controller().set_continuous(false);
  eng.run(300'000'000ull);
  EXPECT_FALSE(m.has_error()) << m.error();
  EXPECT_TRUE(m.result_of(root).has_value()) << "no result";
  return m.result_of(root) ? m.result_of(root)->as_int() : -1;
}

class CorpusTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CorpusTest, PlainAndUnderBothCollectors) {
  const auto [idx, seed] = GetParam();
  const Expected& e = kCorpus[idx];
  const std::string src = read_file(corpus_dir() + e.file);
  EXPECT_EQ(run_program(src, Mode::kPlain, seed), e.result) << e.file;
  EXPECT_EQ(run_program(src, Mode::kTreeGc, seed), e.result) << e.file;
  EXPECT_EQ(run_program(src, Mode::kCompactGc, seed), e.result) << e.file;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, CorpusTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(1u, 7u)));

TEST(Corpus, QuicksortSumInvariant) {
  // The sort must preserve the generated multiset: compare sum(qsort(gen))
  // against sum(gen) computed by a second program.
  const std::string qsrc = read_file(corpus_dir() + "quicksort.dgr");
  // Replace the final selector with a sum to get a checkable invariant.
  const std::string sum_sorted =
      qsrc.substr(0, qsrc.find("def main()")) +
      "def sum(xs) = if isnil(xs) then 0 else head(xs) + sum(tail(xs));"
      "def main() = sum(qsort(gen(20, 3)));";
  const std::string sum_plain =
      qsrc.substr(0, qsrc.find("def main()")) +
      "def sum(xs) = if isnil(xs) then 0 else head(xs) + sum(tail(xs));"
      "def main() = sum(gen(20, 3));";
  const std::int64_t a = run_program(sum_sorted, Mode::kTreeGc, 3);
  const std::int64_t b = run_program(sum_plain, Mode::kPlain, 3);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

TEST(Corpus, DeadlockProgramDetected) {
  const std::string src = read_file(corpus_dir() + "deadlock.dgr");
  Graph g(2);
  SimOptions sopt;
  sopt.seed = 5;
  SimEngine eng(g, sopt);
  Machine m(g, eng.mutator(), eng, Program::from_source(src));
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  m.demand(root);
  eng.run(10'000'000);
  EXPECT_TRUE(eng.quiescent());
  EXPECT_FALSE(m.result_of(root).has_value());
  eng.controller().start_cycle(CycleOptions{true});
  eng.run_until_cycle_done(10'000'000);
  EXPECT_EQ(eng.controller().last().deadlocked.size(), 1u);
}

}  // namespace
}  // namespace dgr
