// Socket-transport isolation tests (docs/CLUSTER.md): the frame codec under
// adversarial segmentation, and the hub's registration/reconnect discipline —
// everything below the engines, exercised without an engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/proto.h"
#include "net/socket.h"
#include "net/socket_hub.h"
#include "net/socket_transport.h"
#include "net/transport.h"

namespace dgr {
namespace {

NetFrame data_frame(PeId src, PeId dst, std::initializer_list<std::uint8_t> p) {
  NetFrame f;
  f.type = FrameType::kData;
  f.src = src;
  f.dst = dst;
  f.payload = p;
  return f;
}

// ---- FrameCodec: reassembly under every segmentation the kernel can dish. --

TEST(FrameCodec, RoundTripSingleFrame) {
  const NetFrame in = data_frame(3, 7, {1, 2, 3, 4, 5});
  const std::vector<std::uint8_t> wire = encode_frame(in);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + 5);

  FrameCodec c;
  NetFrame out;
  EXPECT_FALSE(c.next(out));  // nothing fed yet
  c.feed(wire.data(), wire.size());
  ASSERT_TRUE(c.next(out));
  EXPECT_EQ(out.type, FrameType::kData);
  EXPECT_EQ(out.src, 3u);
  EXPECT_EQ(out.dst, 7u);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_FALSE(c.next(out));
  EXPECT_EQ(c.partial_resumes(), 0u);  // one feed, no straddling
}

TEST(FrameCodec, ByteAtATimeReassembly) {
  // The hardest short-read schedule: every byte is its own read(). The codec
  // must surface exactly the original frames, counting the resumes.
  std::vector<std::uint8_t> wire;
  const NetFrame a = data_frame(0, 1, {0xaa, 0xbb});
  const NetFrame b = data_frame(1, 0, {});  // empty payload is legal
  NetFrame big;
  big.type = FrameType::kSeed;
  big.src = 2;
  big.dst = 3;
  big.payload.assign(4096, 0x5a);
  const NetFrame* frames[] = {&a, &b, &big};
  for (const NetFrame* f : frames) {
    const auto w = encode_frame(*f);
    wire.insert(wire.end(), w.begin(), w.end());
  }

  FrameCodec c;
  std::vector<NetFrame> got;
  for (std::uint8_t byte : wire) {
    c.feed(&byte, 1);
    NetFrame f;
    while (c.next(f)) got.push_back(std::move(f));
  }
  ASSERT_FALSE(c.error());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].payload, a.payload);
  EXPECT_TRUE(got[1].payload.empty());
  EXPECT_EQ(got[2].type, FrameType::kSeed);
  EXPECT_EQ(got[2].payload, big.payload);
  EXPECT_GT(c.partial_resumes(), 0u);
}

TEST(FrameCodec, ManyFramesInOneFeedPlusTail) {
  // Opposite schedule: one read carries N whole frames and half of the next;
  // the tail completes on the following feed.
  std::vector<std::uint8_t> wire;
  for (std::uint32_t i = 0; i < 16; ++i) {
    const auto w = encode_frame(data_frame(i, i + 1, {0x10, 0x20}));
    wire.insert(wire.end(), w.begin(), w.end());
  }
  const auto last = encode_frame(data_frame(99, 100, {7, 8, 9}));
  const std::size_t cut = last.size() / 2;
  wire.insert(wire.end(), last.begin(), last.begin() + cut);

  FrameCodec c;
  c.feed(wire.data(), wire.size());
  NetFrame f;
  int n = 0;
  while (c.next(f)) ++n;
  EXPECT_EQ(n, 16);
  c.feed(last.data() + cut, last.size() - cut);
  ASSERT_TRUE(c.next(f));
  EXPECT_EQ(f.src, 99u);
  EXPECT_EQ(f.payload.size(), 3u);
  EXPECT_GE(c.partial_resumes(), 1u);
}

TEST(FrameCodec, OversizedFrameIsStickyError) {
  NetFrame f = data_frame(0, 1, {});
  f.payload.assign(64, 0);
  auto wire = encode_frame(f);
  // Forge the length field past the cap (offset 16, u32 LE).
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(wire.data() + 16, &huge, 4);

  FrameCodec c;
  c.feed(wire.data(), wire.size());
  NetFrame out;
  EXPECT_FALSE(c.next(out));
  EXPECT_TRUE(c.error());
  EXPECT_EQ(c.oversized(), 1u);
  // Sticky: a valid frame fed afterwards must not resurrect the stream.
  const auto good = encode_frame(data_frame(1, 2, {1}));
  c.feed(good.data(), good.size());
  EXPECT_FALSE(c.next(out));
}

TEST(FrameCodec, GarbageMagicIsStickyError) {
  const std::uint8_t junk[] = {'H', 'T', 'T', 'P', '/', '1', '.', '1',
                               ' ', '2', '0', '0', ' ', 'O', 'K', '\r',
                               '\n', '\r', '\n', ' '};
  FrameCodec c;
  c.feed(junk, sizeof(junk));
  NetFrame out;
  EXPECT_FALSE(c.next(out));
  EXPECT_TRUE(c.error());
  EXPECT_STRNE(c.error_reason(), "");
}

TEST(FrameCodec, WrongVersionIsError) {
  auto wire = encode_frame(data_frame(0, 1, {1, 2}));
  wire[4] = kFrameVersion + 1;
  FrameCodec c;
  c.feed(wire.data(), wire.size());
  NetFrame out;
  EXPECT_FALSE(c.next(out));
  EXPECT_TRUE(c.error());
}

// ---- SocketHub: registration handshake, rejection, loss, reconnect. ----

class HubRig {
 public:
  explicit HubRig(std::uint32_t num_workers = 2, std::uint32_t pes_per = 2) {
    hub_.set_control_handler([](std::uint32_t, NetFrame) {});
    SocketAddr addr;
    EXPECT_TRUE(SocketAddr::parse("tcp:127.0.0.1:0", addr));
    const bool up =
        hub_.listen(addr, [num_workers, pes_per](const RegisterMsg& reg) {
          SocketHub::Decision d;
          if (reg.worker_index >= num_workers) {
            d.reject = RejectMsg{3, "worker index out of range"};
            return d;
          }
          d.accept = true;
          d.ack.worker_index = reg.worker_index;
          d.ack.num_workers = num_workers;
          d.ack.config.num_pes = num_workers * pes_per;
          d.ack.config.pe_begin = reg.worker_index * pes_per;
          d.ack.config.pe_count = pes_per;
          return d;
        });
    EXPECT_TRUE(up) << hub_.error();
  }

  SocketHub& hub() { return hub_; }

  Socket connect() {
    SocketAddr addr;
    EXPECT_TRUE(SocketAddr::parse(hub_.address(), addr));
    return socket_connect(addr, 2000);
  }

  // Register over `s`; returns the reply frame (ack or reject).
  static NetFrame do_register(Socket& s, std::uint32_t index,
                              std::uint32_t version = kProtoVersion,
                              std::uint32_t flags = 0) {
    RegisterMsg reg;
    reg.proto_version = version;
    reg.worker_index = index;
    reg.flags = flags;
    NetFrame rf;
    rf.type = FrameType::kRegister;
    rf.payload = encode_register(reg);
    const auto wire = encode_frame(rf);
    EXPECT_TRUE(s.write_all(wire.data(), wire.size()));
    return read_frame(s);
  }

  // Blockingly read one frame (zeroed kData frame on EOF).
  static NetFrame read_frame(Socket& s) {
    FrameCodec c;
    std::uint8_t buf[4096];
    NetFrame f;
    while (!c.next(f)) {
      const long n = s.read_some(buf, sizeof(buf));
      if (n <= 0 || c.error()) return NetFrame{};
      c.feed(buf, static_cast<std::size_t>(n));
    }
    return f;
  }

 private:
  SocketHub hub_;
};

TEST(SocketHub, RegistrationAckCarriesConfig) {
  HubRig rig;
  Socket s = rig.connect();
  ASSERT_TRUE(s.valid());
  const NetFrame reply = HubRig::do_register(s, 1);
  ASSERT_EQ(reply.type, FrameType::kRegisterAck);
  RegisterAckMsg ack;
  ASSERT_TRUE(decode_register_ack(reply.payload, ack));
  EXPECT_EQ(ack.worker_index, 1u);
  EXPECT_EQ(ack.config.pe_begin, 2u);
  EXPECT_EQ(ack.config.pe_count, 2u);
  EXPECT_TRUE(rig.hub().wait_workers(1, 1000));
}

TEST(SocketHub, PolicyRejectionIsDelivered) {
  HubRig rig(/*num_workers=*/2);
  Socket s = rig.connect();
  ASSERT_TRUE(s.valid());
  const NetFrame reply = HubRig::do_register(s, /*index=*/9);
  ASSERT_EQ(reply.type, FrameType::kReject);
  RejectMsg rej;
  ASSERT_TRUE(decode_reject(reply.payload, rej));
  EXPECT_EQ(rej.code, 3u);
  // The connection is closed after a rejection.
  std::uint8_t b;
  EXPECT_LE(s.read_some(&b, 1), 0);
  EXPECT_EQ(rig.hub().workers_connected(), 0u);
  EXPECT_EQ(rig.hub().stats().handshakes_rejected, 1u);
}

TEST(SocketHub, BadProtocolVersionRejected) {
  HubRig rig;
  Socket s = rig.connect();
  ASSERT_TRUE(s.valid());
  const NetFrame reply = HubRig::do_register(s, 0, /*version=*/99);
  ASSERT_EQ(reply.type, FrameType::kReject);
  RejectMsg rej;
  ASSERT_TRUE(decode_reject(reply.payload, rej));
  EXPECT_EQ(rej.code, 1u);
}

TEST(SocketHub, UnframedGarbageDropsConnection) {
  HubRig rig;
  Socket s = rig.connect();
  ASSERT_TRUE(s.valid());
  const char junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(s.write_all(junk, sizeof(junk)));
  std::uint8_t b;
  EXPECT_LE(s.read_some(&b, 1), 0);  // dropped without an ack
  // The drop is accounted as a rejected handshake (eventually: the reader
  // thread updates stats on exit).
  for (int i = 0; i < 200 && rig.hub().stats().handshakes_rejected == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(rig.hub().stats().handshakes_rejected, 1u);
  EXPECT_EQ(rig.hub().workers_connected(), 0u);
}

TEST(SocketHub, SlotConflictRejectedThenReconnectAfterDrop) {
  HubRig rig;
  Socket first = rig.connect();
  ASSERT_TRUE(first.valid());
  ASSERT_EQ(HubRig::do_register(first, 0).type, FrameType::kRegisterAck);

  // Same slot while the first connection is alive: refused, code 2.
  {
    Socket dup = rig.connect();
    ASSERT_TRUE(dup.valid());
    const NetFrame reply = HubRig::do_register(dup, 0);
    ASSERT_EQ(reply.type, FrameType::kReject);
    RejectMsg rej;
    ASSERT_TRUE(decode_reject(reply.payload, rej));
    EXPECT_EQ(rej.code, 2u);
  }
  EXPECT_EQ(rig.hub().workers_connected(), 1u);

  // Drop the first connection; the slot frees and a reconnect re-claims it.
  first.close();
  for (int i = 0; i < 200 && rig.hub().workers_connected() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(rig.hub().workers_connected(), 0u);

  Socket again = rig.connect();
  ASSERT_TRUE(again.valid());
  const NetFrame reply = HubRig::do_register(again, 0, kProtoVersion,
                                             kRegisterFlagReconnect);
  ASSERT_EQ(reply.type, FrameType::kRegisterAck);
  EXPECT_EQ(rig.hub().workers_connected(), 1u);
  EXPECT_EQ(rig.hub().stats().reconnects, 1u);
}

TEST(SocketHub, WorkerLostCallbackFires) {
  HubRig rig;
  std::atomic<int> lost{-1};
  rig.hub().set_worker_lost([&](std::uint32_t w) {
    lost.store(static_cast<int>(w));
  });
  Socket s = rig.connect();
  ASSERT_TRUE(s.valid());
  ASSERT_EQ(HubRig::do_register(s, 1).type, FrameType::kRegisterAck);
  s.close();
  for (int i = 0; i < 200 && lost.load() < 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(lost.load(), 1);
}

TEST(SocketHub, DataFramesRelayToEndpointOwner) {
  // Worker 0 owns PEs {0,1}, worker 1 owns {2,3}. A kData frame sent by
  // worker 0 toward PE 3 must come back out of worker 1's socket.
  HubRig rig;
  Socket w0 = rig.connect();
  Socket w1 = rig.connect();
  ASSERT_TRUE(w0.valid());
  ASSERT_TRUE(w1.valid());
  ASSERT_EQ(HubRig::do_register(w0, 0).type, FrameType::kRegisterAck);
  ASSERT_EQ(HubRig::do_register(w1, 1).type, FrameType::kRegisterAck);

  const NetFrame out = data_frame(1, 3, {0xde, 0xad});
  const auto wire = encode_frame(out);
  ASSERT_TRUE(w0.write_all(wire.data(), wire.size()));
  const NetFrame in = HubRig::read_frame(w1);
  EXPECT_EQ(in.type, FrameType::kData);
  EXPECT_EQ(in.src, 1u);
  EXPECT_EQ(in.dst, 3u);
  EXPECT_EQ(in.payload, out.payload);
}

// ---- Membership plumbing: forced drops, slot reclaim, ownership remap. ----

TEST(SocketHub, DropWorkerForcesPromptEofAndSlotReclaim) {
  // drop_worker is the watchdog's hammer for a silently wedged worker: the
  // hub shuts the connection down both ways, so the loss surfaces on the
  // SAME reader-EOF path a crashed process takes — promptly, not after a
  // network timeout.
  HubRig rig;
  std::atomic<int> lost{-1};
  rig.hub().set_worker_lost([&](std::uint32_t w) {
    lost.store(static_cast<int>(w));
  });
  Socket s = rig.connect();
  ASSERT_TRUE(s.valid());
  ASSERT_EQ(HubRig::do_register(s, 0).type, FrameType::kRegisterAck);
  ASSERT_TRUE(rig.hub().wait_workers(1, 1000));

  const auto t0 = std::chrono::steady_clock::now();
  rig.hub().drop_worker(0);
  // The dropped worker's blocking read unblocks with EOF...
  std::uint8_t b;
  EXPECT_LE(s.read_some(&b, 1), 0);
  const auto eof_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_LT(eof_ms, 2000) << "EOF took " << eof_ms << " ms — a drop must "
                          << "not wait on any timeout";
  // ...the lost callback names the dropped slot...
  for (int i = 0; i < 200 && lost.load() < 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(lost.load(), 0);
  // ...and the freed slot accepts a reconnect.
  for (int i = 0; i < 200 && rig.hub().workers_connected() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(rig.hub().workers_connected(), 0u);
  Socket again = rig.connect();
  ASSERT_TRUE(again.valid());
  EXPECT_EQ(HubRig::do_register(again, 0, kProtoVersion,
                                kRegisterFlagReconnect)
                .type,
            FrameType::kRegisterAck);
  EXPECT_EQ(rig.hub().workers_connected(), 1u);
}

TEST(SocketHub, EndpointOwnerRemapReroutesRelay) {
  // Repartition-on-survivors in miniature: PE 3 starts at worker 1; after
  // set_endpoint_owner(3, 0) the same kData frame comes out of worker 0's
  // socket instead.
  HubRig rig;
  Socket w0 = rig.connect();
  Socket w1 = rig.connect();
  ASSERT_TRUE(w0.valid());
  ASSERT_TRUE(w1.valid());
  ASSERT_EQ(HubRig::do_register(w0, 0).type, FrameType::kRegisterAck);
  ASSERT_EQ(HubRig::do_register(w1, 1).type, FrameType::kRegisterAck);

  const NetFrame before = data_frame(1, 3, {0x01});
  auto wire = encode_frame(before);
  ASSERT_TRUE(w0.write_all(wire.data(), wire.size()));
  EXPECT_EQ(HubRig::read_frame(w1).payload, before.payload);

  rig.hub().set_endpoint_owner(3, 0);
  const NetFrame after = data_frame(2, 3, {0x02});
  wire = encode_frame(after);
  ASSERT_TRUE(w1.write_all(wire.data(), wire.size()));
  const NetFrame in = HubRig::read_frame(w0);
  EXPECT_EQ(in.type, FrameType::kData);
  EXPECT_EQ(in.dst, 3u);
  EXPECT_EQ(in.payload, after.payload);
}

TEST(SocketHub, FencedSlotRejectsReRegistration) {
  // The engine-side policy after a membership fence: a slot whose owner was
  // declared dead refuses re-registration (code 4) — its partition already
  // moved, and a zombie replica writing marks for it would break the
  // single-owner invariant. Modeled here with the same policy shape
  // ProcEngine installs.
  std::atomic<std::uint64_t> dead_mask{0};
  SocketHub hub;
  hub.set_control_handler([](std::uint32_t, NetFrame) {});
  SocketAddr addr;
  ASSERT_TRUE(SocketAddr::parse("tcp:127.0.0.1:0", addr));
  ASSERT_TRUE(hub.listen(addr, [&](const RegisterMsg& reg) {
    SocketHub::Decision d;
    if (reg.worker_index >= 2) {
      d.reject = RejectMsg{3, "worker index out of range"};
      return d;
    }
    if (dead_mask.load() & (1ull << reg.worker_index)) {
      d.reject = RejectMsg{4, "worker slot fenced after loss"};
      return d;
    }
    d.accept = true;
    d.ack.worker_index = reg.worker_index;
    d.ack.num_workers = 2;
    d.ack.config.num_pes = 4;
    d.ack.config.pe_begin = reg.worker_index * 2;
    d.ack.config.pe_count = 2;
    return d;
  }))
      << hub.error();

  auto dial = [&] {
    SocketAddr a;
    EXPECT_TRUE(SocketAddr::parse(hub.address(), a));
    return socket_connect(a, 2000);
  };

  Socket s = dial();
  ASSERT_TRUE(s.valid());
  ASSERT_EQ(HubRig::do_register(s, 1).type, FrameType::kRegisterAck);

  // The worker "dies" and the controller fences its generation.
  s.close();
  for (int i = 0; i < 200 && hub.workers_connected() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dead_mask.store(1ull << 1);

  // Pre-fence traffic hitting the slot again — even with the reconnect
  // flag — is refused with the fence code.
  Socket again = dial();
  ASSERT_TRUE(again.valid());
  const NetFrame reply = HubRig::do_register(again, 1, kProtoVersion,
                                             kRegisterFlagReconnect);
  ASSERT_EQ(reply.type, FrameType::kReject);
  RejectMsg rej;
  ASSERT_TRUE(decode_reject(reply.payload, rej));
  EXPECT_EQ(rej.code, 4u);
  // A different (live) slot still registers fine.
  Socket other = dial();
  ASSERT_TRUE(other.valid());
  EXPECT_EQ(HubRig::do_register(other, 0).type, FrameType::kRegisterAck);
}

// ---- SocketTransport: the Transport contract over real sockets. ----

class SocketTransportKinds
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SocketTransportKinds, FifoPerPairAndBatch) {
  SocketTransport t(4, GetParam());
  ASSERT_TRUE(t.ok()) << t.error();
  EXPECT_EQ(t.endpoints(), 4u);

  for (std::uint8_t i = 0; i < 50; ++i) t.send(0, 2, {i});
  std::vector<Transport::Bytes> batch;
  for (std::uint8_t i = 50; i < 60; ++i) batch.push_back({i});
  t.send_batch(1, 2, std::move(batch));

  std::vector<Transport::Bytes> got;
  while (got.size() < 60)
    t.drain_wait(2, 64, got, /*timeout_us=*/1000);
  // Per-pair FIFO: 0→2 bytes ascend, and so do 1→2's, independently.
  std::uint8_t last_a = 0, last_b = 49;
  for (const auto& m : got) {
    ASSERT_EQ(m.size(), 1u);
    if (m[0] < 50) {
      EXPECT_GE(m[0], last_a);
      last_a = m[0];
    } else {
      EXPECT_GT(m[0], last_b);
      last_b = m[0];
    }
  }
  const TransportStats s = t.stats();
  EXPECT_GE(s.frames_sent, 60u);
  EXPECT_EQ(s.connects, 4u);
  t.close();
}

INSTANTIATE_TEST_SUITE_P(Addrs, SocketTransportKinds,
                         ::testing::Values("", "tcp:127.0.0.1:0"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return i.index == 0 ? "uds" : "tcp";
                         });

}  // namespace
}  // namespace dgr
