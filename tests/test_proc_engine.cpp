// ProcEngine end-to-end: real dgr_worker processes over sockets, held to the
// sequential Oracle cycle after cycle (docs/CLUSTER.md walks the protocol).
// The worker binary resolves via $DGR_WORKER_BIN (set by ctest) or PATH.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "runtime/proc_engine.h"
#include "util/rng.h"

namespace dgr {
namespace {

Graph make_presized(std::uint32_t pes, std::uint32_t cap) {
  Graph g(pes, cap);
  for (PeId pe = 0; pe < pes; ++pe) g.store(pe).set_fixed_capacity(true);
  return g;
}

struct RigParams {
  std::uint64_t seed = 3;
  std::uint32_t pes = 4;
  std::uint32_t capacity = 900;
  std::uint32_t vertices = 500;
  std::uint32_t tasks = 12;
  // Arm controller + worker trace rings before start() (no-op when tracing
  // is compiled out; the telemetry counters flow regardless).
  bool trace = false;
  std::size_t trace_capacity = 1 << 14;
};

class ProcRig {
 public:
  ProcRig(const RigParams& rp, ProcOptions popt)
      : g_(make_presized(rp.pes, rp.capacity)), rng_(rp.seed * 31 + 7) {
    RandomGraphOptions opt;
    opt.num_vertices = rp.vertices;
    opt.seed = rp.seed;
    opt.num_tasks = rp.tasks;
    opt.p_detached = 0.3;
    b_ = build_random_graph(g_, opt);
    eng_ = std::make_unique<ProcEngine>(g_, popt);
    eng_->set_root(b_.root);
    if (rp.trace) eng_->enable_trace(rp.trace_capacity);
    for (const TaskRef& t : b_.tasks)
      eng_->inject(Task::request(t.s, t.d, ReqKind::kVital));
    eng_->start();
  }

  ~ProcRig() { eng_->stop(); }

  Graph& g() { return g_; }
  ProcEngine& eng() { return *eng_; }
  VertexId root() const { return b_.root; }

  // Mutate a little so consecutive cycles see different reachability.
  void churn(int ops) {
    for (int i = 0; i < ops; ++i) {
      VertexId v = b_.root;
      for (std::uint64_t j = rng_.below(8); j > 0; --j) {
        const Vertex& vx = g_.at(v);
        if (vx.args.empty()) break;
        const VertexId nxt = vx.args[rng_.below(vx.args.size())].to;
        if (!nxt.valid() || g_.is_free(nxt)) break;
        v = nxt;
      }
      const Vertex& vv = g_.at(v);
      if (vv.args.empty()) continue;
      const VertexId tgt = vv.args[rng_.below(vv.args.size())].to;
      eng_->atomically({v, tgt},
                       [&] { eng_->mutator().delete_reference(v, tgt); });
    }
  }

  // One marking cycle, checked vertex-for-vertex against the Oracle.
  void cycle_checked(bool detect_deadlock, int round) {
    std::vector<TaskRef> refs;
    eng_->collect_task_refs(refs);
    Oracle o(g_, b_.root, refs);
    std::size_t irrelevant = 0;
    for (const TaskRef& t : refs)
      if (o.classify(t) == TaskClass::kIrrelevant) ++irrelevant;

    CycleOptions copt;
    copt.detect_deadlock = detect_deadlock;
    eng_->controller().start_cycle(copt);
    eng_->wait_cycle_done();
    ASSERT_FALSE(eng_->failed()) << "worker died in round " << round;

    const CycleResult& res = eng_->controller().last();
    EXPECT_EQ(res.swept, o.count_GAR()) << "round " << round;
    EXPECT_EQ(res.expunged, irrelevant) << "round " << round;
    if (detect_deadlock) {
      EXPECT_TRUE(res.deadlock_report_valid) << "round " << round;
      std::vector<VertexId> got = res.deadlocked;
      std::vector<VertexId> want = o.members_DLv();
      auto less = [](VertexId a, VertexId b) {
        return a.pe != b.pe ? a.pe < b.pe : a.idx < b.idx;
      };
      std::sort(got.begin(), got.end(), less);
      std::sort(want.begin(), want.end(), less);
      EXPECT_EQ(got, want) << "DL'_v mismatch in round " << round;
    }
    g_.for_each_live([&](VertexId v) {
      EXPECT_EQ(eng_->marker().is_marked(Plane::kR, v), o.in_R(v))
          << "R mark of (" << v.pe << "," << v.idx << ") round " << round;
      EXPECT_EQ(eng_->marker().prior(Plane::kR, v), o.prior_at(v))
          << "priority of (" << v.pe << "," << v.idx << ") round " << round;
      if (detect_deadlock) {
        EXPECT_EQ(eng_->marker().is_marked(Plane::kT, v), o.in_T(v))
            << "T mark of (" << v.pe << "," << v.idx << ") round " << round;
      }
    });
  }

 private:
  Graph g_;
  Rng rng_;
  BuiltGraph b_;
  std::unique_ptr<ProcEngine> eng_;
};

TEST(ProcEngine, TwoWorkersMatchOracleAcrossCycles) {
  RigParams rp;
  ProcOptions popt;
  popt.workers = 2;
  ProcRig rig(rp, popt);
  rig.eng().controller().set_paranoid_sweep_check(true);
  rig.eng().enable_audit();
  for (int round = 0; round < 3; ++round) {
    rig.cycle_checked(/*detect_deadlock=*/round % 2 == 0, round);
    if (::testing::Test::HasFatalFailure()) return;
    rig.churn(6);
  }
  // The safe-point audits ran inside the restructuring window and all held.
  EXPECT_GT(rig.eng().audit_stats().audits, 0u);
  EXPECT_EQ(rig.eng().audit_stats().violations, 0u)
      << rig.eng().audit_stats().last_what;
  // Protocol accounting: every plane shipped one handoff per worker and the
  // waves really crossed the wire.
  const ProcEngineStats s = rig.eng().stats();
  EXPECT_EQ(s.handoffs_sent, s.planes_started * rig.eng().num_workers());
  EXPECT_GT(s.handoff_bytes, 0u);
  EXPECT_GT(s.seeds_sent, 0u);
  EXPECT_EQ(s.reports_merged,
            (s.planes_started + s.rescue_begins) * rig.eng().num_workers());
  EXPECT_GT(s.transport.frames_received, 0u);
}

TEST(ProcEngine, FourWorkersOverTcp) {
  RigParams rp;
  rp.seed = 11;
  ProcOptions popt;
  popt.workers = 4;  // one PE each
  popt.tcp = true;
  ProcRig rig(rp, popt);
  for (int round = 0; round < 2; ++round) {
    rig.cycle_checked(/*detect_deadlock=*/round == 0, round);
    if (::testing::Test::HasFatalFailure()) return;
    rig.churn(4);
  }
  EXPECT_EQ(rig.eng().num_workers(), 4u);
}

TEST(ProcEngine, SingleWorkerDegenerateCase) {
  RigParams rp;
  rp.seed = 5;
  rp.vertices = 200;
  rp.capacity = 400;
  ProcOptions popt;
  popt.workers = 1;  // every PE on one worker: no relay traffic at all
  ProcRig rig(rp, popt);
  rig.cycle_checked(/*detect_deadlock=*/true, 0);
}

TEST(ProcEngine, FaultedWorkerChannelStillExact) {
  // The worker-side fault plane drops/dups/reorders worker<->worker mark
  // traffic; the reliable channel must make it invisible — the merged marks
  // still match the Oracle exactly. Fault-plane-over-socket composition per
  // docs/FAULTS.md.
  RigParams rp;
  rp.seed = 21;
  ProcOptions popt;
  popt.workers = 2;
  popt.fault_seed = 77;
  popt.faults.drop = 0.10;
  popt.faults.duplicate = 0.10;
  popt.faults.reorder = 0.20;
  popt.reliable.rto_initial_us = 300;
  ProcRig rig(rp, popt);
  rig.eng().controller().set_paranoid_sweep_check(true);
  for (int round = 0; round < 3; ++round) {
    rig.cycle_checked(/*detect_deadlock=*/round == 1, round);
    if (::testing::Test::HasFatalFailure()) return;
    rig.churn(5);
  }
}

TEST(ProcEngine, RescueWaveCrossesProcessBoundary) {
  // Queue a rescue for a root-unreachable vertex while the R wave is in
  // flight on the workers: the controller must reopen the plane
  // (kRescueBegin), replicate the freshly minted rescue root, and the
  // supplementary wave's marks must come back in the next report merge.
  RigParams rp;
  rp.seed = 9;
  ProcOptions popt;
  popt.workers = 2;
  ProcRig rig(rp, popt);
  rig.eng().controller().set_paranoid_sweep_check(true);

  bool rescued = false;
  for (int attempt = 0; attempt < 20 && !rescued; ++attempt) {
    // A live non-aux vertex the root cannot reach (fresh garbage works too —
    // churn keeps producing it).
    Oracle pre(rig.g(), rig.root(), {});
    VertexId target = VertexId::invalid();
    rig.g().for_each_live([&](VertexId v) {
      if (!target.valid() && !rig.g().at(v).aux && !pre.in_R(v))
        target = v;
    });
    if (!target.valid()) {
      rig.churn(4);
      continue;
    }
    const std::uint64_t waves_before =
        rig.eng().marker().rescue_waves(Plane::kR);
    CycleOptions copt;
    copt.detect_deadlock = false;
    rig.eng().controller().start_cycle(copt);
    // Race the wave: if it already terminated, rescue() no-ops and we retry.
    rig.eng().atomically({target}, [&] {
      rig.eng().marker().rescue(Plane::kR, target, /*prior=*/1);
    });
    rig.eng().wait_cycle_done();
    ASSERT_FALSE(rig.eng().failed());
    if (rig.eng().marker().rescue_waves(Plane::kR) > waves_before) {
      rescued = true;
      // The rescue wave marked the unreachable target, so the sweep that
      // just ran spared it: rescued garbage survives until the next cycle.
      EXPECT_TRUE(rig.eng().marker().is_marked(Plane::kR, target));
      EXPECT_TRUE(rig.g().at(target).live);
      EXPECT_GT(rig.eng().stats().rescue_begins, 0u);
    }
  }
  EXPECT_TRUE(rescued)
      << "no attempt landed a rescue inside an in-flight wave";
}

// ---- Cluster telemetry plane (PR 8) ----------------------------------------

// Every "key": value occurrence in a JSON string, in document order.
std::vector<std::uint64_t> scan_all_u64(const std::string& json,
                                        const std::string& key) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  const std::string pat = "\"" + key + "\":";
  while ((pos = json.find(pat, pos)) != std::string::npos) {
    pos += pat.size();
    out.push_back(std::strtoull(json.c_str() + pos, nullptr, 10));
  }
  return out;
}

TEST(ProcTelemetry, CountersAgreeWithMergedMarkReports) {
  // The telemetry plane (counter deltas at every quiesce) and the mark-report
  // merge are independent paths over the same execution: the merged registry
  // totals must agree exactly with the wave stats the controller merged.
  RigParams rp;
  ProcOptions popt;
  popt.workers = 2;
  ProcRig rig(rp, popt);
  CycleOptions copt;
  copt.detect_deadlock = true;  // exercise both planes in one wave
  rig.eng().controller().start_cycle(copt);
  rig.eng().wait_cycle_done();
  ASSERT_FALSE(rig.eng().failed());

  const obs::MetricsRegistry& reg = rig.eng().metrics();
  const MarkStats& mr = rig.eng().marker().stats(Plane::kR);
  const MarkStats& mt = rig.eng().marker().stats(Plane::kT);
  const std::uint64_t reported_marks =
      mr.marks.load(std::memory_order_relaxed) +
      mt.marks.load(std::memory_order_relaxed);
  const std::uint64_t reported_returns =
      mr.returns.load(std::memory_order_relaxed) +
      mt.returns.load(std::memory_order_relaxed);
  EXPECT_GT(reported_marks, 0u);
  EXPECT_EQ(reg.total(obs::Counter::kMarkTasks), reported_marks);
  EXPECT_EQ(reg.total(obs::Counter::kReturnTasks), reported_returns);
  // Controller-side accounting rides the same registry.
  EXPECT_EQ(reg.total(obs::Counter::kHandoffBytes),
            rig.eng().stats().handoff_bytes);
  EXPECT_EQ(reg.total(obs::Counter::kTelemetryDropped), 0u);
}

TEST(ProcTelemetry, EveryWorkerReportsEveryPlane) {
  RigParams rp;
  rp.seed = 13;
  ProcOptions popt;
  popt.workers = 2;
  ProcRig rig(rp, popt);
  for (int round = 0; round < 3; ++round) {
    CycleOptions copt;
    copt.detect_deadlock = round == 1;
    rig.eng().controller().start_cycle(copt);
    rig.eng().wait_cycle_done();
    ASSERT_FALSE(rig.eng().failed());
    rig.churn(4);
  }
  const ProcEngineStats s = rig.eng().stats();
  const std::string full = rig.eng().cluster_metrics_json();
  // Scope the scans to the worker rollup: the registry's own totals/per-PE
  // blocks reuse counter names like telemetry_msgs.
  const std::size_t rollup = full.find("\"workers\":[");
  ASSERT_NE(rollup, std::string::npos) << full;
  const std::string json = full.substr(rollup);
  // One rollup row per worker.
  const std::vector<std::uint64_t> workers = scan_all_u64(json, "worker");
  ASSERT_EQ(workers.size(), 2u) << json;
  // Each worker shipped one telemetry payload per quiesce barrier — every
  // plane begin (and rescue reopen) ends in exactly one.
  const std::vector<std::uint64_t> tmsgs =
      scan_all_u64(json, "telemetry_msgs");
  ASSERT_EQ(tmsgs.size(), 2u);
  EXPECT_EQ(tmsgs[0], s.planes_started + s.rescue_begins);
  EXPECT_EQ(tmsgs[1], tmsgs[0]);
  // Rows partition the registry: per-worker marks sum to the merged total.
  // ("marks" as a key appears only in worker rows; the registry counter is
  // named "mark_tasks".)
  const std::vector<std::uint64_t> marks = scan_all_u64(json, "marks");
  ASSERT_EQ(marks.size(), 2u) << json;
  EXPECT_EQ(marks[0] + marks[1],
            rig.eng().metrics().total(obs::Counter::kMarkTasks));
  // Nothing dropped, and the drops field is present and zero.
  const std::vector<std::uint64_t> drops =
      scan_all_u64(json, "telemetry_dropped");
  ASSERT_GE(drops.size(), 2u);
  for (std::uint64_t d : drops) EXPECT_EQ(d, 0u);
  // At least one clock echo folded in per worker (probed at registration and
  // at every plane begin).
  EXPECT_GT(rig.eng().clock_samples(0), 0u);
  EXPECT_GT(rig.eng().clock_samples(1), 0u);
}

#if DGR_TRACE_ENABLED
// Lane projection that ignores wall-clock: the behavioral part of a worker's
// trace (event kinds, planes, PE attribution, cumulative mark counts) is
// deterministic for a given seed even though timestamps never are.
std::vector<std::tuple<obs::EventType, Plane, std::uint16_t, std::uint64_t>>
project(const std::vector<obs::TraceEvent>& ev) {
  std::vector<std::tuple<obs::EventType, Plane, std::uint16_t, std::uint64_t>>
      out;
  for (const obs::TraceEvent& e : ev)
    out.emplace_back(e.type, e.plane, e.pe, e.a);
  return out;
}

TEST(ProcTelemetry, GoldenMergedTraceIsDeterministicPerSeed) {
  RigParams rp;
  rp.seed = 17;
  rp.trace = true;
  ProcOptions popt;
  popt.workers = 2;

  auto run = [&] {
    ProcRig rig(rp, popt);
    for (int round = 0; round < 2; ++round) {
      rig.eng().controller().start_cycle(CycleOptions{false});
      rig.eng().wait_cycle_done();
    }
    EXPECT_FALSE(rig.eng().failed());
    return rig.eng().worker_traces();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::uint32_t w = 0; w < 2; ++w) {
    // Every worker lane has at least the per-quiesce wave-front stamps.
    EXPECT_GE(a[w].size(), 2u) << "worker " << w;
    EXPECT_EQ(project(a[w]), project(b[w])) << "worker " << w;
    // Rebased lanes stay monotone.
    for (std::size_t i = 1; i < a[w].size(); ++i)
      EXPECT_GE(a[w][i].ts, a[w][i - 1].ts) << "worker " << w << " ev " << i;
  }
}

TEST(ProcTelemetry, TinyRingSurfacesDropAccounting) {
  // A 2-slot worker ring cannot hold a wave's worth of events: the overflow
  // must surface as ring_dropped -> kTelemetryDropped counters, a kTraceDrop
  // event in the merged lane, and a nonzero rollup field — never silently.
  RigParams rp;
  rp.seed = 19;
  rp.trace = true;
  rp.trace_capacity = 2;
  ProcOptions popt;
  popt.workers = 2;
  ProcRig rig(rp, popt);
  rig.eng().controller().start_cycle(CycleOptions{false});
  rig.eng().wait_cycle_done();
  ASSERT_FALSE(rig.eng().failed());

  EXPECT_GT(rig.eng().metrics().total(obs::Counter::kTelemetryDropped), 0u);
  const auto lanes = rig.eng().worker_traces();
  bool saw_drop_event = false;
  std::uint64_t drop_sum = 0;
  for (const auto& lane : lanes)
    for (const obs::TraceEvent& e : lane)
      if (e.type == obs::EventType::kTraceDrop) {
        saw_drop_event = true;
        drop_sum += e.a + e.b;
      }
  EXPECT_TRUE(saw_drop_event);
  EXPECT_EQ(drop_sum,
            rig.eng().metrics().total(obs::Counter::kTelemetryDropped));
  const std::string json = rig.eng().cluster_metrics_json();
  std::uint64_t rollup_drops = 0;
  for (std::uint64_t d : scan_all_u64(json, "telemetry_dropped"))
    rollup_drops += d;
  // The rollup rows and the per-PE registry double-book the same loss; each
  // worker row must account for what its lane lost.
  EXPECT_GE(rollup_drops, drop_sum);
}
#endif  // DGR_TRACE_ENABLED

}  // namespace
}  // namespace dgr
