// ProcEngine end-to-end: real dgr_worker processes over sockets, held to the
// sequential Oracle cycle after cycle (docs/CLUSTER.md walks the protocol).
// The worker binary resolves via $DGR_WORKER_BIN (set by ctest) or PATH.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "runtime/proc_engine.h"
#include "util/rng.h"

namespace dgr {
namespace {

Graph make_presized(std::uint32_t pes, std::uint32_t cap) {
  Graph g(pes, cap);
  for (PeId pe = 0; pe < pes; ++pe) g.store(pe).set_fixed_capacity(true);
  return g;
}

struct RigParams {
  std::uint64_t seed = 3;
  std::uint32_t pes = 4;
  std::uint32_t capacity = 900;
  std::uint32_t vertices = 500;
  std::uint32_t tasks = 12;
};

class ProcRig {
 public:
  ProcRig(const RigParams& rp, ProcOptions popt)
      : g_(make_presized(rp.pes, rp.capacity)), rng_(rp.seed * 31 + 7) {
    RandomGraphOptions opt;
    opt.num_vertices = rp.vertices;
    opt.seed = rp.seed;
    opt.num_tasks = rp.tasks;
    opt.p_detached = 0.3;
    b_ = build_random_graph(g_, opt);
    eng_ = std::make_unique<ProcEngine>(g_, popt);
    eng_->set_root(b_.root);
    for (const TaskRef& t : b_.tasks)
      eng_->inject(Task::request(t.s, t.d, ReqKind::kVital));
    eng_->start();
  }

  ~ProcRig() { eng_->stop(); }

  Graph& g() { return g_; }
  ProcEngine& eng() { return *eng_; }
  VertexId root() const { return b_.root; }

  // Mutate a little so consecutive cycles see different reachability.
  void churn(int ops) {
    for (int i = 0; i < ops; ++i) {
      VertexId v = b_.root;
      for (std::uint64_t j = rng_.below(8); j > 0; --j) {
        const Vertex& vx = g_.at(v);
        if (vx.args.empty()) break;
        const VertexId nxt = vx.args[rng_.below(vx.args.size())].to;
        if (!nxt.valid() || g_.is_free(nxt)) break;
        v = nxt;
      }
      const Vertex& vv = g_.at(v);
      if (vv.args.empty()) continue;
      const VertexId tgt = vv.args[rng_.below(vv.args.size())].to;
      eng_->atomically({v, tgt},
                       [&] { eng_->mutator().delete_reference(v, tgt); });
    }
  }

  // One marking cycle, checked vertex-for-vertex against the Oracle.
  void cycle_checked(bool detect_deadlock, int round) {
    std::vector<TaskRef> refs;
    eng_->collect_task_refs(refs);
    Oracle o(g_, b_.root, refs);
    std::size_t irrelevant = 0;
    for (const TaskRef& t : refs)
      if (o.classify(t) == TaskClass::kIrrelevant) ++irrelevant;

    CycleOptions copt;
    copt.detect_deadlock = detect_deadlock;
    eng_->controller().start_cycle(copt);
    eng_->wait_cycle_done();
    ASSERT_FALSE(eng_->failed()) << "worker died in round " << round;

    const CycleResult& res = eng_->controller().last();
    EXPECT_EQ(res.swept, o.count_GAR()) << "round " << round;
    EXPECT_EQ(res.expunged, irrelevant) << "round " << round;
    if (detect_deadlock) {
      EXPECT_TRUE(res.deadlock_report_valid) << "round " << round;
      std::vector<VertexId> got = res.deadlocked;
      std::vector<VertexId> want = o.members_DLv();
      auto less = [](VertexId a, VertexId b) {
        return a.pe != b.pe ? a.pe < b.pe : a.idx < b.idx;
      };
      std::sort(got.begin(), got.end(), less);
      std::sort(want.begin(), want.end(), less);
      EXPECT_EQ(got, want) << "DL'_v mismatch in round " << round;
    }
    g_.for_each_live([&](VertexId v) {
      EXPECT_EQ(eng_->marker().is_marked(Plane::kR, v), o.in_R(v))
          << "R mark of (" << v.pe << "," << v.idx << ") round " << round;
      EXPECT_EQ(eng_->marker().prior(Plane::kR, v), o.prior_at(v))
          << "priority of (" << v.pe << "," << v.idx << ") round " << round;
      if (detect_deadlock) {
        EXPECT_EQ(eng_->marker().is_marked(Plane::kT, v), o.in_T(v))
            << "T mark of (" << v.pe << "," << v.idx << ") round " << round;
      }
    });
  }

 private:
  Graph g_;
  Rng rng_;
  BuiltGraph b_;
  std::unique_ptr<ProcEngine> eng_;
};

TEST(ProcEngine, TwoWorkersMatchOracleAcrossCycles) {
  RigParams rp;
  ProcOptions popt;
  popt.workers = 2;
  ProcRig rig(rp, popt);
  rig.eng().controller().set_paranoid_sweep_check(true);
  rig.eng().enable_audit();
  for (int round = 0; round < 3; ++round) {
    rig.cycle_checked(/*detect_deadlock=*/round % 2 == 0, round);
    if (::testing::Test::HasFatalFailure()) return;
    rig.churn(6);
  }
  // The safe-point audits ran inside the restructuring window and all held.
  EXPECT_GT(rig.eng().audit_stats().audits, 0u);
  EXPECT_EQ(rig.eng().audit_stats().violations, 0u)
      << rig.eng().audit_stats().last_what;
  // Protocol accounting: every plane shipped one handoff per worker and the
  // waves really crossed the wire.
  const ProcEngineStats s = rig.eng().stats();
  EXPECT_EQ(s.handoffs_sent, s.planes_started * rig.eng().num_workers());
  EXPECT_GT(s.handoff_bytes, 0u);
  EXPECT_GT(s.seeds_sent, 0u);
  EXPECT_EQ(s.reports_merged,
            (s.planes_started + s.rescue_begins) * rig.eng().num_workers());
  EXPECT_GT(s.transport.frames_received, 0u);
}

TEST(ProcEngine, FourWorkersOverTcp) {
  RigParams rp;
  rp.seed = 11;
  ProcOptions popt;
  popt.workers = 4;  // one PE each
  popt.tcp = true;
  ProcRig rig(rp, popt);
  for (int round = 0; round < 2; ++round) {
    rig.cycle_checked(/*detect_deadlock=*/round == 0, round);
    if (::testing::Test::HasFatalFailure()) return;
    rig.churn(4);
  }
  EXPECT_EQ(rig.eng().num_workers(), 4u);
}

TEST(ProcEngine, SingleWorkerDegenerateCase) {
  RigParams rp;
  rp.seed = 5;
  rp.vertices = 200;
  rp.capacity = 400;
  ProcOptions popt;
  popt.workers = 1;  // every PE on one worker: no relay traffic at all
  ProcRig rig(rp, popt);
  rig.cycle_checked(/*detect_deadlock=*/true, 0);
}

TEST(ProcEngine, FaultedWorkerChannelStillExact) {
  // The worker-side fault plane drops/dups/reorders worker<->worker mark
  // traffic; the reliable channel must make it invisible — the merged marks
  // still match the Oracle exactly. Fault-plane-over-socket composition per
  // docs/FAULTS.md.
  RigParams rp;
  rp.seed = 21;
  ProcOptions popt;
  popt.workers = 2;
  popt.fault_seed = 77;
  popt.faults.drop = 0.10;
  popt.faults.duplicate = 0.10;
  popt.faults.reorder = 0.20;
  popt.reliable.rto_initial_us = 300;
  ProcRig rig(rp, popt);
  rig.eng().controller().set_paranoid_sweep_check(true);
  for (int round = 0; round < 3; ++round) {
    rig.cycle_checked(/*detect_deadlock=*/round == 1, round);
    if (::testing::Test::HasFatalFailure()) return;
    rig.churn(5);
  }
}

TEST(ProcEngine, RescueWaveCrossesProcessBoundary) {
  // Queue a rescue for a root-unreachable vertex while the R wave is in
  // flight on the workers: the controller must reopen the plane
  // (kRescueBegin), replicate the freshly minted rescue root, and the
  // supplementary wave's marks must come back in the next report merge.
  RigParams rp;
  rp.seed = 9;
  ProcOptions popt;
  popt.workers = 2;
  ProcRig rig(rp, popt);
  rig.eng().controller().set_paranoid_sweep_check(true);

  bool rescued = false;
  for (int attempt = 0; attempt < 20 && !rescued; ++attempt) {
    // A live non-aux vertex the root cannot reach (fresh garbage works too —
    // churn keeps producing it).
    Oracle pre(rig.g(), rig.root(), {});
    VertexId target = VertexId::invalid();
    rig.g().for_each_live([&](VertexId v) {
      if (!target.valid() && !rig.g().at(v).aux && !pre.in_R(v))
        target = v;
    });
    if (!target.valid()) {
      rig.churn(4);
      continue;
    }
    const std::uint64_t waves_before =
        rig.eng().marker().rescue_waves(Plane::kR);
    CycleOptions copt;
    copt.detect_deadlock = false;
    rig.eng().controller().start_cycle(copt);
    // Race the wave: if it already terminated, rescue() no-ops and we retry.
    rig.eng().atomically({target}, [&] {
      rig.eng().marker().rescue(Plane::kR, target, /*prior=*/1);
    });
    rig.eng().wait_cycle_done();
    ASSERT_FALSE(rig.eng().failed());
    if (rig.eng().marker().rescue_waves(Plane::kR) > waves_before) {
      rescued = true;
      // The rescue wave marked the unreachable target, so the sweep that
      // just ran spared it: rescued garbage survives until the next cycle.
      EXPECT_TRUE(rig.eng().marker().is_marked(Plane::kR, target));
      EXPECT_TRUE(rig.g().at(target).live);
      EXPECT_GT(rig.eng().stats().rescue_begins, 0u);
    }
  }
  EXPECT_TRUE(rescued)
      << "no attempt landed a rescue inside an in-flight wave";
}

}  // namespace
}  // namespace dgr
