// Tests for the multi-threaded engine: parallel decentralized marking with
// real OS threads, wire-serialized cross-PE messages, concurrent cooperating
// mutations, and full cycles with quiesced restructuring.
#include <gtest/gtest.h>

#include <atomic>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "net/wire.h"
#include "runtime/thread_engine.h"

namespace dgr {
namespace {

TEST(Wire, TaskRoundTrip) {
  Task t = Task::mark(Plane::kT, VertexId{3, 77}, VertexId{1, 2}, 2);
  const Task u = decode_task(encode_task(t));
  EXPECT_EQ(u.kind, t.kind);
  EXPECT_EQ(u.plane, t.plane);
  EXPECT_EQ(u.d, t.d);
  EXPECT_EQ(u.s, t.s);
  EXPECT_EQ(u.prior, t.prior);

  Task r = Task::return_val(VertexId{0, 1}, VertexId{5, 9},
                            Value::of_int(-42), 2);
  const Task r2 = decode_task(encode_task(r));
  EXPECT_EQ(r2.value.as_int(), -42);
  EXPECT_EQ(r2.pool_prior, 2);

  Task q = Task::request(VertexId::invalid(), VertexId{2, 4}, ReqKind::kEager);
  const Task q2 = decode_task(encode_task(q));
  EXPECT_EQ(q2.demand, ReqKind::kEager);
  EXPECT_FALSE(q2.s.valid());
}

// Fixed-capacity stores so the slot vectors never reallocate under the
// threads (the documented requirement of the threaded engine).
Graph make_presized(std::uint32_t pes, std::uint32_t cap) {
  Graph g(pes, cap);
  for (PeId pe = 0; pe < pes; ++pe) g.store(pe).set_fixed_capacity(true);
  return g;
}

TEST(ThreadEngine, MarksStaticGraphLikeOracle) {
  Graph g = make_presized(4, 2000);
  RandomGraphOptions opt;
  opt.num_vertices = 3000;
  opt.seed = 42;
  opt.num_tasks = 32;
  const BuiltGraph b = build_random_graph(g, opt);
  Oracle o(g, b.root, b.tasks);
  const std::size_t expected_gar = o.count_GAR();

  ThreadEngine eng(g);
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.start();
  eng.controller().start_cycle();
  eng.wait_cycle_done();
  eng.stop();

  EXPECT_EQ(eng.controller().last().swept, expected_gar);
  for (VertexId v : b.vertices) {
    if (g.is_free(v)) continue;
    EXPECT_EQ(eng.marker().is_marked(Plane::kR, v), o.in_R(v));
    EXPECT_EQ(eng.marker().prior(Plane::kR, v), o.prior_at(v));
    EXPECT_EQ(eng.marker().is_marked(Plane::kT, v), o.in_T(v));
  }
}

TEST(ThreadEngine, DeadlockScenarioDetected) {
  Graph g = make_presized(2, 64);
  const DeadlockScenario sc = build_deadlock_scenario(g);
  ThreadEngine eng(g);
  eng.set_root(sc.root);
  for (const TaskRef& t : sc.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.start();
  eng.controller().start_cycle();
  eng.wait_cycle_done();
  eng.stop();
  const CycleResult& res = eng.controller().last();
  ASSERT_TRUE(res.deadlock_report_valid);
  ASSERT_EQ(res.deadlocked.size(), 1u);
  EXPECT_EQ(res.deadlocked[0], sc.x);
}

TEST(ThreadEngine, RepeatedCyclesAreStable) {
  Graph g = make_presized(4, 1500);
  RandomGraphOptions opt;
  opt.num_vertices = 2000;
  opt.seed = 7;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g);
  eng.set_root(b.root);
  eng.start();
  std::size_t first_swept = 0;
  for (int i = 0; i < 5; ++i) {
    CycleOptions copt;
    copt.detect_deadlock = i % 2 == 0;
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
    if (i == 0) {
      first_swept = eng.controller().last().swept;
    } else {
      // Nothing mutates between cycles: all garbage went in cycle 1.
      EXPECT_EQ(eng.controller().last().swept, 0u);
    }
  }
  eng.stop();
  EXPECT_GT(first_swept, 0u);
}

TEST(ThreadEngine, ConcurrentMutationsDoNotLoseReachableVertices) {
  // Marking races a mutator thread doing cooperating add/delete/expand.
  // Afterwards: everything reachable is marked, everything garbage at start
  // was swept (Theorem 1 under real concurrency).
  Graph g = make_presized(4, 4000);
  RandomGraphOptions opt;
  opt.num_vertices = 3000;
  opt.seed = 11;
  opt.p_detached = 0.3;
  const BuiltGraph b = build_random_graph(g, opt);

  std::vector<VertexId> gar_tb;
  {
    Oracle o(g, b.root, {});
    for (VertexId v : b.vertices)
      if (!g.is_free(v) && o.in_GAR(v)) gar_tb.push_back(v);
  }

  ThreadEngine eng(g);
  eng.set_root(b.root);
  eng.start();
  CycleOptions copt;
  copt.detect_deadlock = false;
  eng.controller().start_cycle(copt);

  // Mutator storm from this (external) thread, via atomic sections.
  Rng rng(999);
  auto sample = [&] {
    VertexId v = b.root;
    for (std::uint64_t i = rng.below(10); i > 0; --i) {
      // Probe under the vertex's own lock-free read: acceptable for test
      // sampling; mutations themselves are properly locked.
      const Vertex& vx = g.at(v);
      if (vx.args.empty()) break;
      const VertexId nxt = vx.args[rng.below(vx.args.size())].to;
      if (!nxt.valid() || g.is_free(nxt)) break;
      v = nxt;
    }
    return v;
  };
  int mutations = 0;
  while (!eng.controller().idle() && mutations < 2000) {
    const VertexId a = sample();
    switch (rng.below(3)) {
      case 0: {
        eng.atomically({a}, [&] {
          Vertex& va = g.at(a);
          if (!va.args.empty())
            eng.mutator().delete_reference(a, va.args[0].to);
        });
        break;
      }
      case 1: {
        // add-reference(a,b,c): probe, then revalidate under the locks.
        const Vertex& va = g.at(a);
        if (va.args.empty()) break;
        const VertexId bb = va.args[0].to;
        if (!bb.valid() || g.is_free(bb) || g.at(bb).args.empty()) break;
        const VertexId c = g.at(bb).args[0].to;
        if (!c.valid() || g.is_free(c)) break;
        eng.atomically({a, bb, c}, [&] {
          // Revalidate under the locks.
          if (g.is_free(a) || g.is_free(bb) || g.is_free(c)) return;
          if (g.at(a).arg_index(bb) < 0 || g.at(bb).arg_index(c) < 0) return;
          eng.mutator().add_reference(a, bb, c, ReqKind::kVital);
        });
        break;
      }
      case 2: {
        const VertexId f = g.alloc(a.pe, OpCode::kData);
        if (!f.valid()) break;  // store full
        eng.atomically({a, f}, [&] {
          const VertexId fresh[] = {f};
          eng.mutator().expand_node(a, fresh);
          eng.mutator().add_reference_via(
              a, std::span<const VertexId>(&a, 1), f, ReqKind::kEager);
        });
        break;
      }
    }
    ++mutations;
  }
  eng.wait_cycle_done();
  eng.stop();

  for (VertexId v : gar_tb) EXPECT_TRUE(g.is_free(v));
  ASSERT_FALSE(g.is_free(b.root));
  Oracle after(g, b.root, {});
  g.for_each_live([&](VertexId v) {
    if (after.in_R(v)) {
      EXPECT_TRUE(eng.marker().is_marked(Plane::kR, v));
    }
    for (const ArgEdge& e : g.at(v).args) {
      EXPECT_FALSE(g.is_free(e.to)) << "dangling edge after threaded cycle";
    }
  });
}

TEST(ThreadEngine, ManyPesScaleSmoke) {
  const std::uint32_t pes =
      std::min(8u, std::max(2u, std::thread::hardware_concurrency()));
  Graph g = make_presized(pes, 3000);
  RandomGraphOptions opt;
  opt.num_vertices = pes * 2000;
  opt.seed = 5;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g);
  eng.set_root(b.root);
  eng.start();
  CycleOptions copt;
  copt.detect_deadlock = false;
  eng.controller().start_cycle(copt);
  eng.wait_cycle_done();
  eng.stop();
  // Cross-PE message traffic must exist (partition-crossing marking).
  EXPECT_GT(eng.stats().remote_messages, 0u);
  EXPECT_GT(eng.stats().bytes_sent, 0u);
  Oracle o(g, b.root, {});
  g.for_each_live([&](VertexId v) {
    EXPECT_EQ(eng.marker().is_marked(Plane::kR, v), o.in_R(v));
  });
}

// ---- Batched plane equivalence. ----

// One engine run: cycles with audits on, returning the per-cycle sweep
// counts. Marking correctness per cycle is already pinned by the audit's
// swept == GAR' cross-check; what this fixture adds is that two runs over
// identical graphs agree count for count.
std::vector<std::size_t> audited_run(NetOptions net, std::uint64_t seed) {
  Graph g = make_presized(4, 2500);
  RandomGraphOptions opt;
  opt.num_vertices = 1800;
  opt.seed = seed;
  opt.num_tasks = 24;
  opt.p_detached = 0.3;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g, net);
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.enable_audit();
  eng.start();
  std::vector<std::size_t> swept;
  for (int i = 0; i < 3; ++i) {
    CycleOptions copt;
    copt.detect_deadlock = i % 2 == 0;
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
    swept.push_back(eng.controller().last().swept);
  }
  eng.stop();
  EXPECT_EQ(eng.audit_stats().violations, 0u) << eng.audit_stats().last_what;
  EXPECT_EQ(eng.health().total(), 0u);
  return swept;
}

TEST(ThreadEngineBatching, NoBatchAndAggressiveBatchingAgree) {
  NetOptions off;
  off.batch_bytes = 0;  // exact pre-batching message plane
  NetOptions on;
  on.batch_bytes = 32768;  // never size-ripe: age/idle flush carries it all
  on.batch_flush_us = 50;
  const std::vector<std::size_t> a = audited_run(off, 31);
  const std::vector<std::size_t> b = audited_run(on, 31);
  EXPECT_EQ(a, b);  // identical sweep census, cycle for cycle
}

TEST(ThreadEngineBatching, BatchedCycleBatchesAndStaysClean) {
  Graph g = make_presized(4, 2000);
  RandomGraphOptions opt;
  opt.num_vertices = 3000;
  opt.seed = 42;
  opt.num_tasks = 32;
  const BuiltGraph b = build_random_graph(g, opt);
  Oracle o(g, b.root, b.tasks);
  const std::size_t expected_gar = o.count_GAR();

  ThreadEngine eng(g);  // default NetOptions: engine staging at 4 KiB
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.start();
  eng.controller().start_cycle();
  eng.wait_cycle_done();
  eng.stop();

  EXPECT_EQ(eng.controller().last().swept, expected_gar);
  // The hot path really ran batched: multi-message deliveries with sane
  // accounting (flushes never exceed the messages they carried).
  const ThreadEngineStats st = eng.stats();
  EXPECT_GT(st.msg_batched, 0u);
  EXPECT_GT(st.batch_flushes, 0u);
  EXPECT_LE(st.batch_flushes, st.msg_batched);
  EXPECT_EQ(eng.metrics_registry().total(obs::Counter::kMsgBatched),
            st.msg_batched);
}

// ---- Locality plane: boundary summaries + idle-PE work stealing. ----

TEST(ThreadEngineLocality, BoundarySummaryOnOffAgreeCycleForCycle) {
  // Dedup must be observationally invisible: audited runs (swept == GAR'
  // cross-checked every cycle) with summaries on and off produce the same
  // sweep census on identical graphs.
  NetOptions off;
  off.boundary_summary = false;
  NetOptions on;  // default: summaries enabled
  const std::vector<std::size_t> a = audited_run(off, 57);
  const std::vector<std::size_t> b = audited_run(on, 57);
  EXPECT_EQ(a, b);
}

TEST(ThreadEngineLocality, BoundaryDedupCutsRemoteTrafficNotMarks) {
  // Round-robin placement maximizes the edge cut, so every marking wave
  // re-crosses PE boundaries constantly — the dedup table's worst case.
  // With summaries on the remote message count must drop, the suppression
  // counter must account for real work, and the final marks/priors must
  // still match the sequential Oracle exactly.
  auto run = [](bool summaries, std::uint64_t* dedup, std::uint64_t* remote) {
    Graph g = make_presized(4, 1200);
    RandomGraphOptions opt;
    opt.num_vertices = 3000;
    opt.seed = 42;
    opt.num_tasks = 32;
    opt.partition = PartitionStrategy::kRoundRobin;
    const BuiltGraph b = build_random_graph(g, opt);
    Oracle o(g, b.root, b.tasks);
    NetOptions net;
    net.boundary_summary = summaries;
    ThreadEngine eng(g, net);
    eng.set_root(b.root);
    for (const TaskRef& t : b.tasks)
      eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
    eng.start();
    eng.controller().start_cycle();
    eng.wait_cycle_done();
    eng.stop();
    *dedup = eng.stats().boundary_dedup;
    *remote = eng.stats().remote_messages;
    for (VertexId v : b.vertices) {
      if (g.is_free(v)) continue;
      EXPECT_EQ(eng.marker().is_marked(Plane::kR, v), o.in_R(v));
      EXPECT_EQ(eng.marker().prior(Plane::kR, v), o.prior_at(v));
      EXPECT_EQ(eng.marker().is_marked(Plane::kT, v), o.in_T(v));
    }
  };
  std::uint64_t dedup_on = 0, remote_on = 0, dedup_off = 0, remote_off = 0;
  run(true, &dedup_on, &remote_on);
  run(false, &dedup_off, &remote_off);
  EXPECT_EQ(dedup_off, 0u);
  EXPECT_GT(dedup_on, 0u);
  EXPECT_LT(remote_on, remote_off);
}

TEST(ThreadEngineLocality, StealingMovesTasksAndAgreesWithOracle) {
  // Block placement concentrates the wave on one PE at a time, leaving the
  // others idle — the imbalance stealing exists to fix. An aggressive
  // threshold makes steals near-certain; correctness must be untouched.
  Graph g = make_presized(4, 1200);
  RandomGraphOptions opt;
  opt.num_vertices = 4000;
  opt.seed = 13;
  opt.num_tasks = 24;
  opt.partition = PartitionStrategy::kBlock;
  const BuiltGraph b = build_random_graph(g, opt);
  Oracle o(g, b.root, b.tasks);
  NetOptions net;
  net.steal_min = 1;
  net.batch_bytes = 0;  // per-task frames: mailbox depth == task backlog
  ThreadEngine eng(g, net);
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.start();
  for (int i = 0; i < 3; ++i) {
    eng.controller().start_cycle();
    eng.wait_cycle_done();
  }
  eng.stop();
  EXPECT_GT(eng.stats().steal_batches, 0u);
  EXPECT_GT(eng.stats().steal_tasks, 0u);
  EXPECT_GE(eng.stats().steal_tasks, eng.stats().steal_batches);
  g.for_each_live([&](VertexId v) {
    EXPECT_EQ(eng.marker().is_marked(Plane::kR, v), o.in_R(v));
    EXPECT_EQ(eng.marker().prior(Plane::kR, v), o.prior_at(v));
  });
}

TEST(ThreadEngineLocality, StealOffRunsCleanWithZeroStealCounters) {
  Graph g = make_presized(4, 1200);
  RandomGraphOptions opt;
  opt.num_vertices = 3000;
  opt.seed = 13;
  opt.num_tasks = 24;
  opt.partition = PartitionStrategy::kBlock;
  const BuiltGraph b = build_random_graph(g, opt);
  Oracle o(g, b.root, b.tasks);
  NetOptions net;
  net.steal = false;
  ThreadEngine eng(g, net);
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.start();
  eng.controller().start_cycle();
  eng.wait_cycle_done();
  eng.stop();
  EXPECT_EQ(eng.stats().steal_batches, 0u);
  EXPECT_EQ(eng.stats().steal_tasks, 0u);
  g.for_each_live([&](VertexId v) {
    EXPECT_EQ(eng.marker().is_marked(Plane::kR, v), o.in_R(v));
  });
}

// ---- Online health auditing (safe-point audits + watchdog). ----

TEST(ThreadEngine, SafePointAuditCleanOnStaticGraph) {
  Graph g = make_presized(4, 2500);
  RandomGraphOptions opt;
  opt.num_vertices = 1500;
  opt.seed = 11;
  opt.num_tasks = 16;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g);
  eng.set_root(b.root);
  for (const TaskRef& t : b.tasks)
    eng.inject(Task::request(t.s, t.d, ReqKind::kVital));
  eng.enable_audit();
  eng.enable_watchdog();
  eng.start();
  for (int i = 0; i < 5; ++i) {
    CycleOptions copt;
    copt.detect_deadlock = i % 2 == 0;
    eng.controller().start_cycle(copt);
    eng.wait_cycle_done();
  }
  eng.stop();
  // Every restructure quiesce window audited; §5.4.1 invariants and the
  // Property 1 accounting must hold at each, and the sweep cross-check
  // (swept == GAR') must agree every cycle.
  EXPECT_EQ(eng.audit_stats().audits, 5u);
  EXPECT_EQ(eng.audit_stats().violations, 0u) << eng.audit_stats().last_what;
  EXPECT_EQ(eng.health().total(), 0u);
}

TEST(ThreadEngine, AuditPeriodSkipsCycles) {
  Graph g = make_presized(2, 600);
  RandomGraphOptions opt;
  opt.num_vertices = 400;
  opt.seed = 3;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g);
  eng.set_root(b.root);
  AuditOptions aopt;
  aopt.period = 2;  // audit cycles 2 and 4 only
  eng.enable_audit(aopt);
  eng.start();
  for (int i = 0; i < 5; ++i) {
    eng.controller().start_cycle();
    eng.wait_cycle_done();
  }
  eng.stop();
  EXPECT_EQ(eng.audit_stats().audits, 2u);
  EXPECT_EQ(eng.audit_stats().violations, 0u) << eng.audit_stats().last_what;
}

TEST(ThreadEngine, WatchdogRescueStormThresholdFires) {
  // With the storm threshold at zero every watchdog sample trips the alarm:
  // proves the monitor thread samples, warns, and counts while PEs run.
  Graph g = make_presized(2, 600);
  RandomGraphOptions opt;
  opt.num_vertices = 300;
  opt.seed = 9;
  const BuiltGraph b = build_random_graph(g, opt);
  ThreadEngine eng(g);
  eng.set_root(b.root);
  WatchdogOptions wopt;
  wopt.interval_ms = 1;
  wopt.rescue_storm = 0;
  eng.enable_watchdog(wopt);
  eng.start();
  eng.controller().start_cycle();
  eng.wait_cycle_done();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  eng.stop();
  const HealthReport hr = eng.health();
  EXPECT_GE(hr.warnings[static_cast<std::size_t>(obs::HealthKind::kRescueStorm)],
            1u);
  // Edge-triggered: one warning per cycle, not one per sample.
  EXPECT_LE(hr.warnings[static_cast<std::size_t>(obs::HealthKind::kRescueStorm)],
            2u);
  EXPECT_EQ(eng.audit_stats().audits, 0u);  // auditing was never enabled
}

}  // namespace
}  // namespace dgr
