// Wire-layer hardening tests: round-trip identity for every message kind,
// and — the property the fault plane leans on — that malformed bytes
// (truncation at any length, corrupted enum fields, trailing garbage) fail
// *recoverably* through try_decode_task instead of aborting the process.
#include <gtest/gtest.h>

#include <vector>

#include "net/wire.h"

namespace dgr {
namespace {

std::vector<Task> one_of_every_kind() {
  std::vector<Task> ts;
  ts.push_back(Task::request(VertexId{1, 2}, VertexId{3, 4}, ReqKind::kEager));
  ts.push_back(Task::return_val(VertexId{0, 7}, VertexId{2, 1},
                                Value::of_int(-123456789), 2));
  ts.push_back(Task::eval(VertexId{1, 9}, 1));
  ts.push_back(Task::mark(Plane::kT, VertexId{3, 77}, VertexId{1, 2}, 2));
  ts.push_back(Task::mark_return(Plane::kR, VertexId{2, 5}));
  Task compact;
  compact.kind = TaskKind::kCompactMark;
  compact.plane = Plane::kR;
  compact.d = VertexId{0, 42};
  compact.s = VertexId{3, 0};  // s.pe = sending PE
  compact.prior = 3;
  ts.push_back(compact);
  Task ack;
  ack.kind = TaskKind::kPeAck;
  ack.d = VertexId{1, 0};  // d.pe = receiving PE
  ts.push_back(ack);
  return ts;
}

TEST(Wire, RoundTripEveryKind) {
  for (const Task& t : one_of_every_kind()) {
    const std::vector<std::uint8_t> bytes = encode_task(t);
    const std::optional<Task> u = try_decode_task(bytes);
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(u->kind, t.kind);
    EXPECT_EQ(u->plane, t.plane);
    EXPECT_EQ(u->d, t.d);
    EXPECT_EQ(u->s, t.s);
    EXPECT_EQ(u->prior, t.prior);
    EXPECT_EQ(u->demand, t.demand);
    EXPECT_EQ(u->pool_prior, t.pool_prior);
    EXPECT_EQ(u->value.kind, t.value.kind);
    EXPECT_EQ(u->value.i, t.value.i);
    EXPECT_EQ(u->value.node, t.value.node);
    // The trusting decoder agrees on well-formed input.
    const Task v = decode_task(bytes);
    EXPECT_EQ(v.kind, t.kind);
    EXPECT_EQ(v.d, t.d);
  }
}

TEST(Wire, TruncationAtEveryLengthIsRecoverable) {
  // Exactly what the fault plane's truncate mode produces: a prefix of the
  // encoding. Every possible cut must yield nullopt — never an abort, and
  // never a "successfully" decoded short message.
  const std::vector<std::uint8_t> full =
      encode_task(Task::mark(Plane::kT, VertexId{3, 77}, VertexId{1, 2}, 2));
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(), full.begin() + cut);
    EXPECT_FALSE(try_decode_task(prefix).has_value()) << "cut=" << cut;
  }
  EXPECT_TRUE(try_decode_task(full).has_value());
}

TEST(Wire, TrailingBytesRejected) {
  std::vector<std::uint8_t> bytes =
      encode_task(Task::mark_return(Plane::kR, VertexId{0, 3}));
  bytes.push_back(0xEE);
  EXPECT_FALSE(try_decode_task(bytes).has_value());
}

TEST(Wire, OutOfRangeEnumsRejected) {
  const std::vector<std::uint8_t> good =
      encode_task(Task::request(VertexId{1, 2}, VertexId{3, 4}, ReqKind::kVital));
  // Layout: kind, plane, prior, demand, pool_prior, ... (see wire.cpp).
  for (const std::size_t field : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}}) {
    std::vector<std::uint8_t> bad = good;
    bad[field] = 0xFF;
    EXPECT_FALSE(try_decode_task(bad).has_value()) << "field=" << field;
  }
  // The value-kind byte sits right after the two VertexIds.
  std::vector<std::uint8_t> bad = good;
  bad[5 + 8 + 8] = 0xFF;
  EXPECT_FALSE(try_decode_task(bad).has_value());
}

TEST(Wire, ByteReaderStickyFailure) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  ByteReader r(three);
  EXPECT_EQ(r.u8(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // only 2 bytes left: fails, yields zero
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays failed even though bytes remain
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, EmptyBufferRejected) {
  EXPECT_FALSE(try_decode_task({}).has_value());
}

}  // namespace
}  // namespace dgr
