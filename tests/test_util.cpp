// Unit tests for the utility layer: RNG determinism, statistics, queues.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/mpmc_queue.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dgr {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(13), 13u);
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.range(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 8u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SubstreamsAreIndependent) {
  Rng a = Rng::substream(5, 0);
  Rng b = Rng::substream(5, 1);
  EXPECT_NE(a.next(), b.next());
  // Same stream id reproduces.
  Rng c = Rng::substream(5, 0);
  Rng d = Rng::substream(5, 0);
  EXPECT_EQ(c.next(), d.next());
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  OnlineStats a, b, all;
  Rng r(3);
  for (int i = 0; i < 500; ++i) {
    const double x = r.uniform01() * 100;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, PercentilesApproximate) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.add(i);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.percentile(50), 5000, 5000 * 0.05);
  EXPECT_NEAR(h.percentile(99), 9900, 9900 * 0.05);
  EXPECT_DOUBLE_EQ(h.max_value(), 10000);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.add(1.0);
  for (int i = 0; i < 100; ++i) b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_GT(a.percentile(99), 500);
  EXPECT_LT(a.percentile(25), 2);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, CloseUnblocksConsumers) {
  MpmcQueue<int> q;
  std::thread consumer([&] {
    while (q.pop().has_value()) {
    }
  });
  q.push(1);
  q.push(2);
  q.close();
  consumer.join();
  SUCCEED();
}

TEST(MpmcQueue, ConcurrentProducersConsumers) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 2000;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < 4; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 4; c < 8; ++c) threads[static_cast<std::size_t>(c)].join();
  EXPECT_EQ(consumed.load(), 4 * kPerProducer);
  const long long n = 4LL * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace dgr
