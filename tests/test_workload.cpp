// Seeded determinism of the session-workload driver (docs/WORKLOAD.md).
//
// The contract the soak harness and the differential chaos leg both lean on:
// the schedule is a PURE function of WorkloadOptions — no engine, no clock —
// and the driver's kSession* trace events carry schedule facts only, so the
// same seed must produce byte-identical session streams on every engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "obs/export.h"
#include "runtime/sim_engine.h"
#include "runtime/thread_engine.h"
#include "workload/session.h"

namespace dgr {
namespace {

using workload::EventKind;
using workload::SessionDriver;
using workload::SessionEvent;
using workload::WorkloadOptions;

WorkloadOptions small_options(std::uint64_t seed) {
  WorkloadOptions w;
  w.seed = seed;
  w.pes = 4;
  w.ticks = 32;
  w.rate = 2.0;
  w.sim_steps_per_tick = 2000;
  return w;
}

TEST(WorkloadSchedule, SameSeedSameSchedule) {
  const WorkloadOptions w = small_options(42);
  const auto a = workload::generate_schedule(w);
  const auto b = workload::generate_schedule(w);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(WorkloadSchedule, DifferentSeedDifferentSchedule) {
  const auto a = workload::generate_schedule(small_options(1));
  const auto b = workload::generate_schedule(small_options(2));
  EXPECT_NE(a, b);
}

TEST(WorkloadSchedule, EveryArrivalCompletes) {
  const auto sched = workload::generate_schedule(small_options(7));
  std::map<std::uint64_t, int> open;  // session -> +1 arrive / -1 complete
  std::uint32_t last_tick = 0;
  for (const SessionEvent& ev : sched) {
    EXPECT_GE(ev.tick, last_tick) << "schedule not tick-ordered";
    last_tick = std::max(last_tick, ev.tick);
    if (ev.kind == EventKind::kArrive) {
      EXPECT_EQ(open.count(ev.session), 0u);
      open[ev.session] = 1;
      EXPECT_GE(ev.depth, small_options(7).depth_min);
      EXPECT_LE(ev.depth, small_options(7).depth_max);
    } else if (ev.kind == EventKind::kComplete) {
      ASSERT_EQ(open.count(ev.session), 1u) << "complete without arrive";
      open.erase(ev.session);
    }
  }
  EXPECT_TRUE(open.empty()) << open.size() << " sessions never complete";
}

TEST(WorkloadSchedule, ZipfSkewsTowardLowKeys) {
  WorkloadOptions w = small_options(3);
  w.ticks = 128;
  w.zipf_s = 1.4;
  const auto sched = workload::generate_schedule(w);
  std::vector<std::uint64_t> hits(w.hot_keys, 0);
  for (const SessionEvent& ev : sched) ++hits[ev.hot % w.hot_keys];
  // Zipf: the hottest key dominates the coldest half combined being rare;
  // concretely key 0 must beat the per-key uniform share by a wide margin.
  std::uint64_t total = 0;
  for (auto h : hits) total += h;
  ASSERT_GT(total, 0u);
  EXPECT_GT(hits[0], total / w.hot_keys * 2)
      << "hot key 0 not hot: " << hits[0] << "/" << total;
}

// The schedule-fact tuple of a driver trace: everything except the engine
// clock (ts) and the cycle stamp, which legitimately differ across engines.
struct SessionTuple {
  obs::EventType type;
  std::uint16_t pe;
  std::uint64_t a, b;
  bool operator==(const SessionTuple&) const = default;
};

// Trace snapshots link only in tracing builds; under -DDGR_TRACE=OFF the
// run helpers still exercise the driver end to end and return no tuples,
// and the two trace-equality tests compile out with them.
#if DGR_TRACE_ENABLED
std::vector<SessionTuple> session_tuples(const std::vector<obs::TraceEvent>& evs) {
  std::vector<SessionTuple> out;
  for (const auto& e : evs) {
    switch (e.type) {
      case obs::EventType::kSessionOpen:
      case obs::EventType::kSessionChurn:
      case obs::EventType::kSessionClose:
        out.push_back({e.type, e.pe, e.a, e.b});
        break;
      default:
        break;
    }
  }
  return out;
}
#endif  // DGR_TRACE_ENABLED

std::vector<SessionTuple> run_sim(const WorkloadOptions& w,
                                  workload::SoakTotals* totals = nullptr,
                                  std::size_t* live_non_aux = nullptr) {
  Graph g(w.pes, workload::required_capacity(w));
  SimOptions sopt;
  sopt.seed = w.seed;
  SimEngine eng(g, sopt);
  obs::TraceBuffer* tb = eng.enable_trace();
  auto drv_eng = workload::make_driver(eng);
  SessionDriver drv(*drv_eng, w);
  drv.setup();
  for (PeId pe = 0; pe < g.num_pes(); ++pe)
    g.store(pe).set_fixed_capacity(true);
  drv.run(workload::generate_schedule(w));
  if (totals) *totals = drv.totals();
  if (live_non_aux) {
    std::size_t n = 0;
    g.for_each_live([&](VertexId) { ++n; });
    *live_non_aux = n;
  }
#if DGR_TRACE_ENABLED
  return session_tuples(tb->snapshot());
#else
  (void)tb;
  return {};
#endif
}

std::vector<SessionTuple> run_thread(const WorkloadOptions& w) {
  Graph g(w.pes, workload::required_capacity(w));
  ThreadEngine eng(g, NetOptions{});
  obs::TraceBuffer* tb = eng.enable_trace();
  auto drv_eng = workload::make_driver(eng);
  SessionDriver drv(*drv_eng, w);
  drv.setup();
  for (PeId pe = 0; pe < g.num_pes(); ++pe)
    g.store(pe).set_fixed_capacity(true);
  eng.start();
  drv.run(workload::generate_schedule(w));
  eng.stop();
#if DGR_TRACE_ENABLED
  return session_tuples(tb->snapshot());
#else
  (void)tb;
  return {};
#endif
}

#if DGR_TRACE_ENABLED
TEST(WorkloadDeterminism, TraceIdenticalAcrossSimRuns) {
  const WorkloadOptions w = small_options(11);
  const auto a = run_sim(w);
  const auto b = run_sim(w);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(WorkloadDeterminism, TraceIdenticalSimVsThread) {
  // The cross-engine leg of the contract: the threaded engine races real PE
  // threads against the mutator, yet the session stream (admissions, churn,
  // retirements — all schedule facts) must match the simulator's exactly.
  const WorkloadOptions w = small_options(5);
  const auto sim = run_sim(w);
  const auto thr = run_thread(w);
  ASSERT_FALSE(sim.empty());
  EXPECT_EQ(sim, thr);
}
#endif  // DGR_TRACE_ENABLED

TEST(WorkloadLifecycle, AllSessionsRetireAndRegionsSweep) {
  const WorkloadOptions w = small_options(9);
  workload::SoakTotals totals;
  std::size_t live = 0;
  run_sim(w, &totals, &live);
  EXPECT_GT(totals.opened, 0u);
  EXPECT_EQ(totals.opened, totals.closed);
  EXPECT_EQ(totals.rejected, 0u);
  EXPECT_EQ(totals.divergence, 0u);
  EXPECT_GT(totals.cycles, 0u);
  // After the drain cycles the only non-aux survivors are the standing
  // fixture: one anchor per PE plus the hot-key set.
  EXPECT_EQ(live, w.pes + w.hot_keys);
}

}  // namespace
}  // namespace dgr
