// Message-latency stress: cross-PE tasks spend real simulated time in
// flight. This is the regime where §5.2's in-transit problem bites hardest —
// tasks referenced by neither pools nor the graph exist for many steps.
// Everything must still hold: results, Theorem 1 sweeps, and zero false
// deadlock reports.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "reduction/machine.h"
#include "runtime/sim_engine.h"

namespace dgr {
namespace {

class LatencyGrid
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(LatencyGrid, FibUnderContinuousDetectingCycles) {
  const auto [latency, seed] = GetParam();
  Graph g(4);
  SimOptions sopt;
  sopt.seed = seed;
  sopt.max_latency = latency;
  sopt.check_invariants = true;
  sopt.invariant_period = 307;
  SimEngine eng(g, sopt);
  Machine m(g, eng.mutator(), eng,
            Program::from_source(
                "def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
                "def main() = fib(11);"));
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  std::uint64_t false_reports = 0;
  eng.controller().set_cycle_observer([&](const CycleResult& c) {
    if (c.deadlock_report_valid && !c.deadlocked.empty()) ++false_reports;
  });
  // Demand precedes the first snapshot: the <-,root> task must be visible
  // to M_T (a snapshot of a truly task-free system would — correctly —
  // classify an unevaluated demanded root as deadlocked).
  m.demand(root);
  eng.controller().set_continuous(true);  // with M_T
  eng.controller().start_cycle();
  while (!m.result_of(root).has_value()) {
    ASSERT_TRUE(eng.step()) << "wedged (latency " << latency << ")";
  }
  eng.controller().set_continuous(false);
  eng.run(100'000'000);
  ASSERT_FALSE(m.has_error()) << m.error();
  EXPECT_EQ(m.result_of(root)->as_int(), 89);
  EXPECT_EQ(false_reports, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LatencyGrid,
    ::testing::Combine(::testing::Values(1u, 4u, 16u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(Latency, StreamSumWithSlowNetwork) {
  Graph g(4);
  SimOptions sopt;
  sopt.seed = 9;
  sopt.max_latency = 8;
  SimEngine eng(g, sopt);
  Machine m(g, eng.mutator(), eng,
            Program::from_source(
                "def from(n) = cons(n, from(n + 1));"
                "def take_sum(k, xs) = if k == 0 then 0"
                "  else head(xs) + take_sum(k - 1, tail(xs));"
                "def main() = take_sum(25, from(1));"));
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  eng.controller().set_continuous(true, CycleOptions{false});
  eng.controller().start_cycle(CycleOptions{false});
  m.demand(root);
  while (!m.result_of(root).has_value()) ASSERT_TRUE(eng.step());
  eng.controller().set_continuous(false);
  eng.run(100'000'000);
  ASSERT_FALSE(m.has_error()) << m.error();
  EXPECT_EQ(m.result_of(root)->as_int(), 325);
}

TEST(Latency, DeadlockStillDetectedExactly) {
  // Static deadlock scenario with slow links: the M_T/M_R result must be
  // identical to the instant-delivery one.
  Graph g(2);
  const DeadlockScenario sc = build_deadlock_scenario(g);
  SimOptions sopt;
  sopt.seed = 3;
  sopt.max_latency = 12;
  SimEngine eng(g, sopt);
  eng.set_root(sc.root);
  for (const TaskRef& t : sc.tasks)
    eng.spawn(Task::request(t.s, t.d, ReqKind::kVital));
  eng.controller().start_cycle(CycleOptions{true});
  eng.run_until_cycle_done(10'000'000);
  const CycleResult& res = eng.controller().last();
  ASSERT_TRUE(res.deadlock_report_valid);
  ASSERT_EQ(res.deadlocked.size(), 1u);
  EXPECT_EQ(res.deadlocked[0], sc.x);
}

TEST(Latency, InFlightIrrelevantTasksExpunged) {
  // Tasks killed while on the wire: the runaway's returns/evals in flight
  // must be expunged with the pooled ones.
  Graph g(4);
  SimOptions sopt;
  sopt.seed = 21;
  sopt.max_latency = 6;
  SimEngine eng(g, sopt);
  MachineOptions mopt;
  mopt.speculate_if = true;
  Machine m(g, eng.mutator(), eng,
            Program::from_source("def boom(n) = boom(n + 1) + boom(n + 2);"
                                 "def main() = if 1 < 2 then 5 else boom(0);"),
            mopt);
  const VertexId root = m.load_main();
  eng.set_root(root);
  eng.set_reducer([&](const Task& t) { m.exec(t); });
  m.demand(root);
  while (!m.result_of(root).has_value()) ASSERT_TRUE(eng.step());
  for (int i = 0; i < 20000; ++i) eng.step();
  EXPECT_GT(eng.pending_reduction() + eng.in_flight(), 0u);
  eng.controller().start_cycle(CycleOptions{false});
  eng.run_until_cycle_done(100'000'000);
  EXPECT_GT(eng.controller().last().expunged, 0u);
  eng.run(100'000'000);
  EXPECT_TRUE(eng.quiescent());
  EXPECT_EQ(m.result_of(root)->as_int(), 5);
}

TEST(Latency, MarkerOracleAgreementWithSlowLinks) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g(8);
    RandomGraphOptions opt;
    opt.num_vertices = 300;
    opt.seed = seed;
    const BuiltGraph b = build_random_graph(g, opt);
    Oracle o(g, b.root, b.tasks);
    SimOptions sopt;
    sopt.seed = seed * 7;
    sopt.max_latency = 10;
    SimEngine eng(g, sopt);
    eng.set_root(b.root);
    for (const TaskRef& t : b.tasks)
      eng.spawn(Task::request(t.s, t.d, ReqKind::kVital));
    // Let the task messages land in the pools first: T's seeds are the
    // pools plus in-flight tasks, which collect_task_refs also covers, so
    // starting the cycle immediately is fine too — exercise that path.
    eng.controller().start_cycle(CycleOptions{true});
    eng.run_until_cycle_done(10'000'000);
    EXPECT_EQ(eng.controller().last().swept, o.count_GAR()) << seed;
    g.for_each_live([&](VertexId v) {
      EXPECT_EQ(eng.marker().is_marked(Plane::kR, v), o.in_R(v));
      EXPECT_EQ(eng.marker().is_marked(Plane::kT, v), o.in_T(v));
    });
  }
}

}  // namespace
}  // namespace dgr
