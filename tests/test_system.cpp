// Tests for the high-level dgr::System facade.
#include <gtest/gtest.h>

#include "dgr.h"

namespace dgr {
namespace {

TEST(System, SimpleProgram) {
  System sys("def main() = 6 * 7;", {});
  const auto v = sys.run();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_int(), 42);
  EXPECT_FALSE(sys.has_error());
}

TEST(System, ContinuousGcReclaims) {
  SystemOptions opt;
  opt.pes = 4;
  opt.seed = 5;
  System sys(
      "def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
      "def main() = fib(14);",
      opt);
  const auto v = sys.run();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_int(), 377);
  EXPECT_GT(sys.gc_cycles(), 0u);
  EXPECT_GT(sys.vertices_reclaimed(), 100u);
}

TEST(System, FiniteStoreWithExhaustionGc) {
  SystemOptions opt;
  opt.store_capacity = 1000;
  opt.continuous_gc = false;  // only exhaustion-driven cycles
  System sys(
      "def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);"
      "def main() = fib(13);",
      opt);
  const auto v = sys.run();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_int(), 233);
  EXPECT_GT(sys.gc_cycles(), 0u);
}

TEST(System, CompactCollectorVariant) {
  SystemOptions opt;
  opt.compact_collector = true;
  System sys(
      "def from(n) = cons(n, from(n + 1));"
      "def take_sum(k, xs) = if k == 0 then 0"
      "  else head(xs) + take_sum(k - 1, tail(xs));"
      "def main() = take_sum(20, from(1));",
      opt);
  const auto v = sys.run();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_int(), 210);
  EXPECT_GT(sys.gc_cycles(), 0u);
}

TEST(System, WedgedProgramAndDeadlockQuery) {
  SystemOptions opt;
  opt.continuous_gc = false;
  System sys("def main() = let x = x + 1 in x;", opt);
  const auto v = sys.run(10'000'000);
  EXPECT_FALSE(v.has_value());
  EXPECT_FALSE(sys.has_error());
  const auto dl = sys.find_deadlocks();
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl[0], sys.root());
}

TEST(System, RuntimeErrorSurfaces) {
  System sys("def main() = 1 / 0;", {});
  (void)sys.run();
  EXPECT_TRUE(sys.has_error());
}

TEST(System, CompileErrorThrows) {
  EXPECT_THROW(System("def main() = undefined_fn(1);", {}), CompileError);
  EXPECT_THROW(System("def main() = (1 +;", {}), lang::ParseError);
}

TEST(System, SpeculationOption) {
  SystemOptions opt;
  opt.speculate_if = true;
  opt.seed = 9;
  System sys(
      "def boom(n) = boom(n + 1);"
      "def main() = if 2 < 3 then 21 * 2 else boom(0);",
      opt);
  const auto v = sys.run();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_int(), 42);
  // Continuous GC expunged the orphaned speculation and the run drained.
  EXPECT_TRUE(sys.engine().quiescent());
}

TEST(System, LatencyOption) {
  SystemOptions opt;
  opt.message_latency = 6;
  System sys(
      "def gcd(a, b) = if b == 0 then a else gcd(b, a % b);"
      "def main() = gcd(252, 105);",
      opt);
  const auto v = sys.run();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_int(), 21);
}

TEST(System, DeterministicAcrossRuns) {
  for (int i = 0; i < 2; ++i) {
    SystemOptions opt;
    opt.seed = 1234;
    System sys("def f(n) = if n == 0 then 0 else n + f(n - 1);"
               "def main() = f(50);",
               opt);
    const auto v = sys.run();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->as_int(), 1275);
    // The schedule itself is reproducible, not just the answer.
    static std::uint64_t first_steps = 0;
    if (i == 0) {
      first_steps = sys.engine().metrics().steps;
    } else {
      EXPECT_EQ(sys.engine().metrics().steps, first_steps);
    }
  }
}

}  // namespace
}  // namespace dgr
