// Tests for the baseline collectors: stop-the-world marking and distributed
// reference counting (the comparison points of E9/E10).
#include <gtest/gtest.h>

#include "baseline/refcount_collector.h"
#include "baseline/stw_collector.h"
#include "graph/builder.h"
#include "graph/oracle.h"

namespace dgr {
namespace {

TEST(Stw, MatchesOracleOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Graph g(4);
    RandomGraphOptions opt;
    opt.num_vertices = 500;
    opt.seed = seed;
    const BuiltGraph b = build_random_graph(g, opt);
    Oracle o(g, b.root, {});
    const std::size_t expected = o.count_GAR();
    StwCollector stw(g);
    const StwResult res = stw.collect(b.root);
    EXPECT_EQ(res.swept, expected) << "seed " << seed;
    EXPECT_EQ(res.marked, o.count_R());
    EXPECT_GT(res.pause_work, res.marked);  // visits + edges + sweep scan
  }
}

TEST(Stw, RepeatedCollectionsIdempotent) {
  Graph g(2);
  RandomGraphOptions opt;
  opt.num_vertices = 200;
  opt.seed = 3;
  const BuiltGraph b = build_random_graph(g, opt);
  StwCollector stw(g);
  const StwResult r1 = stw.collect(b.root);
  const StwResult r2 = stw.collect(b.root);
  EXPECT_GT(r1.swept, 0u);
  EXPECT_EQ(r2.swept, 0u);
  EXPECT_EQ(stw.collections(), 2u);
}

struct RcRig {
  Graph g{2};
  RefCountCollector rc{g};

  VertexId node() {
    const VertexId v = g.alloc_rr(OpCode::kData);
    rc.on_alloc(v);
    return v;
  }
  void link(VertexId x, VertexId y) {
    connect(g, x, y, ReqKind::kNone);
    rc.on_connect(x, y);
  }
  void unlink(VertexId x, VertexId y) {
    disconnect(g, x, y);
    rc.on_disconnect(x, y);
  }
};

TEST(RefCount, ChainFreedOnRootDrop) {
  RcRig r;
  const VertexId a = r.node(), b = r.node(), c = r.node();
  r.rc.add_root_ref(a);
  r.link(a, b);
  r.link(b, c);
  r.rc.drop_root_ref(a);
  EXPECT_EQ(r.rc.process(), 3u);
  EXPECT_TRUE(r.g.is_free(a));
  EXPECT_TRUE(r.g.is_free(b));
  EXPECT_TRUE(r.g.is_free(c));
}

TEST(RefCount, SharedNodeSurvivesOneDrop) {
  RcRig r;
  const VertexId a = r.node(), b = r.node(), s = r.node();
  r.rc.add_root_ref(a);
  r.rc.add_root_ref(b);
  r.link(a, s);
  r.link(b, s);
  r.rc.drop_root_ref(a);
  r.rc.process();
  EXPECT_TRUE(r.g.is_free(a));
  EXPECT_FALSE(r.g.is_free(s));  // still referenced by b
  r.rc.drop_root_ref(b);
  r.rc.process();
  EXPECT_TRUE(r.g.is_free(s));
}

TEST(RefCount, CannotReclaimCycle) {
  // The paper's §4 critique: "the inability to reclaim self-referencing
  // structures".
  RcRig r;
  const VertexId a = r.node(), b = r.node();
  r.rc.add_root_ref(a);
  r.link(a, b);
  r.link(b, a);  // cycle
  r.rc.drop_root_ref(a);
  r.rc.process();
  // Counts never reach zero: a and b keep each other alive — leaked.
  EXPECT_FALSE(r.g.is_free(a));
  EXPECT_FALSE(r.g.is_free(b));
  // The reachability oracle knows better.
  const VertexId root = r.node();
  Oracle o(r.g, root, {});
  EXPECT_TRUE(o.in_GAR(a));
  EXPECT_TRUE(o.in_GAR(b));
}

TEST(RefCount, SelfLoopLeaks) {
  RcRig r;
  const VertexId a = r.node();
  r.rc.add_root_ref(a);
  r.link(a, a);
  r.rc.drop_root_ref(a);
  r.rc.process();
  EXPECT_FALSE(r.g.is_free(a));
}

TEST(RefCount, MessageAccounting) {
  RcRig r;
  const VertexId a = r.node();  // pe 0
  const VertexId b = r.node();  // pe 1 (round-robin)
  ASSERT_NE(a.pe, b.pe);
  r.link(a, b);  // cross-PE increment
  EXPECT_EQ(r.rc.remote_messages(), 1u);
  r.unlink(a, b);  // cross-PE decrement
  EXPECT_EQ(r.rc.remote_messages(), 2u);
  r.rc.process();
  EXPECT_TRUE(r.g.is_free(b));
}

}  // namespace
}  // namespace dgr
