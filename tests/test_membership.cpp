// Dynamic cluster membership (docs/CLUSTER.md "Membership and failure
// model"): worker loss in every phase the protocol distinguishes — idle,
// mid-cycle, and silently wedged at the quiesce barrier — plus the
// differential-handoff contract (delta shrink on a stable graph, checksum
// resync on a diverged replica, generation fencing of a dead slot).
//
// These run real dgr_worker processes ($DGR_WORKER_BIN or PATH), like
// test_proc_engine; each test holds the post-recovery cluster to the
// sequential Oracle, because surviving is only half the contract — the
// survivors' sweep must still free exactly GAR'.
#include <gtest/gtest.h>

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "graph/oracle.h"
#include "net/frame.h"
#include "net/proto.h"
#include "net/socket.h"
#include "runtime/proc_engine.h"
#include "util/rng.h"

namespace dgr {
namespace {

Graph make_presized(std::uint32_t pes, std::uint32_t cap) {
  Graph g(pes, cap);
  for (PeId pe = 0; pe < pes; ++pe) g.store(pe).set_fixed_capacity(true);
  return g;
}

struct RigParams {
  std::uint64_t seed = 3;
  std::uint32_t pes = 4;
  std::uint32_t capacity = 900;
  std::uint32_t vertices = 500;
  std::uint32_t tasks = 12;
};

// Same shape as test_proc_engine's rig: build a seeded graph, fork workers,
// run oracle-checked cycles. Kept local so the membership suite stands alone.
class Rig {
 public:
  Rig(const RigParams& rp, ProcOptions popt)
      : g_(make_presized(rp.pes, rp.capacity)), rng_(rp.seed * 31 + 7) {
    RandomGraphOptions opt;
    opt.num_vertices = rp.vertices;
    opt.seed = rp.seed;
    opt.num_tasks = rp.tasks;
    opt.p_detached = 0.3;
    b_ = build_random_graph(g_, opt);
    eng_ = std::make_unique<ProcEngine>(g_, popt);
    eng_->set_root(b_.root);
    for (const TaskRef& t : b_.tasks)
      eng_->inject(Task::request(t.s, t.d, ReqKind::kVital));
    eng_->start();
  }

  ~Rig() { eng_->stop(); }

  Graph& g() { return g_; }
  ProcEngine& eng() { return *eng_; }

  void churn(int ops) {
    for (int i = 0; i < ops; ++i) {
      VertexId v = b_.root;
      for (std::uint64_t j = rng_.below(8); j > 0; --j) {
        const Vertex& vx = g_.at(v);
        if (vx.args.empty()) break;
        const VertexId nxt = vx.args[rng_.below(vx.args.size())].to;
        if (!nxt.valid() || g_.is_free(nxt)) break;
        v = nxt;
      }
      const Vertex& vv = g_.at(v);
      if (vv.args.empty()) continue;
      const VertexId tgt = vv.args[rng_.below(vv.args.size())].to;
      eng_->atomically({v, tgt},
                       [&] { eng_->mutator().delete_reference(v, tgt); });
    }
  }

  void cycle_checked(bool detect_deadlock, int round) {
    std::vector<TaskRef> refs;
    eng_->collect_task_refs(refs);
    Oracle o(g_, b_.root, refs);
    std::size_t irrelevant = 0;
    for (const TaskRef& t : refs)
      if (o.classify(t) == TaskClass::kIrrelevant) ++irrelevant;

    CycleOptions copt;
    copt.detect_deadlock = detect_deadlock;
    eng_->start_cycle(copt);
    eng_->wait_cycle_done();
    ASSERT_FALSE(eng_->failed()) << "no survivors in round " << round;

    const CycleResult& res = eng_->controller().last();
    EXPECT_EQ(res.swept, o.count_GAR()) << "round " << round;
    EXPECT_EQ(res.expunged, irrelevant) << "round " << round;
    g_.for_each_live([&](VertexId v) {
      EXPECT_EQ(eng_->marker().is_marked(Plane::kR, v), o.in_R(v))
          << "R mark of (" << v.pe << "," << v.idx << ") round " << round;
      if (detect_deadlock) {
        EXPECT_EQ(eng_->marker().is_marked(Plane::kT, v), o.in_T(v))
            << "T mark of (" << v.pe << "," << v.idx << ") round " << round;
      }
    });
  }

  // Block until the hub reader noticed the loss and recovery finished.
  void wait_worker_dead(std::uint32_t w, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (eng_->worker_alive(w) &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_FALSE(eng_->worker_alive(w)) << "loss of worker " << w
                                        << " never registered";
    eng_->wait_quiescent();
  }

 private:
  Graph g_;
  Rng rng_;
  BuiltGraph b_;
  std::unique_ptr<ProcEngine> eng_;
};

// ---- Loss while idle: EOF path, then survivors marked exactly. ----

TEST(Membership, KillWhileIdleSurvivorsMatchOracle) {
  RigParams rp;
  ProcOptions popt;
  popt.workers = 3;
  Rig rig(rp, popt);
  rig.cycle_checked(/*detect_deadlock=*/true, 0);
  if (::testing::Test::HasFatalFailure()) return;

  const long pid = rig.eng().worker_pid(1);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGKILL), 0);
  rig.wait_worker_dead(1);
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(rig.eng().workers_live(), 2u);
  EXPECT_GE(rig.eng().membership_gen(), 1u);
  const ProcEngineStats mid = rig.eng().stats();
  EXPECT_EQ(mid.workers_lost, 1u);
  EXPECT_GT(mid.partitions_reassigned, 0u);

  // Two more cycles on the survivors, oracle-exact, with mutation between.
  rig.cycle_checked(true, 1);
  if (::testing::Test::HasFatalFailure()) return;
  rig.churn(6);
  rig.cycle_checked(false, 2);
  if (::testing::Test::HasFatalFailure()) return;

  // Reports now merge per live worker, not per registered worker.
  const ProcEngineStats s = rig.eng().stats();
  EXPECT_GT(s.reports_merged, 0u);
  EXPECT_EQ(s.workers_lost, 1u);
}

// ---- Loss mid-cycle: the wave aborts, restarts on survivors, completes. --

TEST(Membership, KillMidCycleRestartsAndCompletes) {
  RigParams rp;
  rp.seed = 7;
  ProcOptions popt;
  popt.workers = 3;
  Rig rig(rp, popt);

  const long pid = rig.eng().worker_pid(2);
  ASSERT_GT(pid, 0);
  CycleOptions copt;
  copt.detect_deadlock = true;
  rig.eng().start_cycle(copt);
  // Kill while the wave is (very likely) in flight; if it already finished,
  // the idle path covers it — either way the cycle must complete unfailed.
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGKILL), 0);
  rig.eng().wait_cycle_done();
  ASSERT_FALSE(rig.eng().failed());
  rig.wait_worker_dead(2);
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(rig.eng().stats().workers_lost, 1u);
  EXPECT_EQ(rig.eng().workers_live(), 2u);
  // The next cycle is fully checked against the oracle.
  rig.churn(4);
  rig.cycle_checked(true, 1);
}

// ---- Silent wedge: the quiesce-barrier watchdog surfaces it as a loss. --
//
// SIGSTOP does not close the socket, so the EOF path never fires; a worker
// dying between registration and its first mark report used to hang the
// barrier forever. The watchdog probes the silent worker after
// barrier_timeout_ms without control-plane progress and drops it after one
// more window.

TEST(Membership, BarrierWatchdogDropsStoppedWorker) {
  RigParams rp;
  rp.seed = 11;
  ProcOptions popt;
  popt.workers = 2;
  popt.barrier_timeout_ms = 400;
  Rig rig(rp, popt);

  const long pid = rig.eng().worker_pid(1);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGSTOP), 0);

  // The cycle stalls at the barrier until the watchdog declares the stopped
  // worker dead, then restarts on the survivor and completes.
  rig.cycle_checked(/*detect_deadlock=*/false, 0);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(rig.eng().stats().workers_lost, 1u);
  EXPECT_FALSE(rig.eng().worker_alive(1));
  EXPECT_EQ(rig.eng().workers_live(), 1u);
  // Reap: stop() SIGKILLs stragglers, and SIGKILL works on stopped processes.
}

// ---- Differential handoffs: stable graph => header-sized deltas. ----

TEST(Membership, DeltaHandoffsShrinkOnStableGraph) {
  RigParams rp;
  rp.seed = 13;
  ProcOptions popt;
  popt.workers = 2;
  Rig rig(rp, popt);
  // Cycle 1 ships full snapshots; with zero mutation afterwards every later
  // plane's handoff is a pure delta an order of magnitude smaller.
  for (int round = 0; round < 4; ++round) {
    rig.cycle_checked(false, round);
    if (::testing::Test::HasFatalFailure()) return;
  }
  const ProcEngineStats s = rig.eng().stats();
  ASSERT_GT(s.handoffs_full, 0u);
  ASSERT_GT(s.handoffs_delta, 0u);
  const double per_full =
      static_cast<double>(s.handoff_full_bytes) / s.handoffs_full;
  const double per_delta =
      static_cast<double>(s.handoff_delta_bytes) / s.handoffs_delta;
  EXPECT_LT(per_delta, 0.10 * per_full)
      << "avg delta " << per_delta << " B vs avg full " << per_full << " B";
  EXPECT_EQ(s.handoff_resyncs, 0u);  // checksums agreed throughout
  // And the accounting partitions exactly.
  EXPECT_EQ(s.handoff_bytes, s.handoff_full_bytes + s.handoff_delta_bytes);
  EXPECT_EQ(s.handoffs_sent, s.handoffs_full + s.handoffs_delta);
}

// ---- Checksum handshake: a diverged replica forces a full resync. ----

TEST(Membership, CorruptReplicaForcesChecksumResync) {
  // DGR_TEST_CORRUPT_HANDOFF="1:2": worker 1 flips a structural bit in its
  // replica right after its 2nd handoff apply, so that handoff's ack nacks.
  // The controller must fence + force a full snapshot, and every checked
  // cycle must still be oracle-exact: the diverged replica never completes
  // a wave (ack precedes the mark report on the same FIFO).
  ASSERT_EQ(::setenv("DGR_TEST_CORRUPT_HANDOFF", "1:2", 1), 0);
  RigParams rp;
  rp.seed = 17;
  ProcOptions popt;
  popt.workers = 2;
  {
    Rig rig(rp, popt);
    for (int round = 0; round < 3; ++round) {
      rig.cycle_checked(round == 0, round);
      if (::testing::Test::HasFatalFailure()) break;
      rig.churn(3);
    }
    const ProcEngineStats s = rig.eng().stats();
    EXPECT_GE(s.handoff_resyncs, 1u);
    EXPECT_EQ(s.workers_lost, 0u);  // a resync is not a loss
    EXPECT_GE(rig.eng().membership_gen(), 1u);  // but it does fence
    EXPECT_EQ(rig.eng().workers_live(), 2u);
  }
  ASSERT_EQ(::unsetenv("DGR_TEST_CORRUPT_HANDOFF"), 0);
}

// ---- Generation fence: a dead worker's slot refuses re-registration. ----

TEST(Membership, DeadSlotRejectedAfterFence) {
  RigParams rp;
  rp.seed = 19;
  rp.vertices = 200;
  rp.capacity = 400;
  ProcOptions popt;
  popt.workers = 2;
  popt.tcp = true;  // dial the hub from the test over loopback
  Rig rig(rp, popt);

  const long pid = rig.eng().worker_pid(0);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGKILL), 0);
  rig.wait_worker_dead(0);
  if (::testing::Test::HasFatalFailure()) return;

  // A late reconnect into the fenced slot must be refused: its partition
  // was already reassigned, and a zombie replica marking it would violate
  // the single-owner invariant.
  SocketAddr addr;
  ASSERT_TRUE(SocketAddr::parse(rig.eng().address(), addr));
  Socket s = socket_connect(addr, 2000);
  ASSERT_TRUE(s.valid());
  RegisterMsg reg;
  reg.proto_version = kProtoVersion;
  reg.worker_index = 0;
  reg.flags = kRegisterFlagReconnect;
  NetFrame rf;
  rf.type = FrameType::kRegister;
  rf.payload = encode_register(reg);
  const auto wire = encode_frame(rf);
  ASSERT_TRUE(s.write_all(wire.data(), wire.size()));

  FrameCodec c;
  std::uint8_t buf[4096];
  NetFrame reply;
  while (!c.next(reply)) {
    const long n = s.read_some(buf, sizeof(buf));
    ASSERT_GT(n, 0) << "hub closed without a reject frame";
    c.feed(buf, static_cast<std::size_t>(n));
  }
  ASSERT_EQ(reply.type, FrameType::kReject);
  RejectMsg rej;
  ASSERT_TRUE(decode_reject(reply.payload, rej));
  EXPECT_EQ(rej.code, 4u);  // "worker slot fenced after loss"

  // The cluster itself is unbothered: the survivor still passes a cycle.
  rig.cycle_checked(false, 1);
}

}  // namespace
}  // namespace dgr
