// Running in finite local store: allocation failures trigger collection
// cycles, exactly the regime the paper's collector exists for. Each PE has a
// small fixed arena; fib(16) allocates far more vertices than fit, and the
// computation completes only because consumed subgraphs are continuously
// reclaimed into the free lists (F).
#include <cstdio>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

int main() {
  using namespace dgr;

  constexpr std::uint32_t kPes = 4;
  constexpr std::uint32_t kSlotsPerPe = 2000;

  Graph graph(kPes, kSlotsPerPe);
  for (PeId pe = 0; pe < kPes; ++pe) graph.store(pe).set_fixed_capacity(true);

  SimOptions sim;
  sim.seed = 1;
  SimEngine engine(graph, sim);
  Machine machine(
      graph, engine.mutator(), engine,
      Program::from_source(
          "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);"
          "def main() = fib(16);"));
  const VertexId root = machine.load_main();
  engine.set_root(root);
  engine.set_reducer([&](const Task& t) { machine.exec(t); });
  machine.set_exhaustion_handler([&] {
    if (engine.controller().idle())
      engine.controller().start_cycle(CycleOptions{false});
  });
  machine.demand(root);
  engine.run();

  if (machine.has_error() || !machine.result_of(root)) {
    std::printf("failed: %s\n", machine.has_error()
                                    ? machine.error().c_str()
                                    : "no result (out of memory?)");
    return 1;
  }
  std::printf("fib(16) = %s  (expected 987)\n",
              machine.result_of(root)->to_string().c_str());
  std::printf("arena: %u PEs x %u slots = %u vertices total\n", kPes,
              kSlotsPerPe, kPes * kSlotsPerPe);
  std::printf("vertices allocated over the run: %llu (%.1fx the arena)\n",
              (unsigned long long)machine.stats().vertices_allocated,
              static_cast<double>(machine.stats().vertices_allocated) /
                  (kPes * kSlotsPerPe));
  std::printf("allocation stalls: %llu; collection cycles: %llu; "
              "vertices reclaimed: %llu\n",
              (unsigned long long)machine.stats().alloc_failures,
              (unsigned long long)engine.controller().cycles_completed(),
              (unsigned long long)engine.controller().total_swept());
  return machine.result_of(root)->as_int() == 987 ? 0 : 1;
}
