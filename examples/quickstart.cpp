// Quickstart: evaluate a small functional program on the distributed
// graph-reduction runtime, with the concurrent marking collector running
// continuously underneath.
//
//   $ ./quickstart
//
// What it shows, end to end:
//   1. compile a program to function templates,
//   2. load it into a 4-PE partitioned graph,
//   3. demand the root's value (the initial <-,root> task),
//   4. interleave reduction with endless mark/restructure cycles,
//   5. read the result and the collector's tallies.
#include <cstdio>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

int main() {
  using namespace dgr;

  const char* source =
      "# Sum of the first n squares, recursively.\n"
      "def square(x) = x * x;\n"
      "def sum_sq(n) = if n == 0 then 0 else square(n) + sum_sq(n - 1);\n"
      "def main() = sum_sq(100);\n";

  // A computation graph partitioned over 4 processing elements.
  Graph graph(4);
  SimOptions sim;
  sim.seed = 2026;
  SimEngine engine(graph, sim);

  // Compile and load the program; `main` becomes the root vertex.
  Machine machine(graph, engine.mutator(), engine, Program::from_source(source));
  const VertexId root = machine.load_main();
  engine.set_root(root);
  engine.set_reducer([&](const Task& t) { machine.exec(t); });

  // Collect continuously while the program runs (the paper's endless
  // mark/restructure cycle).
  engine.controller().set_continuous(true, CycleOptions{false});
  engine.controller().start_cycle(CycleOptions{false});

  // Demand the answer and run until it arrives.
  machine.demand(root);
  while (!machine.result_of(root).has_value()) {
    if (!engine.step()) break;
  }
  engine.controller().set_continuous(false);
  engine.run();

  if (machine.has_error()) {
    std::printf("runtime error: %s\n", machine.error().c_str());
    return 1;
  }
  const auto result = machine.result_of(root);
  std::printf("sum of squares 1..100 = %s   (expected 338350)\n",
              result->to_string().c_str());
  std::printf("tasks executed: %llu reduction, %llu marking\n",
              (unsigned long long)engine.metrics().reduction_tasks,
              (unsigned long long)(engine.metrics().mark_tasks +
                                   engine.metrics().return_tasks));
  std::printf("collector: %llu cycles, %llu vertices reclaimed\n",
              (unsigned long long)engine.controller().cycles_completed(),
              (unsigned long long)engine.controller().total_swept());
  std::printf("cross-PE messages: %llu\n",
              (unsigned long long)engine.metrics().remote_messages);
  return result->as_int() == 338350 ? 0 : 1;
}
