// Deadlock detection demo — the paper's Figure 3-1 (`x = x + 1`) arising
// from a real program, detected by the M_T-before-M_R marking cycle.
//
// The program computes one healthy strand and one self-dependent strand:
//
//   def main() = fib(10) + (let x = x + 1 in x);
//
// Reduction quiesces without an answer: fib's side completes, but x awaits
// its own value forever (x ∈ req-args_v(x)). A single detection cycle
// reports exactly the wedged vertices: DL'_v = R'_v − T' (Property 2',
// Theorem 2).
#include <cstdio>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

int main() {
  using namespace dgr;

  const char* source =
      "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2);\n"
      "def main() = fib(10) + (let x = x + 1 in x);\n";

  Graph graph(2);
  SimOptions sim;
  sim.seed = 7;
  SimEngine engine(graph, sim);
  Machine machine(graph, engine.mutator(), engine,
                  Program::from_source(source));
  const VertexId root = machine.load_main();
  engine.set_root(root);
  engine.set_reducer([&](const Task& t) { machine.exec(t); });
  machine.demand(root);
  engine.run();

  std::printf("reduction quiesced; result available: %s\n",
              machine.result_of(root) ? "yes (unexpected!)" : "no — wedged");

  // A deadlocked system "does no harm, it just never does any good" (§6);
  // run one M_T + M_R cycle to find out why it went quiet.
  engine.controller().start_cycle(CycleOptions{true});
  engine.run_until_cycle_done();
  const CycleResult& cycle = engine.controller().last();

  std::printf("deadlock report valid: %s\n",
              cycle.deadlock_report_valid ? "yes" : "no");
  std::printf("deadlocked vertices (R_v' − T'):\n");
  for (VertexId v : cycle.deadlocked) {
    const Vertex& vx = graph.at(v);
    std::printf("  PE %u, slot %u: op '%s', %zu unanswered dependencies\n",
                v.pe, v.idx, op_name(vx.op), vx.args.size());
    for (const ArgEdge& e : vx.args) {
      if (e.req != ReqKind::kNone && !e.value.defined()) {
        std::printf("    awaits %u:%u%s\n", e.to.pe, e.to.idx,
                    e.to == v ? "  <-- itself (the Fig 3-1 knot)" : "");
      }
    }
  }
  // Expect the root adder and the self-dependent x.
  return cycle.deadlocked.size() >= 2 ? 0 : 1;
}
