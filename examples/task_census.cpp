// Task census: watch the four task types of Figure 3-2 evolve on a live
// workload. Each collection cycle classifies every pooled task through the
// destination's marked priority (Properties 3-6) and re-buckets the pools;
// this example prints the census per cycle.
#include <cstdio>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

int main() {
  using namespace dgr;

  // A speculation-heavy program: predicates are slow, so eager branch work
  // is plentiful; some of it becomes vital (taken branches), the rest
  // irrelevant (untaken, including a divergent one).
  const char* source =
      "def slow(n, r) = if n == 0 then r else slow(n - 1, r);\n"
      "def boom(n) = boom(n + 1) + boom(n + 2);\n"
      "def work(d) = if slow(12, d < 10) then d * 10 else boom(d);\n"
      "def main() = work(1) + work(2) + work(5);\n";

  Graph graph(4);
  SimOptions sim;
  sim.seed = 4;
  SimEngine engine(graph, sim);
  MachineOptions mopt;
  mopt.speculate_if = true;
  Machine machine(graph, engine.mutator(), engine,
                  Program::from_source(source), mopt);
  const VertexId root = machine.load_main();
  engine.set_root(root);
  engine.set_reducer([&](const Task& t) { machine.exec(t); });
  machine.demand(root);

  auto census = [&](const char* when) {
    std::size_t vital = 0, eager = 0, reserve = 0;
    for (PeId pe = 0; pe < graph.num_pes(); ++pe) {
      engine.pool(pe).for_each([&](const Task& t) {
        switch (engine.marker().prior(Plane::kR, t.d)) {
          case 3: ++vital; break;
          case 2: ++eager; break;
          default: ++reserve; break;
        }
      });
    }
    std::printf("%-14s pooled: %4zu vital, %4zu eager, %4zu reserve; "
                "expunged so far: %llu; swept so far: %llu\n",
                when, vital, eager, reserve,
                (unsigned long long)engine.controller().total_expunged(),
                (unsigned long long)engine.controller().total_swept());
  };

  int cycle_no = 0;
  engine.controller().set_cycle_observer([&](const CycleResult& c) {
    std::printf("cycle %-2d: swept %zu, expunged %zu irrelevant, "
                "re-prioritized %zu\n",
                ++cycle_no, c.swept, c.expunged, c.reprioritized);
    census("  after cycle");
  });

  // Interleave bursts of reduction with collection cycles.
  while (!machine.result_of(root).has_value()) {
    for (int i = 0; i < 2000 && !machine.result_of(root).has_value(); ++i) {
      if (!engine.step()) break;
    }
    if (engine.controller().idle() && !machine.result_of(root).has_value()) {
      engine.controller().start_cycle(CycleOptions{false});
      engine.run_until_cycle_done(100'000'000);
    }
  }
  std::printf("\nresult: %s (expected 80)\n",
              machine.result_of(root)->to_string().c_str());

  // Drain the leftover speculation (every boom() was on an untaken branch —
  // all of it is irrelevant now).
  engine.controller().start_cycle(CycleOptions{false});
  engine.run_until_cycle_done(100'000'000);
  engine.run();
  census("final");
  std::printf("quiescent: %s\n", engine.quiescent() ? "yes" : "no");
  return machine.result_of(root)->as_int() == 80 && engine.quiescent() ? 0 : 1;
}
