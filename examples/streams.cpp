// Infinite lazy streams under continuous collection.
//
// `from(n)` builds an endless stream — a cons cell whose fields are plain,
// UNREQUESTED args: exactly the paper's reserve dependencies, evaluated only
// when head/tail demand them. Consuming the stream leaves a trail of spent
// cells; the concurrent marker reclaims the prefix while the producer keeps
// extending the tail. A fixed arena far smaller than the total number of
// cells consumed proves the steady-state works.
#include <cstdio>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

int main() {
  using namespace dgr;

  const char* source =
      "def from(n) = cons(n, from(n + 1));\n"
      "def sq_sum(k, xs) = if k == 0 then 0\n"
      "  else head(xs) * head(xs) + sq_sum(k - 1, tail(xs));\n"
      "def main() = sq_sum(200, from(1));\n";

  constexpr std::uint32_t kPes = 4;
  constexpr std::uint32_t kSlotsPerPe = 500;  // tiny arenas, long stream
  Graph graph(kPes, kSlotsPerPe);
  for (PeId pe = 0; pe < kPes; ++pe) graph.store(pe).set_fixed_capacity(true);

  SimOptions sim;
  sim.seed = 11;
  SimEngine engine(graph, sim);
  Machine machine(graph, engine.mutator(), engine,
                  Program::from_source(source));
  const VertexId root = machine.load_main();
  engine.set_root(root);
  engine.set_reducer([&](const Task& t) { machine.exec(t); });
  machine.set_exhaustion_handler([&] {
    if (engine.controller().idle())
      engine.controller().start_cycle(CycleOptions{false});
  });
  machine.demand(root);
  engine.run();

  if (machine.has_error() || !machine.result_of(root)) {
    std::printf("failed: %s\n", machine.has_error() ? machine.error().c_str()
                                                    : "no result");
    return 1;
  }
  const std::int64_t want = 200LL * 201 * 401 / 6;  // sum of squares 1..200
  std::printf("sum of squares over an infinite stream, first 200 = %s "
              "(expected %lld)\n",
              machine.result_of(root)->to_string().c_str(),
              (long long)want);
  std::printf("arena: %u vertices; allocated over the run: %llu (%.1fx)\n",
              kPes * kSlotsPerPe,
              (unsigned long long)machine.stats().vertices_allocated,
              static_cast<double>(machine.stats().vertices_allocated) /
                  (kPes * kSlotsPerPe));
  std::printf("collection cycles: %llu; cells+spine reclaimed: %llu\n",
              (unsigned long long)engine.controller().cycles_completed(),
              (unsigned long long)engine.controller().total_swept());
  return machine.result_of(root)->as_int() == want ? 0 : 1;
}
