// Eager speculation and irrelevant-task management — the dynamics of the
// paper's Figure 3-2 and §3.2 on a real workload.
//
// With speculation on, every `if` eagerly requests both branches. Here the
// predicate is expensive (so speculation has time to run), one branch is the
// cheap right answer, and the other DIVERGES — an unbounded irrelevant
// workload once the predicate resolves. The marking cycle classifies the
// orphaned tasks irrelevant (Property 6) and expunges them; their vertices
// go back to the free list.
#include <cstdio>

#include "reduction/machine.h"
#include "runtime/sim_engine.h"

int main() {
  using namespace dgr;

  const char* source =
      "def slow_true(n) = if n == 0 then true else slow_true(n - 1);\n"
      "def boom(n) = boom(n + 1);\n"
      "def main() = if slow_true(200) then 7 * 6 else boom(0);\n";

  Graph graph(4);
  SimOptions sim;
  sim.seed = 99;
  SimEngine engine(graph, sim);
  MachineOptions mopt;
  mopt.speculate_if = true;  // §3.2: eager tasks, resources permitting
  Machine machine(graph, engine.mutator(), engine,
                  Program::from_source(source), mopt);
  const VertexId root = machine.load_main();
  engine.set_root(root);
  engine.set_reducer([&](const Task& t) { machine.exec(t); });
  machine.demand(root);

  // Run until the answer is known; the boom() branch keeps spawning.
  while (!machine.result_of(root).has_value()) {
    if (!engine.step()) break;
  }
  std::printf("answer computed: %s\n",
              machine.result_of(root)->to_string().c_str());
  std::printf("speculative requests issued: %llu\n",
              (unsigned long long)machine.stats().speculative_requests);

  // Give the orphaned speculation room to demonstrate §3.2 item 3: an
  // "arbitrarily large (and irrelevant) parallel workload".
  for (int i = 0; i < 30000; ++i) engine.step();
  std::printf("runaway: %zu pending irrelevant tasks, %zu live vertices\n",
              engine.pending_reduction(), graph.total_live());

  // One marking cycle contains it.
  engine.controller().start_cycle(CycleOptions{false});
  engine.run_until_cycle_done();
  std::printf("cycle: expunged %zu tasks, swept %zu vertices\n",
              engine.controller().last().expunged,
              engine.controller().last().swept);
  engine.run();
  std::printf("after drain: %zu pending tasks, %zu live vertices, "
              "quiescent=%s\n",
              engine.pending_reduction(), graph.total_live(),
              engine.quiescent() ? "yes" : "no");
  return engine.quiescent() &&
                 machine.result_of(root)->as_int() == 42
             ? 0
             : 1;
}
