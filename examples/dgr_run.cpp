// dgr_run — evaluate a program written in the mini-language from a file or
// stdin on the distributed reduction runtime.
//
//   $ ./dgr_run program.dgr
//   $ echo 'def main() = 6 * 7;' | ./dgr_run -
//
// Flags (simple positional/env-free parsing):
//   --pes N          number of processing elements (default 4)
//   --seed S         scheduler seed (default 1)
//   --speculate      eager-evaluate both branches of every if
//   --gc             run continuous marking cycles during evaluation
//   --detect-deadlock  run M_T in --gc cycles; report deadlocked vertices
//                    if evaluation wedges
//   --latency N      cross-PE message delivery delay, in sim steps
//   --stats          print machine/engine statistics
//   --trace FILE     write a Chrome trace_event file (implies --gc; load in
//                    chrome://tracing or https://ui.perfetto.dev)
//   --trace-jsonl FILE  write the raw trace as deterministic JSONL
//   --metrics FILE   write the per-PE metrics registry as JSON
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/trace.h"
#include "reduction/machine.h"
#include "runtime/sim_engine.h"

namespace {

void write_file(const char* path, const std::string& data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "dgr_run: cannot write '%s'\n", path);
    std::exit(2);
  }
  f << data;
}

std::string read_all(const char* path) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "dgr_run: cannot open '%s'\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgr;

  const char* path = nullptr;
  std::uint32_t pes = 4;
  std::uint64_t seed = 1;
  bool speculate = false, gc = false, detect = false, stats = false;
  std::uint32_t latency = 0;
  const char* trace_path = nullptr;
  const char* jsonl_path = nullptr;
  const char* metrics_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--pes") && i + 1 < argc) {
      pes = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--latency") && i + 1 < argc) {
      latency = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
      gc = true;  // a trace without marking cycles would be empty
    } else if (!std::strcmp(argv[i], "--trace-jsonl") && i + 1 < argc) {
      jsonl_path = argv[++i];
      gc = true;
    } else if (!std::strcmp(argv[i], "--metrics") && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--speculate")) {
      speculate = true;
    } else if (!std::strcmp(argv[i], "--gc")) {
      gc = true;
    } else if (!std::strcmp(argv[i], "--detect-deadlock")) {
      detect = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      stats = true;
    } else if (argv[i][0] != '-' || !std::strcmp(argv[i], "-")) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "dgr_run: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (!path) {
    std::fprintf(stderr,
                 "usage: dgr_run [--pes N] [--seed S] [--speculate] [--gc] "
                 "[--detect-deadlock] [--stats] [--trace FILE] "
                 "[--trace-jsonl FILE] [--metrics FILE] <file|->\n");
    return 2;
  }
#if !DGR_TRACE_ENABLED
  if (trace_path || jsonl_path) {
    std::fprintf(stderr,
                 "dgr_run: tracing was compiled out (-DDGR_TRACE=OFF)\n");
    return 2;
  }
#endif

  Graph graph(pes);
  SimOptions sim;
  sim.seed = seed;
  sim.max_latency = latency;
  SimEngine engine(graph, sim);
  MachineOptions mopt;
  mopt.speculate_if = speculate;

  std::unique_ptr<Machine> machine;
  try {
    machine = std::make_unique<Machine>(graph, engine.mutator(), engine,
                                        Program::from_source(read_all(path)),
                                        mopt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dgr_run: %s\n", e.what());
    return 2;
  }
  const VertexId root = machine->load_main();
  engine.set_root(root);
  engine.set_reducer([&](const Task& t) { machine->exec(t); });
  if (trace_path || jsonl_path) engine.enable_trace();
  if (gc) {
    // With --detect-deadlock, every continuous cycle runs M_T before M_R
    // (deadlock detection per cycle); otherwise cycles are M_R-only.
    const CycleOptions copt{detect};
    engine.controller().set_continuous(true, copt);
    engine.controller().start_cycle(copt);
  }
  machine->demand(root);
  while (!machine->result_of(root).has_value()) {
    if (!engine.step()) break;
  }
  engine.controller().set_continuous(false);
  engine.run();

  int rc = 0;
  if (machine->has_error()) {
    std::printf("error: %s\n", machine->error().c_str());
    rc = 1;
  } else if (auto r = machine->result_of(root)) {
    std::printf("%s\n", r->to_string().c_str());
  } else {
    std::printf("no result: evaluation wedged\n");
    rc = 1;
    if (detect) {
      engine.controller().start_cycle(CycleOptions{true});
      engine.run_until_cycle_done();
      for (VertexId v : engine.controller().last().deadlocked)
        std::printf("deadlocked vertex %u:%u (op %s)\n", v.pe, v.idx,
                    op_name(graph.at(v).op));
    }
  }
  if (stats) {
    const MachineStats& ms = machine->stats();
    std::printf(
        "# requests=%llu returns=%llu evals=%llu instantiations=%llu "
        "alloc=%llu\n",
        (unsigned long long)ms.requests, (unsigned long long)ms.returns,
        (unsigned long long)ms.evals, (unsigned long long)ms.instantiations,
        (unsigned long long)ms.vertices_allocated);
    std::printf("# steps=%llu remote_msgs=%llu gc_cycles=%llu swept=%llu\n",
                (unsigned long long)engine.metrics().steps,
                (unsigned long long)engine.metrics().remote_messages,
                (unsigned long long)engine.controller().cycles_completed(),
                (unsigned long long)engine.controller().total_swept());
  }
#if DGR_TRACE_ENABLED
  if (trace_path || jsonl_path) {
    const std::vector<obs::TraceEvent> events = engine.trace()->snapshot();
    if (trace_path)
      write_file(trace_path, obs::to_chrome_trace(events, graph.num_pes()));
    if (jsonl_path) write_file(jsonl_path, obs::to_jsonl(events));
  }
#endif
  if (metrics_path)
    write_file(metrics_path, engine.metrics_registry().to_json() + "\n");
  return rc;
}
