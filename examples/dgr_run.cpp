// dgr_run — evaluate a program written in the mini-language from a file or
// stdin on the distributed reduction runtime.
//
//   $ ./dgr_run program.dgr
//   $ echo 'def main() = 6 * 7;' | ./dgr_run -
//
// Flags (simple positional/env-free parsing):
//   --pes N          number of processing elements (default 4)
//   --seed S         scheduler seed (default 1)
//   --speculate      eager-evaluate both branches of every if
//   --gc             run continuous marking cycles during evaluation
//   --detect-deadlock  run M_T in --gc cycles; report deadlocked vertices
//                    if evaluation wedges
//   --latency N      cross-PE message delivery delay, in sim steps
//   --stats [N]      print machine/engine statistics; with a numeric N, also
//                    print a live one-line health rollup every N audit
//                    cycles (marks/s, remote share, retransmits, worker
//                    liveness, telemetry drops)
//   --stats-jsonl FILE  append the health rollup as JSONL rows (machine
//                    form of --stats N; implies a period of 1 if none given)
//   --trace FILE     write a Chrome trace_event file (implies --gc; load in
//                    chrome://tracing or https://ui.perfetto.dev)
//   --trace-jsonl FILE  write the raw trace as deterministic JSONL
//   --metrics FILE   write the per-PE metrics registry as JSON
//   --audit N        online health auditing: paranoid sweep cross-checks
//                    during evaluation (implies --gc), then a post-evaluation
//                    ThreadEngine phase over the evaluated graph running
//                    safe-point audits (§5.4.1 invariants + Property 1
//                    accounting) every Nth cycle, with the stall watchdog
//                    armed
//   --audit-cycles K number of threaded audit cycles to run (default 50)
//   --health-fatal   exit nonzero if any audit violation or health warning
//                    was recorded (CI hook)
//   --wedge-steps N  with --gc: declare evaluation wedged after N sim steps
//                    of zero reduction progress (default 200000)
//   --fault-drop P   inject message faults into the threaded audit phase:
//   --fault-dup P    per-message probabilities of drop / duplicate /
//   --fault-reorder P  reorder / truncate on every directed PE pair. Any
//   --fault-trunc P  nonzero probability activates the fault plane plus the
//                    reliable channel (exactly-once recovery) and implies
//                    --audit 1 unless --audit was given (docs/FAULTS.md)
//   --fault-seed S   fault-schedule seed (default 1; deterministic per pair)
//   --batch-bytes N  threaded audit phase: coalesce outgoing messages per
//                    directed PE pair into batches of up to N bytes
//                    (default 4096; see docs/PERF.md)
//   --batch-us U     flush a partial batch once its oldest message is U
//                    microseconds old (default 100)
//   --no-batch       disable batching (one message per frame/delivery —
//                    the exact pre-batching message plane)
//   --partition P    instance-vertex placement: scatter (default; each
//                    template node round-robins across PEs), home (all on
//                    the caller's PE), chunk/greedy (one PE per
//                    instantiation — the streaming greedy partitioner)
//   --steal          threaded audit phase: idle PEs steal half of the
//   --no-steal       deepest peer mailbox instead of parking (default on)
//   --workers N      run the audit phase on N real worker processes instead
//                    of in-process threads: the controller stays here, forks
//                    N dgr_worker processes, hands each its graph partition
//                    over the socket transport, and merges their mark
//                    reports (implies --audit 1; see docs/CLUSTER.md).
//                    --fault-* flags compose: the fault plane then runs
//                    over the socket on worker<->worker mark traffic
//   --worker-bin P   path to the dgr_worker binary (default: $DGR_WORKER_BIN,
//                    then "dgr_worker" on $PATH)
//   --transport T    worker transport: uds (default) or tcp (loopback)
//
// With --audit, any --trace/--trace-jsonl/--metrics also writes the audit
// phase's own exports next to the sim phase's, as "<path>.audit.json[l]"
// (those carry the fault_injected / retransmit events dgr_analyze rolls up).
//
// With --workers N the primary --trace/--trace-jsonl/--metrics paths carry
// the CLUSTER view of the multi-process phase: the Chrome trace merges the
// controller and every worker into one timeline (pid 0 = controller, pid
// w+1 = worker w; worker timestamps rebased onto the controller clock), the
// JSONL holds the same merged stream, and the metrics JSON is the merged
// registry plus a per-worker "workers":[...] rollup. The sim phase's own
// exports move to "<path>.sim.json[l]" (docs/OBSERVABILITY.md).
#include <signal.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "reduction/machine.h"
#include "runtime/proc_engine.h"
#include "runtime/sim_engine.h"
#include "runtime/thread_engine.h"

namespace {

void write_file(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "dgr_run: cannot write '%s'\n", path.c_str());
    std::exit(2);
  }
  f << data;
}

std::string read_all(const char* path) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "dgr_run: cannot open '%s'\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Live health rollup (--stats N / --stats-jsonl): samples registry totals
// after each audit cycle and emits one line per N-cycle window. Pure
// delta-of-totals sampling, so the same emitter serves the threaded and the
// multi-process phases.
class HealthEmitter {
 public:
  HealthEmitter(std::uint32_t period, const char* jsonl_path)
      : period_(period), last_(std::chrono::steady_clock::now()) {
    if (jsonl_path) {
      jsonl_.open(jsonl_path, std::ios::binary);
      if (!jsonl_) {
        std::fprintf(stderr, "dgr_run: cannot write '%s'\n", jsonl_path);
        std::exit(2);
      }
    }
  }

  bool enabled() const { return period_ != 0; }

  void on_cycle(const dgr::obs::MetricsRegistry& reg, std::uint64_t cycle,
                std::uint32_t workers_live, std::uint32_t workers_total) {
    using dgr::obs::Counter;
    if (!enabled() || cycle % period_ != 0) return;
    const auto now = std::chrono::steady_clock::now();
    dgr::obs::HealthSnapshot s;
    s.cycle = cycle;
    s.cycles_window = period_;
    s.window_ms =
        std::chrono::duration<double, std::milli>(now - last_).count();
    const std::uint64_t marks =
        reg.total(Counter::kMarkTasks) + reg.total(Counter::kReturnTasks);
    const std::uint64_t remote = reg.total(Counter::kRemoteMessages);
    const std::uint64_t local = reg.total(Counter::kLocalMessages);
    const std::uint64_t retx = reg.total(Counter::kMsgRetransmit);
    s.marks = marks - prev_marks_;
    s.remote_msgs = remote - prev_remote_;
    s.local_msgs = local - prev_local_;
    s.retransmits = retx - prev_retx_;
    s.telemetry_dropped = reg.total(Counter::kTelemetryDropped);
    // Mutator-stall rollup (cumulative): the reduction's own cooperative
    // mutations sample Hist::kMutatorStallUs just like the workload driver.
    const auto stall = reg.merged_hist(dgr::obs::Hist::kMutatorStallUs);
    s.stall_ops = stall.count();
    s.stall_p99_us = stall.count() ? stall.percentile(99.0) : 0.0;
    s.workers_live = workers_live;
    s.workers_total = workers_total;
    prev_marks_ = marks;
    prev_remote_ = remote;
    prev_local_ = local;
    prev_retx_ = retx;
    last_ = now;
    std::printf("# %s\n", dgr::obs::health_line(s).c_str());
    if (jsonl_.is_open()) jsonl_ << dgr::obs::health_jsonl(s) << "\n";
  }

 private:
  std::uint32_t period_;
  std::ofstream jsonl_;
  std::chrono::steady_clock::time_point last_;
  std::uint64_t prev_marks_ = 0, prev_remote_ = 0, prev_local_ = 0,
                prev_retx_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dgr;

  const char* path = nullptr;
  std::uint32_t pes = 4;
  std::uint64_t seed = 1;
  bool speculate = false, gc = false, detect = false, stats = false;
  bool health_fatal = false;
  std::uint32_t audit_period = 0;
  std::uint32_t audit_cycles = 50;
  std::uint64_t wedge_steps = 200000;
  std::uint32_t latency = 0;
  std::uint32_t workers = 0;
  const char* worker_bin = nullptr;
  bool worker_tcp = false;
  // Chaos leg: SIGKILL worker W right after cycle C starts ("W@C"; bare "W"
  // kills at the midpoint of --audit-cycles). The run is then REQUIRED to
  // survive — recover onto the remaining workers and keep auditing clean.
  std::uint32_t kill_worker = kAnyWorkerIndex;
  std::uint32_t kill_cycle = 0;
  Placement placement = Placement::kScatter;
  NetOptions net;
  const char* trace_path = nullptr;
  const char* jsonl_path = nullptr;
  const char* metrics_path = nullptr;
  std::uint32_t stats_period = 0;
  const char* stats_jsonl_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--pes") && i + 1 < argc) {
      pes = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--latency") && i + 1 < argc) {
      latency = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
      gc = true;  // a trace without marking cycles would be empty
    } else if (!std::strcmp(argv[i], "--trace-jsonl") && i + 1 < argc) {
      jsonl_path = argv[++i];
      gc = true;
    } else if (!std::strcmp(argv[i], "--metrics") && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--speculate")) {
      speculate = true;
    } else if (!std::strcmp(argv[i], "--gc")) {
      gc = true;
    } else if (!std::strcmp(argv[i], "--detect-deadlock")) {
      detect = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      stats = true;
      // Optional numeric argument: health-rollup period in audit cycles.
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0])))
        stats_period = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--stats-jsonl") && i + 1 < argc) {
      stats_jsonl_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--audit") && i + 1 < argc) {
      audit_period = static_cast<std::uint32_t>(std::atoi(argv[++i]));
      gc = true;  // auditing is about the marking cycles
    } else if (!std::strcmp(argv[i], "--audit-cycles") && i + 1 < argc) {
      audit_cycles = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--health-fatal")) {
      health_fatal = true;
    } else if (!std::strcmp(argv[i], "--wedge-steps") && i + 1 < argc) {
      wedge_steps = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--fault-seed") && i + 1 < argc) {
      net.faults.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--fault-drop") && i + 1 < argc) {
      net.faults.spec.drop = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--fault-dup") && i + 1 < argc) {
      net.faults.spec.duplicate = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--fault-reorder") && i + 1 < argc) {
      net.faults.spec.reorder = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--fault-trunc") && i + 1 < argc) {
      net.faults.spec.truncate = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--batch-bytes") && i + 1 < argc) {
      net.batch_bytes = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--batch-us") && i + 1 < argc) {
      net.batch_flush_us = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--no-batch")) {
      net.batch_bytes = 0;  // exact pre-batching message plane
    } else if (!std::strcmp(argv[i], "--partition") && i + 1 < argc) {
      if (!parse_placement(argv[++i], &placement)) {
        std::fprintf(stderr,
                     "dgr_run: --partition expects scatter|home|chunk|greedy "
                     "(got '%s')\n",
                     argv[i]);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--steal")) {
      net.steal = true;
    } else if (!std::strcmp(argv[i], "--no-steal")) {
      net.steal = false;
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      workers = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--worker-bin") && i + 1 < argc) {
      worker_bin = argv[++i];
    } else if (!std::strcmp(argv[i], "--kill-worker") && i + 1 < argc) {
      ++i;
      unsigned w = 0, c = 0;
      if (std::sscanf(argv[i], "%u@%u", &w, &c) == 2) {
        kill_worker = w;
        kill_cycle = c;
      } else if (std::sscanf(argv[i], "%u", &w) == 1) {
        kill_worker = w;  // kill_cycle 0 = midpoint, resolved below
      } else {
        std::fprintf(stderr,
                     "dgr_run: --kill-worker expects W or W@CYCLE (got '%s')\n",
                     argv[i]);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--transport") && i + 1 < argc) {
      ++i;
      if (!std::strcmp(argv[i], "tcp")) {
        worker_tcp = true;
      } else if (!std::strcmp(argv[i], "uds")) {
        worker_tcp = false;
      } else {
        std::fprintf(stderr, "dgr_run: --transport expects uds|tcp (got '%s')\n",
                     argv[i]);
        return 2;
      }
    } else if (argv[i][0] != '-' || !std::strcmp(argv[i], "-")) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "dgr_run: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (stats_jsonl_path && stats_period == 0) stats_period = 1;
  if (stats_period && audit_period == 0) {
    // The rollup samples at the audit-cycle boundary; arm the audit phase.
    gc = true;
    audit_period = 1;
  }
  if (net.enabled() || workers > 0) {
    // Faults and multi-process runs exercise the audit phase; make sure it
    // runs, auditing every cycle unless the user chose a coarser period.
    gc = true;
    if (audit_period == 0) audit_period = 1;
  }
  if (kill_worker != kAnyWorkerIndex) {
    if (workers < 2 || kill_worker >= workers) {
      std::fprintf(stderr,
                   "dgr_run: --kill-worker needs --workers >= 2 and a valid "
                   "worker index (survivors must exist)\n");
      return 2;
    }
    if (kill_cycle == 0) kill_cycle = audit_cycles / 2 ? audit_cycles / 2 : 1;
  }
  if (!path) {
    std::fprintf(stderr,
                 "usage: dgr_run [--pes N] [--seed S] [--speculate] [--gc] "
                 "[--detect-deadlock] [--stats [N]] [--stats-jsonl FILE] "
                 "[--trace FILE] "
                 "[--trace-jsonl FILE] [--metrics FILE] [--audit N] "
                 "[--audit-cycles K] [--health-fatal] [--fault-seed S] "
                 "[--fault-drop P] [--fault-dup P] [--fault-reorder P] "
                 "[--fault-trunc P] [--batch-bytes N] [--batch-us U] "
                 "[--no-batch] [--partition P] [--steal|--no-steal] "
                 "[--workers N] [--worker-bin PATH] [--transport uds|tcp] "
                 "[--kill-worker W[@CYCLE]] <file|->\n");
    return 2;
  }
#if !DGR_TRACE_ENABLED
  if (trace_path || jsonl_path) {
    std::fprintf(stderr,
                 "dgr_run: tracing was compiled out (-DDGR_TRACE=OFF)\n");
    return 2;
  }
#endif

  Graph graph(pes);
  SimOptions sim;
  sim.seed = seed;
  sim.max_latency = latency;
  SimEngine engine(graph, sim);
  MachineOptions mopt;
  mopt.speculate_if = speculate;
  mopt.placement = placement;

  std::unique_ptr<Machine> machine;
  try {
    machine = std::make_unique<Machine>(graph, engine.mutator(), engine,
                                        Program::from_source(read_all(path)),
                                        mopt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dgr_run: %s\n", e.what());
    return 2;
  }
  const VertexId root = machine->load_main();
  engine.set_root(root);
  engine.set_reducer([&](const Task& t) { machine->exec(t); });
  if (trace_path || jsonl_path) engine.enable_trace();
  if (audit_period) engine.controller().set_paranoid_sweep_check(true);
  if (gc) {
    // With --detect-deadlock, every continuous cycle runs M_T before M_R
    // (deadlock detection per cycle); otherwise cycles are M_R-only.
    const CycleOptions copt{detect};
    engine.controller().set_continuous(true, copt);
    engine.controller().start_cycle(copt);
  }
  machine->demand(root);
  // With continuous GC the engine always has marking work, so step() alone
  // cannot signal a wedged evaluation. Track reduction progress: if the
  // machine does nothing for a long window while only the collector steps,
  // the computation is wedged (same deterministic break point per seed).
  std::uint64_t last_work = 0, quiet_steps = 0;
  while (!machine->result_of(root).has_value()) {
    if (!engine.step()) break;
    if (gc) {
      const MachineStats& ms = machine->stats();
      const std::uint64_t work =
          ms.requests + ms.returns + ms.evals + ms.instantiations;
      quiet_steps = work == last_work ? quiet_steps + 1 : 0;
      last_work = work;
      if (quiet_steps > wedge_steps) break;
    }
  }
  engine.controller().set_continuous(false);
  engine.run();

  int rc = 0;
  if (machine->has_error()) {
    std::printf("error: %s\n", machine->error().c_str());
    rc = 1;
  } else if (auto r = machine->result_of(root)) {
    std::printf("%s\n", r->to_string().c_str());
  } else {
    std::printf("no result: evaluation wedged\n");
    rc = 1;
    if (detect) {
      engine.controller().start_cycle(CycleOptions{true});
      engine.run_until_cycle_done();
      for (VertexId v : engine.controller().last().deadlocked)
        std::printf("deadlocked vertex %u:%u (op %s)\n", v.pe, v.idx,
                    op_name(graph.at(v).op));
    }
  }
  if (stats) {
    const MachineStats& ms = machine->stats();
    std::printf(
        "# requests=%llu returns=%llu evals=%llu instantiations=%llu "
        "alloc=%llu\n",
        (unsigned long long)ms.requests, (unsigned long long)ms.returns,
        (unsigned long long)ms.evals, (unsigned long long)ms.instantiations,
        (unsigned long long)ms.vertices_allocated);
    std::printf("# steps=%llu remote_msgs=%llu gc_cycles=%llu swept=%llu\n",
                (unsigned long long)engine.metrics().steps,
                (unsigned long long)engine.metrics().remote_messages,
                (unsigned long long)engine.controller().cycles_completed(),
                (unsigned long long)engine.controller().total_swept());
  }
  // In multi-process mode the primary export paths carry the merged cluster
  // view of the audit phase; the sim phase's own exports step aside.
  const bool proc_mode = audit_period && workers > 0;
#if DGR_TRACE_ENABLED
  if (trace_path || jsonl_path) {
    const std::vector<obs::TraceEvent> events = engine.trace()->snapshot();
    if (trace_path)
      write_file(proc_mode ? std::string(trace_path) + ".sim.json"
                           : std::string(trace_path),
                 obs::to_chrome_trace(events, graph.num_pes()));
    if (jsonl_path)
      write_file(proc_mode ? std::string(jsonl_path) + ".sim.jsonl"
                           : std::string(jsonl_path),
                 obs::to_jsonl(events));
  }
#endif
  if (metrics_path)
    write_file(proc_mode ? std::string(metrics_path) + ".sim.json"
                         : std::string(metrics_path),
               engine.metrics_registry().to_json() + "\n");

  if (audit_period && workers > 0) {
    // Multi-process audit phase: same safe-point audits over the evaluated
    // graph, but the marking waves run on forked dgr_worker processes. The
    // controller stays here, hands each worker its graph partition over the
    // socket transport, and merges their mark reports at every quiesce
    // barrier (docs/CLUSTER.md). Any --fault-* flags apply to the workers'
    // own message planes, so the fault plane rides over the socket.
    ProcOptions popt;
    popt.workers = workers;
    popt.tcp = worker_tcp;
    if (worker_bin) popt.worker_bin = worker_bin;
    popt.faults = net.faults.spec;
    popt.fault_seed = net.faults.seed;
    ProcEngine peng(graph, popt);
    peng.set_root(root);
    // Epoch hand-off, as in the threaded phase: the sim marker left
    // per-vertex tags that a marker restarting at epoch 1 would alias.
    peng.marker().seed_epoch(Plane::kR, engine.marker().epoch(Plane::kR));
    peng.marker().seed_epoch(Plane::kT, engine.marker().epoch(Plane::kT));
    AuditOptions aopt;
    aopt.period = audit_period;
    peng.enable_audit(aopt);
#if DGR_TRACE_ENABLED
    if (trace_path || jsonl_path) peng.enable_trace();
#endif
    peng.start();
    HealthEmitter health(stats_period, stats_jsonl_path);
    for (std::uint32_t i = 0; i < audit_cycles && !peng.failed(); ++i) {
      // start_cycle (not controller().start_cycle): the engine wrapper
      // excludes a concurrent membership recovery from racing the cycle's
      // task-root construction.
      peng.start_cycle(CycleOptions{detect});
      if (kill_worker != kAnyWorkerIndex && i + 1 == kill_cycle) {
        // Chaos: SIGKILL the victim mid-wave. The controller must detect
        // the loss (socket EOF or barrier watchdog), repartition onto the
        // survivors, and resume from the last completed quiesce.
        const long pid = peng.worker_pid(kill_worker);
        if (pid > 0) {
          std::printf("# chaos: killing worker %u (pid %ld) in cycle %u\n",
                      kill_worker, pid, i + 1);
          ::kill(static_cast<pid_t>(pid), SIGKILL);
        }
      }
      peng.wait_cycle_done();
      health.on_cycle(peng.metrics(), i + 1, peng.workers_live(),
                      peng.num_workers());
    }
    const bool worker_died = peng.failed();
    peng.stop();
    // Cluster observability on the PRIMARY paths: one Chrome trace merging
    // the controller (pid 0) with every worker (pid w+1), worker timestamps
    // rebased onto the controller clock; the JSONL is the same merged
    // stream; the metrics JSON is the merged registry plus the per-worker
    // rollup dgr_analyze's cluster section reads.
#if DGR_TRACE_ENABLED
    if (trace_path || jsonl_path) {
      const std::vector<obs::TraceEvent> ctrl = peng.trace()->snapshot();
      const std::vector<std::vector<obs::TraceEvent>> wtr =
          peng.worker_traces();
      if (trace_path)
        write_file(trace_path,
                   obs::to_chrome_trace_cluster(ctrl, wtr, graph.num_pes()));
      if (jsonl_path) {
        std::vector<obs::TraceEvent> merged = ctrl;
        for (const auto& w : wtr) merged.insert(merged.end(), w.begin(), w.end());
        std::stable_sort(merged.begin(), merged.end(),
                         [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                           return a.ts < b.ts;
                         });
        write_file(jsonl_path, obs::to_jsonl(merged));
      }
    }
#endif
    if (metrics_path)
      write_file(metrics_path, peng.cluster_metrics_json() + "\n");
    const AuditStats& as = peng.audit_stats();
    const ProcEngineStats ps = peng.stats();
    std::printf("# proc audit: %llu safe-point audits, %llu violations; "
                "workers: %u\n",
                (unsigned long long)as.audits,
                (unsigned long long)as.violations, peng.num_workers());
    if (as.violations)
      std::printf("# last audit violation: %s\n", as.last_what.c_str());
    std::printf(
        "# transport: frames=%llu sent / %llu received, bytes=%llu/%llu, "
        "accepts=%llu reconnects=%llu partial_resumes=%llu\n",
        (unsigned long long)ps.transport.frames_sent,
        (unsigned long long)ps.transport.frames_received,
        (unsigned long long)ps.transport.bytes_sent,
        (unsigned long long)ps.transport.bytes_received,
        (unsigned long long)ps.transport.accepts,
        (unsigned long long)ps.transport.reconnects,
        (unsigned long long)ps.transport.partial_read_resumes);
    std::printf(
        "# relay: frames=%llu bytes=%llu | telemetry: msgs=%llu dropped=%llu\n",
        (unsigned long long)ps.transport.frames_relayed,
        (unsigned long long)ps.transport.bytes_relayed,
        (unsigned long long)peng.metrics().total(obs::Counter::kTelemetryMsgs),
        (unsigned long long)peng.metrics().total(
            obs::Counter::kTelemetryDropped));
    std::printf("# clock offsets (us, worker minus controller):");
    for (std::uint32_t w = 0; w < peng.num_workers(); ++w)
      std::printf(" w%u=%lld(rtt %llu)", w, (long long)peng.clock_offset_us(w),
                  (unsigned long long)peng.clock_rtt_us(w));
    std::printf("\n");
    std::printf(
        "# protocol: planes=%llu handoffs=%llu (%llu bytes) seeds=%llu "
        "rescue_begins=%llu reports_merged=%llu\n",
        (unsigned long long)ps.planes_started,
        (unsigned long long)ps.handoffs_sent,
        (unsigned long long)ps.handoff_bytes,
        (unsigned long long)ps.seeds_sent,
        (unsigned long long)ps.rescue_begins,
        (unsigned long long)ps.reports_merged);
    std::printf(
        "# handoffs: full=%llu (%llu bytes) delta=%llu (%llu bytes)\n",
        (unsigned long long)ps.handoffs_full,
        (unsigned long long)ps.handoff_full_bytes,
        (unsigned long long)ps.handoffs_delta,
        (unsigned long long)ps.handoff_delta_bytes);
    std::printf(
        "# membership: gen=%u lost=%llu pes_reassigned=%llu resyncs=%llu "
        "recoveries=%llu live=%u/%u\n",
        (unsigned)peng.membership_gen(), (unsigned long long)ps.workers_lost,
        (unsigned long long)ps.partitions_reassigned,
        (unsigned long long)ps.handoff_resyncs,
        (unsigned long long)ps.recoveries, peng.workers_live(),
        peng.num_workers());
    if (worker_died) {
      std::printf("# proc audit: every worker process died mid-run\n");
      rc = rc ? rc : 5;
    }
    if (kill_worker != kAnyWorkerIndex) {
      // The chaos gate: the kill must have registered as a membership loss
      // AND the run must have recovered (repartitioned, restarted, and kept
      // auditing) rather than failing outright.
      if (ps.workers_lost == 0) {
        std::printf("# chaos: kill did not register as a worker loss\n");
        rc = rc ? rc : 6;
      } else if (ps.recoveries == 0) {
        std::printf("# chaos: loss registered but no recovery ran\n");
        rc = rc ? rc : 6;
      }
    }
    if (health_fatal && as.violations) rc = rc ? rc : 4;
  } else if (audit_period) {
    // Post-evaluation auditing phase: hand the evaluated graph to the
    // threaded engine and run continuous marking cycles over it with
    // safe-point audits every `audit_period` cycles and the stall watchdog
    // armed. The first cycle sweeps whatever garbage evaluation left; later
    // cycles exercise the steady state (§5.4.1 invariants must hold at every
    // quiesce point, and each sweep must free exactly GAR' — Property 1).
    for (PeId pe = 0; pe < graph.num_pes(); ++pe) graph.store(pe).taskroot();
    ThreadEngine teng(graph, net);
    teng.set_root(root);
    teng.controller().prewarm_aux_roots();
    // Slot vectors must never reallocate under the PE threads; everything
    // the audit cycles need was just pre-allocated.
    for (PeId pe = 0; pe < graph.num_pes(); ++pe)
      graph.store(pe).set_fixed_capacity(true);
    // Epoch hand-off: the sim marker left per-vertex tags on this graph; a
    // fresh marker restarting at epoch 1 would alias them as current.
    teng.marker().seed_epoch(Plane::kR, engine.marker().epoch(Plane::kR));
    teng.marker().seed_epoch(Plane::kT, engine.marker().epoch(Plane::kT));
    AuditOptions aopt;
    aopt.period = audit_period;
    teng.enable_audit(aopt);
    teng.enable_watchdog();
#if DGR_TRACE_ENABLED
    if (trace_path || jsonl_path) teng.enable_trace();
#endif
    teng.start();
    HealthEmitter health(stats_period, stats_jsonl_path);
    for (std::uint32_t i = 0; i < audit_cycles; ++i) {
      teng.controller().start_cycle(CycleOptions{detect});
      teng.wait_cycle_done();
      health.on_cycle(teng.metrics_registry(), i + 1, 0, 0);
    }
    teng.stop();
    // The audit phase's own observability, next to (not over) the sim
    // phase's files: "<path>.audit[.json|l]". The JSONL feeds dgr_analyze's
    // fault/retransmit rollup (docs/FAULTS.md).
#if DGR_TRACE_ENABLED
    if (trace_path || jsonl_path) {
      const std::vector<obs::TraceEvent> ev = teng.trace()->snapshot();
      if (trace_path)
        write_file(std::string(trace_path) + ".audit.json",
                   obs::to_chrome_trace(ev, graph.num_pes()));
      if (jsonl_path)
        write_file(std::string(jsonl_path) + ".audit.jsonl",
                   obs::to_jsonl(ev));
    }
#endif
    if (metrics_path)
      write_file(std::string(metrics_path) + ".audit.json",
                 teng.metrics_registry().to_json() + "\n");
    const AuditStats& as = teng.audit_stats();
    const HealthReport hr = teng.health();
    std::printf("# audit: %llu safe-point audits, %llu violations; "
                "health: %llu warnings\n",
                (unsigned long long)as.audits,
                (unsigned long long)as.violations,
                (unsigned long long)hr.total());
    if (as.violations)
      std::printf("# last audit violation: %s\n", as.last_what.c_str());
    if (const FaultPlane* fp = teng.fault_plane()) {
      const FaultPlane::Stats fs = fp->stats();
      const ChannelManager::Stats cs = teng.channels()->stats();
      std::printf(
          "# faults: dropped=%llu dup=%llu reordered=%llu truncated=%llu | "
          "retransmits=%llu dup_suppressed=%llu delivered=%llu unacked=%llu\n",
          (unsigned long long)fs.injected[0], (unsigned long long)fs.injected[1],
          (unsigned long long)fs.injected[2], (unsigned long long)fs.injected[3],
          (unsigned long long)cs.retransmits,
          (unsigned long long)cs.dup_suppressed,
          (unsigned long long)cs.delivered, (unsigned long long)cs.unacked);
    }
    for (std::size_t k = 0; k < obs::kNumHealthKinds; ++k)
      if (hr.warnings[k])
        std::printf("# health warning: %s x%llu\n",
                    obs::health_kind_name(static_cast<obs::HealthKind>(k)),
                    (unsigned long long)hr.warnings[k]);
    if (health_fatal && (as.violations || hr.total())) rc = rc ? rc : 4;
  }
  return rc;
}
