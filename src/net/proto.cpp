#include "net/proto.h"

#include <cstring>

namespace dgr {
namespace {

// Doubles cross the wire as IEEE-754 bit patterns (both ends are the same
// toolchain; the loopback cluster makes no heterogeneity promises).
std::uint64_t d2u(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}
double u2d(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

void encode_mark_plane(ByteWriter& w, const MarkPlane& m) {
  w.u64(m.epoch);
  w.u8(static_cast<std::uint8_t>(m.color));
  w.u32(m.mt_cnt);
  w.vid(m.mt_par);
  w.u8(m.prior);
}

bool decode_mark_plane(ByteReader& r, MarkPlane& m) {
  m.epoch = r.u64();
  const std::uint8_t c = r.u8();
  if (c > static_cast<std::uint8_t>(Color::kMarked)) return false;
  m.color = static_cast<Color>(c);
  m.mt_cnt = r.u32();
  m.mt_par = r.vid();
  m.prior = r.u8();
  return r.ok();
}

// Sanity ceiling on wire-declared list lengths, so a corrupted count can't
// drive a multi-gigabyte allocation before the reader notices it ran dry.
constexpr std::uint32_t kMaxWireList = 1u << 24;

}  // namespace

Bytes encode_worker_config(const WorkerConfig& c) {
  ByteWriter w;
  w.u32(c.num_pes);
  w.u32(c.pe_begin);
  w.u32(c.pe_count);
  w.u8(c.use_channel ? 1 : 0);
  w.u64(c.fault_seed);
  w.u64(d2u(c.faults.drop));
  w.u64(d2u(c.faults.duplicate));
  w.u64(d2u(c.faults.reorder));
  w.u64(d2u(c.faults.truncate));
  w.u32(c.faults.reorder_span);
  w.u64(c.reliable.rto_initial_us);
  w.u64(c.reliable.rto_max_us);
  w.u32(c.reliable.max_retransmit_batch);
  w.u32(c.reliable.batch_bytes);
  w.u64(c.reliable.batch_flush_us);
  w.u8(c.trace_enabled ? 1 : 0);
  w.u32(c.trace_capacity);
  return w.take();
}

bool decode_worker_config(const Bytes& b, WorkerConfig& out) {
  ByteReader r(b);
  out.num_pes = r.u32();
  out.pe_begin = r.u32();
  out.pe_count = r.u32();
  out.use_channel = r.u8() != 0;
  out.fault_seed = r.u64();
  out.faults.drop = u2d(r.u64());
  out.faults.duplicate = u2d(r.u64());
  out.faults.reorder = u2d(r.u64());
  out.faults.truncate = u2d(r.u64());
  out.faults.reorder_span = r.u32();
  out.reliable.rto_initial_us = r.u64();
  out.reliable.rto_max_us = r.u64();
  out.reliable.max_retransmit_batch = r.u32();
  out.reliable.batch_bytes = r.u32();
  out.reliable.batch_flush_us = r.u64();
  out.trace_enabled = r.u8() != 0;
  out.trace_capacity = r.u32();
  return r.done();
}

Bytes encode_register(const RegisterMsg& m) {
  ByteWriter w;
  w.u32(m.proto_version);
  w.u32(m.flags);
  w.u32(m.worker_index);
  return w.take();
}

bool decode_register(const Bytes& b, RegisterMsg& out) {
  ByteReader r(b);
  out.proto_version = r.u32();
  out.flags = r.u32();
  out.worker_index = r.u32();
  return r.done();
}

Bytes encode_register_ack(const RegisterAckMsg& m) {
  ByteWriter w;
  w.u32(m.worker_index);
  w.u32(m.num_workers);
  const Bytes cfg = encode_worker_config(m.config);
  w.u32(static_cast<std::uint32_t>(cfg.size()));
  for (std::uint8_t byte : cfg) w.u8(byte);
  return w.take();
}

bool decode_register_ack(const Bytes& b, RegisterAckMsg& out) {
  ByteReader r(b);
  out.worker_index = r.u32();
  out.num_workers = r.u32();
  const std::uint32_t len = r.u32();
  if (!r.ok() || len != r.remaining()) return false;
  Bytes cfg(b.end() - len, b.end());
  return decode_worker_config(cfg, out.config);
}

Bytes encode_reject(const RejectMsg& m) {
  ByteWriter w;
  w.u32(m.code);
  w.u32(static_cast<std::uint32_t>(m.reason.size()));
  for (char c : m.reason) w.u8(static_cast<std::uint8_t>(c));
  return w.take();
}

bool decode_reject(const Bytes& b, RejectMsg& out) {
  ByteReader r(b);
  out.code = r.u32();
  const std::uint32_t len = r.u32();
  if (!r.ok() || len != r.remaining()) return false;
  out.reason.assign(b.end() - len, b.end());
  return true;
}

Bytes encode_plane_signal(Plane plane, std::uint64_t epoch) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(plane));
  w.u64(epoch);
  return w.take();
}

bool decode_plane_signal(const Bytes& b, Plane& plane, std::uint64_t& epoch) {
  ByteReader r(b);
  const std::uint8_t p = r.u8();
  if (p > 1) return false;
  plane = static_cast<Plane>(p);
  epoch = r.u64();
  return r.done();
}

void encode_vertex_record(ByteWriter& w, std::uint32_t idx, const Vertex& v) {
  w.u32(idx);
  w.u8(static_cast<std::uint8_t>((v.live ? 1 : 0) | (v.aux ? 2 : 0)));
  w.u8(static_cast<std::uint8_t>(v.op));
  w.u32(static_cast<std::uint32_t>(v.args.size()));
  for (const ArgEdge& e : v.args) {
    w.vid(e.to);
    w.u8(static_cast<std::uint8_t>(e.req));
    w.u64(e.req_epoch);
  }
  w.u32(static_cast<std::uint32_t>(v.requested.size()));
  for (VertexId r : v.requested) w.vid(r);
  w.u32(static_cast<std::uint32_t>(v.stale_requested.size()));
  for (VertexId r : v.stale_requested) w.vid(r);
  encode_mark_plane(w, v.mark[0]);
  encode_mark_plane(w, v.mark[1]);
}

bool decode_vertex_record(ByteReader& r, std::uint32_t& idx, Vertex& v) {
  idx = r.u32();
  const std::uint8_t flags = r.u8();
  v.live = (flags & 1) != 0;
  v.aux = (flags & 2) != 0;
  v.op = static_cast<OpCode>(r.u8());
  const std::uint32_t nargs = r.u32();
  if (!r.ok() || nargs > kMaxWireList) return false;
  v.args.clear();
  v.args.reserve(nargs);
  for (std::uint32_t i = 0; i < nargs; ++i) {
    ArgEdge e;
    e.to = r.vid();
    const std::uint8_t k = r.u8();
    if (k > static_cast<std::uint8_t>(ReqKind::kVital)) return false;
    e.req = static_cast<ReqKind>(k);
    e.req_epoch = r.u64();
    v.args.push_back(e);
  }
  const std::uint32_t nreq = r.u32();
  if (!r.ok() || nreq > kMaxWireList) return false;
  v.requested.clear();
  v.requested.reserve(nreq);
  for (std::uint32_t i = 0; i < nreq; ++i) v.requested.push_back(r.vid());
  const std::uint32_t nstale = r.u32();
  if (!r.ok() || nstale > kMaxWireList) return false;
  v.stale_requested.clear();
  v.stale_requested.reserve(nstale);
  for (std::uint32_t i = 0; i < nstale; ++i)
    v.stale_requested.push_back(r.vid());
  if (!decode_mark_plane(r, v.mark[0])) return false;
  if (!decode_mark_plane(r, v.mark[1])) return false;
  return r.ok();
}

namespace {

// FNV-1a over the structural fields a handoff ships. Mark planes are
// excluded on purpose: stale epochs are semantically unmarked, so marking
// activity must not perturb fingerprints or checksums.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

std::uint64_t structural_fingerprint(const Vertex& v) {
  std::uint64_t h = kFnvOffset;
  if (!v.live) {
    fnv(h, 0);
    return h;
  }
  fnv(h, 1u | (v.aux ? 2u : 0u) |
             (static_cast<std::uint64_t>(v.op) << 8));
  fnv(h, v.args.size());
  for (const ArgEdge& e : v.args) {
    fnv(h, (static_cast<std::uint64_t>(e.to.pe) << 32) | e.to.idx);
    fnv(h, static_cast<std::uint64_t>(e.req));
    fnv(h, e.req_epoch);
  }
  fnv(h, v.requested.size());
  for (VertexId r : v.requested)
    fnv(h, (static_cast<std::uint64_t>(r.pe) << 32) | r.idx);
  fnv(h, v.stale_requested.size());
  for (VertexId r : v.stale_requested)
    fnv(h, (static_cast<std::uint64_t>(r.pe) << 32) | r.idx);
  return h;
}

}  // namespace

std::uint64_t handoff_checksum(const Graph& g,
                               const std::vector<std::uint8_t>& owned) {
  std::uint64_t h = kFnvOffset;
  for (PeId pe = 0; pe < g.num_pes(); ++pe) {
    const Store& st = g.store(pe);
    const auto cap = static_cast<std::uint32_t>(st.capacity());
    fnv(h, cap);
    const bool own = pe < owned.size() && owned[pe] != 0;
    fnv(h, own ? 1 : 0);
    for (std::uint32_t i = 0; i < cap; ++i) {
      const Vertex& v = st.at(i);
      if (own) {
        // Dead slots contribute liveness only: a replica's residual fields
        // from when the slot was live are not observable by marking.
        fnv(h, v.live ? structural_fingerprint(v) : 0);
      } else {
        fnv(h, v.live ? 1 : 0);
      }
    }
  }
  return h;
}

void HandoffTracker::scan(const Graph& g) {
  ++seq_;
  fp_.resize(g.num_pes());
  changed_.resize(g.num_pes());
  for (PeId pe = 0; pe < g.num_pes(); ++pe) {
    const Store& st = g.store(pe);
    const std::size_t cap = st.capacity();
    // New slots start at a sentinel no fingerprint produces, so a capacity
    // grow is always shipped (the replica must grow its store to match).
    fp_[pe].resize(cap, ~0ull);
    changed_[pe].resize(cap, 0);
    for (std::size_t i = 0; i < cap; ++i) {
      const std::uint64_t f = structural_fingerprint(st.at(i));
      if (f != fp_[pe][i]) {
        fp_[pe][i] = f;
        changed_[pe][i] = seq_;
      }
    }
  }
}

Bytes HandoffTracker::encode(const Graph& g,
                             const std::vector<std::uint8_t>& owned,
                             std::uint64_t since, bool force_full,
                             std::uint8_t* kind_out) const {
  const bool delta = !force_full && since > 0 && since <= seq_;
  const std::uint64_t checksum = handoff_checksum(g, owned);
  ByteWriter w;
  w.u8(delta ? kHandoffDelta : kHandoffFull);
  w.u64(seq_);
  w.u64(checksum);
  w.u32(g.num_pes());
  for (PeId pe = 0; pe < g.num_pes(); ++pe) {
    const Store& st = g.store(pe);
    const auto cap = static_cast<std::uint32_t>(st.capacity());
    const bool own = pe < owned.size() && owned[pe] != 0;
    w.u32(pe);
    w.u8(own ? 1 : 0);
    w.u32(cap);
    if (!delta) {
      if (own) {
        // Count, then records for every occupied slot (aux included:
        // taskroots and troot carry args the T wave traces).
        std::uint32_t n = 0;
        for (std::uint32_t i = 0; i < cap; ++i)
          if (st.at(i).live) ++n;
        w.u32(n);
        for (std::uint32_t i = 0; i < cap; ++i)
          if (st.at(i).live) encode_vertex_record(w, i, st.at(i));
      } else {
        // Liveness bitmap only: remote vertices are marked by their owner,
        // but mark3 skips dead stale_requested entries by liveness lookup.
        std::vector<std::uint8_t> bits((cap + 7) / 8, 0);
        for (std::uint32_t i = 0; i < cap; ++i)
          if (st.at(i).live)
            bits[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
        for (std::uint8_t byte : bits) w.u8(byte);
      }
    } else {
      // Slots whose structural fingerprint moved after `since`. Owned PEs
      // ship whole records (a dead record retires the replica slot);
      // unowned PEs ship liveness transitions.
      std::uint32_t n = 0;
      for (std::uint32_t i = 0; i < cap; ++i)
        if (changed_[pe][i] > since) ++n;
      w.u32(n);
      for (std::uint32_t i = 0; i < cap; ++i) {
        if (changed_[pe][i] <= since) continue;
        if (own) {
          encode_vertex_record(w, i, st.at(i));
        } else {
          w.u32(i);
          w.u8(st.at(i).live ? 1 : 0);
        }
      }
    }
  }
  if (kind_out) *kind_out = delta ? kHandoffDelta : kHandoffFull;
  return w.take();
}

bool apply_handoff(const Bytes& b, Graph& g, std::vector<std::uint8_t>& owned,
                   HandoffMsg& out) {
  ByteReader r(b);
  out.kind = r.u8();
  out.seq = r.u64();
  out.checksum = r.u64();
  const std::uint32_t num_pes = r.u32();
  if (!r.ok() || out.kind > kHandoffDelta || num_pes != g.num_pes())
    return false;
  owned.assign(num_pes, 0);
  for (std::uint32_t k = 0; k < num_pes; ++k) {
    const std::uint32_t pe = r.u32();
    const std::uint8_t own = r.u8();
    const std::uint32_t cap = r.u32();
    if (!r.ok() || pe >= num_pes || cap > kMaxWireList) return false;
    owned[pe] = own;
    Store& st = g.store(pe);
    if (out.kind == kHandoffFull) {
      st.reset_for_restore(cap);
      if (own) {
        const std::uint32_t n = r.u32();
        if (!r.ok() || n > cap) return false;
        for (std::uint32_t i = 0; i < n; ++i) {
          std::uint32_t idx = 0;
          Vertex v;
          if (!decode_vertex_record(r, idx, v) || idx >= cap) return false;
          st.at(idx) = std::move(v);
        }
      } else {
        for (std::uint32_t i = 0; i < (cap + 7) / 8; ++i) {
          const std::uint8_t byte = r.u8();
          for (std::uint32_t bit = 0; bit < 8 && i * 8 + bit < cap; ++bit)
            st.at(i * 8 + bit).live = (byte >> bit) & 1;
        }
      }
    } else {
      // Differential: the replica can only ever grow (controller stores
      // never shrink); a shrinking cap means the worlds diverged.
      if (cap < st.capacity()) return false;
      if (cap > 0 && st.capacity() < cap) st.ensure_slot(cap - 1);
      const std::uint32_t n = r.u32();
      if (!r.ok() || n > cap) return false;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (own) {
          std::uint32_t idx = 0;
          Vertex v;
          if (!decode_vertex_record(r, idx, v) || idx >= cap) return false;
          st.at(idx) = std::move(v);
        } else {
          const std::uint32_t idx = r.u32();
          const std::uint8_t alive = r.u8();
          if (!r.ok() || idx >= cap) return false;
          st.at(idx).live = alive != 0;
        }
      }
    }
  }
  return r.done();
}

Bytes encode_handoff_ack(const HandoffAckMsg& m) {
  ByteWriter w;
  w.u64(m.seq);
  w.u8(m.ok ? 1 : 0);
  return w.take();
}

bool decode_handoff_ack(const Bytes& b, HandoffAckMsg& out) {
  ByteReader r(b);
  out.seq = r.u64();
  out.ok = r.u8() != 0;
  return r.done();
}

Bytes encode_rescue_begin(Plane plane, std::uint64_t epoch, VertexId root,
                          const Vertex& v) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(plane));
  w.u64(epoch);
  w.u32(root.pe);
  encode_vertex_record(w, root.idx, v);
  return w.take();
}

bool apply_rescue_begin(const Bytes& b, Graph& g, Plane& plane,
                        std::uint64_t& epoch) {
  ByteReader r(b);
  const std::uint8_t p = r.u8();
  if (p > 1) return false;
  plane = static_cast<Plane>(p);
  epoch = r.u64();
  const std::uint32_t pe = r.u32();
  std::uint32_t idx = 0;
  Vertex v;
  if (!r.ok() || pe >= g.num_pes()) return false;
  if (!decode_vertex_record(r, idx, v) || !r.done()) return false;
  g.store(pe).ensure_slot(idx) = std::move(v);
  return true;
}

Bytes encode_mark_report(const Graph& g, Plane plane, std::uint64_t epoch,
                         const std::vector<PeId>& pes,
                         const MarkStats& stats) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(plane));
  w.u64(epoch);
  w.u64(stats.marks.load(std::memory_order_relaxed));
  w.u64(stats.returns.load(std::memory_order_relaxed));
  w.u64(stats.remarks.load(std::memory_order_relaxed));
  w.u64(stats.coop_spawns.load(std::memory_order_relaxed));
  w.u32(static_cast<std::uint32_t>(pes.size()));
  const int pl = static_cast<int>(plane);
  for (PeId pe : pes) {
    const Store& st = g.store(pe);
    const auto cap = static_cast<std::uint32_t>(st.capacity());
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < cap; ++i)
      if (st.at(i).live && st.at(i).mark[pl].epoch == epoch) ++n;
    w.u32(pe);
    w.u32(n);
    for (std::uint32_t i = 0; i < cap; ++i) {
      const Vertex& v = st.at(i);
      if (!v.live || v.mark[pl].epoch != epoch) continue;
      w.u32(i);
      w.u8(static_cast<std::uint8_t>(v.mark[pl].color));
      w.u8(v.mark[pl].prior);
    }
  }
  return w.take();
}

bool apply_mark_report(const Bytes& b, Graph& g, Plane expect_plane,
                       std::uint64_t expect_epoch, MarkStats& stats_out) {
  ByteReader r(b);
  const std::uint8_t p = r.u8();
  const std::uint64_t epoch = r.u64();
  if (!r.ok() || static_cast<Plane>(p) != expect_plane ||
      epoch != expect_epoch)
    return false;
  stats_out.marks = r.u64();
  stats_out.returns = r.u64();
  stats_out.remarks = r.u64();
  stats_out.coop_spawns = r.u64();
  const std::uint32_t npes = r.u32();
  if (!r.ok() || npes > g.num_pes()) return false;
  const int pl = static_cast<int>(expect_plane);
  for (std::uint32_t k = 0; k < npes; ++k) {
    const std::uint32_t pe = r.u32();
    const std::uint32_t n = r.u32();
    if (!r.ok() || pe >= g.num_pes() || n > kMaxWireList) return false;
    Store& st = g.store(pe);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t idx = r.u32();
      const std::uint8_t color = r.u8();
      const std::uint8_t prior = r.u8();
      if (!r.ok() || idx >= st.capacity() ||
          color > static_cast<std::uint8_t>(Color::kMarked))
        return false;
      MarkPlane& m = st.at(idx).mark[pl];
      m.epoch = epoch;
      m.color = static_cast<Color>(color);
      m.prior = prior;
      // Tree scaffolding collapsed by termination; merge it collapsed.
      m.mt_cnt = 0;
      m.mt_par = VertexId::invalid();
    }
  }
  return r.done();
}

// ---- Telemetry plane ----

Bytes encode_clock_probe(const ClockProbeMsg& m) {
  ByteWriter w;
  w.u32(m.seq);
  w.u64(m.t_controller_us);
  return w.take();
}

bool decode_clock_probe(const Bytes& b, ClockProbeMsg& out) {
  ByteReader r(b);
  out.seq = r.u32();
  out.t_controller_us = r.u64();
  return r.done();
}

Bytes encode_clock_echo(const ClockEchoMsg& m) {
  ByteWriter w;
  w.u32(m.seq);
  w.u64(m.t_controller_us);
  w.u64(m.t_worker_us);
  return w.take();
}

bool decode_clock_echo(const Bytes& b, ClockEchoMsg& out) {
  ByteReader r(b);
  out.seq = r.u32();
  out.t_controller_us = r.u64();
  out.t_worker_us = r.u64();
  return r.done();
}

Bytes encode_telemetry(const TelemetryMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(m.plane));
  w.u64(m.epoch);
  w.u32(m.pe_begin);
  w.u32(m.pe_count);
  w.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const TelemetryMsg::CounterDelta& c : m.counters) {
    w.u32(c.pe);
    w.u8(c.counter);
    w.u64(c.delta);
  }
  w.u32(static_cast<std::uint32_t>(m.hists.size()));
  for (const TelemetryMsg::HistDelta& h : m.hists) {
    w.u32(h.pe);
    w.u8(h.hist);
    w.u64(std::bit_cast<std::uint64_t>(h.max));
    w.u32(static_cast<std::uint32_t>(h.buckets.size()));
    for (const auto& [bucket, count] : h.buckets) {
      w.u32(bucket);
      w.u64(count);
    }
  }
  w.u32(static_cast<std::uint32_t>(m.events.size()));
  for (const obs::TraceEvent& e : m.events) {
    w.u64(e.ts);
    w.u64(e.cycle);
    w.u64(e.a);
    w.u64(e.b);
    w.u8(static_cast<std::uint8_t>(e.type));
    w.u8(static_cast<std::uint8_t>(e.plane));
    w.u32(e.pe);
  }
  w.u64(m.events_omitted);
  w.u64(m.ring_dropped);
  return w.take();
}

bool decode_telemetry(const Bytes& b, TelemetryMsg& out) {
  ByteReader r(b);
  const std::uint8_t pl = r.u8();
  if (pl > 1) return false;
  out.plane = static_cast<Plane>(pl);
  out.epoch = r.u64();
  out.pe_begin = r.u32();
  out.pe_count = r.u32();
  const std::uint32_t nc = r.u32();
  if (!r.ok() || nc > kMaxWireList) return false;
  out.counters.clear();
  out.counters.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    TelemetryMsg::CounterDelta c;
    c.pe = r.u32();
    c.counter = r.u8();
    c.delta = r.u64();
    if (!r.ok() || c.counter >= obs::kNumCounters) return false;
    out.counters.push_back(c);
  }
  const std::uint32_t nh = r.u32();
  if (!r.ok() || nh > kMaxWireList) return false;
  out.hists.clear();
  out.hists.reserve(nh);
  for (std::uint32_t i = 0; i < nh; ++i) {
    TelemetryMsg::HistDelta h;
    h.pe = r.u32();
    h.hist = r.u8();
    h.max = std::bit_cast<double>(r.u64());
    const std::uint32_t nb = r.u32();
    if (!r.ok() || h.hist >= obs::kNumHists || nb > kMaxWireList) return false;
    h.buckets.reserve(nb);
    for (std::uint32_t j = 0; j < nb; ++j) {
      const std::uint32_t bucket = r.u32();
      const std::uint64_t count = r.u64();
      h.buckets.emplace_back(bucket, count);
    }
    out.hists.push_back(std::move(h));
  }
  const std::uint32_t ne = r.u32();
  if (!r.ok() || ne > kMaxTelemetryEvents) return false;
  out.events.clear();
  out.events.reserve(ne);
  for (std::uint32_t i = 0; i < ne; ++i) {
    obs::TraceEvent e;
    e.ts = r.u64();
    e.cycle = r.u64();
    e.a = r.u64();
    e.b = r.u64();
    const std::uint8_t type = r.u8();
    const std::uint8_t eplane = r.u8();
    const std::uint32_t pe = r.u32();
    if (!r.ok() || type >= obs::kNumEventTypes || eplane > 1) return false;
    e.type = static_cast<obs::EventType>(type);
    e.plane = static_cast<Plane>(eplane);
    e.pe = static_cast<std::uint16_t>(pe);
    out.events.push_back(e);
  }
  out.events_omitted = r.u64();
  out.ring_dropped = r.u64();
  return r.done();
}

}  // namespace dgr
