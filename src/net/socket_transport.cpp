#include "net/socket_transport.h"

#include <unistd.h>

namespace dgr {

SocketTransport::SocketTransport(std::uint32_t num_pes,
                                 const std::string& addr_str)
    : num_pes_(num_pes ? num_pes : 1) {
  inbox_.reserve(num_pes_);
  for (std::uint32_t i = 0; i < num_pes_; ++i)
    inbox_.push_back(std::make_unique<Mailbox>());

  SocketAddr addr;
  if (addr_str.empty()) {
    addr.path = "/tmp/dgr-loop-" + std::to_string(::getpid()) + ".sock";
  } else if (!SocketAddr::parse(addr_str, addr)) {
    error_ = "bad transport address: " + addr_str;
    return;
  }

  // Each PE registers as its own single-endpoint "worker"; the policy hands
  // slot `pe` straight back, so hub routing by dst PE is identity.
  if (!hub_.listen(addr, [this](const RegisterMsg& reg) {
        SocketHub::Decision d;
        if (reg.worker_index >= num_pes_) {
          d.reject = RejectMsg{3, "endpoint index out of range"};
          return d;
        }
        d.accept = true;
        d.ack.worker_index = reg.worker_index;
        d.ack.num_workers = num_pes_;
        d.ack.config.num_pes = num_pes_;
        d.ack.config.pe_begin = reg.worker_index;
        d.ack.config.pe_count = 1;
        return d;
      })) {
    error_ = hub_.error();
    return;
  }

  clients_.reserve(num_pes_);
  for (std::uint32_t i = 0; i < num_pes_; ++i)
    clients_.push_back(std::make_unique<Client>());
  for (PeId pe = 0; pe < num_pes_; ++pe) {
    SocketAddr hub_addr;
    SocketAddr::parse(hub_.address(), hub_addr);
    if (!connect_client(pe, hub_addr)) return;
  }
  if (!hub_.wait_workers(num_pes_, 5000)) {
    error_ = "registration did not complete";
    return;
  }
  ok_ = true;
}

bool SocketTransport::connect_client(PeId pe, const SocketAddr& addr) {
  Client& c = *clients_[pe];
  c.sock = socket_connect(addr);
  if (!c.sock.valid()) {
    error_ = "connect failed for endpoint " + std::to_string(pe);
    return false;
  }
  NetFrame reg;
  reg.type = FrameType::kRegister;
  reg.src = pe;
  reg.dst = 0;
  RegisterMsg m;
  m.worker_index = pe;
  reg.payload = encode_register(m);
  const auto bytes = encode_frame(reg);
  if (!c.sock.write_all(bytes.data(), bytes.size())) {
    error_ = "registration write failed for endpoint " + std::to_string(pe);
    return false;
  }
  c.reader = std::thread([this, pe] { client_reader(pe); });
  return true;
}

void SocketTransport::client_reader(PeId pe) {
  Client& c = *clients_[pe];
  FrameCodec codec;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const long n = c.sock.read_some(buf, sizeof(buf));
    if (n <= 0) break;
    codec.feed(buf, static_cast<std::size_t>(n));
    NetFrame f;
    while (codec.next(f)) {
      c.frames_in.fetch_add(1, std::memory_order_relaxed);
      c.bytes_in.fetch_add(kFrameHeaderSize + f.payload.size(),
                           std::memory_order_relaxed);
      switch (f.type) {
        case FrameType::kRegisterAck:
          break;  // hub-side wait_workers observes registration
        case FrameType::kData:
          inbox_[pe]->deliver(std::move(f.payload));
          break;
        default:
          break;  // control frames have no meaning on a loopback endpoint
      }
    }
    if (codec.error()) break;
    c.partial_resumes.store(codec.partial_resumes(),
                            std::memory_order_relaxed);
  }
  c.partial_resumes.store(codec.partial_resumes(), std::memory_order_relaxed);
}

void SocketTransport::write_frames(PeId src, PeId dst,
                                   std::vector<Bytes>&& msgs) {
  Client& c = *clients_[src];
  // One contiguous buffer per call: a batch crosses the kernel in one
  // write_all, and concurrent senders on this connection stay serialized.
  std::vector<std::uint8_t> wire;
  for (Bytes& m : msgs) {
    NetFrame f;
    f.type = FrameType::kData;
    f.src = src;
    f.dst = dst;
    f.payload = std::move(m);
    const auto bytes = encode_frame(f);
    wire.insert(wire.end(), bytes.begin(), bytes.end());
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    local_.frames_sent += msgs.size();
    local_.bytes_sent += wire.size();
  }
  std::lock_guard<std::mutex> lk(c.write_mu);
  c.sock.write_all(wire.data(), wire.size());
}

void SocketTransport::send(PeId src, PeId dst, Bytes msg) {
  if (src == dst) {
    inbox_[dst]->deliver(std::move(msg));
    return;
  }
  std::vector<Bytes> one;
  one.push_back(std::move(msg));
  write_frames(src, dst, std::move(one));
}

void SocketTransport::send_batch(PeId src, PeId dst, std::vector<Bytes> msgs) {
  if (msgs.empty()) return;
  if (src == dst) {
    inbox_[dst]->deliver_batch(std::move(msgs));
    return;
  }
  write_frames(src, dst, std::move(msgs));
}

std::size_t SocketTransport::drain(PeId pe, std::size_t max_n,
                                   std::vector<Bytes>& out) {
  return inbox_[pe]->drain(max_n, out);
}

std::size_t SocketTransport::drain_wait(PeId pe, std::size_t max_n,
                                        std::vector<Bytes>& out,
                                        std::uint64_t timeout_us) {
  return inbox_[pe]->drain_wait(max_n, out, timeout_us);
}

std::size_t SocketTransport::pending(PeId pe) const {
  return inbox_[pe]->pending();
}

std::uint64_t SocketTransport::high_water() const {
  std::uint64_t hw = 0;
  for (const auto& m : inbox_)
    if (m->high_water() > hw) hw = m->high_water();
  return hw;
}

void SocketTransport::close() {
  if (closed_) return;
  closed_ = true;
  for (auto& c : clients_)
    if (c) c->sock.shutdown_rdwr();
  hub_.close();
  for (auto& c : clients_) {
    if (!c) continue;
    if (c->reader.joinable()) c->reader.join();
    c->sock.close();
  }
  for (auto& m : inbox_) m->close();
}

TransportStats SocketTransport::stats() const {
  TransportStats s = hub_.stats();
  std::lock_guard<std::mutex> lk(stats_mu_);
  s.frames_sent += local_.frames_sent;
  s.bytes_sent += local_.bytes_sent;
  for (const auto& c : clients_) {
    if (!c) continue;
    s.frames_received += c->frames_in.load(std::memory_order_relaxed);
    s.bytes_received += c->bytes_in.load(std::memory_order_relaxed);
    s.partial_read_resumes +=
        c->partial_resumes.load(std::memory_order_relaxed);
  }
  s.connects += clients_.size();
  return s;
}

SocketTransport::~SocketTransport() { close(); }

}  // namespace dgr
