// Transport over real sockets: every cross-PE message leaves the process
// boundary machinery — framed, written to a connected Unix-domain or TCP
// loopback socket, relayed by an internal SocketHub, read back by the
// destination endpoint's client connection, and deposited into a local inbox
// Mailbox for drain().
//
// This is the single-process "loopback cluster": the ThreadEngine's PE
// threads keep their shared graph, but their message plane crosses the same
// kernel socket path a multi-process deployment uses, with the same frames,
// the same registration handshake, and the same partial-read reassembly.
// (The full multi-process deployment — separate worker processes — is
// runtime/proc_engine.h; it reuses the hub directly.)
//
// Topology: one hub endpoint-owner connection per PE. send(src,dst) writes a
// kData frame on src's client connection (one write mutex per connection —
// PE threads share their own connection only when batching staged traffic);
// the hub routes it to dst's connection; dst's reader thread pushes the
// payload into inbox[dst].
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/socket_hub.h"
#include "net/transport.h"

namespace dgr {

class SocketTransport final : public Transport {
 public:
  // `addr`: where the internal hub listens. Use "uds:<path>" (default when
  // empty: a /tmp path unique to this process) or "tcp:127.0.0.1:0".
  SocketTransport(std::uint32_t num_pes, const std::string& addr = "");
  ~SocketTransport() override;

  // False when the hub failed to bind or a client failed to register;
  // error() then says why. A failed transport delivers nothing.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::string address() const { return hub_.address(); }

  std::uint32_t endpoints() const override { return num_pes_; }
  void send(PeId src, PeId dst, Bytes msg) override;
  void send_batch(PeId src, PeId dst, std::vector<Bytes> msgs) override;
  std::size_t drain(PeId pe, std::size_t max_n,
                    std::vector<Bytes>& out) override;
  std::size_t drain_wait(PeId pe, std::size_t max_n, std::vector<Bytes>& out,
                         std::uint64_t timeout_us) override;
  std::size_t pending(PeId pe) const override;
  std::uint64_t high_water() const override;
  void close() override;
  TransportStats stats() const override;

 private:
  struct Client {
    Socket sock;
    std::mutex write_mu;
    std::thread reader;
    // Atomics: the reader thread bumps these while stats() samples them.
    std::atomic<std::uint64_t> partial_resumes{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> bytes_in{0};
  };

  void client_reader(PeId pe);
  bool connect_client(PeId pe, const SocketAddr& addr);
  void write_frames(PeId src, PeId dst, std::vector<Bytes>&& msgs);

  std::uint32_t num_pes_;
  SocketHub hub_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<Mailbox>> inbox_;
  bool ok_ = false;
  bool closed_ = false;
  std::string error_;
  mutable std::mutex stats_mu_;
  TransportStats local_;  // client-side counters (hub adds its own)
};

}  // namespace dgr
