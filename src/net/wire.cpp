#include "net/wire.h"

namespace dgr {

std::vector<std::uint8_t> encode_task(const Task& t) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(t.kind));
  w.u8(static_cast<std::uint8_t>(t.plane));
  w.u8(t.prior);
  w.u8(static_cast<std::uint8_t>(t.demand));
  w.u8(t.pool_prior);
  w.vid(t.d);
  w.vid(t.s);
  w.u8(static_cast<std::uint8_t>(t.value.kind));
  w.i64(t.value.i);
  w.vid(t.value.node);
  return w.take();
}

std::optional<Task> try_decode_task(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  Task t;
  const std::uint8_t kind = r.u8();
  const std::uint8_t plane = r.u8();
  t.prior = r.u8();
  const std::uint8_t demand = r.u8();
  t.pool_prior = r.u8();
  t.d = r.vid();
  t.s = r.vid();
  const std::uint8_t vkind = r.u8();
  t.value.i = r.i64();
  t.value.node = r.vid();
  if (!r.done()) return std::nullopt;  // short read or trailing bytes
  // Range-check every enum field before the cast: a flipped byte must yield
  // a decode error, not an out-of-range enum loose in the marker.
  if (kind > static_cast<std::uint8_t>(TaskKind::kPeAck)) return std::nullopt;
  if (plane > static_cast<std::uint8_t>(Plane::kT)) return std::nullopt;
  if (demand > static_cast<std::uint8_t>(ReqKind::kVital)) return std::nullopt;
  if (vkind > static_cast<std::uint8_t>(ValueKind::kNil)) return std::nullopt;
  t.kind = static_cast<TaskKind>(kind);
  t.plane = static_cast<Plane>(plane);
  t.demand = static_cast<ReqKind>(demand);
  t.value.kind = static_cast<ValueKind>(vkind);
  return t;
}

Task decode_task(const std::vector<std::uint8_t>& bytes) {
  std::optional<Task> t = try_decode_task(bytes);
  DGR_CHECK_MSG(t.has_value(), "malformed task message");
  return *t;
}

}  // namespace dgr
