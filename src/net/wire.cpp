#include "net/wire.h"

namespace dgr {

std::vector<std::uint8_t> encode_task(const Task& t) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(t.kind));
  w.u8(static_cast<std::uint8_t>(t.plane));
  w.u8(t.prior);
  w.u8(static_cast<std::uint8_t>(t.demand));
  w.u8(t.pool_prior);
  w.vid(t.d);
  w.vid(t.s);
  w.u8(static_cast<std::uint8_t>(t.value.kind));
  w.i64(t.value.i);
  w.vid(t.value.node);
  return w.take();
}

Task decode_task(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  Task t;
  t.kind = static_cast<TaskKind>(r.u8());
  t.plane = static_cast<Plane>(r.u8());
  t.prior = r.u8();
  t.demand = static_cast<ReqKind>(r.u8());
  t.pool_prior = r.u8();
  t.d = r.vid();
  t.s = r.vid();
  t.value.kind = static_cast<ValueKind>(r.u8());
  t.value.i = r.i64();
  t.value.node = r.vid();
  DGR_CHECK_MSG(r.done(), "trailing bytes in task message");
  return t;
}

}  // namespace dgr
