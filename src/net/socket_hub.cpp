#include "net/socket_hub.h"

#include <chrono>

namespace dgr {

bool SocketHub::listen(SocketAddr addr, PolicyFn policy) {
  policy_ = std::move(policy);
  if (!listener_.open(addr)) {
    error_ = listener_.error();
    return false;
  }
  addr_ = addr;  // port 0 resolved by open()
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void SocketHub::accept_loop() {
  for (;;) {
    Socket s = listener_.accept();
    if (!s.valid()) return;  // listener closed
    std::lock_guard<std::mutex> lk(mu_);
    if (closing_) return;
    ++stats_.accepts;
    auto c = std::make_unique<Conn>();
    c->sock = std::move(s);
    c->outq = std::make_unique<MpmcQueue<std::vector<std::uint8_t>>>();
    Conn* cp = c.get();
    conns_.push_back(std::move(c));
    cp->reader = std::thread([this, cp] { conn_loop(cp); });
    cp->writer = std::thread([this, cp] { writer_loop(cp); });
  }
}

void SocketHub::writer_loop(Conn* c) {
  while (auto buf = c->outq->pop()) {
    if (!c->sock.write_all(buf->data(), buf->size())) break;
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.frames_sent;
    stats_.bytes_sent += buf->size();
  }
  // The queue only closes when the connection is coming down (reader exit or
  // hub close). Everything queued has been flushed: send the FIN now so the
  // peer sees EOF instead of a half-dead socket that lingers until close().
  c->sock.shutdown_rdwr();
}

void SocketHub::conn_loop(Conn* c) {
  FrameCodec codec;
  std::uint8_t buf[64 * 1024];
  bool rejected = false;
  for (;;) {
    const long n = c->sock.read_some(buf, sizeof(buf));
    if (n <= 0) break;
    codec.feed(buf, static_cast<std::size_t>(n));
    NetFrame f;
    bool drop = false;
    while (codec.next(f)) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.frames_received;
        stats_.bytes_received += kFrameHeaderSize + f.payload.size();
      }
      if (!c->registered) {
        if (f.type != FrameType::kRegister || !handle_register(c, f)) {
          rejected = true;
          drop = true;
          break;
        }
        continue;
      }
      route(c, std::move(f));
    }
    if (drop || codec.error()) {
      // An unframed or malformed stream before registration is a rejected
      // handshake; after registration it is a protocol error either way.
      if (!c->registered && codec.error()) rejected = true;
      break;
    }
  }
  std::uint32_t lost_worker = kAnyWorkerIndex;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.partial_read_resumes += codec.partial_resumes();
    stats_.oversized_rejected += codec.oversized();
    if (rejected) ++stats_.handshakes_rejected;
    c->dead = true;
    if (c->registered && !closing_ && workers_[c->worker] == c) {
      workers_[c->worker] = nullptr;
      lost_worker = c->worker;
    }
  }
  c->outq->close();  // writer drains what is queued, then exits
  if (lost_worker != kAnyWorkerIndex && lost_) lost_(lost_worker);
}

bool SocketHub::handle_register(Conn* c, const NetFrame& f) {
  RegisterMsg reg;
  Decision d;
  if (!decode_register(f.payload, reg) || reg.proto_version != kProtoVersion) {
    d.accept = false;
    d.reject = RejectMsg{1, "bad registration payload or protocol version"};
  } else {
    std::lock_guard<std::mutex> lk(mu_);
    d = policy_ ? policy_(reg) : Decision{};
    if (d.accept) {
      const std::uint32_t w = d.ack.worker_index;
      if (w >= workers_.size()) workers_.resize(w + 1, nullptr);
      if (workers_[w] != nullptr) {
        d.accept = false;
        d.reject = RejectMsg{2, "worker slot already registered"};
      } else {
        if (reg.flags & kRegisterFlagReconnect) ++stats_.reconnects;
        workers_[w] = c;
        c->worker = w;
        c->registered = true;
        const WorkerConfig& cfg = d.ack.config;
        if (endpoint_owner_.size() < cfg.pe_begin + cfg.pe_count)
          endpoint_owner_.resize(cfg.pe_begin + cfg.pe_count, kAnyWorkerIndex);
        for (std::uint32_t pe = cfg.pe_begin; pe < cfg.pe_begin + cfg.pe_count;
             ++pe)
          endpoint_owner_[pe] = w;
      }
    }
  }
  NetFrame reply;
  reply.src = 0;
  reply.dst = 0;
  if (d.accept) {
    reply.type = FrameType::kRegisterAck;
    reply.payload = encode_register_ack(d.ack);
    enqueue(c, reply);
    cv_.notify_all();
    return true;
  }
  reply.type = FrameType::kReject;
  reply.payload = encode_reject(d.reject);
  // Write the rejection synchronously: the connection is about to close and
  // the writer queue would race the shutdown.
  const auto bytes = encode_frame(reply);
  c->sock.write_all(bytes.data(), bytes.size());
  return false;
}

void SocketHub::route(Conn* c, NetFrame&& f) {
  if (f.type == FrameType::kData || f.type == FrameType::kSeed) {
    {
      // Worker-originated data transiting the hub toward another worker —
      // controller-injected seeds go out via send_to_endpoint_owner directly
      // and never pass through here.
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.frames_relayed;
      stats_.bytes_relayed += f.payload.size();
      if (c->worker != kAnyWorkerIndex) {
        if (relay_by_worker_.size() <= c->worker)
          relay_by_worker_.resize(c->worker + 1);
        ++relay_by_worker_[c->worker].frames;
        relay_by_worker_[c->worker].bytes += f.payload.size();
      }
    }
    send_to_endpoint_owner(f);
    return;
  }
  if (control_) control_(c->worker, std::move(f));
}

void SocketHub::enqueue(Conn* c, const NetFrame& f) {
  c->outq->push(encode_frame(f));
}

void SocketHub::send_to_worker(std::uint32_t worker, const NetFrame& f) {
  Conn* c = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (worker < workers_.size()) c = workers_[worker];
  }
  if (c) enqueue(c, f);
}

void SocketHub::send_to_endpoint_owner(const NetFrame& f) {
  Conn* c = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (f.dst < endpoint_owner_.size() &&
        endpoint_owner_[f.dst] != kAnyWorkerIndex) {
      Conn* w = workers_[endpoint_owner_[f.dst]];
      c = w;
    }
  }
  if (c) enqueue(c, f);
}

void SocketHub::set_endpoint_owner(PeId pe, std::uint32_t worker) {
  std::lock_guard<std::mutex> lk(mu_);
  if (endpoint_owner_.size() <= pe)
    endpoint_owner_.resize(pe + 1, kAnyWorkerIndex);
  endpoint_owner_[pe] = worker;
}

void SocketHub::drop_worker(std::uint32_t worker) {
  Conn* c = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (worker < workers_.size()) c = workers_[worker];
  }
  // Shutdown (not close): the reader wakes with EOF and runs the same lost
  // path a crashed worker would; the fd itself is reclaimed in close().
  if (c) c->sock.shutdown_rdwr();
}

void SocketHub::broadcast(const NetFrame& f) {
  std::vector<Conn*> targets;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (Conn* w : workers_)
      if (w) targets.push_back(w);
  }
  for (Conn* c : targets) enqueue(c, f);
}

bool SocketHub::wait_workers(std::uint32_t n, int timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
    std::uint32_t live = 0;
    for (Conn* w : workers_)
      if (w) ++live;
    return live >= n;
  });
}

std::uint32_t SocketHub::workers_connected() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint32_t live = 0;
  for (Conn* w : workers_)
    if (w) ++live;
  return live;
}

void SocketHub::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closing_) return;
    closing_ = true;
  }
  listener_.shutdown();  // wakes the blocked accept(); close() alone won't
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // No new conns can appear now; wake every reader and writer.
  for (auto& c : conns_) {
    c->sock.shutdown_rdwr();
    c->outq->close();
  }
  for (auto& c : conns_) {
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
    c->sock.close();
  }
}

TransportStats SocketHub::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<SocketHub::RelayCount> SocketHub::relay_by_worker() const {
  std::lock_guard<std::mutex> lk(mu_);
  return relay_by_worker_;
}

}  // namespace dgr
