// Deterministic fault injection for the inter-PE message plane.
//
// The paper's model (and the seed implementation) assumes tasks <s,d>
// propagate over a perfectly reliable fabric. FaultPlane sits between a
// sender and the destination Mailbox and applies a seeded, per-PE-pair fault
// schedule to every message: drop, duplicate, reorder (hold the message back
// for a few subsequent sends on the same pair), and truncate-bytes. Each
// directed pair draws from its own Rng substream, so the decision sequence
// on a pair depends only on (seed, src, dst) and the order of sends on that
// pair — single-threaded send sequences replay byte-identically per seed
// (asserted by test_fault_plane), and multi-threaded runs keep per-pair
// determinism even though cross-pair interleaving is up to the scheduler.
//
// FaultPlane knows nothing about message contents or reliability; the
// recovery discipline lives one layer up (net/reliable_channel.h).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/ids.h"
#include "util/rng.h"

namespace dgr {

enum class FaultKind : std::uint8_t {
  kDrop = 0,   // message vanishes
  kDuplicate,  // delivered twice
  kReorder,    // held back, released after later sends on the pair
  kTruncate,   // delivered with a random-length prefix of its bytes
  kCount_,
};
inline constexpr std::size_t kNumFaultKinds =
    static_cast<std::size_t>(FaultKind::kCount_);
inline const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kCount_: break;
  }
  return "?";
}

// Per-pair fault probabilities, rolled independently per message in the
// fixed order drop → truncate → duplicate → reorder.
struct FaultSpec {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double truncate = 0.0;
  // A reordered message is released after 1..reorder_span subsequent sends
  // (including retransmissions) on the same pair.
  std::uint32_t reorder_span = 4;

  bool any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || truncate > 0.0;
  }
};

struct FaultPlaneOptions {
  std::uint64_t seed = 1;
  FaultSpec spec;  // applied to every directed pair unless overridden
};

class FaultPlane {
 public:
  using Bytes = std::vector<std::uint8_t>;
  // Downstream delivery: typically Transport::send toward the destination
  // (the source PE is carried so socket transports can pick the right
  // connection; the in-process path ignores it).
  using DeliverFn = std::function<void(PeId src, PeId dst, Bytes msg)>;
  // Observability hook, called while a fault is injected: kind, sending and
  // receiving PE, and the affected message's size in bytes.
  using InjectHook =
      std::function<void(FaultKind, PeId src, PeId dst, std::size_t bytes)>;

  FaultPlane(std::uint32_t num_pes, FaultPlaneOptions opt, DeliverFn deliver);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // Override the schedule for one directed pair. Call before traffic flows.
  void set_pair_spec(PeId src, PeId dst, FaultSpec spec);
  void set_inject_hook(InjectHook hook) { hook_ = std::move(hook); }

  // Apply the pair's fault schedule to `msg`: deliver 0, 1 or 2 copies now,
  // or hold it for release by later send() calls on the same pair.
  void send(PeId src, PeId dst, Bytes msg);

  // Release every held message immediately (shutdown / drain).
  void flush();

  struct Stats {
    std::uint64_t sent = 0;       // messages entering the plane
    std::uint64_t delivered = 0;  // copies leaving it (incl. duplicates)
    std::uint64_t injected[kNumFaultKinds] = {};
    std::uint64_t total_injected() const {
      std::uint64_t n = 0;
      for (std::uint64_t v : injected) n += v;
      return n;
    }
  };
  // Aggregate over all pairs (consistent only when traffic is quiescent).
  Stats stats() const;
  Stats pair_stats(PeId src, PeId dst) const;

  std::uint32_t num_pes() const { return num_pes_; }

 private:
  struct Held {
    std::uint32_t countdown;  // sends on this pair until release
    Bytes msg;
  };
  struct Pair {
    mutable std::mutex mu;
    Rng rng;
    FaultSpec spec;
    std::deque<Held> held;
    Stats stats;
  };
  Pair& pair(PeId src, PeId dst) {
    return *pairs_[static_cast<std::size_t>(src) * num_pes_ + dst];
  }
  const Pair& pair(PeId src, PeId dst) const {
    return *pairs_[static_cast<std::size_t>(src) * num_pes_ + dst];
  }
  void inject(Pair& p, FaultKind k, PeId src, PeId dst, std::size_t bytes);

  std::uint32_t num_pes_;
  DeliverFn deliver_;
  InjectHook hook_;
  std::vector<std::unique_ptr<Pair>> pairs_;
};

}  // namespace dgr
