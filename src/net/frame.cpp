#include "net/frame.h"

#include <cstring>

namespace dgr {
namespace {

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kData: return "data";
    case FrameType::kSeed: return "seed";
    case FrameType::kRegister: return "register";
    case FrameType::kRegisterAck: return "register_ack";
    case FrameType::kReject: return "reject";
    case FrameType::kHandoff: return "handoff";
    case FrameType::kPlaneBegin: return "plane_begin";
    case FrameType::kRescueBegin: return "rescue_begin";
    case FrameType::kQuiesce: return "quiesce";
    case FrameType::kMarkReport: return "mark_report";
    case FrameType::kPlaneDone: return "plane_done";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kTelemetry: return "telemetry";
    case FrameType::kClockProbe: return "clock_probe";
    case FrameType::kClockEcho: return "clock_echo";
    case FrameType::kEpochFence: return "epoch_fence";
    case FrameType::kHandoffAck: return "handoff_ack";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(const NetFrame& f) {
  std::vector<std::uint8_t> b;
  b.reserve(kFrameHeaderSize + f.payload.size());
  put_u32(b, kFrameMagic);
  b.push_back(kFrameVersion);
  b.push_back(static_cast<std::uint8_t>(f.type));
  b.push_back(static_cast<std::uint8_t>(f.gen));
  b.push_back(static_cast<std::uint8_t>(f.gen >> 8));
  put_u32(b, f.src);
  put_u32(b, f.dst);
  put_u32(b, static_cast<std::uint32_t>(f.payload.size()));
  b.insert(b.end(), f.payload.begin(), f.payload.end());
  return b;
}

void FrameCodec::feed(const std::uint8_t* p, std::size_t n) {
  if (error_ || n == 0) return;
  // A partially decoded frame survived the previous feed boundary: when it
  // finally completes, that is one partial-read resume.
  if (mid_frame_ && !resumed_) {
    resumed_ = true;
    ++partial_resumes_;
  }
  // Compact the consumed prefix before growing, so a long-lived connection
  // doesn't accrete every byte it ever saw.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), p, p + n);
  mid_frame_ = buf_.size() > pos_;  // any unconsumed bytes = a frame in flight
}

bool FrameCodec::next(NetFrame& out) {
  if (error_) return false;
  const std::size_t avail = buf_.size() - pos_;
  const std::uint8_t* h = buf_.data() + pos_;
  // Validate the magic/version prefix on however many bytes have arrived:
  // garbage shorter than a full header must surface as an error immediately,
  // not leave the connection wedged waiting for a header that never comes.
  for (std::size_t i = 0; i < avail && i < 4; ++i) {
    if (h[i] != static_cast<std::uint8_t>(kFrameMagic >> (8 * i))) {
      fail("bad magic");
      return false;
    }
  }
  if (avail >= 5 && h[4] != kFrameVersion) {
    fail("unsupported version");
    return false;
  }
  if (avail < kFrameHeaderSize) return false;
  const std::uint32_t len = get_u32(h + 16);
  if (len > max_payload_) {
    ++oversized_;
    fail("oversized frame");
    return false;
  }
  if (avail < kFrameHeaderSize + len) return false;
  out.type = static_cast<FrameType>(h[5]);
  out.gen = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(h[6]) |
      (static_cast<std::uint16_t>(h[7]) << 8));
  out.src = get_u32(h + 8);
  out.dst = get_u32(h + 12);
  out.payload.assign(h + kFrameHeaderSize, h + kFrameHeaderSize + len);
  pos_ += kFrameHeaderSize + len;
  mid_frame_ = buf_.size() > pos_;
  resumed_ = false;  // the next frame starts a fresh straddle count
  return true;
}

}  // namespace dgr
