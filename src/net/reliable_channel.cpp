#include "net/reliable_channel.h"

#include <algorithm>

#include "net/wire.h"
#include "util/assert.h"

namespace dgr {

namespace {

constexpr std::uint8_t kFrameData = 0xD1;
constexpr std::uint8_t kFrameAck = 0xA7;

// Wire bytes a payload adds to a data frame beyond its own length.
constexpr std::size_t kPerPayloadOverhead = 4;  // u32 length prefix

// FNV-1a over the frame bytes preceding the checksum field.
std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const ChannelFrame& f) {
  ByteWriter w;
  w.u8(f.is_data ? kFrameData : kFrameAck);
  w.u32(f.src);
  w.u32(f.dst);
  w.u64(f.seq);
  w.u64(f.ack);
  w.u32(static_cast<std::uint32_t>(f.payloads.size()));
  std::vector<std::uint8_t> out = w.take();
  for (const auto& p : f.payloads) {
    ByteWriter len;
    len.u32(static_cast<std::uint32_t>(p.size()));
    std::vector<std::uint8_t> l = len.take();
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), p.begin(), p.end());
  }
  const std::uint64_t sum = fnv1a(out.data(), out.size());
  ByteWriter tail;
  tail.u64(sum);
  std::vector<std::uint8_t> t = tail.take();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

std::optional<ChannelFrame> try_decode_frame(
    const std::vector<std::uint8_t>& bytes) {
  // type(1) + src(4) + dst(4) + seq(8) + ack(8) + count(4) + checksum(8)
  constexpr std::size_t kMinFrame = 37;
  if (bytes.size() < kMinFrame) return std::nullopt;
  const std::uint64_t want = fnv1a(bytes.data(), bytes.size() - 8);
  ByteReader r(bytes);
  ChannelFrame f;
  const std::uint8_t type = r.u8();
  f.src = r.u32();
  f.dst = r.u32();
  f.seq = r.u64();
  f.ack = r.u64();
  const std::uint32_t count = r.u32();
  if (type == kFrameData) {
    f.is_data = true;
  } else if (type == kFrameAck) {
    f.is_data = false;
  } else {
    return std::nullopt;
  }
  f.payloads.reserve(std::min<std::size_t>(count, r.remaining()));
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = r.u32();
    // Bounds-check before allocating: a corrupted length must not trigger a
    // huge resize (the checksum already vetted the bytes, but stay paranoid).
    if (!r.ok() || r.remaining() < static_cast<std::size_t>(len) + 8)
      return std::nullopt;
    std::vector<std::uint8_t> p(len);
    for (std::uint32_t j = 0; j < len; ++j) p[j] = r.u8();
    f.payloads.push_back(std::move(p));
  }
  if (r.remaining() != 8) return std::nullopt;
  const std::uint64_t got = r.u64();
  if (!r.done() || got != want) return std::nullopt;
  return f;
}

ChannelManager::ChannelManager(std::uint32_t num_pes, ReliableOptions opt,
                               SendFn send)
    : num_pes_(num_pes ? num_pes : 1), opt_(opt), send_(std::move(send)) {
  DGR_CHECK(send_ != nullptr);
  channels_.reserve(static_cast<std::size_t>(num_pes_) * num_pes_);
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(num_pes_) * num_pes_; ++i)
    channels_.push_back(std::make_unique<Channel>());
}

std::uint64_t ChannelManager::rto_us(std::uint32_t shift) const {
  const std::uint64_t base = opt_.rto_initial_us ? opt_.rto_initial_us : 1;
  // Doubling capped at rto_max; guard the shift so it can't overflow.
  if (shift >= 63) return opt_.rto_max_us;
  const std::uint64_t rto = base << shift;
  return std::min(rto, opt_.rto_max_us ? opt_.rto_max_us : rto);
}

std::uint64_t ChannelManager::take_piggyback(PeId src, PeId dst,
                                             bool* had_deferred) {
  // Reverse channel (dst → src): its receiver side lives at `src`, i.e. the
  // PE about to transmit — the cumulative frontier we can piggyback.
  Channel& rev = channel(dst, src);
  std::lock_guard<std::mutex> lk(rev.mu);
  *had_deferred = rev.ack_pending;
  rev.ack_pending = false;
  return rev.next_expected - 1;
}

void ChannelManager::restore_deferred_ack(PeId src, PeId dst) {
  Channel& rev = channel(dst, src);
  std::uint64_t cum = 0;
  {
    std::lock_guard<std::mutex> lk(rev.mu);
    cum = rev.next_expected - 1;
    ++rev.stats.acks_sent;
  }
  // The data frame that would have piggybacked it never materialized: send
  // the owed ack standalone instead of re-arming a timer.
  send_standalone_ack(dst, src, cum);
}

void ChannelManager::send_standalone_ack(PeId src, PeId dst,
                                         std::uint64_t cum) {
  ChannelFrame ack;
  ack.is_data = false;
  ack.src = src;
  ack.dst = dst;
  ack.seq = cum;
  send_(dst, src, encode_frame(ack));
}

void ChannelManager::send(PeId src, PeId dst, Bytes payload,
                          std::uint64_t now_us) {
  if (opt_.batch_bytes == 0) {
    // Unbatched protocol: one payload, one frame, transmitted immediately.
    // No piggyback read — acks are immediate in this mode, and skipping the
    // reverse-channel lock keeps the path byte-for-byte the PR 4 one.
    Channel& ch = channel(src, dst);
    Bytes frame;
    {
      std::lock_guard<std::mutex> lk(ch.mu);
      ChannelFrame f;
      f.is_data = true;
      f.src = src;
      f.dst = dst;
      f.seq = ch.next_seq++;
      f.payloads.push_back(std::move(payload));
      frame = encode_frame(f);
      const bool was_empty = ch.unacked.empty();
      ch.unacked.emplace(f.seq, Unacked{frame, now_us, 1});
      if (was_empty) {
        ch.backoff_shift = 0;
        ch.rto_deadline_us = now_us + rto_us(0);
      }
      ++ch.stats.data_sent;
    }
    send_(src, dst, std::move(frame));
    return;
  }
  // Batched: stage the payload; flush at the size cap (the age cap is
  // service()'s job, flush() the idle sender's).
  Channel& ch = channel(src, dst);
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lk(ch.mu);
    if (ch.pending.empty())
      ch.batch_deadline_us = now_us + opt_.batch_flush_us;
    ch.pending_bytes += payload.size() + kPerPayloadOverhead;
    ch.pending.push_back(std::move(payload));
    flush_now = ch.pending_bytes >= opt_.batch_bytes;
  }
  if (flush_now) flush_pair(src, dst, now_us);
}

void ChannelManager::flush_pair(PeId src, PeId dst, std::uint64_t now_us) {
  // Lock discipline: never hold two channel mutexes. Take the reverse
  // channel's piggyback first; if the batch turns out empty (another thread
  // raced the flush), repay the consumed deferred ack standalone.
  bool had_deferred = false;
  const std::uint64_t pig = take_piggyback(src, dst, &had_deferred);
  Channel& ch = channel(src, dst);
  Bytes frame;
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lk(ch.mu);
    if (!ch.pending.empty()) {
      ChannelFrame f;
      f.is_data = true;
      f.src = src;
      f.dst = dst;
      f.seq = ch.next_seq++;
      f.ack = pig;
      f.payloads = std::move(ch.pending);
      ch.pending.clear();
      ch.pending_bytes = 0;
      count = f.payloads.size();
      frame = encode_frame(f);
      const bool was_empty = ch.unacked.empty();
      ch.unacked.emplace(f.seq, Unacked{frame, now_us, 1});
      if (was_empty) {
        ch.backoff_shift = 0;
        ch.rto_deadline_us = now_us + rto_us(0);
      }
      ++ch.stats.data_sent;
      ++ch.stats.batch_flushes;
      ch.stats.payloads_coalesced += count;
    }
  }
  if (count == 0) {
    // Lost the race to another flush — but the deferred-ack obligation we
    // consumed in take_piggyback must still reach the peer.
    if (had_deferred) restore_deferred_ack(src, dst);
    return;
  }
  const std::size_t frame_bytes = frame.size();
  send_(src, dst, std::move(frame));
  if (hooks_.on_batch_flush)
    hooks_.on_batch_flush(src, dst, count, frame_bytes);
}

void ChannelManager::flush(PeId pe, std::uint64_t now_us) {
  if (opt_.batch_bytes == 0) return;
  for (PeId dst = 0; dst < num_pes_; ++dst) {
    bool has_pending;
    {
      Channel& ch = channel(pe, dst);
      std::lock_guard<std::mutex> lk(ch.mu);
      has_pending = !ch.pending.empty();
    }
    if (has_pending) flush_pair(pe, dst, now_us);
  }
}

std::vector<ChannelManager::Bytes> ChannelManager::on_frame(
    PeId pe, const Bytes& frame, std::uint64_t now_us) {
  std::optional<ChannelFrame> f = try_decode_frame(frame);
  if (!f) {
    // Count the error against the receiving PE's self-channel: garbage
    // carries no trustworthy src/dst.
    Channel& ch = channel(pe, pe);
    {
      std::lock_guard<std::mutex> lk(ch.mu);
      ++ch.stats.decode_errors;
    }
    if (hooks_.on_decode_error) hooks_.on_decode_error(pe);
    return {};
  }
  if (f->dst >= num_pes_ || f->src >= num_pes_) return {};
  if (f->is_data) return on_data(*f, now_us);
  on_ack(*f, now_us);
  return {};
}

std::vector<ChannelManager::Bytes> ChannelManager::on_data(
    const ChannelFrame& f, std::uint64_t now_us) {
  // A data frame s → d may piggyback d's cumulative frontier for the
  // reverse channel (d → s): credit it before touching receive state.
  if (f.ack > 0) process_ack(f.dst, f.src, f.ack, now_us);
  Channel& ch = channel(f.src, f.dst);
  std::vector<Bytes> out;
  std::uint64_t cum_ack = 0;
  bool ack_standalone = true;
  {
    std::lock_guard<std::mutex> lk(ch.mu);
    if (f.seq < ch.next_expected ||
        ch.out_of_order.count(f.seq) != 0) {
      ++ch.stats.dup_suppressed;
      if (hooks_.on_dup_suppressed) hooks_.on_dup_suppressed(f.dst, f.src, f.seq);
    } else {
      ch.out_of_order.emplace(f.seq, f.payloads);
      // Drain the in-order run starting at next_expected.
      for (auto it = ch.out_of_order.find(ch.next_expected);
           it != ch.out_of_order.end() && it->first == ch.next_expected;
           it = ch.out_of_order.find(ch.next_expected)) {
        for (Bytes& p : it->second) out.push_back(std::move(p));
        ch.out_of_order.erase(it);
        ++ch.next_expected;
      }
      ch.stats.delivered += out.size();
    }
    cum_ack = ch.next_expected - 1;
    if (opt_.batch_bytes == 0) {
      // Unbatched: ack every data frame — including duplicates — so a lost
      // ack is repaired by the sender's retransmit → our re-ack.
      ++ch.stats.acks_sent;
    } else {
      // Batched: defer, hoping a reverse data frame piggybacks it within
      // batch_flush_us; service() sends it standalone otherwise. The
      // retransmit → re-ack repair still works, one deferral later.
      ack_standalone = false;
      if (!ch.ack_pending) {
        ch.ack_pending = true;
        ch.ack_deadline_us = now_us + opt_.batch_flush_us;
      }
    }
  }
  if (ack_standalone) send_standalone_ack(f.src, f.dst, cum_ack);
  return out;
}

void ChannelManager::on_ack(const ChannelFrame& f, std::uint64_t now_us) {
  process_ack(f.src, f.dst, f.seq, now_us);
}

void ChannelManager::process_ack(PeId src, PeId dst, std::uint64_t cum,
                                 std::uint64_t now_us) {
  Channel& ch = channel(src, dst);
  double rtt = -1.0;
  {
    std::lock_guard<std::mutex> lk(ch.mu);
    bool acked_any = false;
    for (auto it = ch.unacked.begin();
         it != ch.unacked.end() && it->first <= cum;) {
      // Karn's rule: only frames never retransmitted give an RTT sample
      // (a retransmitted frame's ack is ambiguous). Sample the newest.
      if (it->second.attempts == 1 && now_us >= it->second.first_send_us)
        rtt = static_cast<double>(now_us - it->second.first_send_us);
      it = ch.unacked.erase(it);
      acked_any = true;
    }
    if (acked_any) {
      ch.backoff_shift = 0;
      ch.rto_deadline_us =
          ch.unacked.empty() ? 0 : now_us + rto_us(0);
    }
  }
  if (rtt >= 0.0 && hooks_.on_rtt) hooks_.on_rtt(src, rtt);
}

void ChannelManager::service(PeId pe, std::uint64_t now_us) {
  for (PeId dst = 0; dst < num_pes_; ++dst) {
    Channel& ch = channel(pe, dst);
    // Aged batch flush (sender side, batched mode only).
    if (opt_.batch_bytes > 0) {
      bool aged;
      {
        std::lock_guard<std::mutex> lk(ch.mu);
        aged = !ch.pending.empty() && now_us >= ch.batch_deadline_us;
      }
      if (aged) flush_pair(pe, dst, now_us);
    }
    // Retransmit timer.
    std::vector<Bytes> resend;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> notes;  // seq,attempt
    {
      std::lock_guard<std::mutex> lk(ch.mu);
      if (!ch.unacked.empty() && now_us >= ch.rto_deadline_us) {
        std::uint32_t budget = opt_.max_retransmit_batch
                                   ? opt_.max_retransmit_batch
                                   : 1;
        for (auto& [seq, u] : ch.unacked) {
          if (budget-- == 0) break;
          ++u.attempts;
          resend.push_back(u.frame);
          notes.emplace_back(seq, u.attempts);
        }
        ch.stats.retransmits += resend.size();
        if (ch.backoff_shift < 63) ++ch.backoff_shift;
        ch.rto_deadline_us = now_us + rto_us(ch.backoff_shift);
      }
    }
    for (std::size_t i = 0; i < resend.size(); ++i) {
      if (hooks_.on_retransmit)
        hooks_.on_retransmit(pe, dst, notes[i].first, notes[i].second);
      send_(pe, dst, std::move(resend[i]));
    }
    // Due deferred ack for the channel this PE *receives* on (src=dst row in
    // this loop doubles as the reverse scan: channel(dst → pe)).
    if (opt_.batch_bytes > 0) {
      Channel& rx = channel(dst, pe);
      bool owe = false;
      std::uint64_t cum = 0;
      {
        std::lock_guard<std::mutex> lk(rx.mu);
        if (rx.ack_pending && now_us >= rx.ack_deadline_us) {
          rx.ack_pending = false;
          cum = rx.next_expected - 1;
          owe = true;
          ++rx.stats.acks_sent;
        }
      }
      if (owe) send_standalone_ack(dst, pe, cum);
    }
  }
}

ChannelManager::Stats ChannelManager::stats() const {
  Stats total;
  for (const auto& chp : channels_) {
    const Channel& ch = *chp;
    std::lock_guard<std::mutex> lk(ch.mu);
    total.data_sent += ch.stats.data_sent;
    total.retransmits += ch.stats.retransmits;
    total.delivered += ch.stats.delivered;
    total.dup_suppressed += ch.stats.dup_suppressed;
    total.acks_sent += ch.stats.acks_sent;
    total.decode_errors += ch.stats.decode_errors;
    total.unacked += ch.unacked.size();
    total.batch_flushes += ch.stats.batch_flushes;
    total.payloads_coalesced += ch.stats.payloads_coalesced;
  }
  return total;
}

std::uint64_t ChannelManager::unacked(PeId src, PeId dst) const {
  const Channel& ch = channel(src, dst);
  std::lock_guard<std::mutex> lk(ch.mu);
  return ch.unacked.size();
}

}  // namespace dgr
