#include "net/reliable_channel.h"

#include <algorithm>

#include "net/wire.h"
#include "util/assert.h"

namespace dgr {

namespace {

constexpr std::uint8_t kFrameData = 0xD1;
constexpr std::uint8_t kFrameAck = 0xA7;

// FNV-1a over the frame bytes preceding the checksum field.
std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const ChannelFrame& f) {
  ByteWriter w;
  w.u8(f.is_data ? kFrameData : kFrameAck);
  w.u32(f.src);
  w.u32(f.dst);
  w.u64(f.seq);
  w.u32(static_cast<std::uint32_t>(f.payload.size()));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  const std::uint64_t sum = fnv1a(out.data(), out.size());
  ByteWriter tail;
  tail.u64(sum);
  std::vector<std::uint8_t> t = tail.take();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

std::optional<ChannelFrame> try_decode_frame(
    const std::vector<std::uint8_t>& bytes) {
  // type(1) + src(4) + dst(4) + seq(8) + len(4) + checksum(8)
  constexpr std::size_t kMinFrame = 29;
  if (bytes.size() < kMinFrame) return std::nullopt;
  const std::uint64_t want = fnv1a(bytes.data(), bytes.size() - 8);
  ByteReader r(bytes);
  ChannelFrame f;
  const std::uint8_t type = r.u8();
  f.src = r.u32();
  f.dst = r.u32();
  f.seq = r.u64();
  const std::uint32_t len = r.u32();
  if (type == kFrameData) {
    f.is_data = true;
  } else if (type == kFrameAck) {
    f.is_data = false;
  } else {
    return std::nullopt;
  }
  if (r.remaining() != static_cast<std::size_t>(len) + 8) return std::nullopt;
  f.payload.resize(len);
  for (std::uint32_t i = 0; i < len; ++i) f.payload[i] = r.u8();
  const std::uint64_t got = r.u64();
  if (!r.done() || got != want) return std::nullopt;
  return f;
}

ChannelManager::ChannelManager(std::uint32_t num_pes, ReliableOptions opt,
                               SendFn send)
    : num_pes_(num_pes ? num_pes : 1), opt_(opt), send_(std::move(send)) {
  DGR_CHECK(send_ != nullptr);
  channels_.reserve(static_cast<std::size_t>(num_pes_) * num_pes_);
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(num_pes_) * num_pes_; ++i)
    channels_.push_back(std::make_unique<Channel>());
}

std::uint64_t ChannelManager::rto_us(std::uint32_t shift) const {
  const std::uint64_t base = opt_.rto_initial_us ? opt_.rto_initial_us : 1;
  // Doubling capped at rto_max; guard the shift so it can't overflow.
  if (shift >= 63) return opt_.rto_max_us;
  const std::uint64_t rto = base << shift;
  return std::min(rto, opt_.rto_max_us ? opt_.rto_max_us : rto);
}

void ChannelManager::send(PeId src, PeId dst, Bytes payload,
                          std::uint64_t now_us) {
  Channel& ch = channel(src, dst);
  Bytes frame;
  {
    std::lock_guard<std::mutex> lk(ch.mu);
    ChannelFrame f;
    f.is_data = true;
    f.src = src;
    f.dst = dst;
    f.seq = ch.next_seq++;
    f.payload = std::move(payload);
    frame = encode_frame(f);
    const bool was_empty = ch.unacked.empty();
    ch.unacked.emplace(f.seq, Unacked{frame, now_us, 1});
    if (was_empty) {
      ch.backoff_shift = 0;
      ch.rto_deadline_us = now_us + rto_us(0);
    }
    ++ch.stats.data_sent;
  }
  send_(src, dst, std::move(frame));
}

std::vector<ChannelManager::Bytes> ChannelManager::on_frame(
    PeId pe, const Bytes& frame, std::uint64_t now_us) {
  std::optional<ChannelFrame> f = try_decode_frame(frame);
  if (!f) {
    // Count the error against the receiving PE's self-channel: garbage
    // carries no trustworthy src/dst.
    Channel& ch = channel(pe, pe);
    {
      std::lock_guard<std::mutex> lk(ch.mu);
      ++ch.stats.decode_errors;
    }
    if (hooks_.on_decode_error) hooks_.on_decode_error(pe);
    return {};
  }
  if (f->is_data) {
    if (f->dst >= num_pes_ || f->src >= num_pes_) return {};
    return on_data(*f, now_us);
  }
  if (f->dst >= num_pes_ || f->src >= num_pes_) return {};
  on_ack(*f, now_us);
  return {};
}

std::vector<ChannelManager::Bytes> ChannelManager::on_data(
    const ChannelFrame& f, std::uint64_t now_us) {
  (void)now_us;
  Channel& ch = channel(f.src, f.dst);
  std::vector<Bytes> out;
  std::uint64_t cum_ack = 0;
  {
    std::lock_guard<std::mutex> lk(ch.mu);
    if (f.seq < ch.next_expected ||
        ch.out_of_order.count(f.seq) != 0) {
      ++ch.stats.dup_suppressed;
      if (hooks_.on_dup_suppressed) hooks_.on_dup_suppressed(f.dst, f.src, f.seq);
    } else {
      ch.out_of_order.emplace(f.seq, f.payload);
      // Drain the in-order run starting at next_expected.
      for (auto it = ch.out_of_order.find(ch.next_expected);
           it != ch.out_of_order.end() && it->first == ch.next_expected;
           it = ch.out_of_order.find(ch.next_expected)) {
        out.push_back(std::move(it->second));
        ch.out_of_order.erase(it);
        ++ch.next_expected;
      }
      ch.stats.delivered += out.size();
    }
    cum_ack = ch.next_expected - 1;
    ++ch.stats.acks_sent;
  }
  // Ack every data frame — including duplicates — so a lost ack is repaired
  // by the sender's retransmit → our re-ack.
  ChannelFrame ack;
  ack.is_data = false;
  ack.src = f.src;
  ack.dst = f.dst;
  ack.seq = cum_ack;
  send_(f.dst, f.src, encode_frame(ack));
  return out;
}

void ChannelManager::on_ack(const ChannelFrame& f, std::uint64_t now_us) {
  Channel& ch = channel(f.src, f.dst);
  double rtt = -1.0;
  {
    std::lock_guard<std::mutex> lk(ch.mu);
    bool acked_any = false;
    for (auto it = ch.unacked.begin();
         it != ch.unacked.end() && it->first <= f.seq;) {
      // Karn's rule: only frames never retransmitted give an RTT sample
      // (a retransmitted frame's ack is ambiguous). Sample the newest.
      if (it->second.attempts == 1 && now_us >= it->second.first_send_us)
        rtt = static_cast<double>(now_us - it->second.first_send_us);
      it = ch.unacked.erase(it);
      acked_any = true;
    }
    if (acked_any) {
      ch.backoff_shift = 0;
      ch.rto_deadline_us =
          ch.unacked.empty() ? 0 : now_us + rto_us(0);
    }
  }
  if (rtt >= 0.0 && hooks_.on_rtt) hooks_.on_rtt(f.src, rtt);
}

void ChannelManager::service(PeId pe, std::uint64_t now_us) {
  for (PeId dst = 0; dst < num_pes_; ++dst) {
    Channel& ch = channel(pe, dst);
    std::vector<Bytes> resend;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> notes;  // seq,attempt
    {
      std::lock_guard<std::mutex> lk(ch.mu);
      if (ch.unacked.empty() || now_us < ch.rto_deadline_us) continue;
      std::uint32_t budget = opt_.max_retransmit_batch
                                 ? opt_.max_retransmit_batch
                                 : 1;
      for (auto& [seq, u] : ch.unacked) {
        if (budget-- == 0) break;
        ++u.attempts;
        resend.push_back(u.frame);
        notes.emplace_back(seq, u.attempts);
      }
      ch.stats.retransmits += resend.size();
      if (ch.backoff_shift < 63) ++ch.backoff_shift;
      ch.rto_deadline_us = now_us + rto_us(ch.backoff_shift);
    }
    for (std::size_t i = 0; i < resend.size(); ++i) {
      if (hooks_.on_retransmit)
        hooks_.on_retransmit(pe, dst, notes[i].first, notes[i].second);
      send_(pe, dst, std::move(resend[i]));
    }
  }
}

ChannelManager::Stats ChannelManager::stats() const {
  Stats total;
  for (const auto& chp : channels_) {
    const Channel& ch = *chp;
    std::lock_guard<std::mutex> lk(ch.mu);
    total.data_sent += ch.stats.data_sent;
    total.retransmits += ch.stats.retransmits;
    total.delivered += ch.stats.delivered;
    total.dup_suppressed += ch.stats.dup_suppressed;
    total.acks_sent += ch.stats.acks_sent;
    total.decode_errors += ch.stats.decode_errors;
    total.unacked += ch.unacked.size();
  }
  return total;
}

std::uint64_t ChannelManager::unacked(PeId src, PeId dst) const {
  const Channel& ch = channel(src, dst);
  std::lock_guard<std::mutex> lk(ch.mu);
  return ch.unacked.size();
}

}  // namespace dgr
