// Per-worker clock alignment for the cluster telemetry plane.
//
// The controller and each worker stamp trace events with their own monotonic
// clocks (microseconds since their respective process start), so worker
// events cannot be merged into the controller's timeline as-is. The offset
// is estimated with the classic midpoint-of-RTT exchange (Cristian's
// algorithm, the same primitive NTP builds on): the controller sends a
// kClockProbe carrying its send time t0; the worker echoes it back in a
// kClockEcho together with its own clock reading t_w; the controller
// receives the echo at t1 and assumes t_w was sampled at (t0 + t1) / 2 of
// its own timeline, giving offset = t_w − (t0 + t1) / 2 (worker minus
// controller). The sample from the tightest exchange wins: queueing and
// scheduling delay only ever inflate RTT, so the minimum-RTT sample bounds
// the estimation error by rtt / 2.
//
// ProcEngine probes each worker once after registration and once per plane
// begin; rebase() then maps a worker timestamp onto the controller timeline
// (clamped at zero — a constant offset preserves each lane's monotonicity,
// which is all the merged trace promises).
#pragma once

#include <cstdint>

namespace dgr {

class ClockSync {
 public:
  // One probe/echo exchange: the controller sent at t0 and received the echo
  // at t1 (both its own clock); the worker's clock read t_worker in between.
  void on_echo(std::uint64_t t0_us, std::uint64_t t1_us,
               std::uint64_t t_worker_us) {
    if (t1_us < t0_us) return;  // controller clock misbehaved; discard
    ++samples_;
    const std::uint64_t rtt = t1_us - t0_us;
    if (rtt > best_rtt_) return;
    best_rtt_ = rtt;
    offset_us_ = static_cast<std::int64_t>(t_worker_us) -
                 static_cast<std::int64_t>((t0_us + t1_us) / 2);
  }

  bool valid() const { return samples_ > 0; }
  std::uint64_t samples() const { return samples_; }
  // Estimated worker-minus-controller clock offset (may be negative: a
  // worker forked later than the controller usually reads behind it).
  std::int64_t offset_us() const { return offset_us_; }
  // RTT of the exchange the estimate came from (its error bound is rtt/2).
  std::uint64_t rtt_us() const { return valid() ? best_rtt_ : 0; }

  // Map a worker timestamp onto the controller timeline. Clamps at zero:
  // an event stamped before the (rebased) controller epoch pins to 0 rather
  // than wrapping, keeping the lane monotone.
  std::uint64_t rebase(std::uint64_t worker_ts_us) const {
    const std::int64_t r =
        static_cast<std::int64_t>(worker_ts_us) - offset_us_;
    return r < 0 ? 0 : static_cast<std::uint64_t>(r);
  }

 private:
  std::uint64_t samples_ = 0;
  std::uint64_t best_rtt_ = ~0ull;
  std::int64_t offset_us_ = 0;
};

}  // namespace dgr
