// ProcEngine control-plane payloads: worker configuration, graph-partition
// handoff, and mark-report merge (docs/CLUSTER.md has the frame walkthrough).
//
// All payloads ride inside net/frame.h frames and use the same ByteWriter /
// ByteReader conventions as the task wire format. Decoders are recoverable
// (sticky-failure readers, bool returns) — a malformed control payload drops
// the connection rather than aborting the process.
//
// A handoff ships exactly what a marking replica reads: vertex liveness,
// topology (args with request kind + request epoch, requested,
// stale_requested), and both epoch-tagged mark planes. Values, evaluation
// state, and free lists stay controller-side — workers only mark; they never
// reduce, allocate, or sweep (the restructuring phase is centralized, per
// the paper's "we concentrate solely upon the mark phase").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/marker.h"
#include "graph/graph.h"
#include "net/fault_plane.h"
#include "net/reliable_channel.h"
#include "net/wire.h"
#include "obs/metrics.h"  // Counter/Hist index bounds (inline constants only)
#include "obs/trace.h"    // TraceEvent — a header-only POD, trace-off safe

namespace dgr {

inline constexpr std::uint32_t kProtoVersion = 1;
// kRegister flag bits.
inline constexpr std::uint32_t kRegisterFlagReconnect = 1u << 0;
// "Assign me any free slot" worker index in a kRegister payload.
inline constexpr std::uint32_t kAnyWorkerIndex = 0xffffffffu;

using Bytes = std::vector<std::uint8_t>;

// Everything a worker needs to mirror the controller's engine configuration,
// delivered inside the kRegisterAck frame.
struct WorkerConfig {
  std::uint32_t num_pes = 0;
  std::uint32_t pe_begin = 0;  // contiguous owned PE block [pe_begin,
  std::uint32_t pe_count = 0;  //                            pe_begin+pe_count)
  bool use_channel = false;    // wrap worker<->worker data in ChannelManager
  std::uint64_t fault_seed = 1;
  FaultSpec faults;            // injected above the channel, worker side
  ReliableOptions reliable;
  // Telemetry plane: capture a worker-side trace ring and ship it at every
  // quiesce (honored only in DGR_TRACE builds; counters always ship).
  bool trace_enabled = false;
  std::uint32_t trace_capacity = 1u << 14;
};

Bytes encode_worker_config(const WorkerConfig& c);
bool decode_worker_config(const Bytes& b, WorkerConfig& out);

// kRegister payload.
struct RegisterMsg {
  std::uint32_t proto_version = kProtoVersion;
  std::uint32_t flags = 0;
  std::uint32_t worker_index = kAnyWorkerIndex;
};
Bytes encode_register(const RegisterMsg& m);
bool decode_register(const Bytes& b, RegisterMsg& out);

// kRegisterAck payload: the slot the controller assigned plus the config.
struct RegisterAckMsg {
  std::uint32_t worker_index = 0;
  std::uint32_t num_workers = 0;
  WorkerConfig config;
};
Bytes encode_register_ack(const RegisterAckMsg& m);
bool decode_register_ack(const Bytes& b, RegisterAckMsg& out);

// kReject payload.
struct RejectMsg {
  std::uint32_t code = 0;
  std::string reason;
};
Bytes encode_reject(const RejectMsg& m);
bool decode_reject(const Bytes& b, RejectMsg& out);

// kPlaneBegin / kQuiesce / kPlaneDone payload: which plane, which epoch.
Bytes encode_plane_signal(Plane plane, std::uint64_t epoch);
bool decode_plane_signal(const Bytes& b, Plane& plane, std::uint64_t& epoch);

// One vertex's marking-relevant state (see header comment).
void encode_vertex_record(ByteWriter& w, std::uint32_t idx, const Vertex& v);
bool decode_vertex_record(ByteReader& r, std::uint32_t& idx, Vertex& v);

// ---- kHandoff: full snapshots and differential frames ----
//
// A handoff is tailored to one worker: full records for its owned PEs,
// liveness views for the rest (mark3 consults liveness of possibly-remote
// stale_requested entries). Ownership travels inside the payload as a
// per-PE flag, so a repartition-on-survivors needs no separate assignment
// frame — the worker adopts whatever the latest handoff says it owns.
//
// Two kinds ride the same frame type:
//   kHandoffFull   — wipe and rebuild every store (the PR-7 behavior);
//   kHandoffDelta  — only slots whose structural state changed since the
//                    last handoff this worker acked. Mark planes are
//                    epoch-tagged (stale state is semantically unmarked), so
//                    deltas track structure only: liveness, aux, op, args
//                    (to/req/req_epoch), requested, stale_requested.
//
// Every handoff carries the structural checksum of the post-apply view; the
// worker recomputes it over its replica and answers kHandoffAck. A mismatch
// (diverged replica) makes the controller fence the epoch and force a full
// resync — see docs/CLUSTER.md "Membership and failure model".
inline constexpr std::uint8_t kHandoffFull = 0;
inline constexpr std::uint8_t kHandoffDelta = 1;

// Decoded kHandoff header (the body is consumed by apply_handoff).
struct HandoffMsg {
  std::uint8_t kind = kHandoffFull;
  std::uint64_t seq = 0;       // controller scan sequence being shipped
  std::uint64_t checksum = 0;  // expected post-apply structural checksum
};

// kHandoffAck payload (worker → controller, same FIFO as its mark reports).
struct HandoffAckMsg {
  std::uint64_t seq = 0;
  bool ok = true;  // false: replica checksum diverged, needs a full resync
};
Bytes encode_handoff_ack(const HandoffAckMsg& m);
bool decode_handoff_ack(const Bytes& b, HandoffAckMsg& out);

// Structural checksum of one worker's view: per PE the capacity, then for
// owned PEs every live slot's structural fields, for the rest the liveness
// bits. Computed identically over the authoritative graph and a replica.
// owned[pe] != 0 marks the worker's PEs (owned.size() == num_pes).
std::uint64_t handoff_checksum(const Graph& g,
                               const std::vector<std::uint8_t>& owned);

// Controller-side change tracker behind differential handoffs. scan() runs
// one O(V) fingerprint pass per plane begin; encode() then cuts per-worker
// payloads against each worker's acked baseline.
class HandoffTracker {
 public:
  // Refresh per-slot structural fingerprints; slots that moved are stamped
  // with the new scan sequence. Call once per plane begin, before encode().
  void scan(const Graph& g);
  std::uint64_t seq() const { return seq_; }

  // Cut the handoff for one worker. `since` is the scan sequence the worker
  // last acked (0 = nothing); force_full or since == 0 ships a snapshot.
  // A delta that would not undercut the snapshot falls back to full.
  // On return *kind_out (if set) says which kind was encoded.
  Bytes encode(const Graph& g, const std::vector<std::uint8_t>& owned,
               std::uint64_t since, bool force_full,
               std::uint8_t* kind_out = nullptr) const;

 private:
  std::uint64_t seq_ = 0;
  std::vector<std::vector<std::uint64_t>> fp_;       // [pe][idx] fingerprint
  std::vector<std::vector<std::uint64_t>> changed_;  // [pe][idx] last scan
};

// Worker side: apply a full or delta handoff onto the replica. Updates
// `owned` from the payload's per-PE flags and returns the decoded header in
// `out`. Returns false on a malformed payload or a delta that disagrees with
// the replica's shape (caller should nack and await a full resync).
bool apply_handoff(const Bytes& b, Graph& g, std::vector<std::uint8_t>& owned,
                   HandoffMsg& out);

// kRescueBegin: the plane reopens, and the controller-minted rescue root
// (possibly a slot the handoff never shipped) is replicated to every worker.
Bytes encode_rescue_begin(Plane plane, std::uint64_t epoch, VertexId root,
                          const Vertex& v);
bool apply_rescue_begin(const Bytes& b, Graph& g, Plane& plane,
                        std::uint64_t& epoch);

// kMarkReport: the wave's per-vertex results for one worker's owned PEs —
// every slot (aux included) whose plane record is tagged with this epoch —
// plus the worker's wave counters. `pes` is the worker's owned PE set (not
// necessarily contiguous once a repartition-on-survivors has run).
Bytes encode_mark_report(const Graph& g, Plane plane, std::uint64_t epoch,
                         const std::vector<PeId>& pes, const MarkStats& stats);
// Controller side: merge the marks into the authoritative graph (mt_cnt and
// mt_par are tree-collapse scaffolding — gone by termination — so they merge
// as 0 / invalid). Returns false on a malformed payload or epoch mismatch.
bool apply_mark_report(const Bytes& b, Graph& g, Plane expect_plane,
                       std::uint64_t expect_epoch, MarkStats& stats_out);

// ---- Telemetry plane (net/clock_sync.h has the offset estimator) ----

// kClockProbe payload (controller → worker). The worker echoes every field
// back in its kClockEcho so the controller computes RTT and offset without
// per-sequence bookkeeping.
struct ClockProbeMsg {
  std::uint32_t seq = 0;
  std::uint64_t t_controller_us = 0;
};
Bytes encode_clock_probe(const ClockProbeMsg& m);
bool decode_clock_probe(const Bytes& b, ClockProbeMsg& out);

// kClockEcho payload (worker → controller).
struct ClockEchoMsg {
  std::uint32_t seq = 0;
  std::uint64_t t_controller_us = 0;  // echoed probe field
  std::uint64_t t_worker_us = 0;      // worker clock at echo time
};
Bytes encode_clock_echo(const ClockEchoMsg& m);
bool decode_clock_echo(const Bytes& b, ClockEchoMsg& out);

// Hard cap on trace events per kTelemetry payload. A quiesce interval that
// drained more is truncated (newest dropped) and the remainder surfaces in
// events_omitted — the payload stays bounded no matter how hot the plane.
inline constexpr std::size_t kMaxTelemetryEvents = 8192;

// kTelemetry payload (worker → controller), sent at every quiesce barrier
// immediately before the kMarkReport on the same FIFO connection — so the
// controller has merged the interval's telemetry before the wave's final
// report lets the cycle advance. Counters and histogram buckets travel as
// deltas since the worker's previous report (nonzero entries only): the
// wire cost tracks activity, not registry width.
struct TelemetryMsg {
  Plane plane = Plane::kR;
  std::uint64_t epoch = 0;
  std::uint32_t pe_begin = 0;  // owned PE block, mirrors the mark report
  std::uint32_t pe_count = 0;

  struct CounterDelta {
    std::uint32_t pe = 0;
    std::uint8_t counter = 0;  // obs::Counter index
    std::uint64_t delta = 0;
  };
  std::vector<CounterDelta> counters;

  // One entry per (pe, hist) with activity: the changed log-buckets plus the
  // worker's cumulative max for that histogram (bucket midpoints alone would
  // understate it on the controller).
  struct HistDelta {
    std::uint32_t pe = 0;
    std::uint8_t hist = 0;  // obs::Hist index
    double max = 0.0;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  };
  std::vector<HistDelta> hists;

  // Trace events drained from the worker's ring this interval (empty under
  // -DDGR_TRACE=OFF), capped at kMaxTelemetryEvents.
  std::vector<obs::TraceEvent> events;
  std::uint64_t events_omitted = 0;  // drained but over the payload cap
  std::uint64_t ring_dropped = 0;    // ring overwrites since the last report
};
Bytes encode_telemetry(const TelemetryMsg& m);
bool decode_telemetry(const Bytes& b, TelemetryMsg& out);

}  // namespace dgr
