// Reliable delivery over an unreliable message plane.
//
// ChannelManager maintains one logical channel per directed PE pair and
// turns the fault plane's at-most-once, possibly-duplicated, possibly-
// reordered, possibly-truncated frame delivery into exactly-once in-order
// payload delivery — the discipline Hudak's marking correctness argument
// (Axioms 1–6) silently assumes of the fabric:
//
//   sender     per-pair sequence numbers; unacked frames buffered with their
//              send timestamps; timeout-driven retransmission with capped
//              exponential backoff (serviced from the owning PE's loop);
//   receiver   cumulative acks (acked on every data frame, so lost acks are
//              repaired by the retransmit → re-ack exchange), an out-of-order
//              buffer that releases payloads strictly in sequence, and
//              duplicate suppression (seq below the in-order frontier or
//              already buffered);
//   framing    every frame carries its payload lengths and an FNV-1a
//              checksum, so a truncated or corrupted frame fails decode
//              recoverably and is simply dropped — retransmission recovers
//              the payloads.
//
// Batching (opt-in via ReliableOptions::batch_bytes > 0): outgoing payloads
// for each directed PE pair coalesce into a single multi-payload data frame,
// flushed when the pending batch reaches batch_bytes or ages past
// batch_flush_us (serviced from the owning PE's loop, or forced via flush()).
// One frame = one sequence number = one ack, so the per-message protocol
// cost (framing, checksum, ack traffic, mailbox crossings) amortizes over
// the whole batch. Acks piggyback on reverse-direction data frames (the
// `ack` field carries the receiver's cumulative frontier); standalone acks
// are deferred up to batch_flush_us and sent from service() only when no
// reverse data materializes. With batch_bytes == 0 the protocol degenerates
// to exactly the unbatched PR 4 behavior: one payload per frame, an
// immediate standalone ack per data frame.
//
// The manager is transport-agnostic: frames leave through a SendFn (the
// fault plane, a bare mailbox, or a test harness) and arrive via on_frame.
// Time is passed in explicitly (microseconds, any monotonic origin), which
// keeps the protocol state machine deterministic and unit-testable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/ids.h"

namespace dgr {

struct ReliableOptions {
  std::uint64_t rto_initial_us = 300;  // first retransmit timeout
  std::uint64_t rto_max_us = 20000;    // backoff cap
  std::uint32_t max_retransmit_batch = 32;  // frames re-sent per service()
  // Batching knobs (see header comment). 0 batch_bytes = unbatched protocol.
  std::uint32_t batch_bytes = 0;       // coalesce payloads per pair up to this
  std::uint64_t batch_flush_us = 100;  // age cap: pending batch / deferred ack
};

// One decoded frame. `src`/`dst` identify the *data direction* of the
// channel: an ack for channel (s → d) travels d → s but still carries
// src = s, dst = d.
struct ChannelFrame {
  bool is_data = true;
  PeId src = 0;
  PeId dst = 0;
  std::uint64_t seq = 0;  // data: sequence number; ack: cumulative ack
  // Data frames: piggybacked cumulative ack for the reverse channel
  // (dst → src); 0 = no information. Always 0 on standalone ack frames.
  std::uint64_t ack = 0;
  // Data frames carry one or more payloads, delivered as a unit in frame-
  // sequence order. Ack frames carry none.
  std::vector<std::vector<std::uint8_t>> payloads;
};

std::vector<std::uint8_t> encode_frame(const ChannelFrame& f);
// nullopt on truncated input or checksum mismatch — never aborts.
std::optional<ChannelFrame> try_decode_frame(
    const std::vector<std::uint8_t>& bytes);

class ChannelManager {
 public:
  using Bytes = std::vector<std::uint8_t>;
  using SendFn = std::function<void(PeId src, PeId dst, Bytes frame)>;

  // Observability hooks; all fire on cold paths only.
  struct Hooks {
    // A data frame was re-sent (attempt counts from 2).
    std::function<void(PeId src, PeId dst, std::uint64_t seq,
                       std::uint32_t attempt)>
        on_retransmit;
    // A duplicate data frame was suppressed at the receiver.
    std::function<void(PeId dst, PeId src, std::uint64_t seq)>
        on_dup_suppressed;
    // A frame failed to decode at `pe` (truncation/corruption).
    std::function<void(PeId pe)> on_decode_error;
    // Clean (never-retransmitted) round-trip time sample for a frame sent
    // by `src` (Karn's rule: retransmitted frames yield no RTT sample).
    std::function<void(PeId src, double rtt_us)> on_rtt;
    // A coalesced multi-payload data frame left the sender (batched mode
    // only; fires once per flush, with the payload count and frame size).
    std::function<void(PeId src, PeId dst, std::size_t payloads,
                       std::size_t frame_bytes)>
        on_batch_flush;
  };

  ChannelManager(std::uint32_t num_pes, ReliableOptions opt, SendFn send);

  ChannelManager(const ChannelManager&) = delete;
  ChannelManager& operator=(const ChannelManager&) = delete;

  void set_hooks(Hooks h) { hooks_ = std::move(h); }

  // Sender side: queue `payload` for (src → dst). Unbatched: framed, recorded
  // unacked and handed to SendFn immediately. Batched: staged in the pair's
  // pending batch; flushed at batch_bytes, at age batch_flush_us (via
  // service), or on flush().
  void send(PeId src, PeId dst, Bytes payload, std::uint64_t now_us);

  // Force-flush every pending batch whose sender is `pe` (no-op unbatched).
  // Call when the owning PE goes idle or parks: latency floor for stragglers.
  void flush(PeId pe, std::uint64_t now_us);

  // Receiver side: feed one raw frame that arrived at `pe`. Returns the
  // payloads newly deliverable in order (possibly none: out-of-order data,
  // duplicate, ack, or garbage). Acks are replied/processed internally.
  std::vector<Bytes> on_frame(PeId pe, const Bytes& frame,
                              std::uint64_t now_us);

  // Timers for PE `pe`: retransmits for channels it sends on, plus (batched
  // mode) aged batch flushes and due deferred acks for channels it receives
  // on. Call from the owning PE's loop; cheap when nothing is due.
  void service(PeId pe, std::uint64_t now_us);

  struct Stats {
    std::uint64_t data_sent = 0;        // first transmissions (frames)
    std::uint64_t retransmits = 0;
    std::uint64_t delivered = 0;        // payloads released in order
    std::uint64_t dup_suppressed = 0;
    std::uint64_t acks_sent = 0;        // standalone ack frames
    std::uint64_t decode_errors = 0;
    std::uint64_t unacked = 0;          // snapshot: still awaiting ack
    std::uint64_t batch_flushes = 0;    // multi-payload frames sent
    std::uint64_t payloads_coalesced = 0;  // payloads inside those frames
  };
  Stats stats() const;  // aggregate over all channels
  // Frames sent on (src → dst) and not yet cumulatively acked.
  std::uint64_t unacked(PeId src, PeId dst) const;

 private:
  struct Unacked {
    Bytes frame;  // encoded frame, resent verbatim
    std::uint64_t first_send_us = 0;
    std::uint32_t attempts = 1;
  };
  struct Channel {
    mutable std::mutex mu;
    // Sender state (owned by src's side).
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Unacked> unacked;
    std::uint64_t rto_deadline_us = 0;
    std::uint32_t backoff_shift = 0;
    // Sender batching state: payloads staged for the next flush.
    std::vector<Bytes> pending;
    std::size_t pending_bytes = 0;  // payload bytes + per-payload framing
    std::uint64_t batch_deadline_us = 0;
    // Receiver state (owned by dst's side).
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, std::vector<Bytes>> out_of_order;
    // Receiver deferred-ack state (batched mode): a standalone ack owed for
    // data already delivered, sent by service() unless a reverse-direction
    // data frame piggybacks it first.
    bool ack_pending = false;
    std::uint64_t ack_deadline_us = 0;
    // Counters (guarded by mu).
    Stats stats;
  };

  Channel& channel(PeId src, PeId dst) {
    return *channels_[static_cast<std::size_t>(src) * num_pes_ + dst];
  }
  const Channel& channel(PeId src, PeId dst) const {
    return *channels_[static_cast<std::size_t>(src) * num_pes_ + dst];
  }
  std::uint64_t rto_us(std::uint32_t shift) const;
  std::vector<Bytes> on_data(const ChannelFrame& f, std::uint64_t now_us);
  void on_ack(const ChannelFrame& f, std::uint64_t now_us);
  // Apply a cumulative ack `cum` against sender channel (src → dst).
  void process_ack(PeId src, PeId dst, std::uint64_t cum, std::uint64_t now_us);
  // Consume the reverse channel's piggyback: returns (dst → src)'s cumulative
  // frontier and clears its deferred-ack obligation. `restore` undoes the
  // clear when the caller ends up not sending a data frame after all.
  std::uint64_t take_piggyback(PeId src, PeId dst, bool* had_deferred);
  void restore_deferred_ack(PeId src, PeId dst);
  // Seal (src → dst)'s pending batch into one data frame and transmit it.
  void flush_pair(PeId src, PeId dst, std::uint64_t now_us);
  void send_standalone_ack(PeId src, PeId dst, std::uint64_t cum);

  std::uint32_t num_pes_;
  ReliableOptions opt_;
  SendFn send_;
  Hooks hooks_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace dgr
