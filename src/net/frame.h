// Socket frame format + incremental decoder.
//
// Every byte crossing a ProcEngine socket is a length-prefixed frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------
//        0     4  magic 'DGRF' (0x46524744 little-endian)
//        4     1  version (kFrameVersion)
//        5     1  type (FrameType)
//        6     2  membership generation (u16 LE; 0 until a worker is lost)
//        8     4  src endpoint / PE (u32 LE)
//       12     4  dst endpoint / PE (u32 LE)
//       16     4  payload length in bytes (u32 LE)
//       20     n  payload
//
// The decoder is incremental: feed() it whatever read() returned — half a
// header, three frames and a tail, anything — and next() yields complete
// frames in order. A frame whose bytes arrived across more than one feed()
// bumps partial_resumes (exported as TransportStats::partial_read_resumes).
// Bad magic, unknown version, or an oversized payload is a sticky error:
// the stream is unframed garbage and the connection must drop.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.h"

namespace dgr {

inline constexpr std::uint32_t kFrameMagic = 0x46524744u;  // "DGRF"
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 20;
// Largest payload a peer may send; a full-graph handoff at the default
// chaos-harness scale is ~100 KiB, so 16 MiB is a generous ceiling.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

enum class FrameType : std::uint8_t {
  kData = 0,      // opaque message-plane payload (task bytes / channel frame)
  kSeed = 1,      // controller-originated marking task, bypasses the channel
  kRegister = 2,  // worker → controller: first frame on a connection
  kRegisterAck = 3,  // controller → worker: accepted, carries config
  kReject = 4,       // controller → worker: refused, carries reason
  kHandoff = 5,      // controller → worker: graph partition snapshot
  kPlaneBegin = 6,   // controller → workers: a marking plane opens
  kRescueBegin = 7,  // controller → workers: rescue wave reopens the plane
  kQuiesce = 8,      // controller → workers: wave done, flush + report
  kMarkReport = 9,   // worker → controller: per-vertex mark results
  kPlaneDone = 10,   // worker → controller: termination return reached root
  kShutdown = 11,    // controller → workers: exit cleanly
  // Telemetry plane (docs/OBSERVABILITY.md "Observing a cluster run").
  kTelemetry = 12,   // worker → controller: metrics/trace delta per quiesce
  kClockProbe = 13,  // controller → worker: clock-offset probe (echoed back)
  kClockEcho = 14,   // worker → controller: probe + worker clock sample
  // Dynamic membership (docs/CLUSTER.md "Membership and failure model").
  kEpochFence = 15,   // controller → workers: adopt gen, void stale traffic
  kHandoffAck = 16,   // worker → controller: handoff seq + checksum verdict
};

const char* frame_type_name(FrameType t);

struct NetFrame {
  FrameType type = FrameType::kData;
  // Membership generation the sender believed current. Bumped by the
  // controller when a worker is lost; receivers drop kData/kSeed frames whose
  // gen differs from their own (the epoch fence), so marks from a failed
  // wave cannot leak into the restarted one. 0 until the first loss.
  std::uint16_t gen = 0;
  PeId src = 0;
  PeId dst = 0;
  std::vector<std::uint8_t> payload;
};

// Serialize header + payload into one contiguous buffer.
std::vector<std::uint8_t> encode_frame(const NetFrame& f);

// Incremental frame reassembler for one connection's byte stream.
class FrameCodec {
 public:
  explicit FrameCodec(std::uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  // Append n raw stream bytes. No-op after a sticky error.
  void feed(const std::uint8_t* p, std::size_t n);

  // Extract the next complete frame. Returns false when more bytes are
  // needed or the stream is in error.
  bool next(NetFrame& out);

  bool error() const { return error_; }
  const char* error_reason() const { return error_reason_; }

  // Frames whose bytes spanned more than one feed() call.
  std::uint64_t partial_resumes() const { return partial_resumes_; }
  // Frames rejected for exceeding max_payload.
  std::uint64_t oversized() const { return oversized_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;       // consumed prefix of buf_
  bool mid_frame_ = false;    // a frame straddles the last feed boundary
  bool resumed_ = false;      // current frame already straddled a boundary
  bool error_ = false;
  const char* error_reason_ = "";
  std::uint64_t partial_resumes_ = 0;
  std::uint64_t oversized_ = 0;
  std::uint32_t max_payload_;

  void fail(const char* reason) {
    error_ = true;
    error_reason_ = reason;
  }
};

}  // namespace dgr
