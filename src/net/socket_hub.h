// The controller-side socket switchboard for ProcEngine (and the internal
// relay of SocketTransport).
//
// One hub = one listening socket + a set of registered peer connections.
// Per connection the hub runs a reader thread (socket → FrameCodec → route)
// and a writer thread draining an unbounded outbound queue — so a reader
// relaying a kData frame toward another peer only ever enqueues, never
// blocks on a socket write. Two peers flooding each other therefore cannot
// deadlock the relay, whatever the kernel buffer sizes.
//
// Registration handshake (docs/CLUSTER.md): the first frame on a connection
// MUST be kRegister. The hub's policy callback decides accept (kRegisterAck
// with the assigned worker index + config) or reject (kReject with a coded
// reason, connection closed). Any other first frame, an unframed byte
// stream, or an unsupported protocol version also counts as a rejected
// handshake. A kRegister carrying the reconnect flag may re-claim a
// previously registered slot after its connection dropped.
//
// Routing: kData frames are forwarded to the peer owning the frame's dst
// endpoint (ownership is declared by the accept decision's config). Every
// other frame type is surfaced to the control handler.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/proto.h"
#include "net/socket.h"
#include "net/transport.h"
#include "util/mpmc_queue.h"

namespace dgr {

class SocketHub {
 public:
  struct Decision {
    bool accept = false;
    RegisterAckMsg ack;   // when accepted
    RejectMsg reject;     // when refused
  };
  // Invoked (under the hub lock) for every kRegister frame.
  using PolicyFn = std::function<Decision(const RegisterMsg&)>;
  // Non-kData frames from a registered peer; runs on that reader thread.
  using ControlFn = std::function<void(std::uint32_t worker, NetFrame frame)>;
  // A registered peer's connection died (not called during close()).
  using LostFn = std::function<void(std::uint32_t worker)>;

  SocketHub() = default;
  ~SocketHub() { close(); }
  SocketHub(const SocketHub&) = delete;
  SocketHub& operator=(const SocketHub&) = delete;

  void set_control_handler(ControlFn fn) { control_ = std::move(fn); }
  void set_worker_lost(LostFn fn) { lost_ = std::move(fn); }

  // Bind + start the accept loop. For tcp port 0 the chosen port is written
  // back into addr (readable via address()).
  bool listen(SocketAddr addr, PolicyFn policy);
  const std::string& error() const { return error_; }
  std::string address() const { return addr_.str(); }

  // Block until `n` workers are registered (or timeout). False on timeout.
  bool wait_workers(std::uint32_t n, int timeout_ms);
  std::uint32_t workers_connected() const;

  // Enqueue a frame for one registered worker / the owner of dst / everyone.
  // Silently drops toward unregistered or lost workers (the lost callback is
  // the signal to abort the run).
  void send_to_worker(std::uint32_t worker, const NetFrame& f);
  void send_to_endpoint_owner(const NetFrame& f);
  void broadcast(const NetFrame& f);

  // Rebind one endpoint (PE) to a different worker — the routing half of a
  // repartition-on-survivors (docs/CLUSTER.md "Membership and failure
  // model"). Registration still seeds the contiguous initial mapping.
  void set_endpoint_owner(PeId pe, std::uint32_t worker);

  // Force a registered worker's connection down. The reader observes EOF and
  // the normal lost path runs (slot cleared, lost callback fired) — this is
  // how the quiesce-barrier watchdog converts "silent past the deadline"
  // into a worker_lost event. No-op for unknown or already-lost workers.
  void drop_worker(std::uint32_t worker);

  void close();

  TransportStats stats() const;

  // Per-worker relay attribution (frames, payload bytes), charged to the
  // worker whose connection originated the relayed frame. Sized to the
  // highest registered worker index + 1.
  struct RelayCount {
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<RelayCount> relay_by_worker() const;

 private:
  struct Conn {
    Socket sock;
    std::unique_ptr<MpmcQueue<std::vector<std::uint8_t>>> outq;
    std::thread reader;
    std::thread writer;
    std::uint32_t worker = kAnyWorkerIndex;
    bool registered = false;
    bool dead = false;
    std::uint64_t partial_resumes = 0;
    std::uint64_t oversized = 0;
  };

  void accept_loop();
  void conn_loop(Conn* c);
  void writer_loop(Conn* c);
  bool handle_register(Conn* c, const NetFrame& f);
  void route(Conn* c, NetFrame&& f);
  void enqueue(Conn* c, const NetFrame& f);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Listener listener_;
  SocketAddr addr_;
  std::string error_;
  PolicyFn policy_;
  ControlFn control_;
  LostFn lost_;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Conn>> conns_;
  // worker index → its live connection (nullptr when lost).
  std::vector<Conn*> workers_;
  // endpoint (PE) → worker index owning it.
  std::vector<std::uint32_t> endpoint_owner_;
  bool closing_ = false;
  TransportStats stats_;
  std::vector<RelayCount> relay_by_worker_;
};

}  // namespace dgr
