// Pluggable cross-PE delivery: the seam between the message plane and
// whatever actually moves bytes.
//
// Everything above this interface — fault plane, reliable channel, batching,
// the engines — speaks (src PE, dst PE, byte payload). Everything below it
// is a Transport: the in-process implementation wraps the per-PE mailboxes
// the threaded engine always used; the socket implementation
// (net/socket_transport.h) moves the same payloads over Unix-domain or TCP
// loopback connections. The contract is deliberately the Mailbox surface —
// deliver one message or a batch toward a destination endpoint, drain a
// destination's inbox in delivery order — so ThreadEngine runs unchanged on
// either, and the chaos harness can diff them against the oracle.
//
// Ordering contract: messages from one sender to one destination arrive in
// send order (both implementations are FIFO per directed pair). No stronger
// guarantee is offered; exactly-once and loss recovery live one layer up in
// net/reliable_channel.h, and fault injection above that.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/ids.h"
#include "net/mailbox.h"

namespace dgr {

// Counters every transport exposes; socket transports fill the connection
// fields, the in-process transport leaves them zero.
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t connects = 0;              // outbound connections established
  std::uint64_t accepts = 0;               // inbound connections accepted
  std::uint64_t reconnects = 0;            // re-registrations after a drop
  std::uint64_t partial_read_resumes = 0;  // frames completed across >1 read
  std::uint64_t oversized_rejected = 0;    // frames over the size limit
  std::uint64_t handshakes_rejected = 0;   // registrations refused
  // Hub relay path (controller only): worker→worker data/seed frames that
  // transited the switchboard rather than terminating at the controller.
  std::uint64_t frames_relayed = 0;
  std::uint64_t bytes_relayed = 0;
};

class Transport {
 public:
  using Bytes = std::vector<std::uint8_t>;

  virtual ~Transport() = default;

  // Number of addressable endpoints (PEs).
  virtual std::uint32_t endpoints() const = 0;

  // Deliver one message from src toward dst. May block on backpressure.
  virtual void send(PeId src, PeId dst, Bytes msg) = 0;

  // Deliver a batch toward dst under one synchronization point.
  virtual void send_batch(PeId src, PeId dst, std::vector<Bytes> msgs) = 0;

  // Pop up to max_n messages pending for `pe`, appending in delivery order.
  virtual std::size_t drain(PeId pe, std::size_t max_n,
                            std::vector<Bytes>& out) = 0;

  // Like drain, but parks up to timeout_us when the inbox is empty.
  virtual std::size_t drain_wait(PeId pe, std::size_t max_n,
                                 std::vector<Bytes>& out,
                                 std::uint64_t timeout_us) = 0;

  // Messages currently queued for `pe`.
  virtual std::size_t pending(PeId pe) const = 0;

  // Deepest single-inbox backlog observed at delivery time.
  virtual std::uint64_t high_water() const = 0;

  // Wake every blocked drain_wait and stop accepting traffic.
  virtual void close() = 0;

  virtual TransportStats stats() const = 0;
};

// The transport the threaded engine always had: one Mailbox per PE, shared
// address space, delivery is a queue push.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(std::uint32_t num_pes) {
    mail_.reserve(num_pes);
    for (std::uint32_t i = 0; i < num_pes; ++i)
      mail_.push_back(std::make_unique<Mailbox>());
  }

  std::uint32_t endpoints() const override {
    return static_cast<std::uint32_t>(mail_.size());
  }

  void send(PeId, PeId dst, Bytes msg) override {
    mail_[dst]->deliver(std::move(msg));
  }

  void send_batch(PeId, PeId dst, std::vector<Bytes> msgs) override {
    mail_[dst]->deliver_batch(std::move(msgs));
  }

  std::size_t drain(PeId pe, std::size_t max_n,
                    std::vector<Bytes>& out) override {
    return mail_[pe]->drain(max_n, out);
  }

  std::size_t drain_wait(PeId pe, std::size_t max_n, std::vector<Bytes>& out,
                         std::uint64_t timeout_us) override {
    return mail_[pe]->drain_wait(max_n, out, timeout_us);
  }

  std::size_t pending(PeId pe) const override { return mail_[pe]->pending(); }

  std::uint64_t high_water() const override {
    std::uint64_t hw = 0;
    for (const auto& m : mail_)
      if (m->high_water() > hw) hw = m->high_water();
    return hw;
  }

  void close() override {
    for (auto& m : mail_) m->close();
  }

  TransportStats stats() const override {
    TransportStats s;
    for (const auto& m : mail_) {
      s.frames_received += m->messages_received();
      s.bytes_received += m->bytes_received();
    }
    // In-process delivery is symmetric: every received frame was sent.
    s.frames_sent = s.frames_received;
    s.bytes_sent = s.bytes_received;
    return s;
  }

 private:
  std::vector<std::unique_ptr<Mailbox>> mail_;
};

}  // namespace dgr
