// Thin RAII wrapper over blocking BSD sockets (TCP loopback and Unix-domain),
// plus address parsing for the two URL-ish forms the tools accept:
//
//   tcp:HOST:PORT   e.g. tcp:127.0.0.1:7000  (port 0 = kernel-assigned)
//   uds:PATH        e.g. uds:/tmp/dgr.sock
//
// Blocking I/O with one reader and one writer thread per connection keeps the
// hub logic free of readiness state machines; write_all and read_some absorb
// partial transfers and EINTR, which is all the framing layer needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dgr {

struct SocketAddr {
  bool tcp = false;        // false = Unix-domain
  std::string host;        // tcp only
  std::uint16_t port = 0;  // tcp only
  std::string path;        // uds only

  std::string str() const;
  // Parse "tcp:HOST:PORT" or "uds:PATH". Returns false on malformed input.
  static bool parse(const std::string& s, SocketAddr& out);
};

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Write the whole buffer, looping over partial writes and EINTR.
  // Returns false on a hard error (peer gone).
  bool write_all(const void* data, std::size_t n);

  // One read() call: >0 bytes read, 0 on orderly shutdown, -1 on error.
  // Loops only on EINTR, so short reads surface to the framing layer.
  long read_some(void* buf, std::size_t cap);

  // Shut down the read side to wake a blocked reader thread.
  void shutdown_read();
  // Shut down both directions: wakes a blocked reader AND fails a writer
  // stuck against a full kernel buffer (shutdown-time teardown).
  void shutdown_rdwr();
  void close();

 private:
  int fd_ = -1;
};

// Listening socket bound to `addr`. For tcp with port 0 the bound port is
// discovered and written back into `addr`. Unix-domain paths are unlinked
// before bind so a stale socket file from a crashed run can't block startup.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& o) noexcept;
  Listener& operator=(Listener&&) = delete;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Returns false (with a message in error()) when bind/listen fails.
  bool open(SocketAddr& addr);

  // Block until a peer connects; invalid Socket on error/close.
  Socket accept();

  // Wake a thread blocked in accept() (it returns an invalid Socket).
  // Must precede close(): closing the fd alone does not interrupt accept().
  void shutdown();
  void close();
  bool valid() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  bool unlink_on_close_ = false;
  std::string path_;
  std::string error_;
};

// Connect to `addr`, retrying for up to timeout_ms (the controller may not
// have bound yet when a worker launches). Invalid Socket on failure.
Socket socket_connect(const SocketAddr& addr, int timeout_ms = 5000);

}  // namespace dgr
