#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace dgr {
namespace {

// Big enough that a whole handoff or report wave queues in the kernel
// without the writer thread stalling mid-quiesce.
constexpr int kSockBufBytes = 1 << 20;

void tune(int fd, bool tcp) {
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kSockBufBytes, sizeof(kSockBufBytes));
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kSockBufBytes, sizeof(kSockBufBytes));
  if (tcp) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

bool fill_sockaddr_in(const SocketAddr& a, sockaddr_in& sa) {
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  return inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) == 1;
}

bool fill_sockaddr_un(const SocketAddr& a, sockaddr_un& sa) {
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  if (a.path.size() >= sizeof(sa.sun_path)) return false;
  std::memcpy(sa.sun_path, a.path.c_str(), a.path.size() + 1);
  return true;
}

}  // namespace

std::string SocketAddr::str() const {
  if (tcp) return "tcp:" + host + ":" + std::to_string(port);
  return "uds:" + path;
}

bool SocketAddr::parse(const std::string& s, SocketAddr& out) {
  if (s.rfind("uds:", 0) == 0) {
    out = SocketAddr{};
    out.path = s.substr(4);
    return !out.path.empty();
  }
  if (s.rfind("tcp:", 0) == 0) {
    const std::size_t colon = s.rfind(':');
    if (colon == 3) return false;  // no port separator
    out = SocketAddr{};
    out.tcp = true;
    out.host = s.substr(4, colon - 4);
    if (out.host.empty()) return false;
    const std::string port = s.substr(colon + 1);
    if (port.empty()) return false;
    long v = 0;
    for (char c : port) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
      if (v > 65535) return false;
    }
    out.port = static_cast<std::uint16_t>(v);
    return true;
  }
  return false;
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

bool Socket::write_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process signal.
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

long Socket::read_some(void* buf, std::size_t cap) {
  for (;;) {
    const ssize_t r = ::read(fd_, buf, cap);
    if (r < 0 && errno == EINTR) continue;
    return static_cast<long>(r);
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_rdwr() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& o) noexcept
    : fd_(o.fd_), unlink_on_close_(o.unlink_on_close_),
      path_(std::move(o.path_)) {
  o.fd_ = -1;
  o.unlink_on_close_ = false;
}

bool Listener::open(SocketAddr& addr) {
  close();
  fd_ = ::socket(addr.tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (addr.tcp) {
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa;
    if (!fill_sockaddr_in(addr, sa)) {
      error_ = "bad tcp address: " + addr.str();
      close();
      return false;
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      error_ = std::string("bind: ") + std::strerror(errno);
      close();
      return false;
    }
    if (addr.port == 0) {
      socklen_t len = sizeof(sa);
      if (getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) == 0)
        addr.port = ntohs(sa.sin_port);
    }
  } else {
    ::unlink(addr.path.c_str());
    sockaddr_un sa;
    if (!fill_sockaddr_un(addr, sa)) {
      error_ = "uds path too long: " + addr.path;
      close();
      return false;
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      error_ = std::string("bind: ") + std::strerror(errno);
      close();
      return false;
    }
    unlink_on_close_ = true;
    path_ = addr.path;
  }
  if (::listen(fd_, 64) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

Socket Listener::accept() {
  for (;;) {
    const int c = ::accept(fd_, nullptr, nullptr);
    if (c >= 0) {
      tune(c, /*tcp=*/path_.empty());
      return Socket(c);
    }
    if (errno == EINTR) continue;
    return Socket();
  }
}

void Listener::shutdown() {
  // Closing a listening fd does not wake a thread blocked in accept() on
  // Linux; shutdown() does (accept returns EINVAL). Call this before joining
  // the accept thread, and close() after.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (unlink_on_close_) {
    ::unlink(path_.c_str());
    unlink_on_close_ = false;
  }
  path_.clear();
}

Socket socket_connect(const SocketAddr& addr, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(addr.tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0) {
      int rc;
      if (addr.tcp) {
        sockaddr_in sa;
        if (!fill_sockaddr_in(addr, sa)) {
          ::close(fd);
          return Socket();
        }
        rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
      } else {
        sockaddr_un sa;
        if (!fill_sockaddr_un(addr, sa)) {
          ::close(fd);
          return Socket();
        }
        rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
      }
      if (rc == 0) {
        tune(fd, addr.tcp);
        return Socket(fd);
      }
      ::close(fd);
    }
    if (std::chrono::steady_clock::now() >= deadline) return Socket();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace dgr
