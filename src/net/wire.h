// Wire serialization for inter-PE messages.
//
// The threaded engine enforces the paper's "local store only, communicating
// via messages" discipline by serializing every cross-PE task to bytes and
// deserializing on the receiving PE — no shared in-memory task objects.
//
// ByteReader is *recoverable*: reading past the end of the buffer (a
// truncated or corrupted message, e.g. from the fault plane's truncate-bytes
// mode) sets a sticky failure flag and yields zeros instead of aborting the
// PE thread. Decoders check ok() and reject the message; the reliable
// channel then recovers it by retransmission (net/reliable_channel.h).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "core/task.h"
#include "util/assert.h"

namespace dgr {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void vid(VertexId v) {
    u32(v.pe);
    u32(v.idx);
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}
  std::uint8_t u8() {
    if (!ok_ || pos_ >= buf_.size()) {
      ok_ = false;
      return 0;
    }
    return buf_[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof v);
    return v;
  }
  VertexId vid() {
    VertexId v;
    v.pe = u32();
    v.idx = u32();
    return v;
  }
  // False once any read ran past the end of the buffer (sticky).
  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == buf_.size(); }
  std::size_t remaining() const { return ok_ ? buf_.size() - pos_ : 0; }

 private:
  void raw(void* p, std::size_t n) {
    if (!ok_ || pos_ + n > buf_.size()) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Task <-> bytes. Round-trip identity is covered by tests.
std::vector<std::uint8_t> encode_task(const Task& t);

// Recoverable decode: nullopt on truncated input, trailing bytes, or
// out-of-range enum fields. Never aborts.
std::optional<Task> try_decode_task(const std::vector<std::uint8_t>& bytes);

// Trusting decode for pre-validated buffers; DGR_CHECK-aborts on malformed
// input (the historical behavior — use try_decode_task for network bytes).
Task decode_task(const std::vector<std::uint8_t>& bytes);

}  // namespace dgr
