// Wire serialization for inter-PE messages.
//
// The threaded engine enforces the paper's "local store only, communicating
// via messages" discipline by serializing every cross-PE task to bytes and
// deserializing on the receiving PE — no shared in-memory task objects.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/task.h"
#include "util/assert.h"

namespace dgr {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void vid(VertexId v) {
    u32(v.pe);
    u32(v.idx);
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}
  std::uint8_t u8() {
    DGR_CHECK(pos_ < buf_.size());
    return buf_[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof v);
    return v;
  }
  VertexId vid() {
    VertexId v;
    v.pe = u32();
    v.idx = u32();
    return v;
  }
  bool done() const { return pos_ == buf_.size(); }

 private:
  void raw(void* p, std::size_t n) {
    DGR_CHECK(pos_ + n <= buf_.size());
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

// Task <-> bytes. Round-trip identity is covered by tests.
std::vector<std::uint8_t> encode_task(const Task& t);
Task decode_task(const std::vector<std::uint8_t>& bytes);

}  // namespace dgr
