#include "net/fault_plane.h"

#include "util/assert.h"

namespace dgr {

FaultPlane::FaultPlane(std::uint32_t num_pes, FaultPlaneOptions opt,
                       DeliverFn deliver)
    : num_pes_(num_pes ? num_pes : 1), deliver_(std::move(deliver)) {
  DGR_CHECK(deliver_ != nullptr);
  pairs_.reserve(static_cast<std::size_t>(num_pes_) * num_pes_);
  for (PeId src = 0; src < num_pes_; ++src) {
    for (PeId dst = 0; dst < num_pes_; ++dst) {
      auto p = std::make_unique<Pair>();
      // One independent substream per directed pair: decisions on (src,dst)
      // depend only on the seed and that pair's send sequence.
      p->rng = Rng::substream(opt.seed,
                              static_cast<std::uint64_t>(src) * num_pes_ + dst);
      p->spec = opt.spec;
      pairs_.push_back(std::move(p));
    }
  }
}

void FaultPlane::set_pair_spec(PeId src, PeId dst, FaultSpec spec) {
  Pair& p = pair(src, dst);
  std::lock_guard<std::mutex> lk(p.mu);
  p.spec = spec;
}

void FaultPlane::inject(Pair& p, FaultKind k, PeId src, PeId dst,
                        std::size_t bytes) {
  ++p.stats.injected[static_cast<std::size_t>(k)];
  if (hook_) hook_(k, src, dst, bytes);
}

void FaultPlane::send(PeId src, PeId dst, Bytes msg) {
  Pair& p = pair(src, dst);
  // Collected under the pair lock, delivered after releasing it: deliver_
  // may block (mailbox), and the pair lock must stay cheap.
  std::vector<Bytes> out;
  {
    std::lock_guard<std::mutex> lk(p.mu);
    ++p.stats.sent;
    const FaultSpec& s = p.spec;
    bool dropped = false;
    if (s.drop > 0.0 && p.rng.chance(s.drop)) {
      dropped = true;
      inject(p, FaultKind::kDrop, src, dst, msg.size());
    }
    const std::size_t preexisting = p.held.size();
    if (!dropped) {
      if (s.truncate > 0.0 && !msg.empty() && p.rng.chance(s.truncate)) {
        inject(p, FaultKind::kTruncate, src, dst, msg.size());
        msg.resize(p.rng.below(msg.size()));
      }
      if (s.duplicate > 0.0 && p.rng.chance(s.duplicate)) {
        inject(p, FaultKind::kDuplicate, src, dst, msg.size());
        out.push_back(msg);  // extra copy, delivered immediately
      }
      if (s.reorder > 0.0 && p.rng.chance(s.reorder)) {
        inject(p, FaultKind::kReorder, src, dst, msg.size());
        const std::uint32_t span = s.reorder_span ? s.reorder_span : 1;
        p.held.push_back(Held{
            1 + static_cast<std::uint32_t>(p.rng.below(span)), std::move(msg)});
      } else {
        out.push_back(std::move(msg));
      }
    }
    // This send ages messages held by *earlier* sends; due ones release
    // after it — that is the reordering (a message held by this very call
    // survives at least one more send, so its delay is truly 1..span).
    // Retransmissions count as sends, so a held message can never be
    // stranded on a pair with pending recovery traffic.
    std::deque<Held> kept;
    for (std::size_t i = 0; i < p.held.size(); ++i) {
      Held& h = p.held[i];
      if (i < preexisting && --h.countdown == 0)
        out.push_back(std::move(h.msg));
      else
        kept.push_back(std::move(h));
    }
    p.held.swap(kept);
    p.stats.delivered += out.size();
  }
  for (Bytes& b : out) deliver_(src, dst, std::move(b));
}

void FaultPlane::flush() {
  for (PeId src = 0; src < num_pes_; ++src) {
    for (PeId dst = 0; dst < num_pes_; ++dst) {
      Pair& p = pair(src, dst);
      std::deque<Held> held;
      {
        std::lock_guard<std::mutex> lk(p.mu);
        held.swap(p.held);
        p.stats.delivered += held.size();
      }
      for (Held& h : held) deliver_(src, dst, std::move(h.msg));
    }
  }
}

FaultPlane::Stats FaultPlane::stats() const {
  Stats total;
  for (PeId src = 0; src < num_pes_; ++src) {
    for (PeId dst = 0; dst < num_pes_; ++dst) {
      const Stats s = pair_stats(src, dst);
      total.sent += s.sent;
      total.delivered += s.delivered;
      for (std::size_t k = 0; k < kNumFaultKinds; ++k)
        total.injected[k] += s.injected[k];
    }
  }
  return total;
}

FaultPlane::Stats FaultPlane::pair_stats(PeId src, PeId dst) const {
  const Pair& p = pair(src, dst);
  std::lock_guard<std::mutex> lk(p.mu);
  return p.stats;
}

}  // namespace dgr
