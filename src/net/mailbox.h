// Per-PE mailbox for the threaded engine: serialized task messages with
// traffic counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/mpmc_queue.h"

namespace dgr {

class Mailbox {
 public:
  using Bytes = std::vector<std::uint8_t>;

  void deliver(Bytes msg) {
    bytes_in_.fetch_add(msg.size(), std::memory_order_relaxed);
    msgs_in_.fetch_add(1, std::memory_order_relaxed);
    q_.push(std::move(msg));
    // High-water mark of the backlog. Racy-but-monotone CAS loop: a stale
    // read only under-reports by a message or two, which is fine for a gauge.
    const std::size_t depth = q_.size();
    std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (depth > hw &&
           !high_water_.compare_exchange_weak(hw, depth,
                                              std::memory_order_relaxed)) {
    }
  }

  std::optional<Bytes> try_receive() { return q_.try_pop(); }
  std::optional<Bytes> receive() { return q_.pop(); }

  void close() { q_.close(); }
  std::size_t pending() const { return q_.size(); }

  std::uint64_t messages_received() const {
    return msgs_in_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_received() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }
  // Deepest backlog observed at delivery time.
  std::uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  MpmcQueue<Bytes> q_;
  std::atomic<std::uint64_t> msgs_in_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

}  // namespace dgr
