// Per-PE mailbox for the threaded engine: serialized task messages with
// traffic counters.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/mpmc_queue.h"

namespace dgr {

class Mailbox {
 public:
  using Bytes = std::vector<std::uint8_t>;

  void deliver(Bytes msg) {
    bytes_in_.fetch_add(msg.size(), std::memory_order_relaxed);
    msgs_in_.fetch_add(1, std::memory_order_relaxed);
    // push() reports the post-push depth, so the gauge costs no second lock
    // acquisition; the CAS loop runs only on a new high-water (rare).
    note_depth(q_.push(std::move(msg)));
  }

  // Deliver a whole batch under one queue lock; counters and the high-water
  // gauge update once per batch instead of once per message.
  void deliver_batch(std::vector<Bytes> msgs) {
    if (msgs.empty()) return;
    std::uint64_t bytes = 0;
    for (const Bytes& m : msgs) bytes += m.size();
    bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
    msgs_in_.fetch_add(msgs.size(), std::memory_order_relaxed);
    note_depth(q_.push_all(std::move(msgs)));
  }

  std::optional<Bytes> try_receive() { return q_.try_pop(); }
  std::optional<Bytes> receive() { return q_.pop(); }

  // Pop up to `max_n` pending messages under one queue lock, appending to
  // `out` in delivery order. Returns how many were taken.
  std::size_t drain(std::size_t max_n, std::vector<Bytes>& out) {
    return q_.pop_up_to(max_n, out);
  }

  // Like drain, but parks on the queue condvar for up to `timeout_us` when
  // empty. Idle PE threads use this instead of a yield loop.
  std::size_t drain_wait(std::size_t max_n, std::vector<Bytes>& out,
                         std::uint64_t timeout_us) {
    return q_.pop_up_to_wait(max_n, out, std::chrono::microseconds(timeout_us));
  }

  void close() { q_.close(); }
  std::size_t pending() const { return q_.size(); }

  std::uint64_t messages_received() const {
    return msgs_in_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_received() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }
  // Deepest backlog observed at delivery time.
  std::uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  // Racy-but-monotone high-water update: a stale read only under-reports by
  // a message or two, which is fine for a gauge.
  void note_depth(std::size_t depth) {
    std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (depth > hw &&
           !high_water_.compare_exchange_weak(hw, depth,
                                              std::memory_order_relaxed)) {
    }
  }

  MpmcQueue<Bytes> q_;
  std::atomic<std::uint64_t> msgs_in_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

}  // namespace dgr
