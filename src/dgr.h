// dgr.h — umbrella header and high-level facade for the library.
//
// The facade wires the standard stack (partitioned graph → engine → marker →
// controller → reduction machine) behind a handful of options, for users who
// want "run this program on N simulated PEs with the concurrent collector"
// without assembling the pieces:
//
//   dgr::System sys("def main() = 6 * 7;", {});
//   auto v = sys.run();                       // 42
//
// Everything remains reachable for advanced use: sys.engine(), sys.graph(),
// sys.machine(), sys.controller().
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "baseline/refcount_collector.h"
#include "baseline/stw_collector.h"
#include "core/compact_collector.h"
#include "core/controller.h"
#include "core/cooperation.h"
#include "core/invariants.h"
#include "core/marker.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/oracle.h"
#include "reduction/machine.h"
#include "runtime/sim_engine.h"
#include "runtime/thread_engine.h"

namespace dgr {

struct SystemOptions {
  std::uint32_t pes = 4;           // processing elements
  std::uint64_t seed = 1;          // scheduler seed (reproducible runs)
  std::uint32_t store_capacity = 0;  // slots per PE; 0 = grow on demand
  std::uint32_t message_latency = 0;  // cross-PE delivery delay (sim steps)

  bool continuous_gc = true;    // endless mark/restructure cycles
  bool detect_deadlock = false;  // run M_T each cycle (§6: occasional)
  bool speculate_if = false;     // eager branches (§3.2)
  bool compact_collector = false;  // the §6 two-words-per-PE variant
};

class System {
 public:
  // Compiles `source` (see README for the language) and loads `main`.
  // Throws lang::ParseError / CompileError on bad input.
  explicit System(const std::string& source, SystemOptions opt = {});

  // Demand main's value and run to quiescence. Returns nullopt if the
  // program wedges (use find_deadlocks() to ask why); check error() for
  // runtime errors (division by zero, type errors).
  std::optional<Value> run(std::uint64_t max_steps = UINT64_MAX);

  bool has_error() const { return machine_->has_error(); }
  const std::string& error() const { return machine_->error(); }

  // Run one M_T + M_R detection cycle and return DL'_v (Property 2').
  std::vector<VertexId> find_deadlocks();

  // Collector tallies.
  std::uint64_t gc_cycles();
  std::uint64_t vertices_reclaimed();
  std::uint64_t tasks_expunged() {
    return engine_->controller().total_expunged();
  }

  // Full access for advanced use.
  Graph& graph() { return *graph_; }
  SimEngine& engine() { return *engine_; }
  Machine& machine() { return *machine_; }
  Controller& controller() { return engine_->controller(); }
  VertexId root() const { return root_; }

 private:
  SystemOptions opt_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<SimEngine> engine_;
  std::unique_ptr<Machine> machine_;
  VertexId root_;
  bool demanded_ = false;
};

}  // namespace dgr
