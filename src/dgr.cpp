#include "dgr.h"

namespace dgr {

System::System(const std::string& source, SystemOptions opt) : opt_(opt) {
  DGR_CHECK(opt.pes >= 1);
  graph_ = std::make_unique<Graph>(opt.pes, opt.store_capacity);
  if (opt.store_capacity > 0)
    for (PeId pe = 0; pe < opt.pes; ++pe)
      graph_->store(pe).set_fixed_capacity(true);

  SimOptions sopt;
  sopt.seed = opt.seed;
  sopt.max_latency = opt.message_latency;
  engine_ = std::make_unique<SimEngine>(*graph_, sopt);

  MachineOptions mopt;
  mopt.speculate_if = opt.speculate_if;
  machine_ = std::make_unique<Machine>(*graph_, engine_->mutator(), *engine_,
                                       Program::from_source(source), mopt);
  root_ = machine_->load_main();
  engine_->set_root(root_);
  engine_->set_reducer([this](const Task& t) { machine_->exec(t); });

  if (opt.compact_collector) {
    CompactCollector& cc = engine_->enable_compact_collector();
    cc.set_root(root_);
    // Exhaustion or continuous mode drives compact cycles from run().
  }
  if (opt.store_capacity > 0) {
    machine_->set_exhaustion_handler([this] {
      if (opt_.compact_collector) {
        if (engine_->compact_collector().idle())
          engine_->compact_collector().start_cycle();
      } else if (engine_->controller().idle()) {
        CycleOptions c;
        c.detect_deadlock = false;
        engine_->controller().start_cycle(c);
      }
    });
  }
}

std::optional<Value> System::run(std::uint64_t max_steps) {
  if (!demanded_) {
    machine_->demand(root_);
    demanded_ = true;
    if (opt_.continuous_gc && !opt_.compact_collector) {
      CycleOptions c;
      c.detect_deadlock = opt_.detect_deadlock;
      engine_->controller().set_continuous(true, c);
      engine_->controller().start_cycle(c);
    }
  }
  std::uint64_t n = 0;
  while (!machine_->result_of(root_).has_value() && n < max_steps) {
    if (opt_.continuous_gc && opt_.compact_collector &&
        engine_->compact_collector().idle()) {
      engine_->compact_collector().start_cycle();
    }
    if (!engine_->step()) break;
    ++n;
  }
  engine_->controller().set_continuous(false);
  engine_->run(max_steps);
  return machine_->result_of(root_);
}

std::vector<VertexId> System::find_deadlocks() {
  CycleOptions c;
  c.detect_deadlock = true;
  engine_->controller().start_cycle(c);
  engine_->run_until_cycle_done();
  return engine_->controller().last().deadlocked;
}

std::uint64_t System::gc_cycles() {
  std::uint64_t n = engine_->controller().cycles_completed();
  if (opt_.compact_collector)
    n += engine_->compact_collector().cycles_completed();
  return n;
}

std::uint64_t System::vertices_reclaimed() {
  std::uint64_t n = engine_->controller().total_swept();
  if (opt_.compact_collector)
    n += engine_->compact_collector().total_swept();
  return n;
}

}  // namespace dgr
