// Deterministic pseudo-random number generation.
//
// Everything in the simulator that needs randomness (delivery order, workload
// generation, adversarial schedules) derives from a seeded Xoshiro256**
// stream so that every run is reproducible from its seed.
#pragma once

#include <cstdint>

namespace dgr {

// SplitMix64: used to seed Xoshiro and to hash seeds into substreams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Xoshiro256** by Blackman & Vigna; small, fast, high quality.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  // Derive an independent substream (e.g. one per PE) from this seed.
  static Rng substream(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t sm = seed ^ (0x632be59bd9b4e019ull * (stream + 1));
    return Rng(splitmix64(sm));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  // Uniform integer in [0, bound). Lemire-style rejection-free reduction is
  // adequate here (bias < 2^-64 * bound, irrelevant for simulation use).
  std::uint64_t below(std::uint64_t bound) {
    return bound ? static_cast<std::uint64_t>(
                       (static_cast<unsigned __int128>(next()) * bound) >> 64)
                 : 0;
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform01() < p; }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace dgr
