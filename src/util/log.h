// Minimal leveled logging. Off by default; enabled per-run for debugging.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace dgr {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Global log threshold; messages above it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_impl(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace dgr

#define DGR_LOG(level, ...)                                  \
  do {                                                       \
    if (static_cast<int>(level) <=                           \
        static_cast<int>(::dgr::log_level()))                \
      ::dgr::log_impl(level, __VA_ARGS__);                   \
  } while (0)

#define DGR_ERROR(...) DGR_LOG(::dgr::LogLevel::kError, __VA_ARGS__)
#define DGR_WARN(...) DGR_LOG(::dgr::LogLevel::kWarn, __VA_ARGS__)
#define DGR_INFO(...) DGR_LOG(::dgr::LogLevel::kInfo, __VA_ARGS__)
#define DGR_DEBUG(...) DGR_LOG(::dgr::LogLevel::kDebug, __VA_ARGS__)
