#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dgr {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

namespace {
// 32 sub-buckets per power of two, values clamped to [2^-16, 2^48).
constexpr int kSubBuckets = 32;
constexpr int kMinExp = -16;
constexpr int kMaxExp = 48;
constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::bucket_for(double x) {
  if (!(x > 0)) return 0;
  const double lg = std::log2(x);
  int b = static_cast<int>(std::floor((lg - kMinExp) * kSubBuckets));
  return std::clamp(b, 0, kNumBuckets - 1);
}

double Histogram::bucket_mid(int b) {
  const double lg = kMinExp + (static_cast<double>(b) + 0.5) / kSubBuckets;
  return std::exp2(lg);
}

void Histogram::add(double x) {
  ++buckets_[static_cast<std::size_t>(bucket_for(x))];
  ++total_;
  max_ = std::max(max_, x);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
}

void Histogram::add_bucket(std::size_t b, std::uint64_t n, double max_hint) {
  if (b >= buckets_.size() || n == 0) return;
  buckets_[b] += n;
  total_ += n;
  max_ = std::max(max_, max_hint);
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  max_ = 0.0;
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= target) return bucket_mid(b);
  }
  return max_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu p50=%.3g p90=%.3g p99=%.3g max=%.3g",
                static_cast<unsigned long long>(total_), percentile(50),
                percentile(90), percentile(99), max_);
  return buf;
}

}  // namespace dgr
