// Lightweight assertion macros used throughout the library.
//
// DGR_ASSERT is compiled out in NDEBUG builds; DGR_CHECK is always on and is
// used to guard invariants whose violation would corrupt distributed state
// (e.g. the marking invariants of Hudak §5.4.1).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dgr {

[[noreturn]] inline void assert_fail(const char* cond, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "dgr: check failed: %s at %s:%d%s%s\n", cond, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace dgr

#define DGR_CHECK(cond)                                       \
  do {                                                        \
    if (!(cond)) ::dgr::assert_fail(#cond, __FILE__, __LINE__, nullptr); \
  } while (0)

#define DGR_CHECK_MSG(cond, msg)                              \
  do {                                                        \
    if (!(cond)) ::dgr::assert_fail(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define DGR_ASSERT(cond) ((void)0)
#else
#define DGR_ASSERT(cond) DGR_CHECK(cond)
#endif
