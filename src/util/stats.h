// Online statistics and histograms used by the metrics layer and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dgr {

// Welford's online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log-bucketed histogram for latency-like quantities; ~4% relative precision.
class Histogram {
 public:
  Histogram();
  void add(double x);
  void merge(const Histogram& other);
  void reset();

  std::uint64_t count() const { return total_; }
  double percentile(double p) const;  // p in [0,100]
  double p50() const { return percentile(50); }
  double p99() const { return percentile(99); }
  double max_value() const { return max_; }
  std::string summary() const;

  // Raw log-bucket access, for shipping exact histogram deltas over the
  // cluster telemetry plane (net/proto.h): the sender walks bucket_count()
  // and ships (bucket, count-since-last) pairs; the receiver folds them back
  // with add_bucket. max_hint carries the sender's observed max — bucket
  // midpoints alone would understate it.
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t bucket_count(std::size_t b) const { return buckets_[b]; }
  void add_bucket(std::size_t b, std::uint64_t n, double max_hint);

 private:
  static int bucket_for(double x);
  static double bucket_mid(int b);
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double max_ = 0.0;
};

}  // namespace dgr
