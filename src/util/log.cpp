#include "util/log.h"

#include <atomic>

namespace dgr {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_impl(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[dgr %s] %s\n", level_name(level), buf);
}

}  // namespace dgr
