// Unbounded multi-producer multi-consumer queue used for PE mailboxes in the
// multi-threaded engine.
//
// A mutex+condvar design is deliberately chosen over a lock-free ring: PE
// mailboxes in this system carry coarse task messages (hundreds of ns of work
// each), so queue overhead is not the bottleneck, and blocking pop with
// shutdown semantics keeps the engine simple and correct.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace dgr {

template <typename T>
class MpmcQueue {
 public:
  // Returns the queue depth immediately after the push, so callers tracking
  // a high-water gauge need no second lock acquisition.
  std::size_t push(T item) {
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lk(mu_);
      q_.push_back(std::move(item));
      depth = q_.size();
    }
    cv_.notify_one();
    return depth;
  }

  // Push a whole batch under one lock; `items` is consumed. Returns the
  // queue depth after the last element.
  std::size_t push_all(std::vector<T> items) {
    if (items.empty()) return 0;
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (T& item : items) q_.push_back(std::move(item));
      depth = q_.size();
    }
    cv_.notify_all();
    return depth;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  // Pop up to `max_n` items under one lock, appending to `out` in queue
  // order. Returns how many were taken (0 when empty).
  std::size_t pop_up_to(std::size_t max_n, std::vector<T>& out) {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    while (n < max_n && !q_.empty()) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
      ++n;
    }
    return n;
  }

  // Blocking pop; returns nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace dgr
