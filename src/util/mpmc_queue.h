// Unbounded multi-producer multi-consumer queue used for PE mailboxes in the
// multi-threaded engine.
//
// A mutex+condvar design is deliberately chosen over a lock-free ring: PE
// mailboxes in this system carry coarse task messages (hundreds of ns of work
// each), so queue overhead is not the bottleneck, and blocking pop with
// shutdown semantics keeps the engine simple and correct.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dgr {

template <typename T>
class MpmcQueue {
 public:
  void push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      q_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  // Blocking pop; returns nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace dgr
