// Unbounded multi-producer multi-consumer queue used for PE mailboxes in the
// multi-threaded engine.
//
// A mutex+condvar design is deliberately chosen over a lock-free ring: PE
// mailboxes in this system carry coarse task messages (hundreds of ns of work
// each), so queue overhead is not the bottleneck, and blocking pop with
// shutdown semantics keeps the engine simple and correct.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace dgr {

template <typename T>
class MpmcQueue {
 public:
  // Returns the queue depth immediately after the push, so callers tracking
  // a high-water gauge need no second lock acquisition.
  std::size_t push(T item) {
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lk(mu_);
      q_.push_back(std::move(item));
      depth = q_.size();
      size_.store(depth, std::memory_order_relaxed);
    }
    cv_.notify_one();
    return depth;
  }

  // Push a whole batch under one lock; `items` is consumed. Returns the
  // queue depth after the last element.
  std::size_t push_all(std::vector<T> items) {
    if (items.empty()) return 0;
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (T& item : items) q_.push_back(std::move(item));
      depth = q_.size();
      size_.store(depth, std::memory_order_relaxed);
    }
    cv_.notify_all();
    return depth;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    size_.store(q_.size(), std::memory_order_relaxed);
    return item;
  }

  // Pop up to `max_n` items under one lock, appending to `out` in queue
  // order. Returns how many were taken (0 when empty).
  std::size_t pop_up_to(std::size_t max_n, std::vector<T>& out) {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    while (n < max_n && !q_.empty()) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
      ++n;
    }
    size_.store(q_.size(), std::memory_order_relaxed);
    return n;
  }

  // Timed blocking variant of pop_up_to: waits up to `timeout` for the queue
  // to become non-empty (or closed), then drains like pop_up_to. Lets an
  // idle consumer park on the condvar instead of spin-polling — on a
  // single-core host a polling loop steals the timeslice from the very
  // producer it is waiting on.
  template <typename Rep, typename Period>
  std::size_t pop_up_to_wait(std::size_t max_n, std::vector<T>& out,
                             std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, timeout, [&] { return !q_.empty() || closed_; });
    std::size_t n = 0;
    while (n < max_n && !q_.empty()) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
      ++n;
    }
    size_.store(q_.size(), std::memory_order_relaxed);
    return n;
  }

  // Blocking pop; returns nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    size_.store(q_.size(), std::memory_order_relaxed);
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  // Lock-free depth gauge, maintained by every push/pop under the lock.
  // Hot-path readers (backpressure probes, steal scans) poll peers' depths
  // constantly; taking the queue mutex for each probe would contend with
  // the owner's drain on the very queue being probed. Racy by design: a
  // stale read only mis-times a heuristic, never breaks queue correctness.
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  std::atomic<std::size_t> size_{0};
  bool closed_ = false;
};

}  // namespace dgr
