// Per-PE vertex arena with an explicit free list.
//
// The free list is the paper's set F: "a known set of free vertices ...
// analogous to the free-list in conventional list-processing systems" (§2.2).
// New vertices are acquired from F (reduction axiom 1/2: R and T expand only
// by acquiring nodes from F), and the restructuring phase returns garbage to
// it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.h"
#include "graph/vertex.h"
#include "util/assert.h"

namespace dgr {

class Store {
 public:
  // `initial_free` slots are created up front; the arena grows on demand
  // unless a fixed capacity is set (used to model finite local store in the
  // GC benches, where exhaustion forces a collection cycle).
  explicit Store(PeId pe, std::uint32_t initial_free = 0);

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  PeId pe() const { return pe_; }

  // Allocate a vertex from F. Returns invalid() if F is empty and the store
  // is at fixed capacity (caller should trigger / await a GC cycle).
  VertexId alloc(OpCode op);

  // Return a vertex to F (restructuring phase). Connectivity and reduction
  // payload are cleared; marking planes are left untouched.
  void release(std::uint32_t idx);

  Vertex& at(std::uint32_t idx) {
    DGR_ASSERT(idx < slots_.size());
    return slots_[idx];
  }
  const Vertex& at(std::uint32_t idx) const {
    DGR_ASSERT(idx < slots_.size());
    return slots_[idx];
  }

  VertexId id(std::uint32_t idx) const { return VertexId{pe_, idx}; }

  bool is_free(std::uint32_t idx) const { return !slots_[idx].live; }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t free_count() const { return free_.size(); }
  std::size_t live_count() const { return slots_.size() - free_.size(); }

  void set_fixed_capacity(bool fixed) { fixed_capacity_ = fixed; }
  bool fixed_capacity() const { return fixed_capacity_; }

  // The per-PE auxiliary vertex taskroot_i (§5.2); created on first use,
  // flagged aux, excluded from V.
  VertexId taskroot();

  // Allocate an auxiliary vertex (e.g. troot); aux vertices are outside V,
  // never collected, and invisible to for_each_live.
  VertexId make_aux(OpCode op);

  // Iterate live, non-aux vertex indices.
  template <typename F>
  void for_each_live(F&& fn) const {
    for (std::uint32_t i = 0; i < slots_.size(); ++i)
      if (slots_[i].live && !slots_[i].aux) fn(i);
  }

  // Total allocations performed (metric).
  std::uint64_t allocs() const { return allocs_; }
  std::uint64_t releases() const { return releases_; }

  // Worker-side partition restore (net/proto.h): wipe the arena to `n` blank
  // slots, then overwrite individual vertices through at(). The free list is
  // dropped — a worker replica only marks, it never allocates or sweeps.
  void reset_for_restore(std::uint32_t n) {
    slots_.assign(n, Vertex{});
    free_.clear();
    taskroot_idx_ = UINT32_MAX;
  }

  // Grow the arena so `idx` is addressable — restores controller-created aux
  // vertices (e.g. a rescue root) minted after the handoff snapshot.
  Vertex& ensure_slot(std::uint32_t idx) {
    if (idx >= slots_.size()) slots_.resize(idx + 1);
    return slots_[idx];
  }

 private:
  std::uint32_t fresh_slot();

  PeId pe_;
  std::vector<Vertex> slots_;
  std::vector<std::uint32_t> free_;
  bool fixed_capacity_ = false;
  std::uint32_t taskroot_idx_ = UINT32_MAX;
  std::uint64_t allocs_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace dgr
