// Ultimate values of vertices (Hudak §2.1: "the value of a vertex refers to
// its unique ultimate value computed by the reduction process").
#pragma once

#include <cstdint>
#include <string>

#include "graph/ids.h"

namespace dgr {

enum class ValueKind : std::uint8_t {
  kNone = 0,  // not yet computed
  kInt,
  kBool,
  kNode,  // a graph node in WHNF (a cons cell)
  kNil,   // the empty list
};

struct Value {
  ValueKind kind = ValueKind::kNone;
  std::int64_t i = 0;
  VertexId node = VertexId::invalid();

  static Value none() { return {}; }
  static Value of_int(std::int64_t v) {
    Value x;
    x.kind = ValueKind::kInt;
    x.i = v;
    return x;
  }
  static Value of_bool(bool v) {
    Value x;
    x.kind = ValueKind::kBool;
    x.i = v ? 1 : 0;
    return x;
  }
  static Value of_node(VertexId v) {
    Value x;
    x.kind = ValueKind::kNode;
    x.node = v;
    return x;
  }
  static Value nil() {
    Value x;
    x.kind = ValueKind::kNil;
    return x;
  }

  bool defined() const { return kind != ValueKind::kNone; }
  bool is_int() const { return kind == ValueKind::kInt; }
  bool is_bool() const { return kind == ValueKind::kBool; }
  bool is_node() const { return kind == ValueKind::kNode; }
  bool is_nil() const { return kind == ValueKind::kNil; }
  std::int64_t as_int() const { return i; }
  bool as_bool() const { return i != 0; }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case ValueKind::kNone: return true;
      case ValueKind::kInt:
      case ValueKind::kBool: return a.i == b.i;
      case ValueKind::kNode: return a.node == b.node;
      case ValueKind::kNil: return true;
    }
    return false;
  }

  std::string to_string() const {
    switch (kind) {
      case ValueKind::kNone: return "⊥?";
      case ValueKind::kInt: return std::to_string(i);
      case ValueKind::kBool: return i ? "true" : "false";
      case ValueKind::kNode:
        return "<node " + std::to_string(node.pe) + ":" +
               std::to_string(node.idx) + ">";
      case ValueKind::kNil: return "nil";
    }
    return "?";
  }
};

}  // namespace dgr
