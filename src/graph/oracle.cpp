#include "graph/oracle.h"

#include <deque>

namespace dgr {

const char* task_class_name(TaskClass c) {
  switch (c) {
    case TaskClass::kVital: return "vital";
    case TaskClass::kEager: return "eager";
    case TaskClass::kReserve: return "reserve";
    case TaskClass::kIrrelevant: return "irrelevant";
  }
  return "?";
}

Oracle::Oracle(const Graph& g, VertexId root, const std::vector<TaskRef>& tasks)
    : g_(g) {
  prior_.resize(g.num_pes());
  t_.resize(g.num_pes());
  for (PeId pe = 0; pe < g.num_pes(); ++pe) {
    prior_[pe].assign(g.store(pe).capacity(), 0);
    t_[pe].assign(g.store(pe).capacity(), 0);
  }

  // prior*(v) = max over paths of min edge request-type. Computed by three
  // threshold reachability passes: reachable via edges of type >= 3 → prior 3,
  // >= 2 → at least 2, >= 1 → at least 1. Higher passes run first so the max
  // wins. The root itself gets priority 3 ("the value of the root is
  // essential to the overall computation", §5.1).
  if (root.valid() && !g.is_free(root)) {
    reach_with_threshold(root, 3, 3);
    reach_with_threshold(root, 2, 2);
    reach_with_threshold(root, 1, 1);
  }

  reach_tasks(tasks);

  // Tally.
  g.for_each_live([&](VertexId v) {
    const int p = prior_at(v);
    if (p >= 1) ++n_r_;
    if (p == 3) ++n_rv_;
    if (p == 2) ++n_re_;
    if (p == 1) ++n_rr_;
    const bool t = flag(t_, v);
    if (t) ++n_t_;
    if (p == 0) ++n_gar_;
    if (p == 3 && !t) ++n_dlv_;
  });
}

void Oracle::reach_with_threshold(VertexId root, int threshold,
                                  std::uint8_t value) {
  if (prior_[root.pe][root.idx] >= value) {
    // Root already claimed by a higher pass; still need to expand this pass
    // from every vertex of priority >= value, because a lower-threshold edge
    // out of a high-priority vertex is only usable in this pass. Simplest
    // correct approach: seed the worklist with all vertices of prior >= value.
  }
  std::deque<VertexId> work;
  // Seed: root plus everything already at priority >= value (frontiers of the
  // earlier, stricter passes).
  if (prior_[root.pe][root.idx] < value) {
    prior_[root.pe][root.idx] = value;
  }
  for (PeId pe = 0; pe < g_.num_pes(); ++pe)
    for (std::uint32_t i = 0; i < prior_[pe].size(); ++i)
      if (prior_[pe][i] >= value) work.push_back(VertexId{pe, i});

  while (!work.empty()) {
    const VertexId x = work.front();
    work.pop_front();
    const Vertex& vx = g_.at(x);
    if (!vx.live) continue;
    for (const ArgEdge& e : vx.args) {
      if (request_type(e.req) < threshold) continue;
      if (!e.to.valid() || g_.is_free(e.to)) continue;
      std::uint8_t& p = prior_[e.to.pe][e.to.idx];
      if (p < value) {
        p = value;
        work.push_back(e.to);
      }
    }
  }
}

void Oracle::reach_tasks(const std::vector<TaskRef>& tasks) {
  std::deque<VertexId> work;
  auto seed = [&](VertexId v) {
    if (!v.valid() || g_.is_free(v)) return;
    std::uint8_t& f = t_[v.pe][v.idx];
    if (!f) {
      f = 1;
      work.push_back(v);
    }
  };
  // T's seeds are both endpoints of every task: d ↦* v ∨ s ↦* v (§2.2).
  for (const TaskRef& t : tasks) {
    seed(t.s);
    seed(t.d);
  }
  while (!work.empty()) {
    const VertexId x = work.front();
    work.pop_front();
    const Vertex& vx = g_.at(x);
    if (!vx.live) continue;
    // x ↦ y ⇔ y ∈ requested(x) ∨ y ∈ (args(x) − req-args(x)).
    for (VertexId y : vx.requested) seed(y);
    for (const ArgEdge& e : vx.args)
      if (e.req == ReqKind::kNone) seed(e.to);
  }
}

bool Oracle::in_GAR(VertexId v) const {
  const Vertex& vx = g_.at(v);
  if (!vx.live || vx.aux) return false;
  return prior_at(v) == 0;
}

bool Oracle::in_DL(VertexId v) const {
  return in_R(v) && !in_T(v) && g_.at(v).live && !g_.at(v).aux;
}

bool Oracle::in_DLv(VertexId v) const {
  return in_Rv(v) && !in_T(v) && g_.at(v).live && !g_.at(v).aux;
}

TaskClass Oracle::classify(const TaskRef& t) const {
  switch (prior_at(t.d)) {
    case 3: return TaskClass::kVital;
    case 2: return TaskClass::kEager;
    case 1: return TaskClass::kReserve;
    default: return TaskClass::kIrrelevant;  // d ∈ GAR (Property 6)
  }
}

std::vector<VertexId> Oracle::members_GAR() const {
  std::vector<VertexId> out;
  g_.for_each_live([&](VertexId v) {
    if (in_GAR(v)) out.push_back(v);
  });
  return out;
}

std::vector<VertexId> Oracle::members_DLv() const {
  std::vector<VertexId> out;
  g_.for_each_live([&](VertexId v) {
    if (in_DLv(v)) out.push_back(v);
  });
  return out;
}

}  // namespace dgr
