// The distributed computation graph: one Store per PE.
//
// This is the "shared" global view that the deterministic simulator, the
// oracle and the tests operate on. The ownership discipline (a task touches
// only vertices it has been granted atomic access to, normally those of its
// destination's PE) is enforced by the engines, not by this container.
#pragma once

#include <memory>
#include <vector>

#include "graph/store.h"

namespace dgr {

class Graph {
 public:
  explicit Graph(std::uint32_t num_pes, std::uint32_t initial_free_per_pe = 0);

  std::uint32_t num_pes() const { return static_cast<std::uint32_t>(stores_.size()); }

  Store& store(PeId pe) {
    DGR_ASSERT(pe < stores_.size());
    return *stores_[pe];
  }
  const Store& store(PeId pe) const {
    DGR_ASSERT(pe < stores_.size());
    return *stores_[pe];
  }

  Vertex& at(VertexId id) { return store(id.pe).at(id.idx); }
  const Vertex& at(VertexId id) const { return store(id.pe).at(id.idx); }

  bool is_free(VertexId id) const { return store(id.pe).is_free(id.idx); }

  VertexId alloc(PeId pe, OpCode op) { return store(pe).alloc(op); }

  // Round-robin allocation across PEs (simple block partitioner for
  // synthetic workloads).
  VertexId alloc_rr(OpCode op) {
    const PeId pe = static_cast<PeId>(rr_next_++ % stores_.size());
    return alloc(pe, op);
  }

  std::size_t total_live() const;
  std::size_t total_free() const;
  std::size_t total_capacity() const;

  template <typename F>
  void for_each_live(F&& fn) const {
    for (const auto& s : stores_)
      s->for_each_live([&](std::uint32_t idx) { fn(s->id(idx)); });
  }

 private:
  std::vector<std::unique_ptr<Store>> stores_;
  std::uint64_t rr_next_ = 0;
};

// ---- Mutation helpers shared by tests, builders and the reducer. ----
// These are the *raw* connectivity operations (connect/disconnect in the
// paper's Fig 4-2 terms). The marking-cooperating wrappers live in
// src/core/cooperation.h; reduction code must go through those whenever a
// marking cycle may be active.

// Append y to args(x) with request kind `k`; if k != kNone, records x in
// requested(y) as well (x has requested y's value and awaits a reply).
void connect(Graph& g, VertexId x, VertexId y, ReqKind k = ReqKind::kNone);

// Remove y from args(x) (first occurrence); clears the requested back-edge
// if the edge was a requesting one.
void disconnect(Graph& g, VertexId x, VertexId y);

// Upgrade/downgrade the request kind of existing edge x->y, maintaining the
// requested(y) back-edge.
void set_request(Graph& g, VertexId x, VertexId y, ReqKind k);

// Index-based variants for vertices with duplicate out-edges to the same
// target (e.g. `x + x`), where first-occurrence matching is ambiguous.
void disconnect_at(Graph& g, VertexId x, std::size_t arg_idx);
void set_request_at(Graph& g, VertexId x, std::size_t arg_idx, ReqKind k);

// y replies to x with `val`: clears x from requested(y), records val on x's
// edge. (Reduction axiom 6 bookkeeping.)
void reply_to(Graph& g, VertexId y, VertexId x, const Value& val);

}  // namespace dgr
