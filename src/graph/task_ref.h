// The paper's abstract task <s,d>: "an unexecuted task may be viewed simply
// as a message from one vertex to another" (§2.1). This lightweight form is
// what the oracle and the task-marking process M_T consume; the runtime's
// executable tasks carry more payload (see runtime/task.h).
#pragma once

#include <cstdint>

#include "graph/ids.h"

namespace dgr {

struct TaskRef {
  VertexId s = VertexId::invalid();  // source ("-" allowed: invalid())
  VertexId d = VertexId::invalid();  // destination

  friend bool operator==(TaskRef a, TaskRef b) {
    return a.s == b.s && a.d == b.d;
  }
};

// Classification per Properties 3-6.
enum class TaskClass : std::uint8_t {
  kVital,       // d ∈ R_v                        (Property 3)
  kEager,       // d ∈ R_e − R_v                  (Property 4)
  kReserve,     // d ∈ R_r − R_e − R_v            (Property 5)
  kIrrelevant,  // d ∈ V − R − F = GAR            (Property 6)
};

const char* task_class_name(TaskClass c);

}  // namespace dgr
