#include "graph/store.h"

namespace dgr {

Store::Store(PeId pe, std::uint32_t initial_free) : pe_(pe) {
  slots_.resize(initial_free);
  free_.reserve(initial_free);
  // Push in reverse so allocation order starts at slot 0.
  for (std::uint32_t i = initial_free; i-- > 0;) free_.push_back(i);
}

std::uint32_t Store::fresh_slot() {
  const auto idx = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return idx;
}

VertexId Store::alloc(OpCode op) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else if (!fixed_capacity_) {
    idx = fresh_slot();
  } else {
    return VertexId::invalid();
  }
  Vertex& v = slots_[idx];
  DGR_ASSERT(!v.live);
  v.reset_payload();
  v.live = true;
  v.op = op;
  ++allocs_;
  return VertexId{pe_, idx};
}

void Store::release(std::uint32_t idx) {
  Vertex& v = slots_[idx];
  DGR_CHECK_MSG(v.live, "double free of vertex");
  DGR_CHECK_MSG(!v.aux, "auxiliary marking roots are never collected");
  v.reset_payload();
  v.live = false;
  free_.push_back(idx);
  ++releases_;
}

VertexId Store::make_aux(OpCode op) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = fresh_slot();
  }
  Vertex& v = slots_[idx];
  v.reset_payload();
  v.live = true;
  v.aux = true;
  v.op = op;
  return VertexId{pe_, idx};
}

VertexId Store::taskroot() {
  if (taskroot_idx_ == UINT32_MAX)
    taskroot_idx_ = make_aux(OpCode::kTaskRoot).idx;
  return VertexId{pe_, taskroot_idx_};
}

}  // namespace dgr
