#include "graph/graph.h"

namespace dgr {

Graph::Graph(std::uint32_t num_pes, std::uint32_t initial_free_per_pe) {
  DGR_CHECK(num_pes > 0);
  stores_.reserve(num_pes);
  for (std::uint32_t i = 0; i < num_pes; ++i)
    stores_.push_back(std::make_unique<Store>(i, initial_free_per_pe));
}

std::size_t Graph::total_live() const {
  std::size_t n = 0;
  for (const auto& s : stores_) n += s->live_count();
  return n;
}

std::size_t Graph::total_free() const {
  std::size_t n = 0;
  for (const auto& s : stores_) n += s->free_count();
  return n;
}

std::size_t Graph::total_capacity() const {
  std::size_t n = 0;
  for (const auto& s : stores_) n += s->capacity();
  return n;
}

void connect(Graph& g, VertexId x, VertexId y, ReqKind k) {
  g.at(x).args.emplace_back(y, k);
  if (k != ReqKind::kNone) g.at(y).requested.push_back(x);
}

void disconnect(Graph& g, VertexId x, VertexId y) {
  Vertex& vx = g.at(x);
  const int i = vx.arg_index(y);
  if (i < 0) return;
  const bool requesting = vx.args[static_cast<std::size_t>(i)].req != ReqKind::kNone;
  vx.args.erase(vx.args.begin() + i);
  if (requesting) g.at(y).drop_requester(x);
}

void disconnect_at(Graph& g, VertexId x, std::size_t arg_idx) {
  Vertex& vx = g.at(x);
  DGR_CHECK(arg_idx < vx.args.size());
  const ArgEdge e = vx.args[arg_idx];
  vx.args.erase(vx.args.begin() + static_cast<std::ptrdiff_t>(arg_idx));
  if (e.req != ReqKind::kNone) g.at(e.to).drop_requester(x);
}

void set_request_at(Graph& g, VertexId x, std::size_t arg_idx, ReqKind k) {
  Vertex& vx = g.at(x);
  DGR_CHECK(arg_idx < vx.args.size());
  ArgEdge& e = vx.args[arg_idx];
  const bool was = e.req != ReqKind::kNone;
  const bool now = k != ReqKind::kNone;
  e.req = k;
  if (!was && now) {
    g.at(e.to).requested.push_back(x);
  } else if (was && !now) {
    g.at(e.to).drop_requester(x);
  }
}

void set_request(Graph& g, VertexId x, VertexId y, ReqKind k) {
  Vertex& vx = g.at(x);
  const int i = vx.arg_index(y);
  DGR_CHECK_MSG(i >= 0, "set_request on a non-edge");
  ArgEdge& e = vx.args[static_cast<std::size_t>(i)];
  const bool was = e.req != ReqKind::kNone;
  const bool now = k != ReqKind::kNone;
  e.req = k;
  if (!was && now) {
    g.at(y).requested.push_back(x);
  } else if (was && !now) {
    g.at(y).drop_requester(x);
  }
}

void reply_to(Graph& g, VertexId y, VertexId x, const Value& val) {
  g.at(y).drop_requester(x);
  if (!x.valid()) return;  // external demand (<-,root>)
  Vertex& vx = g.at(x);
  const int i = vx.arg_index(y);
  if (i >= 0) {
    ArgEdge& e = vx.args[static_cast<std::size_t>(i)];
    e.value = val;
    // The request is complete: the edge reverts to unrequested. This keeps
    // the bookkeeping invariant (e.req != kNone ⟺ x ∈ requested(y)) and
    // preserves reduction axiom 2 — a replied-to vertex stays T-reachable
    // through args(x) − req-args(x) as long as x itself is task-active.
    e.req = ReqKind::kNone;
  }
}

}  // namespace dgr
