#include "graph/builder.h"

#include <algorithm>

namespace dgr {

namespace {

ReqKind pick_kind(Rng& rng, const RandomGraphOptions& opt) {
  const double u = rng.uniform01();
  if (u < opt.p_vital) return ReqKind::kVital;
  if (u < opt.p_vital + opt.p_eager) return ReqKind::kEager;
  return ReqKind::kNone;
}

}  // namespace

BuiltGraph build_random_graph(Graph& g, const RandomGraphOptions& opt) {
  DGR_CHECK(opt.num_vertices >= 1);
  const std::uint32_t n = opt.num_vertices;
  Rng rng(opt.seed);

  // Phase 1: draw the whole topology in index space. The RNG call sequence
  // is placement-independent, so every PartitionStrategy (and any PE count)
  // sees the identical seeded graph.
  struct EdgeDraw {
    std::uint32_t from, to;
    ReqKind req;
  };
  std::vector<EdgeDraw> edge_draws;

  // Split vertices into an "attached" prefix (wired below the root) and a
  // detached remainder that becomes garbage unless a task reaches it.
  const auto attached = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(static_cast<double>(n) *
                                    (1.0 - opt.p_detached)));

  // Give every attached non-root vertex one guaranteed in-edge from an
  // earlier attached vertex, so the attached region is root-connected.
  edge_draws.reserve(attached);
  for (std::uint32_t i = 1; i < attached; ++i) {
    const std::uint32_t from = rng.below(i);
    edge_draws.push_back({from, i, pick_kind(rng, opt)});
  }

  // Extra random edges (possibly cyclic, possibly into the detached region).
  const auto extra =
      static_cast<std::uint64_t>(opt.avg_out_degree * static_cast<double>(n));
  for (std::uint64_t e = 0; e < extra; ++e) {
    const std::uint32_t from = rng.below(n);
    const std::uint32_t to = rng.below(n);
    // Acyclic mode keeps only forward-oriented extras.
    if (!opt.cyclic && to <= from) continue;
    edge_draws.push_back({from, to, pick_kind(rng, opt)});
  }

  // Pooled tasks; destinations across the whole vertex population so that
  // vital, eager, reserve and irrelevant tasks all occur.
  struct TaskDraw {
    std::uint32_t s, d;
    bool has_s;
  };
  std::vector<TaskDraw> task_draws;
  task_draws.reserve(opt.num_tasks);
  for (std::uint32_t t = 0; t < opt.num_tasks; ++t) {
    TaskDraw td{0, static_cast<std::uint32_t>(rng.below(n)), false};
    // Half the tasks have a remembered source ("<s,d>"), half are "<-,d>".
    if (rng.chance(0.5)) {
      td.has_s = true;
      td.s = rng.below(n);
    }
    task_draws.push_back(td);
  }

  // Phase 2: place and allocate. Round-robin keeps the historical alloc_rr
  // path (including the graph's persistent rr cursor); the other strategies
  // ask the partitioner for an explicit index→PE assignment.
  BuiltGraph out;
  out.vertices.reserve(n);
  if (opt.partition == PartitionStrategy::kRoundRobin) {
    for (std::uint32_t i = 0; i < n; ++i)
      out.vertices.push_back(g.alloc_rr(OpCode::kData));
  } else {
    std::vector<IndexEdge> edges;
    edges.reserve(edge_draws.size());
    for (const EdgeDraw& e : edge_draws) edges.push_back({e.from, e.to});
    const std::uint32_t cap = (n + g.num_pes() - 1) / g.num_pes();
    const std::vector<PeId> assignment =
        make_partitioner(opt.partition)->assign(n, g.num_pes(), edges, cap);
    for (std::uint32_t i = 0; i < n; ++i)
      out.vertices.push_back(g.alloc(assignment[i], OpCode::kData));
  }
  out.root = out.vertices[0];

  for (const EdgeDraw& e : edge_draws)
    connect(g, out.vertices[e.from], out.vertices[e.to], e.req);
  for (const TaskDraw& td : task_draws)
    out.tasks.push_back(TaskRef{
        td.has_s ? out.vertices[td.s] : VertexId::invalid(),
        out.vertices[td.d]});
  return out;
}

DeadlockScenario build_deadlock_scenario(Graph& g) {
  DeadlockScenario sc;
  sc.root = g.alloc(0, OpCode::kAdd);
  sc.x = g.alloc(g.num_pes() > 1 ? 1 : 0, OpCode::kAdd);
  sc.busy = g.alloc(0, OpCode::kData);

  // root vitally awaits both x and busy; external demand on root.
  g.at(sc.root).requested.push_back(VertexId::invalid());
  connect(g, sc.root, sc.x, ReqKind::kVital);
  connect(g, sc.root, sc.busy, ReqKind::kVital);

  // x = x + 1: the self-edge is vital (x awaits its own value, Fig 3-1). The
  // "+1" literal has already replied and been consumed, so the only
  // remaining dependency is the self-loop.
  connect(g, sc.x, sc.x, ReqKind::kVital);

  // busy still has a pending task, so task activity can reach root but never
  // x: DL_v = {x}.
  sc.tasks.push_back(TaskRef{sc.root, sc.busy});
  return sc;
}

TaskTypeScenario build_task_type_scenario(Graph& g) {
  TaskTypeScenario sc;
  auto pe = [&](std::uint32_t i) { return static_cast<PeId>(i % g.num_pes()); };

  sc.root = g.alloc(pe(0), OpCode::kIf);
  sc.p = g.alloc(pe(1), OpCode::kIf);
  sc.a_plus_1 = g.alloc(pe(2), OpCode::kAdd);
  sc.abc = g.alloc(pe(3), OpCode::kAdd);
  sc.a = g.alloc(pe(0), OpCode::kData);
  sc.b = g.alloc(pe(1), OpCode::kData);
  sc.c = g.alloc(pe(2), OpCode::kData);
  sc.d = g.alloc(pe(3), OpCode::kData);

  g.at(sc.root).requested.push_back(VertexId::invalid());

  // Outer if: predicate p vitally requested; then-branch d eagerly
  // speculated; else-branch c merely a data dependency not yet requested.
  connect(g, sc.root, sc.p, ReqKind::kVital);
  connect(g, sc.root, sc.d, ReqKind::kEager);
  connect(g, sc.root, sc.c, ReqKind::kNone);

  // Inner if p = if true then (a+1) else (a+b+c): the predicate resolved
  // true, so (a+1) is now vitally requested and (a+b+c) has been
  // *dereferenced* — removed from req-args_e(p) and from args(p), and p
  // removed from requested(abc) (§3.2). abc and b thereby become garbage;
  // tasks previously spawned into that subcomputation are irrelevant.
  connect(g, sc.p, sc.a_plus_1, ReqKind::kVital);

  // a+1 vitally needs a (shared with the dereferenced branch).
  connect(g, sc.a_plus_1, sc.a, ReqKind::kVital);

  // The dereferenced eager branch a+b+c still holds its own edges, eagerly
  // requested while it was running.
  connect(g, sc.abc, sc.a, ReqKind::kEager);
  connect(g, sc.abc, sc.b, ReqKind::kEager);
  connect(g, sc.abc, sc.c, ReqKind::kEager);

  // Pooled tasks, one per interesting destination (cf. Fig 3-2 triangles):
  sc.tasks.push_back(TaskRef{sc.p, sc.a_plus_1});    // vital:     d ∈ R_v
  sc.tasks.push_back(TaskRef{sc.root, sc.d});        // eager:     d ∈ R_e − R_v
  sc.tasks.push_back(TaskRef{sc.abc, sc.b});         // irrelevant: d ∈ GAR
  sc.tasks.push_back(TaskRef{sc.abc, sc.c});         // reserve:   d ∈ R_r − R_e − R_v
  return sc;
}

std::vector<VertexId> build_chain(Graph& g, std::uint32_t length, ReqKind k) {
  DGR_CHECK(length >= 1);
  std::vector<VertexId> chain;
  chain.reserve(length);
  for (std::uint32_t i = 0; i < length; ++i)
    chain.push_back(g.alloc_rr(OpCode::kData));
  for (std::uint32_t i = 0; i + 1 < length; ++i)
    connect(g, chain[i], chain[i + 1], k);
  return chain;
}

VertexId build_tree(Graph& g, std::uint32_t depth, ReqKind k) {
  const VertexId v = g.alloc_rr(OpCode::kData);
  if (depth > 0) {
    connect(g, v, build_tree(g, depth - 1, k), k);
    connect(g, v, build_tree(g, depth - 1, k), k);
  }
  return v;
}

}  // namespace dgr
