#include "graph/partitioner.h"

#include <algorithm>

#include "util/assert.h"

namespace dgr {

namespace {

class RoundRobinPartitioner final : public Partitioner {
 public:
  std::vector<PeId> assign(std::uint32_t n, std::uint32_t num_pes,
                           const std::vector<IndexEdge>&,
                           std::uint32_t) const override {
    std::vector<PeId> out(n);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i] = static_cast<PeId>(i % num_pes);
    return out;
  }
};

class BlockPartitioner final : public Partitioner {
 public:
  std::vector<PeId> assign(std::uint32_t n, std::uint32_t num_pes,
                           const std::vector<IndexEdge>&,
                           std::uint32_t cap_per_pe) const override {
    // Even blocks of ceil(n / P), further clamped by the explicit cap.
    const std::uint32_t block =
        std::min(cap_per_pe, (n + num_pes - 1) / std::max(1u, num_pes));
    DGR_CHECK(static_cast<std::uint64_t>(block) * num_pes >= n);
    std::vector<PeId> out(n);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i] = static_cast<PeId>(std::min(i / block, num_pes - 1));
    return out;
  }
};

// Linear deterministic greedy (LDG, Stanton & Kliot style): stream the
// positions in index order; each one scores every PE by how many of its
// already-assigned neighbors live there, scaled by the PE's remaining
// capacity, and joins the argmax (ties: least loaded, then lowest id).
// One pass, O(n·P + m), deterministic, and bounded-imbalance by the cap.
class GreedyPartitioner final : public Partitioner {
 public:
  std::vector<PeId> assign(std::uint32_t n, std::uint32_t num_pes,
                           const std::vector<IndexEdge>& edges,
                           std::uint32_t cap_per_pe) const override {
    DGR_CHECK(static_cast<std::uint64_t>(cap_per_pe) * num_pes >= n);
    // Undirected adjacency in index space.
    std::vector<std::uint32_t> degree(n, 0);
    for (const IndexEdge& e : edges) {
      if (e.from >= n || e.to >= n || e.from == e.to) continue;
      ++degree[e.from];
      ++degree[e.to];
    }
    std::vector<std::uint32_t> offset(n + 1, 0);
    for (std::uint32_t i = 0; i < n; ++i) offset[i + 1] = offset[i] + degree[i];
    std::vector<std::uint32_t> adj(offset[n]);
    std::vector<std::uint32_t> fill(offset.begin(), offset.end() - 1);
    for (const IndexEdge& e : edges) {
      if (e.from >= n || e.to >= n || e.from == e.to) continue;
      adj[fill[e.from]++] = e.to;
      adj[fill[e.to]++] = e.from;
    }

    std::vector<PeId> out(n, 0);
    std::vector<std::uint32_t> load(num_pes, 0);
    std::vector<std::uint32_t> neighbors(num_pes, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::fill(neighbors.begin(), neighbors.end(), 0);
      for (std::uint32_t k = offset[i]; k < offset[i + 1]; ++k) {
        const std::uint32_t nb = adj[k];
        if (nb < i) ++neighbors[out[nb]];
      }
      std::uint32_t best = num_pes;  // sentinel: nothing picked yet
      double best_score = -1.0;
      for (std::uint32_t p = 0; p < num_pes; ++p) {
        if (load[p] >= cap_per_pe) continue;
        const double slack =
            1.0 - static_cast<double>(load[p]) / static_cast<double>(cap_per_pe);
        const double score = static_cast<double>(neighbors[p]) * slack;
        if (best == num_pes || score > best_score ||
            (score == best_score && load[p] < load[best])) {
          best = p;
          best_score = score;
        }
      }
      DGR_CHECK_MSG(best < num_pes, "greedy partitioner ran out of capacity");
      out[i] = static_cast<PeId>(best);
      ++load[best];
    }
    return out;
  }
};

}  // namespace

const char* partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRoundRobin: return "rr";
    case PartitionStrategy::kBlock: return "block";
    case PartitionStrategy::kGreedy: return "greedy";
  }
  return "?";
}

bool parse_partition_strategy(const std::string_view name,
                              PartitionStrategy* out) {
  if (name == "rr" || name == "round-robin") {
    *out = PartitionStrategy::kRoundRobin;
  } else if (name == "block") {
    *out = PartitionStrategy::kBlock;
  } else if (name == "greedy") {
    *out = PartitionStrategy::kGreedy;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<Partitioner> make_partitioner(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRoundRobin:
      return std::make_unique<RoundRobinPartitioner>();
    case PartitionStrategy::kBlock:
      return std::make_unique<BlockPartitioner>();
    case PartitionStrategy::kGreedy:
      return std::make_unique<GreedyPartitioner>();
  }
  return std::make_unique<RoundRobinPartitioner>();
}

std::uint64_t edge_cut(const std::vector<IndexEdge>& edges,
                       const std::vector<PeId>& assignment) {
  std::uint64_t cut = 0;
  for (const IndexEdge& e : edges)
    if (e.from < assignment.size() && e.to < assignment.size() &&
        assignment[e.from] != assignment[e.to])
      ++cut;
  return cut;
}

}  // namespace dgr
