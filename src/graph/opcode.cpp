#include "graph/opcode.h"

namespace dgr {

const char* op_name(OpCode op) {
  switch (op) {
    case OpCode::kData: return "data";
    case OpCode::kLit: return "lit";
    case OpCode::kAdd: return "+";
    case OpCode::kSub: return "-";
    case OpCode::kMul: return "*";
    case OpCode::kDiv: return "/";
    case OpCode::kMod: return "%";
    case OpCode::kEq: return "==";
    case OpCode::kNe: return "!=";
    case OpCode::kLt: return "<";
    case OpCode::kLe: return "<=";
    case OpCode::kNot: return "not";
    case OpCode::kAnd: return "and";
    case OpCode::kOr: return "or";
    case OpCode::kId: return "id";
    case OpCode::kIf: return "if";
    case OpCode::kCons: return "cons";
    case OpCode::kNil: return "nil";
    case OpCode::kHead: return "head";
    case OpCode::kTail: return "tail";
    case OpCode::kIsNil: return "isnil";
    case OpCode::kCall: return "call";
    case OpCode::kTaskRoot: return "taskroot";
    case OpCode::kTRoot: return "troot";
  }
  return "?";
}

int op_arity(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kMod:
    case OpCode::kEq:
    case OpCode::kNe:
    case OpCode::kLt:
    case OpCode::kLe:
    case OpCode::kAnd:
    case OpCode::kOr: return 2;
    case OpCode::kNot:
    case OpCode::kId:
    case OpCode::kHead:
    case OpCode::kTail:
    case OpCode::kIsNil: return 1;
    case OpCode::kCons: return 2;
    case OpCode::kIf: return 3;
    default: return 0;
  }
}

}  // namespace dgr
