// The vertex model of Hudak §2.1.
//
// Each vertex v keeps three edge sets current:
//   args(v)       — original data dependencies (ArgEdge::to),
//   req-args(v)   — the subset whose values v has requested, split into
//                   req-args_v (vitally) and req-args_e (eagerly) via
//                   ArgEdge::req,
//   requested(v)  — vertices that requested v's value and have not been
//                   replied to yet.
//
// Each vertex also carries two independent marking planes, one for the
// root-marking process M_R and one for the task-marking process M_T (§5.2:
// "we assume that rootpar, done, mt-cnt, mt-par, and the marking bits used by
// M_T are distinct from those used by M_R").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.h"
#include "graph/opcode.h"
#include "graph/value.h"

namespace dgr {

// How (whether) a vertex requested the value of one of its args.
enum class ReqKind : std::uint8_t {
  kNone = 0,   // in args but not requested — traced with priority 1
  kEager = 1,  // eagerly requested — priority 2
  kVital = 2,  // vitally requested — priority 3
};

// The paper's request-type(c,v) function (Fig 5-1).
inline int request_type(ReqKind k) {
  switch (k) {
    case ReqKind::kVital: return 3;
    case ReqKind::kEager: return 2;
    case ReqKind::kNone: return 1;
  }
  return 1;
}

struct ArgEdge {
  VertexId to;
  ReqKind req = ReqKind::kNone;
  Value value;  // value returned by `to`, once any
  // M_T epoch in which this edge last became requested. An edge requested
  // *during* the current task-marking phase was unrequested — hence a
  // T-edge — at the phase's snapshot instant t_a, so mark3 must still trace
  // it (this is the in-transit-task accounting the paper defers to [5]).
  std::uint64_t req_epoch = 0;

  explicit ArgEdge(VertexId t = VertexId::invalid(),
                   ReqKind k = ReqKind::kNone)
      : to(t), req(k) {}
};

// Marking tri-state; the analogue of Dijkstra's white/gray/black, with the
// distributed-twist semantics of Hudak §4.1.
enum class Color : std::uint8_t {
  kUnmarked = 0,   // no mark task has executed on v this cycle
  kTransient = 1,  // mark task executed, children not all returned
  kMarked = 2,     // marking of v's subtree complete
};

// Which marking process a piece of state belongs to.
enum class Plane : int { kR = 0, kT = 1 };

struct MarkPlane {
  // Colors are epoch-tagged: state is valid only when `epoch` equals the
  // current marking cycle, which makes "unmark everything" an O(1) epoch
  // bump instead of a sweep.
  std::uint64_t epoch = 0;
  Color color = Color::kUnmarked;
  std::uint32_t mt_cnt = 0;
  VertexId mt_par = VertexId::invalid();
  std::uint8_t prior = 0;  // 3 = R_v, 2 = R_e, 1 = R_r; M_R plane only
};

struct Vertex {
  OpCode op = OpCode::kData;

  // Arena bookkeeping: false means the slot is on its PE's free list (F).
  bool live = false;
  // Auxiliary vertices (taskroot_i, troot) are outside V for the purposes of
  // Properties 1-6 and are never collected.
  bool aux = false;

  // Reduction state.
  bool evaluating = false;  // some reduction task has begun computing v
  Value value;              // v's ultimate value, once computed
  std::uint32_t fn_id = 0;  // template index, for kCall vertices

  std::vector<ArgEdge> args;
  std::vector<VertexId> requested;  // invalid() entry = external/root demand

  // Waiters removed from `requested` (by reply or dereference) while an M_T
  // wave was in flight. They were ↦-successors at the wave's snapshot
  // instant, so mark3 still traces them; the restructuring phase clears the
  // list. Part of the in-transit accounting of [5] (see ArgEdge::req_epoch).
  std::vector<VertexId> stale_requested;

  MarkPlane mark[2];

  bool evaluated() const { return value.defined(); }

  MarkPlane& plane(Plane p) { return mark[static_cast<int>(p)]; }
  const MarkPlane& plane(Plane p) const { return mark[static_cast<int>(p)]; }

  // args index of `c`, or -1.
  int arg_index(VertexId c) const {
    for (std::size_t i = 0; i < args.size(); ++i)
      if (args[i].to == c) return static_cast<int>(i);
    return -1;
  }

  bool has_requester(VertexId s) const {
    for (VertexId r : requested)
      if (r == s) return true;
    return false;
  }

  void drop_requester(VertexId s) {
    for (std::size_t i = 0; i < requested.size(); ++i) {
      if (requested[i] == s) {
        requested[i] = requested.back();
        requested.pop_back();
        return;
      }
    }
  }

  // Reset reduction + connectivity state when freed / reallocated. Marking
  // planes survive: a node taken from F mid-cycle keeps whatever color the
  // allocating mutator gives it (cf. expand-node, Fig 4-2).
  void reset_payload() {
    op = OpCode::kData;
    evaluating = false;
    value = Value::none();
    fn_id = 0;
    args.clear();
    requested.clear();
    stale_requested.clear();
  }
};

}  // namespace dgr
