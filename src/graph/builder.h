// Synthetic graph construction for tests and benchmarks: fixed scenarios from
// the paper's figures and seeded random graph families.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/partitioner.h"
#include "graph/task_ref.h"
#include "util/rng.h"

namespace dgr {

// A generated workload: the graph topology plus the root and the initial
// task population (the contents of the taskpools for M_T / classification).
struct BuiltGraph {
  VertexId root;
  std::vector<VertexId> vertices;  // all allocated vertices, incl. garbage
  std::vector<TaskRef> tasks;
};

struct RandomGraphOptions {
  std::uint32_t num_vertices = 100;
  double avg_out_degree = 2.0;
  // Probability that an edge is a vital / eager request (rest unrequested).
  double p_vital = 0.4;
  double p_eager = 0.3;
  // Fraction of vertices deliberately left unreachable from the root
  // (pre-seeded garbage).
  double p_detached = 0.2;
  // Number of pooled tasks to generate; destinations drawn from all vertices
  // so irrelevant tasks arise naturally.
  std::uint32_t num_tasks = 16;
  // Allow self-loops / back edges (cycles) — the structures reference
  // counting cannot reclaim.
  bool cyclic = true;
  std::uint64_t seed = 1;
  // Vertex→PE placement (see graph/partitioner.h). The topology is drawn in
  // index space first, so every strategy sees the identical seeded graph.
  PartitionStrategy partition = PartitionStrategy::kGreedy;
};

// Builds a random graph across all PEs of `g`. By default vertices are
// placed by the greedy edge-cut-minimizing partitioner, so most edges stay
// PE-local; choose PartitionStrategy::kRoundRobin for the adversarial
// maximal-cut layout (every edge between index neighbors crosses a PE).
BuiltGraph build_random_graph(Graph& g, const RandomGraphOptions& opt);

// The paper's Figure 3-1: x = x + 1, embedded next to a still-busy sibling
// computation so that the deadlocked region is a proper subset of R_v.
// x is the "+" vertex with the vital self-edge (x ∈ req-args_v(x)): it awaits
// its own value, task activity has ceased there, and no task can ever reach
// it again — x ∈ DL_v = R_v − T.
struct DeadlockScenario {
  VertexId root;  // vitally awaits both x and busy
  VertexId x;     // the deadlocked self-dependent vertex
  VertexId busy;  // a live vertex with a pending task (keeps root ∈ T)
  std::vector<TaskRef> tasks;
};
DeadlockScenario build_deadlock_scenario(Graph& g);

// The paper's Figure 3-2: "if p then d else c, where
// p = if true then (a+1) else (a+b+c)". Builds the post-predicate state in
// which vital, eager, irrelevant and reserve tasks all coexist.
struct TaskTypeScenario {
  VertexId root;       // outer if
  VertexId p;          // inner if (predicate), now resolved true
  VertexId a_plus_1;   // vitally needed by p's taken branch
  VertexId abc;        // dereferenced eager branch → its tasks irrelevant
  VertexId a, b, c, d;
  std::vector<TaskRef> tasks;  // one pooled task per interesting destination
};
TaskTypeScenario build_task_type_scenario(Graph& g);

// A long chain root -> v1 -> ... -> vn with the given request kind; useful
// for priority-propagation and marking-depth benches.
std::vector<VertexId> build_chain(Graph& g, std::uint32_t length, ReqKind k);

// Complete binary tree of the given depth rooted at the returned vertex.
VertexId build_tree(Graph& g, std::uint32_t depth, ReqKind k);

}  // namespace dgr
