// Pluggable vertex→PE placement for generated workloads.
//
// A partitioner works in *index space*: it sees the topology as edges
// between vertex positions (0..n-1) before any vertex exists, and returns
// one PE per position. The builder then allocates position i on its assigned
// PE. Keeping assignment separate from allocation lets the same seeded
// topology be placed under different strategies — the knob behind
// `RandomGraphOptions::partition` and `dgr_run --partition=`.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "graph/ids.h"

namespace dgr {

enum class PartitionStrategy : std::uint8_t {
  kRoundRobin,  // position i → PE i mod P: maximal edge cut, perfect balance
  kBlock,       // contiguous index ranges: good for chain/tree index orders
  kGreedy,      // linear deterministic greedy (LDG): place each vertex with
                // the neighbors already assigned, scaled by remaining PE
                // capacity — low cut, bounded imbalance
};

const char* partition_strategy_name(PartitionStrategy s);
// Accepts "rr"/"round-robin", "block", "greedy". Returns false on unknown.
bool parse_partition_strategy(const std::string_view name,
                              PartitionStrategy* out);

// An undirected topology edge between vertex positions.
struct IndexEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  // Assign each of n positions to a PE. No PE receives more than
  // `cap_per_pe` positions (callers size their stores accordingly);
  // cap_per_pe * num_pes must be >= n. Deterministic for fixed inputs.
  virtual std::vector<PeId> assign(std::uint32_t n, std::uint32_t num_pes,
                                   const std::vector<IndexEdge>& edges,
                                   std::uint32_t cap_per_pe) const = 0;
};

std::unique_ptr<Partitioner> make_partitioner(PartitionStrategy s);

// Edges whose endpoints map to different PEs under `assignment`.
std::uint64_t edge_cut(const std::vector<IndexEdge>& edges,
                       const std::vector<PeId>& assignment);

}  // namespace dgr
