// Vertex identity in the distributed computation graph.
//
// A vertex is owned by exactly one processing element (PE); its id is the
// pair (owning PE, slot index in that PE's arena). Tasks addressed to a
// vertex are routed to — and executed on — the owning PE, which is what gives
// task execution its atomicity in the distributed engine (Hudak §2.1).
#pragma once

#include <cstdint>
#include <functional>

namespace dgr {

using PeId = std::uint32_t;

struct VertexId {
  static constexpr std::uint32_t kInvalidPe = 0xffffffffu;

  PeId pe = kInvalidPe;
  std::uint32_t idx = 0;

  constexpr bool valid() const { return pe != kInvalidPe; }

  static constexpr VertexId invalid() { return VertexId{}; }

  // Sentinel parent used to detect marking termination (the paper's
  // "rootpar" dummy node, Fig 4-1): a return task addressed to it signals
  // the controller that the marking wave has fully collapsed.
  static constexpr VertexId rootpar() { return VertexId{0xfffffffeu, 0}; }

  constexpr bool is_rootpar() const { return pe == 0xfffffffeu; }

  friend constexpr bool operator==(VertexId a, VertexId b) {
    return a.pe == b.pe && a.idx == b.idx;
  }
  friend constexpr bool operator!=(VertexId a, VertexId b) { return !(a == b); }
  friend constexpr bool operator<(VertexId a, VertexId b) {
    return a.pe != b.pe ? a.pe < b.pe : a.idx < b.idx;
  }

  std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(pe) << 32) | idx;
  }
  static VertexId unpack(std::uint64_t bits) {
    return VertexId{static_cast<PeId>(bits >> 32),
                    static_cast<std::uint32_t>(bits)};
  }
};

struct VertexIdHash {
  std::size_t operator()(VertexId v) const {
    std::uint64_t x = v.pack();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace dgr
