// Sequential reference implementation of the paper's reachability
// characterizations (Properties 1-6, §2.2 / §3).
//
// The oracle halts nothing and marks nothing: it computes, from a quiescent
// snapshot of the graph, the exact sets
//
//   R    = { v | root →* v }                       (args reachability)
//   R_v  = { v | reachable via req-args_v only }   (priority 3)
//   R_e  = { v | best path has priority 2 }        (priority 2)
//   R_r  = { v | best path has priority 1 }        (priority 1)
//   T    = { v | some task's s or d ↦* v }         (task reachability)
//   GAR  = V − R − F                                (Property 1)
//   DL   = R − T,  DL_v = R_v − T                   (Properties 2, 2')
//
// where priorities follow mark2's max-min path semantics: a vertex's
// priority is the maximum over root-paths of the minimum request-type along
// the path (request-type: vital=3, eager=2, unrequested=1).
//
// NOTE on the paper's R_r: §3.2 defines R_r as reachability "only through
// req-args_r", which taken literally is inconsistent with mark2 (whose
// fixpoint is the max-min semantics above) and with Figure 3-3's Venn
// diagram. We follow the algorithmic definition: R_r is the set marked with
// priority 1, i.e. reachable only via paths containing an unrequested arc.
//
// Task propagation edges (§2.2):
//   x ↦ y  ⇔  y ∈ requested(x) ∨ y ∈ (args(x) − req-args(x)).
//
// The distributed marker (src/core) is verified against this oracle in the
// test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/task_ref.h"

namespace dgr {

class Oracle {
 public:
  // Computes all sets from the current state of `g`. `tasks` is the union of
  // all task pools plus all in-transit tasks (the seeds of T).
  Oracle(const Graph& g, VertexId root, const std::vector<TaskRef>& tasks);

  // Membership queries. All return false for free or aux vertices where the
  // set excludes them by definition.
  bool in_R(VertexId v) const { return prior_at(v) >= 1; }
  bool in_Rv(VertexId v) const { return prior_at(v) == 3; }
  bool in_Re(VertexId v) const { return prior_at(v) == 2; }
  bool in_Rr(VertexId v) const { return prior_at(v) == 1; }
  bool in_T(VertexId v) const { return flag(t_, v); }
  bool in_F(VertexId v) const { return g_.is_free(v); }
  bool in_GAR(VertexId v) const;   // Property 1
  bool in_DL(VertexId v) const;    // Property 2:  R − T
  bool in_DLv(VertexId v) const;   // Property 2': R_v − T

  // prior*(v): 0 = unreachable, else 1..3.
  int prior_at(VertexId v) const {
    return static_cast<int>(field(prior_, v));
  }

  // Properties 3-6.
  TaskClass classify(const TaskRef& t) const;

  // Set cardinalities (over live, non-aux vertices).
  std::size_t count_R() const { return n_r_; }
  std::size_t count_Rv() const { return n_rv_; }
  std::size_t count_Re() const { return n_re_; }
  std::size_t count_Rr() const { return n_rr_; }
  std::size_t count_T() const { return n_t_; }
  std::size_t count_GAR() const { return n_gar_; }
  std::size_t count_DLv() const { return n_dlv_; }

  // Enumerate members of a computed set.
  std::vector<VertexId> members_GAR() const;
  std::vector<VertexId> members_DLv() const;

 private:
  using Field = std::vector<std::vector<std::uint8_t>>;

  std::uint8_t field(const Field& f, VertexId v) const {
    if (v.pe >= f.size() || v.idx >= f[v.pe].size()) return 0;
    return f[v.pe][v.idx];
  }
  bool flag(const Field& f, VertexId v) const { return field(f, v) != 0; }

  // BFS over args edges whose request-type >= threshold; sets prior_ to
  // `value` for newly reached vertices with prior_ < value.
  void reach_with_threshold(VertexId root, int threshold, std::uint8_t value);
  void reach_tasks(const std::vector<TaskRef>& tasks);

  const Graph& g_;
  Field prior_;  // 0 unreachable / 1 / 2 / 3
  Field t_;      // membership in T
  std::size_t n_r_ = 0, n_rv_ = 0, n_re_ = 0, n_rr_ = 0, n_t_ = 0,
              n_gar_ = 0, n_dlv_ = 0;
};

}  // namespace dgr
