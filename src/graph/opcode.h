// Vertex labels: primitive operators and value kinds (Hudak §2: "a directed
// graph whose vertices are labeled with primitive operators and values").
//
// The reduction substrate is supercombinator-style operator-graph reduction:
// a program is a set of function templates; a kCall vertex instantiates its
// template from the free list (the paper's expand-node — "new vertices are
// added as the result of a function invocation") and strict operators request
// their operands exactly as in the paper's §2.1 example.
#pragma once

#include <cstdint>

namespace dgr {

enum class OpCode : std::uint8_t {
  // Plain data vertex with arbitrary out-edges; used by the marking tests and
  // benches that exercise the collector independently of reduction.
  kData = 0,

  kLit,  // literal; value stored in the vertex

  // Strict arithmetic / comparison primitives; args are the operands.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kNot,
  kAnd,  // strict boolean (both sides evaluated — keeps operators uniform)
  kOr,
  kId,   // identity forward (used when a function body is a bare parameter)

  // Conditional: args = [predicate, then, else]. Evaluates the predicate
  // vitally; may speculate both branches eagerly (§3.2); on resolution the
  // untaken branch is dereferenced, orphaning its eager tasks.
  kIf,

  // Lazy list cells. kCons's two fields are plain (unrequested) args —
  // exactly the paper's "reserve" dependencies — evaluated only when
  // head/tail demand them; kNil is the empty list. kHead/kTail acquire a
  // field reference from the returned cell (see Mutator::acquire_reference).
  kCons,
  kNil,
  kHead,
  kTail,
  kIsNil,

  // Function invocation: fn_id selects the template, args are the actuals.
  // Evaluation splices a fresh instance of the template below the vertex
  // (expand-node) and the vertex becomes the instance's root operator.
  kCall,

  // Auxiliary marking roots (taskroot_i / troot, Hudak §5.2). Never collected.
  kTaskRoot,
  kTRoot,
};

const char* op_name(OpCode op);

// Operand count for fixed-arity operators (0 for kData/kLit/kCall/aux).
int op_arity(OpCode op);

inline bool op_is_strict_prim(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kMod:
    case OpCode::kEq:
    case OpCode::kNe:
    case OpCode::kLt:
    case OpCode::kLe:
    case OpCode::kNot:
    case OpCode::kAnd:
    case OpCode::kOr:
    case OpCode::kId:
      return true;
    default:
      return false;
  }
}

inline bool op_is_list(OpCode op) {
  return op == OpCode::kCons || op == OpCode::kNil || op == OpCode::kHead ||
         op == OpCode::kTail || op == OpCode::kIsNil;
}

inline bool op_is_aux_root(OpCode op) {
  return op == OpCode::kTaskRoot || op == OpCode::kTRoot;
}

}  // namespace dgr
