// Multi-threaded engine: one OS thread per PE.
//
// Realizes the paper's machine with genuine parallelism: every PE runs its
// own thread, cross-PE task spawns travel as serialized byte messages
// through mailboxes (no shared task objects), and task execution is made
// atomic by per-vertex spinlocks — a mark or return task touches only its
// destination vertex, so marking scales across PEs with no shared stack or
// queue, exactly the paper's decentralization claim (E8).
//
// Mutations (the cooperating primitives) touch several vertices; callers
// take the locks of the touch set in id order via LockSet. The restructuring
// phase runs under a brief global pause (quiesce) — the paper requires only
// the MARK phase to be concurrent (§4: "we concentrate solely upon the mark
// phase").
//
// Scope: this engine drives marking workloads plus driver-based mutation
// (the full reduction Machine runs on the deterministic SimEngine; see
// DESIGN.md §2, substitution 1).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/controller.h"
#include "core/cooperation.h"
#include "core/marker.h"
#include "net/fault_plane.h"
#include "net/reliable_channel.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/pool.h"

namespace dgr {

// Sorted-order acquisition of per-vertex spinlocks; RAII release.
class VertexLocks;

// Message-plane configuration. With a nonzero fault schedule (or
// force_reliable), every marking message crosses a FaultPlane wrapped in a
// ChannelManager: the engine sees exactly-once in-order delivery while the
// wire drops, duplicates, reorders and truncates under it. With the default
// (no faults), messages go straight to the destination mailbox.
//
// Batching (on by default): cross-PE spawns coalesce per directed PE pair —
// on the fast path into per-pair staging rows flushed to the destination
// mailbox as one deliver_batch, on the channel path into multi-payload
// frames (the same knobs are forwarded to ReliableOptions). A batch flushes
// when it reaches batch_bytes, ages past batch_flush_us, or its owning PE
// goes idle or parks; receivers drain up to drain_max messages per loop
// pass under a single mailbox lock. batch_bytes == 0 restores the exact
// one-message-one-delivery PR 4 plane (the --no-batch leg).

// Which Transport carries cross-PE messages (net/transport.h). kInProc is
// the historical shared-memory mailbox plane; kUds/kTcp route every cross-PE
// message through real kernel sockets (net/socket_transport.h) — same
// engine, same fault/channel layering, loopback-cluster wire path.
enum class TransportKind : std::uint8_t { kInProc = 0, kUds, kTcp };

struct NetOptions {
  FaultPlaneOptions faults;
  ReliableOptions reliable;
  bool force_reliable = false;  // channel layer even with a zero schedule
  TransportKind transport = TransportKind::kInProc;
  // Hub address for socket transports ("uds:PATH" / "tcp:HOST:PORT");
  // empty picks a fresh /tmp socket (uds) or an ephemeral port (tcp).
  std::string transport_addr;
  std::uint32_t batch_bytes = 4096;    // size cap per staged pair (0 = off)
  std::uint32_t batch_flush_us = 100;  // age cap on a staged batch
  std::uint32_t drain_max = 64;        // receiver: messages per drain pass
  // Soft backpressure, edge-triggered per directed PE pair: the first spawn
  // that finds the destination backlog over the limit yields up to
  // backpressure_spins times (counted as backpressure_stall) and, if the
  // peer is still congested, disarms the pair — subsequent spawns proceed
  // at full speed until the backlog falls below half the limit, which
  // re-arms it. One stall episode per congestion event, not one per
  // message: a per-message yield loop is exactly the ping-pong stall that
  // produced the 2-PE cliff (see docs/PERF.md). Never blocking is
  // load-bearing: the spawner may hold vertex-stripe locks (globally shared
  // hash stripes) that the congested receiver needs to make progress.
  std::uint64_t backpressure_limit = 1 << 15;  // 0 disables the check
  std::uint32_t backpressure_spins = 64;
  // Boundary summaries: per-(destination PE, plane) tables recording the
  // strongest mark priority already forwarded per remote vertex this epoch;
  // duplicate remote child marks are suppressed at the sender (counted as
  // boundary_dedup), so each remote vertex is requested at most once per
  // wave and priority level instead of once per cross-partition edge.
  bool boundary_summary = true;
  // Work stealing: a PE whose mailbox is empty drains up to half (capped at
  // drain_max) of the deepest peer backlog and executes the batch itself
  // instead of parking. Sound because task execution is location-
  // transparent here: vertex locks are global stripes, counters are per-
  // executing-PE, and the channel/fault planes take their own locks.
  bool steal = true;
  std::uint64_t steal_min = 16;  // don't steal below this victim backlog
  // Idle parking: a PE with an empty mailbox and nothing stealable blocks
  // on its mailbox condvar for at most this long (0 = yield-spin instead).
  // Bounded so pause requests, steal opportunities and retransmit timers
  // are still polled; parking matters most on hosts with fewer cores than
  // PEs, where a yield-spinning idler competes with the busy PEs for the
  // timeslice that would produce its next message.
  std::uint32_t idle_wait_us = 100;
  bool enabled() const { return faults.spec.any() || force_reliable; }
};

// Aggregate counter view over the per-PE obs::MetricsRegistry (see
// metrics_registry() for the per-PE breakdowns and histograms).
struct ThreadEngineStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t remote_messages = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t mailbox_high_water = 0;  // deepest mailbox backlog seen
  std::uint64_t msg_batched = 0;         // messages sent inside a batch
  std::uint64_t batch_flushes = 0;       // batches flushed
  std::uint64_t backpressure_stalls = 0; // spawns that hit the soft limit
  std::uint64_t boundary_dedup = 0;      // remote marks suppressed at source
  std::uint64_t steal_batches = 0;       // idle-PE steal passes that took work
  std::uint64_t steal_tasks = 0;         // tasks executed by a non-owner PE
  std::uint64_t edge_cut = 0;            // cross-PE arg edges at start()
  std::uint64_t edges_total = 0;         // all arg edges at start()
};

// Safe-point auditing (§5.4.1 invariants + Property 1 accounting on the live
// concurrent graph). The audit runs inside the restructuring quiesce window
// every `period` cycles: all PE threads are parked, both planes have
// terminated but their marks are not yet consumed, and no marking task is in
// flight — the one globally consistent state the threaded engine ever
// reaches. Violations are counted, logged, and emitted as health_warning
// trace events; they never abort (CI decides via dgr_run --health-fatal).
struct AuditOptions {
  std::uint32_t period = 1;      // audit every Nth cycle (0 disables)
  bool check_invariants = true;  // marking invariants 1-3 on terminated planes
  bool check_accounting = true;  // Property 1: GAR = V − R − F, R ∩ F = ∅
};

struct AuditStats {
  std::uint64_t audits = 0;      // safe-point audits executed
  std::uint64_t violations = 0;  // failed checks (invariant or accounting)
  std::string last_what;         // human-readable description of the latest
};

// Online health monitoring: a watchdog thread samples the metrics registry,
// the controller and the mailboxes every `interval_ms` and flags
//   - a marking wave with no front progress for `stall_samples` samples,
//   - a mailbox backlog above `mailbox_saturation`,
//   - more than `rescue_storm` supplementary waves within one cycle,
// as health_warning trace events plus always-on counters (the counters
// survive -DDGR_TRACE=OFF; only the event emission compiles out).
struct WatchdogOptions {
  std::uint32_t interval_ms = 2;
  std::uint32_t stall_samples = 500;  // ~1 s of no progress at 2 ms
  std::uint64_t mailbox_saturation = 1 << 16;
  std::uint64_t rescue_storm = 64;
};

struct HealthReport {
  std::uint64_t warnings[obs::kNumHealthKinds] = {};
  std::uint64_t total() const {
    std::uint64_t n = 0;
    for (std::uint64_t w : warnings) n += w;
    return n;
  }
};

class ThreadEngine final : public TaskSink, public EngineHooks {
 public:
  explicit ThreadEngine(Graph& g, NetOptions net = {});
  ~ThreadEngine() override;

  ThreadEngine(const ThreadEngine&) = delete;
  ThreadEngine& operator=(const ThreadEngine&) = delete;

  Graph& graph() { return g_; }
  Marker& marker() { return *marker_; }
  Mutator& mutator() { return *mutator_; }
  Controller& controller() { return *controller_; }

  void set_root(VertexId root) { controller_->set_root(root); }

  // Start the PE threads (idempotent).
  void start();
  // Stop the PE threads; pending work is abandoned.
  void stop();

  // Block until no task is pending or executing anywhere.
  void wait_quiescent();
  // Block until the controller finishes the in-progress cycle.
  void wait_cycle_done();

  // Inject an inert reduction task into its destination pool (workload for
  // M_T / classification benches).
  void inject(Task t);

  // ---- TaskSink (thread-safe) ----
  void spawn(Task t) override;
  // Boundary-summary admission (see NetOptions::boundary_summary). Only
  // remote children spawned from a PE thread consult the table; external
  // callers and local children are always admitted.
  bool admit_mark(Plane plane, VertexId child, std::uint8_t prior,
                  std::uint64_t epoch) override;

  // ---- EngineHooks ----
  void collect_task_refs(std::vector<TaskRef>& out) override;
  std::size_t expunge_tasks(
      const std::function<bool(const Task&)>& kill) override;
  std::size_t reprioritize_tasks(
      const std::function<std::uint8_t(const Task&)>& prio) override;
  void quiesce_begin() override;
  void quiesce_end() override;
  void on_cycle_complete(const CycleResult& res) override;

  // Enable safe-point auditing (see AuditOptions). Call before start().
  void enable_audit(AuditOptions opt = {});
  const AuditStats& audit_stats() const { return audit_stats_; }

  // Arm the stall watchdog (see WatchdogOptions). Call before start(); the
  // monitor thread lives from start() to stop().
  void enable_watchdog(WatchdogOptions opt = {});
  HealthReport health() const;

  // Execute `fn` with the listed vertices' locks held (sorted order) —
  // the atomic section for a multi-vertex mutation. The span overload
  // serves callers whose touch set is computed at runtime (the workload
  // driver locks a whole session subgraph at once).
  void atomically(std::initializer_list<VertexId> vs,
                  const std::function<void()>& fn);
  void atomically(std::span<const VertexId> vs,
                  const std::function<void()>& fn);

  ThreadEngineStats stats() const;
  // Null unless NetOptions::enabled() at construction.
  const FaultPlane* fault_plane() const { return fault_.get(); }
  const ChannelManager* channels() const { return chan_.get(); }
  // The message plane underneath everything (never null).
  const Transport& transport() const { return *transport_; }
  // Per-PE counters and histograms.
  obs::MetricsRegistry& metrics_registry() { return reg_; }
  const obs::MetricsRegistry& metrics_registry() const { return reg_; }

  // Start capturing a structured trace (ring buffer; oldest dropped).
  // Timestamps are µs since engine construction. Returns nullptr when
  // tracing is compiled out (-DDGR_TRACE=OFF). Call before start().
  obs::TraceBuffer* enable_trace(std::size_t capacity = 1 << 14);
  obs::TraceBuffer* trace() { return trace_.get(); }

 private:
  friend class VertexLocks;

  void pe_loop(PeId pe);
  void execute(PeId pe, const Task& t);
  // Fast-path batching: flush every staged pair whose sender is `pe`
  // (force) or only the size/age-ripe ones. PE-thread-local: row `pe` of
  // out_ is touched exclusively by its owning thread.
  void flush_outgoing(PeId pe, bool force);
  void flush_pair_fast(PeId src, PeId dst);
  // Edge-triggered congestion episode handling (see NetOptions). Only PE
  // thread `src` calls this for its own row, so the arming bytes need no
  // synchronization.
  void maybe_backpressure(PeId src, PeId dst);
  // Idle-path mailbox stealing: drain up to half of the deepest peer
  // backlog into `buf` and execute it here. Returns true if work was taken.
  bool try_steal(PeId pe, std::vector<Mailbox::Bytes>& buf);
  // Walk the graph once and charge edge_cut / edges_total per owning PE
  // (called from start(), before any thread runs).
  void count_edge_cut();
  // Engine clock: µs since construction (also the trace timestamp base).
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }
  void watchdog_loop();
  void warn(obs::HealthKind kind, std::uint16_t pe, std::uint64_t detail);
  // Runs inside the quiesce window (all PEs parked, marks unconsumed).
  void maybe_audit();
  std::uint32_t lock_index(VertexId v) const {
    return static_cast<std::uint32_t>(VertexIdHash{}(v) % locks_.size());
  }
  void lock_vertex(VertexId v);
  void unlock_vertex(VertexId v);

  Graph& g_;
  std::unique_ptr<Marker> marker_;
  std::unique_ptr<Mutator> mutator_;
  std::unique_ptr<Controller> controller_;

  // Cross-PE delivery plane: InProcTransport (mailboxes) by default, a
  // SocketTransport when NetOptions::transport selects uds/tcp.
  std::unique_ptr<Transport> transport_;
  // Fast-path sender staging (fault-free plane only; the channel batches on
  // its own when active). out_[src][dst] holds cross-PE marking messages
  // awaiting a coalesced send_batch. No locks: row src belongs to PE
  // thread src alone; external (tl_pe == -1) spawns bypass staging.
  struct OutBatch {
    std::vector<Mailbox::Bytes> msgs;
    std::size_t bytes = 0;
    std::uint64_t deadline_us = 0;  // set when the first message is staged
  };
  std::vector<std::vector<OutBatch>> out_;
  // Backpressure arming, indexed [src][dst]. Row src is written only by PE
  // thread src (external spawns have src == dst and skip the check).
  std::vector<std::vector<std::uint8_t>> bp_armed_;
  // Boundary summaries, one shard per (destination PE, plane): the epoch
  // and strongest priority already forwarded for each remote vertex index.
  // Flat arrays grown on demand under the shard spinlock; stale epochs are
  // invalidated lazily by comparison, so waves never clear the table.
  struct alignas(64) BoundaryShard {
    std::atomic_flag mu = ATOMIC_FLAG_INIT;
    std::vector<std::uint64_t> epoch;
    std::vector<std::uint8_t> prior;
  };
  std::vector<std::unique_ptr<BoundaryShard>> summary_;
  // Active message plane (null on the fault-free fast path). Frames flow
  // spawn → chan_ → fault_ → mail_; pe_loop feeds raw frames back through
  // chan_->on_frame and executes the exactly-once payload stream.
  NetOptions net_;
  std::unique_ptr<FaultPlane> fault_;
  std::unique_ptr<ChannelManager> chan_;
  std::vector<std::unique_ptr<TaskPool>> pools_;  // inert reduction tasks
  std::vector<std::unique_ptr<std::mutex>> pool_mu_;

  std::vector<std::atomic_flag> locks_;

  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> outstanding_{0};  // spawned, not yet executed

  // Quiesce protocol: a pauser raises `pause_`; every other PE thread parks
  // and reports in via `parked_`.
  std::atomic<bool> pause_{false};
  std::atomic<std::uint32_t> parked_{0};
  std::atomic_flag restructure_claim_ = ATOMIC_FLAG_INIT;

  obs::MetricsRegistry reg_;
  std::unique_ptr<obs::TraceBuffer> trace_;
  std::chrono::steady_clock::time_point t0_;

  // ---- Safe-point audit (mutated only inside the quiesce window, by the
  // single restructuring thread; read externally after stop()). ----
  AuditOptions audit_opt_;
  bool audit_enabled_ = false;
  AuditStats audit_stats_;
  bool audit_swept_check_ = false;  // cross-check swept vs GAR' this cycle
  std::size_t audit_expected_gar_ = 0;

  // ---- Watchdog ----
  WatchdogOptions wd_opt_;
  std::atomic<bool> wd_enabled_{false};
  std::thread wd_thread_;
  std::atomic<std::uint64_t> health_[obs::kNumHealthKinds] = {};
};

}  // namespace dgr
