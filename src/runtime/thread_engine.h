// Multi-threaded engine: one OS thread per PE.
//
// Realizes the paper's machine with genuine parallelism: every PE runs its
// own thread, cross-PE task spawns travel as serialized byte messages
// through mailboxes (no shared task objects), and task execution is made
// atomic by per-vertex spinlocks — a mark or return task touches only its
// destination vertex, so marking scales across PEs with no shared stack or
// queue, exactly the paper's decentralization claim (E8).
//
// Mutations (the cooperating primitives) touch several vertices; callers
// take the locks of the touch set in id order via LockSet. The restructuring
// phase runs under a brief global pause (quiesce) — the paper requires only
// the MARK phase to be concurrent (§4: "we concentrate solely upon the mark
// phase").
//
// Scope: this engine drives marking workloads plus driver-based mutation
// (the full reduction Machine runs on the deterministic SimEngine; see
// DESIGN.md §2, substitution 1).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/controller.h"
#include "core/cooperation.h"
#include "core/marker.h"
#include "net/mailbox.h"
#include "obs/metrics.h"
#include "runtime/pool.h"

namespace dgr {

namespace obs {
class TraceBuffer;
}

// Sorted-order acquisition of per-vertex spinlocks; RAII release.
class VertexLocks;

// Aggregate counter view over the per-PE obs::MetricsRegistry (see
// metrics_registry() for the per-PE breakdowns and histograms).
struct ThreadEngineStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t remote_messages = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t mailbox_high_water = 0;  // deepest mailbox backlog seen
};

class ThreadEngine final : public TaskSink, public EngineHooks {
 public:
  explicit ThreadEngine(Graph& g);
  ~ThreadEngine() override;

  ThreadEngine(const ThreadEngine&) = delete;
  ThreadEngine& operator=(const ThreadEngine&) = delete;

  Graph& graph() { return g_; }
  Marker& marker() { return *marker_; }
  Mutator& mutator() { return *mutator_; }
  Controller& controller() { return *controller_; }

  void set_root(VertexId root) { controller_->set_root(root); }

  // Start the PE threads (idempotent).
  void start();
  // Stop the PE threads; pending work is abandoned.
  void stop();

  // Block until no task is pending or executing anywhere.
  void wait_quiescent();
  // Block until the controller finishes the in-progress cycle.
  void wait_cycle_done();

  // Inject an inert reduction task into its destination pool (workload for
  // M_T / classification benches).
  void inject(Task t);

  // ---- TaskSink (thread-safe) ----
  void spawn(Task t) override;

  // ---- EngineHooks ----
  void collect_task_refs(std::vector<TaskRef>& out) override;
  std::size_t expunge_tasks(
      const std::function<bool(const Task&)>& kill) override;
  std::size_t reprioritize_tasks(
      const std::function<std::uint8_t(const Task&)>& prio) override;
  void quiesce_begin() override;
  void quiesce_end() override;

  // Execute `fn` with the listed vertices' locks held (sorted order) —
  // the atomic section for a multi-vertex mutation.
  void atomically(std::initializer_list<VertexId> vs,
                  const std::function<void()>& fn);

  ThreadEngineStats stats() const;
  // Per-PE counters and histograms.
  obs::MetricsRegistry& metrics_registry() { return reg_; }
  const obs::MetricsRegistry& metrics_registry() const { return reg_; }

  // Start capturing a structured trace (ring buffer; oldest dropped).
  // Timestamps are µs since engine construction. Returns nullptr when
  // tracing is compiled out (-DDGR_TRACE=OFF). Call before start().
  obs::TraceBuffer* enable_trace(std::size_t capacity = 1 << 14);
  obs::TraceBuffer* trace() { return trace_.get(); }

 private:
  friend class VertexLocks;

  void pe_loop(PeId pe);
  void execute(PeId pe, const Task& t);
  std::uint32_t lock_index(VertexId v) const {
    return static_cast<std::uint32_t>(VertexIdHash{}(v) % locks_.size());
  }
  void lock_vertex(VertexId v);
  void unlock_vertex(VertexId v);

  Graph& g_;
  std::unique_ptr<Marker> marker_;
  std::unique_ptr<Mutator> mutator_;
  std::unique_ptr<Controller> controller_;

  std::vector<std::unique_ptr<Mailbox>> mail_;
  std::vector<std::unique_ptr<TaskPool>> pools_;  // inert reduction tasks
  std::vector<std::unique_ptr<std::mutex>> pool_mu_;

  std::vector<std::atomic_flag> locks_;

  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> outstanding_{0};  // spawned, not yet executed

  // Quiesce protocol: a pauser raises `pause_`; every other PE thread parks
  // and reports in via `parked_`.
  std::atomic<bool> pause_{false};
  std::atomic<std::uint32_t> parked_{0};
  std::atomic_flag restructure_claim_ = ATOMIC_FLAG_INIT;

  obs::MetricsRegistry reg_;
  std::unique_ptr<obs::TraceBuffer> trace_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace dgr
