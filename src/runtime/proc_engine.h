// Multi-process engine: a controller plus real worker processes over sockets.
//
// ProcEngine realizes the paper's machine across OS process boundaries. The
// controller owns the authoritative graph, the Controller/Marker pair that
// sequences cycles, and the restructuring phase; marking execution is farmed
// out to `workers` dgr_worker processes, each owning a contiguous block of
// PEs. Per marking plane the controller ships each worker a partition
// snapshot (kHandoff), opens the plane at an absolute epoch (kPlaneBegin),
// and seeds the wave (kSeed). Workers exchange cross-partition marks as
// kData frames relayed by the controller's SocketHub; the worker observing
// the rootpar termination return reports kPlaneDone, the controller
// broadcasts kQuiesce, merges every worker's kMarkReport into the
// authoritative graph, and only then lets the cycle advance — so the
// restructuring phase (sweep / expunge / reprioritize / deadlock report)
// runs centrally on merged marks, per the paper's "we concentrate solely
// upon the mark phase". docs/CLUSTER.md is the architecture guide.
//
// Mutation discipline: mutators run controller-side between marking cycles
// (atomically() is a plain serialized section; there are no PE threads to
// pause). Mid-wave cooperation (Fig 4-2's splice) is a shared-memory
// technique and does not transfer to partition replicas; the rescue-wave
// path (Marker::rescue + kRescueBegin) is the supported way marks chase
// references acquired while a wave runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/cooperation.h"
#include "core/marker.h"
#include "net/clock_sync.h"
#include "net/proto.h"
#include "net/socket_hub.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/pool.h"
#include "runtime/thread_engine.h"  // AuditOptions / AuditStats

namespace dgr {

struct ProcOptions {
  std::uint32_t workers = 2;  // clamped to num_pes
  bool tcp = false;           // default: Unix-domain socket
  // Path to the dgr_worker binary; empty falls back to $DGR_WORKER_BIN,
  // then to "dgr_worker" on PATH.
  std::string worker_bin;
  int register_timeout_ms = 10000;
  // Worker-side message plane (worker↔worker marks). Faults imply the
  // reliable channel, mirroring NetOptions::enabled().
  FaultSpec faults;
  std::uint64_t fault_seed = 1;
  bool force_reliable = false;
  ReliableOptions reliable;
  bool use_channel() const { return faults.any() || force_reliable; }
};

struct ProcEngineStats {
  std::uint64_t planes_started = 0;   // kPlaneBegin broadcasts
  std::uint64_t handoffs_sent = 0;    // kHandoff frames
  std::uint64_t handoff_bytes = 0;    // their payload bytes
  std::uint64_t seeds_sent = 0;       // kSeed frames
  std::uint64_t rescue_begins = 0;    // kRescueBegin broadcasts
  std::uint64_t reports_merged = 0;   // kMarkReports folded into the graph
  TransportStats transport;           // hub-side socket counters
};

class ProcEngine final : public TaskSink, public EngineHooks {
 public:
  explicit ProcEngine(Graph& g, ProcOptions opt = {});
  ~ProcEngine() override;

  ProcEngine(const ProcEngine&) = delete;
  ProcEngine& operator=(const ProcEngine&) = delete;

  Graph& graph() { return g_; }
  Marker& marker() { return *marker_; }
  Mutator& mutator() { return *mutator_; }
  Controller& controller() { return *controller_; }

  void set_root(VertexId root) { controller_->set_root(root); }

  // Bind the hub, fork+exec the workers, wait for registration. Aborts
  // (DGR_CHECK) when a worker cannot be launched or registered in time.
  void start();
  // Broadcast kShutdown, reap the children (SIGKILL stragglers), close.
  void stop();

  // Block until the controller is idle (no cycle in progress).
  void wait_quiescent();
  void wait_cycle_done();

  // A worker process died mid-run (the cycle cannot complete).
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  // Inject an inert reduction task into its destination pool.
  void inject(Task t);

  // ---- TaskSink (controller-side marker: wave seeds only) ----
  void spawn(Task t) override;

  // ---- EngineHooks ----
  void collect_task_refs(std::vector<TaskRef>& out) override;
  std::size_t expunge_tasks(
      const std::function<bool(const Task&)>& kill) override;
  std::size_t reprioritize_tasks(
      const std::function<std::uint8_t(const Task&)>& prio) override;
  void quiesce_begin() override;
  void on_cycle_complete(const CycleResult& res) override;
  void on_plane_begin(Plane p) override;

  // Serialized mutation section (vertex list unused: no concurrent marking
  // touches the controller graph — the mutex excludes report merges).
  void atomically(std::initializer_list<VertexId> vs,
                  const std::function<void()>& fn);

  // Safe-point auditing inside the restructuring window (same checks as
  // ThreadEngine: §5.4.1 invariants + Property 1 accounting + swept==GAR').
  void enable_audit(AuditOptions opt = {});
  const AuditStats& audit_stats() const { return audit_stats_; }

  // Controller-side trace ring. Call BEFORE start(): the same call arms
  // worker-side capture (each worker's kRegisterAck config carries
  // trace_enabled + capacity, and its ring ships back at every quiesce).
  // Returns nullptr under -DDGR_TRACE=OFF (workers then ship counters only).
  obs::TraceBuffer* enable_trace(std::size_t capacity = 1 << 14);
  obs::TraceBuffer* trace() { return trace_.get(); }

  // ---- Cluster telemetry plane (docs/OBSERVABILITY.md) ----
  // Merged metrics registry: every worker's counter/histogram deltas folded
  // into per-PE slots, plus controller-side handoff/telemetry accounting.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  // MetricsRegistry::to_json() extended with a "workers":[...] rollup —
  // per-worker marks, remote traffic, retransmits, handoff/relay bytes,
  // telemetry accounting and the clock-offset estimate. dgr_analyze's
  // cluster section consumes exactly this shape.
  std::string cluster_metrics_json() const;
  // Each worker's shipped trace events with timestamps rebased onto the
  // controller clock (net/clock_sync.h). Pair with trace()->snapshot() and
  // obs::to_chrome_trace_cluster for the single merged timeline.
  std::vector<std::vector<obs::TraceEvent>> worker_traces() const;
  // The worker-minus-controller clock offset estimate (µs) and the RTT of
  // the probe it came from; offset 0 until at least one echo arrived.
  std::int64_t clock_offset_us(std::uint32_t worker) const;
  std::uint64_t clock_rtt_us(std::uint32_t worker) const;
  // Echo exchanges folded into the estimate so far (0 = no echo yet).
  std::uint64_t clock_samples(std::uint32_t worker) const;

  ProcEngineStats stats() const;
  std::uint32_t num_workers() const { return num_workers_; }
  // The hub's listen address (workers' --connect argument).
  std::string address() const { return hub_.address(); }

 private:
  struct WorkerSlot {
    PeId pe_begin = 0;
    std::uint32_t pe_count = 0;
    long pid = -1;
  };

  WorkerConfig make_config(std::uint32_t worker) const;
  void spawn_worker(std::uint32_t worker);
  void handle_control(std::uint32_t worker, NetFrame f);
  // One Cristian probe (kClockProbe); the echo feeds clock_[worker]. Sent to
  // every worker after registration and again at each plane begin, so the
  // estimate tightens as the run warms up (min-RTT sample wins).
  void send_clock_probe(std::uint32_t worker);
  void maybe_audit();
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  Graph& g_;
  ProcOptions opt_;
  std::uint32_t num_workers_;
  std::vector<WorkerSlot> slots_;
  std::unique_ptr<Marker> marker_;
  std::unique_ptr<Mutator> mutator_;
  std::unique_ptr<Controller> controller_;
  SocketHub hub_;

  // Serializes every control-plane transition: cycle starts (via the hook
  // entry points), report merges, restructuring, mutations, pool access.
  // Recursive because a merged report finishes the plane, which re-enters
  // through on_plane_begin/spawn for the next one.
  mutable std::recursive_mutex mu_;

  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> failed_{false};

  // Plane-begin staging: on_plane_begin ships handoffs pre-epoch-bump; the
  // first seed spawn afterwards broadcasts kPlaneBegin with the bumped
  // epoch, then every seed rides a kSeed frame.
  bool begin_pending_ = false;
  Plane begin_plane_ = Plane::kR;

  // Quiesce merge state for the wave being collected.
  bool collecting_ = false;
  Plane collect_plane_ = Plane::kR;
  std::uint64_t collect_epoch_ = 0;
  std::uint32_t reports_in_ = 0;
  MarkStats collect_stats_;

  std::vector<std::unique_ptr<TaskPool>> pools_;

  ProcEngineStats stats_;
  AuditOptions audit_opt_;
  bool audit_enabled_ = false;
  AuditStats audit_stats_;
  bool audit_swept_check_ = false;
  std::size_t audit_expected_gar_ = 0;

  std::unique_ptr<obs::TraceBuffer> trace_;
  // Worker-side capture request recorded by enable_trace, read by
  // make_config when registration acks go out.
  bool worker_trace_ = false;
  std::uint32_t trace_capacity_ = 1u << 14;

  // ---- Cluster telemetry plane ----
  // Merged per-PE registry: worker deltas fold in at quiesce; the controller
  // charges its own handoff/telemetry accounting to each worker's first
  // owned PE. Always on (counters are cheap); traces stay opt-in.
  obs::MetricsRegistry metrics_;
  std::vector<ClockSync> clock_;  // per-worker offset estimators
  std::uint32_t clock_seq_ = 0;
  struct WorkerTele {
    std::uint64_t telemetry_msgs = 0;
    std::uint64_t ring_dropped = 0;
    std::uint64_t events_omitted = 0;
  };
  std::vector<WorkerTele> tele_;
  // Shipped worker events, still on each worker's own clock; rebased copies
  // come out of worker_traces().
  std::vector<std::vector<obs::TraceEvent>> worker_events_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace dgr
