// Multi-process engine: a controller plus real worker processes over sockets.
//
// ProcEngine realizes the paper's machine across OS process boundaries. The
// controller owns the authoritative graph, the Controller/Marker pair that
// sequences cycles, and the restructuring phase; marking execution is farmed
// out to `workers` dgr_worker processes, each owning a contiguous block of
// PEs. Per marking plane the controller ships each worker a partition
// snapshot (kHandoff), opens the plane at an absolute epoch (kPlaneBegin),
// and seeds the wave (kSeed). Workers exchange cross-partition marks as
// kData frames relayed by the controller's SocketHub; the worker observing
// the rootpar termination return reports kPlaneDone, the controller
// broadcasts kQuiesce, merges every worker's kMarkReport into the
// authoritative graph, and only then lets the cycle advance — so the
// restructuring phase (sweep / expunge / reprioritize / deadlock report)
// runs centrally on merged marks, per the paper's "we concentrate solely
// upon the mark phase". docs/CLUSTER.md is the architecture guide.
//
// Mutation discipline: mutators run controller-side between marking cycles
// (atomically() is a plain serialized section; there are no PE threads to
// pause). Mid-wave cooperation (Fig 4-2's splice) is a shared-memory
// technique and does not transfer to partition replicas; the rescue-wave
// path (Marker::rescue + kRescueBegin) is the supported way marks chase
// references acquired while a wave runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/controller.h"
#include "core/cooperation.h"
#include "core/marker.h"
#include "net/clock_sync.h"
#include "net/proto.h"
#include "net/socket_hub.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/pool.h"
#include "runtime/thread_engine.h"  // AuditOptions / AuditStats

namespace dgr {

struct ProcOptions {
  std::uint32_t workers = 2;  // clamped to num_pes
  bool tcp = false;           // default: Unix-domain socket
  // Path to the dgr_worker binary; empty falls back to $DGR_WORKER_BIN,
  // then to "dgr_worker" on PATH.
  std::string worker_bin;
  int register_timeout_ms = 10000;
  // Every Nth handoff per worker is a full snapshot even when a delta would
  // do — bounds how long a silent divergence could go unnoticed between
  // checksum handshakes. 0 disables the periodic fallback.
  std::uint32_t full_handoff_period = 64;
  // Quiesce-barrier watchdog: when a cycle makes no control-plane progress
  // for this long, silent workers are probed and — after one more window —
  // dropped (they surface as worker_lost instead of hanging the barrier).
  // 0 disables the watchdog.
  int barrier_timeout_ms = 10000;
  // Worker-side message plane (worker↔worker marks). Faults imply the
  // reliable channel, mirroring NetOptions::enabled().
  FaultSpec faults;
  std::uint64_t fault_seed = 1;
  bool force_reliable = false;
  ReliableOptions reliable;
  bool use_channel() const { return faults.any() || force_reliable; }
};

struct ProcEngineStats {
  std::uint64_t planes_started = 0;   // kPlaneBegin broadcasts
  std::uint64_t handoffs_sent = 0;    // kHandoff frames
  std::uint64_t handoff_bytes = 0;    // their payload bytes (full + delta)
  std::uint64_t handoffs_full = 0;    // full-snapshot kHandoff frames
  std::uint64_t handoffs_delta = 0;   // differential kHandoff frames
  std::uint64_t handoff_full_bytes = 0;
  std::uint64_t handoff_delta_bytes = 0;
  std::uint64_t seeds_sent = 0;       // kSeed frames
  std::uint64_t rescue_begins = 0;    // kRescueBegin broadcasts
  std::uint64_t reports_merged = 0;   // kMarkReports folded into the graph
  // Dynamic membership (docs/CLUSTER.md "Membership and failure model").
  std::uint64_t workers_lost = 0;        // processes declared dead
  std::uint64_t partitions_reassigned = 0;  // PEs that changed owner
  std::uint64_t handoff_resyncs = 0;     // checksum-forced full resyncs
  std::uint64_t recoveries = 0;          // aborted + restarted cycles
  TransportStats transport;           // hub-side socket counters
};

class ProcEngine final : public TaskSink, public EngineHooks {
 public:
  explicit ProcEngine(Graph& g, ProcOptions opt = {});
  ~ProcEngine() override;

  ProcEngine(const ProcEngine&) = delete;
  ProcEngine& operator=(const ProcEngine&) = delete;

  Graph& graph() { return g_; }
  Marker& marker() { return *marker_; }
  Mutator& mutator() { return *mutator_; }
  Controller& controller() { return *controller_; }

  void set_root(VertexId root) { controller_->set_root(root); }

  // Bind the hub, fork+exec the workers, wait for registration. Aborts
  // (DGR_CHECK) when a worker cannot be launched or registered in time.
  void start();
  // Broadcast kShutdown, reap the children (SIGKILL stragglers), close.
  void stop();

  // Start a marking cycle under the engine lock. Use this instead of
  // controller().start_cycle() in multi-process runs: it excludes the
  // membership-recovery path (a worker-lost callback on a hub reader thread)
  // from racing the cycle's task-root construction.
  void start_cycle(const CycleOptions& opt = {});

  // Block until the controller is idle (no cycle in progress) and no
  // membership recovery is mid-flight.
  void wait_quiescent();
  void wait_cycle_done();

  // Every worker process died (no survivors — the run cannot continue).
  // A single lost worker no longer fails the run: the engine repartitions
  // its PEs onto the survivors and resumes from the last completed quiesce.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  // ---- Dynamic membership introspection ----
  // Current membership generation (0 until the first loss/resync fence).
  std::uint16_t membership_gen() const;
  std::uint32_t workers_live() const;
  bool worker_alive(std::uint32_t worker) const;
  // The worker's OS pid (test hook: chaos legs SIGKILL it), -1 once reaped.
  long worker_pid(std::uint32_t worker) const;

  // Inject an inert reduction task into its destination pool.
  void inject(Task t);

  // ---- TaskSink (controller-side marker: wave seeds only) ----
  void spawn(Task t) override;

  // ---- EngineHooks ----
  void collect_task_refs(std::vector<TaskRef>& out) override;
  std::size_t expunge_tasks(
      const std::function<bool(const Task&)>& kill) override;
  std::size_t reprioritize_tasks(
      const std::function<std::uint8_t(const Task&)>& prio) override;
  void quiesce_begin() override;
  void on_cycle_complete(const CycleResult& res) override;
  void on_plane_begin(Plane p) override;

  // Serialized mutation section (vertex list unused: no concurrent marking
  // touches the controller graph — the mutex excludes report merges).
  void atomically(std::initializer_list<VertexId> vs,
                  const std::function<void()>& fn);
  void atomically(std::span<const VertexId> vs,
                  const std::function<void()>& fn);

  // Safe-point auditing inside the restructuring window (same checks as
  // ThreadEngine: §5.4.1 invariants + Property 1 accounting + swept==GAR').
  void enable_audit(AuditOptions opt = {});
  const AuditStats& audit_stats() const { return audit_stats_; }

  // Controller-side trace ring. Call BEFORE start(): the same call arms
  // worker-side capture (each worker's kRegisterAck config carries
  // trace_enabled + capacity, and its ring ships back at every quiesce).
  // Returns nullptr under -DDGR_TRACE=OFF (workers then ship counters only).
  obs::TraceBuffer* enable_trace(std::size_t capacity = 1 << 14);
  obs::TraceBuffer* trace() { return trace_.get(); }

  // ---- Cluster telemetry plane (docs/OBSERVABILITY.md) ----
  // Merged metrics registry: every worker's counter/histogram deltas folded
  // into per-PE slots, plus controller-side handoff/telemetry accounting.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  // MetricsRegistry::to_json() extended with a "workers":[...] rollup —
  // per-worker marks, remote traffic, retransmits, handoff/relay bytes,
  // telemetry accounting and the clock-offset estimate. dgr_analyze's
  // cluster section consumes exactly this shape.
  std::string cluster_metrics_json() const;
  // Each worker's shipped trace events with timestamps rebased onto the
  // controller clock (net/clock_sync.h). Pair with trace()->snapshot() and
  // obs::to_chrome_trace_cluster for the single merged timeline.
  std::vector<std::vector<obs::TraceEvent>> worker_traces() const;
  // The worker-minus-controller clock offset estimate (µs) and the RTT of
  // the probe it came from; offset 0 until at least one echo arrived.
  std::int64_t clock_offset_us(std::uint32_t worker) const;
  std::uint64_t clock_rtt_us(std::uint32_t worker) const;
  // Echo exchanges folded into the estimate so far (0 = no echo yet).
  std::uint64_t clock_samples(std::uint32_t worker) const;

  ProcEngineStats stats() const;
  std::uint32_t num_workers() const { return num_workers_; }
  // The hub's listen address (workers' --connect argument).
  std::string address() const { return hub_.address(); }

 private:
  struct WorkerSlot {
    PeId pe_begin = 0;            // initial contiguous block (registration)
    std::uint32_t pe_count = 0;
    std::vector<PeId> pes;        // current owned set; rewritten on recovery
    bool alive = true;
    long pid = -1;
    // Per-worker handoff accounting (survives repartitions, unlike the
    // per-PE registry attribution).
    std::uint64_t handoff_bytes = 0;
    std::uint64_t handoff_full_bytes = 0;
    std::uint64_t handoff_delta_bytes = 0;
  };

  WorkerConfig make_config(std::uint32_t worker) const;
  void spawn_worker(std::uint32_t worker);
  void handle_control(std::uint32_t worker, NetFrame f);
  // Membership recovery (all under mu_). on_worker_lost runs on the dead
  // connection's hub reader thread; fence_and_restart is shared with the
  // checksum-resync path (which skips the repartition).
  void on_worker_lost(std::uint32_t worker);
  void repartition_onto_survivors();
  void fence_and_restart();
  std::uint32_t live_count_locked() const;
  PeId home_pe(std::uint32_t worker) const {
    return slots_[worker].pes.empty() ? slots_[worker].pe_begin
                                      : slots_[worker].pes.front();
  }
  void watchdog_loop();
  void touch_progress() {
    last_progress_us_.store(now_us(), std::memory_order_release);
  }
  // One Cristian probe (kClockProbe); the echo feeds clock_[worker]. Sent to
  // every worker after registration and again at each plane begin, so the
  // estimate tightens as the run warms up (min-RTT sample wins).
  void send_clock_probe(std::uint32_t worker);
  void maybe_audit();
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  Graph& g_;
  ProcOptions opt_;
  std::uint32_t num_workers_;
  std::vector<WorkerSlot> slots_;
  std::unique_ptr<Marker> marker_;
  std::unique_ptr<Mutator> mutator_;
  std::unique_ptr<Controller> controller_;
  SocketHub hub_;

  // Serializes every control-plane transition: cycle starts (via the hook
  // entry points), report merges, restructuring, mutations, pool access.
  // Recursive because a merged report finishes the plane, which re-enters
  // through on_plane_begin/spawn for the next one.
  mutable std::recursive_mutex mu_;

  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> failed_{false};

  // Plane-begin staging: on_plane_begin ships handoffs pre-epoch-bump; the
  // first seed spawn afterwards broadcasts kPlaneBegin with the bumped
  // epoch, then every seed rides a kSeed frame.
  bool begin_pending_ = false;
  Plane begin_plane_ = Plane::kR;

  // Quiesce merge state for the wave being collected.
  bool collecting_ = false;
  Plane collect_plane_ = Plane::kR;
  std::uint64_t collect_epoch_ = 0;
  std::uint32_t reports_in_ = 0;
  std::vector<std::uint8_t> reported_;  // per-worker dedup for this wave
  MarkStats collect_stats_;

  // ---- Dynamic membership ----
  // Generation is bumped (and fenced via kEpochFence) whenever membership
  // changes; every outgoing frame is stamped with it and workers void any
  // kData/kSeed carrying a stale one. Guarded by mu_ like the rest of the
  // control plane; dead_mask_ mirrors slot liveness for the registration
  // policy, which runs under the hub lock only (lock order: mu_ → hub).
  std::uint16_t gen_ = 0;
  std::atomic<std::uint64_t> dead_mask_{0};
  std::atomic<bool> recovering_{false};

  // ---- Differential handoffs ----
  HandoffTracker tracker_;
  std::vector<std::uint64_t> sent_seq_;   // last handoff seq shipped per worker
  std::vector<std::uint64_t> acked_seq_;  // last seq checksum-acked per worker
  std::vector<std::uint8_t> force_full_;  // next handoff must be a snapshot
  std::uint64_t handoff_count_ = 0;       // plane-begins, for the periodic full

  // ---- Quiesce-barrier watchdog ----
  // Two-deadline protocol: a stall first sends clock probes (cheap liveness
  // pings) and snapshots per-worker echo counts; workers that neither echo
  // nor report by the second deadline are dropped. probing_ survives progress
  // touches so one chatty worker cannot mask another's death.
  std::thread watchdog_;
  std::atomic<std::uint64_t> last_progress_us_{0};
  bool probing_ = false;                     // guarded by mu_
  std::vector<std::uint64_t> probe_snapshot_;  // clock samples at probe time
  std::uint64_t probe_deadline_us_ = 0;

  std::vector<std::unique_ptr<TaskPool>> pools_;

  ProcEngineStats stats_;
  AuditOptions audit_opt_;
  bool audit_enabled_ = false;
  AuditStats audit_stats_;
  bool audit_swept_check_ = false;
  std::size_t audit_expected_gar_ = 0;

  std::unique_ptr<obs::TraceBuffer> trace_;
  // Worker-side capture request recorded by enable_trace, read by
  // make_config when registration acks go out.
  bool worker_trace_ = false;
  std::uint32_t trace_capacity_ = 1u << 14;

  // ---- Cluster telemetry plane ----
  // Merged per-PE registry: worker deltas fold in at quiesce; the controller
  // charges its own handoff/telemetry accounting to each worker's first
  // owned PE. Always on (counters are cheap); traces stay opt-in.
  obs::MetricsRegistry metrics_;
  std::vector<ClockSync> clock_;  // per-worker offset estimators
  std::uint32_t clock_seq_ = 0;
  struct WorkerTele {
    std::uint64_t telemetry_msgs = 0;
    std::uint64_t ring_dropped = 0;
    std::uint64_t events_omitted = 0;
  };
  std::vector<WorkerTele> tele_;
  // Shipped worker events, still on each worker's own clock; rebased copies
  // come out of worker_traces().
  std::vector<std::vector<obs::TraceEvent>> worker_events_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace dgr
