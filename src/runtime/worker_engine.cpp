#include "runtime/worker_engine.h"

#include <poll.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/assert.h"
#include "util/log.h"

namespace dgr {

WorkerEngine::WorkerEngine(Socket sock, FrameCodec codec,
                           std::uint32_t worker_index, WorkerConfig cfg)
    : sock_(std::move(sock)),
      codec_(std::move(codec)),
      index_(worker_index),
      cfg_(cfg),
      g_(cfg.num_pes, 1),
      marker_(g_, *this),
      t0_(std::chrono::steady_clock::now()),
      reg_(cfg.num_pes) {
  owned_.assign(cfg_.num_pes, 0);
  for (std::uint32_t pe = cfg_.pe_begin; pe < cfg_.pe_begin + cfg_.pe_count;
       ++pe)
    owned_[pe] = 1;
  rebuild_owned_list();
  if (const char* env = std::getenv("DGR_TEST_CORRUPT_HANDOFF")) {
    unsigned w = 0;
    unsigned long long n = 0;
    if (std::sscanf(env, "%u:%llu", &w, &n) == 2 && w == index_)
      corrupt_after_ = n;
  }
  prev_counters_.resize(cfg_.num_pes);
  for (auto& row : prev_counters_) row.fill(0);
  prev_hists_.resize(static_cast<std::size_t>(cfg_.num_pes) * obs::kNumHists);
#if DGR_TRACE_ENABLED
  if (cfg_.trace_enabled) {
    trace_ = std::make_unique<obs::TraceBuffer>(cfg_.trace_capacity);
    trace_->set_clock([this] { return now_us(); });
    marker_.set_trace(trace_.get());
  }
#endif
  // Termination detection runs here when this worker owns the collapsing
  // root: the rootpar return raises done, and the controller learns of it
  // through a kPlaneDone frame (never through a local callback chain).
  marker_.set_done_callback([this](Plane p) {
    NetFrame f;
    f.type = FrameType::kPlaneDone;
    f.src = cfg_.pe_begin;
    f.payload = encode_plane_signal(p, marker_.epoch(p));
    send_frame(f);
  });
  init_message_plane();
}

void WorkerEngine::rebuild_owned_list() {
  owned_list_.clear();
  for (PeId pe = 0; pe < owned_.size(); ++pe)
    if (owned_[pe]) owned_list_.push_back(pe);
}

void WorkerEngine::init_message_plane() {
  fault_.reset();
  chan_.reset();
  if (cfg_.faults.any()) {
    FaultPlaneOptions fopt;
    fopt.seed = cfg_.fault_seed;
    fopt.spec = cfg_.faults;
    fault_ = std::make_unique<FaultPlane>(
        cfg_.num_pes, fopt,
        [this](PeId src, PeId dst, FaultPlane::Bytes msg) {
          send_data(src, dst, std::move(msg));
        });
    fault_->set_inject_hook(
        [this](FaultKind k, PeId src, PeId, std::size_t bytes) {
          static constexpr obs::Counter kFaultCounter[kNumFaultKinds] = {
              obs::Counter::kMsgDroppedInjected,
              obs::Counter::kMsgDupInjected,
              obs::Counter::kMsgReorderedInjected,
              obs::Counter::kMsgTruncatedInjected,
          };
          reg_.add(src, kFaultCounter[static_cast<std::size_t>(k)]);
          DGR_TRACE_EVENT(trace_.get(), obs::EventType::kFaultInjected,
                          Plane::kR, static_cast<std::uint16_t>(src), 0,
                          static_cast<std::uint64_t>(k), bytes);
        });
  }
  if (cfg_.use_channel) {
    chan_ = std::make_unique<ChannelManager>(
        cfg_.num_pes, cfg_.reliable,
        [this](PeId src, PeId dst, ChannelManager::Bytes frame) {
          if (fault_) {
            fault_->send(src, dst, std::move(frame));
          } else {
            send_data(src, dst, std::move(frame));
          }
        });
    ChannelManager::Hooks hooks;
    hooks.on_retransmit = [this](PeId src, PeId, std::uint64_t seq,
                                 std::uint32_t attempt) {
      reg_.add(src, obs::Counter::kMsgRetransmit);
      DGR_TRACE_EVENT(trace_.get(), obs::EventType::kMsgRetransmit, Plane::kR,
                      static_cast<std::uint16_t>(src), 0, seq, attempt);
    };
    hooks.on_dup_suppressed = [this](PeId dst, PeId, std::uint64_t seq) {
      reg_.add(dst, obs::Counter::kMsgDupSuppressed);
      DGR_TRACE_EVENT(trace_.get(), obs::EventType::kMsgDupSuppressed,
                      Plane::kR, static_cast<std::uint16_t>(dst), 0, seq);
    };
    hooks.on_decode_error = [this](PeId pe) {
      reg_.add(pe, obs::Counter::kMsgDecodeError);
    };
    hooks.on_rtt = [this](PeId src, double rtt_us) {
      reg_.observe(src, obs::Hist::kChannelRtt, rtt_us);
    };
    hooks.on_batch_flush = [this](PeId src, PeId, std::size_t payloads,
                                  std::size_t frame_bytes) {
      reg_.add(src, obs::Counter::kBatchFlush);
      reg_.add(src, obs::Counter::kMsgBatched, payloads);
      if (cfg_.reliable.batch_bytes > 0)
        reg_.observe(src, obs::Hist::kBatchFillPct,
                     100.0 * static_cast<double>(frame_bytes) /
                         static_cast<double>(cfg_.reliable.batch_bytes));
      DGR_TRACE_EVENT(trace_.get(), obs::EventType::kBatchFlush, Plane::kR,
                      static_cast<std::uint16_t>(src), 0,
                      static_cast<std::uint64_t>(payloads),
                      static_cast<std::uint64_t>(frame_bytes));
    };
    chan_->set_hooks(std::move(hooks));
  }
}

void WorkerEngine::send_frame(const NetFrame& f) {
  const std::vector<std::uint8_t> wire = encode_frame(f);
  if (!sock_.write_all(wire.data(), wire.size())) fatal_ = true;
}

void WorkerEngine::send_data(PeId src, PeId dst,
                             std::vector<std::uint8_t> bytes) {
  NetFrame f;
  f.type = FrameType::kData;
  f.gen = gen_;  // receivers void anything from before their last fence
  f.src = src;
  f.dst = dst;
  f.payload = std::move(bytes);
  send_frame(f);
}

void WorkerEngine::spawn(Task t) {
  DGR_CHECK_MSG(task_is_marking(t.kind),
                "worker replicas execute marking tasks only");
  const PeId dst = t.d.pe;
  if (owns(dst)) {
    reg_.add(cur_pe_, obs::Counter::kLocalMessages);
    q_.push_back(t);
    return;
  }
  std::vector<std::uint8_t> bytes = encode_task(t);
  reg_.add(cur_pe_, obs::Counter::kRemoteMessages);
  reg_.add(cur_pe_, obs::Counter::kBytesSent, bytes.size());
  if (chan_) {
    chan_->send(cur_pe_, dst, std::move(bytes), now_us());
  } else {
    send_data(cur_pe_, dst, std::move(bytes));
  }
}

void WorkerEngine::exec_local(Task t) {
  q_.push_back(std::move(t));
  drain_local();
}

void WorkerEngine::drain_local() {
  while (!q_.empty()) {
    const Task t = q_.front();
    q_.pop_front();
    cur_pe_ = t.d.pe;
    reg_.observe(t.d.pe, obs::Hist::kMarkQueueDepth,
                 static_cast<double>(q_.size() + 1));
    reg_.add(t.d.pe, t.kind == TaskKind::kMark ? obs::Counter::kMarkTasks
                                               : obs::Counter::kReturnTasks);
    marker_.exec(t);
  }
}

void WorkerEngine::service_channel() {
  if (!chan_) return;
  const std::uint64_t now = now_us();
  for (PeId pe : owned_list_) {
    chan_->flush(pe, now);
    chan_->service(pe, now);
  }
}

void WorkerEngine::send_telemetry(Plane plane, std::uint64_t epoch) {
  TelemetryMsg m;
  m.plane = plane;
  m.epoch = epoch;
  m.pe_begin = owned_list_.empty() ? cfg_.pe_begin : owned_list_.front();
  m.pe_count = static_cast<std::uint32_t>(owned_list_.size());
  // Deltas are cut over every PE this worker has ever touched, not just the
  // currently-owned set: a repartition can move a PE away between quiesces,
  // and its residual counts must still ship once. Baselines are full-width.
  for (std::uint32_t pe = 0; pe < cfg_.num_pes; ++pe) {
    for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
      const std::uint64_t cur = reg_.get(pe, static_cast<obs::Counter>(c));
      const std::uint64_t delta = cur - prev_counters_[pe][c];
      if (!delta) continue;
      m.counters.push_back({pe, static_cast<std::uint8_t>(c), delta});
      prev_counters_[pe][c] = cur;
    }
    for (std::size_t h = 0; h < obs::kNumHists; ++h) {
      Histogram cur = reg_.hist(pe, static_cast<obs::Hist>(h));
      Histogram& prev = prev_hists_[pe * obs::kNumHists + h];
      TelemetryMsg::HistDelta hd;
      hd.pe = pe;
      hd.hist = static_cast<std::uint8_t>(h);
      hd.max = cur.max_value();
      for (std::size_t b = 0; b < cur.num_buckets(); ++b) {
        const std::uint64_t delta = cur.bucket_count(b) - prev.bucket_count(b);
        if (delta)
          hd.buckets.emplace_back(static_cast<std::uint32_t>(b), delta);
      }
      prev = std::move(cur);
      if (!hd.buckets.empty()) m.hists.push_back(std::move(hd));
    }
  }
#if DGR_TRACE_ENABLED
  if (trace_) {
    // Stamp the lane once per quiesce even when the wave was tiny (fewer
    // marks than the marker's wave-front sampling period): every worker then
    // shows up in the merged timeline with its cumulative mark progress.
    trace_->emit(obs::EventType::kWaveFront, plane,
                 static_cast<std::uint16_t>(cfg_.pe_begin), 0,
                 reg_.get(cfg_.pe_begin, obs::Counter::kMarkTasks));
    std::vector<obs::TraceEvent> ev = trace_->snapshot();
    m.ring_dropped = trace_->dropped();
    trace_->clear();
    if (ev.size() > kMaxTelemetryEvents) {
      m.events_omitted = ev.size() - kMaxTelemetryEvents;
      ev.resize(kMaxTelemetryEvents);
    }
    m.events = std::move(ev);
  }
#endif
  NetFrame f;
  f.type = FrameType::kTelemetry;
  f.src = cfg_.pe_begin;
  f.payload = encode_telemetry(m);
  send_frame(f);
}

void WorkerEngine::send_mark_report(Plane plane, std::uint64_t epoch) {
  // Order matters: release everything the fault plane is holding (all
  // duplicates or stale by the wave-termination argument in DESIGN.md §7),
  // flush channel batches, then report. The telemetry delta goes out after
  // the drains (so it covers the whole interval) but before the report —
  // same FIFO connection, so the controller has merged this interval's
  // telemetry before the wave's final report lets the cycle advance. The
  // report is the controller's signal that this worker's partition state is
  // final for the wave.
  if (fault_) fault_->flush();
  service_channel();
  drain_local();
  send_telemetry(plane, epoch);
  NetFrame f;
  f.type = FrameType::kMarkReport;
  f.src = cfg_.pe_begin;
  // A desynced replica skipped this wave's begin, so no mark carries the
  // wave's epoch — the report is naturally empty, but the stale wave
  // counters must not ride along with it.
  f.payload = encode_mark_report(g_, plane, epoch, owned_list_,
                                 desync_ ? MarkStats{} : marker_.stats(plane));
  send_frame(f);
}

void WorkerEngine::send_handoff_ack(std::uint64_t seq, bool ok) {
  HandoffAckMsg ack;
  ack.seq = seq;
  ack.ok = ok;
  NetFrame f;
  f.type = FrameType::kHandoffAck;
  f.src = cfg_.pe_begin;
  f.payload = encode_handoff_ack(ack);
  send_frame(f);
}

bool WorkerEngine::handle_frame(NetFrame f) {
  switch (f.type) {
    case FrameType::kHandoff: {
      HandoffMsg msg;
      if (!apply_handoff(f.payload, g_, owned_, msg)) {
        // A delta that disagrees with the replica's shape (or a torn
        // payload): nack and wait for the fence + full resync rather than
        // dying — the controller treats the nack exactly like a checksum
        // mismatch.
        DGR_ERROR("worker %u: handoff %llu failed to apply, requesting "
                  "resync",
                  index_, (unsigned long long)msg.seq);
        desync_ = true;
        send_handoff_ack(msg.seq, false);
        return true;
      }
      rebuild_owned_list();
      ++applies_;
      if (corrupt_after_ != 0 && applies_ == corrupt_after_) {
        // Test hook: structurally corrupt one owned live vertex so the
        // checksum below disagrees — the deterministic divergence the
        // resync tests drive.
        for (PeId pe : owned_list_) {
          Store& st = g_.store(pe);
          bool done = false;
          for (std::uint32_t i = 0; i < st.capacity() && !done; ++i) {
            if (!st.at(i).live) continue;
            st.at(i).aux = !st.at(i).aux;
            done = true;
          }
          if (done) break;
        }
      }
      const bool ok = handoff_checksum(g_, owned_) == msg.checksum;
      if (!ok) {
        DGR_ERROR("worker %u: handoff %llu checksum mismatch (replica "
                  "diverged), requesting resync",
                  index_, (unsigned long long)msg.seq);
      }
      desync_ = !ok;
      send_handoff_ack(msg.seq, ok);
      return true;
    }
    case FrameType::kEpochFence: {
      // Membership changed: adopt the new generation (voiding every kData /
      // kSeed still in flight from before the fence), abandon whatever wave
      // was running, and reset the worker↔worker message plane — all
      // survivors do the same on their copy of this fence, so sequence
      // spaces restart consistently cluster-wide.
      gen_ = f.gen;
      marker_.abort(Plane::kR);
      marker_.abort(Plane::kT);
      q_.clear();
      init_message_plane();
      return true;
    }
    case FrameType::kPlaneBegin: {
      if (desync_) return true;  // resync pending; skip the wave
      Plane plane;
      std::uint64_t epoch = 0;
      if (!decode_plane_signal(f.payload, plane, epoch)) {
        fatal_ = true;
        return false;
      }
      marker_.begin_remote(plane, epoch);
      return true;
    }
    case FrameType::kRescueBegin: {
      if (desync_) return true;
      Plane plane;
      std::uint64_t epoch = 0;
      if (!apply_rescue_begin(f.payload, g_, plane, epoch)) {
        fatal_ = true;
        return false;
      }
      marker_.reopen_remote(plane);
      return true;
    }
    case FrameType::kSeed: {
      if (desync_ || f.gen != gen_) return true;  // pre-fence traffic: void
      exec_local(decode_task(f.payload));
      return true;
    }
    case FrameType::kData: {
      if (desync_ || f.gen != gen_) return true;  // pre-fence traffic: void
      if (chan_) {
        for (auto& payload : chan_->on_frame(f.dst, f.payload, now_us())) {
          const std::optional<Task> t = try_decode_task(payload);
          if (t) exec_local(*t);
        }
      } else {
        exec_local(decode_task(f.payload));
      }
      return true;
    }
    case FrameType::kQuiesce: {
      Plane plane;
      std::uint64_t epoch = 0;
      if (!decode_plane_signal(f.payload, plane, epoch)) {
        fatal_ = true;
        return false;
      }
      send_mark_report(plane, epoch);
      return true;
    }
    case FrameType::kClockProbe: {
      // Echo immediately: every µs between the controller's send and this
      // reply inflates the RTT bound on the offset estimate.
      ClockProbeMsg probe;
      if (!decode_clock_probe(f.payload, probe)) {
        fatal_ = true;
        return false;
      }
      ClockEchoMsg echo;
      echo.seq = probe.seq;
      echo.t_controller_us = probe.t_controller_us;
      echo.t_worker_us = now_us();
      NetFrame reply;
      reply.type = FrameType::kClockEcho;
      reply.src = cfg_.pe_begin;
      reply.payload = encode_clock_echo(echo);
      send_frame(reply);
      return true;
    }
    case FrameType::kShutdown: {
      clean_shutdown_ = true;
      return false;
    }
    case FrameType::kRegisterAck:
      return true;  // late duplicate; registration already completed
    default:
      DGR_ERROR("worker %u: unexpected frame type %s", index_,
                frame_type_name(f.type));
      fatal_ = true;
      return false;
  }
}

int WorkerEngine::run() {
  std::vector<std::uint8_t> rbuf(1 << 16);
  // Frames may already sit in the codec (bytes that trailed the ack).
  NetFrame f;
  while (codec_.next(f)) {
    if (!handle_frame(std::move(f))) return clean_shutdown_ ? 0 : 1;
    f = NetFrame{};
  }
  for (;;) {
    struct pollfd pfd;
    pfd.fd = sock_.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, /*timeout_ms=*/1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    if (pr > 0) {
      const long n = rbuf.empty() ? 0 : sock_.read_some(rbuf.data(),
                                                        rbuf.size());
      if (n <= 0) return clean_shutdown_ ? 0 : 1;
      codec_.feed(rbuf.data(), static_cast<std::size_t>(n));
      if (codec_.error()) {
        DGR_ERROR("worker %u: stream error: %s", index_,
                  codec_.error_reason());
        return 1;
      }
      while (codec_.next(f)) {
        if (!handle_frame(std::move(f))) return clean_shutdown_ ? 0 : 1;
        if (fatal_) return 1;
        f = NetFrame{};
      }
    }
    if (fatal_) return 1;
    // Idle tick: retransmit timers and deferred acks live here — a dropped
    // worker↔worker frame leaves both sockets silent until an RTO fires.
    service_channel();
  }
}

int worker_main(int argc, char** argv) {
  std::string addr_str;
  std::uint32_t index = kAnyWorkerIndex;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--connect" && i + 1 < argc) {
      addr_str = argv[++i];
    } else if (a == "--index" && i + 1 < argc) {
      index = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: dgr_worker --connect <tcp:H:P|uds:PATH> "
                   "--index <n>\n");
      return 2;
    }
  }
  SocketAddr addr;
  if (!SocketAddr::parse(addr_str, addr)) {
    std::fprintf(stderr, "dgr_worker: bad --connect address '%s'\n",
                 addr_str.c_str());
    return 2;
  }
  Socket sock = socket_connect(addr, /*timeout_ms=*/10000);
  if (!sock.valid()) {
    std::fprintf(stderr, "dgr_worker: cannot reach controller at %s\n",
                 addr.str().c_str());
    return 2;
  }

  // Registration handshake: kRegister must be the first frame on the wire;
  // the reply is kRegisterAck (carrying this worker's config) or kReject.
  RegisterMsg reg;
  reg.worker_index = index;
  NetFrame rf;
  rf.type = FrameType::kRegister;
  rf.src = index;
  rf.payload = encode_register(reg);
  const std::vector<std::uint8_t> wire = encode_frame(rf);
  if (!sock.write_all(wire.data(), wire.size())) return 2;

  FrameCodec codec;
  std::vector<std::uint8_t> buf(1 << 16);
  for (;;) {
    NetFrame f;
    if (codec.next(f)) {
      if (f.type == FrameType::kReject) {
        RejectMsg rej;
        decode_reject(f.payload, rej);
        std::fprintf(stderr, "dgr_worker: registration rejected (%u): %s\n",
                     rej.code, rej.reason.c_str());
        return 3;
      }
      if (f.type != FrameType::kRegisterAck) {
        std::fprintf(stderr, "dgr_worker: expected ack, got %s\n",
                     frame_type_name(f.type));
        return 3;
      }
      RegisterAckMsg ack;
      if (!decode_register_ack(f.payload, ack)) {
        std::fprintf(stderr, "dgr_worker: malformed registration ack\n");
        return 3;
      }
      // Frames behind the ack stay in the codec and are replayed by run().
      WorkerEngine eng(std::move(sock), std::move(codec), ack.worker_index,
                       ack.config);
      return eng.run();
    }
    const long n = sock.read_some(buf.data(), buf.size());
    if (n <= 0) {
      std::fprintf(stderr, "dgr_worker: controller closed during handshake\n");
      return 3;
    }
    codec.feed(buf.data(), static_cast<std::size_t>(n));
    if (codec.error()) {
      std::fprintf(stderr, "dgr_worker: handshake stream error: %s\n",
                   codec.error_reason());
      return 3;
    }
  }
}

}  // namespace dgr
