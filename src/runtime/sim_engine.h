// Deterministic discrete-event simulation engine.
//
// This engine realizes the paper's execution model exactly: autonomous PEs
// with local stores, tasks propagating between vertices as messages, and
// atomic task execution (§2.1). One task executes per step, chosen by a
// seeded pseudo-random scheduler across all PEs and queues — so a seed sweep
// explores the interleavings of the marker, the mutator and message delivery,
// while any single seed is perfectly reproducible.
//
// Marking tasks and reduction tasks live in separate per-PE queues; reduction
// tasks sit in the paper's priority task pools, marking tasks in a FIFO-free
// random-service queue (modelling unordered message delivery).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/compact_collector.h"
#include "core/controller.h"
#include "core/cooperation.h"
#include "core/marker.h"
#include "core/task.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "runtime/pool.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dgr {

namespace obs {
class TraceBuffer;
}

struct SimOptions {
  std::uint64_t seed = 1;
  // Validate marking invariants 1-3 (§5.4.1) every `invariant_period` steps
  // while a plane is actively marking. Expensive: O(V+E) per check.
  bool check_invariants = false;
  std::uint32_t invariant_period = 64;
  // Marking tax: while a marking phase is active, up to this many pending
  // marking tasks are serviced for every reduction task executed. Guarantees
  // the marker outpaces any mutator (each reduction task spawns a bounded
  // number of cooperation marks), so cycles terminate even against runaway
  // allocators — the liveness knob every on-the-fly collector needs. 0
  // disables the tax (pure uniform-random service; benches sweep this).
  std::uint32_t marking_tax = 8;
  // Cross-PE message latency: a task spawned to another PE becomes
  // deliverable only 1 + uniform[0, max_latency) steps later (0 = instant
  // delivery). Local spawns are always instant. Stresses the in-transit
  // accounting: tasks spend real time in flight.
  std::uint32_t max_latency = 0;
};

// Aggregate counter view assembled from the per-PE obs::MetricsRegistry —
// kept as a stable convenience facade for tests, benches and examples; the
// registry itself (metrics_registry()) carries the per-PE breakdowns and
// histograms.
struct SimMetrics {
  std::uint64_t steps = 0;
  std::uint64_t mark_tasks = 0;
  std::uint64_t return_tasks = 0;
  std::uint64_t reduction_tasks = 0;
  std::uint64_t remote_messages = 0;  // spawns crossing a PE boundary
  std::uint64_t local_messages = 0;
  std::uint64_t bytes_sent = 0;  // wire-size estimate of remote messages
};

class SimEngine final : public TaskSink, public EngineHooks {
 public:
  explicit SimEngine(Graph& g, SimOptions opt = {});
  ~SimEngine() override;

  Graph& graph() { return g_; }
  Marker& marker() { return *marker_; }
  Mutator& mutator() { return *mutator_; }
  Controller& controller() { return *controller_; }
  Rng& rng() { return rng_; }
  // Aggregate counter snapshot (see SimMetrics).
  SimMetrics metrics() const;
  // Per-PE counters and histograms.
  obs::MetricsRegistry& metrics_registry() { return reg_; }
  const obs::MetricsRegistry& metrics_registry() const { return reg_; }

  // Start capturing a structured trace of `capacity` events (ring buffer;
  // oldest dropped). Timestamps are sim steps, so traces are byte-identical
  // across runs with the same seed. Returns nullptr when tracing is
  // compiled out (-DDGR_TRACE=OFF).
  obs::TraceBuffer* enable_trace(std::size_t capacity = 1 << 14);
  obs::TraceBuffer* trace() { return trace_.get(); }

  // Enable the §6 compact collector (two words of marking state per PE);
  // coexists with the tree collector — run one or the other per cycle.
  CompactCollector& enable_compact_collector();
  CompactMarker& compact_marker() { return *compact_marker_; }
  CompactCollector& compact_collector() { return *compact_collector_; }
  // Run until the compact collector finishes its cycle.
  std::uint64_t run_until_compact_done(std::uint64_t max_steps = UINT64_MAX);

  void set_root(VertexId root) { controller_->set_root(root); }

  // Install the reduction executor. Without one, reduction tasks are inert
  // pool content (static workloads for marking tests/benches).
  using Reducer = std::function<void(const Task&)>;
  void set_reducer(Reducer r) { reducer_ = std::move(r); }

  // ---- TaskSink ----
  void spawn(Task t) override;

  // ---- Execution ----
  // Execute one task; returns false when nothing is pending.
  bool step();
  // Run until quiescent or `max_steps`; returns steps executed.
  std::uint64_t run(std::uint64_t max_steps = UINT64_MAX);
  // Run until the controller finishes the current cycle (which must be in
  // progress); reduction keeps executing concurrently.
  std::uint64_t run_until_cycle_done(std::uint64_t max_steps = UINT64_MAX);
  bool quiescent() const;

  // Number of pending (unexecuted) reduction tasks across all pools.
  std::size_t pending_reduction() const;
  std::size_t pending_marking() const;

  // Introspection for tests/benches.
  const TaskPool& pool(PeId pe) const { return pools_[pe]; }
  std::size_t in_flight() const { return flight_.size(); }

  // ---- EngineHooks ----
  void collect_task_refs(std::vector<TaskRef>& out) override;
  std::size_t expunge_tasks(
      const std::function<bool(const Task&)>& kill) override;
  std::size_t reprioritize_tasks(
      const std::function<std::uint8_t(const Task&)>& prio) override;

 private:
  void execute(const Task& t);
  void maybe_check_invariants();
  void enqueue_delivered(Task t);
  void deliver_due();

  Graph& g_;
  SimOptions opt_;
  Rng rng_;
  std::unique_ptr<Marker> marker_;
  std::unique_ptr<Mutator> mutator_;
  std::unique_ptr<Controller> controller_;
  std::unique_ptr<CompactMarker> compact_marker_;
  std::unique_ptr<CompactCollector> compact_collector_;
  Reducer reducer_;

  std::vector<TaskPool> pools_;               // reduction tasks, per PE
  std::vector<std::vector<Task>> mark_q_;     // marking tasks, per PE
  struct InFlight {
    Task t;
    std::uint64_t due;  // step count at which the message arrives
  };
  std::vector<InFlight> flight_;  // cross-PE messages not yet delivered
  std::size_t mark_pending_ = 0;
  std::uint32_t tax_due_ = 0;  // marking steps owed before next reduction
  PeId executing_pe_ = 0;  // PE owning the currently executing task
  std::uint64_t steps_ = 0;
  obs::MetricsRegistry reg_;
  std::unique_ptr<obs::TraceBuffer> trace_;
};

// Rough wire size of a task message (for traffic accounting).
std::size_t task_wire_size(const Task& t);

}  // namespace dgr
