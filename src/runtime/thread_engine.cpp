#include "runtime/thread_engine.h"

#include <algorithm>
#include <shared_mutex>

#include "core/invariants.h"
#include "net/socket_transport.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "util/log.h"

namespace dgr {

namespace {
thread_local int tl_pe = -1;  // PE id of the current thread, -1 = external

// Mutation gate shared between external mutators and the quiescing
// restructurer. Static keeps the header light; engines are few.
std::shared_mutex& mutation_gate() {
  static std::shared_mutex gate;
  return gate;
}
}  // namespace

ThreadEngine::ThreadEngine(Graph& g, NetOptions net)
    : g_(g),
      net_(net),
      locks_(4096),
      reg_(g.num_pes()),
      t0_(std::chrono::steady_clock::now()) {
  marker_ = std::make_unique<Marker>(g_, *this);
  mutator_ = std::make_unique<Mutator>(g_, *marker_);
  controller_ =
      std::make_unique<Controller>(g_, *marker_, *this, VertexId::invalid());
  // Restructuring must not run from inside a task execution (the completing
  // task holds its vertex lock); the PE loops pick it up lock-free.
  controller_->set_deferred_restructure(true);
  if (net_.transport == TransportKind::kInProc) {
    transport_ = std::make_unique<InProcTransport>(g_.num_pes());
  } else {
    // Loopback cluster: every cross-PE message takes the full socket wire
    // path (frame encode → kernel → hub relay → kernel → frame decode).
    std::string addr = net_.transport_addr;
    if (addr.empty() && net_.transport == TransportKind::kTcp)
      addr = "tcp:127.0.0.1:0";
    auto st = std::make_unique<SocketTransport>(g_.num_pes(), addr);
    DGR_CHECK_MSG(st->ok(), "socket transport failed to come up");
    transport_ = std::move(st);
  }
  for (PeId pe = 0; pe < g_.num_pes(); ++pe) {
    pools_.push_back(std::make_unique<TaskPool>());
    pool_mu_.push_back(std::make_unique<std::mutex>());
  }
  out_.resize(g_.num_pes());
  for (auto& row : out_) row.resize(g_.num_pes());
  bp_armed_.resize(g_.num_pes());
  for (auto& row : bp_armed_) row.assign(g_.num_pes(), 1);  // armed
  summary_.reserve(g_.num_pes() * 2u);
  for (std::size_t i = 0; i < g_.num_pes() * 2u; ++i)
    summary_.push_back(std::make_unique<BoundaryShard>());
  // One set of batching knobs end to end: the channel coalesces with the
  // same size/age caps as the fast path.
  net_.reliable.batch_bytes = net_.batch_bytes;
  net_.reliable.batch_flush_us = net_.batch_flush_us;
  if (net_.enabled()) {
    fault_ = std::make_unique<FaultPlane>(
        g_.num_pes(), net_.faults,
        [this](PeId src, PeId dst, FaultPlane::Bytes msg) {
          transport_->send(src, dst, std::move(msg));
        });
    fault_->set_inject_hook(
        [this](FaultKind k, PeId src, PeId, std::size_t bytes) {
          static constexpr obs::Counter kFaultCounter[kNumFaultKinds] = {
              obs::Counter::kMsgDroppedInjected,
              obs::Counter::kMsgDupInjected,
              obs::Counter::kMsgReorderedInjected,
              obs::Counter::kMsgTruncatedInjected,
          };
          reg_.add(src, kFaultCounter[static_cast<std::size_t>(k)]);
          DGR_TRACE_EVENT(trace_.get(), obs::EventType::kFaultInjected,
                          Plane::kR, static_cast<std::uint16_t>(src), 0,
                          static_cast<std::uint64_t>(k), bytes);
        });
    chan_ = std::make_unique<ChannelManager>(
        g_.num_pes(), net_.reliable,
        [this](PeId src, PeId dst, ChannelManager::Bytes frame) {
          fault_->send(src, dst, std::move(frame));
        });
    ChannelManager::Hooks hooks;
    hooks.on_retransmit = [this](PeId src, PeId, std::uint64_t seq,
                                 std::uint32_t attempt) {
      reg_.add(src, obs::Counter::kMsgRetransmit);
      DGR_TRACE_EVENT(trace_.get(), obs::EventType::kMsgRetransmit, Plane::kR,
                      static_cast<std::uint16_t>(src), 0, seq, attempt);
    };
    hooks.on_dup_suppressed = [this](PeId dst, PeId, std::uint64_t seq) {
      reg_.add(dst, obs::Counter::kMsgDupSuppressed);
      DGR_TRACE_EVENT(trace_.get(), obs::EventType::kMsgDupSuppressed,
                      Plane::kR, static_cast<std::uint16_t>(dst), 0, seq);
    };
    hooks.on_decode_error = [this](PeId pe) {
      reg_.add(pe, obs::Counter::kMsgDecodeError);
    };
    hooks.on_rtt = [this](PeId src, double rtt_us) {
      reg_.observe(src, obs::Hist::kChannelRtt, rtt_us);
    };
    hooks.on_batch_flush = [this](PeId src, PeId, std::size_t payloads,
                                  std::size_t frame_bytes) {
      reg_.add(src, obs::Counter::kBatchFlush);
      reg_.add(src, obs::Counter::kMsgBatched, payloads);
      if (net_.batch_bytes > 0)
        reg_.observe(src, obs::Hist::kBatchFillPct,
                     100.0 * static_cast<double>(frame_bytes) /
                         static_cast<double>(net_.batch_bytes));
      DGR_TRACE_EVENT(trace_.get(), obs::EventType::kBatchFlush, Plane::kR,
                      static_cast<std::uint16_t>(src), 0,
                      static_cast<std::uint64_t>(payloads),
                      static_cast<std::uint64_t>(frame_bytes));
    };
    chan_->set_hooks(std::move(hooks));
  }
}

ThreadEngine::~ThreadEngine() { stop(); }

void ThreadEngine::start() {
  if (running_.exchange(true)) return;
  count_edge_cut();
  for (PeId pe = 0; pe < g_.num_pes(); ++pe)
    threads_.emplace_back([this, pe] { pe_loop(pe); });
  if (wd_enabled_.load(std::memory_order_acquire))
    wd_thread_ = std::thread([this] { watchdog_loop(); });
}

void ThreadEngine::stop() {
  if (!running_.exchange(false)) return;
  transport_->close();
  for (auto& t : threads_) t.join();
  threads_.clear();
  if (wd_thread_.joinable()) wd_thread_.join();
}

void ThreadEngine::lock_vertex(VertexId v) {
  auto& f = locks_[lock_index(v)];
  std::uint32_t spins = 0;
  while (f.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
    // Bounded pause, then yield. An unbounded pause loop is correct on a
    // dedicated core but pathological when PE threads share cores: if the
    // holder is descheduled mid-critical-section, a pause-only spinner
    // burns its whole scheduler quantum before the holder can run again.
    if (++spins < 64) {
      __builtin_ia32_pause();
      continue;
    }
#endif
    std::this_thread::yield();
  }
}

void ThreadEngine::unlock_vertex(VertexId v) {
  locks_[lock_index(v)].clear(std::memory_order_release);
}

void ThreadEngine::spawn(Task t) {
  DGR_CHECK(t.d.valid() && !t.d.is_rootpar());
  const PeId src = tl_pe >= 0 ? static_cast<PeId>(tl_pe) : t.d.pe;
  const PeId dst = t.d.pe;
  reg_.add(src, src == dst ? obs::Counter::kLocalMessages
                           : obs::Counter::kRemoteMessages);
  if (!task_is_marking(t.kind)) {
    // Reduction tasks are inert pool workload in this engine (the full
    // reduction machine runs on the deterministic SimEngine).
    inject(std::move(t));
    return;
  }
  std::vector<std::uint8_t> bytes = encode_task(t);
  reg_.add(src, obs::Counter::kBytesSent, bytes.size());
  if (src != dst) maybe_backpressure(src, dst);
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (chan_) {
    chan_->send(src, dst, std::move(bytes), now_us());
    return;
  }
  // Fast path. Cross-PE spawns from a PE thread stage into the per-pair
  // batch; everything else (local spawns, external threads) delivers
  // directly — staging rows are single-writer by construction.
  if (net_.batch_bytes > 0 && tl_pe >= 0 && dst != static_cast<PeId>(tl_pe)) {
    OutBatch& b = out_[src][dst];
    if (b.msgs.empty()) b.deadline_us = now_us() + net_.batch_flush_us;
    b.bytes += bytes.size();
    b.msgs.push_back(std::move(bytes));
    if (b.bytes >= net_.batch_bytes) flush_pair_fast(src, dst);
    return;
  }
  transport_->send(src, dst, std::move(bytes));
}

void ThreadEngine::maybe_backpressure(PeId src, PeId dst) {
  if (net_.backpressure_limit == 0) return;
  const std::uint64_t backlog = transport_->pending(dst);
  std::uint8_t& armed = bp_armed_[src][dst];
  if (!armed) {
    // A congestion episode is in progress: sail through until the peer has
    // genuinely drained (hysteresis at half the limit re-arms the pair).
    // Yielding per message while the backlog sits above the limit is the
    // 2-PE cliff: a steady-state mark exchange holds both mailboxes near
    // their high-water, so every spawn paid the full spin budget.
    if (backlog < net_.backpressure_limit / 2) armed = 1;
    return;
  }
  if (backlog <= net_.backpressure_limit) return;
  reg_.add(src, obs::Counter::kBackpressureStall);
  DGR_TRACE_EVENT(trace_.get(), obs::EventType::kBackpressureStall, Plane::kR,
                  static_cast<std::uint16_t>(src), 0,
                  static_cast<std::uint64_t>(dst), backlog);
  // Soft and strictly bounded: this thread may hold vertex-stripe locks
  // (globally shared hash stripes) that the congested receiver needs, so
  // waiting indefinitely could deadlock. Yield a few times; if the peer is
  // still congested, disarm and let the episode run its course.
  for (std::uint32_t i = 0; i < net_.backpressure_spins; ++i) {
    std::this_thread::yield();
    if (transport_->pending(dst) <= net_.backpressure_limit) return;
  }
  armed = 0;
}

bool ThreadEngine::admit_mark(Plane plane, VertexId child, std::uint8_t prior,
                              std::uint64_t epoch) {
  if (!net_.boundary_summary) return true;
  // Only remote children spawned by a PE thread go through the summary:
  // local spawns are cheap, and external callers (root seed, tests) must
  // never be vetoed.
  if (tl_pe < 0 || child.pe == static_cast<PeId>(tl_pe)) return true;
  BoundaryShard& s =
      *summary_[child.pe * 2u + (plane == Plane::kR ? 0u : 1u)];
  bool admit = true;
  while (s.mu.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }
  if (child.idx >= s.epoch.size()) {
    s.epoch.resize(child.idx + 1, 0);
    s.prior.resize(child.idx + 1, 0);
  }
  if (s.epoch[child.idx] != epoch || prior > s.prior[child.idx]) {
    // First request for this vertex this epoch, or a strictly stronger
    // priority than anything forwarded so far: record and admit.
    s.epoch[child.idx] = epoch;
    s.prior[child.idx] = prior;
  } else {
    admit = false;
  }
  s.mu.clear(std::memory_order_release);
  if (!admit) reg_.add(static_cast<std::uint32_t>(tl_pe),
                       obs::Counter::kBoundaryDedup);
  return admit;
}

void ThreadEngine::count_edge_cut() {
  g_.for_each_live([this](VertexId v) {
    std::uint64_t total = 0, cut = 0;
    for (const ArgEdge& e : g_.at(v).args) {
      if (!e.to.valid()) continue;
      ++total;
      if (e.to.pe != v.pe) ++cut;
    }
    if (total) reg_.add(v.pe, obs::Counter::kEdgesTotal, total);
    if (cut) reg_.add(v.pe, obs::Counter::kEdgeCut, cut);
  });
}

void ThreadEngine::flush_pair_fast(PeId src, PeId dst) {
  OutBatch& b = out_[src][dst];
  if (b.msgs.empty()) return;
  const std::size_t count = b.msgs.size();
  const std::size_t bytes = b.bytes;
  reg_.add(src, obs::Counter::kBatchFlush);
  reg_.add(src, obs::Counter::kMsgBatched, count);
  reg_.observe(src, obs::Hist::kBatchFillPct,
               100.0 * static_cast<double>(bytes) /
                   static_cast<double>(net_.batch_bytes));
  DGR_TRACE_EVENT(trace_.get(), obs::EventType::kBatchFlush, Plane::kR,
                  static_cast<std::uint16_t>(src), 0,
                  static_cast<std::uint64_t>(count),
                  static_cast<std::uint64_t>(bytes));
  transport_->send_batch(src, dst, std::move(b.msgs));
  b.msgs.clear();
  b.bytes = 0;
  b.deadline_us = 0;
}

void ThreadEngine::flush_outgoing(PeId pe, bool force) {
  if (net_.batch_bytes == 0 || chan_) return;  // nothing ever staged
  std::uint64_t now = 0;
  bool now_set = false;
  for (PeId dst = 0; dst < g_.num_pes(); ++dst) {
    OutBatch& b = out_[pe][dst];
    if (b.msgs.empty()) continue;
    if (!force) {
      if (b.bytes < net_.batch_bytes) {
        if (!now_set) {
          now = now_us();
          now_set = true;
        }
        if (now < b.deadline_us) continue;
      }
    }
    flush_pair_fast(pe, dst);
  }
}

void ThreadEngine::inject(Task t) {
  const PeId pe = t.d.pe;
  std::lock_guard<std::mutex> lk(*pool_mu_[pe]);
  pools_[pe]->push(std::move(t));
}

void ThreadEngine::pe_loop(PeId pe) {
  tl_pe = static_cast<int>(pe);
  std::uint64_t frames = 0;  // for periodic timer service while busy
  std::vector<Mailbox::Bytes> buf;  // reused drain buffer
  const std::size_t drain_max = net_.drain_max ? net_.drain_max : 1;
  while (running_.load(std::memory_order_relaxed)) {
    if (pause_.load(std::memory_order_acquire)) {
      // Staged marks must reach their mailboxes before this PE parks: a
      // message wedged here would stall wave termination (and with it the
      // quiescer) indefinitely.
      flush_outgoing(pe, /*force=*/true);
      parked_.fetch_add(1, std::memory_order_acq_rel);
      while (pause_.load(std::memory_order_acquire) &&
             running_.load(std::memory_order_relaxed))
        std::this_thread::yield();
      parked_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (controller_->restructure_due() &&
        !restructure_claim_.test_and_set(std::memory_order_acq_rel)) {
      if (controller_->restructure_due()) controller_->run_restructure();
      restructure_claim_.clear(std::memory_order_release);
      continue;
    }
    // Batch drain: take up to drain_max messages under one mailbox lock and
    // execute the burst without further queue traffic (the bounded budget
    // keeps pause/restructure latency and flush staleness in check).
    buf.clear();
    std::size_t n = transport_->drain(pe, drain_max, buf);
    if (n == 0) {
      // Idle: staged batches flush now (latency floor for stragglers), and
      // idle is when retransmit timers matter — a dropped frame leaves the
      // mailbox empty until this PE re-sends it.
      flush_outgoing(pe, /*force=*/true);
      if (chan_) {
        chan_->flush(pe, now_us());
        chan_->service(pe, now_us());
      }
      // Balance the survivors: an idle PE takes half of the deepest peer
      // backlog instead of parking — on a congested pair this turns the
      // ping-pong idle time into useful marking work.
      if (net_.steal && try_steal(pe, buf)) continue;
      // Nothing to run and nothing to steal: park on the mailbox condvar
      // (bounded, so pause/steal/timer polls still happen) rather than
      // yield-spinning. A polling idler on a shared core competes with the
      // busy PEs for the timeslice that would drain the very backlog it is
      // polling for.
      if (net_.idle_wait_us > 0)
        n = transport_->drain_wait(pe, drain_max, buf, net_.idle_wait_us);
      else
        std::this_thread::yield();
      if (n == 0) continue;
    }
    // Sampled mailbox backlog at service time, once per drained burst (the
    // per-PE hist lock is uncontended: only this thread observes its slot).
    if ((reg_.get(pe, obs::Counter::kMarkTasks) & 15) == 0)
      reg_.observe(pe, obs::Hist::kMarkQueueDepth,
                   static_cast<double>(transport_->pending(pe) + n));
    if (chan_) {
      for (const auto& msg : buf) {
        // Raw frame → channel → zero or more exactly-once in-order payloads.
        for (auto& payload : chan_->on_frame(pe, msg, now_us())) {
          const std::optional<Task> t = try_decode_task(payload);
          if (!t) {
            // Unreachable unless a checksum collision slips corruption past
            // the frame layer; counted, and the spawn is retired so
            // wait_quiescent cannot hang on it.
            reg_.add(pe, obs::Counter::kMsgDecodeError);
            outstanding_.fetch_sub(1, std::memory_order_acq_rel);
            continue;
          }
          execute(pe, *t);
          outstanding_.fetch_sub(1, std::memory_order_acq_rel);
        }
        if ((++frames & 63) == 0) chan_->service(pe, now_us());
      }
    } else {
      for (const auto& msg : buf) {
        const Task t = decode_task(msg);
        execute(pe, t);
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    // Between bursts: push out size/age-ripe batches staged by the executes
    // above (worst-case staleness is one drain_max burst + batch_flush_us).
    flush_outgoing(pe, /*force=*/false);
  }
  tl_pe = -1;
}

bool ThreadEngine::try_steal(PeId pe, std::vector<Mailbox::Bytes>& buf) {
  PeId victim = pe;
  std::size_t deepest = 0;
  for (PeId v = 0; v < g_.num_pes(); ++v) {
    if (v == pe) continue;
    const std::size_t backlog = transport_->pending(v);
    if (backlog > deepest) {
      deepest = backlog;
      victim = v;
    }
  }
  if (deepest < net_.steal_min) return false;
  buf.clear();
  const std::size_t want =
      std::min<std::size_t>(deepest / 2, net_.drain_max ? net_.drain_max : 1);
  const std::size_t n =
      transport_->drain(victim, std::max<std::size_t>(want, 1), buf);
  if (n == 0) return false;
  reg_.add(pe, obs::Counter::kStealBatches);
  reg_.add(pe, obs::Counter::kStealTasks, n);
  // Execute the stolen batch here. Location transparency makes this safe:
  // vertex locks are global stripes, the marker touches only t.d under its
  // lock, counters are charged to the executing PE, and the channel/fault
  // planes serialize internally — a stolen frame still runs through
  // on_frame(victim, ...) so the (src → victim) receiver state stays
  // exactly-once regardless of which thread processes it.
  if (chan_) {
    for (const auto& msg : buf) {
      for (auto& payload : chan_->on_frame(victim, msg, now_us())) {
        const std::optional<Task> t = try_decode_task(payload);
        if (!t) {
          reg_.add(pe, obs::Counter::kMsgDecodeError);
          outstanding_.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
        execute(pe, *t);
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  } else {
    for (const auto& msg : buf) {
      execute(pe, decode_task(msg));
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  // Children spawned by the stolen tasks staged into this thief's rows;
  // push the ripe ones out before the next poll.
  flush_outgoing(pe, /*force=*/false);
  return true;
}

void ThreadEngine::execute(PeId pe, const Task& t) {
  DGR_CHECK(task_is_marking(t.kind));
  reg_.add(pe, t.kind == TaskKind::kMark ? obs::Counter::kMarkTasks
                                         : obs::Counter::kReturnTasks);
  // Atomicity of task execution (§2.1): a marking task touches only its
  // destination vertex, so its lock is the whole story.
  lock_vertex(t.d);
  marker_->exec(t);
  unlock_vertex(t.d);
}

void ThreadEngine::atomically(std::initializer_list<VertexId> vs,
                              const std::function<void()>& fn) {
  atomically(std::span<const VertexId>(vs.begin(), vs.size()), fn);
}

void ThreadEngine::atomically(std::span<const VertexId> vs,
                              const std::function<void()>& fn) {
  std::shared_lock<std::shared_mutex> gate(mutation_gate());
  // Sorted, deduplicated (by lock index) acquisition avoids both deadlock
  // and double-locking of aliased stripes.
  std::vector<std::uint32_t> idx;
  idx.reserve(vs.size());
  for (VertexId v : vs) idx.push_back(lock_index(v));
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  for (std::uint32_t i : idx)
    while (locks_[i].test_and_set(std::memory_order_acquire))
      std::this_thread::yield();
  fn();
  for (auto it = idx.rbegin(); it != idx.rend(); ++it)
    locks_[*it].clear(std::memory_order_release);
}

void ThreadEngine::quiesce_begin() {
  // A PE-thread quiescer flushes its own staging row first: nothing this
  // thread staged may sit out the safe point (belt and braces — marking has
  // terminated, so the rows should already be empty).
  if (tl_pe >= 0) flush_outgoing(static_cast<PeId>(tl_pe), /*force=*/true);
  // Exclusive against external mutators...
  mutation_gate().lock();
  // ...and against the PE threads (minus the caller, if it is one).
  pause_.store(true, std::memory_order_release);
  const std::uint32_t expected =
      g_.num_pes() - (tl_pe >= 0 ? 1u : 0u);
  while (parked_.load(std::memory_order_acquire) < expected)
    std::this_thread::yield();
  // Safe point: every PE is parked, both planes have terminated with their
  // marks still unconsumed, no marking task is in flight — the one globally
  // consistent state the concurrent engine reaches. Audit here.
  maybe_audit();
}

void ThreadEngine::quiesce_end() {
  pause_.store(false, std::memory_order_release);
  mutation_gate().unlock();
}

void ThreadEngine::wait_quiescent() {
  while (outstanding_.load(std::memory_order_acquire) > 0)
    std::this_thread::yield();
}

void ThreadEngine::wait_cycle_done() {
  while (!controller_->idle()) std::this_thread::yield();
}

void ThreadEngine::collect_task_refs(std::vector<TaskRef>& out) {
  for (PeId pe = 0; pe < g_.num_pes(); ++pe) {
    std::lock_guard<std::mutex> lk(*pool_mu_[pe]);
    pools_[pe]->for_each(
        [&](const Task& t) { out.push_back(TaskRef{t.s, t.d}); });
  }
}

std::size_t ThreadEngine::expunge_tasks(
    const std::function<bool(const Task&)>& kill) {
  std::size_t n = 0;
  for (PeId pe = 0; pe < g_.num_pes(); ++pe) {
    std::lock_guard<std::mutex> lk(*pool_mu_[pe]);
    n += pools_[pe]->expunge(kill);
  }
  return n;
}

std::size_t ThreadEngine::reprioritize_tasks(
    const std::function<std::uint8_t(const Task&)>& prio) {
  std::size_t n = 0;
  for (PeId pe = 0; pe < g_.num_pes(); ++pe) {
    std::lock_guard<std::mutex> lk(*pool_mu_[pe]);
    n += pools_[pe]->reprioritize(prio);
  }
  return n;
}

void ThreadEngine::enable_audit(AuditOptions opt) {
  audit_opt_ = opt;
  audit_enabled_ = opt.period > 0;
}

void ThreadEngine::enable_watchdog(WatchdogOptions opt) {
  wd_opt_ = opt;
  wd_enabled_.store(true, std::memory_order_release);
}

HealthReport ThreadEngine::health() const {
  HealthReport r;
  for (std::size_t i = 0; i < obs::kNumHealthKinds; ++i)
    r.warnings[i] = health_[i].load(std::memory_order_relaxed);
  return r;
}

void ThreadEngine::warn(obs::HealthKind kind, std::uint16_t pe,
                        std::uint64_t detail) {
  health_[static_cast<std::size_t>(kind)].fetch_add(1,
                                                    std::memory_order_relaxed);
  DGR_TRACE_EVENT(trace_.get(), obs::EventType::kHealthWarning, Plane::kR, pe,
                  controller_->cycles_completed() + 1,
                  static_cast<std::uint64_t>(kind), detail);
}

void ThreadEngine::maybe_audit() {
  audit_swept_check_ = false;
  if (!audit_enabled_) return;
  const std::uint64_t cyc = controller_->cycles_completed() + 1;
  if (cyc % audit_opt_.period != 0) return;
  ++audit_stats_.audits;
  std::uint64_t violations = 0;
  auto fail = [&](const std::string& what) {
    ++violations;
    ++audit_stats_.violations;
    audit_stats_.last_what = what;
    DGR_ERROR("audit violation (cycle %llu): %s", (unsigned long long)cyc,
              what.c_str());
    warn(obs::HealthKind::kAuditViolation, 0, audit_stats_.audits);
  };
  if (audit_opt_.check_invariants) {
    // Both planes have terminated (done) with marks intact; the pending task
    // multiset is empty — the wave's termination detection guarantees every
    // spawned marking task has executed.
    for (const Plane plane : {Plane::kR, Plane::kT}) {
      if (!marker_->active(plane) || !marker_->done(plane)) continue;
      if (marker_->cycle_tainted(plane)) continue;
      const InvariantReport rep =
          check_marking_invariants(g_, *marker_, plane, {});
      if (!rep.ok) fail(rep.what);
    }
  }
  std::uint64_t gar = 0;
  if (audit_opt_.check_accounting) {
    const AccountingReport acc = check_heap_accounting(g_, *marker_);
    if (!acc.ok) {
      fail(acc.what);
    } else if (marker_->active(Plane::kR) && marker_->done(Plane::kR)) {
      // GAR' is frozen until the sweep (the mutation gate is held): the
      // restructure about to run must free exactly this many vertices.
      audit_expected_gar_ = acc.gar;
      audit_swept_check_ = true;
    }
    gar = acc.gar;
  }
  DGR_TRACE_EVENT(trace_.get(), obs::EventType::kAudit, Plane::kR, 0, cyc,
                  violations, gar);
}

void ThreadEngine::on_cycle_complete(const CycleResult& res) {
  if (!audit_swept_check_) return;
  audit_swept_check_ = false;
  if (res.swept != audit_expected_gar_) {
    ++audit_stats_.violations;
    audit_stats_.last_what =
        "Property 1 violated: swept " + std::to_string(res.swept) +
        " != GAR' " + std::to_string(audit_expected_gar_);
    DGR_ERROR("audit violation (cycle %llu): %s",
              (unsigned long long)res.cycle, audit_stats_.last_what.c_str());
    warn(obs::HealthKind::kAuditViolation, 0, audit_stats_.audits);
  }
}

void ThreadEngine::watchdog_loop() {
  std::uint64_t last_progress = 0;
  std::uint32_t stalled = 0;
  bool stall_reported = false;
  auto total_rescues = [this] {
    return marker_->rescue_waves(Plane::kR) + marker_->rescue_waves(Plane::kT);
  };
  std::uint64_t cycle_base_rescues = total_rescues();
  std::uint64_t last_cycle = controller_->cycles_completed();
  bool rescue_reported = false;
  std::vector<bool> mailbox_reported(g_.num_pes(), false);
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(wd_opt_.interval_ms));
    // Mailbox saturation, edge-triggered per PE (re-arms once the backlog
    // halves, so a persistently saturated mailbox warns once, not per tick).
    for (PeId pe = 0; pe < g_.num_pes(); ++pe) {
      const std::uint64_t backlog = transport_->pending(pe);
      if (backlog >= wd_opt_.mailbox_saturation) {
        if (!mailbox_reported[pe]) {
          mailbox_reported[pe] = true;
          warn(obs::HealthKind::kMailboxSaturated, pe, backlog);
        }
      } else if (backlog < wd_opt_.mailbox_saturation / 2) {
        mailbox_reported[pe] = false;
      }
    }
    // Per-cycle trackers reset when a new cycle begins.
    const std::uint64_t cyc = controller_->cycles_completed();
    if (cyc != last_cycle) {
      last_cycle = cyc;
      cycle_base_rescues = total_rescues();
      rescue_reported = false;
      stalled = 0;
      stall_reported = false;
    }
    // Rescue storm: the supplementary-wave loop is churning, which means
    // mutators acquire references faster than waves can absorb them.
    const std::uint64_t waves = total_rescues() - cycle_base_rescues;
    if (waves >= wd_opt_.rescue_storm && !rescue_reported) {
      rescue_reported = true;
      warn(obs::HealthKind::kRescueStorm, 0, waves);
    }
    // Wave-front stall: a plane is actively marking yet the global
    // mark/return counters have not moved for the whole window.
    const bool marking = marker_->marking_in_progress(Plane::kR) ||
                         marker_->marking_in_progress(Plane::kT);
    if (!marking) {
      stalled = 0;
      stall_reported = false;
      continue;
    }
    const std::uint64_t progress = reg_.total(obs::Counter::kMarkTasks) +
                                   reg_.total(obs::Counter::kReturnTasks) +
                                   total_rescues();
    if (progress != last_progress) {
      last_progress = progress;
      stalled = 0;
      stall_reported = false;
    } else if (++stalled >= wd_opt_.stall_samples && !stall_reported) {
      stall_reported = true;
      warn(obs::HealthKind::kMarkStall, 0, progress);
    }
  }
}

obs::TraceBuffer* ThreadEngine::enable_trace(std::size_t capacity) {
#if DGR_TRACE_ENABLED
  if (!trace_) {
    trace_ = std::make_unique<obs::TraceBuffer>(capacity);
    trace_->set_clock([this] { return now_us(); });
    marker_->set_trace(trace_.get());
    mutator_->set_trace(trace_.get());
    controller_->set_trace(trace_.get());
  }
  return trace_.get();
#else
  (void)capacity;
  return nullptr;
#endif
}

ThreadEngineStats ThreadEngine::stats() const {
  ThreadEngineStats s;
  s.tasks_executed = reg_.total(obs::Counter::kMarkTasks) +
                     reg_.total(obs::Counter::kReturnTasks) +
                     reg_.total(obs::Counter::kReductionTasks);
  s.remote_messages = reg_.total(obs::Counter::kRemoteMessages);
  s.local_messages = reg_.total(obs::Counter::kLocalMessages);
  s.bytes_sent = reg_.total(obs::Counter::kBytesSent);
  s.msg_batched = reg_.total(obs::Counter::kMsgBatched);
  s.batch_flushes = reg_.total(obs::Counter::kBatchFlush);
  s.backpressure_stalls = reg_.total(obs::Counter::kBackpressureStall);
  s.boundary_dedup = reg_.total(obs::Counter::kBoundaryDedup);
  s.steal_batches = reg_.total(obs::Counter::kStealBatches);
  s.steal_tasks = reg_.total(obs::Counter::kStealTasks);
  s.edge_cut = reg_.total(obs::Counter::kEdgeCut);
  s.edges_total = reg_.total(obs::Counter::kEdgesTotal);
  s.mailbox_high_water = transport_->high_water();
  return s;
}

}  // namespace dgr
