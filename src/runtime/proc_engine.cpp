#include "runtime/proc_engine.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/invariants.h"
#include "net/wire.h"
#include "util/assert.h"
#include "util/log.h"

namespace dgr {

namespace {
// Distinguishes concurrent ProcEngines in one test binary: each hub needs its
// own Unix-domain socket path.
std::atomic<std::uint32_t> g_hub_serial{0};
}  // namespace

ProcEngine::ProcEngine(Graph& g, ProcOptions opt)
    : g_(g),
      opt_(std::move(opt)),
      num_workers_(std::min(opt_.workers == 0 ? 1u : opt_.workers,
                            g.num_pes())),
      metrics_(g.num_pes()),
      t0_(std::chrono::steady_clock::now()) {
  clock_.resize(num_workers_);
  tele_.resize(num_workers_);
  worker_events_.resize(num_workers_);
  marker_ = std::make_unique<Marker>(g_, *this);
  mutator_ = std::make_unique<Mutator>(g_, *marker_);
  controller_ =
      std::make_unique<Controller>(g_, *marker_, *this, VertexId::invalid());
  // Restructuring runs inline on the hub reader thread that merged the final
  // mark report — no vertex lock is held there (the controller executes no
  // marking tasks itself), so deferral is unnecessary.

  // Contiguous PE blocks, remainder spread over the first workers.
  const std::uint32_t base = g_.num_pes() / num_workers_;
  const std::uint32_t rem = g_.num_pes() % num_workers_;
  slots_.resize(num_workers_);
  PeId begin = 0;
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    slots_[w].pe_begin = begin;
    slots_[w].pe_count = base + (w < rem ? 1 : 0);
    begin += slots_[w].pe_count;
  }

  for (PeId pe = 0; pe < g_.num_pes(); ++pe)
    pools_.push_back(std::make_unique<TaskPool>());

  // Rescue waves reopen the plane before any seed is spawned; replicas must
  // learn both (and the controller-minted rescue root's record, which the
  // plane handoff may never have shipped) before the seeds arrive.
  marker_->set_rescue_seed_hook(
      [this](Plane p, VertexId root, std::size_t /*seeds*/) {
        NetFrame f;
        f.type = FrameType::kRescueBegin;
        f.payload = encode_rescue_begin(p, marker_->epoch(p), root,
                                        g_.at(root));
        hub_.broadcast(f);
        ++stats_.rescue_begins;
      });
}

ProcEngine::~ProcEngine() { stop(); }

WorkerConfig ProcEngine::make_config(std::uint32_t worker) const {
  WorkerConfig c;
  c.num_pes = g_.num_pes();
  c.pe_begin = slots_[worker].pe_begin;
  c.pe_count = slots_[worker].pe_count;
  c.use_channel = opt_.use_channel();
  c.fault_seed = opt_.fault_seed + worker;  // distinct chaos per worker
  c.faults = opt_.faults;
  c.reliable = opt_.reliable;
  c.trace_enabled = worker_trace_;
  c.trace_capacity = trace_capacity_;
  return c;
}

void ProcEngine::start() {
  DGR_CHECK_MSG(!started_, "ProcEngine::start called twice");
  started_ = true;
  // No prewarm_aux_roots here: the controller mints every aux root it needs
  // (taskroots, troot, uroot) before on_plane_begin fires, so the handoff
  // always ships them — and eager allocation here would advance this graph's
  // free lists relative to the sim/thread replicas the chaos harness diffs.

  hub_.set_control_handler([this](std::uint32_t worker, NetFrame f) {
    handle_control(worker, std::move(f));
  });
  hub_.set_worker_lost([this](std::uint32_t worker) {
    if (stopping_.load(std::memory_order_acquire)) return;
    DGR_ERROR("worker %u lost mid-run", worker);
    failed_.store(true, std::memory_order_release);
  });

  SocketAddr addr;
  if (opt_.tcp) {
    DGR_CHECK(SocketAddr::parse("tcp:127.0.0.1:0", addr));
  } else {
    addr.path = "/tmp/dgr-hub-" + std::to_string(::getpid()) + "-" +
                std::to_string(g_hub_serial.fetch_add(1)) + ".sock";
  }
  const bool up = hub_.listen(addr, [this](const RegisterMsg& reg) {
    SocketHub::Decision d;
    if (reg.proto_version != kProtoVersion) {
      d.reject.code = 1;
      d.reject.reason = "unsupported protocol version " +
                        std::to_string(reg.proto_version);
      return d;
    }
    if (reg.worker_index >= num_workers_) {
      d.reject.code = 3;
      d.reject.reason = "worker index out of range";
      return d;
    }
    d.accept = true;
    d.ack.worker_index = reg.worker_index;
    d.ack.num_workers = num_workers_;
    d.ack.config = make_config(reg.worker_index);
    return d;
  });
  DGR_CHECK_MSG(up, "hub listen failed");

  for (std::uint32_t w = 0; w < num_workers_; ++w) spawn_worker(w);
  DGR_CHECK_MSG(hub_.wait_workers(num_workers_, opt_.register_timeout_ms),
                "workers did not register in time");

  // First clock probes right after registration, while the wire is quiet —
  // usually the tightest (min-RTT) sample of the whole run. Refreshed at
  // every plane begin.
  for (std::uint32_t w = 0; w < num_workers_; ++w) send_clock_probe(w);
}

void ProcEngine::send_clock_probe(std::uint32_t worker) {
  ClockProbeMsg p;
  p.seq = ++clock_seq_;
  p.t_controller_us = now_us();
  NetFrame f;
  f.type = FrameType::kClockProbe;
  f.payload = encode_clock_probe(p);
  hub_.send_to_worker(worker, f);
}

void ProcEngine::spawn_worker(std::uint32_t worker) {
  std::string bin = opt_.worker_bin;
  if (bin.empty()) {
    if (const char* env = std::getenv("DGR_WORKER_BIN")) bin = env;
  }
  if (bin.empty()) bin = "dgr_worker";

  const std::string addr = hub_.address();
  const std::string index = std::to_string(worker);
  const pid_t pid = ::fork();
  DGR_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    const char* argv[] = {bin.c_str(),   "--connect", addr.c_str(),
                          "--index",     index.c_str(), nullptr};
    ::execvp(bin.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);  // exec failure; the registration timeout reports it
  }
  slots_[worker].pid = pid;
}

void ProcEngine::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  NetFrame f;
  f.type = FrameType::kShutdown;
  hub_.broadcast(f);
  // Workers exit on kShutdown; give them a grace window, then insist.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  for (WorkerSlot& s : slots_) {
    while (s.pid > 0) {
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(s.pid), &status, WNOHANG);
      if (r == static_cast<pid_t>(s.pid) || r < 0) {
        s.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(static_cast<pid_t>(s.pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(s.pid), &status, 0);
        s.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  hub_.close();
  started_ = false;
}

void ProcEngine::wait_quiescent() {
  while (!controller_->idle() &&
         !failed_.load(std::memory_order_acquire))
    std::this_thread::yield();
}

void ProcEngine::wait_cycle_done() { wait_quiescent(); }

void ProcEngine::inject(Task t) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  pools_[t.d.pe]->push(std::move(t));
}

void ProcEngine::on_plane_begin(Plane p) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  // The graph is final for this wave but the epoch has not been bumped yet —
  // exactly the state the replicas must copy. kPlaneBegin (with the bumped
  // epoch) follows at the first seed spawn; per-connection FIFO queues keep
  // the order handoff → begin → seed on every worker's wire.
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    NetFrame f;
    f.type = FrameType::kHandoff;
    f.payload = encode_handoff(g_, slots_[w].pe_begin, slots_[w].pe_count);
    stats_.handoff_bytes += f.payload.size();
    ++stats_.handoffs_sent;
    metrics_.add(slots_[w].pe_begin, obs::Counter::kHandoffBytes,
                 f.payload.size());
    hub_.send_to_worker(w, f);
    send_clock_probe(w);
  }
  begin_pending_ = true;
  begin_plane_ = p;
}

void ProcEngine::spawn(Task t) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (!task_is_marking(t.kind)) {
    pools_[t.d.pe]->push(std::move(t));
    return;
  }
  if (begin_pending_) {
    begin_pending_ = false;
    NetFrame bf;
    bf.type = FrameType::kPlaneBegin;
    bf.payload =
        encode_plane_signal(begin_plane_, marker_->epoch(begin_plane_));
    hub_.broadcast(bf);
    ++stats_.planes_started;
  }
  NetFrame f;
  f.type = FrameType::kSeed;
  f.src = t.s.valid() && !t.s.is_rootpar() ? t.s.pe : t.d.pe;
  f.dst = t.d.pe;
  f.payload = encode_task(t);
  hub_.send_to_endpoint_owner(f);
  ++stats_.seeds_sent;
}

void ProcEngine::handle_control(std::uint32_t worker, NetFrame f) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  switch (f.type) {
    case FrameType::kPlaneDone: {
      Plane plane;
      std::uint64_t epoch = 0;
      if (!decode_plane_signal(f.payload, plane, epoch)) {
        DGR_ERROR("worker %u: malformed kPlaneDone", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      // Stale or duplicate termination reports are ignorable: each wave's
      // rootpar return is observed by exactly one worker, but a retransmit
      // path could replay the frame.
      if (!marker_->active(plane) || epoch != marker_->epoch(plane) ||
          collecting_)
        return;
      collecting_ = true;
      collect_plane_ = plane;
      collect_epoch_ = epoch;
      reports_in_ = 0;
      collect_stats_.reset();
      NetFrame q;
      q.type = FrameType::kQuiesce;
      q.payload = encode_plane_signal(plane, epoch);
      hub_.broadcast(q);
      return;
    }
    case FrameType::kMarkReport: {
      if (!collecting_) return;  // late duplicate
      MarkStats s;
      if (!apply_mark_report(f.payload, g_, collect_plane_, collect_epoch_,
                             s)) {
        DGR_ERROR("worker %u: mark report rejected", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      collect_stats_.marks += s.marks.load(std::memory_order_relaxed);
      collect_stats_.returns += s.returns.load(std::memory_order_relaxed);
      collect_stats_.remarks += s.remarks.load(std::memory_order_relaxed);
      collect_stats_.coop_spawns +=
          s.coop_spawns.load(std::memory_order_relaxed);
      ++stats_.reports_merged;
      if (++reports_in_ < num_workers_) return;
      // Every partition's marks are in the authoritative graph: adopt the
      // remote termination. The controller cascade continues from here —
      // rescue wave, the M_R plane, or the restructuring phase — still under
      // mu_, so no mutation or report interleaves.
      collecting_ = false;
      marker_->add_remote_stats(collect_plane_, collect_stats_);
      marker_->finish_remote(collect_plane_);
      return;
    }
    case FrameType::kTelemetry: {
      TelemetryMsg m;
      if (!decode_telemetry(f.payload, m)) {
        DGR_ERROR("worker %u: malformed kTelemetry", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      // Fold the worker's registry delta into the merged per-PE view. The
      // codec validated counter/hist/event-type ids; PE range is validated
      // here against the authoritative graph.
      for (const auto& c : m.counters)
        if (c.pe < g_.num_pes())
          metrics_.add(c.pe, static_cast<obs::Counter>(c.counter), c.delta);
      for (const auto& h : m.hists) {
        if (h.pe >= g_.num_pes()) continue;
        for (const auto& [bucket, n] : h.buckets)
          metrics_.merge_hist_bucket(h.pe, static_cast<obs::Hist>(h.hist),
                                     bucket, n, h.max);
      }
      WorkerTele& t = tele_[worker];
      ++t.telemetry_msgs;
      t.ring_dropped += m.ring_dropped;
      t.events_omitted += m.events_omitted;
      metrics_.add(slots_[worker].pe_begin, obs::Counter::kTelemetryMsgs);
      const std::uint64_t lost = m.ring_dropped + m.events_omitted;
      if (lost)
        metrics_.add(slots_[worker].pe_begin, obs::Counter::kTelemetryDropped,
                     lost);
      auto& ev = worker_events_[worker];
      ev.insert(ev.end(), m.events.begin(), m.events.end());
      if (lost) {
        // Make the loss visible inside the trace itself, stamped at the
        // lane's current tail so the lane stays monotone after rebase.
        const std::uint64_t ts = ev.empty() ? 0 : ev.back().ts;
        ev.push_back(obs::make_drop_event(
            ts, 0, static_cast<std::uint16_t>(m.pe_begin), m.ring_dropped,
            m.events_omitted));
      }
      return;
    }
    case FrameType::kClockEcho: {
      ClockEchoMsg echo;
      if (!decode_clock_echo(f.payload, echo)) {
        DGR_ERROR("worker %u: malformed kClockEcho", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      clock_[worker].on_echo(echo.t_controller_us, now_us(),
                             echo.t_worker_us);
      return;
    }
    default:
      DGR_ERROR("worker %u: unexpected control frame %s", worker,
                frame_type_name(f.type));
      failed_.store(true, std::memory_order_release);
  }
}

void ProcEngine::collect_task_refs(std::vector<TaskRef>& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  for (const auto& p : pools_)
    p->for_each([&](const Task& t) { out.push_back(TaskRef{t.s, t.d}); });
}

std::size_t ProcEngine::expunge_tasks(
    const std::function<bool(const Task&)>& kill) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& p : pools_) n += p->expunge(kill);
  return n;
}

std::size_t ProcEngine::reprioritize_tasks(
    const std::function<std::uint8_t(const Task&)>& prio) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& p : pools_) n += p->reprioritize(prio);
  return n;
}

void ProcEngine::atomically(std::initializer_list<VertexId> /*vs*/,
                            const std::function<void()>& fn) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  fn();
}

void ProcEngine::enable_audit(AuditOptions opt) {
  audit_opt_ = opt;
  audit_enabled_ = opt.period != 0;
}

void ProcEngine::quiesce_begin() { maybe_audit(); }

void ProcEngine::maybe_audit() {
  audit_swept_check_ = false;
  if (!audit_enabled_) return;
  const std::uint64_t cyc = controller_->cycles_completed() + 1;
  if (cyc % audit_opt_.period != 0) return;
  ++audit_stats_.audits;
  auto fail = [&](const std::string& what) {
    ++audit_stats_.violations;
    audit_stats_.last_what = what;
    DGR_ERROR("proc audit violation (cycle %llu): %s",
              (unsigned long long)cyc, what.c_str());
  };
  if (audit_opt_.check_invariants) {
    // Same safe point as the threaded engine, reached differently: every
    // worker's kMarkReport for the wave has been merged, so the
    // authoritative graph holds the complete terminated marking.
    for (const Plane plane : {Plane::kR, Plane::kT}) {
      if (!marker_->active(plane) || !marker_->done(plane)) continue;
      if (marker_->cycle_tainted(plane)) continue;
      const InvariantReport rep =
          check_marking_invariants(g_, *marker_, plane, {});
      if (!rep.ok) fail(rep.what);
    }
  }
  if (audit_opt_.check_accounting) {
    const AccountingReport acc = check_heap_accounting(g_, *marker_);
    if (!acc.ok) {
      fail(acc.what);
    } else if (marker_->active(Plane::kR) && marker_->done(Plane::kR)) {
      audit_expected_gar_ = acc.gar;
      audit_swept_check_ = true;
    }
  }
}

void ProcEngine::on_cycle_complete(const CycleResult& res) {
  if (!audit_swept_check_) return;
  audit_swept_check_ = false;
  if (res.swept != audit_expected_gar_) {
    ++audit_stats_.violations;
    audit_stats_.last_what =
        "Property 1 violated: swept " + std::to_string(res.swept) +
        " != GAR' " + std::to_string(audit_expected_gar_);
    DGR_ERROR("proc audit violation (cycle %llu): %s",
              (unsigned long long)res.cycle, audit_stats_.last_what.c_str());
  }
}

obs::TraceBuffer* ProcEngine::enable_trace(std::size_t capacity) {
#if DGR_TRACE_ENABLED
  if (!trace_) {
    trace_ = std::make_unique<obs::TraceBuffer>(capacity);
    trace_->set_clock([this] { return now_us(); });
    marker_->set_trace(trace_.get());
    mutator_->set_trace(trace_.get());
    controller_->set_trace(trace_.get());
    worker_trace_ = true;
    trace_capacity_ = static_cast<std::uint32_t>(capacity);
  }
  return trace_.get();
#else
  (void)capacity;
  return nullptr;
#endif
}

std::vector<std::vector<obs::TraceEvent>> ProcEngine::worker_traces() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::vector<std::vector<obs::TraceEvent>> out = worker_events_;
  for (std::uint32_t w = 0; w < num_workers_; ++w)
    for (obs::TraceEvent& e : out[w]) e.ts = clock_[w].rebase(e.ts);
  return out;
}

std::int64_t ProcEngine::clock_offset_us(std::uint32_t worker) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return worker < clock_.size() ? clock_[worker].offset_us() : 0;
}

std::uint64_t ProcEngine::clock_rtt_us(std::uint32_t worker) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return worker < clock_.size() ? clock_[worker].rtt_us() : 0;
}

std::uint64_t ProcEngine::clock_samples(std::uint32_t worker) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return worker < clock_.size() ? clock_[worker].samples() : 0;
}

std::string ProcEngine::cluster_metrics_json() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  const std::vector<SocketHub::RelayCount> relay = hub_.relay_by_worker();
  // Per-worker sums over the owned PE range of the merged registry.
  auto range_sum = [&](std::uint32_t w, obs::Counter c) {
    std::uint64_t n = 0;
    for (std::uint32_t pe = slots_[w].pe_begin;
         pe < slots_[w].pe_begin + slots_[w].pe_count; ++pe)
      n += metrics_.get(pe, c);
    return n;
  };
  std::string out = metrics_.to_json();
  out.pop_back();  // reopen the registry object to append the rollup
  char buf[512];
  std::snprintf(buf, sizeof(buf), ",\"num_workers\":%u,\"workers\":[",
                num_workers_);
  out += buf;
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    const std::uint64_t rf = w < relay.size() ? relay[w].frames : 0;
    const std::uint64_t rb = w < relay.size() ? relay[w].bytes : 0;
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"worker\":%u,\"pe_begin\":%u,\"pe_count\":%u,"
        "\"marks\":%llu,\"returns\":%llu,\"remote_messages\":%llu,"
        "\"retransmits\":%llu,\"handoff_bytes\":%llu,"
        "\"relayed_frames\":%llu,\"relayed_bytes\":%llu,"
        "\"telemetry_msgs\":%llu,\"telemetry_dropped\":%llu,"
        "\"clock_offset_us\":%lld,\"clock_rtt_us\":%llu}",
        w == 0 ? "" : ",", w, slots_[w].pe_begin, slots_[w].pe_count,
        (unsigned long long)range_sum(w, obs::Counter::kMarkTasks),
        (unsigned long long)range_sum(w, obs::Counter::kReturnTasks),
        (unsigned long long)range_sum(w, obs::Counter::kRemoteMessages),
        (unsigned long long)range_sum(w, obs::Counter::kMsgRetransmit),
        (unsigned long long)metrics_.get(slots_[w].pe_begin,
                                         obs::Counter::kHandoffBytes),
        (unsigned long long)rf, (unsigned long long)rb,
        (unsigned long long)tele_[w].telemetry_msgs,
        (unsigned long long)(tele_[w].ring_dropped +
                             tele_[w].events_omitted),
        (long long)clock_[w].offset_us(),
        (unsigned long long)clock_[w].rtt_us());
    out += buf;
  }
  out += "]}";
  return out;
}

ProcEngineStats ProcEngine::stats() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ProcEngineStats s = stats_;
  s.transport = hub_.stats();
  return s;
}

}  // namespace dgr
