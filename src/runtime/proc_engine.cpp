#include "runtime/proc_engine.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <thread>

#include "core/invariants.h"
#include "net/wire.h"
#include "util/assert.h"
#include "util/log.h"

namespace dgr {

namespace {
// Distinguishes concurrent ProcEngines in one test binary: each hub needs its
// own Unix-domain socket path.
std::atomic<std::uint32_t> g_hub_serial{0};
}  // namespace

ProcEngine::ProcEngine(Graph& g, ProcOptions opt)
    : g_(g),
      opt_(std::move(opt)),
      num_workers_(std::min(opt_.workers == 0 ? 1u : opt_.workers,
                            g.num_pes())),
      t0_(std::chrono::steady_clock::now()) {
  marker_ = std::make_unique<Marker>(g_, *this);
  mutator_ = std::make_unique<Mutator>(g_, *marker_);
  controller_ =
      std::make_unique<Controller>(g_, *marker_, *this, VertexId::invalid());
  // Restructuring runs inline on the hub reader thread that merged the final
  // mark report — no vertex lock is held there (the controller executes no
  // marking tasks itself), so deferral is unnecessary.

  // Contiguous PE blocks, remainder spread over the first workers.
  const std::uint32_t base = g_.num_pes() / num_workers_;
  const std::uint32_t rem = g_.num_pes() % num_workers_;
  slots_.resize(num_workers_);
  PeId begin = 0;
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    slots_[w].pe_begin = begin;
    slots_[w].pe_count = base + (w < rem ? 1 : 0);
    begin += slots_[w].pe_count;
  }

  for (PeId pe = 0; pe < g_.num_pes(); ++pe)
    pools_.push_back(std::make_unique<TaskPool>());

  // Rescue waves reopen the plane before any seed is spawned; replicas must
  // learn both (and the controller-minted rescue root's record, which the
  // plane handoff may never have shipped) before the seeds arrive.
  marker_->set_rescue_seed_hook(
      [this](Plane p, VertexId root, std::size_t /*seeds*/) {
        NetFrame f;
        f.type = FrameType::kRescueBegin;
        f.payload = encode_rescue_begin(p, marker_->epoch(p), root,
                                        g_.at(root));
        hub_.broadcast(f);
        ++stats_.rescue_begins;
      });
}

ProcEngine::~ProcEngine() { stop(); }

WorkerConfig ProcEngine::make_config(std::uint32_t worker) const {
  WorkerConfig c;
  c.num_pes = g_.num_pes();
  c.pe_begin = slots_[worker].pe_begin;
  c.pe_count = slots_[worker].pe_count;
  c.use_channel = opt_.use_channel();
  c.fault_seed = opt_.fault_seed + worker;  // distinct chaos per worker
  c.faults = opt_.faults;
  c.reliable = opt_.reliable;
  return c;
}

void ProcEngine::start() {
  DGR_CHECK_MSG(!started_, "ProcEngine::start called twice");
  started_ = true;
  // No prewarm_aux_roots here: the controller mints every aux root it needs
  // (taskroots, troot, uroot) before on_plane_begin fires, so the handoff
  // always ships them — and eager allocation here would advance this graph's
  // free lists relative to the sim/thread replicas the chaos harness diffs.

  hub_.set_control_handler([this](std::uint32_t worker, NetFrame f) {
    handle_control(worker, std::move(f));
  });
  hub_.set_worker_lost([this](std::uint32_t worker) {
    if (stopping_.load(std::memory_order_acquire)) return;
    DGR_ERROR("worker %u lost mid-run", worker);
    failed_.store(true, std::memory_order_release);
  });

  SocketAddr addr;
  if (opt_.tcp) {
    DGR_CHECK(SocketAddr::parse("tcp:127.0.0.1:0", addr));
  } else {
    addr.path = "/tmp/dgr-hub-" + std::to_string(::getpid()) + "-" +
                std::to_string(g_hub_serial.fetch_add(1)) + ".sock";
  }
  const bool up = hub_.listen(addr, [this](const RegisterMsg& reg) {
    SocketHub::Decision d;
    if (reg.proto_version != kProtoVersion) {
      d.reject.code = 1;
      d.reject.reason = "unsupported protocol version " +
                        std::to_string(reg.proto_version);
      return d;
    }
    if (reg.worker_index >= num_workers_) {
      d.reject.code = 3;
      d.reject.reason = "worker index out of range";
      return d;
    }
    d.accept = true;
    d.ack.worker_index = reg.worker_index;
    d.ack.num_workers = num_workers_;
    d.ack.config = make_config(reg.worker_index);
    return d;
  });
  DGR_CHECK_MSG(up, "hub listen failed");

  for (std::uint32_t w = 0; w < num_workers_; ++w) spawn_worker(w);
  DGR_CHECK_MSG(hub_.wait_workers(num_workers_, opt_.register_timeout_ms),
                "workers did not register in time");
}

void ProcEngine::spawn_worker(std::uint32_t worker) {
  std::string bin = opt_.worker_bin;
  if (bin.empty()) {
    if (const char* env = std::getenv("DGR_WORKER_BIN")) bin = env;
  }
  if (bin.empty()) bin = "dgr_worker";

  const std::string addr = hub_.address();
  const std::string index = std::to_string(worker);
  const pid_t pid = ::fork();
  DGR_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    const char* argv[] = {bin.c_str(),   "--connect", addr.c_str(),
                          "--index",     index.c_str(), nullptr};
    ::execvp(bin.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);  // exec failure; the registration timeout reports it
  }
  slots_[worker].pid = pid;
}

void ProcEngine::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  NetFrame f;
  f.type = FrameType::kShutdown;
  hub_.broadcast(f);
  // Workers exit on kShutdown; give them a grace window, then insist.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  for (WorkerSlot& s : slots_) {
    while (s.pid > 0) {
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(s.pid), &status, WNOHANG);
      if (r == static_cast<pid_t>(s.pid) || r < 0) {
        s.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(static_cast<pid_t>(s.pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(s.pid), &status, 0);
        s.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  hub_.close();
  started_ = false;
}

void ProcEngine::wait_quiescent() {
  while (!controller_->idle() &&
         !failed_.load(std::memory_order_acquire))
    std::this_thread::yield();
}

void ProcEngine::wait_cycle_done() { wait_quiescent(); }

void ProcEngine::inject(Task t) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  pools_[t.d.pe]->push(std::move(t));
}

void ProcEngine::on_plane_begin(Plane p) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  // The graph is final for this wave but the epoch has not been bumped yet —
  // exactly the state the replicas must copy. kPlaneBegin (with the bumped
  // epoch) follows at the first seed spawn; per-connection FIFO queues keep
  // the order handoff → begin → seed on every worker's wire.
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    NetFrame f;
    f.type = FrameType::kHandoff;
    f.payload = encode_handoff(g_, slots_[w].pe_begin, slots_[w].pe_count);
    stats_.handoff_bytes += f.payload.size();
    ++stats_.handoffs_sent;
    hub_.send_to_worker(w, f);
  }
  begin_pending_ = true;
  begin_plane_ = p;
}

void ProcEngine::spawn(Task t) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (!task_is_marking(t.kind)) {
    pools_[t.d.pe]->push(std::move(t));
    return;
  }
  if (begin_pending_) {
    begin_pending_ = false;
    NetFrame bf;
    bf.type = FrameType::kPlaneBegin;
    bf.payload =
        encode_plane_signal(begin_plane_, marker_->epoch(begin_plane_));
    hub_.broadcast(bf);
    ++stats_.planes_started;
  }
  NetFrame f;
  f.type = FrameType::kSeed;
  f.src = t.s.valid() && !t.s.is_rootpar() ? t.s.pe : t.d.pe;
  f.dst = t.d.pe;
  f.payload = encode_task(t);
  hub_.send_to_endpoint_owner(f);
  ++stats_.seeds_sent;
}

void ProcEngine::handle_control(std::uint32_t worker, NetFrame f) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  switch (f.type) {
    case FrameType::kPlaneDone: {
      Plane plane;
      std::uint64_t epoch = 0;
      if (!decode_plane_signal(f.payload, plane, epoch)) {
        DGR_ERROR("worker %u: malformed kPlaneDone", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      // Stale or duplicate termination reports are ignorable: each wave's
      // rootpar return is observed by exactly one worker, but a retransmit
      // path could replay the frame.
      if (!marker_->active(plane) || epoch != marker_->epoch(plane) ||
          collecting_)
        return;
      collecting_ = true;
      collect_plane_ = plane;
      collect_epoch_ = epoch;
      reports_in_ = 0;
      collect_stats_.reset();
      NetFrame q;
      q.type = FrameType::kQuiesce;
      q.payload = encode_plane_signal(plane, epoch);
      hub_.broadcast(q);
      return;
    }
    case FrameType::kMarkReport: {
      if (!collecting_) return;  // late duplicate
      MarkStats s;
      if (!apply_mark_report(f.payload, g_, collect_plane_, collect_epoch_,
                             s)) {
        DGR_ERROR("worker %u: mark report rejected", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      collect_stats_.marks += s.marks.load(std::memory_order_relaxed);
      collect_stats_.returns += s.returns.load(std::memory_order_relaxed);
      collect_stats_.remarks += s.remarks.load(std::memory_order_relaxed);
      collect_stats_.coop_spawns +=
          s.coop_spawns.load(std::memory_order_relaxed);
      ++stats_.reports_merged;
      if (++reports_in_ < num_workers_) return;
      // Every partition's marks are in the authoritative graph: adopt the
      // remote termination. The controller cascade continues from here —
      // rescue wave, the M_R plane, or the restructuring phase — still under
      // mu_, so no mutation or report interleaves.
      collecting_ = false;
      marker_->add_remote_stats(collect_plane_, collect_stats_);
      marker_->finish_remote(collect_plane_);
      return;
    }
    default:
      DGR_ERROR("worker %u: unexpected control frame %s", worker,
                frame_type_name(f.type));
      failed_.store(true, std::memory_order_release);
  }
}

void ProcEngine::collect_task_refs(std::vector<TaskRef>& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  for (const auto& p : pools_)
    p->for_each([&](const Task& t) { out.push_back(TaskRef{t.s, t.d}); });
}

std::size_t ProcEngine::expunge_tasks(
    const std::function<bool(const Task&)>& kill) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& p : pools_) n += p->expunge(kill);
  return n;
}

std::size_t ProcEngine::reprioritize_tasks(
    const std::function<std::uint8_t(const Task&)>& prio) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& p : pools_) n += p->reprioritize(prio);
  return n;
}

void ProcEngine::atomically(std::initializer_list<VertexId> /*vs*/,
                            const std::function<void()>& fn) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  fn();
}

void ProcEngine::enable_audit(AuditOptions opt) {
  audit_opt_ = opt;
  audit_enabled_ = opt.period != 0;
}

void ProcEngine::quiesce_begin() { maybe_audit(); }

void ProcEngine::maybe_audit() {
  audit_swept_check_ = false;
  if (!audit_enabled_) return;
  const std::uint64_t cyc = controller_->cycles_completed() + 1;
  if (cyc % audit_opt_.period != 0) return;
  ++audit_stats_.audits;
  auto fail = [&](const std::string& what) {
    ++audit_stats_.violations;
    audit_stats_.last_what = what;
    DGR_ERROR("proc audit violation (cycle %llu): %s",
              (unsigned long long)cyc, what.c_str());
  };
  if (audit_opt_.check_invariants) {
    // Same safe point as the threaded engine, reached differently: every
    // worker's kMarkReport for the wave has been merged, so the
    // authoritative graph holds the complete terminated marking.
    for (const Plane plane : {Plane::kR, Plane::kT}) {
      if (!marker_->active(plane) || !marker_->done(plane)) continue;
      if (marker_->cycle_tainted(plane)) continue;
      const InvariantReport rep =
          check_marking_invariants(g_, *marker_, plane, {});
      if (!rep.ok) fail(rep.what);
    }
  }
  if (audit_opt_.check_accounting) {
    const AccountingReport acc = check_heap_accounting(g_, *marker_);
    if (!acc.ok) {
      fail(acc.what);
    } else if (marker_->active(Plane::kR) && marker_->done(Plane::kR)) {
      audit_expected_gar_ = acc.gar;
      audit_swept_check_ = true;
    }
  }
}

void ProcEngine::on_cycle_complete(const CycleResult& res) {
  if (!audit_swept_check_) return;
  audit_swept_check_ = false;
  if (res.swept != audit_expected_gar_) {
    ++audit_stats_.violations;
    audit_stats_.last_what =
        "Property 1 violated: swept " + std::to_string(res.swept) +
        " != GAR' " + std::to_string(audit_expected_gar_);
    DGR_ERROR("proc audit violation (cycle %llu): %s",
              (unsigned long long)res.cycle, audit_stats_.last_what.c_str());
  }
}

obs::TraceBuffer* ProcEngine::enable_trace(std::size_t capacity) {
  if (!trace_) {
    trace_ = std::make_unique<obs::TraceBuffer>(capacity);
    marker_->set_trace(trace_.get());
    mutator_->set_trace(trace_.get());
    controller_->set_trace(trace_.get());
  }
  return trace_.get();
}

ProcEngineStats ProcEngine::stats() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ProcEngineStats s = stats_;
  s.transport = hub_.stats();
  return s;
}

}  // namespace dgr
