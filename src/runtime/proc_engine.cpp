#include "runtime/proc_engine.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/invariants.h"
#include "graph/partitioner.h"
#include "net/wire.h"
#include "util/assert.h"
#include "util/log.h"

namespace dgr {

namespace {
// Distinguishes concurrent ProcEngines in one test binary: each hub needs its
// own Unix-domain socket path.
std::atomic<std::uint32_t> g_hub_serial{0};
}  // namespace

ProcEngine::ProcEngine(Graph& g, ProcOptions opt)
    : g_(g),
      opt_(std::move(opt)),
      num_workers_(std::min(opt_.workers == 0 ? 1u : opt_.workers,
                            g.num_pes())),
      metrics_(g.num_pes()),
      t0_(std::chrono::steady_clock::now()) {
  clock_.resize(num_workers_);
  tele_.resize(num_workers_);
  worker_events_.resize(num_workers_);
  marker_ = std::make_unique<Marker>(g_, *this);
  mutator_ = std::make_unique<Mutator>(g_, *marker_);
  controller_ =
      std::make_unique<Controller>(g_, *marker_, *this, VertexId::invalid());
  // Restructuring runs inline on the hub reader thread that merged the final
  // mark report — no vertex lock is held there (the controller executes no
  // marking tasks itself), so deferral is unnecessary.

  // Contiguous PE blocks, remainder spread over the first workers.
  const std::uint32_t base = g_.num_pes() / num_workers_;
  const std::uint32_t rem = g_.num_pes() % num_workers_;
  slots_.resize(num_workers_);
  PeId begin = 0;
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    slots_[w].pe_begin = begin;
    slots_[w].pe_count = base + (w < rem ? 1 : 0);
    for (std::uint32_t i = 0; i < slots_[w].pe_count; ++i)
      slots_[w].pes.push_back(begin + i);
    begin += slots_[w].pe_count;
  }
  sent_seq_.assign(num_workers_, 0);
  acked_seq_.assign(num_workers_, 0);
  force_full_.assign(num_workers_, 1);  // first handoff is always a snapshot
  reported_.assign(num_workers_, 0);

  for (PeId pe = 0; pe < g_.num_pes(); ++pe)
    pools_.push_back(std::make_unique<TaskPool>());

  // Rescue waves reopen the plane before any seed is spawned; replicas must
  // learn both (and the controller-minted rescue root's record, which the
  // plane handoff may never have shipped) before the seeds arrive.
  marker_->set_rescue_seed_hook(
      [this](Plane p, VertexId root, std::size_t /*seeds*/) {
        NetFrame f;
        f.type = FrameType::kRescueBegin;
        f.gen = gen_;
        f.payload = encode_rescue_begin(p, marker_->epoch(p), root,
                                        g_.at(root));
        hub_.broadcast(f);
        ++stats_.rescue_begins;
      });
}

ProcEngine::~ProcEngine() { stop(); }

WorkerConfig ProcEngine::make_config(std::uint32_t worker) const {
  WorkerConfig c;
  c.num_pes = g_.num_pes();
  c.pe_begin = slots_[worker].pe_begin;
  c.pe_count = slots_[worker].pe_count;
  c.use_channel = opt_.use_channel();
  c.fault_seed = opt_.fault_seed + worker;  // distinct chaos per worker
  c.faults = opt_.faults;
  c.reliable = opt_.reliable;
  c.trace_enabled = worker_trace_;
  c.trace_capacity = trace_capacity_;
  return c;
}

void ProcEngine::start() {
  DGR_CHECK_MSG(!started_, "ProcEngine::start called twice");
  started_ = true;
  // No prewarm_aux_roots here: the controller mints every aux root it needs
  // (taskroots, troot, uroot) before on_plane_begin fires, so the handoff
  // always ships them — and eager allocation here would advance this graph's
  // free lists relative to the sim/thread replicas the chaos harness diffs.

  hub_.set_control_handler([this](std::uint32_t worker, NetFrame f) {
    handle_control(worker, std::move(f));
  });
  hub_.set_worker_lost([this](std::uint32_t worker) {
    if (stopping_.load(std::memory_order_acquire)) return;
    std::lock_guard<std::recursive_mutex> lk(mu_);
    on_worker_lost(worker);
  });

  SocketAddr addr;
  if (opt_.tcp) {
    DGR_CHECK(SocketAddr::parse("tcp:127.0.0.1:0", addr));
  } else {
    addr.path = "/tmp/dgr-hub-" + std::to_string(::getpid()) + "-" +
                std::to_string(g_hub_serial.fetch_add(1)) + ".sock";
  }
  const bool up = hub_.listen(addr, [this](const RegisterMsg& reg) {
    SocketHub::Decision d;
    if (reg.proto_version != kProtoVersion) {
      d.reject.code = 1;
      d.reject.reason = "unsupported protocol version " +
                        std::to_string(reg.proto_version);
      return d;
    }
    if (reg.worker_index >= num_workers_) {
      d.reject.code = 3;
      d.reject.reason = "worker index out of range";
      return d;
    }
    // The policy runs under the hub lock only (lock order mu_ → hub forbids
    // taking mu_ here); dead_mask_ mirrors slot liveness for exactly this
    // check. A fenced slot stays fenced: its partition has been reassigned,
    // so a late reconnect would resurrect a stale replica.
    if (reg.worker_index < 64 &&
        (dead_mask_.load(std::memory_order_acquire) &
         (1ull << reg.worker_index))) {
      d.reject.code = 4;
      d.reject.reason = "worker slot fenced after loss";
      return d;
    }
    d.accept = true;
    d.ack.worker_index = reg.worker_index;
    d.ack.num_workers = num_workers_;
    d.ack.config = make_config(reg.worker_index);
    return d;
  });
  DGR_CHECK_MSG(up, "hub listen failed");

  for (std::uint32_t w = 0; w < num_workers_; ++w) spawn_worker(w);
  DGR_CHECK_MSG(hub_.wait_workers(num_workers_, opt_.register_timeout_ms),
                "workers did not register in time");

  // First clock probes right after registration, while the wire is quiet —
  // usually the tightest (min-RTT) sample of the whole run. Refreshed at
  // every plane begin.
  for (std::uint32_t w = 0; w < num_workers_; ++w) send_clock_probe(w);

  touch_progress();
  if (opt_.barrier_timeout_ms > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

void ProcEngine::send_clock_probe(std::uint32_t worker) {
  ClockProbeMsg p;
  p.seq = ++clock_seq_;
  p.t_controller_us = now_us();
  NetFrame f;
  f.type = FrameType::kClockProbe;
  f.payload = encode_clock_probe(p);
  hub_.send_to_worker(worker, f);
}

void ProcEngine::spawn_worker(std::uint32_t worker) {
  std::string bin = opt_.worker_bin;
  if (bin.empty()) {
    if (const char* env = std::getenv("DGR_WORKER_BIN")) bin = env;
  }
  if (bin.empty()) bin = "dgr_worker";

  const std::string addr = hub_.address();
  const std::string index = std::to_string(worker);
  const pid_t pid = ::fork();
  DGR_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    const char* argv[] = {bin.c_str(),   "--connect", addr.c_str(),
                          "--index",     index.c_str(), nullptr};
    ::execvp(bin.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);  // exec failure; the registration timeout reports it
  }
  slots_[worker].pid = pid;
}

void ProcEngine::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  NetFrame f;
  f.type = FrameType::kShutdown;
  hub_.broadcast(f);
  // Workers exit on kShutdown; give them a grace window, then insist.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  for (WorkerSlot& s : slots_) {
    while (s.pid > 0) {
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(s.pid), &status, WNOHANG);
      if (r == static_cast<pid_t>(s.pid) || r < 0) {
        s.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(static_cast<pid_t>(s.pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(s.pid), &status, 0);
        s.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  hub_.close();
  started_ = false;
}

void ProcEngine::wait_quiescent() {
  while ((!controller_->idle() ||
          recovering_.load(std::memory_order_acquire)) &&
         !failed_.load(std::memory_order_acquire))
    std::this_thread::yield();
}

void ProcEngine::wait_cycle_done() { wait_quiescent(); }

void ProcEngine::start_cycle(const CycleOptions& opt) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  controller_->start_cycle(opt);
}

std::uint16_t ProcEngine::membership_gen() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return gen_;
}

std::uint32_t ProcEngine::workers_live() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return live_count_locked();
}

bool ProcEngine::worker_alive(std::uint32_t worker) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return worker < slots_.size() && slots_[worker].alive;
}

long ProcEngine::worker_pid(std::uint32_t worker) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return worker < slots_.size() ? slots_[worker].pid : -1;
}

std::uint32_t ProcEngine::live_count_locked() const {
  std::uint32_t n = 0;
  for (const WorkerSlot& s : slots_)
    if (s.alive) ++n;
  return n;
}

void ProcEngine::inject(Task t) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  pools_[t.d.pe]->push(std::move(t));
}

void ProcEngine::on_plane_begin(Plane p) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  // The graph is final for this wave but the epoch has not been bumped yet —
  // exactly the state the replicas must copy. kPlaneBegin (with the bumped
  // epoch) follows at the first seed spawn; per-connection FIFO queues keep
  // the order handoff → begin → seed on every worker's wire.
  tracker_.scan(g_);
  ++handoff_count_;
  const bool periodic = opt_.full_handoff_period != 0 &&
                        handoff_count_ % opt_.full_handoff_period == 0;
  std::vector<std::uint8_t> owned(g_.num_pes(), 0);
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    if (!slots_[w].alive) continue;
    std::fill(owned.begin(), owned.end(), std::uint8_t{0});
    for (PeId pe : slots_[w].pes) owned[pe] = 1;
    // An unacked previous handoff (sent ≠ acked) forces a snapshot too: the
    // delta baseline would be the controller's guess, not the worker's view.
    const bool force = periodic || force_full_[w] != 0 ||
                       sent_seq_[w] != acked_seq_[w];
    std::uint8_t kind = kHandoffFull;
    NetFrame f;
    f.type = FrameType::kHandoff;
    f.gen = gen_;
    f.payload = tracker_.encode(g_, owned, acked_seq_[w], force, &kind);
    const std::uint64_t bytes = f.payload.size();
    stats_.handoff_bytes += bytes;
    ++stats_.handoffs_sent;
    slots_[w].handoff_bytes += bytes;
    const PeId home = home_pe(w);
    if (kind == kHandoffDelta) {
      ++stats_.handoffs_delta;
      stats_.handoff_delta_bytes += bytes;
      slots_[w].handoff_delta_bytes += bytes;
      metrics_.add(home, obs::Counter::kHandoffDeltaBytes, bytes);
    } else {
      ++stats_.handoffs_full;
      stats_.handoff_full_bytes += bytes;
      slots_[w].handoff_full_bytes += bytes;
      metrics_.add(home, obs::Counter::kHandoffFullBytes, bytes);
    }
    metrics_.add(home, obs::Counter::kHandoffBytes, bytes);
    sent_seq_[w] = tracker_.seq();
    force_full_[w] = 0;
    hub_.send_to_worker(w, f);
    send_clock_probe(w);
  }
  begin_pending_ = true;
  begin_plane_ = p;
}

void ProcEngine::spawn(Task t) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (!task_is_marking(t.kind)) {
    pools_[t.d.pe]->push(std::move(t));
    return;
  }
  if (begin_pending_) {
    begin_pending_ = false;
    NetFrame bf;
    bf.type = FrameType::kPlaneBegin;
    bf.gen = gen_;
    bf.payload =
        encode_plane_signal(begin_plane_, marker_->epoch(begin_plane_));
    hub_.broadcast(bf);
    ++stats_.planes_started;
  }
  NetFrame f;
  f.type = FrameType::kSeed;
  f.gen = gen_;
  f.src = t.s.valid() && !t.s.is_rootpar() ? t.s.pe : t.d.pe;
  f.dst = t.d.pe;
  f.payload = encode_task(t);
  hub_.send_to_endpoint_owner(f);
  ++stats_.seeds_sent;
}

void ProcEngine::handle_control(std::uint32_t worker, NetFrame f) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  // A fenced worker's frames may still drain out of the hub queue after the
  // loss was declared (or after the watchdog dropped it); they are void.
  if (worker >= slots_.size() || !slots_[worker].alive) return;
  touch_progress();
  switch (f.type) {
    case FrameType::kPlaneDone: {
      Plane plane;
      std::uint64_t epoch = 0;
      if (!decode_plane_signal(f.payload, plane, epoch)) {
        DGR_ERROR("worker %u: malformed kPlaneDone", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      // Stale or duplicate termination reports are ignorable: each wave's
      // rootpar return is observed by exactly one worker, but a retransmit
      // path could replay the frame — and an aborted wave can leave one in
      // flight across a membership fence.
      if (!marker_->active(plane) || epoch != marker_->epoch(plane) ||
          collecting_)
        return;
      collecting_ = true;
      collect_plane_ = plane;
      collect_epoch_ = epoch;
      reports_in_ = 0;
      reported_.assign(num_workers_, 0);
      collect_stats_.reset();
      NetFrame q;
      q.type = FrameType::kQuiesce;
      q.gen = gen_;
      q.payload = encode_plane_signal(plane, epoch);
      hub_.broadcast(q);
      return;
    }
    case FrameType::kMarkReport: {
      if (!collecting_) return;  // late duplicate
      {
        // Peek the report's plane/epoch before merging: a wave aborted by a
        // membership fence leaves reports in flight that reach here after
        // the next wave opened collection. Those are stale, not malformed —
        // drop them silently (apply_mark_report would reject the mismatch,
        // and treating that as fatal would fail every recovery).
        ByteReader r(f.payload);
        const std::uint8_t p = r.u8();
        const std::uint64_t epoch = r.u64();
        if (!r.ok() || static_cast<Plane>(p) != collect_plane_ ||
            epoch != collect_epoch_)
          return;
      }
      if (reported_[worker]) return;  // duplicate within the wave
      MarkStats s;
      if (!apply_mark_report(f.payload, g_, collect_plane_, collect_epoch_,
                             s)) {
        DGR_ERROR("worker %u: mark report rejected", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      reported_[worker] = 1;
      collect_stats_.marks += s.marks.load(std::memory_order_relaxed);
      collect_stats_.returns += s.returns.load(std::memory_order_relaxed);
      collect_stats_.remarks += s.remarks.load(std::memory_order_relaxed);
      collect_stats_.coop_spawns +=
          s.coop_spawns.load(std::memory_order_relaxed);
      ++stats_.reports_merged;
      if (++reports_in_ < live_count_locked()) return;
      // Every partition's marks are in the authoritative graph: adopt the
      // remote termination. The controller cascade continues from here —
      // rescue wave, the M_R plane, or the restructuring phase — still under
      // mu_, so no mutation or report interleaves.
      collecting_ = false;
      marker_->add_remote_stats(collect_plane_, collect_stats_);
      marker_->finish_remote(collect_plane_);
      return;
    }
    case FrameType::kHandoffAck: {
      HandoffAckMsg ack;
      if (!decode_handoff_ack(f.payload, ack)) {
        DGR_ERROR("worker %u: malformed kHandoffAck", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      if (ack.ok) {
        if (ack.seq > acked_seq_[worker]) acked_seq_[worker] = ack.seq;
        return;
      }
      // Checksum mismatch: the replica diverged from the authoritative
      // structure. Fence the membership generation (voiding the wave the
      // bad replica may already be marking) and force a full resync; the
      // worker itself keeps its slot — unlike a loss, no repartition.
      DGR_ERROR("worker %u: handoff %llu checksum mismatch, forcing resync",
                worker, (unsigned long long)ack.seq);
      ++stats_.handoff_resyncs;
      metrics_.add(home_pe(worker), obs::Counter::kHandoffResyncs);
      DGR_TRACE_EVENT(trace_.get(), obs::EventType::kHandoffResync,
                      Plane::kR, home_pe(worker), worker, ack.seq);
      acked_seq_[worker] = 0;
      force_full_[worker] = 1;
      fence_and_restart();
      return;
    }
    case FrameType::kTelemetry: {
      TelemetryMsg m;
      if (!decode_telemetry(f.payload, m)) {
        DGR_ERROR("worker %u: malformed kTelemetry", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      // Fold the worker's registry delta into the merged per-PE view. The
      // codec validated counter/hist/event-type ids; PE range is validated
      // here against the authoritative graph.
      for (const auto& c : m.counters)
        if (c.pe < g_.num_pes())
          metrics_.add(c.pe, static_cast<obs::Counter>(c.counter), c.delta);
      for (const auto& h : m.hists) {
        if (h.pe >= g_.num_pes()) continue;
        for (const auto& [bucket, n] : h.buckets)
          metrics_.merge_hist_bucket(h.pe, static_cast<obs::Hist>(h.hist),
                                     bucket, n, h.max);
      }
      WorkerTele& t = tele_[worker];
      ++t.telemetry_msgs;
      t.ring_dropped += m.ring_dropped;
      t.events_omitted += m.events_omitted;
      metrics_.add(home_pe(worker), obs::Counter::kTelemetryMsgs);
      const std::uint64_t lost = m.ring_dropped + m.events_omitted;
      if (lost)
        metrics_.add(home_pe(worker), obs::Counter::kTelemetryDropped,
                     lost);
      auto& ev = worker_events_[worker];
      ev.insert(ev.end(), m.events.begin(), m.events.end());
      if (lost) {
        // Make the loss visible inside the trace itself, stamped at the
        // lane's current tail so the lane stays monotone after rebase.
        const std::uint64_t ts = ev.empty() ? 0 : ev.back().ts;
        ev.push_back(obs::make_drop_event(
            ts, 0, static_cast<std::uint16_t>(m.pe_begin), m.ring_dropped,
            m.events_omitted));
      }
      return;
    }
    case FrameType::kClockEcho: {
      ClockEchoMsg echo;
      if (!decode_clock_echo(f.payload, echo)) {
        DGR_ERROR("worker %u: malformed kClockEcho", worker);
        failed_.store(true, std::memory_order_release);
        return;
      }
      clock_[worker].on_echo(echo.t_controller_us, now_us(),
                             echo.t_worker_us);
      return;
    }
    default:
      DGR_ERROR("worker %u: unexpected control frame %s", worker,
                frame_type_name(f.type));
      failed_.store(true, std::memory_order_release);
  }
}

void ProcEngine::on_worker_lost(std::uint32_t worker) {
  // Caller holds mu_. Runs on the dead connection's hub reader thread (its
  // last act before exiting), or recursively via a watchdog-forced drop.
  if (worker >= slots_.size() || !slots_[worker].alive) return;
  WorkerSlot& s = slots_[worker];
  s.alive = false;
  if (worker < 64)
    dead_mask_.fetch_or(1ull << worker, std::memory_order_release);
  ++stats_.workers_lost;
  const PeId home = home_pe(worker);
  metrics_.add(home, obs::Counter::kWorkerLost);
  const std::uint32_t live = live_count_locked();
  if (live == 0) {
    DGR_ERROR("worker %u lost; no survivors, run failed", worker);
    failed_.store(true, std::memory_order_release);
    return;
  }
  DGR_ERROR("worker %u lost (gen %u → %u); repartitioning %zu PEs onto %u "
            "survivors",
            worker, (unsigned)gen_, (unsigned)(gen_ + 1), s.pes.size(), live);
  DGR_TRACE_EVENT(trace_.get(), obs::EventType::kWorkerLost, Plane::kR, home,
                  worker, gen_ + 1);
  recovering_.store(true, std::memory_order_release);
  repartition_onto_survivors();
  fence_and_restart();
  recovering_.store(false, std::memory_order_release);
}

void ProcEngine::repartition_onto_survivors() {
  // Caller holds mu_. Reassign ALL PEs across the survivors with the same
  // pluggable partitioner the workload builders use, in PE space: each PE is
  // a "position", each surviving worker a "bin", and cross-PE args supply
  // the adjacency (duplicates act as edge weights — the greedy placer sees
  // hot PE pairs more often and co-locates them).
  std::vector<std::uint32_t> survivors;
  for (std::uint32_t w = 0; w < num_workers_; ++w)
    if (slots_[w].alive) survivors.push_back(w);
  DGR_CHECK(!survivors.empty());
  const std::uint32_t P = g_.num_pes();
  std::vector<IndexEdge> edges;
  g_.for_each_live([&](VertexId v) {
    for (const ArgEdge& e : g_.at(v).args)
      if (e.to.valid() && e.to.pe != v.pe)
        edges.push_back(IndexEdge{v.pe, e.to.pe});
  });
  const auto part = make_partitioner(PartitionStrategy::kGreedy);
  const auto bins = static_cast<std::uint32_t>(survivors.size());
  const std::uint32_t cap = (P + bins - 1) / bins;
  const std::vector<PeId> asg = part->assign(P, bins, edges, cap);

  std::vector<std::uint32_t> prev_owner(P, kAnyWorkerIndex);
  for (std::uint32_t w = 0; w < num_workers_; ++w)
    for (PeId pe : slots_[w].pes) prev_owner[pe] = w;
  for (std::uint32_t w = 0; w < num_workers_; ++w) slots_[w].pes.clear();
  std::uint64_t moved = 0;
  for (PeId pe = 0; pe < P; ++pe) {
    const std::uint32_t w = survivors[asg[pe]];
    slots_[w].pes.push_back(pe);
    hub_.set_endpoint_owner(pe, w);
    if (prev_owner[pe] != w) ++moved;
  }
  stats_.partitions_reassigned += moved;
  metrics_.add(home_pe(survivors[0]), obs::Counter::kPartitionReassigned,
               moved);
  DGR_TRACE_EVENT(trace_.get(), obs::EventType::kPartitionReassign, Plane::kR,
                  0, moved, survivors.size());
}

void ProcEngine::fence_and_restart() {
  // Caller holds mu_. Bump the membership generation and broadcast the
  // fence; per-connection FIFO guarantees every survivor sees it before any
  // frame of the restarted wave, and receivers void kData/kSeed stamped with
  // the old generation — no ack round is needed.
  ++gen_;
  NetFrame fence;
  fence.type = FrameType::kEpochFence;
  fence.gen = gen_;
  hub_.broadcast(fence);
  // Ownership may have changed and the workers' delta baselines are no
  // longer trusted across a fence: next handoff is a snapshot for everyone.
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    force_full_[w] = 1;
    acked_seq_[w] = 0;
    sent_seq_[w] = 0;
  }
  collecting_ = false;
  begin_pending_ = false;
  reported_.assign(num_workers_, 0);
  probing_ = false;
  touch_progress();
  ++stats_.recoveries;
  if (!controller_->idle()) {
    // Resume from the last completed quiesce: abandon the in-flight cycle
    // (stale marks are voided by the epoch bump of the restart) and re-run
    // it with the same options. start_cycle re-enters on_plane_begin/spawn
    // recursively under mu_, so the whole restart is atomic with the fence.
    const CycleOptions opt = controller_->current_options();
    controller_->abort_cycle();
    controller_->start_cycle(opt);
  }
}

void ProcEngine::watchdog_loop() {
  const auto window_us =
      static_cast<std::uint64_t>(opt_.barrier_timeout_ms) * 1000;
  const auto poll = std::chrono::milliseconds(
      std::max(1, std::min(opt_.barrier_timeout_ms / 4, 50)));
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll);
    std::vector<std::uint32_t> to_drop;
    {
      std::lock_guard<std::recursive_mutex> lk(mu_);
      if (failed_.load(std::memory_order_acquire)) return;
      if (controller_->idle()) {
        probing_ = false;
        continue;
      }
      const std::uint64_t now = now_us();
      if (!probing_) {
        if (now - last_progress_us_.load(std::memory_order_acquire) <
            window_us)
          continue;
        // First deadline: the cycle stalled. Probe every live worker (clock
        // probes double as liveness pings) and snapshot their echo counts;
        // the verdict comes one window later. probing_ is NOT reset by
        // progress touches — one chatty worker must not mask another's
        // death behind a moving deadline.
        probing_ = true;
        probe_deadline_us_ = now + window_us;
        probe_snapshot_.assign(num_workers_, 0);
        for (std::uint32_t w = 0; w < num_workers_; ++w) {
          if (!slots_[w].alive) continue;
          probe_snapshot_[w] = clock_[w].samples();
          send_clock_probe(w);
        }
        continue;
      }
      if (now < probe_deadline_us_) continue;
      // Second deadline: drop workers that neither echoed the probe nor
      // reported for the wave being collected. Covers a worker that dies
      // between registration and its first mark report (no frame of its
      // ever arrives) and a wedged-but-connected process alike.
      for (std::uint32_t w = 0; w < num_workers_; ++w) {
        if (!slots_[w].alive) continue;
        const bool echoed = clock_[w].samples() > probe_snapshot_[w];
        const bool reported = collecting_ && reported_[w];
        if (!echoed && !reported) to_drop.push_back(w);
      }
      probing_ = false;
      touch_progress();
    }
    for (std::uint32_t w : to_drop) {
      DGR_ERROR("watchdog: worker %u missed the quiesce-barrier deadline, "
                "dropping",
                w);
      // Forces EOF on the connection; the reader thread then runs the same
      // on_worker_lost path a crashed worker would.
      hub_.drop_worker(w);
    }
  }
}

void ProcEngine::collect_task_refs(std::vector<TaskRef>& out) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  for (const auto& p : pools_)
    p->for_each([&](const Task& t) { out.push_back(TaskRef{t.s, t.d}); });
}

std::size_t ProcEngine::expunge_tasks(
    const std::function<bool(const Task&)>& kill) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& p : pools_) n += p->expunge(kill);
  return n;
}

std::size_t ProcEngine::reprioritize_tasks(
    const std::function<std::uint8_t(const Task&)>& prio) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& p : pools_) n += p->reprioritize(prio);
  return n;
}

void ProcEngine::atomically(std::initializer_list<VertexId> /*vs*/,
                            const std::function<void()>& fn) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  fn();
}

void ProcEngine::atomically(std::span<const VertexId> /*vs*/,
                            const std::function<void()>& fn) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  fn();
}

void ProcEngine::enable_audit(AuditOptions opt) {
  audit_opt_ = opt;
  audit_enabled_ = opt.period != 0;
}

void ProcEngine::quiesce_begin() { maybe_audit(); }

void ProcEngine::maybe_audit() {
  audit_swept_check_ = false;
  if (!audit_enabled_) return;
  const std::uint64_t cyc = controller_->cycles_completed() + 1;
  if (cyc % audit_opt_.period != 0) return;
  ++audit_stats_.audits;
  auto fail = [&](const std::string& what) {
    ++audit_stats_.violations;
    audit_stats_.last_what = what;
    DGR_ERROR("proc audit violation (cycle %llu): %s",
              (unsigned long long)cyc, what.c_str());
  };
  if (audit_opt_.check_invariants) {
    // Same safe point as the threaded engine, reached differently: every
    // worker's kMarkReport for the wave has been merged, so the
    // authoritative graph holds the complete terminated marking.
    for (const Plane plane : {Plane::kR, Plane::kT}) {
      if (!marker_->active(plane) || !marker_->done(plane)) continue;
      if (marker_->cycle_tainted(plane)) continue;
      const InvariantReport rep =
          check_marking_invariants(g_, *marker_, plane, {});
      if (!rep.ok) fail(rep.what);
    }
  }
  if (audit_opt_.check_accounting) {
    const AccountingReport acc = check_heap_accounting(g_, *marker_);
    if (!acc.ok) {
      fail(acc.what);
    } else if (marker_->active(Plane::kR) && marker_->done(Plane::kR)) {
      audit_expected_gar_ = acc.gar;
      audit_swept_check_ = true;
    }
  }
}

void ProcEngine::on_cycle_complete(const CycleResult& res) {
  if (!audit_swept_check_) return;
  audit_swept_check_ = false;
  if (res.swept != audit_expected_gar_) {
    ++audit_stats_.violations;
    audit_stats_.last_what =
        "Property 1 violated: swept " + std::to_string(res.swept) +
        " != GAR' " + std::to_string(audit_expected_gar_);
    DGR_ERROR("proc audit violation (cycle %llu): %s",
              (unsigned long long)res.cycle, audit_stats_.last_what.c_str());
  }
}

obs::TraceBuffer* ProcEngine::enable_trace(std::size_t capacity) {
#if DGR_TRACE_ENABLED
  if (!trace_) {
    trace_ = std::make_unique<obs::TraceBuffer>(capacity);
    trace_->set_clock([this] { return now_us(); });
    marker_->set_trace(trace_.get());
    mutator_->set_trace(trace_.get());
    controller_->set_trace(trace_.get());
    worker_trace_ = true;
    trace_capacity_ = static_cast<std::uint32_t>(capacity);
  }
  return trace_.get();
#else
  (void)capacity;
  return nullptr;
#endif
}

std::vector<std::vector<obs::TraceEvent>> ProcEngine::worker_traces() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  std::vector<std::vector<obs::TraceEvent>> out = worker_events_;
  for (std::uint32_t w = 0; w < num_workers_; ++w)
    for (obs::TraceEvent& e : out[w]) e.ts = clock_[w].rebase(e.ts);
  return out;
}

std::int64_t ProcEngine::clock_offset_us(std::uint32_t worker) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return worker < clock_.size() ? clock_[worker].offset_us() : 0;
}

std::uint64_t ProcEngine::clock_rtt_us(std::uint32_t worker) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return worker < clock_.size() ? clock_[worker].rtt_us() : 0;
}

std::uint64_t ProcEngine::clock_samples(std::uint32_t worker) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return worker < clock_.size() ? clock_[worker].samples() : 0;
}

std::string ProcEngine::cluster_metrics_json() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  const std::vector<SocketHub::RelayCount> relay = hub_.relay_by_worker();
  // Per-worker sums over the (possibly non-contiguous) owned PE set of the
  // merged registry.
  auto range_sum = [&](std::uint32_t w, obs::Counter c) {
    std::uint64_t n = 0;
    for (PeId pe : slots_[w].pes) n += metrics_.get(pe, c);
    return n;
  };
  std::string out = metrics_.to_json();
  out.pop_back();  // reopen the registry object to append the rollup
  char buf[640];
  std::snprintf(buf, sizeof(buf), ",\"num_workers\":%u,\"workers\":[",
                num_workers_);
  out += buf;
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    const std::uint64_t rf = w < relay.size() ? relay[w].frames : 0;
    const std::uint64_t rb = w < relay.size() ? relay[w].bytes : 0;
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"worker\":%u,\"pe_begin\":%u,\"pe_count\":%u,\"alive\":%s,"
        "\"marks\":%llu,\"returns\":%llu,\"remote_messages\":%llu,"
        "\"retransmits\":%llu,\"handoff_bytes\":%llu,"
        "\"handoff_full_bytes\":%llu,\"handoff_delta_bytes\":%llu,"
        "\"relayed_frames\":%llu,\"relayed_bytes\":%llu,"
        "\"telemetry_msgs\":%llu,\"telemetry_dropped\":%llu,"
        "\"clock_offset_us\":%lld,\"clock_rtt_us\":%llu}",
        w == 0 ? "" : ",", w, slots_[w].pe_begin,
        static_cast<std::uint32_t>(slots_[w].pes.size()),
        slots_[w].alive ? "true" : "false",
        (unsigned long long)range_sum(w, obs::Counter::kMarkTasks),
        (unsigned long long)range_sum(w, obs::Counter::kReturnTasks),
        (unsigned long long)range_sum(w, obs::Counter::kRemoteMessages),
        (unsigned long long)range_sum(w, obs::Counter::kMsgRetransmit),
        (unsigned long long)slots_[w].handoff_bytes,
        (unsigned long long)slots_[w].handoff_full_bytes,
        (unsigned long long)slots_[w].handoff_delta_bytes,
        (unsigned long long)rf, (unsigned long long)rb,
        (unsigned long long)tele_[w].telemetry_msgs,
        (unsigned long long)(tele_[w].ring_dropped +
                             tele_[w].events_omitted),
        (long long)clock_[w].offset_us(),
        (unsigned long long)clock_[w].rtt_us());
    out += buf;
  }
  out += "]";
  std::snprintf(
      buf, sizeof(buf),
      ",\"membership\":{\"gen\":%u,\"workers_total\":%u,\"workers_live\":%u,"
      "\"worker_lost\":%llu,\"partition_reassigned\":%llu,"
      "\"handoff_resyncs\":%llu,\"recoveries\":%llu,"
      "\"handoffs_full\":%llu,\"handoffs_delta\":%llu}",
      (unsigned)gen_, num_workers_, live_count_locked(),
      (unsigned long long)stats_.workers_lost,
      (unsigned long long)stats_.partitions_reassigned,
      (unsigned long long)stats_.handoff_resyncs,
      (unsigned long long)stats_.recoveries,
      (unsigned long long)stats_.handoffs_full,
      (unsigned long long)stats_.handoffs_delta);
  out += buf;
  out += "}";
  return out;
}

ProcEngineStats ProcEngine::stats() const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  ProcEngineStats s = stats_;
  s.transport = hub_.stats();
  return s;
}

}  // namespace dgr
