// Per-PE task pool with dynamic priorities (Hudak §3.2, §5.2).
//
// "each [PE] maintains a list taskpool(i) of all reduction tasks whose
// destination resides on that PE". Tasks are held in three priority buckets
// (3 = vital, 2 = eager, 1 = reserve); the PE always serves the highest
// non-empty bucket, which is how vital tasks outcompete eager ones when
// resources are limited. The restructuring phase moves tasks between buckets
// (reprioritize) and deletes irrelevant ones (expunge).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/task.h"
#include "util/assert.h"
#include "util/rng.h"

namespace dgr {

class TaskPool {
 public:
  void push(Task t) {
    const int b = bucket(t.pool_prior);
    buckets_[b].push_back(std::move(t));
    ++size_;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Pop from the highest-priority non-empty bucket. `rng`, when provided,
  // picks a random element within the bucket (interleaving coverage in the
  // simulator); otherwise FIFO.
  Task pop(Rng* rng = nullptr) {
    DGR_CHECK(size_ > 0);
    for (int b = 2; b >= 0; --b) {
      auto& q = buckets_[b];
      if (q.empty()) continue;
      std::size_t i = 0;
      if (rng && q.size() > 1) i = rng->below(q.size());
      Task t = std::move(q[i]);
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      --size_;
      return t;
    }
    DGR_CHECK(false);
    return Task{};
  }

  // Delete all tasks satisfying `kill`; returns how many were expunged.
  std::size_t expunge(const std::function<bool(const Task&)>& kill) {
    std::size_t n = 0;
    for (auto& q : buckets_) {
      for (std::size_t i = 0; i < q.size();) {
        if (kill(q[i])) {
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
          ++n;
        } else {
          ++i;
        }
      }
    }
    size_ -= n;
    return n;
  }

  // Recompute each task's priority; returns how many tasks moved buckets.
  std::size_t reprioritize(
      const std::function<std::uint8_t(const Task&)>& prio) {
    std::size_t moved = 0;
    std::deque<Task> moving;
    for (int b = 0; b < 3; ++b) {
      auto& q = buckets_[b];
      for (std::size_t i = 0; i < q.size();) {
        const std::uint8_t p = prio(q[i]);
        if (bucket(p) != b) {
          Task t = std::move(q[i]);
          t.pool_prior = p;
          moving.push_back(std::move(t));
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
          ++moved;
        } else {
          q[i].pool_prior = p;
          ++i;
        }
      }
    }
    for (Task& t : moving) {
      buckets_[bucket(t.pool_prior)].push_back(std::move(t));
    }
    return moved;
  }

  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& q : buckets_)
      for (const Task& t : q) fn(t);
  }

 private:
  static int bucket(std::uint8_t prior) {
    if (prior >= 3) return 2;
    if (prior == 2) return 1;
    return 0;
  }
  std::deque<Task> buckets_[3];
  std::size_t size_ = 0;
};

}  // namespace dgr
