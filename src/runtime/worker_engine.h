// The worker half of ProcEngine: a single-threaded marking executor over a
// graph-partition replica, driven entirely by frames from the controller
// socket (docs/CLUSTER.md walks the lifecycle).
//
// A worker owns a contiguous PE block [pe_begin, pe_begin + pe_count). It
// receives partition handoffs (kHandoff) before every marking plane, opens
// the plane at the controller's epoch (kPlaneBegin / kRescueBegin), executes
// mark/return tasks for its own PEs, and ships cross-worker child marks as
// kData frames that the controller hub relays to the owner — optionally
// through the worker-side reliable channel + fault plane, so the chaos
// schedule exercises the full recovery discipline across real process
// boundaries. When its replica observes the termination return to rootpar it
// reports kPlaneDone; on kQuiesce it flushes its planes and answers with a
// kMarkReport for the controller to merge.
//
// Single-threadedness is load-bearing: frames are handled strictly in
// arrival order and each task executes to completion (including its local
// child cascade) before the next frame is read, so a kQuiesce can never
// overtake work the controller already counted.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/marker.h"
#include "core/task.h"
#include "net/fault_plane.h"
#include "net/frame.h"
#include "net/proto.h"
#include "net/reliable_channel.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace dgr {

class WorkerEngine final : public TaskSink {
 public:
  // `sock` is the registered controller connection; `codec` carries any
  // bytes that followed the kRegisterAck in the same read.
  WorkerEngine(Socket sock, FrameCodec codec, std::uint32_t worker_index,
               WorkerConfig cfg);

  WorkerEngine(const WorkerEngine&) = delete;
  WorkerEngine& operator=(const WorkerEngine&) = delete;

  // Frame loop until kShutdown (returns 0), peer loss or a protocol error
  // (nonzero). Never returns while the controller is healthy.
  int run();

  // ---- TaskSink (marker callbacks during exec) ----
  void spawn(Task t) override;

 private:
  bool owns(PeId pe) const { return pe < owned_.size() && owned_[pe] != 0; }
  // Returns false when the loop should stop (kShutdown or fatal error).
  bool handle_frame(NetFrame f);
  void exec_local(Task t);
  void drain_local();
  void send_frame(const NetFrame& f);
  void send_data(PeId src, PeId dst, std::vector<std::uint8_t> bytes);
  void service_channel();
  // (Re)create the fault plane + reliable channel. Called from the ctor and
  // again at every kEpochFence: a membership fence voids all in-flight
  // worker↔worker traffic, and every survivor resets its sequence spaces in
  // the same fence, so fresh channels stay consistent cluster-wide.
  void init_message_plane();
  void rebuild_owned_list();
  void send_handoff_ack(std::uint64_t seq, bool ok);
  void send_mark_report(Plane plane, std::uint64_t epoch);
  // Ship the registry/trace delta accumulated since the previous quiesce
  // (sent immediately before the kMarkReport on the same FIFO connection).
  void send_telemetry(Plane plane, std::uint64_t epoch);
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  Socket sock_;
  FrameCodec codec_;
  std::uint32_t index_;
  WorkerConfig cfg_;
  Graph g_;
  Marker marker_;
  // Worker-side message plane for worker↔worker marks (sender-side state for
  // pairs whose src this worker owns, receiver-side for its dst PEs).
  std::unique_ptr<FaultPlane> fault_;
  std::unique_ptr<ChannelManager> chan_;
  std::deque<Task> q_;       // locally-owned tasks awaiting execution
  PeId cur_pe_ = 0;          // PE context of the task being executed
  bool clean_shutdown_ = false;
  bool fatal_ = false;
  std::chrono::steady_clock::time_point t0_;

  // Current ownership — adopted from every handoff's per-PE flags, so a
  // repartition-on-survivors needs no extra assignment frame. Starts as the
  // registration-time contiguous block; non-contiguous after a recovery.
  std::vector<std::uint8_t> owned_;  // [pe] != 0 ⇔ this worker owns pe
  std::vector<PeId> owned_list_;     // the set, ascending
  // Membership generation adopted from the last kEpochFence; kData/kSeed
  // frames stamped with any other generation are void (pre-fence traffic).
  std::uint16_t gen_ = 0;
  // Set when a handoff checksum disagreed with the replica: everything but
  // kQuiesce (answered with an empty report), clock probes and the fence
  // machinery is dropped until a full handoff checks out again.
  bool desync_ = false;
  // DGR_TEST_CORRUPT_HANDOFF="W:N": worker W corrupts its replica right
  // after its Nth handoff apply — a deterministic divergence for the
  // checksum-resync tests. 0 = disabled.
  std::uint64_t corrupt_after_ = 0;
  std::uint64_t applies_ = 0;

  // Telemetry plane: full-width registry (indexed by global PE; only owned
  // PEs are ever touched) plus the per-quiesce delta baseline. Baselines are
  // full-width too: ownership can move between quiesces.
  obs::MetricsRegistry reg_;
  std::vector<std::array<std::uint64_t, obs::kNumCounters>> prev_counters_;
  std::vector<Histogram> prev_hists_;  // num_pes × kNumHists, row-major
  // Worker-side trace ring (populated only in DGR_TRACE builds when the
  // controller asked for it; the unique_ptr itself is trace-off safe).
  std::unique_ptr<obs::TraceBuffer> trace_;
};

// Parse `--connect ADDR --index N`, register with the controller and run a
// WorkerEngine over the accepted connection. The dgr_worker binary is this.
int worker_main(int argc, char** argv);

}  // namespace dgr
