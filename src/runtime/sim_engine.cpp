#include "runtime/sim_engine.h"

#include "core/invariants.h"
#include "obs/trace.h"

namespace dgr {

std::size_t task_wire_size(const Task& t) {
  // kind + plane + prior/demand + two vertex ids + optional value.
  return 4 + 2 * 8 + (t.kind == TaskKind::kReturnVal ? 9 : 0);
}

SimEngine::SimEngine(Graph& g, SimOptions opt)
    : g_(g), opt_(opt), rng_(opt.seed), reg_(g.num_pes()) {
  marker_ = std::make_unique<Marker>(g_, *this);
  mutator_ = std::make_unique<Mutator>(g_, *marker_);
  controller_ =
      std::make_unique<Controller>(g_, *marker_, *this, VertexId::invalid());
  pools_.resize(g_.num_pes());
  mark_q_.resize(g_.num_pes());
}

SimEngine::~SimEngine() = default;

SimMetrics SimEngine::metrics() const {
  SimMetrics m;
  m.steps = steps_;
  m.mark_tasks = reg_.total(obs::Counter::kMarkTasks);
  m.return_tasks = reg_.total(obs::Counter::kReturnTasks);
  m.reduction_tasks = reg_.total(obs::Counter::kReductionTasks);
  m.remote_messages = reg_.total(obs::Counter::kRemoteMessages);
  m.local_messages = reg_.total(obs::Counter::kLocalMessages);
  m.bytes_sent = reg_.total(obs::Counter::kBytesSent);
  return m;
}

obs::TraceBuffer* SimEngine::enable_trace(std::size_t capacity) {
#if DGR_TRACE_ENABLED
  if (!trace_) {
    trace_ = std::make_unique<obs::TraceBuffer>(capacity);
    trace_->set_clock([this] { return steps_; });
    marker_->set_trace(trace_.get());
    mutator_->set_trace(trace_.get());
    controller_->set_trace(trace_.get());
  }
  return trace_.get();
#else
  (void)capacity;
  return nullptr;
#endif
}

void SimEngine::spawn(Task t) {
  DGR_CHECK_MSG(t.d.valid() && !t.d.is_rootpar(),
                "spawn to an unowned destination");
  const PeId dst = t.d.pe;
  if (dst == executing_pe_) {
    reg_.add(executing_pe_, obs::Counter::kLocalMessages);
  } else {
    reg_.add(executing_pe_, obs::Counter::kRemoteMessages);
    reg_.add(executing_pe_, obs::Counter::kBytesSent, task_wire_size(t));
    if (opt_.max_latency > 0) {
      // The message spends real time on the wire.
      const std::uint64_t due =
          steps_ + 1 +
          (opt_.max_latency > 1 ? rng_.below(opt_.max_latency) : 0);
      reg_.observe(dst, obs::Hist::kMsgLatency,
                   static_cast<double>(due - steps_));
      flight_.push_back(InFlight{std::move(t), due});
      return;
    }
  }
  enqueue_delivered(std::move(t));
}

void SimEngine::enqueue_delivered(Task t) {
  const PeId dst = t.d.pe;
  if (task_is_marking(t.kind)) {
    mark_q_[dst].push_back(std::move(t));
    ++mark_pending_;
  } else {
    pools_[dst].push(std::move(t));
  }
}

void SimEngine::deliver_due() {
  for (std::size_t i = 0; i < flight_.size();) {
    if (flight_[i].due <= steps_) {
      Task t = std::move(flight_[i].t);
      flight_[i] = std::move(flight_.back());
      flight_.pop_back();
      enqueue_delivered(std::move(t));
    } else {
      ++i;
    }
  }
}

bool SimEngine::quiescent() const {
  return mark_pending_ == 0 && pending_reduction() == 0 && flight_.empty();
}

std::size_t SimEngine::pending_reduction() const {
  std::size_t n = 0;
  for (const auto& p : pools_) n += p.size();
  return n;
}

std::size_t SimEngine::pending_marking() const { return mark_pending_; }

bool SimEngine::step() {
  deliver_due();
  // Candidate queues: (pe, is_marking). Chosen uniformly at random, so PE
  // progress and marker/mutator interleaving are arbitrary, as in a real
  // asynchronous system.
  struct Cand {
    PeId pe;
    bool marking;
  };
  Cand cands[256];
  std::size_t n = 0;
  bool run_reduction = static_cast<bool>(reducer_);
  // Marking tax (see SimOptions::marking_tax): while a cycle is active and
  // marking work is owed, reduction yields. Keeps the marker ahead of the
  // mutator so cycles always terminate.
  const bool cycle_active = !controller_->idle();
  if (cycle_active && mark_pending_ > 0 && tax_due_ > 0) run_reduction = false;
  for (PeId pe = 0; pe < g_.num_pes() && n + 2 <= 256; ++pe) {
    if (!mark_q_[pe].empty()) cands[n++] = {pe, true};
    if (run_reduction && !pools_[pe].empty()) cands[n++] = {pe, false};
  }
  if (n == 0) {
    // Nothing executable. If messages are still in flight, idle-tick until
    // one arrives (wall-clock passes with no work — exactly a real machine
    // waiting on the network).
    if (!flight_.empty()) {
      std::uint64_t next_due = UINT64_MAX;
      for (const InFlight& f : flight_) next_due = std::min(next_due, f.due);
      steps_ = std::max(steps_, next_due);
      deliver_due();
      return step();
    }
    if (!static_cast<bool>(reducer_)) return false;
    // Only taxed-out reduction candidates remain.
    for (PeId pe = 0; pe < g_.num_pes() && n < 256; ++pe)
      if (!pools_[pe].empty()) cands[n++] = {pe, false};
    if (n == 0) return false;
  }
  const Cand c = cands[rng_.below(n)];
  if (c.marking) {
    if (tax_due_ > 0) --tax_due_;
  } else if (cycle_active) {
    tax_due_ = opt_.marking_tax;
  }
  executing_pe_ = c.pe;

  // Sampled service-time queue depths (per-PE histograms).
  if ((steps_ & 15) == 0) {
    if (c.marking)
      reg_.observe(c.pe, obs::Hist::kMarkQueueDepth,
                   static_cast<double>(mark_q_[c.pe].size()));
    else
      reg_.observe(c.pe, obs::Hist::kPoolDepth,
                   static_cast<double>(pools_[c.pe].size()));
  }

  Task t;
  if (c.marking) {
    auto& q = mark_q_[c.pe];
    const std::size_t i = q.size() > 1 ? rng_.below(q.size()) : 0;
    t = std::move(q[i]);
    q[i] = std::move(q.back());
    q.pop_back();
    --mark_pending_;
  } else {
    t = pools_[c.pe].pop(&rng_);
  }
  execute(t);
  ++steps_;
  maybe_check_invariants();
  return true;
}

void SimEngine::execute(const Task& t) {
  if (task_is_marking(t.kind)) {
    if (t.kind == TaskKind::kCompactMark || t.kind == TaskKind::kPeAck) {
      reg_.add(executing_pe_, t.kind == TaskKind::kCompactMark
                                  ? obs::Counter::kMarkTasks
                                  : obs::Counter::kReturnTasks);
      DGR_CHECK_MSG(static_cast<bool>(compact_marker_),
                    "compact task without a compact collector");
      compact_marker_->exec(t);
      return;
    }
    reg_.add(executing_pe_, t.kind == TaskKind::kMark
                                ? obs::Counter::kMarkTasks
                                : obs::Counter::kReturnTasks);
    marker_->exec(t);
    return;
  }
  reg_.add(executing_pe_, obs::Counter::kReductionTasks);
  DGR_CHECK_MSG(static_cast<bool>(reducer_),
                "reduction task executed without a reducer");
  reducer_(t);
}

std::uint64_t SimEngine::run(std::uint64_t max_steps) {
  std::uint64_t n = 0;
  while (n < max_steps && step()) ++n;
  return n;
}

CompactCollector& SimEngine::enable_compact_collector() {
  if (!compact_marker_) {
    compact_marker_ = std::make_unique<CompactMarker>(g_, *this);
    compact_collector_ = std::make_unique<CompactCollector>(
        g_, *compact_marker_, *this, controller_->root());
    mutator_->set_compact_marker(compact_marker_.get());
  }
  return *compact_collector_;
}

std::uint64_t SimEngine::run_until_compact_done(std::uint64_t max_steps) {
  std::uint64_t n = 0;
  while (!compact_collector_->idle() && n < max_steps) {
    if (!step()) break;
    ++n;
  }
  DGR_CHECK_MSG(compact_collector_->idle(),
                "compact cycle failed to terminate");
  return n;
}

std::uint64_t SimEngine::run_until_cycle_done(std::uint64_t max_steps) {
  std::uint64_t n = 0;
  while (!controller_->idle() && n < max_steps) {
    if (!step()) break;
    ++n;
  }
  DGR_CHECK_MSG(controller_->idle(), "marking cycle failed to terminate");
  return n;
}

void SimEngine::collect_task_refs(std::vector<TaskRef>& out) {
  for (const auto& p : pools_)
    p.for_each([&](const Task& t) { out.push_back(TaskRef{t.s, t.d}); });
  // In-transit reduction tasks are tasks too (§5.2's in-transit problem).
  for (const InFlight& f : flight_)
    if (!task_is_marking(f.t.kind)) out.push_back(TaskRef{f.t.s, f.t.d});
}

std::size_t SimEngine::expunge_tasks(
    const std::function<bool(const Task&)>& kill) {
  std::size_t n = 0;
  for (auto& p : pools_) n += p.expunge(kill);
  for (std::size_t i = 0; i < flight_.size();) {
    if (!task_is_marking(flight_[i].t.kind) && kill(flight_[i].t)) {
      flight_[i] = std::move(flight_.back());
      flight_.pop_back();
      ++n;
    } else {
      ++i;
    }
  }
  return n;
}

std::size_t SimEngine::reprioritize_tasks(
    const std::function<std::uint8_t(const Task&)>& prio) {
  std::size_t n = 0;
  for (auto& p : pools_) n += p.reprioritize(prio);
  for (InFlight& f : flight_) {
    if (task_is_marking(f.t.kind)) continue;
    const std::uint8_t p = prio(f.t);
    if (p != f.t.pool_prior) {
      f.t.pool_prior = p;
      ++n;
    }
  }
  return n;
}

void SimEngine::maybe_check_invariants() {
  if (!opt_.check_invariants) return;
  if (steps_ % opt_.invariant_period != 0) return;
  std::vector<Task> pending;
  for (const auto& q : mark_q_)
    for (const Task& t : q) pending.push_back(t);
  for (const InFlight& f : flight_)
    if (task_is_marking(f.t.kind)) pending.push_back(f.t);
  for (const Plane plane : {Plane::kR, Plane::kT}) {
    if (!marker_->active(plane) || marker_->done(plane)) continue;
    if (marker_->cycle_tainted(plane)) continue;
    const InvariantReport rep =
        check_marking_invariants(g_, *marker_, plane, pending);
    DGR_CHECK_MSG(rep.ok, rep.what.c_str());
  }
}

}  // namespace dgr
