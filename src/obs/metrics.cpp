#include "obs/metrics.h"

#include <cstdio>
#include <functional>
#include <thread>

namespace dgr::obs {

namespace {

// Spin briefly with pause, then fall back to yield: a bare test_and_set
// loop on a host with fewer cores than threads can burn a whole scheduler
// quantum while the lock holder is descheduled.
template <typename Slot>
void hist_lock_acquire(Slot& s) {
  std::uint32_t spins = 0;
  while (s.hist_lock.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
    if (++spins < 64) {
      __builtin_ia32_pause();
      continue;
    }
#endif
    std::this_thread::yield();
  }
}

}  // namespace

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kMarkTasks: return "mark_tasks";
    case Counter::kReturnTasks: return "return_tasks";
    case Counter::kReductionTasks: return "reduction_tasks";
    case Counter::kRemoteMessages: return "remote_messages";
    case Counter::kLocalMessages: return "local_messages";
    case Counter::kBytesSent: return "bytes_sent";
    case Counter::kMsgDroppedInjected: return "msg_dropped_injected";
    case Counter::kMsgDupInjected: return "msg_dup_injected";
    case Counter::kMsgReorderedInjected: return "msg_reordered_injected";
    case Counter::kMsgTruncatedInjected: return "msg_truncated_injected";
    case Counter::kMsgRetransmit: return "msg_retransmit";
    case Counter::kMsgDupSuppressed: return "msg_dup_suppressed";
    case Counter::kMsgDecodeError: return "msg_decode_error";
    case Counter::kMsgBatched: return "msg_batched";
    case Counter::kBatchFlush: return "batch_flush";
    case Counter::kBackpressureStall: return "backpressure_stall";
    case Counter::kBoundaryDedup: return "boundary_dedup";
    case Counter::kStealBatches: return "steal_batches";
    case Counter::kStealTasks: return "steal_tasks";
    case Counter::kEdgeCut: return "edge_cut";
    case Counter::kEdgesTotal: return "edges_total";
    case Counter::kHandoffBytes: return "handoff_bytes";
    case Counter::kRelayedFrames: return "relayed_frames";
    case Counter::kRelayedBytes: return "relayed_bytes";
    case Counter::kTelemetryMsgs: return "telemetry_msgs";
    case Counter::kTelemetryDropped: return "telemetry_dropped";
    case Counter::kWorkerLost: return "worker_lost";
    case Counter::kPartitionReassigned: return "partition_reassigned";
    case Counter::kHandoffFullBytes: return "handoff_full_bytes";
    case Counter::kHandoffDeltaBytes: return "handoff_delta_bytes";
    case Counter::kHandoffResyncs: return "handoff_resyncs";
    case Counter::kSessionsOpened: return "sessions_opened";
    case Counter::kSessionsClosed: return "sessions_closed";
    case Counter::kSessionChurnOps: return "session_churn_ops";
    case Counter::kSessionsRejected: return "sessions_rejected";
    case Counter::kMutatorOps: return "mutator_ops";
    case Counter::kMutatorStallIdleUs: return "mutator_stall_idle_us";
    case Counter::kMutatorStallMarkUs: return "mutator_stall_mark_us";
    case Counter::kMutatorStallQuiesceUs: return "mutator_stall_quiesce_us";
    case Counter::kCount_: break;
  }
  return "?";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kMarkQueueDepth: return "mark_queue_depth";
    case Hist::kPoolDepth: return "pool_depth";
    case Hist::kMsgLatency: return "msg_latency";
    case Hist::kChannelRtt: return "channel_rtt_us";
    case Hist::kBatchFillPct: return "batch_fill_pct";
    case Hist::kMutatorStallUs: return "mutator_stall_us";
    case Hist::kCount_: break;
  }
  return "?";
}

MetricsRegistry::MetricsRegistry(std::uint32_t num_pes)
    : slots_(num_pes ? num_pes : 1) {}

std::uint64_t MetricsRegistry::total(Counter c) const noexcept {
  std::uint64_t n = 0;
  for (const Slot& s : slots_)
    n += s.c[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  return n;
}

void MetricsRegistry::observe(std::uint32_t pe, Hist h, double v) noexcept {
  Slot& s = slots_[pe];
  hist_lock_acquire(s);
  s.h[static_cast<std::size_t>(h)].add(v);
  s.hist_lock.clear(std::memory_order_release);
}

void MetricsRegistry::merge_hist_bucket(std::uint32_t pe, Hist h,
                                        std::uint32_t bucket, std::uint64_t n,
                                        double max_hint) noexcept {
  Slot& s = slots_[pe];
  hist_lock_acquire(s);
  s.h[static_cast<std::size_t>(h)].add_bucket(bucket, n, max_hint);
  s.hist_lock.clear(std::memory_order_release);
}

Histogram MetricsRegistry::hist(std::uint32_t pe, Hist h) const {
  const Slot& s = slots_[pe];
  hist_lock_acquire(s);
  Histogram copy = s.h[static_cast<std::size_t>(h)];
  s.hist_lock.clear(std::memory_order_release);
  return copy;
}

Histogram MetricsRegistry::merged_hist(Hist h) const {
  Histogram out;
  for (std::uint32_t pe = 0; pe < num_pes(); ++pe) out.merge(hist(pe, h));
  return out;
}

void MetricsRegistry::reset() {
  for (Slot& s : slots_) {
    for (auto& a : s.c) a.store(0, std::memory_order_relaxed);
    hist_lock_acquire(s);
    for (Histogram& hg : s.h) hg.reset();
    s.hist_lock.clear(std::memory_order_release);
  }
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_counters(std::string& out,
                     const std::function<std::uint64_t(Counter)>& get) {
  out += '{';
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i) out += ',';
    out += '"';
    out += counter_name(static_cast<Counter>(i));
    out += "\":";
    append_u64(out, get(static_cast<Counter>(i)));
  }
  out += '}';
}

void append_hist(std::string& out, const Histogram& h) {
  out += "{\"count\":";
  append_u64(out, h.count());
  out += ",\"p50\":";
  append_double(out, h.p50());
  out += ",\"p99\":";
  append_double(out, h.p99());
  out += ",\"p999\":";
  append_double(out, h.percentile(99.9));
  out += ",\"max\":";
  append_double(out, h.max_value());
  out += '}';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"num_pes\":";
  append_u64(out, num_pes());
  out += ",\"totals\":";
  append_counters(out, [&](Counter c) { return total(c); });
  out += ",\"pes\":[";
  for (std::uint32_t pe = 0; pe < num_pes(); ++pe) {
    if (pe) out += ',';
    out += "{\"pe\":";
    append_u64(out, pe);
    out += ",\"counters\":";
    append_counters(out, [&](Counter c) { return get(pe, c); });
    out += ",\"hists\":{";
    for (std::size_t i = 0; i < kNumHists; ++i) {
      if (i) out += ',';
      out += '"';
      out += hist_name(static_cast<Hist>(i));
      out += "\":";
      append_hist(out, hist(pe, static_cast<Hist>(i)));
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string health_line(const HealthSnapshot& s) {
  const double ms_per_cycle =
      s.cycles_window ? s.window_ms / static_cast<double>(s.cycles_window)
                      : s.window_ms;
  const double marks_per_s =
      s.window_ms > 0.0
          ? static_cast<double>(s.marks) * 1000.0 / s.window_ms
          : 0.0;
  const std::uint64_t msgs = s.remote_msgs + s.local_msgs;
  const double remote_pct =
      msgs ? 100.0 * static_cast<double>(s.remote_msgs) /
                 static_cast<double>(msgs)
           : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cycle %llu | %.2f ms/cycle | %.3g marks/s | remote %.1f%% | "
                "retx %llu",
                (unsigned long long)s.cycle, ms_per_cycle, marks_per_s,
                remote_pct, (unsigned long long)s.retransmits);
  std::string out = buf;
  if (s.workers_total) {
    std::snprintf(buf, sizeof(buf), " | workers %u/%u", s.workers_live,
                  s.workers_total);
    out += buf;
  }
  if (s.stall_ops) {
    std::snprintf(buf, sizeof(buf), " | stall-p99 %.4gus", s.stall_p99_us);
    out += buf;
  }
  if (s.telemetry_dropped) {
    std::snprintf(buf, sizeof(buf), " | tele-drop %llu",
                  (unsigned long long)s.telemetry_dropped);
    out += buf;
  }
  return out;
}

std::string health_jsonl(const HealthSnapshot& s) {
  std::string out = "{\"cycle\":";
  append_u64(out, s.cycle);
  out += ",\"cycles_window\":";
  append_u64(out, s.cycles_window);
  out += ",\"window_ms\":";
  append_double(out, s.window_ms);
  out += ",\"marks\":";
  append_u64(out, s.marks);
  out += ",\"remote_msgs\":";
  append_u64(out, s.remote_msgs);
  out += ",\"local_msgs\":";
  append_u64(out, s.local_msgs);
  out += ",\"retransmits\":";
  append_u64(out, s.retransmits);
  out += ",\"stall_ops\":";
  append_u64(out, s.stall_ops);
  out += ",\"mutator_stall_p99_us\":";
  append_double(out, s.stall_p99_us);
  out += ",\"telemetry_dropped\":";
  append_u64(out, s.telemetry_dropped);
  out += ",\"workers_live\":";
  append_u64(out, s.workers_live);
  out += ",\"workers_total\":";
  append_u64(out, s.workers_total);
  out += '}';
  return out;
}

}  // namespace dgr::obs
