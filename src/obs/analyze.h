// Post-mortem trace analytics backing the dgr_analyze CLI.
//
// Consumes the JSONL event stream produced by to_jsonl / dgr_run
// --trace-jsonl (re-parsed via from_jsonl) and reconstructs, per ISSUE
// archetype "how did this run behave":
//   - per-cycle summaries: phase durations, mark/return totals, rescue-wave
//     counts, restructuring outcomes (swept / expunged / reprioritized);
//   - a per-PE load table: wave-front sample share, cycles participated,
//     idle fraction, rescue/taint attribution (optionally enriched with the
//     metrics registry's --metrics JSON: exact task counts + mailbox depth);
//   - wave-propagation latency: for every (cycle, PE), the time from the
//     plane's phase_begin until that PE's first wave_front sample — i.e. how
//     long the decentralized wave takes to reach each processor (§4's
//     locality claim, measured);
//   - deadlock post-mortems: for every cycle whose restructuring phase
//     reported DL'_v = R'_v − T' (Theorem 2), the evidence chain — the M_T
//     and M_R wave stats the subtraction was computed from plus the named
//     deadlocked vertices (kDeadlockVertex events).
//
// Only built when DGR_TRACE is ON (it consumes what only traced builds emit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/fault_plane.h"  // FaultKind taxonomy (header-only)
#include "obs/trace.h"

namespace dgr::obs {

// One marking plane's wave inside one cycle.
struct PhaseReport {
  bool ran = false;
  bool finished = false;       // phase_end observed
  std::uint64_t begin_ts = 0;  // engine clock (sim steps / µs)
  std::uint64_t end_ts = 0;
  std::uint64_t marks = 0;    // from phase_end payload
  std::uint64_t returns = 0;
  std::uint64_t duration() const {
    return finished && end_ts >= begin_ts ? end_ts - begin_ts : 0;
  }
};

struct CycleReport {
  std::uint64_t cycle = 0;
  bool complete = false;  // cycle_end observed
  std::uint64_t start_ts = 0;
  std::uint64_t end_ts = 0;
  PhaseReport mt;  // Plane::kT (deadlock-detection wave; optional)
  PhaseReport mr;  // Plane::kR (priority marking wave)
  std::uint64_t rescue_waves = 0;
  std::uint64_t rescue_queued = 0;
  std::uint64_t coop_taints = 0;
  std::uint64_t swept = 0;
  std::uint64_t expunged = 0;
  std::uint64_t reprioritized = 0;
  bool deadlock_report = false;      // restructuring ran phase (d)
  std::uint64_t deadlocked_count = 0;  // |DL'_v|
  std::uint64_t audits = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t health_warnings = 0;
  std::uint64_t duration() const {
    return complete && end_ts >= start_ts ? end_ts - start_ts : 0;
  }
};

// Load attribution for one PE across the whole trace.
struct PeLoad {
  std::uint16_t pe = 0;
  std::uint64_t wave_samples_r = 0;  // wave_front events on this PE, plane R
  std::uint64_t wave_samples_t = 0;
  double work_share = 0.0;           // this PE's share of all wave samples
  std::uint64_t cycles_participated = 0;
  double idle_fraction = 0.0;        // 1 − participated / completed cycles
  std::uint64_t rescue_queued = 0;
  std::uint64_t coop_taints = 0;
  std::uint64_t health_warnings = 0;
  // Reliable-delivery attribution: retransmits by this PE as sender,
  // duplicates it suppressed as receiver. Counted from trace events;
  // overwritten with exact registry counts by --metrics enrichment.
  std::uint64_t msg_retransmit = 0;
  std::uint64_t msg_dup_suppressed = 0;
  // Batched-plane attribution (this PE as sender). Counted from kBatchFlush
  // / kBackpressureStall events; overwritten by --metrics enrichment.
  std::uint64_t msg_batched = 0;
  std::uint64_t batch_flush = 0;
  std::uint64_t backpressure_stall = 0;
  // From --metrics enrichment (enrich_with_metrics_json); 0 until provided.
  std::uint64_t mark_tasks = 0;
  std::uint64_t return_tasks = 0;
  std::uint64_t mailbox_high_water = 0;
  // Locality attribution (--metrics enrichment only): spawns by this PE as
  // sender split local/remote, boundary-summary suppressions it made as
  // sender, steals it performed as thief, and the static edge cut over the
  // args edges whose source vertices it owns.
  std::uint64_t remote_messages = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t boundary_dedup = 0;
  std::uint64_t steal_batches = 0;
  std::uint64_t steal_tasks = 0;
  std::uint64_t edge_cut = 0;
  std::uint64_t edges_total = 0;
  double remote_ratio = 0.0;  // remote / (remote + local), 0 when no traffic
};

// Wave-propagation latency distribution for one plane: per (cycle, PE), the
// delay from phase_begin to the PE's first wave_front sample.
struct WaveLatency {
  std::uint64_t samples = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Evidence chain for one cycle's deadlock report (Theorem 2: DL'_v ⊆ DL).
struct DeadlockPostMortem {
  std::uint64_t cycle = 0;
  std::uint64_t report_ts = 0;
  std::uint64_t count = 0;     // |DL'_v|
  std::uint64_t mt_marks = 0;  // T' was built by this wave...
  std::uint64_t mt_returns = 0;
  std::uint64_t mr_marks = 0;  // ...and R' (vital requests) by this one.
  std::uint64_t mr_returns = 0;
  std::vector<std::pair<std::uint16_t, std::uint64_t>> vertices;  // (pe, idx)
};

// One worker process's row in the cluster rollup (proc-engine runs only;
// filled by enrich_with_metrics_json when the dump carries a "workers"
// array — the cluster form ProcEngine::cluster_metrics_json writes).
struct WorkerRow {
  std::uint32_t worker = 0;
  std::uint32_t pe_begin = 0;
  std::uint32_t pe_count = 0;
  std::uint64_t marks = 0;
  std::uint64_t returns = 0;
  std::uint64_t remote_messages = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t handoff_bytes = 0;
  std::uint64_t handoff_full_bytes = 0;
  std::uint64_t handoff_delta_bytes = 0;
  std::uint64_t relayed_frames = 0;
  std::uint64_t relayed_bytes = 0;
  std::uint64_t telemetry_msgs = 0;
  std::uint64_t telemetry_dropped = 0;
  std::int64_t clock_offset_us = 0;  // worker minus controller; may be < 0
  std::uint64_t clock_rtt_us = 0;    // RTT of the winning offset probe
};

// Session-workload SLO rollup (kSessionOpen/Churn/Close events from the
// src/workload driver; stall fields come from --metrics enrichment, reading
// the mutator_stall_us histogram and the per-phase stall counters).
struct SessionSlo {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  std::uint64_t churn = 0;
  std::uint64_t peak_live = 0;       // max concurrently open sessions
  std::uint64_t first_ts = 0;        // first/last session event (engine clock)
  std::uint64_t last_ts = 0;
  // closed / event span. The trace clock is µs on the threaded engine and
  // steps on the simulator, so this is sessions-per-second only for traces
  // with a µs clock (dgr_soak reports a wall-clock rate independently).
  double sessions_per_sec = 0.0;
  // --metrics enrichment. Percentiles are the worst (max) across the per-PE
  // histograms — a conservative ceiling, since log-bucket percentiles don't
  // merge exactly; stall-µs totals are exact counter sums.
  std::uint64_t stall_ops = 0;
  double stall_p50_us = 0.0;
  double stall_p99_us = 0.0;
  double stall_p999_us = 0.0;
  double stall_max_us = 0.0;
  std::uint64_t stall_idle_us = 0;     // stalled while the collector was idle
  std::uint64_t stall_mark_us = 0;     // ...while a plane was marking
  std::uint64_t stall_quiesce_us = 0;  // ...while restructuring was due
  std::uint64_t rejected = 0;          // arrivals refused (store full)
};

struct TraceReport {
  std::uint64_t events = 0;
  std::uint32_t num_pes = 0;  // 1 + max pe observed (or metrics-provided)
  bool metrics_enriched = false;
  std::vector<CycleReport> cycles;
  std::uint64_t complete_cycles = 0;
  std::vector<PeLoad> pes;
  WaveLatency wave_r;
  WaveLatency wave_t;
  std::vector<DeadlockPostMortem> deadlocks;
  std::uint64_t health_warnings[kNumHealthKinds] = {};
  std::uint64_t audits = 0;
  std::uint64_t audit_violations = 0;
  // Reliable-delivery totals (kFaultInjected / kMsgRetransmit /
  // kMsgDupSuppressed events; all zero on fault-free traces).
  std::uint64_t faults_injected[kNumFaultKinds] = {};
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  // Batched-plane totals (kBatchFlush / kBackpressureStall events; all zero
  // on unbatched traces).
  std::uint64_t msgs_batched = 0;
  std::uint64_t batch_flushes = 0;
  std::uint64_t backpressure_stalls = 0;
  // Telemetry-loss accounting (kTraceDrop events: ring overwrites upstream
  // plus events past the per-payload cap; zero on a lossless trace).
  std::uint64_t trace_dropped = 0;
  std::uint64_t trace_events_omitted = 0;
  // Membership events (kWorkerLost / kPartitionReassign / kHandoffResync;
  // all zero on a run with stable membership).
  std::uint64_t workers_lost = 0;
  std::uint64_t partition_reassigns = 0;  // recovery events, not PEs moved
  std::uint64_t pes_reassigned = 0;       // PEs that changed owner, total
  std::uint64_t handoff_resyncs = 0;
  // Cluster rollup (empty unless the metrics JSON carried worker rows).
  std::vector<WorkerRow> workers;
  // Membership summary from the cluster metrics JSON (gen 0 = no loss).
  std::uint64_t membership_gen = 0;
  std::uint64_t workers_live = 0;
  std::uint64_t workers_total = 0;
  // Session-workload SLO rollup (all zero on traces without a driver).
  SessionSlo sessions;
};

// Build the report from events in emission order (as from_jsonl returns
// them). Tolerates truncated traces (ring wrap): cycles missing their start
// or end are reported incomplete, never dropped silently.
TraceReport analyze(const std::vector<TraceEvent>& events);

// Merge a metrics-registry JSON dump (obs::MetricsRegistry::to_json, the
// file dgr_run --metrics writes) into the per-PE table: exact mark/return
// task counts and the mark_queue_depth high water. Returns false (report
// untouched) when the JSON does not look like a registry dump.
bool enrich_with_metrics_json(TraceReport& report, const std::string& json);

// Deterministic JSON object (stable key order) for --json / CI consumption.
std::string report_to_json(const TraceReport& report);

// Human-readable tables (what dgr_analyze prints by default).
std::string report_to_text(const TraceReport& report);

}  // namespace dgr::obs
