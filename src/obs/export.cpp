#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/fault_plane.h"  // fault_kind_name (header-only; no dgr_net link)

namespace dgr::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
  out += buf;
}

const char* plane_name(Plane p) { return p == Plane::kR ? "R" : "T"; }

void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"ts\":";
  append_u64(out, e.ts);
  out += ",\"type\":\"";
  out += event_name(e.type);
  out += "\",\"plane\":\"";
  out += plane_name(e.plane);
  out += "\",\"pe\":";
  append_u64(out, e.pe);
  out += ",\"cycle\":";
  append_u64(out, e.cycle);
  out += ",\"a\":";
  append_u64(out, e.a);
  out += ",\"b\":";
  append_u64(out, e.b);
  out += "}";
}

// Minimal field scanners for from_jsonl (fixed format, no nesting).
bool scan_u64(const std::string& line, const char* key, std::uint64_t* out) {
  const std::size_t k = line.find(key);
  if (k == std::string::npos) return false;
  const char* p = line.c_str() + k + std::strlen(key);
  char* end = nullptr;
  *out = std::strtoull(p, &end, 10);
  return end != p;
}

bool scan_str(const std::string& line, const char* key, std::string* out) {
  const std::size_t k = line.find(key);
  if (k == std::string::npos) return false;
  const std::size_t start = k + std::strlen(key);
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

}  // namespace

std::string to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 80);
  for (const TraceEvent& e : events) {
    append_event(out, e);
    out += '\n';
  }
  return out;
}

std::vector<TraceEvent> from_jsonl(const std::string& text) {
  std::vector<TraceEvent> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    TraceEvent e;
    std::string type, plane;
    std::uint64_t pe = 0;
    if (!scan_u64(line, "\"ts\":", &e.ts) ||
        !scan_str(line, "\"type\":\"", &type) ||
        !scan_str(line, "\"plane\":\"", &plane) ||
        !scan_u64(line, "\"pe\":", &pe) ||
        !scan_u64(line, "\"cycle\":", &e.cycle) ||
        !scan_u64(line, "\"a\":", &e.a) || !scan_u64(line, "\"b\":", &e.b))
      continue;
    bool known = false;
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      if (type == event_name(static_cast<EventType>(i))) {
        e.type = static_cast<EventType>(i);
        known = true;
        break;
      }
    }
    if (!known) continue;
    e.plane = plane == "T" ? Plane::kT : Plane::kR;
    e.pe = static_cast<std::uint16_t>(pe);
    out.push_back(e);
  }
  return out;
}

namespace {

// Chrome trace_event helpers. pid 0 is the in-process engine (or the
// cluster controller); pid w+1 is worker w. tid = PE, tid = num_pes is the
// controller/engine track within each process lane.
void chrome_process_meta(std::string& out, std::uint32_t pid,
                         const char* name) {
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  out += ",\"args\":{\"name\":\"";
  out += name;
  out += "\"}},\n";
}

void chrome_meta(std::string& out, std::uint32_t pid, std::uint32_t tid,
                 const char* name) {
  out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, tid);
  out += ",\"args\":{\"name\":\"";
  out += name;
  out += "\"}},\n";
}

void chrome_span(std::string& out, std::uint32_t pid, const std::string& name,
                 std::uint64_t ts, std::uint64_t dur, std::uint32_t tid,
                 const std::string& args_json) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"X\",\"ts\":";
  append_u64(out, ts);
  out += ",\"dur\":";
  append_u64(out, dur ? dur : 1);
  out += ",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, tid);
  out += ",\"args\":";
  out += args_json;
  out += "},\n";
}

void chrome_instant(std::string& out, std::uint32_t pid,
                    const std::string& name, std::uint64_t ts,
                    std::uint32_t tid, const std::string& args_json) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
  append_u64(out, ts);
  out += ",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, tid);
  out += ",\"args\":";
  out += args_json;
  out += "},\n";
}

void chrome_counter(std::string& out, std::uint32_t pid,
                    const std::string& name, std::uint64_t ts,
                    std::uint64_t value) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"C\",\"ts\":";
  append_u64(out, ts);
  out += ",\"pid\":";
  append_u64(out, pid);
  out += ",\"args\":{\"marks\":";
  append_u64(out, value);
  out += "}},\n";
}

std::string one_arg(const char* key, std::uint64_t v) {
  std::string s = "{\"";
  s += key;
  s += "\":";
  append_u64(s, v);
  s += "}";
  return s;
}

// One process lane's events: pair begin/end events into spans, render the
// rest as instants/counters, close anything a truncated trace left open.
void chrome_emit_events(std::string& out, const std::vector<TraceEvent>& events,
                        std::uint32_t num_pes, std::uint32_t pid) {
  const std::uint32_t ctl = num_pes;  // controller track id

  // Pair begin/end events into spans; everything else becomes instants.
  std::uint64_t cycle_ts = 0, cycle_no = 0, last_ts = 0;
  bool cycle_open = false;
  std::uint64_t phase_ts[2] = {0, 0};
  bool phase_open[2] = {false, false};

  for (const TraceEvent& e : events) {
    last_ts = e.ts;
    const int pl = static_cast<int>(e.plane);
    switch (e.type) {
      case EventType::kCycleStart:
        cycle_ts = e.ts;
        cycle_no = e.cycle;
        cycle_open = true;
        break;
      case EventType::kCycleEnd: {
        char name[32];
        std::snprintf(name, sizeof(name), "cycle %llu",
                      (unsigned long long)e.cycle);
        std::string args = "{\"swept\":";
        append_u64(args, e.a);
        args += ",\"expunged\":";
        append_u64(args, e.b);
        args += "}";
        chrome_span(out, pid, name, cycle_open ? cycle_ts : e.ts,
                    cycle_open ? e.ts - cycle_ts : 0, ctl, args);
        cycle_open = false;
        break;
      }
      case EventType::kPhaseBegin:
        phase_ts[pl] = e.ts;
        phase_open[pl] = true;
        break;
      case EventType::kPhaseEnd: {
        const std::string name =
            e.plane == Plane::kR ? "M_R" : "M_T";
        std::string args = "{\"marks\":";
        append_u64(args, e.a);
        args += ",\"returns\":";
        append_u64(args, e.b);
        args += "}";
        chrome_span(out, pid, name, phase_open[pl] ? phase_ts[pl] : e.ts,
                    phase_open[pl] ? e.ts - phase_ts[pl] : 0, ctl, args);
        phase_open[pl] = false;
        break;
      }
      case EventType::kWaveFront: {
        char cname[32];
        std::snprintf(cname, sizeof(cname), "marks[%s] PE %u",
                      plane_name(e.plane), e.pe);
        chrome_counter(out, pid, cname, e.ts, e.a);
        break;
      }
      case EventType::kRescueWave:
        chrome_instant(out, pid, std::string("rescue_wave ") + plane_name(e.plane),
                       e.ts, ctl, one_arg("seeds", e.a));
        break;
      case EventType::kRescueQueued:
        chrome_instant(out, pid,
                       std::string("rescue_queued ") + plane_name(e.plane),
                       e.ts, e.pe, one_arg("vertex", e.a));
        break;
      case EventType::kCoopTaint:
        chrome_instant(out, pid, std::string("coop_taint ") + plane_name(e.plane),
                       e.ts, e.pe, "{}");
        break;
      case EventType::kSweep:
        chrome_instant(out, pid, "sweep", e.ts, ctl, one_arg("freed", e.a));
        break;
      case EventType::kExpunge:
        chrome_instant(out, pid, "expunge", e.ts, ctl, one_arg("tasks", e.a));
        break;
      case EventType::kReprioritize:
        chrome_instant(out, pid, "reprioritize", e.ts, ctl, one_arg("tasks", e.a));
        break;
      case EventType::kDeadlockReport:
        chrome_instant(out, pid, "deadlock_report", e.ts, ctl,
                       one_arg("deadlocked", e.a));
        break;
      case EventType::kDeadlockVertex: {
        char name[48];
        std::snprintf(name, sizeof(name), "deadlocked %u:%llu", e.pe,
                      (unsigned long long)e.a);
        chrome_instant(out, pid, name, e.ts, e.pe, one_arg("idx", e.a));
        break;
      }
      case EventType::kAudit:
        chrome_instant(out, pid, "audit", e.ts, ctl, one_arg("violations", e.a));
        break;
      case EventType::kHealthWarning:
        chrome_instant(
            out, pid,
            std::string("health: ") +
                health_kind_name(static_cast<HealthKind>(
                    e.a < kNumHealthKinds ? e.a : kNumHealthKinds)),
            e.ts, e.pe, one_arg("detail", e.b));
        break;
      case EventType::kFaultInjected:
        chrome_instant(
            out, pid,
            std::string("fault: ") +
                fault_kind_name(static_cast<FaultKind>(
                    e.a < kNumFaultKinds ? e.a : kNumFaultKinds)),
            e.ts, e.pe, one_arg("bytes", e.b));
        break;
      case EventType::kMsgRetransmit:
        chrome_instant(out, pid, "retransmit", e.ts, e.pe, one_arg("seq", e.a));
        break;
      case EventType::kMsgDupSuppressed:
        chrome_instant(out, pid, "dup_suppressed", e.ts, e.pe,
                       one_arg("seq", e.a));
        break;
      case EventType::kBatchFlush: {
        std::string args = "{\"messages\":";
        append_u64(args, e.a);
        args += ",\"bytes\":";
        append_u64(args, e.b);
        args += "}";
        chrome_instant(out, pid, "batch_flush", e.ts, e.pe, args);
        break;
      }
      case EventType::kBackpressureStall: {
        std::string args = "{\"dst_pe\":";
        append_u64(args, e.a);
        args += ",\"backlog\":";
        append_u64(args, e.b);
        args += "}";
        chrome_instant(out, pid, "backpressure_stall", e.ts, e.pe, args);
        break;
      }
      case EventType::kTraceDrop: {
        std::string args = "{\"ring_dropped\":";
        append_u64(args, e.a);
        args += ",\"omitted\":";
        append_u64(args, e.b);
        args += "}";
        chrome_instant(out, pid, "trace_drop", e.ts, e.pe, args);
        break;
      }
      case EventType::kWorkerLost: {
        std::string args = "{\"worker\":";
        append_u64(args, e.a);
        args += ",\"gen\":";
        append_u64(args, e.b);
        args += "}";
        chrome_instant(out, pid, "worker_lost", e.ts, e.pe, args);
        break;
      }
      case EventType::kPartitionReassign: {
        std::string args = "{\"pes_moved\":";
        append_u64(args, e.a);
        args += ",\"survivors\":";
        append_u64(args, e.b);
        args += "}";
        chrome_instant(out, pid, "partition_reassign", e.ts, e.pe, args);
        break;
      }
      case EventType::kHandoffResync: {
        std::string args = "{\"worker\":";
        append_u64(args, e.a);
        args += ",\"seq\":";
        append_u64(args, e.b);
        args += "}";
        chrome_instant(out, pid, "handoff_resync", e.ts, e.pe, args);
        break;
      }
      case EventType::kSessionOpen: {
        std::string args = "{\"session\":";
        append_u64(args, e.a);
        args += ",\"size\":";
        append_u64(args, e.b);
        args += "}";
        chrome_instant(out, pid, "session_open", e.ts, e.pe, args);
        break;
      }
      case EventType::kSessionChurn: {
        std::string args = "{\"session\":";
        append_u64(args, e.a);
        args += ",\"op\":";
        append_u64(args, e.b >> 32);
        args += ",\"hot\":";
        append_u64(args, e.b & 0xffffffffull);
        args += "}";
        chrome_instant(out, pid, "session_churn", e.ts, e.pe, args);
        break;
      }
      case EventType::kSessionClose: {
        std::string args = "{\"session\":";
        append_u64(args, e.a);
        args += ",\"ticks_lived\":";
        append_u64(args, e.b);
        args += "}";
        chrome_instant(out, pid, "session_close", e.ts, e.pe, args);
        break;
      }
      case EventType::kCount_:
        break;
    }
  }
  // Close any span left open by a truncated trace.
  for (int pl = 0; pl < 2; ++pl) {
    if (!phase_open[pl]) continue;
    chrome_span(out, pid, pl == 0 ? "M_R (unfinished)" : "M_T (unfinished)",
                phase_ts[pl], last_ts - phase_ts[pl], ctl, "{}");
  }
  if (cycle_open) {
    char name[48];
    std::snprintf(name, sizeof(name), "cycle %llu (unfinished)",
                  (unsigned long long)cycle_no);
    chrome_span(out, pid, name, cycle_ts, last_ts - cycle_ts, ctl, "{}");
  }
}

// PE + controller thread metas for one process lane. When `only_used` is set
// only tids that actually appear in `events` get a name (worker lanes own a
// PE slice; naming every PE in every lane would clutter the timeline).
void chrome_thread_metas(std::string& out, const std::vector<TraceEvent>& events,
                         std::uint32_t num_pes, std::uint32_t pid,
                         bool only_used) {
  std::vector<bool> used(num_pes, !only_used);
  if (only_used) {
    for (const TraceEvent& e : events)
      if (e.pe < num_pes) used[e.pe] = true;
  }
  for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
    if (!used[pe]) continue;
    char name[16];
    std::snprintf(name, sizeof(name), "PE %u", pe);
    chrome_meta(out, pid, pe, name);
  }
  chrome_meta(out, pid, num_pes, "controller");
}

void chrome_close(std::string& out) {
  // Strip the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            std::uint32_t num_pes) {
  std::string out = "{\"traceEvents\":[\n";
  chrome_process_meta(out, 0, "dgr");
  chrome_thread_metas(out, events, num_pes, 0, /*only_used=*/false);
  chrome_emit_events(out, events, num_pes, 0);
  chrome_close(out);
  return out;
}

std::string to_chrome_trace_cluster(
    const std::vector<TraceEvent>& controller_events,
    const std::vector<std::vector<TraceEvent>>& worker_events,
    std::uint32_t num_pes) {
  std::string out = "{\"traceEvents\":[\n";
  chrome_process_meta(out, 0, "controller");
  chrome_thread_metas(out, controller_events, num_pes, 0, /*only_used=*/false);
  chrome_emit_events(out, controller_events, num_pes, 0);
  for (std::uint32_t w = 0; w < worker_events.size(); ++w) {
    const std::uint32_t pid = w + 1;
    char name[24];
    std::snprintf(name, sizeof(name), "worker %u", w);
    chrome_process_meta(out, pid, name);
    chrome_thread_metas(out, worker_events[w], num_pes, pid,
                        /*only_used=*/true);
    chrome_emit_events(out, worker_events[w], num_pes, pid);
  }
  chrome_close(out);
  return out;
}

}  // namespace dgr::obs
