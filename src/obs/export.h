// Trace exporters: JSONL (one event object per line, deterministic field
// order — byte-reproducible for a fixed sim seed) and Chrome trace_event
// JSON (load in chrome://tracing or https://ui.perfetto.dev; one track per
// PE plus a "controller" track carrying cycle/phase spans).
//
// Only built when DGR_TRACE is ON; dgr_run and tests guard their use with
// DGR_TRACE_ENABLED.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace dgr::obs {

// One line per event:
//   {"ts":12,"type":"sweep","plane":"R","pe":0,"cycle":3,"a":17,"b":0}
std::string to_jsonl(const std::vector<TraceEvent>& events);

// Inverse of to_jsonl (accepts exactly that format; used by tests and
// offline tooling). Unparseable lines are skipped.
std::vector<TraceEvent> from_jsonl(const std::string& text);

// Chrome trace_event "JSON Object Format": {"traceEvents":[...]}.
//   - metadata names tid 0..num_pes-1 "PE n" and tid num_pes "controller";
//   - cycle and M_T/M_R phases become duration ("X") events on the
//     controller track;
//   - restructuring actions and deadlock reports become instant events on
//     the controller track; wave fronts / rescues / taints land on the
//     emitting PE's track;
//   - wave fronts additionally emit counter ("C") events, one counter
//     series per PE and plane, charting the wave's advance.
// Timestamps are exported as microseconds (sim: 1 step = 1 µs).
std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            std::uint32_t num_pes);

// Cluster form of the same: pid 0 is the controller process, pid w+1 is
// worker w (so a 4-worker run opens as one timeline with five process
// lanes in chrome://tracing). Worker event timestamps must already be
// rebased onto the controller clock (net/clock_sync.h); within each worker
// lane only the PEs that emitted events get named tracks.
std::string to_chrome_trace_cluster(
    const std::vector<TraceEvent>& controller_events,
    const std::vector<std::vector<TraceEvent>>& worker_events,
    std::uint32_t num_pes);

}  // namespace dgr::obs
