#include "obs/trace.h"

namespace dgr::obs {

const char* event_name(EventType t) {
  switch (t) {
    case EventType::kCycleStart: return "cycle_start";
    case EventType::kPhaseBegin: return "phase_begin";
    case EventType::kPhaseEnd: return "phase_end";
    case EventType::kWaveFront: return "wave_front";
    case EventType::kRescueWave: return "rescue_wave";
    case EventType::kRescueQueued: return "rescue_queued";
    case EventType::kCoopTaint: return "coop_taint";
    case EventType::kSweep: return "sweep";
    case EventType::kExpunge: return "expunge";
    case EventType::kReprioritize: return "reprioritize";
    case EventType::kDeadlockReport: return "deadlock_report";
    case EventType::kDeadlockVertex: return "deadlock_vertex";
    case EventType::kCycleEnd: return "cycle_end";
    case EventType::kAudit: return "audit";
    case EventType::kHealthWarning: return "health_warning";
    case EventType::kFaultInjected: return "fault_injected";
    case EventType::kMsgRetransmit: return "msg_retransmit";
    case EventType::kMsgDupSuppressed: return "dup_suppressed";
    case EventType::kBatchFlush: return "batch_flush";
    case EventType::kBackpressureStall: return "backpressure_stall";
    case EventType::kTraceDrop: return "trace_drop";
    case EventType::kWorkerLost: return "worker_lost";
    case EventType::kPartitionReassign: return "partition_reassign";
    case EventType::kHandoffResync: return "handoff_resync";
    case EventType::kSessionOpen: return "session_open";
    case EventType::kSessionChurn: return "session_churn";
    case EventType::kSessionClose: return "session_close";
    case EventType::kCount_: break;
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(capacity ? capacity : 1) {}

void TraceBuffer::set_clock(Clock c) {
  std::lock_guard<std::mutex> lk(mu_);
  clock_ = std::move(c);
}

void TraceBuffer::emit(EventType type, Plane plane, std::uint16_t pe,
                       std::uint64_t cycle, std::uint64_t a, std::uint64_t b) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceEvent& e = ring_[next_];
  e.ts = clock_ ? clock_() : 0;
  e.cycle = cycle;
  e.a = a;
  e.b = b;
  e.type = type;
  e.plane = plane;
  e.pe = pe;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest surviving event sits at next_ when the ring is full, else at 0.
  const std::size_t start =
      count_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

}  // namespace dgr::obs
