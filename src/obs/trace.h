// Structured trace ring buffer for marking-cycle observability.
//
// The controller, marker and mutator emit typed events (cycle start/end,
// plane begin/done, wave-front advance, rescue activity, restructuring
// actions, cooperation taints) into a bounded ring. Timestamps come from an
// engine-supplied clock: sim steps on the deterministic engine (so traces are
// byte-reproducible per seed) and microseconds on the threaded engine.
// Exporters (obs/export.h) turn a snapshot into JSONL or Chrome trace_event
// JSON — see docs/OBSERVABILITY.md for the taxonomy and how to read a cycle.
//
// Emission sites use the DGR_TRACE_EVENT macro, which compiles to nothing
// under -DDGR_TRACE=OFF (DGR_TRACE_ENABLED=0): the disabled build references
// no obs trace symbols (asserted by the `obs_trace_compiled_out` ctest).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "graph/vertex.h"

#ifndef DGR_TRACE_ENABLED
#define DGR_TRACE_ENABLED 1
#endif

#if DGR_TRACE_ENABLED
#define DGR_TRACE_EVENT(sink, ...)           \
  do {                                       \
    if (sink) (sink)->emit(__VA_ARGS__);     \
  } while (0)
#else
// sizeof keeps the arguments "used" (no -Wunused warnings at call sites)
// without evaluating them or referencing any symbol in the object file.
#define DGR_TRACE_EVENT(sink, ...)              \
  do {                                          \
    (void)sizeof((void)(sink), __VA_ARGS__, 0); \
  } while (0)
#endif

namespace dgr::obs {

enum class EventType : std::uint8_t {
  kCycleStart = 0,   // controller: cycle kicked off        a = #roots
  kPhaseBegin,       // controller: M_T / M_R wave launched a = epoch
  kPhaseEnd,         // controller: wave terminated         a = marks, b = returns
  kWaveFront,        // marker: every Nth mark exec         a = marks so far
  kRescueWave,       // marker: supplementary wave launched a = #seeds
  kRescueQueued,     // mutator: acquired ref queued        pe = referent's PE
  kCoopTaint,        // mutator: no transient helper; cycle tainted
  kSweep,            // controller: restructure (a)         a = vertices freed
  kExpunge,          // controller: restructure (b)         a = tasks expunged
  kReprioritize,     // controller: restructure (c)         a = tasks retargeted
  kDeadlockReport,   // controller: restructure (d)         a = |DL'_v|
  kDeadlockVertex,   // controller: one DL'_v member        pe = owner, a = idx
  kCycleEnd,         // controller: cycle complete          a = swept, b = expunged
  kAudit,            // engine: safe-point audit ran        a = violations, b = |GAR'|
  kHealthWarning,    // watchdog/audit: health flag         a = HealthKind, b = detail
  kFaultInjected,    // fault plane: fault applied          pe = sender, a = FaultKind, b = bytes
  kMsgRetransmit,    // channel: data frame re-sent         pe = sender, a = seq, b = attempt
  kMsgDupSuppressed, // channel: duplicate discarded        pe = receiver, a = seq
  kBatchFlush,       // message plane: batch flushed        pe = sender, a = #messages, b = bytes
  kBackpressureStall,// engine: spawn stalled on backlog    pe = sender, a = dst, b = backlog
  kTraceDrop,        // telemetry: events lost upstream     a = ring drops, b = payload-cap drops
  kWorkerLost,       // membership: worker declared dead    pe = home PE, a = worker, b = new gen
  kPartitionReassign,// membership: PEs moved to survivors  a = PEs moved, b = survivors
  kHandoffResync,    // membership: replica checksum diverged  a = worker, b = handoff seq
  // Workload driver (src/workload). Payloads are schedule facts, never
  // engine timings, so a seeded run's session events are engine-independent
  // (the determinism contract tested by tests/test_workload.cpp).
  kSessionOpen,      // driver: session admitted   pe = root PE, a = session, b = size
  kSessionChurn,     // driver: churn op applied   pe = root PE, a = session, b = op<<32|hot
  kSessionClose,     // driver: session retired    pe = root PE, a = session, b = ticks lived
  kCount_,
};
inline constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::kCount_);
const char* event_name(EventType t);

// Payload `a` of kHealthWarning events (emitted by the ThreadEngine watchdog
// and safe-point auditor; see runtime/thread_engine.h).
enum class HealthKind : std::uint8_t {
  kMarkStall = 0,      // marking wave made no front progress   b = stalled marks
  kMailboxSaturated,   // mailbox backlog over threshold        b = backlog, pe set
  kRescueStorm,        // rescue waves over threshold in cycle  b = waves
  kAuditViolation,     // safe-point audit found a violation    b = audit #
  kCount_,
};
inline constexpr std::size_t kNumHealthKinds =
    static_cast<std::size_t>(HealthKind::kCount_);
// Inline (not in trace.cpp): health counters survive -DDGR_TRACE=OFF, so
// their names must too.
inline const char* health_kind_name(HealthKind k) {
  switch (k) {
    case HealthKind::kMarkStall: return "mark_stall";
    case HealthKind::kMailboxSaturated: return "mailbox_saturated";
    case HealthKind::kRescueStorm: return "rescue_storm";
    case HealthKind::kAuditViolation: return "audit_violation";
    case HealthKind::kCount_: break;
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t ts = 0;     // engine clock (sim steps / µs)
  std::uint64_t cycle = 0;  // marking-cycle number; 0 = not cycle-scoped
  std::uint64_t a = 0;      // payload (see EventType comments)
  std::uint64_t b = 0;
  EventType type = EventType::kCycleStart;
  Plane plane = Plane::kR;
  std::uint16_t pe = 0;  // track attribution

  bool operator==(const TraceEvent&) const = default;
};

// A synthetic event recording that `ring_dropped` events were overwritten in
// the source ring and `omitted` more fell past the telemetry payload cap
// before this point in the stream. Emitted by the cluster merger (and usable
// by any exporter) so drop accounting rides the normal event path — inline
// because it's pure struct assembly, safe under -DDGR_TRACE=OFF.
inline TraceEvent make_drop_event(std::uint64_t ts, std::uint64_t cycle,
                                  std::uint16_t pe, std::uint64_t ring_dropped,
                                  std::uint64_t omitted) {
  TraceEvent e;
  e.ts = ts;
  e.cycle = cycle;
  e.a = ring_dropped;
  e.b = omitted;
  e.type = EventType::kTraceDrop;
  e.pe = pe;
  return e;
}

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 14);

  // Engine clock; defaults to 0 until set.
  using Clock = std::function<std::uint64_t()>;
  void set_clock(Clock c);

  void emit(EventType type, Plane plane, std::uint16_t pe, std::uint64_t cycle,
            std::uint64_t a = 0, std::uint64_t b = 0);

  // Events in emission order (oldest surviving first).
  std::vector<TraceEvent> snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const { return ring_.size(); }
  // Events overwritten because the ring wrapped.
  std::uint64_t dropped() const;
  void clear();

 private:
  mutable std::mutex mu_;
  Clock clock_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;     // next write position
  std::size_t count_ = 0;    // valid events (≤ capacity)
  std::uint64_t dropped_ = 0;
};

}  // namespace dgr::obs
