// Per-PE metrics registry — the single home for runtime counters and
// histograms, shared by both engines (replacing the ad-hoc SimMetrics /
// ThreadEngineStats counter fields).
//
// Design: one cache-line-aligned slot per PE holding relaxed atomic counters
// plus log-bucketed histograms behind a per-slot spinlock. Increments are a
// single relaxed fetch_add on the owner's line — no shared lock, no false
// sharing between PEs — so the registry is cheap enough to stay enabled in
// benches (the observability prerequisite for optimizing what we measure).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace dgr::obs {

// Counter identities. Attribution convention: task counters are charged to
// the PE that executed the task; message counters to the sending PE.
enum class Counter : std::uint8_t {
  kMarkTasks = 0,    // kMark executions
  kReturnTasks,      // kMarkReturn executions
  kReductionTasks,   // reduction-task executions
  kRemoteMessages,   // spawns crossing a PE boundary
  kLocalMessages,    // same-PE spawns
  kBytesSent,        // wire-size of remote messages
  // Fault plane (charged to the sending PE of the affected message).
  kMsgDroppedInjected,    // messages deleted by the fault schedule
  kMsgDupInjected,        // messages duplicated by the fault schedule
  kMsgReorderedInjected,  // messages held back by the fault schedule
  kMsgTruncatedInjected,  // messages truncated by the fault schedule
  // Reliable channel (retransmit charged to sender, the rest to receiver).
  kMsgRetransmit,     // data frames re-sent after RTO expiry
  kMsgDupSuppressed,  // duplicate data frames discarded by the receiver
  kMsgDecodeError,    // frames that failed checksum/length validation
  // Batched message plane (all charged to the sending PE).
  kMsgBatched,         // messages that traveled inside a coalesced batch
  kBatchFlush,         // batches flushed (size cap, age cap, or idle/park)
  kBackpressureStall,  // spawns that stalled on a saturated peer backlog
  // Locality plane (PR 6). Dedup is charged to the spawning PE; steals to
  // the thief; edge counters to the PE owning the edge's source vertex.
  kBoundaryDedup,      // remote child marks suppressed by a boundary summary
  kStealBatches,       // idle-PE steal passes that took at least one task
  kStealTasks,         // tasks executed by a PE other than their owner
  kEdgeCut,            // arg edges whose endpoints live on different PEs
  kEdgesTotal,         // all arg edges (denominator for the cut fraction)
  // Cluster plane (PR 8). Handoff/relay bytes are charged to the receiving
  // worker's first owned PE; telemetry accounting to the reporting worker's
  // first owned PE.
  kHandoffBytes,       // partition-snapshot bytes shipped at plane begin
  kRelayedFrames,      // worker→worker data frames relayed through the hub
  kRelayedBytes,       // payload bytes of those relayed frames
  kTelemetryMsgs,      // kTelemetry payloads merged by the controller
  kTelemetryDropped,   // trace events lost before merge (ring + payload cap)
  // Dynamic membership + differential handoffs (docs/CLUSTER.md).
  kWorkerLost,           // worker processes declared dead (EOF / deadline)
  kPartitionReassigned,  // PEs whose owning worker changed on recovery
  kHandoffFullBytes,     // full-snapshot handoff payload bytes
  kHandoffDeltaBytes,    // differential handoff payload bytes
  kHandoffResyncs,       // checksum mismatches that forced a full resync
  // Workload driver (src/workload, docs/WORKLOAD.md). Session counters are
  // charged to the session root's PE; stall time is attributed to the
  // controller phase observed when the mutation was submitted.
  kSessionsOpened,     // sessions admitted (anchor edge added)
  kSessionsClosed,     // sessions retired (anchor edge dropped)
  kSessionChurnOps,    // churn mutations applied (acquire / drop / inject)
  kSessionsRejected,   // arrivals refused because the store was full
  kMutatorOps,         // timed driver mutations (stall histogram samples)
  kMutatorStallIdleUs,     // stall µs submitted while the controller was idle
  kMutatorStallMarkUs,     // stall µs submitted while a plane was marking
  kMutatorStallQuiesceUs,  // stall µs submitted while restructuring was due
  kCount_,
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount_);
const char* counter_name(Counter c);

enum class Hist : std::uint8_t {
  kMarkQueueDepth = 0,  // marking queue / mailbox depth at service time
  kPoolDepth,           // reduction pool depth at service time
  kMsgLatency,          // cross-PE delivery latency (sim steps)
  kChannelRtt,          // reliable-channel clean RTT samples (microseconds)
  kBatchFillPct,        // flushed batch fill (percent of the size cap)
  kMutatorStallUs,      // driver mutation blocked on locks/quiesce (µs)
  kCount_,
};
inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount_);
const char* hist_name(Hist h);

class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::uint32_t num_pes);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  std::uint32_t num_pes() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  void add(std::uint32_t pe, Counter c, std::uint64_t n = 1) noexcept {
    slots_[pe].c[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t get(std::uint32_t pe, Counter c) const noexcept {
    return slots_[pe].c[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }

  std::uint64_t total(Counter c) const noexcept;

  // Histogram observation; per-slot spinlock (uncontended in both engines:
  // each PE observes only its own slot).
  void observe(std::uint32_t pe, Hist h, double v) noexcept;
  // Fold a raw log-bucket delta into a slot's histogram — the receive side
  // of the cluster telemetry plane (net/proto.h TelemetryMsg::HistDelta).
  void merge_hist_bucket(std::uint32_t pe, Hist h, std::uint32_t bucket,
                         std::uint64_t n, double max_hint) noexcept;
  // Consistent copy of one histogram (merges nothing; single slot).
  Histogram hist(std::uint32_t pe, Hist h) const;
  // All PEs' histograms for `h` merged.
  Histogram merged_hist(Hist h) const;

  void reset();

  // Deterministic JSON object: {"num_pes":N,"totals":{...},"pes":[...]}.
  // Histograms export count/p50/p99/p999/max.
  std::string to_json() const;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kNumCounters> c{};
    mutable std::atomic_flag hist_lock = ATOMIC_FLAG_INIT;
    std::array<Histogram, kNumHists> h;
  };
  std::vector<Slot> slots_;
};

// ---- Live health rollup (dgr_run --stats N) ----
//
// A HealthSnapshot is one sampling window's worth of registry deltas plus
// engine-side facts the registry doesn't know (cycle count, worker liveness).
// The emitters are pure formatting functions so both engines — and the unit
// tests — share one rendering of the rollup.
struct HealthSnapshot {
  std::uint64_t cycle = 0;          // cycles completed so far
  std::uint64_t cycles_window = 0;  // cycles in this window
  double window_ms = 0.0;           // wall-clock of the window
  std::uint64_t marks = 0;          // mark+return tasks this window
  std::uint64_t remote_msgs = 0;    // remote messages this window
  std::uint64_t local_msgs = 0;     // local messages this window
  std::uint64_t retransmits = 0;    // channel retransmits this window
  std::uint64_t stall_ops = 0;      // timed mutator ops so far (cumulative)
  double stall_p99_us = 0.0;        // mutator_stall_us p99 (cumulative hist)
  std::uint64_t telemetry_dropped = 0;  // cumulative (cluster runs)
  std::uint32_t workers_live = 0;   // connected workers (0 = in-process run)
  std::uint32_t workers_total = 0;
};

// One-line human form:
//   cycle 40 | 12.3 ms/cycle | 81k marks/s | remote 34.2% | retx 3 | workers 4/4
std::string health_line(const HealthSnapshot& s);
// One-object machine form (JSONL row).
std::string health_jsonl(const HealthSnapshot& s);

}  // namespace dgr::obs
