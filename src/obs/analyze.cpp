#include "obs/analyze.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "util/stats.h"

namespace dgr::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  append_u64(out, v);
  if (comma) out += ',';
}

WaveLatency summarize(const Histogram& h) {
  WaveLatency w;
  w.samples = h.count();
  w.p50 = h.p50();
  w.p99 = h.p99();
  w.max = h.max_value();
  return w;
}

// Per-cycle scratch the scanner keeps while the cycle is open: which PEs have
// already contributed a wave_front sample this cycle (first-sample latency
// and participation are both per-cycle-per-PE firsts).
struct OpenCycle {
  std::size_t index = 0;  // into TraceReport::cycles
  std::vector<bool> seen_r;
  std::vector<bool> seen_t;
  std::vector<bool> participated;
};

}  // namespace

TraceReport analyze(const std::vector<TraceEvent>& events) {
  TraceReport rep;
  rep.events = events.size();
  for (const TraceEvent& e : events)
    rep.num_pes = std::max<std::uint32_t>(rep.num_pes, e.pe + 1u);
  rep.pes.resize(rep.num_pes);
  for (std::uint32_t pe = 0; pe < rep.num_pes; ++pe)
    rep.pes[pe].pe = static_cast<std::uint16_t>(pe);

  std::unordered_map<std::uint64_t, std::size_t> cycle_index;
  auto cycle_at = [&](std::uint64_t cycle) -> CycleReport& {
    auto it = cycle_index.find(cycle);
    if (it == cycle_index.end()) {
      it = cycle_index.emplace(cycle, rep.cycles.size()).first;
      rep.cycles.emplace_back().cycle = cycle;
    }
    return rep.cycles[it->second];
  };

  // Marker- and mutator-emitted events (wave_front, rescue_queued) carry
  // cycle 0 — those layers do not know the cycle number. The scanner scopes
  // them to the cycle open at that point of the stream.
  OpenCycle open;
  bool has_open = false;
  auto ensure_pe = [&](std::uint16_t pe) -> PeLoad& { return rep.pes[pe]; };
  auto scoped_cycle = [&](const TraceEvent& e) -> CycleReport* {
    if (e.cycle != 0) return &cycle_at(e.cycle);
    if (has_open) return &rep.cycles[open.index];
    return nullptr;  // pre-cycle / post-wrap event; totals still counted
  };

  Histogram lat_r, lat_t;

  for (const TraceEvent& e : events) {
    switch (e.type) {
      case EventType::kCycleStart: {
        CycleReport& c = cycle_at(e.cycle);
        c.start_ts = e.ts;
        open = OpenCycle{};
        open.index = cycle_index[e.cycle];
        open.seen_r.assign(rep.num_pes, false);
        open.seen_t.assign(rep.num_pes, false);
        open.participated.assign(rep.num_pes, false);
        has_open = true;
        break;
      }
      case EventType::kPhaseBegin: {
        if (CycleReport* c = scoped_cycle(e)) {
          PhaseReport& p = e.plane == Plane::kT ? c->mt : c->mr;
          p.ran = true;
          p.begin_ts = e.ts;
        }
        break;
      }
      case EventType::kPhaseEnd: {
        if (CycleReport* c = scoped_cycle(e)) {
          PhaseReport& p = e.plane == Plane::kT ? c->mt : c->mr;
          p.ran = true;
          p.finished = true;
          p.end_ts = e.ts;
          p.marks = e.a;
          p.returns = e.b;
        }
        break;
      }
      case EventType::kWaveFront: {
        PeLoad& pl = ensure_pe(e.pe);
        (e.plane == Plane::kT ? pl.wave_samples_t : pl.wave_samples_r)++;
        if (!has_open) break;
        CycleReport& c = rep.cycles[open.index];
        if (!open.participated[e.pe]) {
          open.participated[e.pe] = true;
          ++pl.cycles_participated;
        }
        std::vector<bool>& seen =
            e.plane == Plane::kT ? open.seen_t : open.seen_r;
        if (!seen[e.pe]) {
          seen[e.pe] = true;
          const PhaseReport& p = e.plane == Plane::kT ? c.mt : c.mr;
          if (p.ran && e.ts >= p.begin_ts) {
            (e.plane == Plane::kT ? lat_t : lat_r)
                .add(static_cast<double>(e.ts - p.begin_ts));
          }
        }
        break;
      }
      case EventType::kRescueWave: {
        if (CycleReport* c = scoped_cycle(e)) ++c->rescue_waves;
        break;
      }
      case EventType::kRescueQueued: {
        ++ensure_pe(e.pe).rescue_queued;
        if (CycleReport* c = scoped_cycle(e)) ++c->rescue_queued;
        break;
      }
      case EventType::kCoopTaint: {
        ++ensure_pe(e.pe).coop_taints;
        if (CycleReport* c = scoped_cycle(e)) ++c->coop_taints;
        break;
      }
      case EventType::kSweep: {
        if (CycleReport* c = scoped_cycle(e)) c->swept = e.a;
        break;
      }
      case EventType::kExpunge: {
        if (CycleReport* c = scoped_cycle(e)) c->expunged = e.a;
        break;
      }
      case EventType::kReprioritize: {
        if (CycleReport* c = scoped_cycle(e)) c->reprioritized = e.a;
        break;
      }
      case EventType::kDeadlockReport: {
        if (CycleReport* c = scoped_cycle(e)) {
          c->deadlock_report = true;
          c->deadlocked_count = e.a;
        }
        if (e.a > 0) {
          DeadlockPostMortem& pm = rep.deadlocks.emplace_back();
          pm.cycle = e.cycle;
          pm.report_ts = e.ts;
          pm.count = e.a;
        }
        break;
      }
      case EventType::kDeadlockVertex: {
        // Evidence chain member: restructuring named this vertex as
        // DL'_v = R'_v − T'. Emitted right after its cycle's report.
        if (!rep.deadlocks.empty() &&
            rep.deadlocks.back().cycle == e.cycle) {
          rep.deadlocks.back().vertices.emplace_back(e.pe, e.a);
        }
        break;
      }
      case EventType::kCycleEnd: {
        CycleReport& c = cycle_at(e.cycle);
        c.complete = true;
        c.end_ts = e.ts;
        ++rep.complete_cycles;
        has_open = false;
        break;
      }
      case EventType::kAudit: {
        rep.audits += 1;
        rep.audit_violations += e.a;
        if (CycleReport* c = scoped_cycle(e)) {
          ++c->audits;
          c->audit_violations += e.a;
        }
        break;
      }
      case EventType::kHealthWarning: {
        if (e.a < kNumHealthKinds) ++rep.health_warnings[e.a];
        ++ensure_pe(e.pe).health_warnings;
        if (CycleReport* c = scoped_cycle(e)) ++c->health_warnings;
        break;
      }
      case EventType::kFaultInjected: {
        if (e.a < kNumFaultKinds) ++rep.faults_injected[e.a];
        break;
      }
      case EventType::kMsgRetransmit: {
        ++rep.retransmits;
        ++ensure_pe(e.pe).msg_retransmit;
        break;
      }
      case EventType::kMsgDupSuppressed: {
        ++rep.dup_suppressed;
        ++ensure_pe(e.pe).msg_dup_suppressed;
        break;
      }
      case EventType::kBatchFlush: {
        ++rep.batch_flushes;
        rep.msgs_batched += e.a;
        PeLoad& p = ensure_pe(e.pe);
        ++p.batch_flush;
        p.msg_batched += e.a;
        break;
      }
      case EventType::kBackpressureStall: {
        ++rep.backpressure_stalls;
        ++ensure_pe(e.pe).backpressure_stall;
        break;
      }
      case EventType::kTraceDrop: {
        rep.trace_dropped += e.a;
        rep.trace_events_omitted += e.b;
        break;
      }
      case EventType::kWorkerLost: {
        ++rep.workers_lost;
        break;
      }
      case EventType::kPartitionReassign: {
        ++rep.partition_reassigns;
        rep.pes_reassigned += e.a;
        break;
      }
      case EventType::kHandoffResync: {
        ++rep.handoff_resyncs;
        break;
      }
      case EventType::kSessionOpen:
      case EventType::kSessionChurn:
      case EventType::kSessionClose: {
        SessionSlo& s = rep.sessions;
        if (s.opened + s.churn + s.closed == 0) s.first_ts = e.ts;
        s.last_ts = e.ts;
        if (e.type == EventType::kSessionOpen) {
          ++s.opened;
          s.peak_live = std::max(s.peak_live, s.opened - s.closed);
        } else if (e.type == EventType::kSessionChurn) {
          ++s.churn;
        } else {
          ++s.closed;
        }
        break;
      }
      case EventType::kCount_:
        break;
    }
  }

  // Post-pass: work share, idle fraction, wave-latency summaries, and the
  // marks/returns evidence in each deadlock post-mortem (the phase totals
  // are only known once the cycle's phase_end events have been scanned).
  std::uint64_t total_samples = 0;
  for (const PeLoad& p : rep.pes)
    total_samples += p.wave_samples_r + p.wave_samples_t;
  const std::uint64_t denom =
      rep.complete_cycles ? rep.complete_cycles : rep.cycles.size();
  for (PeLoad& p : rep.pes) {
    if (total_samples)
      p.work_share =
          static_cast<double>(p.wave_samples_r + p.wave_samples_t) /
          static_cast<double>(total_samples);
    if (denom) {
      const std::uint64_t took = std::min<std::uint64_t>(
          p.cycles_participated, denom);
      p.idle_fraction =
          1.0 - static_cast<double>(took) / static_cast<double>(denom);
    }
  }
  rep.wave_r = summarize(lat_r);
  rep.wave_t = summarize(lat_t);
  if (rep.sessions.closed && rep.sessions.last_ts > rep.sessions.first_ts) {
    // Meaningful only when the trace clock is µs (threaded engine).
    rep.sessions.sessions_per_sec =
        static_cast<double>(rep.sessions.closed) * 1e6 /
        static_cast<double>(rep.sessions.last_ts - rep.sessions.first_ts);
  }
  for (DeadlockPostMortem& pm : rep.deadlocks) {
    auto it = cycle_index.find(pm.cycle);
    if (it == cycle_index.end()) continue;
    const CycleReport& c = rep.cycles[it->second];
    pm.mt_marks = c.mt.marks;
    pm.mt_returns = c.mt.returns;
    pm.mr_marks = c.mr.marks;
    pm.mr_returns = c.mr.returns;
  }
  return rep;
}

namespace {

// Minimal scanners for the fixed MetricsRegistry::to_json layout (flat keys,
// deterministic order — same contract from_jsonl relies on).
bool scan_u64_after(const std::string& s, std::size_t from, const char* key,
                    std::uint64_t* out) {
  const std::size_t k = s.find(key, from);
  if (k == std::string::npos) return false;
  const char* p = s.c_str() + k + std::strlen(key);
  char* end = nullptr;
  *out = std::strtoull(p, &end, 10);
  return end != p;
}

bool scan_double_after(const std::string& s, std::size_t from, const char* key,
                       double* out) {
  const std::size_t k = s.find(key, from);
  if (k == std::string::npos) return false;
  const char* p = s.c_str() + k + std::strlen(key);
  char* end = nullptr;
  *out = std::strtod(p, &end);
  return end != p;
}

bool scan_i64_after(const std::string& s, std::size_t from, const char* key,
                    std::int64_t* out) {
  const std::size_t k = s.find(key, from);
  if (k == std::string::npos) return false;
  const char* p = s.c_str() + k + std::strlen(key);
  char* end = nullptr;
  *out = std::strtoll(p, &end, 10);
  return end != p;
}

}  // namespace

bool enrich_with_metrics_json(TraceReport& report, const std::string& json) {
  std::uint64_t num_pes = 0;
  if (!scan_u64_after(json, 0, "\"num_pes\":", &num_pes) || num_pes == 0)
    return false;
  const std::size_t pes_at = json.find("\"pes\":[");
  if (pes_at == std::string::npos) return false;
  if (report.pes.size() < num_pes) {
    const std::size_t old = report.pes.size();
    report.pes.resize(num_pes);
    for (std::size_t i = old; i < num_pes; ++i)
      report.pes[i].pe = static_cast<std::uint16_t>(i);
    report.num_pes = static_cast<std::uint32_t>(num_pes);
  }
  std::size_t pos = pes_at;
  for (std::uint64_t pe = 0; pe < num_pes; ++pe) {
    char anchor[32];
    std::snprintf(anchor, sizeof(anchor), "{\"pe\":%llu,",
                  (unsigned long long)pe);
    const std::size_t at = json.find(anchor, pos);
    if (at == std::string::npos) return false;
    PeLoad& p = report.pes[pe];
    scan_u64_after(json, at, "\"mark_tasks\":", &p.mark_tasks);
    scan_u64_after(json, at, "\"return_tasks\":", &p.return_tasks);
    // Exact channel counts supersede the trace-derived approximation (the
    // ring may have dropped events; older dumps lack the keys — kept as-is).
    scan_u64_after(json, at, "\"msg_retransmit\":", &p.msg_retransmit);
    scan_u64_after(json, at, "\"msg_dup_suppressed\":", &p.msg_dup_suppressed);
    scan_u64_after(json, at, "\"msg_batched\":", &p.msg_batched);
    scan_u64_after(json, at, "\"batch_flush\":", &p.batch_flush);
    scan_u64_after(json, at, "\"backpressure_stall\":", &p.backpressure_stall);
    // Locality counters (older dumps lack the keys — left at zero).
    scan_u64_after(json, at, "\"remote_messages\":", &p.remote_messages);
    scan_u64_after(json, at, "\"local_messages\":", &p.local_messages);
    scan_u64_after(json, at, "\"boundary_dedup\":", &p.boundary_dedup);
    scan_u64_after(json, at, "\"steal_batches\":", &p.steal_batches);
    scan_u64_after(json, at, "\"steal_tasks\":", &p.steal_tasks);
    scan_u64_after(json, at, "\"edge_cut\":", &p.edge_cut);
    scan_u64_after(json, at, "\"edges_total\":", &p.edges_total);
    if (p.remote_messages + p.local_messages)
      p.remote_ratio =
          static_cast<double>(p.remote_messages) /
          static_cast<double>(p.remote_messages + p.local_messages);
    // The deepest mailbox/queue backlog the PE ever serviced.
    const std::size_t h = json.find("\"mark_queue_depth\":", at);
    if (h != std::string::npos) {
      double max_depth = 0.0;
      if (scan_double_after(json, h, "\"max\":", &max_depth))
        p.mailbox_high_water = static_cast<std::uint64_t>(max_depth);
    }
    // Mutator stall histogram: sum the sample counts, keep the worst
    // percentile across PEs (log-bucket percentiles don't merge exactly).
    const std::size_t st = json.find("\"mutator_stall_us\":", at);
    if (st != std::string::npos) {
      SessionSlo& s = report.sessions;
      std::uint64_t cnt = 0;
      double p50 = 0, p99 = 0, p999 = 0, mx = 0;
      if (scan_u64_after(json, st, "\"count\":", &cnt) && cnt) {
        s.stall_ops += cnt;
        if (scan_double_after(json, st, "\"p50\":", &p50))
          s.stall_p50_us = std::max(s.stall_p50_us, p50);
        if (scan_double_after(json, st, "\"p99\":", &p99))
          s.stall_p99_us = std::max(s.stall_p99_us, p99);
        if (scan_double_after(json, st, "\"p999\":", &p999))
          s.stall_p999_us = std::max(s.stall_p999_us, p999);
        if (scan_double_after(json, st, "\"max\":", &mx))
          s.stall_max_us = std::max(s.stall_max_us, mx);
      }
    }
    pos = at + 1;
  }
  // Session + stall-attribution totals (the "totals" object precedes "pes",
  // so a first-occurrence scan lands on it).
  {
    SessionSlo& s = report.sessions;
    const std::size_t tot = json.find("\"totals\":");
    if (tot != std::string::npos) {
      std::uint64_t u = 0;
      if (scan_u64_after(json, tot, "\"sessions_opened\":", &u) && u)
        s.opened = std::max(s.opened, u);
      if (scan_u64_after(json, tot, "\"sessions_closed\":", &u) && u)
        s.closed = std::max(s.closed, u);
      if (scan_u64_after(json, tot, "\"session_churn_ops\":", &u) && u)
        s.churn = std::max(s.churn, u);
      scan_u64_after(json, tot, "\"sessions_rejected\":", &s.rejected);
      scan_u64_after(json, tot, "\"mutator_stall_idle_us\":", &s.stall_idle_us);
      scan_u64_after(json, tot, "\"mutator_stall_mark_us\":", &s.stall_mark_us);
      scan_u64_after(json, tot, "\"mutator_stall_quiesce_us\":",
                     &s.stall_quiesce_us);
    }
  }
  // Cluster rollup: present only in ProcEngine::cluster_metrics_json dumps
  // (the "{\"worker\":N," anchor cannot collide with "{\"pe\":N," above).
  const std::size_t workers_at = json.find("\"workers\":[");
  if (workers_at != std::string::npos) {
    report.workers.clear();
    std::size_t wpos = workers_at;
    for (std::uint32_t w = 0;; ++w) {
      char anchor[32];
      std::snprintf(anchor, sizeof(anchor), "{\"worker\":%u,", w);
      const std::size_t at = json.find(anchor, wpos);
      if (at == std::string::npos) break;
      WorkerRow row;
      row.worker = w;
      std::uint64_t u = 0;
      if (scan_u64_after(json, at, "\"pe_begin\":", &u))
        row.pe_begin = static_cast<std::uint32_t>(u);
      if (scan_u64_after(json, at, "\"pe_count\":", &u))
        row.pe_count = static_cast<std::uint32_t>(u);
      scan_u64_after(json, at, "\"marks\":", &row.marks);
      scan_u64_after(json, at, "\"returns\":", &row.returns);
      scan_u64_after(json, at, "\"remote_messages\":", &row.remote_messages);
      scan_u64_after(json, at, "\"retransmits\":", &row.retransmits);
      scan_u64_after(json, at, "\"handoff_bytes\":", &row.handoff_bytes);
      scan_u64_after(json, at, "\"handoff_full_bytes\":",
                     &row.handoff_full_bytes);
      scan_u64_after(json, at, "\"handoff_delta_bytes\":",
                     &row.handoff_delta_bytes);
      scan_u64_after(json, at, "\"relayed_frames\":", &row.relayed_frames);
      scan_u64_after(json, at, "\"relayed_bytes\":", &row.relayed_bytes);
      scan_u64_after(json, at, "\"telemetry_msgs\":", &row.telemetry_msgs);
      scan_u64_after(json, at, "\"telemetry_dropped\":",
                     &row.telemetry_dropped);
      scan_i64_after(json, at, "\"clock_offset_us\":", &row.clock_offset_us);
      scan_u64_after(json, at, "\"clock_rtt_us\":", &row.clock_rtt_us);
      report.workers.push_back(row);
      wpos = at + 1;
    }
    // Membership summary (older dumps lack the object — left at zero).
    const std::size_t mem_at = json.find("\"membership\":{");
    if (mem_at != std::string::npos) {
      scan_u64_after(json, mem_at, "\"gen\":", &report.membership_gen);
      scan_u64_after(json, mem_at, "\"workers_live\":", &report.workers_live);
      scan_u64_after(json, mem_at, "\"workers_total\":",
                     &report.workers_total);
      std::uint64_t u = 0;
      if (scan_u64_after(json, mem_at, "\"worker_lost\":", &u))
        report.workers_lost = u;
      if (scan_u64_after(json, mem_at, "\"partition_reassigned\":", &u))
        report.pes_reassigned = u;
      if (scan_u64_after(json, mem_at, "\"handoff_resyncs\":", &u))
        report.handoff_resyncs = u;
    }
  }
  report.metrics_enriched = true;
  return true;
}

std::string report_to_json(const TraceReport& r) {
  std::string out = "{";
  append_kv(out, "events", r.events);
  append_kv(out, "num_pes", r.num_pes);
  out += "\"metrics_enriched\":";
  out += r.metrics_enriched ? "true," : "false,";
  append_kv(out, "complete_cycles", r.complete_cycles);
  append_kv(out, "audits", r.audits);
  append_kv(out, "audit_violations", r.audit_violations);
  append_kv(out, "retransmits", r.retransmits);
  append_kv(out, "dup_suppressed", r.dup_suppressed);
  append_kv(out, "msgs_batched", r.msgs_batched);
  append_kv(out, "batch_flushes", r.batch_flushes);
  append_kv(out, "backpressure_stalls", r.backpressure_stalls);
  append_kv(out, "trace_dropped", r.trace_dropped);
  append_kv(out, "trace_events_omitted", r.trace_events_omitted);
  append_kv(out, "workers_lost", r.workers_lost);
  append_kv(out, "partition_reassigns", r.partition_reassigns);
  append_kv(out, "pes_reassigned", r.pes_reassigned);
  append_kv(out, "handoff_resyncs", r.handoff_resyncs);
  append_kv(out, "membership_gen", r.membership_gen);
  append_kv(out, "workers_live", r.workers_live);
  append_kv(out, "workers_total", r.workers_total);
  out += "\"faults_injected\":{";
  for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
    if (i) out += ',';
    out += '"';
    out += fault_kind_name(static_cast<FaultKind>(i));
    out += "\":";
    append_u64(out, r.faults_injected[i]);
  }
  out += "},\"health_warnings\":{";
  for (std::size_t i = 0; i < kNumHealthKinds; ++i) {
    if (i) out += ',';
    out += '"';
    out += health_kind_name(static_cast<HealthKind>(i));
    out += "\":";
    append_u64(out, r.health_warnings[i]);
  }
  out += "},\"cycles\":[";
  for (std::size_t i = 0; i < r.cycles.size(); ++i) {
    const CycleReport& c = r.cycles[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "cycle", c.cycle);
    out += "\"complete\":";
    out += c.complete ? "true," : "false,";
    append_kv(out, "start_ts", c.start_ts);
    append_kv(out, "end_ts", c.end_ts);
    append_kv(out, "duration", c.duration());
    for (const auto& pr : {std::pair<const char*, const PhaseReport*>{
                               "mt", &c.mt},
                           {"mr", &c.mr}}) {
      out += '"';
      out += pr.first;
      out += "\":{\"ran\":";
      out += pr.second->ran ? "true," : "false,";
      append_kv(out, "begin_ts", pr.second->begin_ts);
      append_kv(out, "end_ts", pr.second->end_ts);
      append_kv(out, "duration", pr.second->duration());
      append_kv(out, "marks", pr.second->marks);
      append_kv(out, "returns", pr.second->returns, false);
      out += "},";
    }
    append_kv(out, "rescue_waves", c.rescue_waves);
    append_kv(out, "rescue_queued", c.rescue_queued);
    append_kv(out, "coop_taints", c.coop_taints);
    append_kv(out, "swept", c.swept);
    append_kv(out, "expunged", c.expunged);
    append_kv(out, "reprioritized", c.reprioritized);
    out += "\"deadlock_report\":";
    out += c.deadlock_report ? "true," : "false,";
    append_kv(out, "deadlocked", c.deadlocked_count);
    append_kv(out, "audits", c.audits);
    append_kv(out, "audit_violations", c.audit_violations);
    append_kv(out, "health_warnings", c.health_warnings, false);
    out += '}';
  }
  out += "],\"pes\":[";
  for (std::size_t i = 0; i < r.pes.size(); ++i) {
    const PeLoad& p = r.pes[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "pe", p.pe);
    append_kv(out, "wave_samples_r", p.wave_samples_r);
    append_kv(out, "wave_samples_t", p.wave_samples_t);
    out += "\"work_share\":";
    append_double(out, p.work_share);
    out += ',';
    append_kv(out, "cycles_participated", p.cycles_participated);
    out += "\"idle_fraction\":";
    append_double(out, p.idle_fraction);
    out += ',';
    append_kv(out, "rescue_queued", p.rescue_queued);
    append_kv(out, "coop_taints", p.coop_taints);
    append_kv(out, "health_warnings", p.health_warnings);
    append_kv(out, "msg_retransmit", p.msg_retransmit);
    append_kv(out, "msg_dup_suppressed", p.msg_dup_suppressed);
    append_kv(out, "msg_batched", p.msg_batched);
    append_kv(out, "batch_flush", p.batch_flush);
    append_kv(out, "backpressure_stall", p.backpressure_stall);
    append_kv(out, "mark_tasks", p.mark_tasks);
    append_kv(out, "return_tasks", p.return_tasks);
    append_kv(out, "mailbox_high_water", p.mailbox_high_water);
    append_kv(out, "remote_messages", p.remote_messages);
    append_kv(out, "local_messages", p.local_messages);
    out += "\"remote_ratio\":";
    append_double(out, p.remote_ratio);
    out += ',';
    append_kv(out, "boundary_dedup", p.boundary_dedup);
    append_kv(out, "steal_batches", p.steal_batches);
    append_kv(out, "steal_tasks", p.steal_tasks);
    append_kv(out, "edge_cut", p.edge_cut);
    append_kv(out, "edges_total", p.edges_total, false);
    out += '}';
  }
  out += "],";
  for (const auto& wl : {std::pair<const char*, const WaveLatency*>{
                             "wave_latency_r", &r.wave_r},
                         {"wave_latency_t", &r.wave_t}}) {
    out += '"';
    out += wl.first;
    out += "\":{";
    append_kv(out, "samples", wl.second->samples);
    out += "\"p50\":";
    append_double(out, wl.second->p50);
    out += ",\"p99\":";
    append_double(out, wl.second->p99);
    out += ",\"max\":";
    append_double(out, wl.second->max);
    out += "},";
  }
  out += "\"workers\":[";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    const WorkerRow& w = r.workers[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "worker", w.worker);
    append_kv(out, "pe_begin", w.pe_begin);
    append_kv(out, "pe_count", w.pe_count);
    append_kv(out, "marks", w.marks);
    append_kv(out, "returns", w.returns);
    append_kv(out, "remote_messages", w.remote_messages);
    append_kv(out, "retransmits", w.retransmits);
    append_kv(out, "handoff_bytes", w.handoff_bytes);
    append_kv(out, "handoff_full_bytes", w.handoff_full_bytes);
    append_kv(out, "handoff_delta_bytes", w.handoff_delta_bytes);
    append_kv(out, "relayed_frames", w.relayed_frames);
    append_kv(out, "relayed_bytes", w.relayed_bytes);
    append_kv(out, "telemetry_msgs", w.telemetry_msgs);
    append_kv(out, "telemetry_dropped", w.telemetry_dropped);
    out += "\"clock_offset_us\":";
    {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld", (long long)w.clock_offset_us);
      out += buf;
    }
    out += ',';
    append_kv(out, "clock_rtt_us", w.clock_rtt_us, false);
    out += '}';
  }
  out += "],\"sessions\":{";
  {
    const SessionSlo& s = r.sessions;
    append_kv(out, "opened", s.opened);
    append_kv(out, "closed", s.closed);
    append_kv(out, "churn", s.churn);
    append_kv(out, "peak_live", s.peak_live);
    append_kv(out, "rejected", s.rejected);
    append_kv(out, "first_ts", s.first_ts);
    append_kv(out, "last_ts", s.last_ts);
    out += "\"sessions_per_sec\":";
    append_double(out, s.sessions_per_sec);
    out += ',';
    append_kv(out, "stall_ops", s.stall_ops);
    out += "\"stall_p50_us\":";
    append_double(out, s.stall_p50_us);
    out += ",\"stall_p99_us\":";
    append_double(out, s.stall_p99_us);
    out += ",\"stall_p999_us\":";
    append_double(out, s.stall_p999_us);
    out += ",\"stall_max_us\":";
    append_double(out, s.stall_max_us);
    out += ',';
    append_kv(out, "stall_idle_us", s.stall_idle_us);
    append_kv(out, "stall_mark_us", s.stall_mark_us);
    append_kv(out, "stall_quiesce_us", s.stall_quiesce_us, false);
  }
  out += "},\"deadlocks\":[";
  for (std::size_t i = 0; i < r.deadlocks.size(); ++i) {
    const DeadlockPostMortem& d = r.deadlocks[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "cycle", d.cycle);
    append_kv(out, "report_ts", d.report_ts);
    append_kv(out, "count", d.count);
    append_kv(out, "mt_marks", d.mt_marks);
    append_kv(out, "mt_returns", d.mt_returns);
    append_kv(out, "mr_marks", d.mr_marks);
    append_kv(out, "mr_returns", d.mr_returns);
    out += "\"vertices\":[";
    for (std::size_t j = 0; j < d.vertices.size(); ++j) {
      if (j) out += ',';
      out += "{\"pe\":";
      append_u64(out, d.vertices[j].first);
      out += ",\"idx\":";
      append_u64(out, d.vertices[j].second);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

namespace {

void line(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
  out += '\n';
}

}  // namespace

std::string report_to_text(const TraceReport& r) {
  std::string out;
  line(out, "== trace summary ==");
  line(out, "events %llu | pes %u | cycles %zu (%llu complete)",
       (unsigned long long)r.events, r.num_pes, r.cycles.size(),
       (unsigned long long)r.complete_cycles);
  if (r.audits)
    line(out, "audits %llu (%llu violations)", (unsigned long long)r.audits,
         (unsigned long long)r.audit_violations);
  if (r.trace_dropped || r.trace_events_omitted)
    line(out,
         "TRACE LOSS: %llu ring overwrites, %llu over payload cap (counts "
         "below undercount)",
         (unsigned long long)r.trace_dropped,
         (unsigned long long)r.trace_events_omitted);

  line(out, "");
  line(out, "== cycles ==");
  line(out,
       "%6s %9s %9s | %9s %9s | %9s %9s | %7s %6s %7s %6s %5s",
       "cycle", "dur", "rescues", "mt-dur", "mt-marks", "mr-dur", "mr-marks",
       "swept", "expng", "reprio", "dlck", "note");
  for (const CycleReport& c : r.cycles) {
    std::string note;
    if (!c.complete) note = "partial";
    if (c.audit_violations) note += note.empty() ? "VIOL" : "+VIOL";
    if (c.health_warnings) note += note.empty() ? "warn" : "+warn";
    line(out,
         "%6llu %9llu %9llu | %9llu %9llu | %9llu %9llu | %7llu %6llu %7llu "
         "%6llu %5s",
         (unsigned long long)c.cycle, (unsigned long long)c.duration(),
         (unsigned long long)c.rescue_waves,
         (unsigned long long)c.mt.duration(), (unsigned long long)c.mt.marks,
         (unsigned long long)c.mr.duration(), (unsigned long long)c.mr.marks,
         (unsigned long long)c.swept, (unsigned long long)c.expunged,
         (unsigned long long)c.reprioritized,
         (unsigned long long)c.deadlocked_count, note.c_str());
  }

  line(out, "");
  line(out, "== per-PE load ==");
  if (r.metrics_enriched)
    line(out, "%4s %8s %8s %7s %7s %6s %8s %8s %8s %6s %6s %8s %6s %6s", "pe",
         "waves", "share", "cycles", "idle", "rescq", "marks", "returns",
         "mbox-hw", "retx", "dupsup", "batched", "bflush", "bstall");
  else
    line(out,
         "%4s %8s %8s %7s %7s %6s %6s %6s %8s %6s %6s   (run with --metrics "
         "for task counts)",
         "pe", "waves", "share", "cycles", "idle", "rescq", "retx", "dupsup",
         "batched", "bflush", "bstall");
  for (const PeLoad& p : r.pes) {
    if (r.metrics_enriched)
      line(out,
           "%4u %8llu %7.1f%% %7llu %6.1f%% %6llu %8llu %8llu %8llu %6llu "
           "%6llu %8llu %6llu %6llu",
           p.pe, (unsigned long long)(p.wave_samples_r + p.wave_samples_t),
           100.0 * p.work_share, (unsigned long long)p.cycles_participated,
           100.0 * p.idle_fraction, (unsigned long long)p.rescue_queued,
           (unsigned long long)p.mark_tasks, (unsigned long long)p.return_tasks,
           (unsigned long long)p.mailbox_high_water,
           (unsigned long long)p.msg_retransmit,
           (unsigned long long)p.msg_dup_suppressed,
           (unsigned long long)p.msg_batched,
           (unsigned long long)p.batch_flush,
           (unsigned long long)p.backpressure_stall);
    else
      line(out,
           "%4u %8llu %7.1f%% %7llu %6.1f%% %6llu %6llu %6llu %8llu %6llu "
           "%6llu",
           p.pe, (unsigned long long)(p.wave_samples_r + p.wave_samples_t),
           100.0 * p.work_share, (unsigned long long)p.cycles_participated,
           100.0 * p.idle_fraction, (unsigned long long)p.rescue_queued,
           (unsigned long long)p.msg_retransmit,
           (unsigned long long)p.msg_dup_suppressed,
           (unsigned long long)p.msg_batched,
           (unsigned long long)p.batch_flush,
           (unsigned long long)p.backpressure_stall);
  }

  std::uint64_t fault_total = 0;
  for (std::uint64_t f : r.faults_injected) fault_total += f;
  if (fault_total || r.retransmits || r.dup_suppressed) {
    line(out, "");
    line(out, "== reliable delivery ==");
    std::string fs = "faults injected:";
    for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " %s %llu",
                    fault_kind_name(static_cast<FaultKind>(i)),
                    (unsigned long long)r.faults_injected[i]);
      fs += buf;
    }
    line(out, "%s", fs.c_str());
    line(out, "retransmits %llu | duplicates suppressed %llu",
         (unsigned long long)r.retransmits,
         (unsigned long long)r.dup_suppressed);
  }

  // Batching rollup: trace-event totals, superseded by the exact per-PE
  // registry counts when --metrics enrichment ran.
  std::uint64_t msgs = r.msgs_batched;
  std::uint64_t flushes = r.batch_flushes;
  std::uint64_t stalls = r.backpressure_stalls;
  if (r.metrics_enriched) {
    msgs = flushes = stalls = 0;
    for (const PeLoad& p : r.pes) {
      msgs += p.msg_batched;
      flushes += p.batch_flush;
      stalls += p.backpressure_stall;
    }
  }
  if (msgs || flushes || stalls) {
    line(out, "");
    line(out, "== message batching ==");
    line(out,
         "messages batched %llu | flushes %llu (avg %.1f msgs/flush) | "
         "backpressure stalls %llu",
         (unsigned long long)msgs, (unsigned long long)flushes,
         flushes ? static_cast<double>(msgs) / static_cast<double>(flushes)
                 : 0.0,
         (unsigned long long)stalls);
  }

  // Locality rollup (per-PE counters exist only after --metrics enrichment;
  // all-zero rows mean a pre-locality dump or the SimEngine).
  std::uint64_t loc_remote = 0, loc_local = 0, loc_dedup = 0;
  std::uint64_t loc_sbatch = 0, loc_stask = 0, loc_cut = 0, loc_edges = 0;
  for (const PeLoad& p : r.pes) {
    loc_remote += p.remote_messages;
    loc_local += p.local_messages;
    loc_dedup += p.boundary_dedup;
    loc_sbatch += p.steal_batches;
    loc_stask += p.steal_tasks;
    loc_cut += p.edge_cut;
    loc_edges += p.edges_total;
  }
  if (loc_remote + loc_local + loc_dedup + loc_stask + loc_edges) {
    line(out, "");
    line(out, "== locality ==");
    line(out, "%4s %10s %10s %8s %10s %8s %10s %7s", "pe", "remote", "local",
         "remote%", "dedup", "steals", "stolen", "cut%");
    for (const PeLoad& p : r.pes) {
      const double cut_pct =
          p.edges_total ? 100.0 * static_cast<double>(p.edge_cut) /
                              static_cast<double>(p.edges_total)
                        : 0.0;
      line(out, "%4u %10llu %10llu %7.1f%% %10llu %8llu %10llu %6.1f%%", p.pe,
           (unsigned long long)p.remote_messages,
           (unsigned long long)p.local_messages, 100.0 * p.remote_ratio,
           (unsigned long long)p.boundary_dedup,
           (unsigned long long)p.steal_batches,
           (unsigned long long)p.steal_tasks, cut_pct);
    }
    std::uint64_t marks = 0;
    for (const PeLoad& p : r.pes) marks += p.mark_tasks;
    line(out,
         "total: remote %llu | local %llu (%.1f%% remote, %.2f remote msgs "
         "per mark task) | boundary dedup %llu | stolen %llu in %llu batches "
         "| edge cut %llu/%llu (%.1f%%)",
         (unsigned long long)loc_remote, (unsigned long long)loc_local,
         loc_remote + loc_local
             ? 100.0 * static_cast<double>(loc_remote) /
                   static_cast<double>(loc_remote + loc_local)
             : 0.0,
         marks ? static_cast<double>(loc_remote) / static_cast<double>(marks)
               : 0.0,
         (unsigned long long)loc_dedup, (unsigned long long)loc_stask,
         (unsigned long long)loc_sbatch, (unsigned long long)loc_cut,
         (unsigned long long)loc_edges,
         loc_edges ? 100.0 * static_cast<double>(loc_cut) /
                         static_cast<double>(loc_edges)
                   : 0.0);
  }

  if (!r.workers.empty()) {
    line(out, "");
    line(out, "== cluster ==");
    line(out, "%6s %9s %9s %9s %8s %6s %10s %8s %10s %6s %9s %9s %9s",
         "worker", "pes", "marks", "returns", "remote", "retx", "handoff-B",
         "relay", "relay-B", "tele", "tele-drop", "clk-off", "clk-rtt");
    for (const WorkerRow& w : r.workers) {
      char pes[24];
      std::snprintf(pes, sizeof(pes), "%u..%u", w.pe_begin,
                    w.pe_begin + w.pe_count - (w.pe_count ? 1 : 0));
      line(out,
           "%6u %9s %9llu %9llu %8llu %6llu %10llu %8llu %10llu %6llu %9llu "
           "%8lldus %7lluus",
           w.worker, pes, (unsigned long long)w.marks,
           (unsigned long long)w.returns,
           (unsigned long long)w.remote_messages,
           (unsigned long long)w.retransmits,
           (unsigned long long)w.handoff_bytes,
           (unsigned long long)w.relayed_frames,
           (unsigned long long)w.relayed_bytes,
           (unsigned long long)w.telemetry_msgs,
           (unsigned long long)w.telemetry_dropped,
           (long long)w.clock_offset_us, (unsigned long long)w.clock_rtt_us);
    }
    std::uint64_t tele_drop = 0, full_b = 0, delta_b = 0;
    for (const WorkerRow& w : r.workers) {
      tele_drop += w.telemetry_dropped;
      full_b += w.handoff_full_bytes;
      delta_b += w.handoff_delta_bytes;
    }
    if (tele_drop)
      line(out, "telemetry drops %llu (worker rings or payload cap)",
           (unsigned long long)tele_drop);
    else
      line(out, "telemetry complete: no drops");
    if (full_b + delta_b)
      line(out, "handoff bytes: full %llu | delta %llu (%.1f%% of full)",
           (unsigned long long)full_b, (unsigned long long)delta_b,
           full_b ? 100.0 * static_cast<double>(delta_b) /
                        static_cast<double>(full_b)
                  : 0.0);
    if (r.membership_gen || r.workers_lost || r.handoff_resyncs ||
        (r.workers_total && r.workers_live != r.workers_total)) {
      line(out,
           "membership: gen %llu | lost %llu | PEs reassigned %llu | "
           "resyncs %llu | live %llu/%llu",
           (unsigned long long)r.membership_gen,
           (unsigned long long)r.workers_lost,
           (unsigned long long)r.pes_reassigned,
           (unsigned long long)r.handoff_resyncs,
           (unsigned long long)r.workers_live,
           (unsigned long long)r.workers_total);
    }
  }

  // Session-workload SLO rollup: trace events give the session ledger; the
  // stall histogram and phase attribution need --metrics enrichment.
  if (r.sessions.opened || r.sessions.stall_ops) {
    const SessionSlo& s = r.sessions;
    line(out, "");
    line(out, "== sessions ==");
    line(out,
         "opened %llu | closed %llu | peak live %llu | churn ops %llu | "
         "rejected %llu",
         (unsigned long long)s.opened, (unsigned long long)s.closed,
         (unsigned long long)s.peak_live, (unsigned long long)s.churn,
         (unsigned long long)s.rejected);
    if (s.sessions_per_sec > 0.0)
      line(out, "throughput %.1f sessions/s over %llu clock units",
           s.sessions_per_sec, (unsigned long long)(s.last_ts - s.first_ts));
    if (s.stall_ops) {
      line(out,
           "mutator stall: %llu ops | p50 %.4gus | p99 %.4gus | p99.9 %.4gus "
           "| max %.4gus",
           (unsigned long long)s.stall_ops, s.stall_p50_us, s.stall_p99_us,
           s.stall_p999_us, s.stall_max_us);
      const std::uint64_t total_us =
          s.stall_idle_us + s.stall_mark_us + s.stall_quiesce_us;
      if (total_us)
        line(out,
             "stall attribution: idle %llu us (%.1f%%) | marking %llu us "
             "(%.1f%%) | quiesce %llu us (%.1f%%)",
             (unsigned long long)s.stall_idle_us,
             100.0 * static_cast<double>(s.stall_idle_us) /
                 static_cast<double>(total_us),
             (unsigned long long)s.stall_mark_us,
             100.0 * static_cast<double>(s.stall_mark_us) /
                 static_cast<double>(total_us),
             (unsigned long long)s.stall_quiesce_us,
             100.0 * static_cast<double>(s.stall_quiesce_us) /
                 static_cast<double>(total_us));
    } else if (!r.metrics_enriched) {
      line(out, "(run with --metrics for stall percentiles and attribution)");
    }
  }

  line(out, "");
  line(out, "== wave propagation latency (phase begin -> first wave sample) ==");
  for (const auto& wl : {std::pair<const char*, const WaveLatency*>{
                             "M_R", &r.wave_r},
                         {"M_T", &r.wave_t}}) {
    line(out, "%4s: samples %llu | p50 %.0f | p99 %.0f | max %.0f", wl.first,
         (unsigned long long)wl.second->samples, wl.second->p50,
         wl.second->p99, wl.second->max);
  }

  if (!r.deadlocks.empty()) {
    line(out, "");
    line(out, "== deadlock post-mortem ==");
    for (const DeadlockPostMortem& d : r.deadlocks) {
      line(out,
           "cycle %llu (ts %llu): DL'_v = R'_v - T' named %llu vertices",
           (unsigned long long)d.cycle, (unsigned long long)d.report_ts,
           (unsigned long long)d.count);
      line(out,
           "  evidence: M_T traced the task-reachable set T' (%llu marks, "
           "%llu returns);",
           (unsigned long long)d.mt_marks, (unsigned long long)d.mt_returns);
      line(out,
           "            M_R traced the requested set R' (%llu marks, %llu "
           "returns);",
           (unsigned long long)d.mr_marks, (unsigned long long)d.mr_returns);
      line(out,
           "  each vertex below is vitally requested yet unreachable from "
           "any task (Theorem 2):");
      std::string vs = "  deadlocked:";
      for (const auto& [pe, idx] : d.vertices) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %u:%llu", pe,
                      (unsigned long long)idx);
        vs += buf;
      }
      line(out, "%s", vs.c_str());
    }
  }

  std::uint64_t warn_total = 0;
  for (std::uint64_t w : r.health_warnings) warn_total += w;
  if (warn_total || r.audits) {
    line(out, "");
    line(out, "== health ==");
    for (std::size_t i = 0; i < kNumHealthKinds; ++i)
      if (r.health_warnings[i])
        line(out, "%-18s %llu", health_kind_name(static_cast<HealthKind>(i)),
             (unsigned long long)r.health_warnings[i]);
    if (!warn_total) line(out, "no health warnings");
  }
  return out;
}

}  // namespace dgr::obs
