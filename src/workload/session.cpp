#include "workload/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "runtime/proc_engine.h"
#include "runtime/sim_engine.h"
#include "runtime/thread_engine.h"
#include "util/rng.h"

namespace dgr::workload {

namespace {

// Poisson sample. Knuth's product method for small means; a clamped normal
// approximation above it so soak-scale rates stay O(1) per tick.
std::uint32_t poisson(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double u1 = std::max(rng.uniform01(), 1e-12);
    const double u2 = rng.uniform01();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double v = mean + std::sqrt(mean) * z;
    return v < 0.0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double p = 1.0;
  std::uint32_t k = 0;
  do {
    ++k;
    p *= rng.uniform01();
  } while (p > limit);
  return k - 1;
}

// Zipf(s) CDF over [0, n): weight(i) = 1/(i+1)^s. s == 0 is uniform.
std::vector<double> zipf_cdf(std::uint32_t n, double s) {
  std::vector<double> cdf(n ? n : 1, 1.0);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < cdf.size(); ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = sum;
  }
  for (double& c : cdf) c /= sum;
  return cdf;
}

std::uint32_t zipf_pick(Rng& rng, const std::vector<double>& cdf) {
  const double u = rng.uniform01();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::uint32_t>(
      std::min<std::ptrdiff_t>(it - cdf.begin(),
                               static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

std::uint32_t uniform_in(Rng& rng, std::uint32_t lo, std::uint32_t hi) {
  if (hi < lo) hi = lo;
  return static_cast<std::uint32_t>(rng.range(lo, hi));
}

}  // namespace

std::vector<SessionEvent> generate_schedule(const WorkloadOptions& opt) {
  // Independent substreams so the arrival process, session shapes and churn
  // draws don't perturb each other across option changes.
  Rng arrive_rng = Rng::substream(opt.seed, 0xA221);
  Rng shape_rng = Rng::substream(opt.seed, 0x54A9);
  Rng churn_rng = Rng::substream(opt.seed, 0xC442);
  const std::vector<double> cdf = zipf_cdf(std::max(1u, opt.hot_keys),
                                           opt.zipf_s);

  std::vector<SessionEvent> out;
  std::vector<std::uint64_t> live;  // session ids, arrival order
  // Completions indexed by due tick (horizon + max lifetime bounds it).
  std::vector<std::vector<std::uint64_t>> due(
      static_cast<std::size_t>(opt.ticks) + opt.lifetime_max + 2);
  std::uint64_t next_session = 0;

  for (std::uint32_t t = 0; t < due.size(); ++t) {
    if (t >= opt.ticks && live.empty()) break;

    // 1. Completions due this tick (they free admission slots first).
    for (std::uint64_t s : due[t]) {
      SessionEvent ev;
      ev.tick = t;
      ev.kind = EventKind::kComplete;
      ev.session = s;
      out.push_back(ev);
      live.erase(std::find(live.begin(), live.end(), s));
    }

    // 2. Arrivals (only inside the horizon). Admission over max_live is
    //    enforced here, at generation time, so the load cap is part of the
    //    deterministic schedule; overflow arrivals are simply not emitted.
    if (t < opt.ticks) {
      double rate = opt.rate;
      if (opt.arrivals == Arrivals::kBursty && opt.burst_period &&
          t % opt.burst_period < opt.burst_len)
        rate *= opt.burst_factor;
      const std::uint32_t n = poisson(arrive_rng, rate);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (live.size() >= opt.max_live) break;
        SessionEvent ev;
        ev.tick = t;
        ev.kind = EventKind::kArrive;
        ev.session = next_session++;
        ev.hot = zipf_pick(shape_rng, cdf);
        ev.depth = uniform_in(shape_rng, opt.depth_min, opt.depth_max);
        ev.fanout = uniform_in(shape_rng, opt.fanout_min, opt.fanout_max);
        ev.lifetime =
            std::max(1u, uniform_in(shape_rng, opt.lifetime_min,
                                    opt.lifetime_max));
        out.push_back(ev);
        live.push_back(ev.session);
        due[std::min<std::size_t>(t + ev.lifetime, due.size() - 1)].push_back(
            ev.session);
      }
    }

    // 3. Churn over the sessions live after this tick's arrivals.
    if (!live.empty()) {
      const std::uint32_t ops =
          poisson(churn_rng, opt.churn_per_tick *
                                 static_cast<double>(live.size()));
      for (std::uint32_t i = 0; i < ops; ++i) {
        SessionEvent ev;
        ev.tick = t;
        ev.kind = EventKind::kChurn;
        ev.session = live[churn_rng.below(live.size())];
        ev.op = static_cast<ChurnOp>(
            churn_rng.below(static_cast<std::uint64_t>(ChurnOp::kCount_)));
        ev.hot = zipf_pick(churn_rng, cdf);
        out.push_back(ev);
      }
    }
  }
  return out;
}

std::uint32_t required_capacity(const WorkloadOptions& opt) {
  const std::uint64_t per_session =
      1 + static_cast<std::uint64_t>(opt.depth_max) * opt.fanout_max;
  const std::uint64_t live = per_session * opt.max_live;
  // Live sessions plus `capacity_slack` further multiples for retired
  // regions awaiting their sweep, divided across the PEs (session vertices
  // round-robin, so the load is even).
  const std::uint64_t churn =
      live * (1 + std::max(1u, opt.capacity_slack)) / std::max(1u, opt.pes);
  // Anchor + hot-key share + aux roots (taskroot/uroot/troot) + headroom.
  const std::uint64_t fixed = 1 + (opt.hot_keys + opt.pes - 1) / opt.pes + 4;
  return static_cast<std::uint32_t>(fixed + churn + 16);
}

// ---- Engine adapters ----

namespace {

std::uint64_t us_between(std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
}

class SimDriverEngine final : public DriverEngine {
 public:
  explicit SimDriverEngine(SimEngine& eng) : eng_(eng) {}
  const char* name() const override { return "sim"; }
  Concurrency concurrency() const override { return Concurrency::kOverlapped; }
  Graph& graph() override { return eng_.graph(); }
  Controller& controller() override { return eng_.controller(); }
  obs::MetricsRegistry& registry() override {
    return eng_.metrics_registry();
  }
  obs::TraceBuffer* trace() override { return eng_.trace(); }

  std::uint64_t mutate(std::span<const VertexId>,
                       const MutateFn& fn) override {
    // Single-threaded discrete-event world: the driver IS the mutator task,
    // atomic by construction, and never blocks.
    fn(eng_.graph(), eng_.mutator());
    return 0;
  }
  void inject(Task t) override { eng_.spawn(std::move(t)); }
  void pump(std::uint64_t n) override { eng_.run(n); }
  void start_cycle(const CycleOptions& opt) override {
    eng_.controller().start_cycle(opt);
  }
  void wait_cycle_done() override {
    if (!eng_.controller().idle()) eng_.run_until_cycle_done();
  }
  void wait_quiescent() override { eng_.run(); }

 private:
  SimEngine& eng_;
};

class ThreadDriverEngine final : public DriverEngine {
 public:
  explicit ThreadDriverEngine(ThreadEngine& eng) : eng_(eng) {}
  const char* name() const override { return "thread"; }
  Concurrency concurrency() const override { return Concurrency::kOverlapped; }
  Graph& graph() override { return eng_.graph(); }
  Controller& controller() override { return eng_.controller(); }
  obs::MetricsRegistry& registry() override {
    return eng_.metrics_registry();
  }
  obs::TraceBuffer* trace() override { return eng_.trace(); }

  std::uint64_t mutate(std::span<const VertexId> vs,
                       const MutateFn& fn) override {
    // The stall sample: time from submission to fn entry — the wait for the
    // mutation gate (held exclusively through restructuring) plus the
    // touch set's stripe locks, i.e. exactly the time this op was blocked
    // on collector cooperation. The section also covers allocation: the
    // gate excludes the sweep, so a fresh unreachable vertex cannot be
    // reclaimed before expand_node shades it.
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t stall = 0;
    eng_.atomically(vs, [&] {
      stall = us_between(t0, std::chrono::steady_clock::now());
      fn(eng_.graph(), eng_.mutator());
    });
    return stall;
  }
  void inject(Task t) override { eng_.inject(std::move(t)); }
  void start_cycle(const CycleOptions& opt) override {
    eng_.controller().start_cycle(opt);
  }
  void wait_cycle_done() override { eng_.wait_cycle_done(); }
  void wait_quiescent() override { eng_.wait_quiescent(); }

 private:
  ThreadEngine& eng_;
};

class ProcDriverEngine final : public DriverEngine {
 public:
  explicit ProcDriverEngine(ProcEngine& eng) : eng_(eng) {}
  const char* name() const override { return "proc"; }
  Concurrency concurrency() const override { return Concurrency::kBarrier; }
  Graph& graph() override { return eng_.graph(); }
  Controller& controller() override { return eng_.controller(); }
  obs::MetricsRegistry& registry() override {
    // The controller-side merged registry is const-only; driver-side
    // counters live there too, so cast away the read-only facade.
    return const_cast<obs::MetricsRegistry&>(eng_.metrics());
  }
  obs::TraceBuffer* trace() override { return eng_.trace(); }

  std::uint64_t mutate(std::span<const VertexId> vs,
                       const MutateFn& fn) override {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t stall = 0;
    eng_.atomically(vs, [&] {
      stall = us_between(t0, std::chrono::steady_clock::now());
      fn(eng_.graph(), eng_.mutator());
    });
    return stall;
  }
  void inject(Task t) override { eng_.inject(std::move(t)); }
  void start_cycle(const CycleOptions& opt) override {
    // The engine wrapper, not controller().start_cycle(): it excludes the
    // membership-recovery path from racing task-root construction.
    eng_.start_cycle(opt);
  }
  void wait_cycle_done() override { eng_.wait_cycle_done(); }
  void wait_quiescent() override { eng_.wait_quiescent(); }

 private:
  ProcEngine& eng_;
};

}  // namespace

std::unique_ptr<DriverEngine> make_driver(SimEngine& eng) {
  return std::make_unique<SimDriverEngine>(eng);
}
std::unique_ptr<DriverEngine> make_driver(ThreadEngine& eng) {
  return std::make_unique<ThreadDriverEngine>(eng);
}
std::unique_ptr<DriverEngine> make_driver(ProcEngine& eng) {
  return std::make_unique<ProcDriverEngine>(eng);
}

// ---- SessionDriver ----

SessionDriver::SessionDriver(DriverEngine& eng, const WorkloadOptions& opt)
    : eng_(eng), opt_(opt) {}

void SessionDriver::setup() {
  const std::uint32_t pes = eng_.graph().num_pes();
  anchors_.clear();
  hot_.clear();
  // The fixture rides the fan-out mutate so every replica builds it in its
  // own store; identical presized free lists make the ids agree (verified —
  // a mismatch is the same replica-divergence signal open_session uses).
  eng_.mutate({}, [&](Graph& g, Mutator&) {
    std::vector<VertexId> anchors, hot;
    anchors.reserve(pes);
    for (PeId pe = 0; pe < pes; ++pe) {
      const VertexId a = g.alloc(pe, OpCode::kData);
      DGR_ASSERT(a.valid());
      anchors.push_back(a);
    }
    hot.reserve(opt_.hot_keys);
    for (std::uint32_t k = 0; k < opt_.hot_keys; ++k) {
      const PeId pe = k % pes;
      const VertexId v = g.alloc(pe, OpCode::kData);
      DGR_ASSERT(v.valid());
      // The owning anchor retains every hot key permanently — that standing
      // reference is what makes acquire_reference(root, hot, k) legal for any
      // session (§3.2: the sender's retained edges keep c reachable).
      connect(g, anchors[pe], v);
      hot.push_back(v);
    }
    if (anchors_.empty()) {
      anchors_ = std::move(anchors);
      hot_ = std::move(hot);
    } else if (anchors_ != anchors || hot_ != hot) {
      ++totals_.divergence;
    }
  });
  // Aux roots (taskroots, uroot, troot) up front: allocating them lazily
  // mid-cycle would grow slot vectors under running PE threads.
  eng_.for_each_controller([](Controller& c) { c.prewarm_aux_roots(); });
  push_roots();
  setup_done_ = true;
}

void SessionDriver::push_roots() {
  std::vector<VertexId> roots = anchors_;
  roots.insert(roots.end(), adopted_.begin(), adopted_.end());
  eng_.for_each_controller([&](Controller& c) { c.set_roots(roots); });
}

void SessionDriver::adopt_root(VertexId r) {
  adopted_.push_back(r);
  push_roots();
}

void SessionDriver::close_root(VertexId r) {
  adopted_.erase(std::find(adopted_.begin(), adopted_.end(), r));
  push_roots();
}

void SessionDriver::timed_mutate(PeId pe, std::span<const VertexId> vs,
                                 const DriverEngine::MutateFn& fn) {
  // Attribute the stall to the collector phase at submission: idle (no
  // cycle), mark (a plane is tracing) or quiesce (restructuring due/running
  // — the phase that takes the mutation gate exclusively).
  Controller& ctl = eng_.controller();
  const obs::Counter bucket =
      ctl.restructure_due() ? obs::Counter::kMutatorStallQuiesceUs
      : ctl.idle()          ? obs::Counter::kMutatorStallIdleUs
                            : obs::Counter::kMutatorStallMarkUs;
  const std::uint64_t us = eng_.mutate(vs, fn);
  obs::MetricsRegistry& reg = eng_.registry();
  reg.add(pe, obs::Counter::kMutatorOps);
  reg.add(pe, bucket, us);
  reg.observe(pe, obs::Hist::kMutatorStallUs, static_cast<double>(us));
  ++totals_.mutator_ops;
}

void SessionDriver::open_session(const SessionEvent& ev) {
  Graph& g = eng_.graph();
  const std::uint32_t pes = g.num_pes();
  const PeId pe = static_cast<PeId>(ev.session % pes);
  const VertexId anchor = anchors_[pe];
  const VertexId hotv = hot_[ev.hot % hot_.size()];

  // In fan-out mode fn runs once per replica; each replica's alloc stream
  // must agree (identical free lists), which roots_seen verifies.
  std::vector<VertexId> roots_seen;
  const VertexId locks[2] = {anchor, hotv};
  timed_mutate(pe, locks, [&](Graph& rg, Mutator& m) {
    std::vector<VertexId> fresh;
    fresh.reserve(1 + static_cast<std::size_t>(ev.depth) * ev.fanout);
    const VertexId root = rg.alloc(pe, OpCode::kData);
    if (!root.valid()) {
      roots_seen.push_back(VertexId::invalid());
      return;
    }
    fresh.push_back(root);
    // depth levels of fanout vertices, spread over the PEs so session
    // subgraphs cross partition boundaries (the cross-PE marking traffic a
    // real request graph generates).
    std::vector<VertexId> prev{root};
    std::vector<VertexId> level;
    bool full = false;
    for (std::uint32_t l = 0; l < ev.depth && !full; ++l) {
      level.clear();
      const PeId lpe = static_cast<PeId>((pe + 1 + l) % pes);
      for (std::uint32_t i = 0; i < ev.fanout; ++i) {
        const VertexId v = rg.alloc(lpe, OpCode::kData);
        if (!v.valid()) {
          full = true;
          break;
        }
        fresh.push_back(v);
        // Fresh-to-fresh wiring may go direct: nothing is reachable yet.
        connect(rg, prev[i % prev.size()], v);
        level.push_back(v);
      }
      prev = level;
    }
    if (full) {
      // Partial subgraph: the orphans are unmarked and unreachable, so the
      // next sweep returns them to F. Report the rejection and stop.
      roots_seen.push_back(VertexId::invalid());
      return;
    }
    // Fig 4-2: shade the fresh subgraph per the anchor's color, then attach
    // its entry through the cooperating add.
    m.expand_node(anchor, fresh);
    const VertexId chain[1] = {anchor};
    m.add_reference_via(anchor, chain, root, ReqKind::kVital);
    // Leaf touches the shared hot key last, via the acquired-reference path:
    // hotv hangs under a *different* PE's anchor, so this session's chain
    // holds no transient helper for it — when the leaf is already marked the
    // cooperation must queue a rescue rather than splice (cooperation.cpp).
    m.acquire_reference(prev[0], hotv, ReqKind::kNone);
    roots_seen.push_back(root);
  });

  for (std::size_t i = 1; i < roots_seen.size(); ++i)
    if (roots_seen[i] != roots_seen[0]) ++totals_.divergence;

  obs::MetricsRegistry& reg = eng_.registry();
  if (roots_seen.empty() || !roots_seen[0].valid()) {
    ++totals_.rejected;
    reg.add(pe, obs::Counter::kSessionsRejected);
    return;
  }
  sessions_.emplace(ev.session, SessionRec{roots_seen[0], ev.tick});
  ++totals_.opened;
  reg.add(pe, obs::Counter::kSessionsOpened);
  DGR_TRACE_EVENT(eng_.trace(), obs::EventType::kSessionOpen, Plane::kR,
                  static_cast<std::uint16_t>(pe), 0, ev.session,
                  1 + static_cast<std::uint64_t>(ev.depth) * ev.fanout);
}

void SessionDriver::churn_session(const SessionEvent& ev) {
  const auto it = sessions_.find(ev.session);
  if (it == sessions_.end()) return;  // rejected or already retired
  Graph& g = eng_.graph();
  const VertexId root = it->second.root;
  const PeId pe = root.pe;
  const VertexId hotv = hot_[ev.hot % hot_.size()];

  bool applied = false;
  switch (ev.op) {
    case ChurnOp::kAcquireHot: {
      // The hot key arrives as a value (no access chain): the acquired-
      // reference path, legal because the anchor retains it.
      const VertexId locks[2] = {root, hotv};
      timed_mutate(pe, locks, [&](Graph&, Mutator& m) {
        m.acquire_reference(root, hotv, ReqKind::kEager);
      });
      applied = true;
      break;
    }
    case ChurnOp::kDropHot: {
      // Probe on the primary replica; identical connectivity on every
      // replica makes the probe outcome shared.
      if (g.at(root).arg_index(hotv) < 0) break;
      const VertexId locks[2] = {root, hotv};
      timed_mutate(pe, locks, [&](Graph&, Mutator& m) {
        m.delete_reference(root, hotv);
      });
      applied = true;
      break;
    }
    case ChurnOp::kRewire: {
      const auto& args = g.at(root).args;
      if (args.empty()) break;
      // Deterministic index pick: a hash of schedule facts over a replica-
      // agreed size, so every replica deletes the same edge.
      const std::size_t idx =
          (ev.session * 1315423911ull + ev.tick * 2654435761ull) %
          args.size();
      const VertexId target = args[idx].to;
      const VertexId locks[2] = {root, target};
      timed_mutate(pe, locks, [&](Graph&, Mutator& m) {
        m.delete_reference_at(root, idx);
      });
      applied = true;
      break;
    }
    case ChurnOp::kInjectTask: {
      // A pending request task root → hot key: task-reachability workload
      // for M_T; it turns irrelevant (and is expunged) when the session
      // retires before a reply.
      eng_.inject(Task::request(root, hotv,
                                ev.hot % 2 ? ReqKind::kVital
                                           : ReqKind::kEager));
      applied = true;
      break;
    }
    case ChurnOp::kCount_:
      break;
  }
  if (!applied) return;
  ++totals_.churn;
  eng_.registry().add(pe, obs::Counter::kSessionChurnOps);
  DGR_TRACE_EVENT(eng_.trace(), obs::EventType::kSessionChurn, Plane::kR,
                  static_cast<std::uint16_t>(pe), 0, ev.session,
                  (static_cast<std::uint64_t>(ev.op) << 32) | ev.hot);
}

void SessionDriver::close_session(const SessionEvent& ev) {
  const auto it = sessions_.find(ev.session);
  if (it == sessions_.end()) return;
  const VertexId root = it->second.root;
  const PeId pe = root.pe;
  const VertexId anchor = anchors_[pe];
  const std::uint32_t lived = ev.tick - it->second.open_tick;

  const VertexId locks[2] = {anchor, root};
  timed_mutate(pe, locks, [&](Graph&, Mutator& m) {
    // Dropping the anchor edge retires the whole region: everything below
    // root not otherwise anchored joins GAR at the next cycle.
    m.delete_reference(anchor, root);
  });
  sessions_.erase(it);
  ++totals_.closed;
  eng_.registry().add(pe, obs::Counter::kSessionsClosed);
  DGR_TRACE_EVENT(eng_.trace(), obs::EventType::kSessionClose, Plane::kR,
                  static_cast<std::uint16_t>(pe), 0, ev.session, lived);
}

void SessionDriver::apply_tick(const std::vector<SessionEvent>& schedule,
                               std::uint32_t tick) {
  const auto first = std::lower_bound(
      schedule.begin(), schedule.end(), tick,
      [](const SessionEvent& e, std::uint32_t t) { return e.tick < t; });
  for (auto it = first; it != schedule.end() && it->tick == tick; ++it) {
    switch (it->kind) {
      case EventKind::kArrive: open_session(*it); break;
      case EventKind::kChurn: churn_session(*it); break;
      case EventKind::kComplete: close_session(*it); break;
    }
  }
}

void SessionDriver::run(const std::vector<SessionEvent>& schedule,
                        const CycleOptions& copt,
                        const std::function<void(std::uint64_t)>& on_cycle) {
  DGR_ASSERT(setup_done_);
  Controller& ctl = eng_.controller();
  cycles_at_start_ = ctl.cycles_completed();
  std::uint64_t last_seen = cycles_at_start_;
  const auto tick_cycles = [&] {
    const std::uint64_t cc = ctl.cycles_completed();
    if (cc != last_seen && on_cycle) on_cycle(cc);
    last_seen = cc;
  };
  const std::uint32_t last_tick =
      schedule.empty() ? 0 : schedule.back().tick;

  if (eng_.concurrency() == Concurrency::kOverlapped) {
    // Keep a cycle in flight continuously: mutations overlap the marking
    // wave, which is where cooperation (and mutator stall) happens.
    for (std::uint32_t t = 0; t <= last_tick; ++t) {
      if (ctl.idle()) eng_.start_cycle(copt);
      apply_tick(schedule, t);
      eng_.pump(opt_.sim_steps_per_tick);
      tick_cycles();
    }
    eng_.wait_cycle_done();
    tick_cycles();
  } else {
    // Barrier discipline: mutate between cycles only.
    const std::uint32_t every = std::max(1u, opt_.cycle_every);
    for (std::uint32_t t = 0; t <= last_tick; ++t) {
      apply_tick(schedule, t);
      if ((t + 1) % every == 0) {
        eng_.start_cycle(copt);
        eng_.wait_cycle_done();
        tick_cycles();
      }
    }
  }
  // Two drain cycles: the first sweeps regions retired since the last
  // wave's snapshot, the second catches references the first wave's
  // cooperation kept alive conservatively.
  for (int i = 0; i < 2; ++i) {
    eng_.start_cycle(copt);
    eng_.wait_cycle_done();
    tick_cycles();
  }
  eng_.wait_quiescent();
  totals_.cycles += ctl.cycles_completed() - cycles_at_start_;
}

}  // namespace dgr::workload
