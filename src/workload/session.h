// Million-session workload driver (ROADMAP item 4, docs/WORKLOAD.md).
//
// Models production traffic as an open-loop stream of user *sessions*: each
// session is a small request graph that arrives (Poisson or bursty), hangs
// off a per-PE anchor vertex, churns references against a Zipf-skewed
// hot-key set while collection runs, and finally drops its root — at which
// point the whole region is garbage for the next restructuring sweep.
//
// Three layers:
//   1. generate_schedule(): a PURE function of WorkloadOptions — the seeded
//      event schedule (arrive / churn / complete per tick) never looks at an
//      engine or a clock, so the same seed yields the identical session
//      stream on every engine (the determinism contract of
//      tests/test_workload.cpp).
//   2. DriverEngine: one mutation/cycle interface over SimEngine,
//      ThreadEngine and ProcEngine. Overlapped engines (sim, threaded)
//      mutate WHILE a marking cycle runs — on the threaded engine the
//      mutator genuinely contends with live PE threads, and the time a
//      mutation spends blocked at the atomic section (vertex stripes +
//      the quiesce gate) is the mutator stall the SLO tracks. Barrier
//      engines (ProcEngine) mutate strictly between cycles, per the
//      documented multi-process mutation discipline.
//   3. SessionDriver: applies the schedule through a DriverEngine using the
//      cooperating primitives (Fig 4-2), records sessions/stall metrics in
//      obs::MetricsRegistry (Hist::kMutatorStallUs + per-phase attribution
//      counters) and emits kSession* trace events whose payloads are
//      schedule facts only.
//
// MultiDriverEngine fans every mutation out to several replica engines with
// byte-identical op streams — the differential soak leg of the chaos
// harness drives sim + threaded + process replicas through it and holds
// them all to the sequential Oracle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/controller.h"
#include "core/cooperation.h"
#include "core/task.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dgr {
class SimEngine;
class ThreadEngine;
class ProcEngine;
}  // namespace dgr

namespace dgr::workload {

enum class Arrivals : std::uint8_t { kPoisson = 0, kBursty };

struct WorkloadOptions {
  std::uint64_t seed = 1;
  std::uint32_t pes = 4;
  std::uint32_t ticks = 64;        // schedule horizon (virtual time units)
  double rate = 2.0;               // mean session arrivals per tick
  Arrivals arrivals = Arrivals::kPoisson;
  std::uint32_t burst_period = 16;  // bursty: ticks between burst onsets
  std::uint32_t burst_len = 4;      // bursty: ticks a burst lasts
  double burst_factor = 6.0;        // bursty: rate multiplier inside a burst

  std::uint32_t hot_keys = 16;  // shared-root set size (Zipf universe)
  double zipf_s = 1.1;          // hot-key skew exponent (0 = uniform)

  std::uint32_t depth_min = 1, depth_max = 3;    // request-graph levels
  std::uint32_t fanout_min = 1, fanout_max = 4;  // vertices per level
  std::uint32_t lifetime_min = 2, lifetime_max = 12;  // ticks until close
  double churn_per_tick = 0.8;  // mean churn ops per live session per tick
  std::uint32_t max_live = 256;  // admission cap on concurrently live sessions

  // Driver pacing knobs (not part of the schedule).
  std::uint32_t cycle_every = 4;  // barrier engines: ticks per marking cycle
  std::uint32_t sim_steps_per_tick = 4000;  // sim: engine steps per tick
  std::uint32_t capacity_slack = 3;  // extra live-set multiples for garbage
};

enum class EventKind : std::uint8_t { kArrive = 0, kChurn, kComplete };
enum class ChurnOp : std::uint8_t {
  kAcquireHot = 0,  // session root acquires a reference to a hot key
  kDropHot,         // ...and drops it again
  kRewire,          // delete one of the root's own edges (orphan a subtree)
  kInjectTask,      // inject a request task root -> hot key
  kCount_,
};

struct SessionEvent {
  std::uint32_t tick = 0;
  EventKind kind = EventKind::kArrive;
  std::uint64_t session = 0;  // arrival index, dense from 0
  ChurnOp op = ChurnOp::kAcquireHot;  // kChurn only
  std::uint32_t hot = 0;      // hot-key index (arrive: initial edge; churn)
  std::uint32_t depth = 1;    // kArrive only
  std::uint32_t fanout = 1;   // kArrive only
  std::uint32_t lifetime = 1;  // kArrive only (ticks until kComplete)

  bool operator==(const SessionEvent&) const = default;
};

// The seeded schedule: pure function of the options, engine-free. Events are
// ordered by tick, completes before arrivals before churn within a tick.
// Completion events for sessions outliving `ticks` run past the horizon, so
// the last tick in the schedule may exceed opt.ticks.
std::vector<SessionEvent> generate_schedule(const WorkloadOptions& opt);

// Per-PE store capacity a presized Graph needs to run `opt` without
// admission rejections (anchors + hot set + aux taskroots + worst-case live
// sessions + capacity_slack multiples for garbage awaiting a sweep).
std::uint32_t required_capacity(const WorkloadOptions& opt);

// ---- One engine behind the driver ----

enum class Concurrency : std::uint8_t {
  kOverlapped = 0,  // mutations race the marking wave (sim, threaded)
  kBarrier,         // mutations strictly between cycles (multi-process)
};

class DriverEngine {
 public:
  virtual ~DriverEngine() = default;
  virtual const char* name() const = 0;
  virtual Concurrency concurrency() const = 0;
  virtual Graph& graph() = 0;
  virtual Controller& controller() = 0;
  virtual obs::MetricsRegistry& registry() = 0;
  virtual obs::TraceBuffer* trace() = 0;

  // Run `fn(graph, mutator)` atomically with the listed vertices' stripe
  // locks held. Returns the microseconds the call spent blocked before fn
  // ran (0 on non-blocking engines) — the mutator stall sample. Fresh
  // vertices may be allocated inside fn: the section excludes the
  // restructuring quiesce, so an unreachable fresh vertex cannot be swept
  // between its alloc and the expand_node that shades it.
  using MutateFn = std::function<void(Graph&, Mutator&)>;
  virtual std::uint64_t mutate(std::span<const VertexId> vs,
                               const MutateFn& fn) = 0;
  virtual void inject(Task t) = 0;

  // Run `fn` on every replica's controller (fan-out engines); single-engine
  // adapters apply it to their one controller. Root-set changes and aux-root
  // prewarming must reach every replica, not just the primary.
  virtual void for_each_controller(const std::function<void(Controller&)>& fn) {
    fn(controller());
  }

  // Progress the engine between mutations (sim: execute up to n tasks;
  // autonomous engines: no-op).
  virtual void pump(std::uint64_t n) { (void)n; }
  virtual void start_cycle(const CycleOptions& opt) = 0;
  virtual void wait_cycle_done() = 0;
  // Drain all in-flight marking/reduction work (structural reads are safe
  // afterwards).
  virtual void wait_quiescent() = 0;
};

std::unique_ptr<DriverEngine> make_driver(SimEngine& eng);
std::unique_ptr<DriverEngine> make_driver(ThreadEngine& eng);
std::unique_ptr<DriverEngine> make_driver(ProcEngine& eng);

// Fans every mutation/injection/cycle out to several replicas (first entry
// is the primary: probes, metrics and traces use it). Barrier concurrency.
// The differential chaos-soak leg asserts divergence() == 0 after holding
// each replica to the Oracle.
class MultiDriverEngine final : public DriverEngine {
 public:
  explicit MultiDriverEngine(std::vector<DriverEngine*> replicas)
      : replicas_(std::move(replicas)) {}

  const char* name() const override { return "multi"; }
  Concurrency concurrency() const override { return Concurrency::kBarrier; }
  Graph& graph() override { return replicas_[0]->graph(); }
  Controller& controller() override { return replicas_[0]->controller(); }
  obs::MetricsRegistry& registry() override {
    return replicas_[0]->registry();
  }
  obs::TraceBuffer* trace() override { return replicas_[0]->trace(); }

  std::uint64_t mutate(std::span<const VertexId> vs,
                       const MutateFn& fn) override {
    std::uint64_t stall = 0;
    for (DriverEngine* r : replicas_) stall += r->mutate(vs, fn);
    return stall;
  }
  void inject(Task t) override {
    for (DriverEngine* r : replicas_) r->inject(t);
  }
  void for_each_controller(
      const std::function<void(Controller&)>& fn) override {
    for (DriverEngine* r : replicas_) r->for_each_controller(fn);
  }
  void start_cycle(const CycleOptions& opt) override {
    for (DriverEngine* r : replicas_) r->start_cycle(opt);
  }
  void wait_cycle_done() override {
    for (DriverEngine* r : replicas_) r->wait_cycle_done();
  }
  void wait_quiescent() override {
    for (DriverEngine* r : replicas_) r->wait_quiescent();
  }

 private:
  std::vector<DriverEngine*> replicas_;
};

// ---- The session driver ----

struct SoakTotals {
  std::uint64_t opened = 0;      // sessions admitted
  std::uint64_t closed = 0;      // sessions retired
  std::uint64_t churn = 0;       // churn ops applied
  std::uint64_t rejected = 0;    // arrivals refused (store full)
  std::uint64_t mutator_ops = 0;  // timed mutations (stall samples)
  std::uint64_t cycles = 0;      // marking cycles completed during run()
  std::uint64_t divergence = 0;  // replica disagreements (fan-out mode)
};

class SessionDriver {
 public:
  SessionDriver(DriverEngine& eng, const WorkloadOptions& opt);

  // Allocate the per-PE anchors and the hot-key set, wire hot keys under
  // their PE's anchor, prewarm aux roots and install the anchor root set.
  // Call once, before any marking cycle.
  void setup();

  // Apply every schedule event whose tick == `tick` (no cycles).
  void apply_tick(const std::vector<SessionEvent>& schedule,
                  std::uint32_t tick);

  // Run the whole schedule: overlapped engines keep a cycle in flight
  // continuously; barrier engines cycle every opt.cycle_every ticks. Ends
  // with two drain cycles so all retired regions are swept. `on_cycle` (if
  // set) fires with the completed-cycle count whenever it advances — the
  // soak harness hangs health rollups and chaos injection off it.
  void run(const std::vector<SessionEvent>& schedule,
           const CycleOptions& copt = {},
           const std::function<void(std::uint64_t)>& on_cycle = {});

  // ---- Multi-user root management (usable without setup(): the adopted
  // roots alone then form the controller root set). ----
  void adopt_root(VertexId r);  // r joins the marking root set
  void close_root(VertexId r);  // r leaves it; its region becomes garbage

  std::size_t live_sessions() const { return sessions_.size(); }
  const SoakTotals& totals() const { return totals_; }
  const std::vector<VertexId>& anchors() const { return anchors_; }
  const std::vector<VertexId>& hot_keys() const { return hot_; }
  DriverEngine& engine() { return eng_; }

 private:
  struct SessionRec {
    VertexId root;
    std::uint32_t open_tick = 0;
  };

  void open_session(const SessionEvent& ev);
  void churn_session(const SessionEvent& ev);
  void close_session(const SessionEvent& ev);
  // Submit one timed mutation: samples the controller phase, runs
  // eng_.mutate, records the stall histogram + phase attribution.
  void timed_mutate(PeId pe, std::span<const VertexId> vs,
                    const DriverEngine::MutateFn& fn);
  void push_roots();

  DriverEngine& eng_;
  WorkloadOptions opt_;
  std::vector<VertexId> anchors_;  // one per PE; the standing root set
  std::vector<VertexId> hot_;      // hot-key vertices, round-robin PEs
  std::vector<VertexId> adopted_;  // externally adopted roots (multi-user)
  std::unordered_map<std::uint64_t, SessionRec> sessions_;
  SoakTotals totals_;
  std::uint64_t cycles_at_start_ = 0;
  bool setup_done_ = false;
};

}  // namespace dgr::workload
