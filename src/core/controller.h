// The marking-cycle controller (Hudak §4, §5, §6).
//
// Drives the endless cycle the paper prescribes:
//
//   [optionally M_T]  →  M_R  →  restructuring phase
//
// M_T must run BEFORE M_R for deadlock detection to be sound (Theorem 2's
// proof depends on it), and because M_T is only needed for deadlock it can be
// run only occasionally (§6: "our approach is to execute M_T only
// occasionally").
//
// The restructuring phase is left open by the paper ("tailored to a
// particular system", §4); ours performs, per DESIGN.md §5:
//   (a) sweep: unmarked_R live vertices → the owner's free list (Property 1),
//   (b) expunge: pooled/in-flight reduction tasks with d ∈ GAR' (Property 6),
//   (c) reprioritize: pooled task priority := prior(d) (Properties 3-5),
//   (d) report deadlocked vertices R'_v − T' (Property 2').
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/marker.h"
#include "core/task.h"
#include "graph/task_ref.h"

namespace dgr {

struct CycleOptions {
  bool detect_deadlock = true;  // run M_T before M_R
};

struct CycleResult {
  std::uint64_t cycle = 0;
  bool ran_mt = false;
  // False when mutator cooperation had to taint the T plane; deadlock
  // reporting is skipped for such a cycle (it retries next time).
  bool deadlock_report_valid = false;
  std::size_t swept = 0;          // vertices returned to F
  std::size_t expunged = 0;       // irrelevant tasks deleted
  std::size_t reprioritized = 0;  // pooled tasks re-prioritized
  std::vector<VertexId> deadlocked;  // DL'_v members
  MarkStats stats_r;
  MarkStats stats_t;
};

// What the controller needs from the engine: access to the task population
// (pools plus in-transit messages) and a quiescence fence for the brief
// restructuring phase (a no-op in the simulator; a short barrier in the
// threaded engine — the paper requires only the MARK phase be concurrent).
class EngineHooks {
 public:
  virtual ~EngineHooks() = default;

  // Append <s,d> for every unexecuted reduction task: pooled and in transit.
  // This is the in-transit accounting the paper defers to [5].
  virtual void collect_task_refs(std::vector<TaskRef>& out) = 0;

  // Delete every reduction task for which kill(task) is true; return count.
  virtual std::size_t expunge_tasks(
      const std::function<bool(const Task&)>& kill) = 0;

  // Reassign pool priorities; returns number of tasks whose priority changed.
  virtual std::size_t reprioritize_tasks(
      const std::function<std::uint8_t(const Task&)>& prio) = 0;

  virtual void quiesce_begin() {}
  virtual void quiesce_end() {}
  virtual void on_cycle_complete(const CycleResult&) {}

  // A marking plane is about to begin: the graph is final for this wave
  // (task roots built, uroot refreshed) but the plane epoch has not yet been
  // bumped and no seed has been spawned. A distributed engine ships its
  // partition handoff from here.
  virtual void on_plane_begin(Plane) {}
};

class Controller {
 public:
  Controller(Graph& g, Marker& marker, EngineHooks& hooks, VertexId root);

  void set_root(VertexId root) { roots_.assign(1, root); }
  VertexId root() const { return roots_.empty() ? VertexId::invalid() : roots_[0]; }

  // Multi-user operation (§3.1 footnote): several independent computations,
  // each with its own root, share the PEs and the collector. M_R marks from
  // an auxiliary "user root" whose args are all the roots (vitally — every
  // user's answer is essential); deadlock reports then cover each user's
  // region independently.
  void set_roots(std::vector<VertexId> roots) { roots_ = std::move(roots); }
  const std::vector<VertexId>& roots() const { return roots_; }

  // Kick off a cycle; phases advance via the marker's done callback, i.e.
  // entirely from within task executions — there is no central polling.
  void start_cycle(const CycleOptions& opt = {});

  // Abandon the in-flight cycle without restructuring: both planes are
  // force-ended (their epoch-tagged marks become semantically void) and the
  // phase returns to idle. No hooks fire and nothing is swept — the caller
  // is expected to start_cycle() again once the world is consistent. Used by
  // the distributed engine when a worker is lost mid-wave. No-op when idle.
  void abort_cycle();

  // The options the in-flight (or most recent) cycle was started with —
  // what a recovery restart should re-run.
  const CycleOptions& current_options() const { return opt_; }

  bool idle() const { return phase_.load(std::memory_order_acquire) == Phase::kIdle; }

  // Deferred restructuring for the threaded engine: with this on, the final
  // plane's completion parks the cycle in a "restructure due" state instead
  // of restructuring inline (the completing task still holds its vertex
  // lock; restructuring must run lock-free). The engine then calls
  // run_restructure() from a clean context.
  void set_deferred_restructure(bool on) { defer_restructure_ = on; }
  bool restructure_due() const {
    return phase_.load(std::memory_order_acquire) == Phase::kRestructureDue;
  }
  void run_restructure();

  // When continuous, a new cycle starts as soon as one finishes — the
  // paper's "this cycle is repeated endlessly".
  void set_continuous(bool on, CycleOptions opt = {}) {
    continuous_ = on;
    continuous_opt_ = opt;
  }

  // Observer invoked at the end of every cycle (after restructuring),
  // in addition to EngineHooks::on_cycle_complete.
  void set_cycle_observer(std::function<void(const CycleResult&)> fn) {
    observer_ = std::move(fn);
  }

  // Debug: cross-check every sweep against the sequential oracle (O(V+E)
  // per cycle); aborts on the first reachable vertex about to be freed.
  void set_paranoid_sweep_check(bool on) { paranoid_ = on; }

  // Create the auxiliary roots (per-PE taskroots, troot, uroot) up front.
  // The threaded engine needs this before start(): aux roots are otherwise
  // allocated lazily during the first cycle, and growing a store's slot
  // vector while PE threads read it would be a reallocation race.
  void prewarm_aux_roots();

  // Observability: emit cycle / phase / restructuring events into `t`
  // (nullptr disables). Engines wire this together with the marker's and
  // mutator's sinks via enable_trace().
  void set_trace(obs::TraceBuffer* t) { trace_ = t; }

  // The effective M_R root: the single user root, or the aux uroot fanning
  // out to all of them (refreshed to the live roots on each call). External
  // differential rigs hand this to the sequential Oracle so multi-root
  // workloads get the same reachability the marker sees.
  VertexId marking_root();

  const CycleResult& last() const { return last_; }
  // Atomic: sampled by the ThreadEngine watchdog while cycles run.
  std::uint64_t cycles_completed() const {
    return cycles_.load(std::memory_order_acquire);
  }
  std::uint64_t total_swept() const { return total_swept_; }
  std::uint64_t total_expunged() const { return total_expunged_; }

 private:
  enum class Phase { kIdle, kMarkT, kMarkR, kRestructureDue };

  void on_plane_done(Plane p);
  void start_mt();
  void start_mr();
  void restructure();
  VertexId build_task_roots();

  Graph& g_;
  Marker& marker_;
  EngineHooks& hooks_;
  std::vector<VertexId> roots_;
  VertexId uroot_ = VertexId::invalid();
  VertexId troot_ = VertexId::invalid();
  std::atomic<Phase> phase_{Phase::kIdle};
  bool defer_restructure_ = false;
  bool paranoid_ = false;
  CycleOptions opt_;
  bool continuous_ = false;
  CycleOptions continuous_opt_;
  std::function<void(const CycleResult&)> observer_;
  obs::TraceBuffer* trace_ = nullptr;
  CycleResult last_;
  CycleResult cur_;
  std::atomic<std::uint64_t> cycles_{0};
  std::uint64_t total_swept_ = 0;
  std::uint64_t total_expunged_ = 0;
};

}  // namespace dgr
