// The decentralized graph-marking algorithm (Hudak §4, §5).
//
// One Marker instance manages both marking planes:
//   Plane::kR — process M_R (Fig 5-1/5-2): marks from the root through
//     args(v), propagating priorities 3 (vital) / 2 (eager) / 1 (reserve)
//     with mark2's max-min rule and re-marking on priority upgrade.
//   Plane::kT — process M_T (Fig 5-3): marks from troot through
//     requested(v) ∪ (args(v) − req-args(v)).
//
// Marking builds a spanning "marking tree" via per-vertex mt_par pointers and
// mt_cnt counters; termination is detected when a return task reaches the
// rootpar sentinel (Fig 4-1). Colors are epoch-tagged so starting a new cycle
// unmarks every vertex in O(1).
//
// The basic algorithm mark1 of Fig 4-1 is the priority-free special case of
// mark2 and is exercised through plane kR with a single priority.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "core/task.h"
#include "graph/graph.h"

namespace dgr {

namespace obs {
class TraceBuffer;
}

// Counters are atomic so the multi-threaded engine can execute marking tasks
// on many PE threads concurrently (each task execution holds only its own
// vertex's lock).
struct MarkStats {
  std::atomic<std::uint64_t> marks{0};    // mark tasks executed
  std::atomic<std::uint64_t> returns{0};  // return tasks executed
  std::atomic<std::uint64_t> remarks{0};  // priority-upgrade re-marks
  std::atomic<std::uint64_t> coop_spawns{0};  // marks spawned by cooperation

  MarkStats() = default;
  MarkStats(const MarkStats& o) { copy_from(o); }
  MarkStats& operator=(const MarkStats& o) {
    copy_from(o);
    return *this;
  }
  void reset() {
    marks = 0;
    returns = 0;
    remarks = 0;
    coop_spawns = 0;
  }

 private:
  void copy_from(const MarkStats& o) {
    marks = o.marks.load(std::memory_order_relaxed);
    returns = o.returns.load(std::memory_order_relaxed);
    remarks = o.remarks.load(std::memory_order_relaxed);
    coop_spawns = o.coop_spawns.load(std::memory_order_relaxed);
  }
};

class Marker {
 public:
  Marker(Graph& g, TaskSink& sink) : g_(g), sink_(sink) {}

  // Begin a marking phase on `plane` from `root` (the computation-graph root
  // for kR; troot for kT). Bumps the plane epoch (unmarking everything) and
  // spawns the initial mark task with priority `root_prior` (3 for M_R, §5.2
  // "we assume that the value of the root is essential").
  void begin(Plane plane, VertexId root, std::uint8_t root_prior = 3);

  bool active(Plane plane) const { return st(plane).active; }
  bool done(Plane plane) const { return st(plane).done; }
  // The mark wave is still propagating (begun and not yet terminated).
  bool marking_in_progress(Plane plane) const {
    return st(plane).active && !st(plane).done;
  }
  std::uint64_t epoch(Plane plane) const { return st(plane).epoch; }

  // Engine hand-off: start this marker's epochs at `e`, above any stale
  // per-vertex tags a previous Marker left on the same graph (a fresh marker
  // restarting at epoch 1 would otherwise mistake a cycle-1 tag from the old
  // marker for current state). Only legal while the plane is inactive.
  void seed_epoch(Plane plane, std::uint64_t e) {
    DGR_CHECK_MSG(!st(plane).active, "seed_epoch during an active plane");
    st(plane).epoch = e;
  }

  // Invoked by the engine when the phase's done flag is raised.
  void set_done_callback(std::function<void(Plane)> cb) { done_cb_ = std::move(cb); }

  // ---- Distributed (multi-process) marking support. ----
  //
  // In a ProcEngine deployment the controller's Marker runs begin()/end() as
  // usual, but the mark tasks execute on worker processes, each holding its
  // own Marker over a partition replica. These entry points keep a replica's
  // plane state in step with the controller without spawning seeds, and let
  // the controller adopt a termination observed remotely (the rootpar return
  // fires on whichever worker owns the collapsing root, not here).

  // Worker side: open `plane` at the controller's absolute epoch (from a
  // kPlaneBegin frame). Unlike begin(), no seed task is spawned, and a
  // previous wave left open is simply superseded — workers never run end().
  void begin_remote(Plane plane, std::uint64_t e) {
    PlaneState& ps = st(plane);
    ps.epoch = e;
    ps.active = true;
    ps.done = false;
    ps.tainted = false;
    ps.stats.reset();
    ps.rescue_q.clear();
  }

  // Worker side: a controller rescue wave reopens the plane; its seeds then
  // arrive as ordinary mark tasks within the same epoch.
  void reopen_remote(Plane plane) { st(plane).done = false; }

  // Controller side: a worker observed the termination return to rootpar and
  // reported it (kPlaneDone); raise done here and run the usual callback.
  void finish_remote(Plane plane) {
    PlaneState& ps = st(plane);
    DGR_CHECK_MSG(ps.active, "finish_remote on an inactive plane");
    DGR_CHECK_MSG(!ps.done, "duplicate remote termination");
    ps.done = true;
    if (done_cb_) done_cb_(plane);
  }

  // Controller side: fold a worker's wave counters into this plane's stats
  // (the controller executed no mark tasks itself).
  void add_remote_stats(Plane plane, const MarkStats& s) {
    MarkStats& d = st(plane).stats;
    d.marks += s.marks.load(std::memory_order_relaxed);
    d.returns += s.returns.load(std::memory_order_relaxed);
    d.remarks += s.remarks.load(std::memory_order_relaxed);
    d.coop_spawns += s.coop_spawns.load(std::memory_order_relaxed);
  }

  // Invoked by launch_rescue_wave after the rescue root is prepared and
  // before any seed is spawned: a distributed controller broadcasts the
  // reopened plane (and the rescue root's record) to workers here, so the
  // seeds that follow land on replicas that already expect them.
  using RescueSeedHook =
      std::function<void(Plane, VertexId rescue_root, std::size_t seeds)>;
  void set_rescue_seed_hook(RescueSeedHook fn) {
    rescue_seed_hook_ = std::move(fn);
  }

  // Called after the restructuring phase consumed the marks.
  void end(Plane plane) { st(plane).active = false; }

  // Controller side: abandon an in-flight wave wholesale (worker lost or
  // replica resync). Unlike end(), the wave may still be running: pending
  // rescue seeds are discarded along with the done/taint state, so the next
  // begin() starts from a clean plane. The epoch is left alone — stale marks
  // are voided by the next epoch bump, not cleaned up.
  void abort(Plane plane) {
    PlaneState& ps = st(plane);
    ps.active = false;
    ps.done = false;
    ps.tainted = false;
    ps.rescue_q.clear();
  }

  // Execute a kMark / kMarkReturn task (engine dispatch).
  void exec(const Task& t);

  // Synchronous execution of a mark task — the cooperating mutator's
  // "execute mark1(c,b)" (Fig 4-2). Runs inside the caller's atomic section.
  void exec_mark_now(Plane plane, VertexId v, VertexId par, std::uint8_t prior);

  // Spawn (asynchronous) a mark task — the cooperating mutator's
  // "spawn mark1(c,a)".
  void spawn_mark(Plane plane, VertexId v, VertexId par, std::uint8_t prior);

  // ---- Epoch-aware state accessors (shared with cooperation/controller). --

  Color color(Plane plane, VertexId v) const {
    const MarkPlane& m = g_.at(v).plane(plane);
    return m.epoch == st(plane).epoch ? m.color : Color::kUnmarked;
  }
  // Effective priority; 0 when unmarked/stale.
  std::uint8_t prior(Plane plane, VertexId v) const {
    const MarkPlane& m = g_.at(v).plane(plane);
    return m.epoch == st(plane).epoch ? m.prior : 0;
  }
  bool is_marked(Plane plane, VertexId v) const {
    return color(plane, v) == Color::kMarked;
  }
  bool is_transient(Plane plane, VertexId v) const {
    return color(plane, v) == Color::kTransient;
  }
  bool is_unmarked(Plane plane, VertexId v) const {
    return color(plane, v) == Color::kUnmarked;
  }

  // Direct shading used by expand-node: make v marked / unmarked in-plane
  // without tracing (fresh-from-free-list vertices only).
  void shade_marked(Plane plane, VertexId v);
  void shade_unmarked(Plane plane, VertexId v);

  // Open v's marking-tree count by `n` (cooperation bookkeeping:
  // "increment(mt-cnt(a))"). v must be transient.
  void open_count(Plane plane, VertexId v, std::uint32_t n = 1);

  // Liveness escape hatch: when a mutation cannot splice marking activity
  // for plane kT (no transient helper in scope), it flags the cycle; the
  // controller then skips deadlock *reporting* for this cycle (deadlock
  // detection is explicitly allowed to be occasional, §6). Never needed for
  // plane kR in the current mutator set; checked by tests.
  void taint_cycle(Plane plane) { st(plane).tainted = true; }
  bool cycle_tainted(Plane plane) const { return st(plane).tainted; }

  // ---- Rescue waves (acquired references). ----
  //
  // A vertex can acquire a reference it never held an access chain to: a
  // node-valued reply hands the receiver a cons cell or list field. If the
  // receiver is already marked and the referent unmarked, no transient
  // helper exists to splice marking below (Fig 4-2's trick does not apply).
  // Such referents are queued; when the main wave terminates, the controller
  // launches a supplementary wave rooted at an auxiliary "rescue root" over
  // the still-unmarked queued vertices, repeating until no rescues remain.
  // Each wave reuses the plane's epoch and the rootpar termination exactly
  // like the main wave, so correctness arguments carry over unchanged.
  void rescue(Plane plane, VertexId v, std::uint8_t prior = 1);
  bool is_rescue_queued(Plane plane, VertexId v) const;
  // Returns true if a supplementary wave was launched (plane reopened).
  bool launch_rescue_wave(Plane plane);
  // Atomic so the ThreadEngine watchdog can sample it concurrently.
  std::uint64_t rescue_waves(Plane plane) const {
    return st(plane).rescue_waves.load(std::memory_order_relaxed);
  }

  const MarkStats& stats(Plane plane) const { return st(plane).stats; }

  // Observability: emit wave-front / rescue-wave events into `t` (nullptr
  // disables). Wave fronts are sampled every kWaveFrontPeriod mark execs.
  void set_trace(obs::TraceBuffer* t) { trace_ = t; }
  static constexpr std::uint32_t kWaveFrontPeriod = 32;

 private:
  struct PlaneState {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> active{false};
    std::atomic<bool> done{false};
    std::atomic<bool> tainted{false};
    MarkStats stats;
    std::vector<std::pair<VertexId, std::uint8_t>> rescue_q;
    VertexId rescue_root = VertexId::invalid();
    std::atomic<std::uint64_t> rescue_waves{0};
  };

  PlaneState& st(Plane p) { return state_[static_cast<int>(p)]; }
  const PlaneState& st(Plane p) const { return state_[static_cast<int>(p)]; }

  // Lazily reset a vertex's plane record to the current epoch.
  MarkPlane& fresh(Vertex& v, Plane plane) {
    MarkPlane& m = v.plane(plane);
    if (m.epoch != st(plane).epoch) {
      m.epoch = st(plane).epoch;
      m.color = Color::kUnmarked;
      m.mt_cnt = 0;
      m.mt_par = VertexId::invalid();
      m.prior = 0;
    }
    return m;
  }

  void exec_mark(Plane plane, VertexId v, VertexId par, std::uint8_t prior);
  void exec_return(Plane plane, VertexId v);

  // mark2's modify(v,par,prior) (Fig 5-1); doubles as mark1/mark3's unmarked
  // branch with the plane-appropriate child set.
  void modify(Plane plane, VertexId v, MarkPlane& m, VertexId par,
              std::uint8_t prior);

  void spawn_return(Plane plane, VertexId par);

  Graph& g_;
  TaskSink& sink_;
  PlaneState state_[2];
  std::function<void(Plane)> done_cb_;
  RescueSeedHook rescue_seed_hook_;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace dgr
